module asyncio

go 1.23
