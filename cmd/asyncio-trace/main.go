// Command asyncio-trace runs one workload on a simulated system and
// writes its per-epoch trace as CSV — the input format cmd/iomodel fits
// the paper's model to. Together they form the offline half of the
// feedback loop: capture a history, fit the model, decide the mode.
//
// With -trace-json it additionally exports the run's span trees and
// metric series as Chrome trace-event JSON (open in ui.perfetto.dev);
// with -metrics it dumps the metrics registry as CSV; with -critpath
// and/or -pprof it records the run's causal wait-for graph and writes
// the analyzed critical-path profile (JSON plus a summary table on
// stderr, and a pprof protobuf for go tool pprof) — the Perfetto
// export then carries a "critical path" overlay row. All exports (and
// the CSV) survive an aborted run: a crash-injected run flushes its
// partial report before exiting non-zero.
//
// Crash-consistency runs (vpic only): -checkpoint-every N commits a
// durable checkpoint every N epochs (all ranks drain, rank 0 fsyncs);
// -journal captures a write-ahead journal of asynchronous writes. A run
// whose fault spec kills a rank or node (crashrank=/crashnode=) then
// tears the un-fsynced write-back cache at -durability granularity,
// scans the journal against the surviving image, replays what it can,
// and prints the classification.
//
// Usage:
//
//	asyncio-trace -workload vpic -system summit -nodes 16 -mode adaptive -steps 8 -o trace.csv
//	asyncio-trace -workload bdcats -system cori -nodes 4 -mode async
//	asyncio-trace -workload vpic -nodes 2 -steps 2 -mode async -trace-json run.json -metrics run-metrics.csv
//	asyncio-trace -workload vpic -nodes 1 -steps 6 -mode async -faults "crashrank=3@95s" -checkpoint-every 2 -journal
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"asyncio/internal/cliflags"
	"asyncio/internal/core"
	"asyncio/internal/critpath"
	"asyncio/internal/perfetto"
	"asyncio/internal/pfs"
	"asyncio/internal/recovery"
	"asyncio/internal/shard"
	"asyncio/internal/systems"
	"asyncio/internal/trace"
	"asyncio/internal/vclock"
	"asyncio/internal/workloads/bdcats"
	"asyncio/internal/workloads/castro"
	"asyncio/internal/workloads/eqsim"
	"asyncio/internal/workloads/harness"
	"asyncio/internal/workloads/nyx"
	"asyncio/internal/workloads/vpicio"
)

func main() {
	var (
		workload = flag.String("workload", "vpic", "vpic | bdcats | nyx | castro | eqsim")
		system   = flag.String("system", "summit", "summit | cori")
		nodes    = flag.Int("nodes", 16, "allocation size in nodes")
		modeStr  = flag.String("mode", "adaptive", "sync | async | adaptive")
		steps    = flag.Int("steps", 8, "epochs (checkpoints/time steps)")
		compute  = flag.Duration("compute", 30*time.Second, "computation phase per epoch")
		out      = flag.String("o", "", "output CSV path (default stdout)")
	)
	cf := cliflags.Register(flag.CommandLine)
	flag.Parse()

	var mode core.Mode
	switch *modeStr {
	case "sync":
		mode = core.ForceSync
	case "async":
		mode = core.ForceAsync
	case "adaptive":
		mode = core.Adaptive
	default:
		fatalf("unknown mode %q", *modeStr)
	}
	var sysOpts []systems.Option
	in, err := cf.Injector()
	if err != nil {
		fatalf("-faults: %v", err)
	}
	if in != nil {
		sysOpts = append(sysOpts, systems.WithFaults(in))
	}
	if cf.WantCritPath() {
		sysOpts = append(sysOpts, systems.WithCritPath(critpath.NewRecorder()))
	}
	csp, cserr := cf.ConsistencySpec()
	if cserr != nil {
		fatalf("-consistency: %v", cserr)
	}
	var cons *pfs.Consistency
	if csp != nil {
		cons = pfs.NewConsistency(csp)
		sysOpts = append(sysOpts, systems.WithConsistency(cons))
	}
	// The run is this process's only work, so -shards auto takes the
	// whole machine. Every output below is byte-identical at any shard
	// count; sharding only changes how fast the simulation executes.
	sp, sperr := shard.ParseSpec(cf.Shards)
	if sperr != nil {
		fatalf("-shards: %v", sperr)
	}
	var clk *vclock.Clock
	if n := sp.Resolve(shard.MaxShards, runtime.GOMAXPROCS(0)); n > 1 {
		co := vclock.NewSharded(n)
		clk = co.Clock(0)
		sysOpts = append(sysOpts, systems.WithSharding(co, sp.Policy))
	} else {
		clk = vclock.New()
	}
	var sys *systems.System
	switch *system {
	case "summit":
		sys = systems.Summit(clk, *nodes, sysOpts...)
	case "cori":
		sys = systems.CoriHaswell(clk, *nodes, sysOpts...)
	default:
		fatalf("unknown system %q", *system)
	}
	if cf.TraceJSON != "" || cf.MetricsCSV != "" {
		sys.Metrics.EnableSeries()
	}

	// Crash-consistency plumbing: a durable write-back store with charged
	// fsync barriers, periodic checkpoints, and (optionally) a write-ahead
	// journal on the asynchronous path.
	var kit *harness.CrashKit
	var ck *harness.Checkpointer
	if *workload == "vpic" && cf.WantDurability() {
		dur, derr := cf.DurabilityConfig()
		if derr != nil {
			fatalf("%v", derr)
		}
		kit = harness.NewCrashKit(dur, recovery.DefaultCost(), cf.Journal)
		ck = harness.NewCheckpointer(cf.CheckpointEvery, kit.Journal)
		ck.Instrument(sys.Metrics)
		kit.Journal.Instrument(sys.Metrics, *workload)
		kit.SetCrit(sys.Crit)
	} else if cf.WantDurability() {
		fatalf("-checkpoint-every/-journal are only wired into the vpic workload")
	}

	var rep *core.Report
	switch *workload {
	case "vpic":
		cfg := vpicio.Config{Steps: *steps, ComputeTime: *compute, Mode: mode}
		if kit != nil {
			cfg.Store = kit.Durable
			cfg.Checkpoint = ck
			if cf.Journal {
				cfg.Env.AsyncInlineStages = kit.InlineStages()
			}
		}
		rep, _, err = vpicio.Run(sys, cfg)
	case "bdcats":
		rep, err = bdcats.Run(sys, bdcats.Config{Steps: *steps, ComputeTime: *compute, Mode: mode}, nil)
	case "nyx":
		cfg := nyx.SmallConfig()
		cfg.Plotfiles = *steps
		cfg.Mode = mode
		rep, err = nyx.Run(sys, cfg)
	case "castro":
		rep, err = castro.Run(sys, castro.Config{Checkpoints: *steps, ComputeTime: *compute, Mode: mode})
	case "eqsim":
		rep, err = eqsim.Run(sys, eqsim.Config{Checkpoints: *steps, Mode: mode})
	default:
		fatalf("unknown workload %q", *workload)
	}
	// An aborted run (injected crash, mid-run failure) still carries a
	// partial report: flush its observability below, then exit non-zero.
	aborted := err != nil && rep != nil && rep.Aborted
	if err != nil && !aborted {
		fatalf("%v", err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteCSV(w, rep.Run.Records); err != nil {
		fatalf("writing CSV: %v", err)
	}
	if cf.TraceJSON != "" {
		f, err := os.Create(cf.TraceJSON)
		if err != nil {
			fatalf("%v", err)
		}
		if err := perfetto.WriteProfile(f, rep.Spans, rep.Metrics, rep.CritPath); err != nil {
			fatalf("writing trace JSON: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing trace JSON: %v", err)
		}
	}
	if cf.MetricsCSV != "" {
		f, err := os.Create(cf.MetricsCSV)
		if err != nil {
			fatalf("%v", err)
		}
		label := fmt.Sprintf("%s-%s-%dn-%s", *workload, sys.Name, sys.Nodes(), *modeStr)
		if err := rep.Metrics.WriteCSV(f, label); err != nil {
			fatalf("writing metrics CSV: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing metrics CSV: %v", err)
		}
	}
	if err := cf.ExportProfile(rep.CritPath, os.Stderr); err != nil {
		fatalf("-critpath/-pprof: %v", err)
	}
	fmt.Fprintf(os.Stderr, "%s on %s, %d nodes (%d ranks), %d epochs, mode=%s: total %v, peak %.2f GB/s\n",
		*workload, sys.Name, sys.Nodes(), rep.Run.Ranks, len(rep.Run.Records), *modeStr,
		rep.Run.TotalTime().Round(time.Millisecond), rep.Run.PeakRate()/1e9)
	if cons != nil {
		fmt.Fprintf(os.Stderr, "consistency: %s, visibility wait %v\n",
			cons.Checker().Summary(), time.Duration(cons.VisibilityWaitNs()))
		if cerr := cons.Checker().Check(); cerr != nil && !aborted {
			fatalf("consistency check: %v", cerr)
		}
	}
	if aborted {
		for _, cr := range rep.Crashes {
			fmt.Fprintf(os.Stderr, "crash at %v: ranks %v (%s)\n", cr.At, cr.Ranks, cr.Err)
		}
		if kit != nil {
			// Power-loss semantics: tear the un-fsynced cache into the base
			// image, then scan the journal against what survived.
			if pr := kit.Durable.Crash(clk.Now()); pr != nil {
				fmt.Fprintf(os.Stderr, "write-back cache at crash: %d dirty bytes → %d flushed, %d torn, %d lost\n",
					pr.DirtyBytes, pr.Flushed, pr.Torn, pr.Lost)
			}
			scan := recovery.Scan(kit.Journal.Bytes(), kit.Base, recovery.ScanOptions{Replay: true})
			fmt.Fprintf(os.Stderr, "journal scan: %s\n", scan.Summary())
			fmt.Fprintf(os.Stderr, "last durable checkpoint: epoch %d (restart from %d)\n",
				ck.LastDurable(), ck.LastDurable()+1)
		}
		fatalf("run aborted: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "asyncio-trace: "+format+"\n", args...)
	os.Exit(1)
}
