// Command asyncio-trace runs one workload on a simulated system and
// writes its per-epoch trace as CSV — the input format cmd/iomodel fits
// the paper's model to. Together they form the offline half of the
// feedback loop: capture a history, fit the model, decide the mode.
//
// With -trace-json it additionally exports the run's span trees and
// metric series as Chrome trace-event JSON (open in ui.perfetto.dev);
// with -metrics it dumps the metrics registry as CSV.
//
// Usage:
//
//	asyncio-trace -workload vpic -system summit -nodes 16 -mode adaptive -steps 8 -o trace.csv
//	asyncio-trace -workload bdcats -system cori -nodes 4 -mode async
//	asyncio-trace -workload vpic -nodes 2 -steps 2 -mode async -trace-json run.json -metrics run-metrics.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"asyncio/internal/core"
	"asyncio/internal/faults"
	"asyncio/internal/perfetto"
	"asyncio/internal/systems"
	"asyncio/internal/trace"
	"asyncio/internal/vclock"
	"asyncio/internal/workloads/bdcats"
	"asyncio/internal/workloads/castro"
	"asyncio/internal/workloads/eqsim"
	"asyncio/internal/workloads/nyx"
	"asyncio/internal/workloads/vpicio"
)

func main() {
	var (
		workload   = flag.String("workload", "vpic", "vpic | bdcats | nyx | castro | eqsim")
		system     = flag.String("system", "summit", "summit | cori")
		nodes      = flag.Int("nodes", 16, "allocation size in nodes")
		modeStr    = flag.String("mode", "adaptive", "sync | async | adaptive")
		steps      = flag.Int("steps", 8, "epochs (checkpoints/time steps)")
		compute    = flag.Duration("compute", 30*time.Second, "computation phase per epoch")
		out        = flag.String("o", "", "output CSV path (default stdout)")
		traceJSON  = flag.String("trace-json", "", "write Chrome trace-event JSON (Perfetto) to this path")
		metricsCSV = flag.String("metrics", "", "write the metrics registry as CSV to this path")
		faultSpec  = flag.String("faults", "", "fault-injection spec for the run (see internal/faults)")
	)
	flag.Parse()

	var mode core.Mode
	switch *modeStr {
	case "sync":
		mode = core.ForceSync
	case "async":
		mode = core.ForceAsync
	case "adaptive":
		mode = core.Adaptive
	default:
		fatalf("unknown mode %q", *modeStr)
	}
	var sysOpts []systems.Option
	if *faultSpec != "" {
		in, err := faults.New(*faultSpec)
		if err != nil {
			fatalf("-faults: %v", err)
		}
		sysOpts = append(sysOpts, systems.WithFaults(in))
	}
	clk := vclock.New()
	var sys *systems.System
	switch *system {
	case "summit":
		sys = systems.Summit(clk, *nodes, sysOpts...)
	case "cori":
		sys = systems.CoriHaswell(clk, *nodes, sysOpts...)
	default:
		fatalf("unknown system %q", *system)
	}
	if *traceJSON != "" || *metricsCSV != "" {
		sys.Metrics.EnableSeries()
	}

	var rep *core.Report
	var err error
	switch *workload {
	case "vpic":
		rep, _, err = vpicio.Run(sys, vpicio.Config{Steps: *steps, ComputeTime: *compute, Mode: mode})
	case "bdcats":
		rep, err = bdcats.Run(sys, bdcats.Config{Steps: *steps, ComputeTime: *compute, Mode: mode}, nil)
	case "nyx":
		cfg := nyx.SmallConfig()
		cfg.Plotfiles = *steps
		cfg.Mode = mode
		rep, err = nyx.Run(sys, cfg)
	case "castro":
		rep, err = castro.Run(sys, castro.Config{Checkpoints: *steps, ComputeTime: *compute, Mode: mode})
	case "eqsim":
		rep, err = eqsim.Run(sys, eqsim.Config{Checkpoints: *steps, Mode: mode})
	default:
		fatalf("unknown workload %q", *workload)
	}
	if err != nil {
		fatalf("%v", err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteCSV(w, rep.Run.Records); err != nil {
		fatalf("writing CSV: %v", err)
	}
	if *traceJSON != "" {
		f, err := os.Create(*traceJSON)
		if err != nil {
			fatalf("%v", err)
		}
		if err := perfetto.Write(f, rep.Spans, rep.Metrics); err != nil {
			fatalf("writing trace JSON: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing trace JSON: %v", err)
		}
	}
	if *metricsCSV != "" {
		f, err := os.Create(*metricsCSV)
		if err != nil {
			fatalf("%v", err)
		}
		label := fmt.Sprintf("%s-%s-%dn-%s", *workload, sys.Name, sys.Nodes(), *modeStr)
		if err := rep.Metrics.WriteCSV(f, label); err != nil {
			fatalf("writing metrics CSV: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing metrics CSV: %v", err)
		}
	}
	fmt.Fprintf(os.Stderr, "%s on %s, %d nodes (%d ranks), %d epochs, mode=%s: total %v, peak %.2f GB/s\n",
		*workload, sys.Name, sys.Nodes(), rep.Run.Ranks, len(rep.Run.Records), *modeStr,
		rep.Run.TotalTime().Round(time.Millisecond), rep.Run.PeakRate()/1e9)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "asyncio-trace: "+format+"\n", args...)
	os.Exit(1)
}
