// Command asyncio-serve is the campaign service: a long-running daemon
// that accepts scenario specs over HTTP/JSON, schedules their
// simulation points across a worker pool, and serves the reports the
// CLIs produce offline — byte-identical to cmd/asyncio-bench and
// cmd/asyncio-trace, whether a result comes from a cold worker, the
// content-addressed cache, or the durable point store a previous
// incarnation of the daemon left behind.
//
// Endpoints:
//
//	POST /v1/campaigns            submit a spec (JSON body; ?wait=FORMAT blocks for the result)
//	GET  /v1/campaigns/{id}       campaign status
//	GET  /v1/campaigns/{id}/events  NDJSON progress stream (ends with a typed terminal record)
//	GET  /v1/campaigns/{id}/result?format=...  final report
//	GET  /healthz                 liveness (200 while the process is up, even mid-drain)
//	GET  /readyz                  readiness (503 once draining; reports store recovery)
//	GET  /metricz                 self-instrumentation CSV
//
// Usage:
//
//	asyncio-serve -listen :8080 -workers 4 -store-dir /var/lib/asyncio/points
//	curl -s -X POST 'localhost:8080/v1/campaigns?wait=table' -d '{"sweep":"fig3a"}'
//
// With -store-dir, computed points persist across restarts: on startup
// the store is scanned, torn or corrupt records are quarantined with
// typed errors (and logged), and recovered points are served
// byte-identical to fresh computation — a kill -9 costs at most the
// unflushed tail, never wrong bytes.
//
// SIGINT/SIGTERM drains gracefully: admission stops (503 on /readyz and
// POSTs), queued work finishes (bounded by -drain-timeout), the store
// is flushed and closed, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"asyncio/internal/campaign"
	"asyncio/internal/campaign/store"
)

func main() {
	var (
		listen        = flag.String("listen", ":8080", "HTTP listen address")
		workers       = flag.Int("workers", 2, "simulation worker pool size")
		queue         = flag.Int("queue", 256, "admission queue depth in points (overflow gets 429)")
		cacheSize     = flag.Int("cache", 1024, "point result cache entries (LRU)")
		drainTimeout  = flag.Duration("drain-timeout", 2*time.Minute, "max time to finish queued work on shutdown")
		storeDir      = flag.String("store-dir", "", "durable point store directory (empty = in-memory only)")
		storeFsync    = flag.Bool("store-fsync", false, "fsync the store after every flush batch")
		pointDeadline = flag.Duration("point-deadline", 0, "per-request point deadline (0 = none)")
		poisonStrikes = flag.Int("poison-strikes", 3, "panics before a point is poison-quarantined")
	)
	flag.Parse()

	cfg := campaign.Config{
		Workers:       *workers,
		QueueDepth:    *queue,
		CacheSize:     *cacheSize,
		PointDeadline: *pointDeadline,
		PoisonStrikes: *poisonStrikes,
	}
	var st *store.Store
	if *storeDir != "" {
		logf := func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "asyncio-serve: "+format+"\n", args...)
		}
		var rep *store.RecoveryReport
		var err error
		st, rep, err = store.Open(store.Options{Dir: *storeDir, Fsync: *storeFsync, Logf: logf})
		if err != nil {
			fatalf("opening store: %v", err)
		}
		fmt.Fprintf(os.Stderr, "asyncio-serve: store %s: %s\n", *storeDir, rep.Summary())
		cfg.Store = st
		cfg.StoreRecovery = rep
	}

	svc := campaign.NewServer(cfg)
	httpSrv := &http.Server{Addr: *listen, Handler: svc.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "asyncio-serve: listening on %s (%d workers, queue %d, cache %d)\n",
		*listen, *workers, *queue, *cacheSize)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatalf("%v", err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "asyncio-serve: %v, draining\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "asyncio-serve: drain: %v\n", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "asyncio-serve: http shutdown: %v\n", err)
	}
	if st != nil {
		// After the drain no worker writes remain; a graceful exit
		// leaves a fully flushed, cleanly scanning store behind.
		if err := st.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "asyncio-serve: store close: %v\n", err)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "asyncio-serve: "+format+"\n", args...)
	os.Exit(1)
}
