// Command asyncio-serve is the campaign service: a long-running daemon
// that accepts scenario specs over HTTP/JSON, schedules their
// simulation points across a worker pool, and serves the reports the
// CLIs produce offline — byte-identical to cmd/asyncio-bench and
// cmd/asyncio-trace, whether a result comes from a cold worker or the
// content-addressed cache.
//
// Endpoints:
//
//	POST /v1/campaigns            submit a spec (JSON body; ?wait=FORMAT blocks for the result)
//	GET  /v1/campaigns/{id}       campaign status
//	GET  /v1/campaigns/{id}/events  NDJSON progress stream
//	GET  /v1/campaigns/{id}/result?format=...  final report
//	GET  /healthz, /metricz       liveness and self-instrumentation CSV
//
// Usage:
//
//	asyncio-serve -listen :8080 -workers 4
//	curl -s -X POST 'localhost:8080/v1/campaigns?wait=table' -d '{"sweep":"fig3a"}'
//
// SIGINT/SIGTERM drains gracefully: admission stops (503), queued work
// finishes (bounded by -drain-timeout), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"asyncio/internal/campaign"
)

func main() {
	var (
		listen       = flag.String("listen", ":8080", "HTTP listen address")
		workers      = flag.Int("workers", 2, "simulation worker pool size")
		queue        = flag.Int("queue", 256, "admission queue depth in points (overflow gets 429)")
		cacheSize    = flag.Int("cache", 1024, "point result cache entries (LRU)")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "max time to finish queued work on shutdown")
	)
	flag.Parse()

	svc := campaign.NewServer(campaign.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		CacheSize:  *cacheSize,
	})
	httpSrv := &http.Server{Addr: *listen, Handler: svc.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "asyncio-serve: listening on %s (%d workers, queue %d, cache %d)\n",
		*listen, *workers, *queue, *cacheSize)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatalf("%v", err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "asyncio-serve: %v, draining\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "asyncio-serve: drain: %v\n", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "asyncio-serve: http shutdown: %v\n", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "asyncio-serve: "+format+"\n", args...)
	os.Exit(1)
}
