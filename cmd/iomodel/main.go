// Command iomodel fits the paper's I/O-rate models to a trace CSV (as
// written by trace.WriteCSV) and reports the fitted coefficients, r²,
// and per-epoch estimates — the offline counterpart of the runtime
// feedback loop (Fig. 2 of the paper).
//
// Usage:
//
//	iomodel trace.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"asyncio/internal/model"
	"asyncio/internal/trace"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: iomodel <trace.csv>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "iomodel: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	records, err := trace.ReadCSV(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iomodel: %v\n", err)
		os.Exit(1)
	}
	if len(records) == 0 {
		fmt.Fprintln(os.Stderr, "iomodel: no records")
		os.Exit(1)
	}

	est := model.NewEstimator()
	var lastBytes int64
	var lastRanks int
	for _, r := range records {
		est.ObserveComp(r.CompTime)
		if r.Mode == trace.Sync {
			est.ObserveSyncIO(r.Bytes, r.Ranks, r.IOTime)
		} else {
			est.ObserveOverhead(r.Bytes, r.Ranks, r.IOTime)
		}
		lastBytes, lastRanks = r.Bytes, r.Ranks
	}

	fmt.Printf("records: %d\n", len(records))
	if m, ok := est.SyncModel(); ok {
		fmt.Printf("sync model:  %v  beta=%v  r²=%.3f  (n=%d)\n", m.Kind, m.Fit.Beta, m.R2(), m.N)
	} else {
		fmt.Println("sync model:  insufficient synchronous observations")
	}
	if m, ok := est.AsyncModel(); ok {
		fmt.Printf("async model: %v  beta=%v  r²=%.3f  (n=%d)\n", m.Kind, m.Fit.Beta, m.R2(), m.N)
	} else {
		fmt.Println("async model: insufficient asynchronous observations")
	}
	if comp, ok := est.CompEstimate(); ok {
		fmt.Printf("compute estimate (EWMA): %v\n", comp.Round(time.Millisecond))
	}
	if ee, ok := est.EstimateEpoch(lastBytes, lastRanks); ok {
		fmt.Printf("next epoch (bytes=%d ranks=%d):\n", lastBytes, lastRanks)
		fmt.Printf("  sync  (Eq. 2a): %v\n", ee.Sync.Round(time.Millisecond))
		fmt.Printf("  async (Eq. 2b): %v\n", ee.Async.Round(time.Millisecond))
		fmt.Printf("  advisor: use %s I/O", ee.Better())
		if ee.SlowdownRegion() {
			fmt.Printf("  (slowdown region: overhead %v ≥ compute %v)",
				ee.Overhead.Round(time.Millisecond), ee.Comp.Round(time.Millisecond))
		}
		fmt.Println()
	} else {
		fmt.Println("epoch estimate: needs observations from both I/O modes")
	}
}
