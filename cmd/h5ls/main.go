// Command h5ls lists the contents of a container file written by this
// library's hdf5 layer (the AHDF format), in the spirit of HDF5's h5ls:
// the group tree, dataset shapes, types, layouts and attributes.
//
// Usage:
//
//	h5ls file.ah5
//	h5ls -v file.ah5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"asyncio/internal/hdf5"
)

var verbose = flag.Bool("v", false, "also print attributes")

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: h5ls [-v] <file>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	store, err := hdf5.OpenFileStore(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "h5ls: %v\n", err)
		os.Exit(1)
	}
	defer store.Close()
	f, err := hdf5.Open(store)
	if err != nil {
		fmt.Fprintf(os.Stderr, "h5ls: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s (eof %d bytes)\n", path, f.EOF())
	if err := listGroup(f.Root(), "/", 0); err != nil {
		fmt.Fprintf(os.Stderr, "h5ls: %v\n", err)
		os.Exit(1)
	}
}

func listGroup(g *hdf5.Group, name string, depth int) error {
	indent := strings.Repeat("  ", depth)
	fmt.Printf("%s%s  (group)\n", indent, name)
	if *verbose {
		printAttrs(attrReader{g: g}, depth+1)
	}
	for _, child := range g.List() {
		if sub, err := g.OpenGroup(nil, child); err == nil {
			if err := listGroup(sub, child, depth+1); err != nil {
				return err
			}
			continue
		}
		ds, err := g.OpenDataset(nil, child)
		if err != nil {
			return fmt.Errorf("opening %q: %w", child, err)
		}
		layout := "contiguous"
		if ds.Chunked() {
			layout = fmt.Sprintf("chunked (%d chunks)", ds.NumChunks())
		}
		fmt.Printf("%s  %s  dataset %v %v, %s, %d bytes\n",
			indent, child, ds.Dims(), ds.Dtype(), layout, ds.NBytes())
		if *verbose {
			printAttrs(attrReader{d: ds}, depth+2)
		}
	}
	return nil
}

// attrReader unifies group and dataset attribute access for printing.
type attrReader struct {
	g *hdf5.Group
	d *hdf5.Dataset
}

func (ar attrReader) names() []string {
	if ar.g != nil {
		return ar.g.AttrNames()
	}
	return ar.d.AttrNames()
}

func (ar attrReader) attr(name string) (hdf5.Attribute, error) {
	if ar.g != nil {
		return ar.g.Attr(nil, name)
	}
	return ar.d.Attr(nil, name)
}

func printAttrs(ar attrReader, depth int) {
	indent := strings.Repeat("  ", depth)
	for _, name := range ar.names() {
		a, err := ar.attr(name)
		if err != nil {
			continue
		}
		fmt.Printf("%s@%s: %v (%d bytes)\n", indent, name, a.Dtype, len(a.Data))
	}
}
