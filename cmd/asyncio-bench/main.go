// Command asyncio-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	asyncio-bench -list
//	asyncio-bench -exp fig3a
//	asyncio-bench -exp all -scale reduced
//	asyncio-bench -exp fig8 -scale full
//
// Every experiment prints an aligned text table with the same series
// the paper plots (measured sync/async plus the model's estimates).
// The full scale reproduces the paper's node counts — up to 2,048
// Summit nodes (12,288 ranks) — and takes minutes; the reduced scale
// finishes in seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"sort"
	"time"

	"asyncio/internal/cliflags"
	"asyncio/internal/core"
	"asyncio/internal/experiments"
	"asyncio/internal/metrics"
	"asyncio/internal/perfetto"
	"asyncio/internal/simbench"
)

func main() {
	var (
		exp          = flag.String("exp", "", "experiment id (see -list) or \"all\"")
		scale        = flag.String("scale", "reduced", "sweep scale: reduced or full")
		list         = flag.Bool("list", false, "list experiment ids and exit")
		timings      = flag.Bool("timings", false, "print wall-clock time per experiment")
		parallel     = flag.Int("parallel", 0, "workers for independent experiment points (0 = GOMAXPROCS, 1 = serial)")
		selfbench    = flag.Bool("selfbench", false, "benchmark the simulator itself and exit")
		selfbenchOut = flag.String("selfbench-out", "BENCH_simulator.json", "where -selfbench writes its JSON report")
		shardscale   = flag.Bool("shardscale", false, "run the abl-shard ablation (events/s vs shard count; wall-clock, so not in -list) and exit")
	)
	cf := cliflags.Register(flag.CommandLine)
	flag.Parse()

	// The simulator is allocation-heavy and latency-insensitive; a high
	// GC target trades heap headroom for a large wall-clock win on the
	// big sweeps. An explicit GOGC still takes precedence.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}

	if err := experiments.SetDefaultFaults(cf.Faults); err != nil {
		fatalf("-faults: %v", err)
	}
	// Durability flags parameterize the crash experiments' write-back
	// model; the per-run checkpoint/journal switches belong to
	// asyncio-trace (crash sweeps schedule checkpoints themselves).
	if cf.WantDurability() {
		fatalf("-checkpoint-every/-journal configure a single run; use asyncio-trace (crash experiments sweep checkpoint intervals themselves)")
	}
	dur, derr := cf.DurabilityConfig()
	if derr != nil {
		fatalf("%v", derr)
	}
	experiments.SetDefaultDurability(&dur)
	csp, cerr := cf.ConsistencySpec()
	if cerr != nil {
		fatalf("-consistency: %v", cerr)
	}
	experiments.SetDefaultConsistency(csp)
	experiments.SetParallelism(*parallel)

	// Selfbench pins shard counts per case (serial baselines vs explicit
	// sharded entries), so the global -shards override does not apply.
	if *selfbench {
		runSelfbench(*scale, *selfbenchOut)
		return
	}
	if *shardscale {
		runShardScale(*scale)
		return
	}

	reg := experiments.Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: asyncio-bench -exp <id>|all [-scale reduced|full]")
		fmt.Fprintln(os.Stderr, "known experiments:", ids)
		os.Exit(2)
	}

	var sc experiments.Scale
	switch *scale {
	case "reduced":
		sc = experiments.ReducedScale()
	case "full":
		sc = experiments.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want reduced or full)\n", *scale)
		os.Exit(2)
	}

	run := ids
	if *exp != "all" {
		if reg[*exp] == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %v\n", *exp, ids)
			os.Exit(2)
		}
		run = []string{*exp}
	}

	// Experiments construct their systems (and so their registries)
	// internally; the observer hook collects each completed run's report
	// so observability data can be exported without touching every
	// experiment. The observer's report order is part of the output
	// (metrics CSV labels, "last run" trace selection), so observed
	// generation forces serial sweeps regardless of -parallel. Intra-run
	// sharding is unaffected: runs execute one at a time, but each run
	// still spreads its ranks across shards, and the exports are
	// byte-identical at any shard count.
	var reports []*core.Report
	if cf.WantObservability() {
		if cf.TraceJSON != "" || cf.MetricsCSV != "" {
			metrics.SetSeriesDefault(true)
		}
		if cf.WantCritPath() {
			experiments.SetCritPathProfiling(true)
		}
		core.SetRunObserver(func(rep *core.Report) { reports = append(reports, rep) })
		defer core.SetRunObserver(nil)
		experiments.SetParallelism(1)
	}

	// Resolve -shards after the worker count settles: auto divides the
	// machine between sweep workers and intra-run shards, so forcing
	// serial sweeps (above) hands the whole core budget to each run.
	nShards, err := experiments.ResolveShardSpec(cf.Shards)
	if err != nil {
		fatalf("-shards: %v", err)
	}
	experiments.SetShards(nShards)

	for _, id := range run {
		start := time.Now()
		tab, err := reg[id](sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		if err := tab.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: rendering: %v\n", id, err)
			os.Exit(1)
		}
		if *timings {
			fmt.Printf("(%s generated in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}

	if cf.MetricsCSV != "" {
		f, err := os.Create(cf.MetricsCSV)
		if err != nil {
			fatalf("%v", err)
		}
		for i, rep := range reports {
			label := fmt.Sprintf("run%03d-%s-%s-%s-%dr", i, rep.Run.Workload, rep.Run.System, rep.Run.Mode, rep.Run.Ranks)
			if err := rep.Metrics.WriteCSV(f, label); err != nil {
				fatalf("writing metrics CSV: %v", err)
			}
		}
		if err := f.Close(); err != nil {
			fatalf("closing metrics CSV: %v", err)
		}
	}
	if cf.TraceJSON != "" {
		if len(reports) == 0 {
			fatalf("-trace-json: no runs were observed")
		}
		last := reports[len(reports)-1]
		f, err := os.Create(cf.TraceJSON)
		if err != nil {
			fatalf("%v", err)
		}
		if err := perfetto.WriteProfile(f, last.Spans, last.Metrics, last.CritPath); err != nil {
			fatalf("writing trace JSON: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing trace JSON: %v", err)
		}
	}
	if cf.WantCritPath() {
		if len(reports) == 0 {
			fatalf("-critpath/-pprof: no runs were observed")
		}
		if err := cf.ExportProfile(reports[len(reports)-1].CritPath, os.Stdout); err != nil {
			fatalf("-critpath/-pprof: %v", err)
		}
	}
}

// runSelfbench benchmarks the simulator itself (engine microbenchmarks
// plus a stable subset of figure generators) and writes the JSON report
// both to stdout and to the given path.
func runSelfbench(scale, out string) {
	var sc experiments.Scale
	switch scale {
	case "reduced":
		sc = experiments.ReducedScale()
	case "full":
		sc = experiments.FullScale()
	default:
		fatalf("unknown scale %q (want reduced or full)", scale)
	}
	rep, err := simbench.Run(sc)
	if err != nil {
		fatalf("selfbench: %v", err)
	}
	if err := rep.WriteJSON(os.Stdout); err != nil {
		fatalf("selfbench: %v", err)
	}
	f, err := os.Create(out)
	if err != nil {
		fatalf("selfbench: %v", err)
	}
	if err := rep.WriteJSON(f); err != nil {
		fatalf("selfbench: writing %s: %v", out, err)
	}
	if err := f.Close(); err != nil {
		fatalf("selfbench: closing %s: %v", out, err)
	}
}

// runShardScale runs the abl-shard ablation: the same VPIC-IO runs at
// 1/2/4/8 intra-run shards, reporting simulator events/s and wall time.
// Wall-clock is machine-dependent, so this lives outside the registry
// (and the determinism suites) on purpose.
func runShardScale(scale string) {
	var sc experiments.Scale
	switch scale {
	case "reduced":
		sc = experiments.ReducedScale()
	case "full":
		sc = experiments.FullScale()
	default:
		fatalf("unknown scale %q (want reduced or full)", scale)
	}
	tab, err := experiments.ShardScale(sc, nil, nil)
	if err != nil {
		fatalf("shardscale: %v", err)
	}
	if err := tab.Render(os.Stdout); err != nil {
		fatalf("shardscale: rendering: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "asyncio-bench: "+format+"\n", args...)
	os.Exit(1)
}
