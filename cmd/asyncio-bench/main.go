// Command asyncio-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	asyncio-bench -list
//	asyncio-bench -exp fig3a
//	asyncio-bench -exp all -scale reduced
//	asyncio-bench -exp fig8 -scale full
//
// Every experiment prints an aligned text table with the same series
// the paper plots (measured sync/async plus the model's estimates).
// The full scale reproduces the paper's node counts — up to 2,048
// Summit nodes (12,288 ranks) — and takes minutes; the reduced scale
// finishes in seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"asyncio/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list) or \"all\"")
		scale   = flag.String("scale", "reduced", "sweep scale: reduced or full")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		timings = flag.Bool("timings", false, "print wall-clock time per experiment")
	)
	flag.Parse()

	reg := experiments.Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: asyncio-bench -exp <id>|all [-scale reduced|full]")
		fmt.Fprintln(os.Stderr, "known experiments:", ids)
		os.Exit(2)
	}

	var sc experiments.Scale
	switch *scale {
	case "reduced":
		sc = experiments.ReducedScale()
	case "full":
		sc = experiments.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want reduced or full)\n", *scale)
		os.Exit(2)
	}

	run := ids
	if *exp != "all" {
		if reg[*exp] == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %v\n", *exp, ids)
			os.Exit(2)
		}
		run = []string{*exp}
	}
	for _, id := range run {
		start := time.Now()
		tab, err := reg[id](sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		if err := tab.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: rendering: %v\n", id, err)
			os.Exit(1)
		}
		if *timings {
			fmt.Printf("(%s generated in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
}
