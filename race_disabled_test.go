//go:build !race

package asyncio_test

const raceEnabled = false
