package vclock

import (
	"math/rand"
	"testing"
	"time"
)

// TestTimerScheduleProperties drives randomized schedules of AfterFunc,
// Stop, and Sleep through the clock — 1000 seeded trials — and checks
// the engine's contract on each:
//
//   - every timer either fires exactly once at exactly its scheduled
//     instant, or was successfully stopped and never fires;
//   - Stop's return value is truthful (true ⇔ the callback was
//     prevented);
//   - callbacks fire in nondecreasing time order, FIFO among
//     same-instant entries;
//   - recycled (pooled) entries are never double-fired and stale Timer
//     handles never cancel a recycled entry.
//
// The driver proc and the callbacks never run concurrently (time only
// advances when all procs block), so the trial's bookkeeping needs no
// locking of its own — which the -race CI job verifies.
func TestTimerScheduleProperties(t *testing.T) {
	const trials = 1000
	const ops = 120
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		clk := New()

		type timerInfo struct {
			id      int
			at      time.Duration
			handle  *Timer
			stopped bool // Stop returned true
		}
		type firing struct {
			id int
			at time.Duration
		}
		var timers []*timerInfo
		var firings []firing
		fired := make(map[int]int)

		clk.Go("driver", func(p *Proc) {
			nextID := 0
			for op := 0; op < ops; op++ {
				switch rng.Intn(4) {
				case 0, 1: // schedule (weighted: more timers than stops)
					d := time.Duration(rng.Intn(50)) * time.Microsecond
					info := &timerInfo{id: nextID, at: p.Now() + d}
					nextID++
					info.handle = clk.AfterFunc(d, func(now time.Duration) {
						fired[info.id]++
						firings = append(firings, firing{id: info.id, at: now})
						if now != info.at {
							t.Errorf("trial %d: timer %d fired at %v, scheduled for %v",
								trial, info.id, now, info.at)
						}
					})
					timers = append(timers, info)
				case 2: // stop a random previously created timer
					if len(timers) > 0 {
						info := timers[rng.Intn(len(timers))]
						if info.handle.Stop() {
							info.stopped = true
						}
					}
				case 3: // advance time; lets pending timers fire and entries recycle
					p.Sleep(time.Duration(rng.Intn(40)) * time.Microsecond)
				}
			}
			// Let every remaining timer fire.
			p.Sleep(time.Millisecond)
		})
		if err := clk.Wait(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		for _, info := range timers {
			n := fired[info.id]
			switch {
			case info.stopped && n != 0:
				t.Errorf("trial %d: timer %d fired %d times after Stop returned true", trial, info.id, n)
			case !info.stopped && n == 0:
				t.Errorf("trial %d: timer %d never fired and was never stopped", trial, info.id)
			case n > 1:
				t.Errorf("trial %d: timer %d fired %d times", trial, info.id, n)
			}
		}
		for i := 1; i < len(firings); i++ {
			prev, cur := firings[i-1], firings[i]
			if cur.at < prev.at {
				t.Errorf("trial %d: firing order went backwards: %v after %v", trial, cur.at, prev.at)
			}
			// FIFO among same-instant entries: creation order == id order.
			if cur.at == prev.at && cur.id < prev.id {
				t.Errorf("trial %d: same-instant firings out of creation order: id %d before %d at %v",
					trial, prev.id, cur.id, cur.at)
			}
		}
		if t.Failed() {
			t.Fatalf("trial %d failed; seed %d reproduces it", trial, trial)
		}
	}
}

// TestStaleHandleAfterRecycle pins the generation-tag behavior the
// property test relies on: once a timer has fired and its pooled entry
// has been reused by a new timer, Stop on the stale handle must return
// false and must not cancel the new timer.
func TestStaleHandleAfterRecycle(t *testing.T) {
	clk := New()
	var firstFired, secondFired bool
	var first *Timer
	clk.Go("driver", func(p *Proc) {
		first = clk.AfterFunc(time.Microsecond, func(time.Duration) { firstFired = true })
		p.Sleep(10 * time.Microsecond) // first fires; its entry returns to the pool
		second := clk.AfterFunc(time.Microsecond, func(time.Duration) { secondFired = true })
		_ = second
		if first.Stop() {
			t.Error("Stop on a fired timer returned true")
		}
		p.Sleep(10 * time.Microsecond)
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	if !firstFired || !secondFired {
		t.Fatalf("firstFired=%v secondFired=%v, want both true (stale Stop must not cancel the recycled entry)",
			firstFired, secondFired)
	}
}
