package vclock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSleepAdvancesTime(t *testing.T) {
	c := New()
	var got time.Duration
	c.Go("a", func(p *Proc) {
		p.Sleep(5 * time.Second)
		got = p.Now()
	})
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if got != 5*time.Second {
		t.Fatalf("Now after Sleep(5s) = %v, want 5s", got)
	}
}

func TestSleepZeroDoesNotAdvance(t *testing.T) {
	c := New()
	var got time.Duration
	c.Go("a", func(p *Proc) {
		p.Sleep(3 * time.Second)
		p.Yield()
		got = p.Now()
	})
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if got != 3*time.Second {
		t.Fatalf("Now = %v, want 3s", got)
	}
}

func TestNegativeSleepTreatedAsYield(t *testing.T) {
	c := New()
	c.Go("a", func(p *Proc) {
		p.Sleep(-time.Second)
		if p.Now() != 0 {
			t.Errorf("Now = %v, want 0", p.Now())
		}
	})
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	c := New()
	var mu sync.Mutex
	var order []string
	log := func(s string) {
		mu.Lock()
		order = append(order, s)
		mu.Unlock()
	}
	c.Go("a", func(p *Proc) {
		p.Sleep(1 * time.Second)
		log("a1")
		p.Sleep(2 * time.Second) // wakes at 3s
		log("a3")
	})
	c.Go("b", func(p *Proc) {
		p.Sleep(2 * time.Second)
		log("b2")
		p.Sleep(2 * time.Second) // wakes at 4s
		log("b4")
	})
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b2", "a3", "b4"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestManyProcsAgreeOnFinalTime(t *testing.T) {
	c := New()
	const n = 200
	var maxSeen int64
	for i := 0; i < n; i++ {
		d := time.Duration(i%17+1) * time.Millisecond
		c.Go("p", func(p *Proc) {
			for j := 0; j < 10; j++ {
				p.Sleep(d)
			}
			now := int64(p.Now())
			for {
				old := atomic.LoadInt64(&maxSeen)
				if now <= old || atomic.CompareAndSwapInt64(&maxSeen, old, now) {
					break
				}
			}
		})
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	want := int64(10 * 17 * time.Millisecond)
	if maxSeen != want {
		t.Fatalf("max final time = %v, want %v", time.Duration(maxSeen), time.Duration(want))
	}
}

func TestEventWakesWaiters(t *testing.T) {
	c := New()
	ev := NewEvent(c)
	var woke [2]time.Duration
	for i := 0; i < 2; i++ {
		c.Go("w", func(p *Proc) {
			ev.Wait(p)
			woke[i] = p.Now()
		})
	}
	c.Go("f", func(p *Proc) {
		p.Sleep(7 * time.Second)
		ev.Fire()
	})
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, w := range woke {
		if w != 7*time.Second {
			t.Errorf("waiter %d woke at %v, want 7s", i, w)
		}
	}
}

func TestEventWaitAfterFireReturnsImmediately(t *testing.T) {
	c := New()
	ev := NewEvent(c)
	ev.Fire()
	if !ev.Fired() {
		t.Fatal("Fired() = false after Fire")
	}
	c.Go("w", func(p *Proc) {
		ev.Wait(p)
		if p.Now() != 0 {
			t.Errorf("wait on fired event advanced time to %v", p.Now())
		}
	})
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestEventDoubleFireIsNoop(t *testing.T) {
	c := New()
	ev := NewEvent(c)
	ev.Fire()
	ev.Fire() // must not panic or double-wake
	c.Go("w", func(p *Proc) { ev.Wait(p) })
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestAfterFuncFiresAtScheduledTime(t *testing.T) {
	c := New()
	ev := NewEvent(c)
	var fireAt time.Duration
	c.AfterFunc(9*time.Second, func(now time.Duration) {
		fireAt = now
		ev.Fire()
	})
	var wokeAt time.Duration
	c.Go("w", func(p *Proc) {
		ev.Wait(p)
		wokeAt = p.Now()
	})
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if fireAt != 9*time.Second || wokeAt != 9*time.Second {
		t.Fatalf("fireAt=%v wokeAt=%v, want 9s both", fireAt, wokeAt)
	}
}

func TestTimerStopPreventsCallback(t *testing.T) {
	c := New()
	var fired atomic.Bool
	tm := c.AfterFunc(time.Second, func(time.Duration) { fired.Store(true) })
	if !tm.Stop() {
		t.Fatal("Stop() = false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	c.Go("w", func(p *Proc) { p.Sleep(5 * time.Second) })
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if fired.Load() {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerReschedulePattern(t *testing.T) {
	// The flow-server pattern: cancel and reschedule a completion timer on
	// every arrival.
	c := New()
	ev := NewEvent(c)
	var tm *Timer
	tm = c.AfterFunc(10*time.Second, func(time.Duration) { t.Error("stale timer fired") })
	c.Go("arrival", func(p *Proc) {
		p.Sleep(1 * time.Second)
		tm.Stop()
		c.AfterFunc(2*time.Second, func(now time.Duration) {
			if now != 3*time.Second {
				t.Errorf("rescheduled timer at %v, want 3s", now)
			}
			ev.Fire()
		})
		ev.Wait(p)
	})
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestCallbackMayScheduleMoreWork(t *testing.T) {
	c := New()
	done := NewEvent(c)
	var hops int
	var hop func(now time.Duration)
	hop = func(now time.Duration) {
		hops++
		if hops == 5 {
			done.Fire()
			return
		}
		c.AfterFunc(time.Second, hop)
	}
	c.AfterFunc(time.Second, hop)
	var end time.Duration
	c.Go("w", func(p *Proc) {
		done.Wait(p)
		end = p.Now()
	})
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if hops != 5 || end != 5*time.Second {
		t.Fatalf("hops=%d end=%v, want 5 hops ending at 5s", hops, end)
	}
}

func TestDeadlockDetected(t *testing.T) {
	c := New()
	ev := NewEvent(c) // never fired
	c.Go("stuck", func(p *Proc) { ev.Wait(p) })
	err := c.Wait()
	if err == nil {
		t.Fatal("Wait returned nil for deadlocked clock")
	}
}

func TestGoFromWithinProc(t *testing.T) {
	c := New()
	var childTime time.Duration
	c.Go("parent", func(p *Proc) {
		p.Sleep(time.Second)
		c.Go("child", func(q *Proc) {
			q.Sleep(time.Second)
			childTime = q.Now()
		})
		p.Sleep(5 * time.Second)
	})
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if childTime != 2*time.Second {
		t.Fatalf("child finished at %v, want 2s", childTime)
	}
}

func TestWaitWithNoProcsReturns(t *testing.T) {
	c := New()
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if c.Now() != 0 {
		t.Fatalf("Now = %v, want 0", c.Now())
	}
}

func TestSameInstantOrderIsFIFO(t *testing.T) {
	// Entries at the same timestamp wake in insertion order (seq
	// tiebreak), giving deterministic runs.
	c := New()
	var mu sync.Mutex
	var order []int
	for i := 0; i < 8; i++ {
		c.Go("p", func(p *Proc) {
			p.Sleep(time.Second)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 8 {
		t.Fatalf("len(order) = %d, want 8", len(order))
	}
	// All woke at the same instant; the wake channels are closed in seq
	// order but goroutine scheduling may interleave bodies. We only check
	// that every proc ran exactly once.
	seen := map[int]bool{}
	for _, v := range order {
		if seen[v] {
			t.Fatalf("proc %d ran twice", v)
		}
		seen[v] = true
	}
}

func BenchmarkSleepWake(b *testing.B) {
	c := New()
	c.Go("bench", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	if err := c.Wait(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkManyProcsPingPong(b *testing.B) {
	c := New()
	const procs = 64
	for i := 0; i < procs; i++ {
		c.Go("p", func(p *Proc) {
			for j := 0; j < b.N/procs; j++ {
				p.Sleep(time.Microsecond)
			}
		})
	}
	if err := c.Wait(); err != nil {
		b.Fatal(err)
	}
}

func TestHoldSuppressesDeadlockDuringSpawn(t *testing.T) {
	c := New()
	release := c.Hold()
	ev := NewEvent(c)
	// The first proc blocks immediately; without the hold this would be
	// declared a deadlock before the second proc exists.
	c.Go("waiter", func(p *Proc) { ev.Wait(p) })
	c.Go("firer", func(p *Proc) {
		p.Sleep(time.Second)
		ev.Fire()
	})
	release()
	release() // idempotent
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestHoldPinsTime(t *testing.T) {
	c := New()
	release := c.Hold()
	c.Go("sleeper", func(p *Proc) { p.Sleep(time.Second) })
	// Give the sleeper a chance to block; time must not advance while
	// held.
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		if c.Now() != 0 {
			t.Fatal("time advanced under Hold")
		}
	}
	release()
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if c.Now() != time.Second {
		t.Fatalf("final time %v", c.Now())
	}
}
