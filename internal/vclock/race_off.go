//go:build !race

package vclock

// raceDetectorEnabled gates extra coordinator invariant checks; see
// race_on.go.
const raceDetectorEnabled = false
