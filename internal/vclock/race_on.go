//go:build race

package vclock

// raceDetectorEnabled gates extra coordinator invariant checks (lockstep
// clock-drift assertions) that are cheap enough for race-instrumented
// builds but off the hot path otherwise.
const raceDetectorEnabled = true
