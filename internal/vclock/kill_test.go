package vclock

import (
	"errors"
	"testing"
	"time"
)

var errBoom = errors.New("boom")

// A sleeping process dies at the kill instant: its pending wakeup is
// withdrawn so time does not advance to the original deadline.
func TestKillWakesSleeper(t *testing.T) {
	c := New()
	var died error
	var diedAt time.Duration
	var victim *Proc
	ready := NewEvent(c)
	c.Go("victim", func(p *Proc) {
		victim = p
		defer func() {
			r := recover()
			k, ok := r.(Killed)
			if !ok {
				t.Errorf("recover() = %v, want Killed", r)
				return
			}
			died = k.Reason
			diedAt = p.Now()
		}()
		ready.Fire()
		p.Sleep(time.Hour)
		t.Error("sleep returned on a killed proc")
	})
	c.Go("killer", func(p *Proc) {
		ready.Wait(p)
		p.Sleep(time.Second)
		victim.Kill(errBoom)
	})
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if died != errBoom {
		t.Fatalf("kill reason = %v, want %v", died, errBoom)
	}
	if diedAt != time.Second {
		t.Fatalf("died at %v, want 1s (not the 1h sleep deadline)", diedAt)
	}
	if now := c.Now(); now != time.Second {
		t.Fatalf("clock advanced to %v after kill; the cancelled sleep leaked its timer", now)
	}
}

// A process blocked in Event.Wait dies at the kill instant, and a later
// Fire of the event must not touch the dead waiter.
func TestKillWakesEventWaiter(t *testing.T) {
	c := New()
	ev := NewEvent(c)
	var died error
	var victim *Proc
	started := NewEvent(c)
	c.Go("victim", func(p *Proc) {
		victim = p
		defer func() {
			if k, ok := recover().(Killed); ok {
				died = k.Reason
			}
		}()
		started.Fire()
		ev.Wait(p)
		t.Error("wait returned on a killed proc")
	})
	c.Go("killer", func(p *Proc) {
		started.Wait(p)
		p.Sleep(time.Millisecond)
		victim.Kill(errBoom)
		p.Sleep(time.Millisecond)
		ev.Fire() // must be safe after the waiter died
	})
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if died != errBoom {
		t.Fatalf("kill reason = %v, want %v", died, errBoom)
	}
}

// A running (not blocked) process dies at its next blocking operation.
func TestKillFlagsRunningProc(t *testing.T) {
	c := New()
	var died error
	var victim *Proc
	started := NewEvent(c)
	resume := NewEvent(c)
	c.Go("victim", func(p *Proc) {
		victim = p
		defer func() {
			if k, ok := recover().(Killed); ok {
				died = k.Reason
			}
		}()
		started.Fire()
		resume.Wait(p) // killer flags us while we are about to block
		p.Sleep(time.Second)
	})
	c.Go("killer", func(p *Proc) {
		started.Wait(p)
		victim.Kill(errBoom) // victim is blocked on resume: withdrawn immediately
		resume.Fire()
	})
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if died != errBoom {
		t.Fatalf("kill reason = %v, want %v", died, errBoom)
	}
}

// Kill is idempotent: the first reason wins.
func TestKillIdempotent(t *testing.T) {
	c := New()
	other := errors.New("other")
	var died error
	var victim *Proc
	started := NewEvent(c)
	c.Go("victim", func(p *Proc) {
		victim = p
		defer func() {
			if k, ok := recover().(Killed); ok {
				died = k.Reason
			}
		}()
		started.Fire()
		p.Sleep(time.Hour)
	})
	c.Go("killer", func(p *Proc) {
		started.Wait(p)
		victim.Kill(errBoom)
		victim.Kill(other)
	})
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if died != errBoom {
		t.Fatalf("kill reason = %v, want first kill %v", died, errBoom)
	}
}

// Killing a proc that already exited is a harmless no-op.
func TestKillAfterExit(t *testing.T) {
	c := New()
	var victim *Proc
	done := NewEvent(c)
	c.Go("victim", func(p *Proc) {
		victim = p
		done.Fire()
	})
	c.Go("killer", func(p *Proc) {
		done.Wait(p)
		p.Sleep(time.Millisecond)
		victim.Kill(errBoom)
	})
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
}

// An unrecovered Killed panic is absorbed by the Go wrapper — the
// process just ends — and clock accounting stays balanced.
func TestKilledPanicAbsorbed(t *testing.T) {
	c := New()
	var victim *Proc
	started := NewEvent(c)
	c.Go("victim", func(p *Proc) {
		victim = p
		started.Fire()
		p.Sleep(time.Hour) // dies here; no recover in this body
	})
	c.Go("killer", func(p *Proc) {
		started.Wait(p)
		victim.Kill(errBoom)
		p.Sleep(time.Second) // clock must still advance normally
	})
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if c.Now() != time.Second {
		t.Fatalf("clock = %v, want 1s", c.Now())
	}
}

func TestKilledErrorString(t *testing.T) {
	if got := (Killed{Reason: errBoom}).Error(); got != "vclock: process killed: boom" {
		t.Fatalf("Error() = %q", got)
	}
	if got := (Killed{}).Error(); got != "vclock: process killed" {
		t.Fatalf("Error() = %q", got)
	}
}
