package vclock

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// shardedTimes runs procs ("one per shard" when shards>1, all on the
// single clock otherwise) that sleep through a fixed schedule and
// records each proc's observed wake times. The per-proc timelines must
// be identical for every shard count.
func shardedTimes(t *testing.T, shards, procs int) map[string][]time.Duration {
	t.Helper()
	var clks []*Clock
	var wait func() error
	if shards <= 1 {
		c := New()
		clks = []*Clock{c}
		wait = c.Wait
	} else {
		co := NewSharded(shards)
		clks = co.Clocks()
		wait = co.Wait
	}
	var mu sync.Mutex
	got := make(map[string][]time.Duration)
	release := clks[0].Hold()
	for i := 0; i < procs; i++ {
		name := fmt.Sprintf("p%d", i)
		c := clks[i%len(clks)]
		step := time.Duration(i+1) * time.Microsecond
		c.Go(name, func(p *Proc) {
			var times []time.Duration
			for k := 0; k < 5; k++ {
				p.Sleep(step)
				times = append(times, p.Now())
			}
			mu.Lock()
			got[name] = times
			mu.Unlock()
		})
	}
	release()
	if err := wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
	return got
}

func TestShardedMatchesSerial(t *testing.T) {
	serial := shardedTimes(t, 1, 12)
	for _, n := range []int{2, 4} {
		sharded := shardedTimes(t, n, 12)
		if len(sharded) != len(serial) {
			t.Fatalf("shards=%d: %d procs finished, want %d", n, len(sharded), len(serial))
		}
		for name, want := range serial {
			if fmt.Sprint(sharded[name]) != fmt.Sprint(want) {
				t.Errorf("shards=%d proc %s: times %v, want %v", n, name, sharded[name], want)
			}
		}
	}
}

func TestShardedNowConsistent(t *testing.T) {
	co := NewSharded(3)
	c0, c1 := co.Clock(0), co.Clock(1)
	release := c0.Hold()
	c0.Go("a", func(p *Proc) {
		p.Sleep(10 * time.Microsecond)
		// Under lockstep every shard observes the same instant.
		for i, c := range co.Clocks() {
			if c.Now() != 10*time.Microsecond {
				t.Errorf("shard %d at %v, want 10µs", i, c.Now())
			}
		}
	})
	c1.Go("b", func(p *Proc) { p.Sleep(4 * time.Microsecond) })
	release()
	if err := co.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
}

func TestShardedCrossShardEvent(t *testing.T) {
	co := NewSharded(2)
	c0, c1 := co.Clock(0), co.Clock(1)
	ev := NewEvent(c0)
	var woke time.Duration
	release := c0.Hold()
	c1.Go("waiter", func(p *Proc) {
		ev.Wait(p)
		woke = p.Now()
	})
	c0.Go("firer", func(p *Proc) {
		p.Sleep(7 * time.Microsecond)
		ev.Fire()
	})
	release()
	if err := co.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if woke != 7*time.Microsecond {
		t.Fatalf("waiter woke at %v, want 7µs", woke)
	}
}

func TestShardedCrossShardKill(t *testing.T) {
	co := NewSharded(2)
	c0, c1 := co.Clock(0), co.Clock(1)
	ev := NewEvent(c0) // never fired
	boom := errors.New("boom")
	var (
		pmu    sync.Mutex
		victim *Proc
		died   error
	)
	release := c0.Hold()
	c1.Go("victim", func(p *Proc) {
		defer func() {
			if k, ok := recover().(Killed); ok {
				died = k.Reason
			}
		}()
		pmu.Lock()
		victim = p
		pmu.Unlock()
		ev.Wait(p)
	})
	// Time only advances once the victim is blocked on the event, so at
	// 1µs the killer deterministically sees it mid-wait on shard 0's
	// event from shard 1 — the cross-shard kill path.
	c0.Go("killer", func(p *Proc) {
		p.Sleep(time.Microsecond)
		pmu.Lock()
		v := victim
		pmu.Unlock()
		v.Kill(boom)
	})
	release()
	if err := co.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if died != boom {
		t.Fatalf("victim died with %v, want %v", died, boom)
	}
	// A later Fire must not double-wake the dead proc.
	ev.Fire()
}

func TestShardedDeadlock(t *testing.T) {
	co := NewSharded(2)
	ev := NewEvent(co.Clock(0))
	release := co.Clock(0).Hold()
	co.Clock(0).Go("w0", func(p *Proc) { ev.Wait(p) })
	co.Clock(1).Go("w1", func(p *Proc) { ev.Wait(p) })
	release()
	err := co.Wait()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
	if !strings.Contains(err.Error(), "shard 0") {
		t.Errorf("deadlock report missing shard attribution: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Go on poisoned shard did not panic")
		}
	}()
	co.Clock(1).Go("late", func(p *Proc) {})
}

func TestShardedCallbackOrder(t *testing.T) {
	co := NewSharded(3)
	var order []int
	release := co.Clock(0).Hold()
	// Same-instant callbacks across shards run in creation order — the
	// coordinator-wide sequence, exactly what a serial clock would do —
	// regardless of which shard's heap each landed in.
	for i := len(co.Clocks()) - 1; i >= 0; i-- {
		i := i
		co.Clock(i).AfterFunc(5*time.Microsecond, func(time.Duration) {
			order = append(order, i)
		})
	}
	co.Clock(0).Go("driver", func(p *Proc) { p.Sleep(10 * time.Microsecond) })
	release()
	if err := co.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if fmt.Sprint(order) != "[2 1 0]" {
		t.Fatalf("callback order %v, want creation order [2 1 0]", order)
	}
}

func TestShardedLookaheadWindows(t *testing.T) {
	// Two fully decoupled shards with a generous lookahead: each may run
	// ahead within the window, and both must still account virtual time
	// exactly.
	co := NewSharded(2)
	co.SetLookahead(time.Millisecond)
	if co.Lookahead() != time.Millisecond {
		t.Fatalf("lookahead not set")
	}
	finals := make([]time.Duration, 2)
	release := co.Clock(0).Hold()
	for i := 0; i < 2; i++ {
		i := i
		step := time.Duration(7+3*i) * time.Microsecond
		co.Clock(i).Go("p", func(p *Proc) {
			for k := 0; k < 100; k++ {
				p.Sleep(step)
			}
			finals[i] = p.Now()
		})
	}
	release()
	if err := co.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if finals[0] != 700*time.Microsecond || finals[1] != 1000*time.Microsecond {
		t.Fatalf("finals %v, want [700µs 1ms]", finals)
	}
}

func TestShardedEventsAccounting(t *testing.T) {
	co := NewSharded(4)
	release := co.Clock(0).Hold()
	for i := 0; i < 8; i++ {
		co.Clock(i%4).Go("p", func(p *Proc) {
			for k := 0; k < 10; k++ {
				p.Sleep(time.Microsecond)
			}
		})
	}
	release()
	if err := co.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if got := co.Events(); got != 80 {
		t.Fatalf("Events() = %d, want 80", got)
	}
	var sum int64
	for _, n := range co.EventsByShard() {
		sum += n
	}
	if sum != 80 {
		t.Fatalf("EventsByShard sums to %d, want 80", sum)
	}
}

func TestShardedWaitEmpty(t *testing.T) {
	co := NewSharded(2)
	if err := co.Wait(); err != nil {
		t.Fatalf("wait on empty coordinator: %v", err)
	}
}

func TestShardedForeignCoordinatorPanics(t *testing.T) {
	co := NewSharded(2)
	other := New()
	ev := NewEvent(other)
	release := co.Clock(0).Hold()
	done := make(chan any, 1)
	co.Clock(0).Go("w", func(p *Proc) {
		defer func() { done <- recover() }()
		ev.Wait(p)
	})
	// The spawned process is queued until the hold releases; release
	// before blocking on its result.
	release()
	if r := <-done; r == nil {
		t.Fatalf("cross-coordinator Wait did not panic")
	}
}
