// Package vclock implements a deterministic discrete-event virtual clock.
//
// Every concurrent entity in the simulation — MPI ranks, asynchronous I/O
// background streams, file-system completion machinery — runs as a Proc
// registered with a Clock. Virtual time only advances when every live Proc
// is blocked (sleeping, waiting on an Event, or waiting on a Timer), at
// which point the clock jumps to the earliest pending wakeup. This gives
// fully deterministic runs that simulate hours of machine time in
// milliseconds of wall time while preserving the real concurrency
// structure: overlap, blocking, and contention.
//
// The package deliberately mirrors the small set of primitives a
// conservative parallel discrete-event simulation needs: processes
// (Go/Proc), time (Now/Sleep), one-shot condition signalling (Event), and
// cancellable timers with callbacks (AfterFunc). Timer callbacks run
// without the clock lock held and count as runnable work, so a callback
// may freely use the full public API; time cannot advance underneath it.
package vclock

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Clock is a discrete-event virtual clock. The zero value is not usable;
// construct with New.
type Clock struct {
	mu      sync.Mutex
	now     time.Duration
	queue   timerHeap
	seq     int64 // tiebreak for deterministic ordering of same-time entries
	running int   // procs (and in-flight callbacks) currently runnable
	alive   int   // procs started and not yet finished
	procs   map[*Proc]struct{}
	idle    *sync.Cond // signalled when alive drops to zero
	dead    bool       // deadlock detected; clock is poisoned
	deadMsg string
}

// New returns a Clock set to virtual time zero.
func New() *Clock {
	c := &Clock{procs: make(map[*Proc]struct{})}
	c.idle = sync.NewCond(&c.mu)
	return c
}

// Proc is a process registered with a Clock. All blocking operations on
// the clock take the Proc so the scheduler can account for it.
type Proc struct {
	c     *Clock
	name  string
	state string // human-readable blocking reason, for deadlock reports
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Clock returns the clock the process belongs to.
func (p *Proc) Clock() *Clock { return p.c }

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.c.Now() }

// Go spawns fn as a new process. It may be called from the host goroutine
// or from within another process. The process is runnable immediately.
func (c *Clock) Go(name string, fn func(p *Proc)) {
	p := &Proc{c: c, name: name}
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		panic("vclock: Go on deadlocked clock: " + c.deadMsg)
	}
	c.alive++
	c.running++
	c.procs[p] = struct{}{}
	c.mu.Unlock()
	go func() {
		defer func() {
			c.mu.Lock()
			c.alive--
			delete(c.procs, p)
			c.unblockLocked() // running--; may advance time or end the run
			c.mu.Unlock()
		}()
		fn(p)
	}()
}

// Hold pins virtual time: while held, the clock treats the holder as
// runnable work, so time cannot advance and deadlock detection is
// suppressed. Use it from host code that spawns processes in a loop —
// without it, the first spawned process blocking would look like a
// deadlock before the second is created. The returned release function
// is idempotent.
func (c *Clock) Hold() (release func()) {
	c.mu.Lock()
	c.running++
	c.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			c.unblockLocked()
			c.mu.Unlock()
		})
	}
}

// Wait blocks the host goroutine (in real time) until every process has
// finished and no timer callback is in flight, so post-Wait reads of the
// clock see a quiescent simulation. It returns an error if the clock
// deadlocked.
func (c *Clock) Wait() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for (c.alive > 0 || c.running > 0) && !c.dead {
		c.idle.Wait()
	}
	if c.dead {
		return fmt.Errorf("vclock: deadlock: %s", c.deadMsg)
	}
	return nil
}

// Sleep suspends the process for d of virtual time. Non-positive d yields
// the processor for the current instant (other runnable work at the same
// timestamp may interleave) without advancing time for this process.
func (p *Proc) Sleep(d time.Duration) {
	c := p.c
	if d < 0 {
		d = 0
	}
	wake := make(chan struct{})
	c.mu.Lock()
	c.push(&timerEntry{at: c.now + d, wake: wake})
	p.state = fmt.Sprintf("sleeping until %v", c.now+d)
	c.blockLocked()
	c.mu.Unlock()
	<-wake
}

// Yield lets other runnable work at the current instant proceed.
func (p *Proc) Yield() { p.Sleep(0) }

// Event is a one-shot signal in virtual time. Waiters block until Fire is
// called; waits after Fire return immediately. The zero value is not
// usable; construct with NewEvent.
type Event struct {
	c       *Clock
	fired   bool
	waiters []chan struct{}
}

// NewEvent returns an unfired Event on c.
func NewEvent(c *Clock) *Event { return &Event{c: c} }

// Fired reports whether the event has been fired.
func (e *Event) Fired() bool {
	e.c.mu.Lock()
	defer e.c.mu.Unlock()
	return e.fired
}

// Fire signals the event, waking all current waiters at the present
// instant. Firing an already-fired event is a no-op. Fire may be called
// from a process, a timer callback, or the host goroutine.
func (e *Event) Fire() {
	c := e.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.fired {
		return
	}
	e.fired = true
	for _, ch := range e.waiters {
		c.running++
		close(ch)
	}
	e.waiters = nil
}

// Wait blocks p until the event fires. Returns immediately if already
// fired.
func (e *Event) Wait(p *Proc) {
	c := e.c
	c.mu.Lock()
	if e.fired {
		c.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	e.waiters = append(e.waiters, ch)
	p.state = "waiting on event"
	c.blockLocked()
	c.mu.Unlock()
	<-ch
}

// Timer is a cancellable scheduled callback created by AfterFunc.
type Timer struct {
	c     *Clock
	entry *timerEntry
}

// AfterFunc schedules fn to run at virtual time Now()+d. The callback runs
// without the clock lock held and counts as runnable work, so time cannot
// advance while it executes; it may call any Clock, Event, or Timer
// method, but must not block on Proc operations (it has no Proc).
func (c *Clock) AfterFunc(d time.Duration, fn func(now time.Duration)) *Timer {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e := &timerEntry{at: c.now + d, fn: fn}
	c.push(e)
	return &Timer{c: c, entry: e}
}

// Stop cancels the timer. It reports whether the timer was still pending
// (true) or had already fired or been stopped (false).
func (t *Timer) Stop() bool {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	if t.entry.canceled || t.entry.fired {
		return false
	}
	t.entry.canceled = true
	return true
}

// timerEntry is a heap element: either a proc wakeup (wake != nil) or a
// scheduled callback (fn != nil).
type timerEntry struct {
	at       time.Duration
	seq      int64
	wake     chan struct{}
	fn       func(now time.Duration)
	canceled bool
	fired    bool
}

func (c *Clock) push(e *timerEntry) {
	c.seq++
	e.seq = c.seq
	heap.Push(&c.queue, e)
}

// blockLocked marks the calling process as blocked and advances virtual
// time if it was the last runnable one. Caller holds c.mu.
func (c *Clock) blockLocked() {
	c.running--
	c.maybeAdvanceLocked()
}

// unblockLocked is blockLocked for process exit paths.
func (c *Clock) unblockLocked() {
	c.running--
	c.maybeAdvanceLocked()
}

func (c *Clock) maybeAdvanceLocked() {
	if c.running > 0 || c.dead {
		return
	}
	if c.alive == 0 {
		// The last process has exited: the run is over. Time never
		// advances past the final process, so timers still pending
		// (e.g. fault windows scheduled beyond the end of the run)
		// stay unfired and post-run reads of Now() are deterministic.
		// This is also the only place Wait is woken, which guarantees
		// it cannot return while a timer callback is in flight.
		c.idle.Broadcast()
		return
	}
	// Drop canceled entries from the front.
	for c.queue.Len() > 0 && c.queue[0].canceled {
		heap.Pop(&c.queue)
	}
	if c.queue.Len() == 0 {
		if c.alive > 0 {
			// Every process is blocked and nothing is scheduled: the
			// simulation has deadlocked. Poison the clock so Wait
			// reports it; the parked process goroutines are leaked,
			// which is acceptable for a diagnosable programming error.
			c.dead = true
			c.deadMsg = c.describeStuckLocked()
			c.idle.Broadcast()
		}
		return
	}
	t := c.queue[0].at
	c.now = t
	var cbs []*timerEntry
	for c.queue.Len() > 0 && (c.queue[0].at == t || c.queue[0].canceled) {
		e := heap.Pop(&c.queue).(*timerEntry)
		if e.canceled {
			continue
		}
		e.fired = true
		if e.wake != nil {
			c.running++
			close(e.wake)
		} else {
			cbs = append(cbs, e)
		}
	}
	if len(cbs) > 0 {
		// Callbacks count as runnable work so time holds still while
		// they execute. They run on a fresh goroutine because the
		// current one belongs to a process that is itself blocking.
		c.running += len(cbs)
		go func(now time.Duration) {
			for _, e := range cbs {
				e.fn(now)
				c.mu.Lock()
				c.unblockLocked()
				c.mu.Unlock()
			}
		}(t)
	}
}

func (c *Clock) describeStuckLocked() string {
	names := make([]string, 0, len(c.procs))
	for p := range c.procs {
		st := p.state
		if st == "" {
			st = "running"
		}
		names = append(names, fmt.Sprintf("%s (%s)", p.name, st))
	}
	sort.Strings(names)
	return fmt.Sprintf("%d proc(s) blocked with no pending timers at t=%v: %s",
		len(names), c.now, strings.Join(names, ", "))
}

// timerHeap orders entries by time, then insertion sequence.
type timerHeap []*timerEntry

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(*timerEntry)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
