// Package vclock implements a deterministic discrete-event virtual clock.
//
// Every concurrent entity in the simulation — MPI ranks, asynchronous I/O
// background streams, file-system completion machinery — runs as a Proc
// registered with a Clock. Virtual time only advances when every live Proc
// is blocked (sleeping, waiting on an Event, or waiting on a Timer), at
// which point the clock jumps to the earliest pending wakeup. This gives
// fully deterministic runs that simulate hours of machine time in
// milliseconds of wall time while preserving the real concurrency
// structure: overlap, blocking, and contention.
//
// The package deliberately mirrors the small set of primitives a
// conservative parallel discrete-event simulation needs: processes
// (Go/Proc), time (Now/Sleep), one-shot condition signalling (Event), and
// cancellable timers with callbacks (AfterFunc). Timer callbacks run
// without the clock lock held and count as runnable work, so a callback
// may freely use the full public API; time cannot advance underneath it.
//
// The event engine is built for throughput: timer entries are pooled and
// recycled (generation-tagged so a stale Timer handle can never cancel or
// re-fire a recycled entry), every Proc owns one reusable wake channel,
// same-instant wakeups are drained as a single batch, callbacks run
// inline on the advancing goroutine instead of spawning one per batch,
// and cancellation removes the heap entry in O(log n) via its maintained
// index rather than leaving garbage for later scans. Now() is lock-free.
package vclock

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Clock is a discrete-event virtual clock. The zero value is not usable;
// construct with New.
type Clock struct {
	mu      sync.Mutex
	now     time.Duration
	nowView atomic.Int64 // mirror of now for lock-free Now()
	events  atomic.Int64 // fired entries (proc wakeups + callbacks)
	queue   timerHeap
	seq     int64 // tiebreak for deterministic ordering of same-time entries
	running int   // procs (and in-flight callbacks) currently runnable
	alive   int   // procs started and not yet finished
	procs   map[*Proc]struct{}
	idle    *sync.Cond // signalled when alive drops to zero
	dead    bool       // deadlock detected; clock is poisoned
	deadMsg string

	free      []*timerEntry             // recycled entries (the pool)
	cbScratch []func(now time.Duration) // batch buffer for same-instant callbacks
}

// New returns a Clock set to virtual time zero.
func New() *Clock {
	c := &Clock{procs: make(map[*Proc]struct{})}
	c.idle = sync.NewCond(&c.mu)
	return c
}

// blocking reasons, formatted lazily only for deadlock reports so the hot
// Sleep path never touches fmt.
type procState uint8

const (
	stateRunning procState = iota
	stateSleeping
	stateEventWait
)

// Proc is a process registered with a Clock. All blocking operations on
// the clock take the Proc so the scheduler can account for it.
type Proc struct {
	c       *Clock
	name    string
	wake    chan struct{} // reusable cap-1 wake signal; a proc blocks on one thing at a time
	state   procState
	stateAt time.Duration // wake deadline when sleeping, for deadlock reports

	// Kill support. pending is the sleep timer entry while blocked in
	// Sleep, waitingOn the event while blocked in Wait (both guarded by
	// c.mu) so Kill can dequeue a blocked victim; killed is checked
	// lock-free after every wake, and killErr is safely visible to any
	// reader that observed killed == true.
	pending   *timerEntry
	waitingOn *Event
	killed    atomic.Bool
	killErr   error
}

// Killed is the panic value a killed process unwinds with. Spawners that
// need to observe the death (an MPI rank wrapper recording a crash, a
// background stream failing its queue) recover it; a Killed panic that
// reaches the top of a process goroutine is absorbed by the clock, so an
// unobserved kill simply ends the process.
type Killed struct{ Reason error }

// Error makes the panic value usable as an error after recovery.
func (k Killed) Error() string {
	if k.Reason != nil {
		return "vclock: process killed: " + k.Reason.Error()
	}
	return "vclock: process killed"
}

// Kill marks p as killed. The victim unwinds with a Killed panic at its
// next blocking operation — immediately, at the current virtual instant,
// if it is already blocked in Sleep or Event.Wait (its pending wakeup is
// cancelled). Idempotent: only the first reason sticks. Kill may be
// called from another process, a timer callback, or the host goroutine;
// a process must not kill itself (panic with Killed directly instead).
func (p *Proc) Kill(reason error) {
	c := p.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if p.killed.Load() {
		return
	}
	p.killErr = reason
	p.killed.Store(true)
	if e := p.pending; e != nil {
		// Asleep: cancel the scheduled wakeup and wake it now to die.
		heap.Remove(&c.queue, e.index)
		c.recycle(e)
		p.pending = nil
		c.running++
		p.wake <- struct{}{}
		return
	}
	if ev := p.waitingOn; ev != nil {
		// Blocked on an event: withdraw from the waiter list (a later
		// Fire must not signal a dead proc) and wake it now to die.
		for i, w := range ev.waiters {
			if w == p {
				ev.waiters = append(ev.waiters[:i], ev.waiters[i+1:]...)
				break
			}
		}
		p.waitingOn = nil
		c.running++
		p.wake <- struct{}{}
	}
	// Otherwise the proc is runnable; it dies at its next Sleep/Wait.
}

// checkKilled panics with Killed if the proc has been killed. Safe to
// call lock-free: killErr is published before the killed flag.
func (p *Proc) checkKilled() {
	if p.killed.Load() {
		panic(Killed{p.killErr})
	}
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Clock returns the clock the process belongs to.
func (p *Proc) Clock() *Clock { return p.c }

// Now returns the current virtual time. It is lock-free: time cannot
// advance while any process is runnable, so a running caller always sees
// a stable value.
func (c *Clock) Now() time.Duration {
	return time.Duration(c.nowView.Load())
}

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.c.Now() }

// Events returns the number of timer-queue entries fired so far — proc
// wakeups plus timer callbacks. It is the denominator for the
// events/second and ns/event throughput metrics the self-benchmark
// (internal/simbench) reports.
func (c *Clock) Events() int64 { return c.events.Load() }

// totalEvents accumulates fired entries across every Clock in the
// process, so throughput can be measured over code (figure generators)
// that builds clocks internally.
var totalEvents atomic.Int64

// TotalEvents returns the process-wide count of fired timer-queue
// entries across all clocks. Monotonic; meant for before/after deltas.
func TotalEvents() int64 { return totalEvents.Load() }

// Go spawns fn as a new process. It may be called from the host goroutine
// or from within another process. The process is runnable immediately.
func (c *Clock) Go(name string, fn func(p *Proc)) {
	p := &Proc{c: c, name: name, wake: make(chan struct{}, 1)}
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		panic("vclock: Go on deadlocked clock: " + c.deadMsg)
	}
	c.alive++
	c.running++
	c.procs[p] = struct{}{}
	c.mu.Unlock()
	go func() {
		defer func() {
			c.mu.Lock()
			c.alive--
			delete(c.procs, p)
			c.unblockLocked() // running--; may advance time or end the run
			c.mu.Unlock()
		}()
		defer func() {
			// A Killed panic that nobody recovered means the spawner does
			// not care how the process ends; absorb it so the kill just
			// terminates the process instead of crashing the host.
			if r := recover(); r != nil {
				if _, ok := r.(Killed); !ok {
					panic(r)
				}
			}
		}()
		fn(p)
	}()
}

// Hold pins virtual time: while held, the clock treats the holder as
// runnable work, so time cannot advance and deadlock detection is
// suppressed. Use it from host code that spawns processes in a loop —
// without it, the first spawned process blocking would look like a
// deadlock before the second is created. The returned release function
// is idempotent.
func (c *Clock) Hold() (release func()) {
	c.mu.Lock()
	c.running++
	c.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			c.unblockLocked()
			c.mu.Unlock()
		})
	}
}

// Wait blocks the host goroutine (in real time) until every process has
// finished and no timer callback is in flight, so post-Wait reads of the
// clock see a quiescent simulation. It returns an error if the clock
// deadlocked.
func (c *Clock) Wait() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for (c.alive > 0 || c.running > 0) && !c.dead {
		c.idle.Wait()
	}
	if c.dead {
		return fmt.Errorf("vclock: deadlock: %s", c.deadMsg)
	}
	return nil
}

// Sleep suspends the process for d of virtual time. Non-positive d yields
// the processor for the current instant (other runnable work at the same
// timestamp may interleave) without advancing time for this process.
func (p *Proc) Sleep(d time.Duration) {
	c := p.c
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	if p.killed.Load() {
		c.mu.Unlock()
		panic(Killed{p.killErr})
	}
	e := c.alloc()
	e.at = c.now + d
	e.wake = p.wake
	e.proc = p
	p.pending = e
	c.push(e)
	p.state = stateSleeping
	p.stateAt = e.at
	c.blockLocked()
	c.mu.Unlock()
	<-p.wake
	p.state = stateRunning
	p.checkKilled()
}

// Yield lets other runnable work at the current instant proceed.
func (p *Proc) Yield() { p.Sleep(0) }

// Event is a one-shot signal in virtual time. Waiters block until Fire is
// called; waits after Fire return immediately. The zero value is not
// usable; construct with NewEvent.
type Event struct {
	c       *Clock
	fired   bool
	waiters []*Proc
}

// NewEvent returns an unfired Event on c.
func NewEvent(c *Clock) *Event { return &Event{c: c} }

// Fired reports whether the event has been fired.
func (e *Event) Fired() bool {
	e.c.mu.Lock()
	defer e.c.mu.Unlock()
	return e.fired
}

// Fire signals the event, waking all current waiters at the present
// instant. Firing an already-fired event is a no-op. Fire may be called
// from a process, a timer callback, or the host goroutine.
func (e *Event) Fire() {
	c := e.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.fired {
		return
	}
	e.fired = true
	for _, p := range e.waiters {
		c.running++
		p.waitingOn = nil
		p.wake <- struct{}{} // cap-1 per-proc channel; a waiter has no other pending wake
	}
	e.waiters = nil
}

// Wait blocks p until the event fires. Returns immediately if already
// fired.
func (e *Event) Wait(p *Proc) {
	c := e.c
	c.mu.Lock()
	if p.killed.Load() {
		c.mu.Unlock()
		panic(Killed{p.killErr})
	}
	if e.fired {
		c.mu.Unlock()
		return
	}
	e.waiters = append(e.waiters, p)
	p.waitingOn = e
	p.state = stateEventWait
	c.blockLocked()
	c.mu.Unlock()
	<-p.wake
	p.state = stateRunning
	p.checkKilled()
}

// Timer is a cancellable scheduled callback created by AfterFunc. The
// handle is generation-tagged: once the callback fires (or Stop succeeds)
// the underlying pooled entry may be recycled for an unrelated timer, and
// the stale handle's Stop becomes an inert no-op.
type Timer struct {
	c     *Clock
	entry *timerEntry
	gen   uint64
}

// AfterFunc schedules fn to run at virtual time Now()+d. The callback runs
// without the clock lock held and counts as runnable work, so time cannot
// advance while it executes; it may call any Clock, Event, or Timer
// method, but must not block on Proc operations (it has no Proc).
func (c *Clock) AfterFunc(d time.Duration, fn func(now time.Duration)) *Timer {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.alloc()
	e.at = c.now + d
	e.fn = fn
	c.push(e)
	return &Timer{c: c, entry: e, gen: e.gen}
}

// Stop cancels the timer. It reports whether the timer was still pending
// (true) or had already fired or been stopped (false). Cancellation
// removes the entry from the queue in O(log n) via its heap index.
func (t *Timer) Stop() bool {
	c := t.c
	c.mu.Lock()
	defer c.mu.Unlock()
	e := t.entry
	if e.gen != t.gen {
		return false // fired or stopped; the entry may already serve another timer
	}
	heap.Remove(&c.queue, e.index)
	c.recycle(e)
	return true
}

// timerEntry is a pooled heap element: either a proc wakeup (wake != nil)
// or a scheduled callback (fn != nil). index is its heap position,
// maintained by timerHeap.Swap so removal needs no scan; gen increments
// on every recycle so stale Timer handles cannot touch a reused entry.
type timerEntry struct {
	at    time.Duration
	seq   int64
	index int
	gen   uint64
	wake  chan struct{}
	proc  *Proc // owner of a sleep wakeup, so Kill can cancel it; nil for callbacks
	fn    func(now time.Duration)
}

// alloc takes an entry from the pool (or makes one). Caller holds c.mu.
func (c *Clock) alloc() *timerEntry {
	if n := len(c.free); n > 0 {
		e := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		return e
	}
	return &timerEntry{}
}

// recycle bumps the entry's generation (invalidating outstanding Timer
// handles), clears it, and returns it to the pool. Caller holds c.mu.
func (c *Clock) recycle(e *timerEntry) {
	e.gen++
	e.wake = nil
	e.proc = nil
	e.fn = nil
	e.index = -1
	c.free = append(c.free, e)
}

func (c *Clock) push(e *timerEntry) {
	c.seq++
	e.seq = c.seq
	heap.Push(&c.queue, e)
}

// blockLocked marks the calling process as blocked and advances virtual
// time if it was the last runnable one. Caller holds c.mu.
func (c *Clock) blockLocked() {
	c.running--
	c.maybeAdvanceLocked()
}

// unblockLocked is blockLocked for process exit paths.
func (c *Clock) unblockLocked() {
	c.running--
	c.maybeAdvanceLocked()
}

// maybeAdvanceLocked advances virtual time while nothing is runnable.
// Each iteration jumps to the earliest pending instant and fires every
// entry scheduled there as one batch: proc wakeups are signalled on their
// reusable channels, and callbacks run inline on this goroutine (with the
// lock released) rather than on a spawned one — callbacks count as
// runnable work, so no other goroutine can advance concurrently and the
// shared batch buffer is safe. The loop (instead of recursion) keeps long
// callback chains — e.g. a flow server rescheduling its completion timer
// for the whole run — at constant stack depth. Caller holds c.mu; the
// lock is held again on return.
func (c *Clock) maybeAdvanceLocked() {
	for {
		if c.running > 0 || c.dead {
			return
		}
		if c.alive == 0 {
			// The last process has exited: the run is over. Time never
			// advances past the final process, so timers still pending
			// (e.g. fault windows scheduled beyond the end of the run)
			// stay unfired and post-run reads of Now() are deterministic.
			// This is also the only place Wait is woken, which guarantees
			// it cannot return while a timer callback is in flight.
			c.idle.Broadcast()
			return
		}
		if c.queue.Len() == 0 {
			// Every process is blocked and nothing is scheduled: the
			// simulation has deadlocked. Poison the clock so Wait
			// reports it; the parked process goroutines are leaked,
			// which is acceptable for a diagnosable programming error.
			c.dead = true
			c.deadMsg = c.describeStuckLocked()
			c.idle.Broadcast()
			return
		}
		t := c.queue[0].at
		c.now = t
		c.nowView.Store(int64(t))
		cbs := c.cbScratch[:0]
		var fired int64
		for c.queue.Len() > 0 && c.queue[0].at == t {
			e := heap.Pop(&c.queue).(*timerEntry)
			fired++
			if e.wake != nil {
				if e.proc != nil {
					e.proc.pending = nil
				}
				c.running++
				e.wake <- struct{}{}
			} else {
				cbs = append(cbs, e.fn)
			}
			c.recycle(e)
		}
		c.cbScratch = cbs
		c.events.Add(fired)
		totalEvents.Add(fired)
		if len(cbs) == 0 {
			return // woke at least one proc; it owns the next advance
		}
		// Callbacks count as runnable work so time holds still while
		// they execute; run them here with the lock dropped.
		c.running += len(cbs)
		c.mu.Unlock()
		for _, fn := range cbs {
			fn(t)
		}
		c.mu.Lock()
		c.running -= len(cbs)
	}
}

func (c *Clock) describeStuckLocked() string {
	names := make([]string, 0, len(c.procs))
	for p := range c.procs {
		var st string
		switch p.state {
		case stateSleeping:
			st = fmt.Sprintf("sleeping until %v", p.stateAt)
		case stateEventWait:
			st = "waiting on event"
		default:
			st = "running"
		}
		names = append(names, fmt.Sprintf("%s (%s)", p.name, st))
	}
	sort.Strings(names)
	return fmt.Sprintf("%d proc(s) blocked with no pending timers at t=%v: %s",
		len(names), c.now, strings.Join(names, ", "))
}

// timerHeap orders entries by time, then insertion sequence, and keeps
// each entry's index current so cancellation can heap.Remove in O(log n).
type timerHeap []*timerEntry

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x any) {
	e := x.(*timerEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
