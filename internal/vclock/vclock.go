// Package vclock implements a deterministic discrete-event virtual clock.
//
// Every concurrent entity in the simulation — MPI ranks, asynchronous I/O
// background streams, file-system completion machinery — runs as a Proc
// registered with a Clock. Virtual time only advances when every live Proc
// is blocked (sleeping, waiting on an Event, or waiting on a Timer), at
// which point the clock jumps to the earliest pending wakeup. This gives
// fully deterministic runs that simulate hours of machine time in
// milliseconds of wall time while preserving the real concurrency
// structure: overlap, blocking, and contention.
//
// The package deliberately mirrors the small set of primitives a
// conservative parallel discrete-event simulation needs: processes
// (Go/Proc), time (Now/Sleep), one-shot condition signalling (Event), and
// cancellable timers with callbacks (AfterFunc). Timer callbacks run
// without the clock lock held and count as runnable work, so a callback
// may freely use the full public API; time cannot advance underneath it.
//
// Determinism comes from full serialization of process execution: at any
// real moment at most one process of a Clock is running. Every wakeup —
// a timer window's sleeper batch, an Event.Fire, a Kill, a Go spawn — is
// parked in a FIFO run queue rather than signalled immediately, and the
// advance loop delivers exactly one parked wakeup whenever the clock is
// idle (no process running, no callback in flight). The woken process
// runs to its next blocking point before the next wakeup is delivered.
// Same-instant processes therefore interact with shared simulation state
// (message queues, caches, FIFO servers) in one canonical order — timer
// pops in (time, seq) order, then dynamically-triggered wakeups in the
// order the serialized execution produced them — regardless of
// GOMAXPROCS, async preemption, or host-machine load.
//
// The event engine is built for throughput: timer entries are pooled and
// recycled (generation-tagged so a stale Timer handle can never cancel or
// re-fire a recycled entry), every Proc owns one reusable wake channel,
// same-instant wakeups are drained as a single batch, callbacks run
// inline on the advancing goroutine instead of spawning one per batch,
// and cancellation removes the heap entry in O(log n) via its maintained
// index rather than leaving garbage for later scans. Now() is lock-free.
package vclock

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Clock is a discrete-event virtual clock. The zero value is not usable;
// construct with New.
type Clock struct {
	mu      sync.Mutex
	now     time.Duration
	nowView atomic.Int64 // mirror of now for lock-free Now()
	events  atomic.Int64 // fired entries (proc wakeups + callbacks)
	queue   timerHeap
	seq     int64 // tiebreak for deterministic ordering of same-time entries
	running int   // procs (and in-flight callbacks) currently runnable
	alive   int   // procs started and not yet finished
	procs   map[*Proc]struct{}
	idle    *sync.Cond // signalled when alive drops to zero
	dead    bool       // deadlock detected; clock is poisoned
	deadMsg string

	free      []*timerEntry             // recycled entries (the pool)
	cbScratch []func(now time.Duration) // batch buffer for same-instant callbacks

	// The serialized run queue (serial engine and per-shard under a
	// lookahead > 0 coordinator; the lockstep coordinator keeps a global
	// one instead — see shard.go). Every wakeup is parked here and
	// delivered one at a time, each only once the clock is idle, so the
	// woken proc runs with every other process parked at a blocking
	// point — the order a single-CPU FIFO scheduler produces. deferHead
	// indexes the next wake to deliver; the slice is reset when drained
	// so the backing array is reused.
	deferredQ []chan struct{}
	deferHead int

	// Sharded mode (see shard.go): when coord is non-nil this clock is
	// shard `shard` of a Coordinator, which owns all time advancement;
	// block sites poke it after releasing mu instead of advancing
	// in-place. Both are set once at construction and read-only after.
	coord *Coordinator
	shard int

	// waitObs, when non-nil, observes every blocking interval (sleeps
	// and event waits). Set once via SetWaitObserver before any process
	// runs; read lock-free on the hot path.
	waitObs WaitObserver
}

// WaitObserver receives every blocking edge of the clock's processes:
// kind is "sleep" or "event", label the event's label (empty for
// sleeps and unlabeled events), start/end the blocked interval in
// virtual time, and crossShard whether the wait crossed a shard
// boundary of a sharded engine. Implementations must be safe for
// concurrent use and cheap — they run on every blocking operation.
// internal/critpath's Recorder implements this interface.
type WaitObserver interface {
	ObserveWait(proc, kind, label string, start, end time.Duration, crossShard bool)
}

// SetWaitObserver installs o as the clock's blocking-edge observer.
// Must be called before any process runs; the field is read without
// synchronization afterwards.
func (c *Clock) SetWaitObserver(o WaitObserver) { c.waitObs = o }

// New returns a Clock set to virtual time zero.
func New() *Clock {
	c := &Clock{procs: make(map[*Proc]struct{})}
	c.idle = sync.NewCond(&c.mu)
	return c
}

// Coordinator returns the coordinator this clock is a shard of, or nil
// for a serial clock.
func (c *Clock) Coordinator() *Coordinator { return c.coord }

// Shard returns this clock's shard index within its coordinator; 0 for
// a serial clock.
func (c *Clock) Shard() int { return c.shard }

// pokeNeededLocked reports whether the caller, having just decremented
// running, must poke the coordinator after releasing c.mu. Serial clocks
// never need a poke (blockLocked advances in-place).
func (c *Clock) pokeNeededLocked() bool {
	return c.coord != nil && c.running == 0
}

// blocking reasons, formatted lazily only for deadlock reports so the hot
// Sleep path never touches fmt.
type procState uint8

const (
	stateRunning procState = iota
	stateSleeping
	stateEventWait
)

// Proc is a process registered with a Clock. All blocking operations on
// the clock take the Proc so the scheduler can account for it.
type Proc struct {
	c       *Clock
	name    string
	wake    chan struct{} // reusable cap-1 wake signal; a proc blocks on one thing at a time
	state   procState
	stateAt time.Duration // wake deadline when sleeping, for deadlock reports

	// Kill support. pending is the sleep timer entry while blocked in
	// Sleep, waitingOn the event while blocked in Wait (both guarded by
	// c.mu) so Kill can dequeue a blocked victim; killed is checked
	// lock-free after every wake, and killErr is safely visible to any
	// reader that observed killed == true.
	pending   *timerEntry
	waitingOn *Event
	killed    atomic.Bool
	killErr   error
}

// Killed is the panic value a killed process unwinds with. Spawners that
// need to observe the death (an MPI rank wrapper recording a crash, a
// background stream failing its queue) recover it; a Killed panic that
// reaches the top of a process goroutine is absorbed by the clock, so an
// unobserved kill simply ends the process.
type Killed struct{ Reason error }

// Error makes the panic value usable as an error after recovery.
func (k Killed) Error() string {
	if k.Reason != nil {
		return "vclock: process killed: " + k.Reason.Error()
	}
	return "vclock: process killed"
}

// Kill marks p as killed. The victim unwinds with a Killed panic at its
// next blocking operation — immediately, at the current virtual instant,
// if it is already blocked in Sleep or Event.Wait (its pending wakeup is
// cancelled). Idempotent: only the first reason sticks. Kill may be
// called from another process, a timer callback, or the host goroutine;
// a process must not kill itself (panic with Killed directly instead).
func (p *Proc) Kill(reason error) {
	c := p.c
	c.mu.Lock()
	if p.killed.Load() {
		c.mu.Unlock()
		return
	}
	p.killErr = reason
	p.killed.Store(true)
	if e := p.pending; e != nil {
		// Asleep: cancel the scheduled wakeup and queue it to die.
		heap.Remove(&c.queue, e.index)
		c.recycle(e)
		p.pending = nil
		c.parkWakeLocked(p.wake)
		c.mu.Unlock()
		c.kick()
		return
	}
	if ev := p.waitingOn; ev != nil {
		// Blocked on an event: claim the wakeup by clearing waitingOn
		// under the victim's clock lock — a racing Fire skips any waiter
		// whose waitingOn no longer points at it — then withdraw from
		// the waiter list so the event doesn't keep a dead proc.
		p.waitingOn = nil
		c.parkWakeLocked(p.wake)
		if ev.c == c {
			removeWaiterLocked(ev, p)
			c.mu.Unlock()
		} else {
			// Cross-shard event: the waiter list is guarded by the
			// event's clock lock, never held together with the victim's.
			c.mu.Unlock()
			ev.c.mu.Lock()
			removeWaiterLocked(ev, p)
			ev.c.mu.Unlock()
		}
		c.kick()
		return
	}
	// Otherwise the proc is runnable (or already queued to run); it dies
	// at its next blocking operation or at its queued wakeup.
	c.mu.Unlock()
}

// removeWaiterLocked withdraws p from ev's waiter list if present.
// Caller holds ev.c.mu. A concurrent Fire may already have stolen the
// list, in which case p is simply absent.
func removeWaiterLocked(ev *Event, p *Proc) {
	for i, w := range ev.waiters {
		if w == p {
			ev.waiters = append(ev.waiters[:i], ev.waiters[i+1:]...)
			return
		}
	}
}

// parkWakeLocked enqueues a wakeup on the serialized run queue that owns
// this clock's delivery order: the clock's own queue for a serial clock
// or a lookahead > 0 shard, the coordinator's global queue under
// lockstep. The woken proc carries no runnable claim while parked; the
// delivering advance loop claims running++ at the moment it signals the
// channel. Caller holds c.mu and should kick() after releasing it.
func (c *Clock) parkWakeLocked(ch chan struct{}) {
	if co := c.coord; co != nil && co.lockstep.Load() {
		co.parkGlobal(c, ch)
		return
	}
	c.deferredQ = append(c.deferredQ, ch)
}

// kick nudges delivery after parking wakes: a no-op while any process or
// callback is running (the next block point delivers), it matters when
// the parker is the host goroutine or a timer callback on an otherwise
// idle clock. Caller must NOT hold c.mu.
func (c *Clock) kick() {
	co := c.coord
	if co == nil {
		c.mu.Lock()
		c.maybeAdvanceLocked()
		c.mu.Unlock()
		return
	}
	if co.lockstep.Load() {
		co.poke()
		return
	}
	// Lookahead > 0 shard: delivery is shard-local.
	c.mu.Lock()
	c.deliverLocalLocked()
	c.mu.Unlock()
}

// deliverLocalLocked delivers the head of this clock's own run queue if
// the clock is idle. Caller holds c.mu. Used by lookahead > 0 shards
// (and internally by the serial advance loop's equivalent path).
func (c *Clock) deliverLocalLocked() {
	if c.running > 0 || c.dead {
		return
	}
	if c.deferHead >= len(c.deferredQ) {
		return
	}
	ch := c.deferredQ[c.deferHead]
	c.deferredQ[c.deferHead] = nil
	c.deferHead++
	if c.deferHead == len(c.deferredQ) {
		c.deferredQ = c.deferredQ[:0]
		c.deferHead = 0
	}
	c.running++
	ch <- struct{}{}
}

// checkKilled panics with Killed if the proc has been killed. Safe to
// call lock-free: killErr is published before the killed flag.
func (p *Proc) checkKilled() {
	if p.killed.Load() {
		panic(Killed{p.killErr})
	}
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Clock returns the clock the process belongs to.
func (p *Proc) Clock() *Clock { return p.c }

// Now returns the current virtual time. It is lock-free: time cannot
// advance while any process is runnable, so a running caller always sees
// a stable value.
func (c *Clock) Now() time.Duration {
	return time.Duration(c.nowView.Load())
}

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.c.Now() }

// Events returns the number of timer-queue entries fired so far — proc
// wakeups plus timer callbacks. It is the denominator for the
// events/second and ns/event throughput metrics the self-benchmark
// (internal/simbench) reports.
func (c *Clock) Events() int64 { return c.events.Load() }

// totalEvents accumulates fired entries across every Clock in the
// process, so throughput can be measured over code (figure generators)
// that builds clocks internally.
var totalEvents atomic.Int64

// TotalEvents returns the process-wide count of fired timer-queue
// entries across all clocks. Monotonic; meant for before/after deltas.
func TotalEvents() int64 { return totalEvents.Load() }

// Go spawns fn as a new process. It may be called from the host goroutine
// or from within another process. The process's first run is queued like
// any other wakeup, preserving the serialized execution order; a spawner
// that needs several processes registered before any runs should Hold.
func (c *Clock) Go(name string, fn func(p *Proc)) {
	p := &Proc{c: c, name: name, wake: make(chan struct{}, 1)}
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		panic("vclock: Go on deadlocked clock: " + c.deadMsg)
	}
	c.alive++
	c.procs[p] = struct{}{}
	c.parkWakeLocked(p.wake)
	c.mu.Unlock()
	go func() {
		defer func() {
			c.mu.Lock()
			c.alive--
			delete(c.procs, p)
			c.unblockLocked() // running--; may advance time or end the run
			poke := c.pokeNeededLocked()
			c.mu.Unlock()
			if poke {
				c.coord.poke()
			}
		}()
		defer func() {
			// A Killed panic that nobody recovered means the spawner does
			// not care how the process ends; absorb it so the kill just
			// terminates the process instead of crashing the host.
			if r := recover(); r != nil {
				if _, ok := r.(Killed); !ok {
					panic(r)
				}
			}
		}()
		<-p.wake
		p.checkKilled() // killed before first run: die without running fn
		fn(p)
	}()
	c.kick()
}

// Hold pins virtual time: while held, the clock treats the holder as
// runnable work, so time cannot advance and deadlock detection is
// suppressed. Use it from host code that spawns processes in a loop —
// without it, the first spawned process blocking would look like a
// deadlock before the second is created. The returned release function
// is idempotent.
func (c *Clock) Hold() (release func()) {
	c.mu.Lock()
	c.running++
	c.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			c.unblockLocked()
			poke := c.pokeNeededLocked()
			c.mu.Unlock()
			if poke {
				c.coord.poke()
			}
		})
	}
}

// Wait blocks the host goroutine (in real time) until every process has
// finished and no timer callback is in flight, so post-Wait reads of the
// clock see a quiescent simulation. It returns an error if the clock
// deadlocked.
func (c *Clock) Wait() error {
	if c.coord != nil {
		// A shard finishes only when the whole sharded run finishes.
		return c.coord.Wait()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// A run whose processes are all still parked (spawned but never
	// delivered) has no block point to advance from; evaluate once.
	c.maybeAdvanceLocked()
	for (c.alive > 0 || c.running > 0) && !c.dead {
		c.idle.Wait()
	}
	if c.dead {
		return fmt.Errorf("vclock: deadlock: %s", c.deadMsg)
	}
	return nil
}

// Sleep suspends the process for d of virtual time. Non-positive d yields
// the processor for the current instant (other runnable work at the same
// timestamp may interleave) without advancing time for this process.
func (p *Proc) Sleep(d time.Duration) {
	c := p.c
	if d < 0 {
		d = 0
	}
	var sleepStart time.Duration
	if c.waitObs != nil {
		sleepStart = c.Now()
	}
	c.mu.Lock()
	if p.killed.Load() {
		c.mu.Unlock()
		panic(Killed{p.killErr})
	}
	e := c.alloc()
	e.at = c.now + d
	e.wake = p.wake
	e.proc = p
	p.pending = e
	c.push(e)
	p.state = stateSleeping
	p.stateAt = e.at
	c.blockLocked()
	poke := c.pokeNeededLocked()
	c.mu.Unlock()
	if poke {
		c.coord.poke()
	}
	<-p.wake
	p.state = stateRunning
	p.checkKilled()
	if o := c.waitObs; o != nil {
		o.ObserveWait(p.name, "sleep", "", sleepStart, c.Now(), false)
	}
}

// Yield lets other runnable work at the current instant proceed.
func (p *Proc) Yield() { p.Sleep(0) }

// Event is a one-shot signal in virtual time. Waiters block until Fire is
// called; waits after Fire return immediately. The zero value is not
// usable; construct with NewEvent.
type Event struct {
	c       *Clock
	label   string
	fired   bool
	waiters []*Proc
}

// NewEvent returns an unfired Event on c.
func NewEvent(c *Clock) *Event { return &Event{c: c} }

// NewEventNamed returns an unfired Event carrying a label that wait
// observers see; the label has no effect on scheduling.
func NewEventNamed(c *Clock, label string) *Event { return &Event{c: c, label: label} }

// Fired reports whether the event has been fired.
func (e *Event) Fired() bool {
	e.c.mu.Lock()
	defer e.c.mu.Unlock()
	return e.fired
}

// Fire signals the event, queueing a wakeup for every current waiter at
// the present instant. Firing an already-fired event is a no-op. Fire
// may be called from a process, a timer callback, or the host goroutine.
// Waiters may live on other shards of the event clock's coordinator:
// each is parked on its own clock's run queue.
func (e *Event) Fire() {
	c := e.c
	c.mu.Lock()
	if e.fired {
		c.mu.Unlock()
		return
	}
	e.fired = true
	waiters := e.waiters
	e.waiters = nil
	if c.coord == nil {
		// Serial: every waiter lives on this clock; park in
		// registration order under the single lock. The waitingOn
		// check skips waiters a racing Kill already claimed (it clears
		// waitingOn under the waiter's lock, which is this one).
		parked := false
		for _, p := range waiters {
			if p.waitingOn == e {
				p.waitingOn = nil
				c.parkWakeLocked(p.wake)
				parked = true
			}
		}
		c.mu.Unlock()
		if parked {
			c.kick()
		}
		return
	}
	c.mu.Unlock()
	// Sharded: waiters may span shards. Park strictly in registration
	// order, one waiter's clock at a time — under lockstep the global
	// run-queue order is part of the output and must match the serial
	// engine's registration order, so same-shard waiters must not jump
	// ahead of earlier cross-shard ones. Kicks happen only after every
	// waiter is parked; kicking mid-loop could deliver an early waiter
	// whose execution then interleaves with the remaining parks.
	kicks := waiters[:0]
	for _, p := range waiters {
		pc := p.c
		pc.mu.Lock()
		if p.waitingOn != e {
			pc.mu.Unlock() // claimed by a concurrent Kill
			continue
		}
		p.waitingOn = nil
		pc.parkWakeLocked(p.wake)
		pc.mu.Unlock()
		kicks = append(kicks, p)
	}
	for _, p := range kicks {
		p.c.kick()
	}
}

// Wait blocks p until the event fires. Returns immediately if already
// fired. p may live on a different shard than the event; both clocks
// must then belong to one coordinator.
func (e *Event) Wait(p *Proc) {
	c := e.c
	if p.c != c {
		e.waitCross(p)
		return
	}
	c.mu.Lock()
	if p.killed.Load() {
		c.mu.Unlock()
		panic(Killed{p.killErr})
	}
	if e.fired {
		c.mu.Unlock()
		return
	}
	// Capture the wait's start before blockLocked: on the serial engine
	// blocking the last runnable proc advances the clock inline, so a
	// read afterwards would see the wake instant, not the block instant.
	var start time.Duration
	obs := c.waitObs
	if obs != nil {
		start = time.Duration(c.nowView.Load())
	}
	e.waiters = append(e.waiters, p)
	p.waitingOn = e
	p.state = stateEventWait
	c.blockLocked()
	poke := c.pokeNeededLocked()
	c.mu.Unlock()
	if poke {
		c.coord.poke()
	}
	<-p.wake
	p.state = stateRunning
	p.checkKilled()
	if obs != nil {
		obs.ObserveWait(p.name, "event", e.label, start, c.Now(), false)
	}
}

// waitCross is Wait for a waiter on a different shard than the event.
// It takes both clock locks in shard order (deadlock-free because every
// multi-lock path orders the same way and no path nests the coordinator
// mutex inside a shard lock).
func (e *Event) waitCross(p *Proc) {
	ec, pc := e.c, p.c
	if ec.coord == nil || ec.coord != pc.coord {
		panic("vclock: Event.Wait across clocks that do not share a coordinator")
	}
	first, second := ec, pc
	if pc.shard < ec.shard {
		first, second = pc, ec
	}
	first.mu.Lock()
	second.mu.Lock()
	if p.killed.Load() {
		second.mu.Unlock()
		first.mu.Unlock()
		panic(Killed{p.killErr})
	}
	if e.fired {
		second.mu.Unlock()
		first.mu.Unlock()
		return
	}
	// As in Wait: read the block instant before blockLocked can advance
	// the proc's clock.
	var start time.Duration
	obs := pc.waitObs
	if obs != nil {
		start = time.Duration(pc.nowView.Load())
	}
	e.waiters = append(e.waiters, p)
	p.waitingOn = e
	p.state = stateEventWait
	pc.blockLocked()
	poke := pc.pokeNeededLocked()
	second.mu.Unlock()
	first.mu.Unlock()
	if poke {
		pc.coord.poke()
	}
	<-p.wake
	p.state = stateRunning
	p.checkKilled()
	if obs != nil {
		obs.ObserveWait(p.name, "event", e.label, start, pc.Now(), true)
	}
}

// Timer is a cancellable scheduled callback created by AfterFunc. The
// handle is generation-tagged: once the callback fires (or Stop succeeds)
// the underlying pooled entry may be recycled for an unrelated timer, and
// the stale handle's Stop becomes an inert no-op.
type Timer struct {
	c     *Clock
	entry *timerEntry
	gen   uint64
}

// AfterFunc schedules fn to run at virtual time Now()+d. The callback runs
// without the clock lock held and counts as runnable work, so time cannot
// advance while it executes; it may call any Clock, Event, or Timer
// method, but must not block on Proc operations (it has no Proc).
func (c *Clock) AfterFunc(d time.Duration, fn func(now time.Duration)) *Timer {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.alloc()
	e.at = c.now + d
	e.fn = fn
	c.push(e)
	return &Timer{c: c, entry: e, gen: e.gen}
}

// Stop cancels the timer. It reports whether the timer was still pending
// (true) or had already fired or been stopped (false). Cancellation
// removes the entry from the queue in O(log n) via its heap index.
func (t *Timer) Stop() bool {
	c := t.c
	c.mu.Lock()
	defer c.mu.Unlock()
	e := t.entry
	if e.gen != t.gen {
		return false // fired or stopped; the entry may already serve another timer
	}
	heap.Remove(&c.queue, e.index)
	c.recycle(e)
	return true
}

// timerEntry is a pooled heap element: either a proc wakeup (wake != nil)
// or a scheduled callback (fn != nil). index is its heap position,
// maintained by timerHeap.Swap so removal needs no scan; gen increments
// on every recycle so stale Timer handles cannot touch a reused entry.
type timerEntry struct {
	at    time.Duration
	seq   int64
	index int
	gen   uint64
	wake  chan struct{}
	proc  *Proc // owner of a sleep wakeup, so Kill can cancel it; nil for callbacks
	fn    func(now time.Duration)
}

// alloc takes an entry from the pool (or makes one). Caller holds c.mu.
func (c *Clock) alloc() *timerEntry {
	if n := len(c.free); n > 0 {
		e := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		return e
	}
	return &timerEntry{}
}

// recycle bumps the entry's generation (invalidating outstanding Timer
// handles), clears it, and returns it to the pool. Caller holds c.mu.
func (c *Clock) recycle(e *timerEntry) {
	e.gen++
	e.wake = nil
	e.proc = nil
	e.fn = nil
	e.index = -1
	c.free = append(c.free, e)
}

// push stamps the entry's ordering sequence and inserts it in the heap.
// Under a coordinator the sequence comes from a coordinator-wide counter
// so that entries created by the same (serialized) execution order sort
// identically regardless of which shard's heap they land in — the
// linchpin of byte-identity between shard counts.
func (c *Clock) push(e *timerEntry) {
	if co := c.coord; co != nil {
		e.seq = co.seqCtr.Add(1)
	} else {
		c.seq++
		e.seq = c.seq
	}
	heap.Push(&c.queue, e)
}

// blockLocked marks the calling process as blocked and advances virtual
// time if it was the last runnable one. Caller holds c.mu. In sharded
// mode advancement belongs to the coordinator — but a lookahead > 0
// shard first drains its own run queue (shard-local serialized
// delivery); only when that is empty does the caller need to check
// pokeNeededLocked and poke after releasing the lock.
func (c *Clock) blockLocked() {
	c.running--
	if co := c.coord; co == nil {
		c.maybeAdvanceLocked()
	} else if !co.lockstep.Load() {
		c.deliverLocalLocked()
	}
}

// unblockLocked is blockLocked for process exit paths.
func (c *Clock) unblockLocked() {
	c.running--
	if co := c.coord; co == nil {
		c.maybeAdvanceLocked()
	} else if !co.lockstep.Load() {
		c.deliverLocalLocked()
	}
}

// maybeAdvanceLocked delivers the next serialized wakeup, advancing
// virtual time when the run queue is empty. Each iteration first
// delivers one parked wake, if any — the woken proc then runs alone
// until its next blocking point, which re-enters this loop. With the
// queue drained it jumps to the earliest pending instant and pops every
// entry scheduled there as one batch: callbacks run to completion FIRST,
// inline on this goroutine with the lock released — so a callback
// killing a proc that wakes at this same instant publishes the kill flag
// before the victim resumes — and the batch's proc wakeups are parked in
// (time, seq) order for one-at-a-time delivery. Callbacks count as
// runnable work, so no other goroutine can advance concurrently and the
// shared batch buffer is safe. The loop (instead of recursion) keeps
// long callback chains — e.g. a flow server rescheduling its completion
// timer for the whole run — at constant stack depth. Caller holds c.mu;
// the lock is held again on return.
func (c *Clock) maybeAdvanceLocked() {
	for {
		if c.running > 0 || c.dead {
			return
		}
		if c.deferHead < len(c.deferredQ) {
			c.deliverLocalLocked()
			return
		}
		if c.alive == 0 {
			// The last process has exited: the run is over. Time never
			// advances past the final process, so timers still pending
			// (e.g. fault windows scheduled beyond the end of the run)
			// stay unfired and post-run reads of Now() are deterministic.
			// This is also the only place Wait is woken, which guarantees
			// it cannot return while a timer callback is in flight.
			c.idle.Broadcast()
			return
		}
		if c.queue.Len() == 0 {
			// Every process is blocked and nothing is scheduled: the
			// simulation has deadlocked. Poison the clock so Wait
			// reports it; the parked process goroutines are leaked,
			// which is acceptable for a diagnosable programming error.
			c.dead = true
			c.deadMsg = c.describeStuckLocked()
			c.idle.Broadcast()
			return
		}
		t := c.queue[0].at
		c.now = t
		c.nowView.Store(int64(t))
		cbs := c.cbScratch[:0]
		nwakes := 0
		var fired int64
		for c.queue.Len() > 0 && c.queue[0].at == t {
			e := heap.Pop(&c.queue).(*timerEntry)
			fired++
			if e.wake != nil {
				if e.proc != nil {
					e.proc.pending = nil
				}
				c.deferredQ = append(c.deferredQ, e.wake)
				nwakes++
			} else {
				cbs = append(cbs, e.fn)
			}
			c.recycle(e)
		}
		c.cbScratch = cbs
		c.events.Add(fired)
		totalEvents.Add(fired)
		if len(cbs) > 0 {
			// Callbacks count as runnable work so time holds still while
			// they execute; run them here with the lock dropped. Wakes
			// they trigger are parked behind the window's own, so every
			// proc of the instant resumes before any kill victim or
			// event waiter a callback released.
			c.running += len(cbs)
			c.mu.Unlock()
			for _, fn := range cbs {
				fn(t)
			}
			c.mu.Lock()
			c.running -= len(cbs)
		}
		// Loop: the next iteration delivers the window's first parked
		// wake (or evaluates the next instant after a callback-only
		// batch that parked nothing).
	}
}

func (c *Clock) describeStuckLocked() string {
	names := make([]string, 0, len(c.procs))
	for p := range c.procs {
		var st string
		switch p.state {
		case stateSleeping:
			st = fmt.Sprintf("sleeping until %v", p.stateAt)
		case stateEventWait:
			st = "waiting on event"
		default:
			st = "running"
		}
		names = append(names, fmt.Sprintf("%s (%s)", p.name, st))
	}
	sort.Strings(names)
	return fmt.Sprintf("%d proc(s) blocked with no pending timers at t=%v: %s",
		len(names), c.now, strings.Join(names, ", "))
}

// timerHeap orders entries by time, then insertion sequence, and keeps
// each entry's index current so cancellation can heap.Remove in O(log n).
type timerHeap []*timerEntry

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x any) {
	e := x.(*timerEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
