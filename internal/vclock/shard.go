// Conservative intra-run sharding for the event engine.
//
// A Coordinator groups N member Clocks ("shards"), each owning its own
// timer heap, mutex, entry pool, and process set. One simulated run is
// partitioned across shards — ranks and their background streams live on
// their home shard's clock, shared resources (PFS flow servers, fault
// windows, crash timers, the metrics registry) on shard 0 — so the hot
// paths (Sleep, AfterFunc, timer re-arm) contend on per-shard locks
// instead of one global one.
//
// Synchronization is conservative, in the classic null-message /
// lookahead style: no shard may advance past the global safe horizon
//
//	H = t_min + L
//
// where t_min is the earliest pending instant across all shards and L is
// the coordinator's lookahead — a lower bound on the latency of any
// cross-shard interaction. The lookahead also selects the wake-delivery
// discipline:
//
//   - L = 0 (lockstep, the default and the only safe value while shards
//     share zero-latency resources): the coordinator keeps ONE global
//     serialized run queue. Every wakeup on any shard is parked there
//     and delivered one at a time, each only when every shard is idle;
//     a window's timer wakeups enter the queue in coordinator-wide
//     creation-sequence order, exactly the serial engine's order. At
//     most one process in the whole run is ever running, so every
//     shared-state interaction happens in the serial engine's canonical
//     order and runs are byte-identical to it by construction. This is
//     the classic conservative-PDES degenerate case: zero lookahead
//     admits no exploitable parallelism, and the engine honestly
//     serializes rather than racing.
//   - L > 0 (decoupled topologies, where every cross-shard interaction
//     carries at least L of virtual latency): each shard keeps its OWN
//     serialized run queue, delivering its wakeups one at a time at its
//     own idle points while different shards execute their windows
//     concurrently. Within a shard, execution is single-CPU-FIFO
//     deterministic; across shards, the lookahead contract guarantees
//     no same-window interaction, so the concurrency cannot reorder
//     anything observable.
//
// The advance protocol ("poke"): every operation that drops a shard's
// runnable count to zero pokes the coordinator after releasing the shard
// lock. A poke acquires the coordinator mutex, then ALL shard locks (in
// shard order) to verify global idleness — piecewise scanning would race
// with a still-runnable process waking an already-scanned shard. If any
// shard is runnable the poke returns; otherwise the coordinator delivers
// the next queued wakeup, or — queues drained — pops the next window's
// batches, synchronizes every shard's now, runs timer callbacks serially
// in (time, seq) order, and parks the window's wakeups for delivery.
// Callbacks-before-wakes pins the one ordering that does not commute: a
// crash timer killing a proc that wakes at the same instant must publish
// the kill before the victim resumes.
// Lock order is always coordinator mutex → shard locks ascending; no
// path acquires the coordinator mutex while holding a shard lock. The
// run-queue mutex runQMu is a leaf, taken under shard locks.
package vclock

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Coordinator synchronizes a set of shard Clocks. Construct with
// NewSharded; the zero value is not usable.
type Coordinator struct {
	mu        sync.Mutex // advance serialization; never acquired under a shard lock
	cond      *sync.Cond // on mu: signalled when the run completes or deadlocks
	shards    []*Clock
	lookahead time.Duration
	done      bool
	dead      bool
	deadMsg   string

	// lockstep mirrors lookahead == 0 for lock-free reads on the wake
	// parking hot path; seqCtr stamps timer entries across all shards in
	// creation order (see Clock.push).
	lockstep atomic.Bool
	seqCtr   atomic.Int64

	// pokes counts poke requests; advancing marks an advance pass in
	// flight. Together they make poke safe to call from a timer callback
	// delivered by advanceLocked (Fire → kick → poke on the advancing
	// goroutine itself), where blocking on mu would self-deadlock.
	pokes     atomic.Int64
	advancing atomic.Bool

	// The global serialized run queue (lockstep mode). runQMu is a leaf
	// lock: parkGlobal is called under a shard lock. runQHead indexes
	// the next wake to deliver; the slice is reset when drained.
	runQMu   sync.Mutex
	runQ     []globalWake
	runQHead int

	// Reusable advance-loop buffers; only the advancing goroutine (which
	// holds mu) touches them.
	cbScratch   []shardCallback
	wakeScratch []globalWake
}

// globalWake is one parked wakeup on the coordinator's run queue: the
// channel to signal and the shard clock to charge the runnable claim to
// at delivery. seq orders a window's timer wakeups; dynamic parks use 0
// and simple FIFO order.
type globalWake struct {
	c   *Clock
	ch  chan struct{}
	seq int64
}

// parkGlobal parks ch on the coordinator's run queue (lockstep mode).
// Caller holds c.mu; runQMu is a leaf below every shard lock.
func (co *Coordinator) parkGlobal(c *Clock, ch chan struct{}) {
	co.runQMu.Lock()
	co.runQ = append(co.runQ, globalWake{c: c, ch: ch})
	co.runQMu.Unlock()
}

// shardCallback is one timer callback popped during an advance window,
// tagged for deterministic execution order.
type shardCallback struct {
	fn    func(now time.Duration)
	at    time.Duration
	shard int
	seq   int64
}

// NewSharded returns a Coordinator with n member clocks, all at virtual
// time zero, with lookahead zero (lockstep windows). n < 1 is treated
// as 1; a single-shard coordinator behaves exactly like a serial Clock.
func NewSharded(n int) *Coordinator {
	if n < 1 {
		n = 1
	}
	co := &Coordinator{shards: make([]*Clock, n)}
	co.cond = sync.NewCond(&co.mu)
	co.lockstep.Store(true)
	for i := range co.shards {
		c := New()
		c.coord = co
		c.shard = i
		co.shards[i] = c
	}
	return co
}

// NumShards returns the number of member clocks.
func (co *Coordinator) NumShards() int { return len(co.shards) }

// Clock returns shard i's clock.
func (co *Coordinator) Clock(i int) *Clock { return co.shards[i] }

// Clocks returns the member clocks in shard order. The returned slice
// must not be mutated.
func (co *Coordinator) Clocks() []*Clock { return co.shards }

// SetWaitObserver installs o on every member clock. Must be called
// before any process runs.
func (co *Coordinator) SetWaitObserver(o WaitObserver) {
	for _, s := range co.shards {
		s.SetWaitObserver(o)
	}
}

// SetLookahead sets the conservative lookahead L: shards may fire events
// up to t_min + L per window. L must be a lower bound on the virtual
// latency of every cross-shard interaction; L = 0 (the default, and the
// safe value whenever shards share zero-latency resources) yields
// globally serialized lockstep execution, byte-identical to the serial
// engine. Call before the run starts.
func (co *Coordinator) SetLookahead(d time.Duration) {
	if d < 0 {
		d = 0
	}
	co.mu.Lock()
	co.lookahead = d
	co.lockstep.Store(d == 0)
	co.mu.Unlock()
}

// Lookahead returns the current lookahead.
func (co *Coordinator) Lookahead() time.Duration {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.lookahead
}

// Events returns the total fired entries across all shards.
func (co *Coordinator) Events() int64 {
	var n int64
	for _, s := range co.shards {
		n += s.Events()
	}
	return n
}

// EventsByShard returns per-shard fired-entry counts in shard order.
func (co *Coordinator) EventsByShard() []int64 {
	out := make([]int64, len(co.shards))
	for i, s := range co.shards {
		out[i] = s.Events()
	}
	return out
}

// Wait blocks the host goroutine (in real time) until every process on
// every shard has finished and no timer callback is in flight. It
// returns an error if the run deadlocked. Member clocks' Wait delegates
// here, so sys.Clk.Wait() joins the whole sharded run.
func (co *Coordinator) Wait() error {
	co.mu.Lock()
	defer co.mu.Unlock()
	// A run that never spawned a process has no final poke; evaluate once.
	co.drainPokesLocked()
	for !co.done && !co.dead {
		co.cond.Wait()
	}
	if co.dead {
		return fmt.Errorf("vclock: deadlock: %s", co.deadMsg)
	}
	return nil
}

// poke is called (without any shard lock held) whenever a shard's
// runnable count may have dropped to zero, or a wakeup was parked. It
// serializes on co.mu and advances virtual time while the whole system
// is idle. Callable from anywhere — including a timer callback that the
// advance pass itself is running (Fire → kick → poke on the advancing
// goroutine): the request is recorded in the counter and the in-flight
// pass re-evaluates before finishing, instead of self-deadlocking on mu.
func (co *Coordinator) poke() {
	co.pokes.Add(1)
	if co.advancing.Load() {
		return
	}
	co.mu.Lock()
	co.drainPokesLocked()
	co.mu.Unlock()
}

// drainPokesLocked runs advance passes until no poke arrived during the
// last one. The advancing flag diverts nested and concurrent pokes into
// the counter; the re-check after clearing the flag closes the window
// where a poke lands between the final count read and the clear (any
// poke after that re-check observes advancing == false and takes the
// mutex path itself).
func (co *Coordinator) drainPokesLocked() {
	co.advancing.Store(true)
	for {
		seen := co.pokes.Load()
		co.advanceLocked()
		if co.pokes.Load() != seen {
			continue
		}
		co.advancing.Store(false)
		if co.pokes.Load() == seen {
			return
		}
		co.advancing.Store(true)
	}
}

// lockShards acquires every shard lock in shard order; unlockShards
// releases them. Caller holds co.mu.
func (co *Coordinator) lockShards() {
	for _, s := range co.shards {
		s.mu.Lock()
	}
}

func (co *Coordinator) unlockShards() {
	for i := len(co.shards) - 1; i >= 0; i-- {
		co.shards[i].mu.Unlock()
	}
}

// popRunQLocked removes and returns the head of the global run queue.
// Caller holds co.mu and all shard locks; runQMu fences concurrent
// parkGlobal appends from host-goroutine wakers.
func (co *Coordinator) popRunQLocked() (globalWake, bool) {
	co.runQMu.Lock()
	defer co.runQMu.Unlock()
	if co.runQHead >= len(co.runQ) {
		return globalWake{}, false
	}
	w := co.runQ[co.runQHead]
	co.runQ[co.runQHead] = globalWake{}
	co.runQHead++
	if co.runQHead == len(co.runQ) {
		co.runQ = co.runQ[:0]
		co.runQHead = 0
	}
	return w, true
}

// advanceLocked advances virtual time window by window while no process
// on any shard is runnable. Caller holds co.mu. Each pass: verify global
// idleness under all shard locks; deliver the next serialized wakeup if
// one is queued (global queue under lockstep, one per shard otherwise);
// with queues drained, compute the horizon t_min + lookahead, pop each
// participating shard's batch, synchronize clocks, run callbacks
// serially in (time, seq) order with the locks released, and park the
// window's wakeups for delivery on the next pass. The loop keeps long
// callback chains at constant stack depth, exactly like the serial
// engine.
func (co *Coordinator) advanceLocked() {
	lockstep := co.lockstep.Load()
	for {
		if co.done || co.dead {
			return
		}
		co.lockShards()
		totalRunning, totalAlive := 0, 0
		for _, s := range co.shards {
			totalRunning += s.running
			totalAlive += s.alive
		}
		if totalRunning > 0 {
			co.unlockShards()
			return
		}
		if lockstep {
			// Deliver exactly one parked wake per global idle point: the
			// woken proc runs with every process on every shard parked,
			// matching single-CPU FIFO order across the whole run.
			if w, ok := co.popRunQLocked(); ok {
				w.c.running++
				co.unlockShards()
				w.ch <- struct{}{}
				return
			}
		} else {
			// Lookahead > 0: shard-local queues, one delivery per shard;
			// the shards then run their chains concurrently.
			delivered := false
			for _, s := range co.shards {
				if s.deferHead < len(s.deferredQ) {
					s.deliverLocalLocked()
					delivered = true
				}
			}
			if delivered {
				co.unlockShards()
				return
			}
		}
		if totalAlive == 0 {
			// The last process has exited: the run is over. Pending
			// timers (e.g. fault windows beyond the end of the run) stay
			// unfired, matching the serial engine.
			co.done = true
			for _, s := range co.shards {
				s.idle.Broadcast()
			}
			co.unlockShards()
			co.cond.Broadcast()
			return
		}
		// Earliest pending instant across all shards.
		var tmin time.Duration
		found := false
		for _, s := range co.shards {
			if s.queue.Len() > 0 {
				if t := s.queue[0].at; !found || t < tmin {
					tmin, found = t, true
				}
			}
		}
		if !found {
			// Everything is blocked and nothing is scheduled anywhere:
			// global deadlock. Poison every shard so Go panics and Wait
			// reports it.
			co.dead = true
			co.deadMsg = co.describeStuckLocked()
			for _, s := range co.shards {
				s.dead = true
				s.deadMsg = co.deadMsg
				s.idle.Broadcast()
			}
			co.unlockShards()
			co.cond.Broadcast()
			return
		}
		horizon := tmin + co.lookahead
		cbs := co.cbScratch[:0]
		winWakes := co.wakeScratch[:0]
		for si, s := range co.shards {
			if s.queue.Len() == 0 || s.queue[0].at > horizon {
				// Non-participant: pull its clock up to the window floor
				// so Now() stays globally consistent under lockstep.
				if tmin > s.now {
					s.now = tmin
					s.nowView.Store(int64(tmin))
				}
				continue
			}
			t := s.queue[0].at
			if t < s.now {
				panic(fmt.Sprintf(
					"vclock: causality violation on shard %d: event at %v behind shard clock %v (lookahead %v too large for this topology)",
					si, t, s.now, co.lookahead))
			}
			s.now = t
			s.nowView.Store(int64(t))
			var fired int64
			for s.queue.Len() > 0 && s.queue[0].at == t {
				e := heap.Pop(&s.queue).(*timerEntry)
				fired++
				if e.wake != nil {
					if e.proc != nil {
						e.proc.pending = nil
					}
					if lockstep {
						winWakes = append(winWakes, globalWake{c: s, ch: e.wake, seq: e.seq})
					} else {
						s.deferredQ = append(s.deferredQ, e.wake)
					}
				} else {
					// Callbacks count as runnable work on their shard so
					// no poke can advance past them while they execute.
					s.running++
					cbs = append(cbs, shardCallback{fn: e.fn, at: t, shard: si, seq: e.seq})
				}
				s.recycle(e)
			}
			s.events.Add(fired)
			totalEvents.Add(fired)
		}
		if lockstep {
			// The window's wakeups enter the global run queue in
			// creation-sequence order — the serial engine's pop order —
			// ahead of anything the callbacks park behind them.
			sort.Slice(winWakes, func(i, j int) bool { return winWakes[i].seq < winWakes[j].seq })
			if len(winWakes) > 0 {
				co.runQMu.Lock()
				co.runQ = append(co.runQ, winWakes...)
				co.runQMu.Unlock()
			}
			co.wakeScratch = winWakes[:0]
			if raceDetectorEnabled {
				// Lockstep invariant: every shard observes the same instant.
				for _, s := range co.shards {
					if s.now != tmin {
						panic(fmt.Sprintf("vclock: lockstep drift: shard %d at %v, window at %v", s.shard, s.now, tmin))
					}
				}
			}
		}
		co.unlockShards()
		// Callbacks run to completion BEFORE the window's wakeups are
		// delivered. This pins the one ordering that does not commute: a
		// callback killing a proc that wakes at this same instant must set
		// the kill flag before the victim resumes, or the victim races its
		// own death. Callback order is deterministic: time, then the
		// coordinator-wide creation sequence — exactly the serial engine's
		// pop order.
		if len(cbs) > 0 {
			co.cbScratch = cbs
			sort.Slice(cbs, func(i, j int) bool {
				if cbs[i].at != cbs[j].at {
					return cbs[i].at < cbs[j].at
				}
				return cbs[i].seq < cbs[j].seq
			})
			for _, cb := range cbs {
				cb.fn(cb.at)
			}
			// Release the callbacks' runnable claims.
			for si, s := range co.shards {
				var n int
				for _, cb := range cbs {
					if cb.shard == si {
						n++
					}
				}
				if n > 0 {
					s.mu.Lock()
					s.running -= n
					s.mu.Unlock()
				}
			}
		}
		// Loop: the next pass delivers the window's first parked wake —
		// or evaluates the next window after a callback-only batch that
		// parked nothing.
	}
}

// describeStuckLocked aggregates every shard's stuck-process report.
// Caller holds co.mu and all shard locks.
func (co *Coordinator) describeStuckLocked() string {
	parts := make([]string, 0, len(co.shards))
	for i, s := range co.shards {
		if len(s.procs) == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("shard %d: %s", i, s.describeStuckLocked()))
	}
	if len(parts) == 0 {
		return "no procs registered"
	}
	return strings.Join(parts, "; ")
}
