// Package faults implements a deterministic, seeded fault injector for
// the simulation: per-target slowdown windows, transient I/O error
// rates, full-target outages with repair times, and metadata stalls on
// internal/pfs targets, plus background-stream stalls and staging-buffer
// exhaustion on internal/asyncvol. Everything is driven by the virtual
// clock, so a seeded schedule replays byte-identically.
//
// A schedule is written as a compact spec string (the -faults flag):
//
//	seed=42;err=gpfs:0.01;outage=gpfs@40s+20s;slow=lustre:0.5@10s-60s;
//	meta=gpfs:2ms;bgstall=5s+2s;stagecap=1048576;
//	retries=8;backoff=20ms;maxbackoff=2s;deadline=30s;
//	demote=4;healthy=2;spike=3
//
// Entries are semicolon-separated key=value pairs; slow/err/meta/outage
// may repeat for multiple targets or windows. Target "*" matches every
// target. Windows are `@start-end` (half-open, end exclusive); outages
// and bgstalls are `@start+duration` / `start+duration`. Crash events
// kill a rank (`crashrank=3@25s`) or every rank on a node
// (`crashnode=0@40s`) at a virtual time; see internal/recovery for what
// survives.
package faults

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Window is a half-open interval of virtual time [Start, End); a zero
// End means "whole run".
type Window struct {
	Start, End time.Duration
}

// contains reports whether t falls inside the window.
func (w Window) contains(t time.Duration) bool {
	return t >= w.Start && (w.End == 0 || t < w.End)
}

// Slowdown scales a target's capacity by Factor inside the window.
type Slowdown struct {
	Target string
	Factor float64
	Window Window
}

// ErrRate injects transient errors on a target's data ops at Rate
// inside the window.
type ErrRate struct {
	Target string
	Rate   float64
	Window Window
}

// Outage rejects every data op on a target from Start until repair at
// Start+Dur.
type Outage struct {
	Target string
	Start  time.Duration
	Dur    time.Duration
}

// MetaStall adds Extra latency to metadata ops on a target inside the
// window.
type MetaStall struct {
	Target string
	Extra  time.Duration
	Window Window
}

// BGStall pauses background streams that pick up work between Start and
// Start+Dur (tasks sleep until the stall ends).
type BGStall struct {
	Start, Dur time.Duration
}

// Crash kills a rank (or a whole node's worth of ranks) at a virtual
// time: `crashrank=<rank>@<time>` / `crashnode=<node>@<time>`. The
// victim process dies mid-epoch; staged asynchronous data that has not
// reached durable storage is lost or torn (see internal/pfs durability
// and internal/recovery).
type Crash struct {
	Node  bool // false: Index is a rank; true: Index is a node (all its ranks die)
	Index int
	At    time.Duration
}

// RetrySpec configures the ioreq retry stage threaded through faulted
// runs.
type RetrySpec struct {
	Attempts   int           // total attempts including the first
	Backoff    time.Duration // first retry delay, doubling per retry
	MaxBackoff time.Duration // backoff cap
	Deadline   time.Duration // per-request virtual-time budget; 0 = none
}

// DegradeSpec configures graceful degradation in internal/core: demote
// async→sync when the drain-queue depth exceeds the watermark, retries
// exhaust, or measured async I/O time spikes past the model's overhead
// estimate; re-promote after HealthyEpochs clean epochs.
type DegradeSpec struct {
	Enabled        bool
	QueueWatermark float64 // demote=<n>; 0 disables the queue signal
	OverheadSpike  float64 // spike=<f>; 0 disables the spike signal
	HealthyEpochs  int
}

// Spec is a parsed fault schedule.
type Spec struct {
	Seed       int64
	Slowdowns  []Slowdown
	ErrRates   []ErrRate
	Outages    []Outage
	MetaStalls []MetaStall
	BGStalls   []BGStall
	Crashes    []Crash
	StageCap   int64 // staging-buffer byte budget per connector; 0 = unbounded
	Retry      RetrySpec
	Degrade    DegradeSpec
}

// DefaultRetry is the retry policy used when a spec does not override
// it.
var DefaultRetry = RetrySpec{
	Attempts:   6,
	Backoff:    50 * time.Millisecond,
	MaxBackoff: 5 * time.Second,
}

const defaultHealthyEpochs = 2

// ParseSpec parses a fault spec string. The empty string parses to a
// schedule with no faults (defaults only).
func ParseSpec(s string) (*Spec, error) {
	sp := &Spec{Retry: DefaultRetry}
	sp.Degrade.HealthyEpochs = defaultHealthyEpochs
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("faults: entry %q is not key=value", part)
		}
		if err := sp.parseEntry(strings.TrimSpace(key), strings.TrimSpace(val)); err != nil {
			return nil, err
		}
	}
	return sp, nil
}

func (sp *Spec) parseEntry(key, val string) error {
	switch key {
	case "seed":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("faults: seed %q: %v", val, err)
		}
		sp.Seed = n
	case "slow":
		target, rest, err := splitTarget(key, val)
		if err != nil {
			return err
		}
		factor, win, err := parseValueWindow(key, rest)
		if err != nil {
			return err
		}
		if !(factor > 0 && factor <= 1) {
			return fmt.Errorf("faults: slow factor %v outside (0,1]", factor)
		}
		sp.Slowdowns = append(sp.Slowdowns, Slowdown{Target: target, Factor: factor, Window: win})
	case "err":
		target, rest, err := splitTarget(key, val)
		if err != nil {
			return err
		}
		rate, win, err := parseValueWindow(key, rest)
		if err != nil {
			return err
		}
		if !(rate >= 0 && rate <= 1) {
			return fmt.Errorf("faults: error rate %v outside [0,1]", rate)
		}
		sp.ErrRates = append(sp.ErrRates, ErrRate{Target: target, Rate: rate, Window: win})
	case "outage":
		target, rest, ok := strings.Cut(val, "@")
		if !ok {
			return fmt.Errorf("faults: outage %q needs <target>@<start>+<dur>", val)
		}
		if err := checkTarget(target); err != nil {
			return err
		}
		start, dur, err := parseStartDur(key, rest)
		if err != nil {
			return err
		}
		sp.Outages = append(sp.Outages, Outage{Target: target, Start: start, Dur: dur})
	case "meta":
		target, rest, err := splitTarget(key, val)
		if err != nil {
			return err
		}
		valStr, win, err := splitWindow(key, rest)
		if err != nil {
			return err
		}
		extra, err := parseDur(key, valStr)
		if err != nil {
			return err
		}
		if extra <= 0 {
			return fmt.Errorf("faults: meta stall %v must be positive", extra)
		}
		sp.MetaStalls = append(sp.MetaStalls, MetaStall{Target: target, Extra: extra, Window: win})
	case "bgstall":
		start, dur, err := parseStartDur(key, val)
		if err != nil {
			return err
		}
		sp.BGStalls = append(sp.BGStalls, BGStall{Start: start, Dur: dur})
	case "crashrank", "crashnode":
		idxStr, atStr, ok := strings.Cut(val, "@")
		if !ok {
			return fmt.Errorf("faults: %s %q needs <index>@<time>", key, val)
		}
		idx, err := strconv.Atoi(idxStr)
		if err != nil || idx < 0 {
			return fmt.Errorf("faults: %s index %q must be a non-negative integer", key, idxStr)
		}
		at, err := parseDur(key, atStr)
		if err != nil {
			return err
		}
		sp.Crashes = append(sp.Crashes, Crash{Node: key == "crashnode", Index: idx, At: at})
	case "stagecap":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil || n < 0 {
			return fmt.Errorf("faults: stagecap %q must be a non-negative byte count", val)
		}
		sp.StageCap = n
	case "retries":
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 {
			return fmt.Errorf("faults: retries %q must be a positive attempt count", val)
		}
		sp.Retry.Attempts = n
	case "backoff":
		d, err := parseDur(key, val)
		if err != nil {
			return err
		}
		sp.Retry.Backoff = d
	case "maxbackoff":
		d, err := parseDur(key, val)
		if err != nil {
			return err
		}
		sp.Retry.MaxBackoff = d
	case "deadline":
		d, err := parseDur(key, val)
		if err != nil {
			return err
		}
		sp.Retry.Deadline = d
	case "demote":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || !(f > 0) || math.IsInf(f, 0) {
			return fmt.Errorf("faults: demote watermark %q must be positive and finite", val)
		}
		sp.Degrade.QueueWatermark = f
		sp.Degrade.Enabled = true
	case "spike":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || !(f > 1) || math.IsInf(f, 0) {
			return fmt.Errorf("faults: spike factor %q must exceed 1 and be finite", val)
		}
		sp.Degrade.OverheadSpike = f
		sp.Degrade.Enabled = true
	case "healthy":
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 {
			return fmt.Errorf("faults: healthy %q must be a positive epoch count", val)
		}
		sp.Degrade.HealthyEpochs = n
	default:
		return fmt.Errorf("faults: unknown key %q", key)
	}
	return nil
}

// splitTarget splits "<target>:<rest>" and validates the target name.
func splitTarget(key, val string) (target, rest string, err error) {
	target, rest, ok := strings.Cut(val, ":")
	if !ok {
		return "", "", fmt.Errorf("faults: %s %q needs <target>:<value>", key, val)
	}
	if err := checkTarget(target); err != nil {
		return "", "", err
	}
	return target, rest, nil
}

// checkTarget restricts target names so spec strings round-trip.
func checkTarget(t string) error {
	if t == "" {
		return fmt.Errorf("faults: empty target")
	}
	for _, r := range t {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.', r == '*':
		default:
			return fmt.Errorf("faults: target %q contains %q", t, r)
		}
	}
	return nil
}

// splitWindow splits an optional "@start-end" suffix off a value.
func splitWindow(key, val string) (string, Window, error) {
	body, winStr, ok := strings.Cut(val, "@")
	if !ok {
		return body, Window{}, nil
	}
	startStr, endStr, ok := strings.Cut(winStr, "-")
	if !ok {
		return "", Window{}, fmt.Errorf("faults: %s window %q needs <start>-<end>", key, winStr)
	}
	start, err := parseDur(key, startStr)
	if err != nil {
		return "", Window{}, err
	}
	end, err := parseDur(key, endStr)
	if err != nil {
		return "", Window{}, err
	}
	if end <= start {
		return "", Window{}, fmt.Errorf("faults: %s window %q end must follow start", key, winStr)
	}
	return body, Window{Start: start, End: end}, nil
}

// parseValueWindow parses "<float>[@start-end]".
func parseValueWindow(key, val string) (float64, Window, error) {
	body, win, err := splitWindow(key, val)
	if err != nil {
		return 0, Window{}, err
	}
	f, err := strconv.ParseFloat(body, 64)
	if err != nil {
		return 0, Window{}, fmt.Errorf("faults: %s value %q: %v", key, body, err)
	}
	return f, win, nil
}

// parseStartDur parses "<start>+<dur>".
func parseStartDur(key, val string) (start, dur time.Duration, err error) {
	startStr, durStr, ok := strings.Cut(val, "+")
	if !ok {
		return 0, 0, fmt.Errorf("faults: %s %q needs <start>+<dur>", key, val)
	}
	if start, err = parseDur(key, startStr); err != nil {
		return 0, 0, err
	}
	if dur, err = parseDur(key, durStr); err != nil {
		return 0, 0, err
	}
	if dur <= 0 {
		return 0, 0, fmt.Errorf("faults: %s duration %v must be positive", key, dur)
	}
	return start, dur, nil
}

// parseDur parses a non-negative Go duration.
func parseDur(key, s string) (time.Duration, error) {
	d, err := time.ParseDuration(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("faults: %s duration %q: %v", key, s, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("faults: %s duration %v is negative", key, d)
	}
	return d, nil
}

// String renders the spec in canonical form; parsing the result yields
// an equal spec (the fuzz harness asserts this fixed point).
func (sp *Spec) String() string {
	var parts []string
	add := func(format string, args ...any) {
		parts = append(parts, fmt.Sprintf(format, args...))
	}
	if sp.Seed != 0 {
		add("seed=%d", sp.Seed)
	}
	for _, s := range sp.Slowdowns {
		add("slow=%s:%s%s", s.Target, formatFloat(s.Factor), s.Window)
	}
	for _, e := range sp.ErrRates {
		add("err=%s:%s%s", e.Target, formatFloat(e.Rate), e.Window)
	}
	for _, o := range sp.Outages {
		add("outage=%s@%s+%s", o.Target, o.Start, o.Dur)
	}
	for _, m := range sp.MetaStalls {
		add("meta=%s:%s%s", m.Target, m.Extra, m.Window)
	}
	for _, b := range sp.BGStalls {
		add("bgstall=%s+%s", b.Start, b.Dur)
	}
	for _, c := range sp.Crashes {
		key := "crashrank"
		if c.Node {
			key = "crashnode"
		}
		add("%s=%d@%s", key, c.Index, c.At)
	}
	if sp.StageCap != 0 {
		add("stagecap=%d", sp.StageCap)
	}
	if sp.Retry.Attempts != DefaultRetry.Attempts {
		add("retries=%d", sp.Retry.Attempts)
	}
	if sp.Retry.Backoff != DefaultRetry.Backoff {
		add("backoff=%s", sp.Retry.Backoff)
	}
	if sp.Retry.MaxBackoff != DefaultRetry.MaxBackoff {
		add("maxbackoff=%s", sp.Retry.MaxBackoff)
	}
	if sp.Retry.Deadline != 0 {
		add("deadline=%s", sp.Retry.Deadline)
	}
	if sp.Degrade.QueueWatermark > 0 {
		add("demote=%s", formatFloat(sp.Degrade.QueueWatermark))
	}
	if sp.Degrade.OverheadSpike > 0 {
		add("spike=%s", formatFloat(sp.Degrade.OverheadSpike))
	}
	if sp.Degrade.HealthyEpochs != defaultHealthyEpochs {
		add("healthy=%d", sp.Degrade.HealthyEpochs)
	}
	return strings.Join(parts, ";")
}

// String renders a window as its spec suffix (empty for the whole run).
func (w Window) String() string {
	if w == (Window{}) {
		return ""
	}
	return fmt.Sprintf("@%s-%s", w.Start, w.End)
}

// formatFloat renders a float in shortest round-trippable form.
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// matches reports whether a spec target matches a concrete target name.
func matches(specTarget, name string) bool {
	return specTarget == "*" || specTarget == name
}
