package faults

import "testing"

// FuzzFaultSpec asserts the spec grammar's canonicalization fixed point:
// any string that parses must render to a canonical form that parses to
// the same schedule, and that canonical form must be its own fixed point
// (String ∘ ParseSpec is idempotent). Parse failures are fine; panics
// and canonical forms that fail to re-parse are not.
func FuzzFaultSpec(f *testing.F) {
	seeds := []string{
		"",
		"seed=42",
		"seed=42;err=gpfs:0.01;outage=gpfs@40s+20s",
		"slow=lustre:0.5@10s-60s;meta=gpfs:2ms;bgstall=5s+2s",
		"stagecap=1048576;retries=8;backoff=20ms;maxbackoff=2s;deadline=30s",
		"demote=4;healthy=2;spike=3",
		"err=*:1;slow=*:1e-3",
		"outage=burst-buffer@0s+1ms;outage=burst-buffer@5s+1ms",
		"seed=-1;err=a.b-c_d:0.999@0s-1h",
		"slow=gpfs:0.25;slow=gpfs:0.5@1s-2s;err=gpfs:0@3s-4s",
		" seed = 7 ; err = gpfs : 0.1 ",
		"err=gpfs:2",   // invalid rate
		"outage=gpfs",  // missing window
		"bogus=1",      // unknown key
		"seed",         // not key=value
		"meta=gpfs:0s", // non-positive stall
		"crashrank=3@25s",
		"crashnode=0@1m",
		"seed=11;crashrank=0@10s;crashnode=1@90s;err=gpfs:0.01",
		"crashrank=3",     // missing @time
		"crashrank=-1@5s", // negative rank
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := ParseSpec(s)
		if err != nil {
			return
		}
		canon := sp.String()
		sp2, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, s, err)
		}
		if again := sp2.String(); again != canon {
			t.Fatalf("String is not a fixed point: %q → %q → %q", s, canon, again)
		}
	})
}
