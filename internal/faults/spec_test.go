package faults

import (
	"errors"
	"strings"
	"testing"
	"time"

	"asyncio/internal/vclock"
)

func TestParseSpecCanonicalizes(t *testing.T) {
	cases := []struct{ in, canon string }{
		{"", ""},
		{"seed=42", "seed=42"},
		{" seed = 7 ;; err=gpfs:0.1 ", "seed=7;err=gpfs:0.1"},
		{"err=gpfs:0.01;outage=gpfs@40s+20s;seed=42", "seed=42;err=gpfs:0.01;outage=gpfs@40s+20s"},
		{"slow=lustre:0.5@10s-60s", "slow=lustre:0.5@10s-1m0s"},
		{"retries=6;backoff=50ms;maxbackoff=5s;healthy=2", ""}, // defaults are omitted
		{"meta=gpfs:2ms;bgstall=5s+2s;stagecap=1048576", "meta=gpfs:2ms;bgstall=5s+2s;stagecap=1048576"},
		{"demote=4;spike=3;healthy=5", "demote=4;spike=3;healthy=5"},
		{"deadline=1500ms", "deadline=1.5s"},
		{"err=*:1;slow=a.b-c_d:1e-3", "slow=a.b-c_d:0.001;err=*:1"}, // canonical order: slows first
		{"crashrank=3@25s", "crashrank=3@25s"},
		{"crashnode=0@1m", "crashnode=0@1m0s"},
		{"crashnode=1@90s;crashrank=0@10s;seed=9", "seed=9;crashnode=1@1m30s;crashrank=0@10s"},
	}
	for _, tc := range cases {
		sp, err := ParseSpec(tc.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.in, err)
			continue
		}
		if got := sp.String(); got != tc.canon {
			t.Errorf("ParseSpec(%q).String() = %q, want %q", tc.in, got, tc.canon)
		}
	}
}

func TestParseSpecRejects(t *testing.T) {
	bad := []string{
		"seed",                // not key=value
		"bogus=1",             // unknown key
		"seed=x",              // not an integer
		"err=gpfs:2",          // rate above 1
		"err=gpfs:-0.1",       // negative rate
		"err=:0.1",            // empty target
		"err=gp fs:0.1",       // bad target charset
		"slow=gpfs:0",         // factor outside (0,1]
		"slow=gpfs:1.5",       // factor outside (0,1]
		"slow=gpfs:0.5@5s-5s", // empty window
		"slow=gpfs:0.5@5s",    // malformed window
		"outage=gpfs",         // missing window
		"outage=gpfs@1s",      // missing duration
		"outage=gpfs@1s+0s",   // non-positive duration
		"meta=gpfs:0s",        // non-positive stall
		"bgstall=1s-2s",       // wrong separator
		"stagecap=-1",         // negative budget
		"retries=0",           // attempts below 1
		"backoff=-5ms",        // negative duration
		"demote=0",            // watermark not positive
		"demote=+Inf",         // non-finite
		"spike=1",             // must exceed 1
		"healthy=0",           // epochs below 1
		"crashrank=3",         // missing @time
		"crashrank=-1@5s",     // negative rank
		"crashrank=x@5s",      // non-integer rank
		"crashnode=0@",        // empty time
		"crashnode=0@-5s",     // negative time
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) = nil error, want rejection", s)
		}
	}
}

// TestDrawDeterminism pins the property the whole injector rests on: the
// transient-error decision sequence is a pure function of (seed, target,
// process, op index) — identical across injector instances and immune to
// how other processes' draws interleave.
func TestDrawDeterminism(t *testing.T) {
	mk := func(spec string) *Injector {
		in, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b := mk("seed=1"), mk("seed=1")
	other := mk("seed=2")
	var seqA, seqB []float64
	differs := false
	for i := 0; i < 200; i++ {
		va := a.draw("gpfs", "w0")
		if va < 0 || va >= 1 {
			t.Fatalf("draw %d = %v outside [0,1)", i, va)
		}
		seqA = append(seqA, va)
		// b interleaves draws for other (target, proc) pairs; w0's own
		// sequence must not shift.
		b.draw("gpfs", "w1")
		b.draw("lustre", "w0")
		seqB = append(seqB, b.draw("gpfs", "w0"))
		if va != other.draw("gpfs", "w0") {
			differs = true
		}
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("draw %d: %v vs %v under interleaving", i, seqA[i], seqB[i])
		}
	}
	if !differs {
		t.Error("seeds 1 and 2 produced identical draw sequences")
	}
}

func TestBeforeDataOutageAndErrRate(t *testing.T) {
	in, err := New("outage=gpfs@10s+5s;err=*:1@20s-30s")
	if err != nil {
		t.Fatal(err)
	}
	clk := vclock.New()
	clk.Go("w0", func(p *vclock.Proc) {
		if err := in.BeforeData(p, "gpfs", true, 8); err != nil {
			t.Errorf("before outage: %v", err)
		}
		p.Sleep(10 * time.Second)
		var fe *Error
		if err := in.BeforeData(p, "gpfs", true, 8); !errors.As(err, &fe) || fe.Kind != KindOutage {
			t.Errorf("during outage: %v, want KindOutage", err)
		} else if fe.Target != "gpfs" || fe.Op != "write" || fe.At != 10*time.Second {
			t.Errorf("outage error fields = %+v", fe)
		}
		if err := in.BeforeData(p, "lustre", true, 8); err != nil {
			t.Errorf("outage must not hit other targets: %v", err)
		}
		p.Sleep(5 * time.Second) // repair boundary: 15s is outside [10s,15s)
		if err := in.BeforeData(p, "gpfs", true, 8); err != nil {
			t.Errorf("after repair: %v", err)
		}
		p.Sleep(5 * time.Second) // 20s: rate-1 error window opens
		if err := in.BeforeData(p, "gpfs", false, 8); !errors.As(err, &fe) || fe.Kind != KindTransient {
			t.Errorf("in err window: %v, want KindTransient", err)
		} else if fe.Op != "read" {
			t.Errorf("op = %q, want read", fe.Op)
		}
		p.Sleep(10 * time.Second) // 30s: window closed (end exclusive)
		if err := in.BeforeData(p, "gpfs", false, 8); err != nil {
			t.Errorf("after err window: %v", err)
		}
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestBeforeMetaStallSleeps(t *testing.T) {
	in, err := New("meta=gpfs:2ms@0s-1s")
	if err != nil {
		t.Fatal(err)
	}
	clk := vclock.New()
	clk.Go("w0", func(p *vclock.Proc) {
		in.BeforeMeta(p, "gpfs")
		if now := p.Now(); now != 2*time.Millisecond {
			t.Errorf("after stalled meta op: now = %v, want 2ms", now)
		}
		in.BeforeMeta(p, "lustre") // other target: no stall
		p.Sleep(time.Second)       // past the window
		before := p.Now()
		in.BeforeMeta(p, "gpfs")
		if p.Now() != before {
			t.Errorf("meta stall applied outside its window")
		}
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestBackgroundStall(t *testing.T) {
	in, err := New("bgstall=5s+2s")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		now, want time.Duration
	}{
		{4 * time.Second, 0},
		{5 * time.Second, 2 * time.Second},
		{6 * time.Second, time.Second},
		{7 * time.Second, 0}, // end exclusive
	} {
		if got := in.BackgroundStall(tc.now); got != tc.want {
			t.Errorf("BackgroundStall(%v) = %v, want %v", tc.now, got, tc.want)
		}
	}
}

func TestSlowFactorWindowsMultiply(t *testing.T) {
	in, err := New("slow=gpfs:0.5@10s-20s;slow=*:0.5@15s-25s")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		at   time.Duration
		want float64
	}{
		{5 * time.Second, 1},
		{12 * time.Second, 0.5},
		{17 * time.Second, 0.25}, // overlap: factors multiply
		{22 * time.Second, 0.5},
		{25 * time.Second, 1}, // end exclusive
	} {
		if got := in.slowFactorAt("gpfs", tc.at); got != tc.want {
			t.Errorf("slowFactorAt(gpfs, %v) = %v, want %v", tc.at, got, tc.want)
		}
	}
	if got := in.slowFactorAt("lustre", 12*time.Second); got != 1 {
		t.Errorf("slowFactorAt(lustre, 12s) = %v, want 1 (gpfs-only window)", got)
	}
}

func TestErrorStrings(t *testing.T) {
	e := &Error{Kind: KindTransient, Target: "gpfs", Op: "write", At: 3 * time.Second}
	if !strings.Contains(e.Error(), "transient") || !strings.Contains(e.Error(), "gpfs") {
		t.Errorf("Error() = %q", e.Error())
	}
	wrapped := &Error{Kind: KindRetryExhausted, At: 4 * time.Second, Attempts: 6, Err: e}
	if !errors.Is(wrapped, wrapped) || !strings.Contains(wrapped.Error(), "6 attempts") {
		t.Errorf("Error() = %q", wrapped.Error())
	}
	var fe *Error
	if !errors.As(wrapped.Unwrap(), &fe) || fe.Kind != KindTransient {
		t.Errorf("Unwrap lost the cause: %v", wrapped.Unwrap())
	}
}
