package faults

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"asyncio/internal/critpath"
	"asyncio/internal/ioreq"
	"asyncio/internal/metrics"
	"asyncio/internal/pfs"
	"asyncio/internal/vclock"
)

// Kind classifies an injected fault.
type Kind int

const (
	// KindTransient is a one-shot I/O error (the EIO a degraded OST
	// returns); retrying usually succeeds.
	KindTransient Kind = iota
	// KindOutage is a data op rejected while its target is down;
	// retrying succeeds only after the repair time.
	KindOutage
	// KindRetryExhausted wraps the last underlying fault once the retry
	// policy runs out of attempts or deadline.
	KindRetryExhausted
	// KindCrashRank is a single rank killed at a virtual time; its staged
	// asynchronous data is lost unless journaled and recovered.
	KindCrashRank
	// KindCrashNode is a whole node killed at a virtual time (every rank
	// placed on it dies).
	KindCrashNode
)

// String names the kind for error text.
func (k Kind) String() string {
	switch k {
	case KindTransient:
		return "transient"
	case KindOutage:
		return "outage"
	case KindRetryExhausted:
		return "retry-exhausted"
	case KindCrashRank:
		return "crash-rank"
	case KindCrashNode:
		return "crash-node"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Error is the typed error every injected fault surfaces as. Callers
// unwrap with errors.As; Err carries the underlying fault for
// KindRetryExhausted.
type Error struct {
	Kind     Kind
	Target   string        // pfs target name; empty for non-target faults
	Op       string        // "write" or "read"
	At       time.Duration // virtual time of the (last) failure
	Attempts int           // attempts made, for KindRetryExhausted
	Err      error         // wrapped cause, for KindRetryExhausted
}

// Error implements error.
func (e *Error) Error() string {
	switch e.Kind {
	case KindRetryExhausted:
		return fmt.Sprintf("faults: %s after %d attempts at %s: %v", e.Kind, e.Attempts, e.At, e.Err)
	case KindCrashRank, KindCrashNode:
		return fmt.Sprintf("faults: %s %s at %s", e.Kind, e.Target, e.At)
	default:
		return fmt.Sprintf("faults: %s %s on %s at %s", e.Kind, e.Op, e.Target, e.At)
	}
}

// Unwrap exposes the cause chain.
func (e *Error) Unwrap() error { return e.Err }

// Metric names the injector registers; core watches RetryExhausted for
// its degradation decision.
const (
	MetricInjected       = "faults.injected_errors"
	MetricOutage         = "faults.outage_rejections"
	MetricRetries        = "faults.retries"
	MetricRetryExhausted = "faults.retry_exhausted"
	MetricMetaStalls     = "faults.meta_stalls"
	MetricBGStalls       = "faults.bg_stalls"
	MetricStagingFull    = "faults.staging_exhausted"
)

// Injector applies a Spec to a run. It implements pfs.FaultHook for the
// targets it is attached to and asyncvol's FaultModel for background
// streams. One injector serves one run: Attach installs hooks and
// schedules slowdown windows on the run's clock.
type Injector struct {
	spec *Spec

	mu  sync.Mutex
	ops map[opKey]uint64 // per-(target, proc) op counter for seeded draws

	mInjected    *metrics.Counter
	mOutage      *metrics.Counter
	mRetries     *metrics.Counter
	mExhausted   *metrics.Counter
	mMetaStalls  *metrics.Counter
	mBGStalls    *metrics.Counter
	mStagingFull *metrics.Counter

	crit *critpath.Recorder
}

// SetCrit attaches the critical-path recorder: injected stalls record
// fault-stall edges, retry backoffs record retry-backoff edges (via
// RetryPolicy), and every scheduled fault window of the spec is marked
// on the profile so its blame breakdown is reported separately. Call
// once, before the run starts.
func (in *Injector) SetCrit(rec *critpath.Recorder) {
	in.crit = rec
	if rec == nil {
		return
	}
	for _, o := range in.spec.Outages {
		rec.MarkWindow("outage:"+o.Target, o.Start, o.Start+o.Dur)
	}
	for _, s := range in.spec.Slowdowns {
		rec.MarkWindow("slow:"+s.Target, s.Window.Start, s.Window.End)
	}
	for _, ms := range in.spec.MetaStalls {
		rec.MarkWindow("meta:"+ms.Target, ms.Window.Start, ms.Window.End)
	}
	for _, b := range in.spec.BGStalls {
		rec.MarkWindow("bgstall", b.Start, b.Start+b.Dur)
	}
}

type opKey struct {
	target, proc string
}

// New parses a spec string and builds its injector.
func New(spec string) (*Injector, error) {
	sp, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return FromSpec(sp), nil
}

// FromSpec builds an injector for a parsed spec.
func FromSpec(sp *Spec) *Injector {
	return &Injector{
		spec: sp,
		ops:  make(map[opKey]uint64),
	}
}

// Spec returns the injector's schedule.
func (in *Injector) Spec() *Spec { return in.spec }

// Attach installs the injector on the given pfs targets, registers its
// instruments on m (nil skips), and schedules the spec's slowdown
// windows as virtual-clock timers. Call once, before the run starts.
func (in *Injector) Attach(clk *vclock.Clock, m *metrics.Registry, targets ...*pfs.Target) {
	if m != nil {
		in.mInjected = m.Counter(MetricInjected)
		in.mOutage = m.Counter(MetricOutage)
		in.mRetries = m.Counter(MetricRetries)
		in.mExhausted = m.Counter(MetricRetryExhausted)
		in.mMetaStalls = m.Counter(MetricMetaStalls)
		in.mBGStalls = m.Counter(MetricBGStalls)
		in.mStagingFull = m.Counter(MetricStagingFull)
	}
	for _, t := range targets {
		if t == nil {
			continue
		}
		t.SetFaults(in)
		in.scheduleSlowdowns(clk, t)
	}
}

// scheduleSlowdowns sets the target's fault factor now and at every
// window boundary. Factors of overlapping windows multiply. Timer
// callbacks run while virtual time holds still, so a boundary at t
// applies exactly at t; pending timers past the end of the run are
// discarded when the clock's processes finish.
func (in *Injector) scheduleSlowdowns(clk *vclock.Clock, t *pfs.Target) {
	var boundaries []time.Duration
	relevant := false
	for _, s := range in.spec.Slowdowns {
		if !matches(s.Target, t.Name()) {
			continue
		}
		relevant = true
		boundaries = append(boundaries, s.Window.Start)
		if s.Window.End > 0 {
			boundaries = append(boundaries, s.Window.End)
		}
	}
	if !relevant {
		return
	}
	t.SetFaultFactor(in.slowFactorAt(t.Name(), 0))
	seen := map[time.Duration]bool{0: true}
	for _, b := range boundaries {
		if seen[b] {
			continue
		}
		seen[b] = true
		clk.AfterFunc(b, func(now time.Duration) {
			t.SetFaultFactor(in.slowFactorAt(t.Name(), now))
		})
	}
}

// slowFactorAt is the product of all slowdown factors active on target
// at time now, clamped into (0,1].
func (in *Injector) slowFactorAt(target string, now time.Duration) float64 {
	f := 1.0
	for _, s := range in.spec.Slowdowns {
		if matches(s.Target, target) && s.Window.contains(now) {
			f *= s.Factor
		}
	}
	if f <= 0 {
		f = 1e-9
	}
	return f
}

// BeforeData implements pfs.FaultHook: outages reject, then the seeded
// per-(target, process) draw decides transient errors. The draw counter
// advances deterministically because each process issues its ops
// sequentially.
func (in *Injector) BeforeData(p *vclock.Proc, target string, write bool, nbytes int64) error {
	now := p.Now()
	for _, o := range in.spec.Outages {
		if matches(o.Target, target) && now >= o.Start && now < o.Start+o.Dur {
			in.mOutage.Add(1)
			return &Error{Kind: KindOutage, Target: target, Op: opName(write), At: now}
		}
	}
	for _, er := range in.spec.ErrRates {
		if er.Rate > 0 && matches(er.Target, target) && er.Window.contains(now) {
			if in.draw(target, p.Name()) < er.Rate {
				in.mInjected.Add(1)
				return &Error{Kind: KindTransient, Target: target, Op: opName(write), At: now}
			}
		}
	}
	return nil
}

// BeforeMeta implements pfs.FaultHook: active metadata-stall windows
// sleep the acting process.
func (in *Injector) BeforeMeta(p *vclock.Proc, target string) {
	now := p.Now()
	var extra time.Duration
	for _, ms := range in.spec.MetaStalls {
		if matches(ms.Target, target) && ms.Window.contains(now) {
			extra += ms.Extra
		}
	}
	if extra > 0 {
		in.mMetaStalls.Add(1)
		start := p.Now()
		p.Sleep(extra)
		in.crit.Record(critpath.Edge{
			Track: p.Name(), Cause: critpath.FaultStall, Subsystem: "faults",
			Detail: "meta-stall", Start: start, End: p.Now(),
		})
	}
}

// BackgroundStall implements asyncvol's fault model: a background task
// starting inside a stall window sleeps until the window ends.
func (in *Injector) BackgroundStall(now time.Duration) time.Duration {
	var until time.Duration
	for _, b := range in.spec.BGStalls {
		if end := b.Start + b.Dur; now >= b.Start && now < end && end > until {
			until = end
		}
	}
	if until == 0 {
		return 0
	}
	in.mBGStalls.Add(1)
	return until - now
}

// StagingCapacity implements asyncvol's fault model: the staging-buffer
// byte budget per connector (0 = unbounded).
func (in *Injector) StagingCapacity() int64 { return in.spec.StageCap }

// StagingExhausted records one staging-capacity rejection (asyncvol
// calls it when a staging request falls back to a synchronous dispatch).
func (in *Injector) StagingExhausted() { in.mStagingFull.Add(1) }

// RetryPolicy returns the ioreq retry stage policy for this schedule:
// injected transients and outages are retryable; exhaustion wraps into
// a typed Error and bumps the exhaustion counter core watches.
func (in *Injector) RetryPolicy() ioreq.RetryPolicy {
	r := in.spec.Retry
	return ioreq.RetryPolicy{
		MaxAttempts: r.Attempts,
		Backoff:     r.Backoff,
		MaxBackoff:  r.MaxBackoff,
		Deadline:    r.Deadline,
		Crit:        in.crit,
		Retryable: func(err error) bool {
			var fe *Error
			return errors.As(err, &fe) && fe.Kind != KindRetryExhausted
		},
		OnRetry: func(req *ioreq.Request, attempt int, err error) {
			in.mRetries.Add(1)
		},
		Exhausted: func(req *ioreq.Request, attempts int, err error) error {
			in.mExhausted.Add(1)
			e := &Error{Kind: KindRetryExhausted, At: procNow(req.Proc), Attempts: attempts, Err: err}
			var fe *Error
			if errors.As(err, &fe) {
				e.Target, e.Op = fe.Target, fe.Op
			}
			return e
		},
	}
}

// RetryStage builds the retry middleware stage for this schedule.
func (in *Injector) RetryStage() *ioreq.RetryStage {
	return ioreq.NewRetry(in.RetryPolicy())
}

// Degrade returns the degradation policy of the schedule; core consumes
// plain values so the packages stay decoupled.
func (in *Injector) Degrade() DegradeSpec { return in.spec.Degrade }

// Crashes returns the schedule's crash events; core turns them into
// virtual-clock kill timers against the run's ranks.
func (in *Injector) Crashes() []Crash { return in.spec.Crashes }

// IsCrash reports whether err is (or wraps) an injected crash — the
// expected outcome of a crash-chaos run, as opposed to a genuine
// failure.
func IsCrash(err error) bool {
	var fe *Error
	if !errors.As(err, &fe) {
		return false
	}
	return fe.Kind == KindCrashRank || fe.Kind == KindCrashNode
}

// CrashError builds the typed error recorded for a crash event.
func (c Crash) CrashError() *Error {
	kind, label := KindCrashRank, "rank"
	if c.Node {
		kind, label = KindCrashNode, "node"
	}
	return &Error{Kind: kind, Target: fmt.Sprintf("%s%d", label, c.Index), At: c.At}
}

// draw returns a deterministic pseudo-uniform value in [0,1) for the
// next op of (target, proc). FNV-1a over the spec seed, the target, the
// process name, and a per-pair op counter — a pure function of the
// schedule and each process's own op sequence, never of goroutine
// interleaving or the host process (maphash would not replay across
// processes).
func (in *Injector) draw(target, proc string) float64 {
	key := opKey{target: target, proc: proc}
	in.mu.Lock()
	n := in.ops[key]
	in.ops[key] = n + 1
	in.mu.Unlock()
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		mix(byte(uint64(in.spec.Seed) >> (8 * i)))
	}
	for i := 0; i < len(target); i++ {
		mix(target[i])
	}
	mix(0)
	for i := 0; i < len(proc); i++ {
		mix(proc[i])
	}
	mix(0)
	for i := 0; i < 8; i++ {
		mix(byte(n >> (8 * i)))
	}
	// One xorshift-multiply finalizer: FNV alone is weak in the low bits.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return float64(h>>11) / float64(1<<53)
}

// opName labels the direction of a data op.
func opName(write bool) string {
	if write {
		return "write"
	}
	return "read"
}

// procNow returns p's virtual time, tolerating nil.
func procNow(p *vclock.Proc) time.Duration {
	if p == nil {
		return 0
	}
	return p.Now()
}

// Interface conformance (asyncvol's FaultModel is structural).
var _ pfs.FaultHook = (*Injector)(nil)
