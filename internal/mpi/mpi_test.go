package mpi

import (
	"errors"
	"sync"
	"testing"
	"time"

	"asyncio/internal/vclock"
)

func runWorld(t *testing.T, size int, fn func(c *Comm)) *World {
	t.Helper()
	clk := vclock.New()
	w := Run(clk, size, DefaultCosts(), fn)
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRankAndSize(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	runWorld(t, 5, func(c *Comm) {
		if c.Size() != 5 {
			t.Errorf("Size = %d, want 5", c.Size())
		}
		mu.Lock()
		seen[c.Rank()] = true
		mu.Unlock()
	})
	for r := 0; r < 5; r++ {
		if !seen[r] {
			t.Errorf("rank %d never ran", r)
		}
	}
}

func TestBarrierSynchronizesTime(t *testing.T) {
	var mu sync.Mutex
	var after []time.Duration
	runWorld(t, 4, func(c *Comm) {
		// Rank r sleeps r seconds; after the barrier all ranks must be at
		// >= 3s (the slowest arrival).
		c.Proc().Sleep(time.Duration(c.Rank()) * time.Second)
		c.Barrier()
		mu.Lock()
		after = append(after, c.Now())
		mu.Unlock()
	})
	for _, ts := range after {
		if ts < 3*time.Second {
			t.Errorf("rank left barrier at %v, before slowest arrival 3s", ts)
		}
	}
}

func TestBcast(t *testing.T) {
	runWorld(t, 6, func(c *Comm) {
		v := -1
		if c.Rank() == 2 {
			v = 42
		}
		got := Bcast(c, v, 2)
		if got != 42 {
			t.Errorf("rank %d: Bcast = %d, want 42", c.Rank(), got)
		}
	})
}

func TestReduceSumAtRootOnly(t *testing.T) {
	runWorld(t, 8, func(c *Comm) {
		got := Reduce(c, c.Rank()+1, func(a, b int) int { return a + b }, 0)
		if c.Rank() == 0 {
			if got != 36 {
				t.Errorf("Reduce at root = %d, want 36", got)
			}
		} else if got != 0 {
			t.Errorf("Reduce at rank %d = %d, want zero value", c.Rank(), got)
		}
	})
}

func TestAllreduceMax(t *testing.T) {
	runWorld(t, 7, func(c *Comm) {
		got := Allreduce(c, float64(c.Rank()), func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		})
		if got != 6 {
			t.Errorf("Allreduce max = %v, want 6", got)
		}
	})
}

func TestGatherOrdering(t *testing.T) {
	runWorld(t, 5, func(c *Comm) {
		got := Gather(c, c.Rank()*10, 3)
		if c.Rank() != 3 {
			if got != nil {
				t.Errorf("rank %d: Gather = %v, want nil", c.Rank(), got)
			}
			return
		}
		for i, v := range got {
			if v != i*10 {
				t.Errorf("Gather[%d] = %d, want %d", i, v, i*10)
			}
		}
	})
}

func TestAllgather(t *testing.T) {
	runWorld(t, 4, func(c *Comm) {
		got := Allgather(c, c.Rank())
		if len(got) != 4 {
			t.Fatalf("len = %d, want 4", len(got))
		}
		for i, v := range got {
			if v != i {
				t.Errorf("Allgather[%d] = %d, want %d", i, v, i)
			}
		}
	})
}

func TestSendRecvOrdered(t *testing.T) {
	runWorld(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 10; i++ {
				Send(c, 1, 7, i)
			}
		} else {
			for i := 0; i < 10; i++ {
				if got := Recv[int](c, 0, 7); got != i {
					t.Errorf("Recv #%d = %d", i, got)
				}
			}
		}
	})
}

func TestRecvBlocksUntilSend(t *testing.T) {
	runWorld(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Proc().Sleep(5 * time.Second)
			Send(c, 1, 0, "late")
		} else {
			got := Recv[string](c, 0, 0)
			if got != "late" {
				t.Errorf("Recv = %q", got)
			}
			if c.Now() < 5*time.Second {
				t.Errorf("Recv returned at %v, before send at 5s", c.Now())
			}
		}
	})
}

func TestTagsSeparateStreams(t *testing.T) {
	runWorld(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 1, "one")
			Send(c, 1, 2, "two")
		} else {
			// Receive in the opposite tag order.
			if got := Recv[string](c, 0, 2); got != "two" {
				t.Errorf("tag 2 = %q", got)
			}
			if got := Recv[string](c, 0, 1); got != "one" {
				t.Errorf("tag 1 = %q", got)
			}
		}
	})
}

func TestMultipleSequentialCollectives(t *testing.T) {
	runWorld(t, 3, func(c *Comm) {
		for i := 0; i < 20; i++ {
			sum := Allreduce(c, i, func(a, b int) int { return a + b })
			if sum != 3*i {
				t.Fatalf("iteration %d: Allreduce = %d, want %d", i, sum, 3*i)
			}
		}
	})
}

func TestAbortErrPropagates(t *testing.T) {
	clk := vclock.New()
	sentinel := errors.New("boom")
	w := Run(clk, 3, DefaultCosts(), func(c *Comm) {
		if c.Rank() == 1 {
			c.Abort(sentinel)
		}
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := w.Err(); !errors.Is(err, sentinel) {
		t.Fatalf("Err = %v, want wrapped sentinel", err)
	}
}

func TestSingleRankWorld(t *testing.T) {
	runWorld(t, 1, func(c *Comm) {
		c.Barrier()
		if got := Allreduce(c, 9, func(a, b int) int { return a + b }); got != 9 {
			t.Errorf("Allreduce single = %d", got)
		}
		if got := Bcast(c, "x", 0); got != "x" {
			t.Errorf("Bcast single = %q", got)
		}
	})
}

func TestCollectiveLatencyCharged(t *testing.T) {
	clk := vclock.New()
	costs := Costs{CollectiveLatency: time.Millisecond}
	var end time.Duration
	var mu sync.Mutex
	Run(clk, 8, costs, func(c *Comm) {
		c.Barrier() // log2(8)=3 hops -> 3ms
		mu.Lock()
		if c.Now() > end {
			end = c.Now()
		}
		mu.Unlock()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	if end != 3*time.Millisecond {
		t.Fatalf("barrier cost = %v, want 3ms", end)
	}
}

func TestLargeWorldBarrierScales(t *testing.T) {
	if testing.Short() {
		t.Skip("large world")
	}
	clk := vclock.New()
	w := Run(clk, 2048, DefaultCosts(), func(c *Comm) {
		for i := 0; i < 3; i++ {
			c.Barrier()
		}
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestScatter(t *testing.T) {
	runWorld(t, 4, func(c *Comm) {
		var vals []int
		if c.Rank() == 1 {
			vals = []int{10, 11, 12, 13}
		}
		got := Scatter(c, vals, 1)
		if got != 10+c.Rank() {
			t.Errorf("rank %d: Scatter = %d", c.Rank(), got)
		}
	})
}

func TestScanInclusivePrefix(t *testing.T) {
	runWorld(t, 5, func(c *Comm) {
		got := Scan(c, c.Rank()+1, func(a, b int) int { return a + b })
		want := (c.Rank() + 1) * (c.Rank() + 2) / 2
		if got != want {
			t.Errorf("rank %d: Scan = %d, want %d", c.Rank(), got, want)
		}
	})
}

func TestSplitByParity(t *testing.T) {
	runWorld(t, 6, func(c *Comm) {
		sub := c.Split(c.Rank() % 2)
		if sub.Size() != 3 {
			t.Errorf("rank %d: sub size = %d", c.Rank(), sub.Size())
		}
		if want := c.Rank() / 2; sub.Rank() != want {
			t.Errorf("rank %d: sub rank = %d, want %d", c.Rank(), sub.Rank(), want)
		}
		// Collectives work within the sub-communicator: sum of parent
		// ranks sharing this parity.
		sum := Allreduce(sub, c.Rank(), func(a, b int) int { return a + b })
		want := 0 + 2 + 4
		if c.Rank()%2 == 1 {
			want = 1 + 3 + 5
		}
		if sum != want {
			t.Errorf("rank %d: sub Allreduce = %d, want %d", c.Rank(), sum, want)
		}
	})
}

func TestSplitSingletonColors(t *testing.T) {
	runWorld(t, 3, func(c *Comm) {
		sub := c.Split(c.Rank()) // every rank its own color
		if sub.Size() != 1 || sub.Rank() != 0 {
			t.Errorf("rank %d: singleton sub = %d/%d", c.Rank(), sub.Rank(), sub.Size())
		}
		sub.Barrier()
	})
}

func TestSequentialSplitsIndependent(t *testing.T) {
	runWorld(t, 4, func(c *Comm) {
		a := c.Split(c.Rank() % 2)
		b := c.Split(c.Rank() / 2)
		if a == b {
			t.Error("distinct Split calls returned the same communicator")
		}
		a.Barrier()
		b.Barrier()
	})
}
