package mpi

import (
	"errors"
	"testing"
	"time"

	"asyncio/internal/vclock"
)

var errCrash = errors.New("injected crash")

// Killing a rank mid-barrier unwinds the victim and releases the
// survivors, which observe the revoked communicator as an abort.
func TestKillReleasesBarrier(t *testing.T) {
	clk := vclock.New()
	reached := make([]bool, 3)
	past := make([]bool, 3)
	w := Run(clk, 3, DefaultCosts(), func(c *Comm) {
		if c.Rank() == 2 {
			// The victim never reaches the barrier; it sleeps and is
			// killed at t=1s.
			c.Proc().Sleep(time.Hour)
			return
		}
		reached[c.Rank()] = true
		c.Barrier()
		past[c.Rank()] = true
	})
	clk.AfterFunc(time.Second, func(now time.Duration) {
		w.Kill(2, errCrash)
	})
	// Two ranks parked in a barrier with a dead third: the abort wakes
	// them, so Wait must terminate.
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := w.Err(); !errors.Is(err, errCrash) {
		t.Fatalf("world error = %v, want %v", err, errCrash)
	}
	for r := 0; r < 2; r++ {
		if !reached[r] {
			t.Errorf("rank %d never reached the barrier", r)
		}
		if past[r] {
			t.Errorf("rank %d passed a barrier with a dead participant", r)
		}
	}
	if !w.Finished() {
		t.Error("Finished() = false after all ranks unwound")
	}
}

// A sleeping victim dies at the kill instant, not at its sleep deadline.
func TestKillInterruptsSleep(t *testing.T) {
	clk := vclock.New()
	var end time.Duration
	w := Run(clk, 2, DefaultCosts(), func(c *Comm) {
		if c.Rank() == 1 {
			c.Proc().Sleep(time.Hour)
			return
		}
		c.Proc().Sleep(2 * time.Second)
		end = c.Now()
	})
	clk.AfterFunc(time.Second, func(now time.Duration) {
		w.Kill(1, errCrash)
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	if end != 2*time.Second {
		t.Fatalf("survivor finished at %v, want 2s", end)
	}
	if now := clk.Now(); now != 2*time.Second {
		t.Fatalf("clock = %v; the victim's cancelled 1h sleep should not advance time", now)
	}
}

// Send/Recv with a killed peer: the blocked receiver unwinds via abort.
func TestKillReleasesRecv(t *testing.T) {
	clk := vclock.New()
	got := false
	w := Run(clk, 2, DefaultCosts(), func(c *Comm) {
		if c.Rank() == 0 {
			Recv[int](c, 1, 0) // peer dies before sending
			got = true
			return
		}
		c.Proc().Sleep(time.Hour)
	})
	clk.AfterFunc(time.Second, func(now time.Duration) {
		w.Kill(1, errCrash)
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("Recv returned data from a dead peer")
	}
	if err := w.Err(); !errors.Is(err, errCrash) {
		t.Fatalf("world error = %v, want %v", err, errCrash)
	}
}

// Kill after all ranks finished must not mark the world aborted until
// it actually kills someone — the caller guards with Finished.
func TestFinishedAfterCleanRun(t *testing.T) {
	clk := vclock.New()
	w := Run(clk, 2, DefaultCosts(), func(c *Comm) {
		c.Barrier()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	if !w.Finished() {
		t.Fatal("Finished() = false after a clean run")
	}
	if err := w.Err(); err != nil {
		t.Fatalf("world error = %v, want nil", err)
	}
}

// Out-of-range kills are rejected quietly (a crash spec can target a
// rank the run does not have).
func TestKillOutOfRange(t *testing.T) {
	clk := vclock.New()
	w := Run(clk, 2, DefaultCosts(), func(c *Comm) {
		c.Proc().Sleep(time.Millisecond)
	})
	w.Kill(7, errCrash)
	w.Kill(-1, errCrash)
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := w.Err(); err != nil {
		t.Fatalf("world error = %v, want nil", err)
	}
}
