// Package mpi implements a simulated MPI runtime on the virtual clock.
//
// Ranks are vclock processes; one Comm handle per rank gives the usual
// SPMD surface: Rank/Size, Barrier, Bcast, Reduce, Allreduce, Gather,
// Allgather, and tagged point-to-point Send/Recv. Collectives follow MPI
// matching semantics: every rank must issue the same collectives in the
// same order. Data is exchanged through shared memory (this is a
// single-process simulation); the cost model charges a configurable
// latency per collective, which is all the evaluated workloads need —
// the paper folds communication time into the computation phase.
package mpi

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"asyncio/internal/critpath"
	"asyncio/internal/metrics"
	"asyncio/internal/vclock"
)

// Costs configures the communication cost model.
type Costs struct {
	// PointToPointLatency is charged to the receiver per matched message.
	PointToPointLatency time.Duration
	// CollectiveLatency is charged to every rank per collective, scaled
	// by ceil(log2(size)) hops.
	CollectiveLatency time.Duration
	// Metrics, when non-nil, records collective traffic: every rank
	// observes its own blocking time per collective into
	// "mpi.collective_wait_seconds" (the last-arriving rank observes
	// zero, so the distribution captures the skew barriers absorb), and
	// "mpi.collectives" counts rank-entries. Sub-communicators from
	// Split inherit the registry.
	Metrics *metrics.Registry
	// Crit, when non-nil, records every collective rendezvous and
	// point-to-point receive wait as a causal edge. Root-world
	// collectives carry a global sequence detail ("coll:%08d") that the
	// critical-path analysis uses as segment boundaries; Split
	// sub-communicators record plain "collective" edges (their sequence
	// is not a global sync point). Inherited by Split.
	Crit *critpath.Recorder
}

// DefaultCosts are small but nonzero, so collectives are visible in
// traces without dominating any phase.
func DefaultCosts() Costs {
	return Costs{
		PointToPointLatency: 2 * time.Microsecond,
		CollectiveLatency:   1 * time.Microsecond,
	}
}

// World is the shared state behind a set of ranks.
type World struct {
	mu      sync.Mutex
	clk     *vclock.Clock
	size    int
	costs   Costs
	segRoot bool // root world: its collective sequence bounds critical-path segments
	colls   map[int64]*collSlot
	boxes   map[msgKey]*mailbox
	subs    map[subKey]*World
	procs   []*vclock.Proc // rank → process, for Kill; nil until the rank starts
	done    int            // ranks whose goroutine has returned
	abort   error
	abortAt time.Duration
	abortBy int
	aborted bool
}

// Finished reports whether every rank goroutine has returned (normally,
// by abort, or by kill). Crash schedulers use it to turn a crash firing
// after the application completed into a no-op.
func (w *World) Finished() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.done == w.size
}

// abortPanic unwinds a rank goroutine after the world aborts, mirroring
// MPI_Abort's termination semantics. Recovered by the rank wrapper.
type abortPanic struct{}

type msgKey struct {
	src, dst, tag int
}

type mailbox struct {
	queue   []any
	waiters []*recvWaiter
}

type recvWaiter struct {
	ev  *vclock.Event
	msg any
}

type collSlot struct {
	arrived int
	data    []any
	ev      *vclock.Event
	result  any
}

// Comm is one rank's communicator handle.
type Comm struct {
	w    *World
	rank int
	p    *vclock.Proc
	seq  int64
}

// Run spawns size rank processes on clk, each executing fn with its own
// Comm, and returns the World immediately. Use clk.Wait (or World.Barrier
// patterns inside fn) to join.
func Run(clk *vclock.Clock, size int, costs Costs, fn func(c *Comm)) *World {
	if size <= 0 {
		panic(fmt.Sprintf("mpi: invalid world size %d", size))
	}
	return RunOn([]*vclock.Clock{clk}, size, costs, fn)
}

// RunOn is Run with an explicit clock per rank: clks holds either one
// clock for all ranks or exactly size clocks (rank r runs on clks[r]).
// With shard clocks of one vclock.Coordinator this partitions the world
// across shards; world-level rendezvous events live on clks[0] and wake
// waiters cross-shard. The returned World's Finished/Kill/Err behave as
// in Run.
func RunOn(clks []*vclock.Clock, size int, costs Costs, fn func(c *Comm)) *World {
	if size <= 0 {
		panic(fmt.Sprintf("mpi: invalid world size %d", size))
	}
	if len(clks) != 1 && len(clks) != size {
		panic(fmt.Sprintf("mpi: RunOn with %d clocks for %d ranks", len(clks), size))
	}
	w := &World{
		clk:     clks[0],
		size:    size,
		costs:   costs,
		segRoot: true,
		colls:   make(map[int64]*collSlot),
		boxes:   make(map[msgKey]*mailbox),
		procs:   make([]*vclock.Proc, size),
	}
	// Holding any one shard pins global virtual time, so the spawn loop
	// cannot race the first ranks into a false deadlock.
	release := clks[0].Hold()
	defer release()
	for r := 0; r < size; r++ {
		c := &Comm{w: w, rank: r}
		clk := clks[0]
		if len(clks) == size {
			clk = clks[r]
		}
		clk.Go(fmt.Sprintf("rank%d", r), func(p *vclock.Proc) {
			defer func() {
				w.mu.Lock()
				w.done++
				w.mu.Unlock()
			}()
			defer func() {
				if r := recover(); r != nil {
					switch r.(type) {
					case abortPanic, vclock.Killed:
						return // world aborted or rank killed; unwind quietly
					}
					panic(r)
				}
			}()
			c.p = p
			w.mu.Lock()
			w.procs[c.rank] = p
			w.mu.Unlock()
			fn(c)
		})
	}
	return w
}

// Rank returns this rank's index in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.w.size }

// Proc returns the rank's virtual-clock process, for Sleep/Now.
func (c *Comm) Proc() *vclock.Proc { return c.p }

// Now returns the current virtual time.
func (c *Comm) Now() time.Duration { return c.p.Now() }

// Abort records an error on the world and releases every rank blocked in
// a collective or receive — those ranks unwind like MPI_Abort. The
// earliest failure in virtual time wins, ties broken by rank, so the
// reported error is a function of the simulation alone: ranks failing at
// the same virtual instant race to call Abort, and goroutine arrival
// order must not pick the winner. Use World.Err after clk.Wait to check
// the run.
func (c *Comm) Abort(err error) {
	c.w.abortAs(c.p.Now(), c.rank, err)
}

// abortAs records an abort attributed to rank at virtual time now and
// releases every blocked rank (earliest time wins, lowest rank on ties).
func (w *World) abortAs(now time.Duration, rank int, err error) {
	w.mu.Lock()
	if w.abort == nil || now < w.abortAt || (now == w.abortAt && rank < w.abortBy) {
		w.abort = fmt.Errorf("rank %d: %w", rank, err)
		w.abortAt = now
		w.abortBy = rank
	}
	w.aborted = true
	evs := w.abortEventsLocked()
	w.mu.Unlock()
	for _, ev := range evs {
		ev.Fire()
	}
}

// abortEventsLocked collects (and clears) every event a rank is blocked
// on — collective rendezvous and receive waits. Caller holds w.mu and
// fires the events after releasing it. The collection order is part of
// the simulation's output (it decides the order blocked ranks unwind),
// so both maps are walked in sorted key order — never in Go's
// randomized map order.
func (w *World) abortEventsLocked() []*vclock.Event {
	var evs []*vclock.Event
	collKeys := make([]int64, 0, len(w.colls))
	for key := range w.colls {
		collKeys = append(collKeys, key)
	}
	sort.Slice(collKeys, func(i, j int) bool { return collKeys[i] < collKeys[j] })
	for _, key := range collKeys {
		evs = append(evs, w.colls[key].ev)
	}
	boxKeys := make([]msgKey, 0, len(w.boxes))
	for key := range w.boxes {
		boxKeys = append(boxKeys, key)
	}
	sort.Slice(boxKeys, func(i, j int) bool {
		a, b := boxKeys[i], boxKeys[j]
		if a.src != b.src {
			return a.src < b.src
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		return a.tag < b.tag
	})
	for _, key := range boxKeys {
		mb := w.boxes[key]
		for _, wt := range mb.waiters {
			evs = append(evs, wt.ev)
		}
		mb.waiters = nil
	}
	return evs
}

// Kill terminates one rank at the current virtual instant: the victim's
// process dies with a vclock.Killed panic (its pending sleep or event
// wait is cancelled), and the death is observed by every surviving rank
// as a revoked communicator — an abort recorded with Abort's
// earliest-virtual-time ordering that unwinds ranks blocked in
// collectives or receives, and fails the next MPI call of the rest.
// Callable from a timer callback, another process, or the host.
func (w *World) Kill(rank int, err error) {
	if rank < 0 || rank >= w.size {
		return
	}
	w.mu.Lock()
	victim := w.procs[rank]
	w.mu.Unlock()
	if victim != nil {
		// Kill before firing abort events so the victim dies as a crash
		// (Killed) rather than unwinding like a surviving rank.
		victim.Kill(err)
	}
	w.abortAs(w.clk.Now(), rank, err)
}

func (w *World) checkAborted() {
	w.mu.Lock()
	aborted := w.aborted
	w.mu.Unlock()
	if aborted {
		panic(abortPanic{})
	}
}

// Err returns the error recorded via Abort (earliest virtual time,
// lowest rank on ties), if any.
func (w *World) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.abort
}

func (w *World) collLatency() time.Duration {
	hops := int(math.Ceil(math.Log2(float64(w.size))))
	if hops < 1 {
		hops = 1
	}
	return time.Duration(hops) * w.costs.CollectiveLatency
}

// collective is the rendezvous behind every collective: rank contributes
// a value; the last arriving rank computes the result from all
// contributions and wakes the others. All ranks leave at the same virtual
// instant plus the collective latency.
func collective[R any](c *Comm, contrib any, compute func(data []any) R) R {
	c.seq++
	key := c.seq
	w := c.w
	w.mu.Lock()
	if w.aborted {
		w.mu.Unlock()
		panic(abortPanic{})
	}
	slot, ok := w.colls[key]
	if !ok {
		slot = &collSlot{data: make([]any, w.size), ev: vclock.NewEventNamed(w.clk, "mpi:collective")}
		w.colls[key] = slot
	}
	slot.data[c.rank] = contrib
	slot.arrived++
	last := slot.arrived == w.size
	if last {
		delete(w.colls, key)
	}
	w.mu.Unlock()
	enter := c.p.Now()
	if last {
		slot.result = compute(slot.data)
		slot.ev.Fire()
	} else {
		slot.ev.Wait(c.p)
		w.checkAborted()
	}
	if m := w.costs.Metrics; m != nil {
		m.Counter("mpi.collectives").Add(1)
		m.Histogram("mpi.collective_wait_seconds").Observe((c.p.Now() - enter).Seconds())
	}
	if w.costs.Crit != nil {
		detail := "collective"
		if w.segRoot {
			// Zero-padded so lexicographic order equals sequence order.
			detail = fmt.Sprintf("coll:%08d", key)
		}
		w.costs.Crit.Record(critpath.Edge{
			Track: c.p.Name(), Cause: critpath.CollectiveWait, Subsystem: "mpi",
			Detail: detail, Start: enter, End: c.p.Now(),
		})
	}
	c.p.Sleep(w.collLatency())
	return slot.result.(R)
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() {
	collective(c, nil, func([]any) struct{} { return struct{}{} })
}

// Bcast distributes root's value to every rank.
func Bcast[T any](c *Comm, v T, root int) T {
	return collective(c, v, func(data []any) T { return data[root].(T) })
}

// Reduce combines all contributions with op; only root receives the
// result (other ranks get the zero value), mirroring MPI_Reduce.
func Reduce[T any](c *Comm, v T, op func(a, b T) T, root int) T {
	res := collective(c, v, func(data []any) T {
		acc := data[0].(T)
		for _, d := range data[1:] {
			acc = op(acc, d.(T))
		}
		return acc
	})
	if c.rank != root {
		var zero T
		return zero
	}
	return res
}

// Allreduce combines all contributions with op; every rank receives the
// result.
func Allreduce[T any](c *Comm, v T, op func(a, b T) T) T {
	return collective(c, v, func(data []any) T {
		acc := data[0].(T)
		for _, d := range data[1:] {
			acc = op(acc, d.(T))
		}
		return acc
	})
}

// Gather collects one value per rank, ordered by rank; only root receives
// the slice (others get nil).
func Gather[T any](c *Comm, v T, root int) []T {
	res := collective(c, v, func(data []any) []T {
		out := make([]T, len(data))
		for i, d := range data {
			out[i] = d.(T)
		}
		return out
	})
	if c.rank != root {
		return nil
	}
	return res
}

// Allgather collects one value per rank, ordered by rank, on every rank.
func Allgather[T any](c *Comm, v T) []T {
	return collective(c, v, func(data []any) []T {
		out := make([]T, len(data))
		for i, d := range data {
			out[i] = d.(T)
		}
		return out
	})
}

// Send delivers v to rank dst with the given tag. Sends are buffered and
// never block.
func Send[T any](c *Comm, dst, tag int, v T) {
	w := c.w
	if dst < 0 || dst >= w.size {
		panic(fmt.Sprintf("mpi: Send to invalid rank %d (size %d)", dst, w.size))
	}
	key := msgKey{src: c.rank, dst: dst, tag: tag}
	w.mu.Lock()
	if w.aborted {
		w.mu.Unlock()
		panic(abortPanic{})
	}
	mb, ok := w.boxes[key]
	if !ok {
		mb = &mailbox{}
		w.boxes[key] = mb
	}
	if len(mb.waiters) > 0 {
		wt := mb.waiters[0]
		mb.waiters = mb.waiters[1:]
		wt.msg = v
		w.mu.Unlock()
		wt.ev.Fire()
		return
	}
	mb.queue = append(mb.queue, v)
	w.mu.Unlock()
}

// Recv blocks until a message from rank src with the given tag arrives,
// and returns it. Messages from the same (src, tag) arrive in send order.
func Recv[T any](c *Comm, src, tag int) T {
	w := c.w
	if src < 0 || src >= w.size {
		panic(fmt.Sprintf("mpi: Recv from invalid rank %d (size %d)", src, w.size))
	}
	key := msgKey{src: src, dst: c.rank, tag: tag}
	w.mu.Lock()
	if w.aborted {
		w.mu.Unlock()
		panic(abortPanic{})
	}
	mb, ok := w.boxes[key]
	if !ok {
		mb = &mailbox{}
		w.boxes[key] = mb
	}
	var msg any
	if len(mb.queue) > 0 && len(mb.waiters) == 0 {
		msg = mb.queue[0]
		mb.queue = mb.queue[1:]
		w.mu.Unlock()
	} else {
		wt := &recvWaiter{ev: vclock.NewEventNamed(w.clk, "mpi:recv")}
		mb.waiters = append(mb.waiters, wt)
		w.mu.Unlock()
		enter := c.p.Now()
		wt.ev.Wait(c.p)
		w.checkAborted()
		w.costs.Crit.Record(critpath.Edge{
			Track: c.p.Name(), Cause: critpath.QueueWait, Subsystem: "mpi",
			Detail: "recv", Start: enter, End: c.p.Now(),
		})
		msg = wt.msg
	}
	c.p.Sleep(w.costs.PointToPointLatency)
	return msg.(T)
}

// Scatter distributes root's slice, one element per rank, mirroring
// MPI_Scatter. Root must supply exactly Size elements; other ranks pass
// nil.
func Scatter[T any](c *Comm, values []T, root int) T {
	return collective(c, values, func(data []any) []T {
		vs := data[root].([]T)
		if len(vs) != c.w.size {
			panic(fmt.Sprintf("mpi: Scatter with %d values for %d ranks", len(vs), c.w.size))
		}
		return vs
	})[c.rank]
}

// Scan computes the inclusive prefix reduction over ranks: rank r
// receives op(v0, v1, ..., vr), mirroring MPI_Scan.
func Scan[T any](c *Comm, v T, op func(a, b T) T) T {
	return collective(c, v, func(data []any) []T {
		out := make([]T, len(data))
		acc := data[0].(T)
		out[0] = acc
		for i := 1; i < len(data); i++ {
			acc = op(acc, data[i].(T))
			out[i] = acc
		}
		return out
	})[c.rank]
}

// Split partitions the world into sub-communicators by color, mirroring
// MPI_Comm_split with key = existing rank order. Every rank must call
// it; the returned Comm spans the ranks that passed the same color and
// shares the parent's clock, costs, and abort state.
func (c *Comm) Split(color int) *Comm {
	type member struct {
		rank, color int
	}
	members := collective(c, member{rank: c.rank, color: color}, func(data []any) []member {
		out := make([]member, len(data))
		for i, d := range data {
			out[i] = d.(member)
		}
		return out
	})
	// Sub-communicator worlds are memoized per (collective instance,
	// color) on the parent so all members share state.
	key := subKey{seq: c.seq, color: color}
	var newRank, newSize int
	for _, m := range members {
		if m.color != color {
			continue
		}
		if m.rank < c.rank {
			newRank++
		}
		newSize++
	}
	w := c.w
	w.mu.Lock()
	if w.subs == nil {
		w.subs = make(map[subKey]*World)
	}
	sub, ok := w.subs[key]
	if !ok {
		sub = &World{
			clk:   w.clk,
			size:  newSize,
			costs: w.costs,
			colls: make(map[int64]*collSlot),
			boxes: make(map[msgKey]*mailbox),
		}
		w.subs[key] = sub
	}
	w.mu.Unlock()
	return &Comm{w: sub, rank: newRank, p: c.p}
}

type subKey struct {
	seq   int64
	color int
}
