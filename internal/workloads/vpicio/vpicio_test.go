package vpicio

import (
	"encoding/binary"
	"testing"
	"time"

	"asyncio/internal/core"
	"asyncio/internal/hdf5"
	"asyncio/internal/pfs"
	"asyncio/internal/systems"
	"asyncio/internal/trace"
	"asyncio/internal/vclock"
	"asyncio/internal/vol"
)

// verifyFile checks every step/prop/rank slab against the fill pattern.
// The run closed its file, so verification re-opens it from the store.
func verifyFile(t *testing.T, closed *hdf5.File, steps, ranks int, perRank uint64) {
	t.Helper()
	raw, err := hdf5.Open(closed.Store())
	if err != nil {
		t.Fatalf("reopening: %v", err)
	}
	root := vol.Native{}.Wrap(raw).Root()
	pr := vol.Props{}
	for s := 0; s < steps; s++ {
		g, err := root.OpenGroup(pr, StepGroup(s))
		if err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
		for pi, prop := range Properties {
			ds, err := g.OpenDataset(pr, prop)
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, int(perRank)*4*ranks)
			if err := ds.Read(pr, nil, buf); err != nil {
				t.Fatal(err)
			}
			for r := 0; r < ranks; r++ {
				base := r * int(perRank) * 4
				for i := 0; i < int(perRank); i++ {
					got := binary.LittleEndian.Uint32(buf[base+4*i:])
					want := ExpectedValue(r, s, pi, i)
					if got != want {
						t.Fatalf("step %d prop %s rank %d elem %d = %#x, want %#x",
							s, prop, r, i, got, want)
					}
				}
			}
		}
	}
}

func TestSyncRunWritesCorrectData(t *testing.T) {
	clk := vclock.New()
	sys := systems.Summit(clk, 1) // 6 ranks
	cfg := Config{
		Steps:            2,
		ParticlesPerRank: 64,
		ComputeTime:      time.Second,
		Mode:             core.ForceSync,
		Materialize:      true,
	}
	rep, raw, err := Run(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Run.Records) != 2 {
		t.Fatalf("records = %d", len(rep.Run.Records))
	}
	// 8 props × 64 particles × 4 B × 6 ranks per step.
	if got := rep.Run.Records[0].Bytes; got != 8*64*4*6 {
		t.Fatalf("bytes = %d", got)
	}
	verifyFile(t, raw, 2, 6, 64)
}

func TestAsyncRunWritesCorrectData(t *testing.T) {
	clk := vclock.New()
	sys := systems.Summit(clk, 1)
	cfg := Config{
		Steps:            3,
		ParticlesPerRank: 32,
		ComputeTime:      time.Second,
		Mode:             core.ForceAsync,
		Materialize:      true,
	}
	rep, raw, err := Run(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Run.Records {
		if r.Mode != trace.Async {
			t.Fatalf("mode = %v", r.Mode)
		}
	}
	// Data must be complete and correct after the run's final drain.
	verifyFile(t, raw, 3, 6, 32)
}

func TestAsyncBandwidthExceedsSyncAtScale(t *testing.T) {
	// Timing-only runs with the paper's default sizes (32 MB/property):
	// asynchronous aggregate bandwidth (staging-copy rate) must exceed
	// the synchronous PFS rate by a large factor even at 1 node.
	runMode := func(mode core.Mode) float64 {
		clk := vclock.New()
		sys := systems.Summit(clk, 2) // 12 ranks
		rep, _, err := Run(sys, Config{
			Steps:       3,
			ComputeTime: 30 * time.Second,
			Mode:        mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Run.PeakRate()
	}
	syncBW := runMode(core.ForceSync)
	asyncBW := runMode(core.ForceAsync)
	if asyncBW < 3*syncBW {
		t.Fatalf("async %.3g not >> sync %.3g", asyncBW, syncBW)
	}
	// Sanity on absolute magnitudes: 12 ranks at 0.4 GB/s per rank ≈
	// 4.8 GB/s sync ceiling.
	if syncBW > 5e9 || syncBW < 1e9 {
		t.Fatalf("sync bw %.3g outside plausible range", syncBW)
	}
}

func TestWeakScalingBytesGrowWithRanks(t *testing.T) {
	peak := func(nodes int) int64 {
		clk := vclock.New()
		sys := systems.Summit(clk, nodes)
		rep, _, err := Run(sys, Config{
			Steps:            1,
			ParticlesPerRank: 1 << 10,
			ComputeTime:      time.Second,
			Mode:             core.ForceSync,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Run.Records[0].Bytes
	}
	b1, b4 := peak(1), peak(4)
	if b4 != 4*b1 {
		t.Fatalf("weak scaling bytes: %d at 4 nodes vs %d at 1", b4, b1)
	}
}

func TestAdaptiveModeRuns(t *testing.T) {
	clk := vclock.New()
	sys := systems.Summit(clk, 1)
	rep, _, err := Run(sys, Config{
		Steps:       8,
		ComputeTime: 30 * time.Second,
		Mode:        core.Adaptive,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With 30s compute, async dominates once the model is seeded.
	last := rep.Run.Records[len(rep.Run.Records)-1]
	if last.Mode != trace.Async {
		t.Fatalf("adaptive settled on %v, want async", last.Mode)
	}
}

// TestAggWindowReducesPFSDispatches pins the aggregation payoff at
// reduced scale: with a window of one slot per rank, each property's
// adjacent rank slabs coalesce into a single storage dispatch per step,
// so the PFS serves ranks× fewer (and ranks× larger) write requests.
//
// The backend is a congested target (aggregate capacity barely above
// one flow's share) so the backend — not the per-flow injection cap —
// is the bottleneck: the regime where the small-request penalty
// dominates and collective buffering pays. On an idle backend, 32
// parallel direct flows win instead; the abl-agg experiment shows both.
func TestAggWindowReducesPFSDispatches(t *testing.T) {
	const steps = 2
	run := func(window bool) (dispatches int64, rate float64, raw *hdf5.File, ranks int) {
		clk := vclock.New()
		sys := systems.CoriHaswell(clk, 1) // 32 ranks
		target := pfs.NewTarget(clk, pfs.TargetConfig{
			Name:        "congested",
			BackendPeak: 0.3e9,
			PerFlowBW:   0.1e9,
			ReqRamp:     1 << 20,
			OpLatency:   100 * time.Microsecond,
		})
		cfg := Config{
			Steps:            steps,
			ParticlesPerRank: 4096, // 16 KB per property, far below the ramp
			ComputeTime:      time.Second,
			Mode:             core.ForceSync,
			Materialize:      true,
			Target:           target,
		}
		if window {
			cfg.AggWindow = sys.Size()
		}
		rep, raw, err := Run(sys, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return target.Stats().WriteOps, rep.Run.PeakRate(), raw, rep.Run.Ranks
	}

	plain, plainRate, _, ranks := run(false)
	agged, aggedRate, raw, _ := run(true)

	wantPlain := int64(steps * len(Properties) * ranks)
	if plain != wantPlain {
		t.Errorf("direct dispatches = %d, want %d", plain, wantPlain)
	}
	wantAgged := int64(steps * len(Properties))
	if agged != wantAgged {
		t.Errorf("aggregated dispatches = %d, want %d (one per dataset per step)", agged, wantAgged)
	}
	// 512 dispatches each served as ~1 MB of backend work vs 16 served
	// as ~1.5 MB: the aggregated run must be substantially faster.
	if aggedRate < 2*plainRate {
		t.Errorf("aggregated rate %.3g not ≥ 2× direct rate %.3g", aggedRate, plainRate)
	}
	// And the coalesced writes must still place every byte correctly.
	verifyFile(t, raw, steps, 32, 4096)
}
