// Package vpicio reproduces the VPIC-IO kernel (§IV-B): the I/O skeleton
// of the Vector Particle-In-Cell plasma-physics code. Each checkpoint
// writes eight float32 particle properties to 1-D datasets; every rank
// contributes 8×1024×1024 particles (≈32 MB per property), so the data
// volume weak-scales with the rank count. Computation between
// checkpoints is a configurable sleep (the paper uses 30 s).
package vpicio

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"asyncio/internal/core"
	"asyncio/internal/hdf5"
	"asyncio/internal/ioreq"
	"asyncio/internal/model"
	"asyncio/internal/systems"
	"asyncio/internal/taskengine"
	"asyncio/internal/trace"
	"asyncio/internal/workloads/harness"
)

// Properties written per particle, as in the original kernel.
var Properties = []string{"x", "y", "z", "i", "ux", "uy", "uz", "ke"}

// Config parameterizes a run.
type Config struct {
	// Steps is the number of checkpoint epochs.
	Steps int
	// ParticlesPerRank defaults to 8×1024×1024 (≈32 MB per property).
	ParticlesPerRank uint64
	// ComputeTime is the simulated computation per epoch (default 30 s).
	ComputeTime time.Duration
	// Mode is the run policy.
	Mode core.Mode
	// Ranks defaults to the full allocation.
	Ranks int
	// Materialize enables real buffers (small correctness runs only).
	Materialize bool
	// Env tweaks the async connector (GPU/SSD staging, zero-copy).
	Env harness.Options
	// Estimator optionally carries model history across runs.
	Estimator *model.Estimator
	// Target overrides the storage tier the checkpoint file lives on
	// (default: the system's parallel file system). Use e.g.
	// sys.BurstBuffer to evaluate the burst-buffer tier.
	Target hdf5.Driver
	// AggWindow, when positive, aggregates synchronous writes: one
	// shared ioreq pipeline with an aggregation stage buffering up to
	// AggWindow requests per dataset coalesces adjacent rank slabs into
	// one storage dispatch (two-phase collective buffering). Set it to
	// the rank count to merge each property's per-step writes.
	AggWindow int
	// Store overrides the backing store — e.g. a pfs.DurableStore for
	// crash-consistency runs. Default: harness.NewStore(Materialize).
	Store hdf5.Store
	// OpenExisting opens the container already on Store instead of
	// creating a fresh one: restart runs resume into a recovered image.
	OpenExisting bool
	// StartStep numbers the first epoch this run executes. Steps remains
	// the total step count, so a restart run with StartStep=k performs
	// epochs k..Steps-1 against the surviving container. Step groups
	// that already exist (partially written before a crash, or restored
	// by journal replay) are reused.
	StartStep int
	// Checkpoint, when non-nil, runs the durable-commit protocol after
	// each eligible epoch (see harness.Checkpointer).
	Checkpoint *harness.Checkpointer
	// Observe, when non-nil, runs on rank 0 after each epoch's record
	// commits (see core.Hooks.Observe) — the hook experiments use to
	// assert on mid-run metrics.
	Observe func(ctx *core.RankCtx, iter int, rec trace.Record)
}

// Run executes the kernel on sys and returns the run report plus the
// shared file (for readers such as BD-CATS-IO).
func Run(sys *systems.System, cfg Config) (*core.Report, *hdf5.File, error) {
	if cfg.Steps <= 0 {
		cfg.Steps = 5
	}
	if cfg.ParticlesPerRank == 0 {
		cfg.ParticlesPerRank = 8 << 20
	}
	if cfg.ComputeTime == 0 {
		cfg.ComputeTime = 30 * time.Second
	}
	cfg.Env.Materialize = cfg.Materialize
	if cfg.AggWindow > 0 && cfg.Env.SyncPipeline == nil {
		cfg.Env.SyncPipeline = ioreq.New(ioreq.NewAgg(ioreq.AggConfig{MaxRequests: cfg.AggWindow})).
			WithMetrics(sys.Metrics)
	}

	if cfg.StartStep < 0 || cfg.StartStep >= cfg.Steps {
		return nil, nil, fmt.Errorf("vpicio: StartStep %d outside 0..%d", cfg.StartStep, cfg.Steps-1)
	}

	target := hdf5.Driver(sys.PFS)
	if cfg.Target != nil {
		target = cfg.Target
	}
	store := cfg.Store
	if store == nil {
		store = harness.NewStore(cfg.Materialize)
	}
	var raw *hdf5.File
	var err error
	if cfg.OpenExisting {
		raw, err = hdf5.Open(store, hdf5.WithDriver(target))
	} else {
		raw, err = hdf5.Create(store, hdf5.WithDriver(target))
	}
	if err != nil {
		return nil, nil, err
	}
	eng := taskengine.New(sys.Clk)
	ranks := cfg.Ranks
	if ranks == 0 {
		ranks = sys.Size()
	}
	perPropBytes := int64(cfg.ParticlesPerRank) * 4
	pool := harness.NewBufferPool(perPropBytes)

	envs := make([]*harness.Env, ranks)
	var mu sync.Mutex

	hooks := core.Hooks{
		Init: func(ctx *core.RankCtx) error {
			env := harness.NewEnv(ctx, eng, raw, cfg.Env)
			mu.Lock()
			envs[ctx.Rank] = env
			mu.Unlock()
			return nil
		},
		Compute: func(ctx *core.RankCtx, iter int) error {
			ctx.P.Sleep(cfg.ComputeTime)
			return nil
		},
		IO: func(ctx *core.RankCtx, iter int, mode trace.Mode) (int64, error) {
			env := envs[ctx.Rank]
			step := cfg.StartStep + iter
			n, err := writeStep(ctx, env, pool, cfg, step, mode)
			if err != nil {
				return n, err
			}
			// The checkpoint's drain+flush time lands in the epoch's I/O
			// time: the cost side of the interval tradeoff.
			if err := cfg.Checkpoint.Checkpoint(ctx, env, step); err != nil {
				return n, err
			}
			return n, nil
		},
		Drain:   func(ctx *core.RankCtx) error { return envs[ctx.Rank].Drain(ctx.P) },
		Term:    func(ctx *core.RankCtx) error { return envs[ctx.Rank].Term(ctx.P) },
		Observe: cfg.Observe,
	}
	rep, err := core.Run(sys, core.Config{
		Workload:   "vpic-io",
		Iterations: cfg.Steps - cfg.StartStep,
		Mode:       cfg.Mode,
		Ranks:      ranks,
		Estimator:  cfg.Estimator,
	}, hooks)
	// On an aborted run rep is the partial report (epochs committed
	// before the crash plus the crash records); pass it through with the
	// file so chaos harnesses can still export and recover.
	return rep, raw, err
}

// StepGroup names the checkpoint group for a time step, matching the
// kernel's "Step#N" convention.
func StepGroup(step int) string { return fmt.Sprintf("Step#%d", step) }

// writeStep runs one rank's share of a checkpoint: rank 0 creates the
// step group and the eight property datasets, then every rank writes its
// particle slab to each.
func writeStep(ctx *core.RankCtx, env *harness.Env, pool *harness.BufferPool, cfg Config, step int, mode trace.Mode) (int64, error) {
	c := ctx.Comm
	pr := env.Props(ctx.P, mode)
	pr.Span = ctx.IOSpan
	file := env.File(mode)
	total := cfg.ParticlesPerRank * uint64(c.Size())

	if c.Rank() == 0 {
		// Metadata is collective in spirit: rank 0 creates, everyone
		// else opens after the barrier. A restart run may find the step
		// group already on disk — created before the crash or restored
		// by journal replay — in which case it is reused, not an error.
		g, err := file.Root().CreateGroup(pr, StepGroup(step))
		if errors.Is(err, hdf5.ErrExists) {
			g, err = file.Root().OpenGroup(pr, StepGroup(step))
		}
		if err != nil {
			return 0, err
		}
		if err := g.SetAttrInt64(pr, "timestep", int64(step)); err != nil {
			return 0, err
		}
		space := hdf5.MustSimple(total)
		for _, prop := range Properties {
			if _, err := g.CreateDataset(pr, prop, hdf5.F32, space, nil); err != nil && !errors.Is(err, hdf5.ErrExists) {
				return 0, err
			}
		}
	}
	c.Barrier()

	g, err := file.Root().OpenGroup(pr, StepGroup(step))
	if err != nil {
		return 0, err
	}
	slab, err := harness.Slab1D(total, cfg.ParticlesPerRank, c.Rank())
	if err != nil {
		return 0, err
	}
	perPropBytes := int64(cfg.ParticlesPerRank) * 4
	var written int64
	for pi, prop := range Properties {
		ds, err := g.OpenDataset(pr, prop)
		if err != nil {
			return 0, err
		}
		if cfg.Materialize {
			buf := pool.Get(perPropBytes, true)
			fillParticles(buf, ctx.Rank, step, pi)
			if err := ds.Write(pr, slab, buf); err != nil {
				return 0, err
			}
		} else if err := ds.WriteDiscard(pr, slab); err != nil {
			return 0, err
		}
		written += perPropBytes
	}
	return written, nil
}

// fillParticles writes a deterministic pattern so correctness tests can
// verify placement: each float32 is bits(rank<<20 | step<<16 | prop<<12 | i&0xfff).
func fillParticles(buf []byte, rank, step, prop int) {
	for i := 0; i+4 <= len(buf); i += 4 {
		v := uint32(rank)<<20 | uint32(step)<<16 | uint32(prop)<<12 | uint32(i/4)&0xfff
		buf[i] = byte(v)
		buf[i+1] = byte(v >> 8)
		buf[i+2] = byte(v >> 16)
		buf[i+3] = byte(v >> 24)
	}
}

// ExpectedValue returns the pattern value fillParticles wrote at element
// i of the given (rank, step, prop).
func ExpectedValue(rank, step, prop, i int) uint32 {
	return uint32(rank)<<20 | uint32(step)<<16 | uint32(prop)<<12 | uint32(i)&0xfff
}
