// Package cosmoflow reproduces the I/O behaviour of CosmoFlow training
// (§IV-C): a 3-D CNN predicting cosmological parameters from 128³-voxel
// matter-distribution volumes. Each training step reads one batch per
// rank from the shared dataset; the "computation" phase is the training
// step itself. The asynchronous mode models a double-buffered DataLoader
// that prefetches the next batch while the current one trains — the
// paper's custom PyTorch DataLoader. The dataset is fixed, so scaling
// ranks is strong scaling over the read path (Fig. 5).
package cosmoflow

import (
	"fmt"
	"sync"
	"time"

	"asyncio/internal/core"
	"asyncio/internal/hdf5"
	"asyncio/internal/model"
	"asyncio/internal/systems"
	"asyncio/internal/taskengine"
	"asyncio/internal/trace"
	"asyncio/internal/vol"
	"asyncio/internal/workloads/harness"
)

// Config parameterizes a run.
type Config struct {
	// BatchSize is samples per rank per step (paper: 8).
	BatchSize int
	// Epochs over the dataset (paper: 4); StepsPerEpoch defaults to 8.
	Epochs        int
	StepsPerEpoch int
	// VoxelsPerSide of each sample volume (paper: 128).
	VoxelsPerSide int
	// TrainTime is the computation per training step (default 10 s,
	// long enough for prefetch overlap on a loaded PFS).
	TrainTime   time.Duration
	Mode        core.Mode
	Ranks       int
	Materialize bool
	Env         harness.Options
	Estimator   *model.Estimator
}

// Run executes the training I/O skeleton on sys.
func Run(sys *systems.System, cfg Config) (*core.Report, error) {
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 8
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 4
	}
	if cfg.StepsPerEpoch == 0 {
		cfg.StepsPerEpoch = 8
	}
	if cfg.VoxelsPerSide == 0 {
		cfg.VoxelsPerSide = 128
	}
	if cfg.TrainTime == 0 {
		cfg.TrainTime = 10 * time.Second
	}
	cfg.Env.Materialize = cfg.Materialize
	// GPU training: samples staged through the GPU link by default on
	// machines that have one.
	ranks := cfg.Ranks
	if ranks == 0 {
		ranks = sys.Size()
	}
	sampleElems := uint64(cfg.VoxelsPerSide) * uint64(cfg.VoxelsPerSide) * uint64(cfg.VoxelsPerSide)
	stepElems := sampleElems * uint64(cfg.BatchSize) * uint64(ranks)
	totalElems := stepElems * uint64(cfg.StepsPerEpoch)
	iterations := cfg.Epochs * cfg.StepsPerEpoch

	raw, err := harness.CreateSharedFile(sys, cfg.Materialize)
	if err != nil {
		return nil, err
	}
	// Host-side dataset setup (the training corpus exists before the
	// job starts).
	corpus := vol.Native{}.Wrap(raw)
	if _, err := corpus.Root().CreateDataset(vol.Props{},
		"universe", hdf5.F32, hdf5.MustSimple(totalElems), nil); err != nil {
		return nil, fmt.Errorf("cosmoflow: creating dataset: %w", err)
	}

	eng := taskengine.New(sys.Clk)
	envs := make([]*harness.Env, ranks)
	var mu sync.Mutex

	batchSel := func(iter, rank int) (*hdf5.Dataspace, int64, error) {
		step := iter % cfg.StepsPerEpoch
		start := uint64(step)*stepElems + uint64(rank)*sampleElems*uint64(cfg.BatchSize)
		count := sampleElems * uint64(cfg.BatchSize)
		sel := hdf5.MustSimple(totalElems)
		if err := sel.SelectHyperslab([]uint64{start}, nil, []uint64{1}, []uint64{count}); err != nil {
			return nil, 0, err
		}
		return sel, int64(count) * 4, nil
	}

	hooks := core.Hooks{
		Init: func(ctx *core.RankCtx) error {
			env := harness.NewEnv(ctx, eng, raw, cfg.Env)
			mu.Lock()
			envs[ctx.Rank] = env
			mu.Unlock()
			return nil
		},
		Compute: func(ctx *core.RankCtx, iter int) error {
			ctx.P.Sleep(cfg.TrainTime)
			return nil
		},
		IO: func(ctx *core.RankCtx, iter int, mode trace.Mode) (int64, error) {
			env := envs[ctx.Rank]
			pr := env.Props(ctx.P, mode)
			ds, err := env.File(mode).Root().OpenDataset(pr, "universe")
			if err != nil {
				return 0, err
			}
			sel, nbytes, err := batchSel(iter, ctx.Rank)
			if err != nil {
				return 0, err
			}
			if cfg.Materialize {
				if err := ds.Read(pr, sel, make([]byte, nbytes)); err != nil {
					return 0, err
				}
			} else if err := ds.ReadDiscard(pr, sel); err != nil {
				return 0, err
			}
			// Double-buffered loader: stage the next batch during the
			// next training step.
			if mode == trace.Async && iter+1 < iterations {
				nsel, _, err := batchSel(iter+1, ctx.Rank)
				if err != nil {
					return 0, err
				}
				if err := ds.Prefetch(pr, nsel); err != nil {
					return 0, err
				}
			}
			return nbytes, nil
		},
		Drain: func(ctx *core.RankCtx) error { return envs[ctx.Rank].Drain(ctx.P) },
		Term:  func(ctx *core.RankCtx) error { return envs[ctx.Rank].Term(ctx.P) },
	}
	return core.Run(sys, core.Config{
		Workload:   "cosmoflow",
		Iterations: iterations,
		Mode:       cfg.Mode,
		Ranks:      ranks,
		Estimator:  cfg.Estimator,
	}, hooks)
}
