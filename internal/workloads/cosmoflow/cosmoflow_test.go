package cosmoflow

import (
	"testing"
	"time"

	"asyncio/internal/core"
	"asyncio/internal/systems"
	"asyncio/internal/trace"
	"asyncio/internal/vclock"
)

func run(t *testing.T, nodes int, mode core.Mode, cfg Config) *trace.RunResult {
	t.Helper()
	clk := vclock.New()
	sys := systems.Summit(clk, nodes)
	cfg.Mode = mode
	rep, err := Run(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &rep.Run
}

func TestIterationAndByteAccounting(t *testing.T) {
	cfg := Config{
		BatchSize: 2, Epochs: 2, StepsPerEpoch: 3, VoxelsPerSide: 16,
		TrainTime: time.Second,
	}
	rr := run(t, 1, core.ForceSync, cfg)
	if len(rr.Records) != 6 {
		t.Fatalf("records = %d, want epochs×steps = 6", len(rr.Records))
	}
	// 16³ voxels × 4 B × batch 2 × 6 ranks per step.
	want := int64(16*16*16) * 4 * 2 * 6
	for _, r := range rr.Records {
		if r.Bytes != want {
			t.Fatalf("bytes = %d, want %d", r.Bytes, want)
		}
	}
}

func TestAsyncLoaderBeatsSyncAfterFirstStep(t *testing.T) {
	cfg := Config{
		BatchSize: 4, Epochs: 1, StepsPerEpoch: 4, VoxelsPerSide: 64,
		TrainTime: 30 * time.Second,
	}
	syncRR := run(t, 4, core.ForceSync, cfg)
	asyncRR := run(t, 4, core.ForceAsync, cfg)
	if asyncRR.PeakRate() < 3*syncRR.PeakRate() {
		t.Fatalf("async loader %.3g not >> sync %.3g", asyncRR.PeakRate(), syncRR.PeakRate())
	}
	// First async step is a cold read, later steps hit the prefetch.
	recs := asyncRR.Records
	if recs[1].IOTime >= recs[0].IOTime {
		t.Fatalf("step 1 io %v not below cold step 0 %v", recs[1].IOTime, recs[0].IOTime)
	}
}

func TestSyncStopsScalingAsyncMaintains(t *testing.T) {
	// Fig. 5: synchronous read bandwidth stops scaling past the PFS
	// knee; asynchronous stays higher.
	cfg := Config{
		BatchSize: 8, Epochs: 1, StepsPerEpoch: 3, VoxelsPerSide: 64,
		TrainTime: 60 * time.Second,
	}
	sync128 := run(t, 128, core.ForceSync, cfg).PeakRate()
	sync512 := run(t, 512, core.ForceSync, cfg).PeakRate()
	async512 := run(t, 512, core.ForceAsync, cfg).PeakRate()
	if async512 <= sync512 {
		t.Fatalf("async %.3g not above sync %.3g at 512 nodes", async512, sync512)
	}
	// Sync gains from 128→512 nodes must be far below the 4× ideal —
	// the paper's "does not scale after 128 nodes".
	if sync512/sync128 > 2 {
		t.Fatalf("sync scaled %.1f× from 128→512 nodes; knee missing", sync512/sync128)
	}
}

func TestMaterializedRun(t *testing.T) {
	cfg := Config{
		BatchSize: 1, Epochs: 1, StepsPerEpoch: 2, VoxelsPerSide: 8,
		TrainTime: 100 * time.Millisecond, Materialize: true,
	}
	rr := run(t, 1, core.ForceAsync, cfg)
	if len(rr.Records) != 2 {
		t.Fatalf("records = %d", len(rr.Records))
	}
}
