package harness

import (
	"testing"

	"asyncio/internal/core"
	"asyncio/internal/hdf5"
	"asyncio/internal/systems"
	"asyncio/internal/taskengine"
	"asyncio/internal/trace"
	"asyncio/internal/vclock"
)

func TestNewStoreSelection(t *testing.T) {
	if _, ok := NewStore(true).(*hdf5.MemStore); !ok {
		t.Fatal("materialized store is not a MemStore")
	}
	if _, ok := NewStore(false).(*hdf5.NullStore); !ok {
		t.Fatal("timing store is not a NullStore")
	}
}

func TestSlab1D(t *testing.T) {
	sp, err := Slab1D(100, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sp.SelectionCount() != 10 {
		t.Fatalf("count = %d", sp.SelectionCount())
	}
	var off uint64
	if err := sp.EachRun(func(o, n uint64) error { off = o; return nil }); err != nil {
		t.Fatal(err)
	}
	if off != 30 {
		t.Fatalf("offset = %d, want 30", off)
	}
	if _, err := Slab1D(100, 30, 3); err == nil {
		t.Fatal("out-of-range slab accepted")
	}
}

func TestBufferPool(t *testing.T) {
	pool := NewBufferPool(64)
	shared := pool.Get(64, false)
	if len(shared) != 64 {
		t.Fatalf("len = %d", len(shared))
	}
	if &pool.Get(32, false)[0] != &shared[0] {
		t.Fatal("timing-mode buffers must share backing storage")
	}
	m1 := pool.Get(32, true)
	m2 := pool.Get(32, true)
	if &m1[0] == &m2[0] {
		t.Fatal("materialized buffers must be distinct")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized request did not panic")
		}
	}()
	pool.Get(65, false)
}

func TestEnvModeSwitching(t *testing.T) {
	clk := vclock.New()
	sys := systems.Summit(clk, 1)
	eng := taskengine.New(clk)
	raw, err := CreateSharedFile(sys, true)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	clk.Go("rank", func(p *vclock.Proc) {
		defer close(done)
		ctx := &core.RankCtx{P: p, Sys: sys, Rank: 0}
		env := NewEnv(ctx, eng, raw, Options{Materialize: true})
		if env.File(trace.Sync) == env.File(trace.Async) {
			t.Error("modes must map to distinct connector wrappers")
		}
		if env.Props(p, trace.Async).Set == nil {
			t.Error("async props must carry the event set")
		}
		if env.Props(p, trace.Sync).Set != nil {
			t.Error("sync props must not carry an event set")
		}
		// Write through async, drain, read back through sync.
		pr := env.Props(p, trace.Async)
		ds, err := env.File(trace.Async).Root().CreateDataset(pr, "d", hdf5.U8, hdf5.MustSimple(8), nil)
		if err != nil {
			t.Error(err)
			return
		}
		if err := ds.Write(pr, nil, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
			t.Error(err)
		}
		if err := env.Drain(p); err != nil {
			t.Error(err)
		}
		sds, err := env.File(trace.Sync).Root().OpenDataset(env.Props(p, trace.Sync), "d")
		if err != nil {
			t.Error(err)
			return
		}
		out := make([]byte, 8)
		if err := sds.Read(env.Props(p, trace.Sync), nil, out); err != nil {
			t.Error(err)
		}
		if out[7] != 8 {
			t.Errorf("readback = %v", out)
		}
		if err := env.Term(p); err != nil {
			t.Error(err)
		}
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	<-done
}

func TestEnvStagingOptions(t *testing.T) {
	clk := vclock.New()
	sys := systems.Summit(clk, 1)
	eng := taskengine.New(clk)
	raw, err := CreateSharedFile(sys, false)
	if err != nil {
		t.Fatal(err)
	}
	// Each option combination must construct without panicking and give
	// a usable env.
	for _, opts := range []Options{
		{},
		{GPU: true},
		{GPU: true, Pinned: true},
		{SSD: true},
		{ZeroCopy: true},
	} {
		ctx := &core.RankCtx{Sys: sys, Rank: 0}
		env := NewEnv(ctx, eng, raw, opts)
		if env.Conn == nil || env.AsyncFile == nil || env.SyncFile == nil {
			t.Fatalf("env incomplete for %+v", opts)
		}
		env.Conn.Shutdown()
	}
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}
