// Package harness carries the plumbing every workload shares: per-rank
// VOL connector setup (a native synchronous connector plus an asyncvol
// connector with the system's transactional-copy model), mode-keyed file
// handles over one shared container, and teardown. Workloads compose it
// with core.Hooks.
package harness

import (
	"fmt"
	"sync"

	"asyncio/internal/asyncvol"
	"asyncio/internal/core"
	"asyncio/internal/hdf5"
	"asyncio/internal/ioreq"
	"asyncio/internal/systems"
	"asyncio/internal/taskengine"
	"asyncio/internal/trace"
	"asyncio/internal/vclock"
	"asyncio/internal/vol"
)

// Env is one rank's I/O environment.
type Env struct {
	Rank      int
	Conn      *asyncvol.Connector
	AsyncFile vol.File
	SyncFile  vol.File
	ES        *asyncvol.EventSet

	syncPL *ioreq.Pipeline // non-nil when Options.SyncPipeline was set
}

// Options configures environment construction.
type Options struct {
	// Materialize makes staging buffers real (small-scale correctness
	// runs). Full-scale timing runs leave it false.
	Materialize bool
	// GPU stages through the GPU link before the host copy (Nyx's GPU
	// configuration); Pinned selects pinned host buffers.
	GPU    bool
	Pinned bool
	// SSD stages to the node-local SSD instead of DRAM.
	SSD bool
	// ZeroCopy disables the transactional copy entirely — the ablation
	// of the overhead term.
	ZeroCopy bool
	// SyncPipeline overrides the synchronous connector's I/O request
	// pipeline. Pass one instance shared by every rank (e.g.
	// ioreq.New(ioreq.NewAgg(cfg))) to aggregate adjacent writes across
	// ranks; Term flushes it before closing the file.
	SyncPipeline *ioreq.Pipeline
	// AsyncAggregate enables the aggregation stage inside each rank's
	// asynchronous connector. The zero value leaves it off.
	AsyncAggregate ioreq.AggConfig
	// AsyncInlineStages are extra caller-side stages for each rank's
	// asynchronous connector, run before the staging copy (e.g. the
	// write-ahead journal stage). Shared across ranks; must be
	// concurrency-safe.
	AsyncInlineStages []ioreq.Stage
}

// NewEnv builds the per-rank environment around a shared raw file. The
// engine must be shared by all ranks of the run (one background stream
// is created per rank, matching vol-async).
func NewEnv(ctx *core.RankCtx, eng *taskengine.Engine, raw *hdf5.File, opts Options) *Env {
	var copyModel asyncvol.CopyModel
	switch {
	case opts.ZeroCopy:
		copyModel = nil
	case opts.SSD:
		copyModel = asyncvol.CopyFunc(ctx.Sys.SSDStageModel(ctx.Rank))
	case opts.GPU:
		copyModel = asyncvol.CopyFunc(ctx.Sys.GPUCopyModel(ctx.Rank, opts.Pinned))
	default:
		copyModel = asyncvol.CopyFunc(ctx.Sys.MemcpyModel(ctx.Rank))
	}
	eng.SetMetrics(ctx.Sys.Metrics)
	eng.SetCrit(ctx.Sys.Crit)
	avOpts := asyncvol.Options{
		Copy:         copyModel,
		Materialize:  opts.Materialize,
		Aggregate:    opts.AsyncAggregate,
		Metrics:      ctx.Sys.Metrics,
		Crit:         ctx.Sys.Crit,
		InlineStages: opts.AsyncInlineStages,
		// Under the sharded engine the rank's background stream lives on
		// the rank's home shard (ClockFor is the system clock when
		// serial), so stream wakeups and task churn stay on the shard's
		// lock instead of serializing on one global clock.
		Clock: ctx.Sys.ClockFor(ctx.Rank),
	}
	// The consistency stage sits upstream of the retry stage on both
	// paths, so one successful execution records exactly one write no
	// matter how many retries it took. It runs on the executing process:
	// the rank itself synchronously, the background stream
	// asynchronously — which is how async hides visibility cost.
	cs := ctx.Sys.Consistency
	consStage := cs.Stage(ctx.Rank)
	syncPL := opts.SyncPipeline
	var execStages, syncStages []ioreq.Stage
	if consStage != nil {
		execStages = append(execStages, consStage)
		syncStages = append(syncStages, consStage)
	}
	if in := ctx.Sys.Faults; in != nil {
		// A faulted system retries on both paths: the connector's
		// background executor and (absent a caller-supplied pipeline)
		// the synchronous route. Assign the interface field only from a
		// non-nil injector so the nil check inside asyncvol stays valid.
		avOpts.Faults = in
		execStages = append(execStages, in.RetryStage())
		syncStages = append(syncStages, in.RetryStage())
	}
	avOpts.ExecStages = execStages
	if syncPL == nil && len(syncStages) > 0 {
		syncPL = ioreq.New(syncStages...).WithMetrics(ctx.Sys.Metrics)
	}
	if cs != nil {
		rank := ctx.Rank
		// Publish points: a drain is the connector's sync barrier
		// (MPI-IO), a close ends the session (session consistency).
		avOpts.OnDrained = func(p *vclock.Proc) { cs.RankSync(p, rank) }
		avOpts.OnClose = func(p *vclock.Proc) { cs.RankClose(p, rank) }
	}
	conn := asyncvol.New(eng, fmt.Sprintf("rank%d", ctx.Rank), avOpts)
	// If the run has a crash schedule, the rank's background stream dies
	// with the rank: queued asynchronous writes are abandoned un-issued,
	// which is exactly the data-loss window crash experiments measure.
	ctx.OnCrash(func(reason error) { conn.Kill(reason) })
	es := asyncvol.NewEventSet()
	es.SetCrit(ctx.Sys.Crit)
	return &Env{
		Rank:      ctx.Rank,
		Conn:      conn,
		AsyncFile: conn.Wrap(raw),
		SyncFile:  vol.Native{Pipeline: syncPL}.Wrap(raw),
		ES:        es,
		syncPL:    syncPL,
	}
}

// File returns the handle for the given I/O mode.
func (e *Env) File(mode trace.Mode) vol.File {
	if mode == trace.Async {
		return e.AsyncFile
	}
	return e.SyncFile
}

// Props returns transfer props for the given mode: asynchronous
// operations are tracked in the env's event set.
func (e *Env) Props(p *vclock.Proc, mode trace.Mode) vol.Props {
	if mode == trace.Async {
		return vol.Props{Proc: p, Set: e.ES}
	}
	return vol.Props{Proc: p}
}

// Drain waits for all outstanding asynchronous work of this rank.
func (e *Env) Drain(p *vclock.Proc) error {
	if err := e.ES.Wait(p); err != nil {
		return err
	}
	return e.Conn.Drain(p)
}

// Term drains, closes the file (idempotent across ranks), and shuts the
// background stream down. A shared synchronous aggregation pipeline is
// flushed first so buffered writes reach the store before close.
func (e *Env) Term(p *vclock.Proc) error {
	if e.syncPL != nil {
		if err := e.syncPL.Flush(p); err != nil {
			return err
		}
	}
	if err := e.AsyncFile.Close(vol.Props{Proc: p}); err != nil {
		return err
	}
	e.Conn.Shutdown()
	return nil
}

// NewStore returns the store appropriate for the scale: a MemStore when
// materializing, a NullStore otherwise.
func NewStore(materialize bool) hdf5.Store {
	if materialize {
		return hdf5.NewMemStore()
	}
	return hdf5.NewNullStore()
}

// CreateSharedFile creates the run's container on the system's PFS
// driver. Call from the host before core.Run; creation cost is part of
// t_init and charged when ranks open objects.
func CreateSharedFile(sys *systems.System, materialize bool) (*hdf5.File, error) {
	return CreateSharedFileOn(sys.PFS, materialize)
}

// CreateSharedFileOn creates the run's container on a specific timing
// driver — e.g. a burst-buffer tier instead of the scratch file system.
func CreateSharedFileOn(target hdf5.Driver, materialize bool) (*hdf5.File, error) {
	return hdf5.Create(NewStore(materialize), hdf5.WithDriver(target))
}

// Slab1D selects rank's contiguous share of a 1-D dataset of total
// elements: [rank*per, rank*per+per).
func Slab1D(total, per uint64, rank int) (*hdf5.Dataspace, error) {
	sp, err := hdf5.NewSimple(total)
	if err != nil {
		return nil, err
	}
	start := uint64(rank) * per
	if err := sp.SelectHyperslab([]uint64{start}, nil, []uint64{1}, []uint64{per}); err != nil {
		return nil, err
	}
	return sp, nil
}

// Buffer returns a zeroed buffer of n bytes when materializing, or a
// shared dummy buffer otherwise (the NullStore discards contents, so
// sharing is safe and avoids allocating gigabytes across ranks). The
// shared buffer is allocated on first use: discard-mode runs — every
// figure sweep — never request it, and eagerly zeroing tens of
// megabytes per run dominated whole-simulation allocation profiles.
type BufferPool struct {
	max    int64
	once   sync.Once
	shared []byte
}

// NewBufferPool caps the shared dummy buffer at the largest per-rank
// request.
func NewBufferPool(maxBytes int64) *BufferPool {
	return &BufferPool{max: maxBytes}
}

// Get returns a buffer of exactly n bytes. Requests beyond the pool's
// capacity panic: the pool is shared by concurrent ranks and must not
// reallocate.
func (bp *BufferPool) Get(n int64, materialize bool) []byte {
	if materialize {
		return make([]byte, n)
	}
	if n > bp.max {
		panic(fmt.Sprintf("harness: buffer request %d exceeds pool %d", n, bp.max))
	}
	bp.once.Do(func() { bp.shared = make([]byte, bp.max) })
	return bp.shared[:n]
}
