package harness

import (
	"sync"

	"asyncio/internal/core"
	"asyncio/internal/critpath"
	"asyncio/internal/hdf5"
	"asyncio/internal/ioreq"
	"asyncio/internal/metrics"
	"asyncio/internal/pfs"
	"asyncio/internal/recovery"
	"asyncio/internal/vol"
)

// CrashKit bundles the crash-consistency machinery for one run: a
// durable write-back store layered over the base image, a write-ahead
// journal, and the inline journal stage to hand each rank's
// asynchronous connector. Build one per run on the host, pass
// Stage via Options.AsyncInlineStages and Durable as the container
// store; after a crash, tear the cache with Durable.Crash and scan the
// base image with recovery.Scan(Journal.Bytes(), Base, ...).
type CrashKit struct {
	Base    hdf5.Store
	Durable *pfs.DurableStore
	Journal *recovery.Journal
	Stage   *recovery.JournalStage
}

// NewCrashKit builds the kit over a fresh MemStore. capturePayload
// controls whether the journal records element bytes (verification and
// replay) or only extent maps.
func NewCrashKit(cfg pfs.DurabilityConfig, cost recovery.Cost, capturePayload bool) *CrashKit {
	base := hdf5.NewMemStore()
	j := recovery.NewJournal(cost)
	return &CrashKit{
		Base:    base,
		Durable: pfs.NewDurableStore(base, cfg),
		Journal: j,
		Stage:   recovery.NewJournalStage(j, capturePayload),
	}
}

// InlineStages returns the option slice wiring the journal into each
// rank's connector.
func (k *CrashKit) InlineStages() []ioreq.Stage {
	return []ioreq.Stage{k.Stage}
}

// SetCrit attaches the critical-path recorder to the kit's durability
// machinery: journal appends and charged fsync barriers record
// fsync-journal edges. Nil-safe on both sides.
func (k *CrashKit) SetCrit(rec *critpath.Recorder) {
	if k == nil {
		return
	}
	k.Journal.SetCrit(rec)
	k.Durable.SetCrit(rec)
}

// Checkpointer coordinates application-level durable checkpoints: every
// Every epochs, all ranks drain their asynchronous work, synchronize,
// and rank 0 flushes the container — metadata plus the durable store's
// fsync barrier — so everything written so far survives any later
// crash. One instance is shared by all ranks of a run.
type Checkpointer struct {
	// Every is the checkpoint interval in epochs; <= 0 disables.
	Every int

	journal *recovery.Journal // truncated after each durable commit; may be nil

	mu          sync.Mutex
	lastDurable int

	mCommits *metrics.Counter
}

// NewCheckpointer builds a checkpointer. journal, when non-nil, is
// truncated after each durable commit (its records are redundant once
// the data they describe is on stable storage).
func NewCheckpointer(every int, journal *recovery.Journal) *Checkpointer {
	return &Checkpointer{Every: every, journal: journal, lastDurable: -1}
}

// Instrument registers the commit counter (pay-for-use).
func (ck *Checkpointer) Instrument(m *metrics.Registry) {
	if ck == nil || m == nil {
		return
	}
	ck.mCommits = m.Counter("harness.checkpoint.commits")
}

// LastDurable returns the highest epoch index covered by a durable
// checkpoint, or -1 when none committed. After a crash, restart from
// LastDurable()+1.
func (ck *Checkpointer) LastDurable() int {
	if ck == nil {
		return -1
	}
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return ck.lastDurable
}

// Checkpoint runs the durable-commit protocol for epoch iter when the
// interval says so; otherwise it returns immediately. All ranks must
// call it at the same point of the epoch (it contains barriers). The
// elapsed virtual time is the recovery-cost side of the
// checkpoint-interval tradeoff and lands in the epoch's I/O time.
func (ck *Checkpointer) Checkpoint(ctx *core.RankCtx, env *Env, iter int) error {
	if ck == nil || ck.Every <= 0 || (iter+1)%ck.Every != 0 {
		return nil
	}
	// Every rank's asynchronous writes for epochs <= iter must reach the
	// container before the barrier; then one rank pays the flush.
	if err := env.Drain(ctx.P); err != nil {
		return err
	}
	ctx.Comm.Barrier()
	if ctx.Rank == 0 {
		if err := env.AsyncFile.Flush(vol.Props{Proc: ctx.P}); err != nil {
			return err
		}
		// Bookkeeping runs on rank 0 alone, strictly between the flush
		// and the release barrier: no other rank can journal a new write
		// until the barrier opens, so the journal truncation cannot race
		// a concurrent append.
		ck.mu.Lock()
		if iter > ck.lastDurable {
			ck.lastDurable = iter
			if ck.journal != nil {
				ck.journal.Reset()
			}
			ck.mCommits.Add(1)
		}
		ck.mu.Unlock()
		// The checkpoint's fsync barrier is the commit consistency
		// model's publish point and every model's durability promise.
		// Recorded after the flush so a crash between the two merely
		// weakens the promise, never overstates it.
		ctx.Sys.Consistency.Commit(ctx.P, iter)
	}
	ctx.Comm.Barrier()
	return nil
}
