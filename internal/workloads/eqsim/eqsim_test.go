package eqsim

import (
	"testing"
	"time"

	"asyncio/internal/core"
	"asyncio/internal/systems"
	"asyncio/internal/vclock"
)

func run(t *testing.T, nodes int, mode core.Mode, cfg Config) float64 {
	t.Helper()
	clk := vclock.New()
	sys := systems.Summit(clk, nodes)
	cfg.Mode = mode
	rep, err := Run(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep.Run.PeakRate()
}

func TestStrongScalingShapes(t *testing.T) {
	cfg := Config{Checkpoints: 3, CheckpointEvery: 100, TimePerStep: 250 * time.Millisecond}
	// Fig. 6: past the backend knee, sync decays as per-rank slabs
	// shrink; async stays consistent (grows with node count).
	sync128 := run(t, 128, core.ForceSync, cfg)
	sync1024 := run(t, 1024, core.ForceSync, cfg)
	async128 := run(t, 128, core.ForceAsync, cfg)
	async1024 := run(t, 1024, core.ForceAsync, cfg)
	if sync1024 >= sync128 {
		t.Fatalf("sync did not decay under strong scaling: %.3g -> %.3g", sync128, sync1024)
	}
	if async1024 <= async128 {
		t.Fatalf("async did not keep scaling: %.3g -> %.3g", async128, async1024)
	}
	if async1024 <= sync1024 {
		t.Fatalf("async %.3g not above sync %.3g at 1024 nodes", async1024, sync1024)
	}
}

func TestCheckpointBytesMatchGrid(t *testing.T) {
	clk := vclock.New()
	sys := systems.Summit(clk, 1)
	rep, err := Run(sys, Config{
		Grid: [3]int{60, 60, 34}, NComp: 3,
		Checkpoints: 1, CheckpointEvery: 2, TimePerStep: 100 * time.Millisecond,
		Mode: core.ForceSync,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(60*60*34) * 3 * 4
	if got := rep.Run.Records[0].Bytes; got != want {
		t.Fatalf("bytes = %d, want %d", got, want)
	}
}

func TestTooManyRanksRejected(t *testing.T) {
	clk := vclock.New()
	sys := systems.Summit(clk, 1)
	_, err := Run(sys, Config{Grid: [3]int{1, 1, 2}, NComp: 1, Checkpoints: 1})
	if err == nil {
		t.Fatal("tiny grid with 6 ranks accepted")
	}
}

func TestSSDStagingRun(t *testing.T) {
	// The paper notes node-local SSD as an alternative buffer location.
	cfg := Config{Checkpoints: 2, CheckpointEvery: 10, TimePerStep: 100 * time.Millisecond}
	cfg.Env.SSD = true
	dram := run(t, 2, core.ForceAsync, Config{Checkpoints: 2, CheckpointEvery: 10, TimePerStep: 100 * time.Millisecond})
	ssd := run(t, 2, core.ForceAsync, cfg)
	// SSD staging is slower than DRAM staging but still a valid path.
	if ssd >= dram {
		t.Fatalf("ssd staging rate %.3g not below dram %.3g", ssd, dram)
	}
}
