// Package eqsim reproduces the I/O behaviour of EQSIM/SW4 (§IV-C): a
// fourth-order seismic wave solver checkpointing its 3-D volume every
// CheckpointEvery time steps. The physical domain (30000×30000×17000 m
// at grid spacing 50 m → 600×600×340 grid points) is fixed as ranks
// scale — strong scaling, so per-rank checkpoint data shrinks and
// synchronous aggregate bandwidth decays while asynchronous staging
// stays consistent (Fig. 6).
package eqsim

import (
	"fmt"
	"sync"
	"time"

	"asyncio/internal/core"
	"asyncio/internal/hdf5"
	"asyncio/internal/model"
	"asyncio/internal/systems"
	"asyncio/internal/taskengine"
	"asyncio/internal/trace"
	"asyncio/internal/workloads/harness"
)

// Config parameterizes a run.
type Config struct {
	// Grid is the number of grid points per dimension (default the
	// paper's h=50 discretization: 600×600×340).
	Grid [3]int
	// NComp is the number of wavefield components checkpointed
	// (default 3: displacement vector).
	NComp int
	// Checkpoints is the number of I/O epochs (default 5).
	Checkpoints int
	// CheckpointEvery is the time steps between checkpoints (paper:
	// 100); TimePerStep is the cost of one step (default 250 ms).
	CheckpointEvery int
	TimePerStep     time.Duration
	Mode            core.Mode
	Ranks           int
	Materialize     bool
	Env             harness.Options
	Estimator       *model.Estimator
}

// Run executes the EQSIM checkpoint skeleton on sys.
func Run(sys *systems.System, cfg Config) (*core.Report, error) {
	if cfg.Grid == [3]int{} {
		cfg.Grid = [3]int{600, 600, 340}
	}
	if cfg.NComp == 0 {
		cfg.NComp = 3
	}
	if cfg.Checkpoints == 0 {
		cfg.Checkpoints = 5
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 100
	}
	if cfg.TimePerStep == 0 {
		cfg.TimePerStep = 250 * time.Millisecond
	}
	cfg.Env.Materialize = cfg.Materialize
	ranks := cfg.Ranks
	if ranks == 0 {
		ranks = sys.Size()
	}
	totalElems := uint64(cfg.Grid[0]) * uint64(cfg.Grid[1]) * uint64(cfg.Grid[2]) * uint64(cfg.NComp)
	if totalElems < uint64(ranks) {
		return nil, fmt.Errorf("eqsim: grid %v too small for %d ranks", cfg.Grid, ranks)
	}

	raw, err := harness.CreateSharedFile(sys, cfg.Materialize)
	if err != nil {
		return nil, err
	}
	eng := taskengine.New(sys.Clk)
	envs := make([]*harness.Env, ranks)
	var mu sync.Mutex
	compute := time.Duration(cfg.CheckpointEvery) * cfg.TimePerStep

	hooks := core.Hooks{
		Init: func(ctx *core.RankCtx) error {
			env := harness.NewEnv(ctx, eng, raw, cfg.Env)
			mu.Lock()
			envs[ctx.Rank] = env
			mu.Unlock()
			return nil
		},
		Compute: func(ctx *core.RankCtx, iter int) error {
			ctx.P.Sleep(compute)
			return nil
		},
		IO: func(ctx *core.RankCtx, iter int, mode trace.Mode) (int64, error) {
			return writeCheckpoint(ctx, envs[ctx.Rank], mode, iter, totalElems, cfg.Materialize)
		},
		Drain: func(ctx *core.RankCtx) error { return envs[ctx.Rank].Drain(ctx.P) },
		Term:  func(ctx *core.RankCtx) error { return envs[ctx.Rank].Term(ctx.P) },
	}
	return core.Run(sys, core.Config{
		Workload:   "eqsim",
		Iterations: cfg.Checkpoints,
		Mode:       cfg.Mode,
		Ranks:      ranks,
		Estimator:  cfg.Estimator,
	}, hooks)
}

// writeCheckpoint writes this rank's slab of the full wavefield volume.
func writeCheckpoint(ctx *core.RankCtx, env *harness.Env, mode trace.Mode, step int, totalElems uint64, materialize bool) (int64, error) {
	c := ctx.Comm
	pr := env.Props(ctx.P, mode)
	file := env.File(mode)
	name := fmt.Sprintf("checkpoint%05d", step)
	if c.Rank() == 0 {
		g, err := file.Root().CreateGroup(pr, name)
		if err != nil {
			return 0, err
		}
		if err := g.SetAttrInt64(pr, "cycle", int64(step)); err != nil {
			return 0, err
		}
		if _, err := g.CreateDataset(pr, "wavefield", hdf5.F32,
			hdf5.MustSimple(totalElems), nil); err != nil {
			return 0, err
		}
	}
	c.Barrier()
	ds, err := file.Root().OpenDataset(pr, name+"/wavefield")
	if err != nil {
		return 0, err
	}
	per := totalElems / uint64(c.Size())
	start := uint64(c.Rank()) * per
	count := per
	if c.Rank() == c.Size()-1 {
		count = totalElems - start
	}
	sel := hdf5.MustSimple(totalElems)
	if err := sel.SelectHyperslab([]uint64{start}, nil, []uint64{1}, []uint64{count}); err != nil {
		return 0, err
	}
	nbytes := int64(count) * 4
	if materialize {
		if err := ds.Write(pr, sel, make([]byte, nbytes)); err != nil {
			return 0, err
		}
	} else if err := ds.WriteDiscard(pr, sel); err != nil {
		return 0, err
	}
	return nbytes, nil
}
