// Package bdcats reproduces the BD-CATS-IO kernel (§IV-B): the read side
// of trillion-particle clustering (DBSCAN at scale). It reads the
// particle data written by VPIC-IO, one time step per epoch, with the
// clustering computation replaced by a simulated sleep. In asynchronous
// mode the connector's prefetching stages the next step's datasets
// during the current computation phase; the first step's read is always
// blocking, exactly as in the HDF5 async VOL (§V-A2).
package bdcats

import (
	"fmt"
	"sync"
	"time"

	"asyncio/internal/core"
	"asyncio/internal/hdf5"
	"asyncio/internal/model"
	"asyncio/internal/systems"
	"asyncio/internal/taskengine"
	"asyncio/internal/trace"
	"asyncio/internal/vol"
	"asyncio/internal/workloads/harness"
	"asyncio/internal/workloads/vpicio"
)

// Config parameterizes a run.
type Config struct {
	// Steps is the number of time steps to read.
	Steps int
	// ParticlesPerRank must match the writer's configuration.
	ParticlesPerRank uint64
	// ComputeTime is the simulated clustering time per epoch (default
	// 30 s).
	ComputeTime time.Duration
	Mode        core.Mode
	Ranks       int
	Materialize bool
	Env         harness.Options
	Estimator   *model.Estimator
}

// PopulateInput creates a VPIC-IO-shaped file without timing charges:
// the groups and datasets for each step exist and storage is allocated,
// so a reader run can be driven without first simulating the writer.
func PopulateInput(sys *systems.System, steps int, particlesPerRank uint64, ranks int, materialize bool) (*hdf5.File, error) {
	raw, err := harness.CreateSharedFile(sys, materialize)
	if err != nil {
		return nil, err
	}
	total := particlesPerRank * uint64(ranks)
	root := vol.Native{}.Wrap(raw).Root()
	pr := vol.Props{} // untimed host-side setup
	for s := 0; s < steps; s++ {
		g, err := root.CreateGroup(pr, vpicio.StepGroup(s))
		if err != nil {
			return nil, err
		}
		space := hdf5.MustSimple(total)
		for _, prop := range vpicio.Properties {
			if _, err := g.CreateDataset(pr, prop, hdf5.F32, space, nil); err != nil {
				return nil, err
			}
		}
	}
	return raw, nil
}

// Run executes the reader on sys against input (a file shaped like
// VPIC-IO output; nil to have one populated automatically).
func Run(sys *systems.System, cfg Config, input *hdf5.File) (*core.Report, error) {
	if cfg.Steps <= 0 {
		cfg.Steps = 5
	}
	if cfg.ParticlesPerRank == 0 {
		cfg.ParticlesPerRank = 8 << 20
	}
	if cfg.ComputeTime == 0 {
		cfg.ComputeTime = 30 * time.Second
	}
	cfg.Env.Materialize = cfg.Materialize
	ranks := cfg.Ranks
	if ranks == 0 {
		ranks = sys.Size()
	}
	if input == nil {
		var err error
		input, err = PopulateInput(sys, cfg.Steps, cfg.ParticlesPerRank, ranks, cfg.Materialize)
		if err != nil {
			return nil, fmt.Errorf("bdcats: populating input: %w", err)
		}
	} else if input.Closed() {
		// A writer run closes its file at termination; re-open it from
		// the same store on the system's file-system driver.
		var err error
		input, err = hdf5.Open(input.Store(), hdf5.WithDriver(sys.PFS))
		if err != nil {
			return nil, fmt.Errorf("bdcats: reopening input: %w", err)
		}
	}
	eng := taskengine.New(sys.Clk)
	perPropBytes := int64(cfg.ParticlesPerRank) * 4
	pool := harness.NewBufferPool(perPropBytes)
	envs := make([]*harness.Env, ranks)
	var mu sync.Mutex

	hooks := core.Hooks{
		Init: func(ctx *core.RankCtx) error {
			env := harness.NewEnv(ctx, eng, input, cfg.Env)
			mu.Lock()
			envs[ctx.Rank] = env
			mu.Unlock()
			return nil
		},
		Compute: func(ctx *core.RankCtx, iter int) error {
			ctx.P.Sleep(cfg.ComputeTime)
			return nil
		},
		IO: func(ctx *core.RankCtx, iter int, mode trace.Mode) (int64, error) {
			env := envs[ctx.Rank]
			return readStep(ctx, env, pool, cfg, iter, mode)
		},
		Drain: func(ctx *core.RankCtx) error { return envs[ctx.Rank].Drain(ctx.P) },
		Term:  func(ctx *core.RankCtx) error { return envs[ctx.Rank].Term(ctx.P) },
	}
	return core.Run(sys, core.Config{
		Workload:   "bd-cats-io",
		Iterations: cfg.Steps,
		Mode:       cfg.Mode,
		Ranks:      ranks,
		Estimator:  cfg.Estimator,
	}, hooks)
}

// readStep reads this rank's slab of every property for the step, then —
// in asynchronous mode — schedules prefetches for the next step so they
// overlap the following computation phase.
func readStep(ctx *core.RankCtx, env *harness.Env, pool *harness.BufferPool, cfg Config, step int, mode trace.Mode) (int64, error) {
	c := ctx.Comm
	pr := env.Props(ctx.P, mode)
	file := env.File(mode)
	total := cfg.ParticlesPerRank * uint64(c.Size())
	slab, err := harness.Slab1D(total, cfg.ParticlesPerRank, c.Rank())
	if err != nil {
		return 0, err
	}
	perPropBytes := int64(cfg.ParticlesPerRank) * 4

	g, err := file.Root().OpenGroup(pr, vpicio.StepGroup(step))
	if err != nil {
		return 0, err
	}
	var read int64
	for _, prop := range vpicio.Properties {
		ds, err := g.OpenDataset(pr, prop)
		if err != nil {
			return 0, err
		}
		if cfg.Materialize {
			buf := pool.Get(perPropBytes, true)
			if err := ds.Read(pr, slab, buf); err != nil {
				return 0, err
			}
		} else if err := ds.ReadDiscard(pr, slab); err != nil {
			return 0, err
		}
		read += perPropBytes
	}

	// Trigger prefetching of the next step (the VOL connector does this
	// after the first step's data has been read).
	if mode == trace.Async && step+1 < cfg.Steps {
		ng, err := file.Root().OpenGroup(pr, vpicio.StepGroup(step+1))
		if err != nil {
			return 0, err
		}
		for _, prop := range vpicio.Properties {
			ds, err := ng.OpenDataset(pr, prop)
			if err != nil {
				return 0, err
			}
			if err := ds.Prefetch(pr, slab); err != nil {
				return 0, err
			}
		}
	}
	return read, nil
}
