package bdcats

import (
	"testing"
	"time"

	"asyncio/internal/core"
	"asyncio/internal/systems"
	"asyncio/internal/trace"
	"asyncio/internal/vclock"
	"asyncio/internal/workloads/vpicio"
)

func TestSyncReadRun(t *testing.T) {
	clk := vclock.New()
	sys := systems.Summit(clk, 1)
	rep, err := Run(sys, Config{
		Steps:            3,
		ParticlesPerRank: 1 << 10,
		ComputeTime:      time.Second,
		Mode:             core.ForceSync,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Run.Records) != 3 {
		t.Fatalf("records = %d", len(rep.Run.Records))
	}
	for _, r := range rep.Run.Records {
		if r.Bytes != 8*(1<<10)*4*6 {
			t.Fatalf("bytes = %d", r.Bytes)
		}
	}
}

func TestAsyncPrefetchAcceleratesLaterSteps(t *testing.T) {
	clk := vclock.New()
	sys := systems.Summit(clk, 2)
	rep, err := Run(sys, Config{
		Steps:       4,
		ComputeTime: 30 * time.Second,
		Mode:        core.ForceAsync,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs := rep.Run.Records
	// Step 0 is a blocking read; later steps are served from prefetch
	// staging and should be much faster (paper: "orders of magnitude").
	first := recs[0].IOTime
	for i := 1; i < len(recs); i++ {
		if recs[i].IOTime*3 > first {
			t.Fatalf("step %d io %v not much faster than first %v", i, recs[i].IOTime, first)
		}
	}
}

func TestAsyncReadBandwidthExceedsSync(t *testing.T) {
	run := func(mode core.Mode) float64 {
		clk := vclock.New()
		sys := systems.Summit(clk, 2)
		rep, err := Run(sys, Config{
			Steps:       4,
			ComputeTime: 30 * time.Second,
			Mode:        mode,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Run.PeakRate()
	}
	syncBW := run(core.ForceSync)
	asyncBW := run(core.ForceAsync)
	if asyncBW < 3*syncBW {
		t.Fatalf("async read %.3g not >> sync %.3g", asyncBW, syncBW)
	}
}

func TestReadsDataWrittenByVPIC(t *testing.T) {
	// End-to-end pipeline: run the writer (materialized), then the
	// reader against its file on the same clock.
	clk := vclock.New()
	sys := systems.Summit(clk, 1)
	_, raw, err := vpicio.Run(sys, vpicio.Config{
		Steps:            2,
		ParticlesPerRank: 128,
		ComputeTime:      time.Second,
		Mode:             core.ForceSync,
		Materialize:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sys, Config{
		Steps:            2,
		ParticlesPerRank: 128,
		ComputeTime:      time.Second,
		Mode:             core.ForceAsync,
		Materialize:      true,
	}, raw)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Run.TotalBytes() != 2*8*128*4*6 {
		t.Fatalf("total bytes = %d", rep.Run.TotalBytes())
	}
	for _, r := range rep.Run.Records {
		if r.Mode != trace.Async {
			t.Fatalf("mode = %v", r.Mode)
		}
	}
}
