package castro

import (
	"testing"
	"time"

	"asyncio/internal/core"
	"asyncio/internal/systems"
	"asyncio/internal/vclock"
)

func TestCheckpointVolumeIncludesParticles(t *testing.T) {
	clk := vclock.New()
	sys := systems.Summit(clk, 1)
	rep, err := Run(sys, Config{
		Dim: 32, MaxGrid: 16, NComp: 6, ParticlesPerCell: 2,
		Checkpoints: 2, ComputeTime: time.Second,
		Mode: core.ForceSync,
	})
	if err != nil {
		t.Fatal(err)
	}
	cells := int64(32 * 32 * 32)
	wantFab := cells * 6 * 8
	wantParticles := cells * 2 * 4 * 8 // particles × fields × f64
	if got := rep.Run.Records[0].Bytes; got != wantFab+wantParticles {
		t.Fatalf("bytes = %d, want %d", got, wantFab+wantParticles)
	}
}

func TestCoriSyncSaturatesAsyncScales(t *testing.T) {
	run := func(nodes int, mode core.Mode) float64 {
		clk := vclock.New()
		sys := systems.CoriHaswell(clk, nodes)
		rep, err := Run(sys, Config{
			Checkpoints: 3, ComputeTime: 60 * time.Second, Mode: mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Run.PeakRate()
	}
	// Fig. 4d: on Cori, sync grows with ranks up to saturation; async
	// shows linear node speedup.
	sync2 := run(2, core.ForceSync)
	sync8 := run(8, core.ForceSync)
	async2 := run(2, core.ForceAsync)
	async8 := run(8, core.ForceAsync)
	if sync8 <= sync2 {
		t.Fatalf("pre-saturation sync did not grow: %.3g -> %.3g", sync2, sync8)
	}
	if async8 < 3*async2 {
		t.Fatalf("async speedup %.2f not near-linear", async8/async2)
	}
	if async8 <= sync8 {
		t.Fatalf("async %.3g not above sync %.3g", async8, sync8)
	}
}

func TestMaterializedAsyncRun(t *testing.T) {
	clk := vclock.New()
	sys := systems.CoriHaswell(clk, 1)
	rep, err := Run(sys, Config{
		Dim: 16, MaxGrid: 8, NComp: 2, ParticlesPerCell: 1,
		Checkpoints: 2, ComputeTime: time.Second,
		Mode: core.ForceAsync, Materialize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Run.Records) != 2 {
		t.Fatalf("records = %d", len(rep.Run.Records))
	}
}
