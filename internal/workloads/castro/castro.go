// Package castro reproduces the I/O behaviour of Castro (§IV-C): a
// compressible-astrophysics AMReX code. The paper runs it at 128³ with 6
// components per multifab and 2 particles per cell; each checkpoint
// writes the multifab plotfile plus the particle data. Rank scaling with
// a fixed domain is strong scaling, giving the Fig. 4c/4d shapes.
package castro

import (
	"fmt"
	"sync"
	"time"

	"asyncio/internal/amrex"
	"asyncio/internal/core"
	"asyncio/internal/hdf5"
	"asyncio/internal/model"
	"asyncio/internal/systems"
	"asyncio/internal/taskengine"
	"asyncio/internal/trace"
	"asyncio/internal/workloads/harness"
)

// Config parameterizes a run.
type Config struct {
	// Dim is the cubic domain edge (paper: 128).
	Dim int
	// MaxGrid is the AMReX max_grid_size; 0 auto-sizes it so every rank
	// owns at least one box (amrex.AutoMaxGrid).
	MaxGrid int
	// NComp is the multifab component count (paper: 6).
	NComp int
	// ParticlesPerCell (paper: 2); each particle carries 4 float64
	// fields.
	ParticlesPerCell int
	// Checkpoints is the number of I/O epochs (default 5).
	Checkpoints int
	// ComputeTime is the computation phase per epoch (default 25 s).
	ComputeTime time.Duration
	Mode        core.Mode
	Ranks       int
	Materialize bool
	Env         harness.Options
	Estimator   *model.Estimator
}

const particleFields = 4 // position ×3 + mass, each float64

// Run executes Castro's I/O skeleton on sys.
func Run(sys *systems.System, cfg Config) (*core.Report, error) {
	if cfg.Dim == 0 {
		cfg.Dim = 128
	}
	if cfg.NComp == 0 {
		cfg.NComp = 6
	}
	if cfg.ParticlesPerCell == 0 {
		cfg.ParticlesPerCell = 2
	}
	if cfg.Checkpoints == 0 {
		cfg.Checkpoints = 5
	}
	if cfg.ComputeTime == 0 {
		cfg.ComputeTime = 25 * time.Second
	}
	cfg.Env.Materialize = cfg.Materialize
	ranks := cfg.Ranks
	if ranks == 0 {
		ranks = sys.Size()
	}
	if cfg.MaxGrid == 0 {
		cfg.MaxGrid = amrex.AutoMaxGrid(cfg.Dim, ranks)
	}

	raw, err := harness.CreateSharedFile(sys, cfg.Materialize)
	if err != nil {
		return nil, err
	}
	eng := taskengine.New(sys.Clk)
	ba := amrex.ChopDomain(amrex.DomainBox(cfg.Dim), cfg.MaxGrid)
	mf := amrex.NewMultiFab(ba, cfg.NComp, ranks)
	totalParticles := uint64(amrex.DomainBox(cfg.Dim).NumCells()) * uint64(cfg.ParticlesPerCell)
	envs := make([]*harness.Env, ranks)
	var mu sync.Mutex

	hooks := core.Hooks{
		Init: func(ctx *core.RankCtx) error {
			env := harness.NewEnv(ctx, eng, raw, cfg.Env)
			mu.Lock()
			envs[ctx.Rank] = env
			mu.Unlock()
			return nil
		},
		Compute: func(ctx *core.RankCtx, iter int) error {
			ctx.P.Sleep(cfg.ComputeTime)
			return nil
		},
		IO: func(ctx *core.RankCtx, iter int, mode trace.Mode) (int64, error) {
			env := envs[ctx.Rank]
			pr := env.Props(ctx.P, mode)
			file := env.File(mode)
			n, err := amrex.WritePlotfile(pr, file, iter, ctx.Rank, mf,
				cfg.Materialize, ctx.Comm.Barrier)
			if err != nil {
				return 0, err
			}
			pn, err := writeParticles(ctx, env, mode, iter, totalParticles, cfg.Materialize)
			if err != nil {
				return 0, err
			}
			return n + pn, nil
		},
		Drain: func(ctx *core.RankCtx) error { return envs[ctx.Rank].Drain(ctx.P) },
		Term:  func(ctx *core.RankCtx) error { return envs[ctx.Rank].Term(ctx.P) },
	}
	return core.Run(sys, core.Config{
		Workload:   "castro",
		Iterations: cfg.Checkpoints,
		Mode:       cfg.Mode,
		Ranks:      ranks,
		Estimator:  cfg.Estimator,
	}, hooks)
}

// writeParticles writes this rank's share of the checkpoint's particle
// dataset: total particles × 4 float64 fields, block-distributed.
func writeParticles(ctx *core.RankCtx, env *harness.Env, mode trace.Mode, step int, totalParticles uint64, materialize bool) (int64, error) {
	c := ctx.Comm
	pr := env.Props(ctx.P, mode)
	file := env.File(mode)
	name := fmt.Sprintf("particles%05d", step)
	totalElems := totalParticles * particleFields
	per := totalElems / uint64(c.Size())
	if per == 0 {
		per = 1
	}
	if c.Rank() == 0 {
		if _, err := file.Root().CreateDataset(pr, name, hdf5.F64,
			hdf5.MustSimple(totalElems), nil); err != nil {
			return 0, err
		}
	}
	c.Barrier()
	ds, err := file.Root().OpenDataset(pr, name)
	if err != nil {
		return 0, err
	}
	// The last rank absorbs the remainder.
	start := uint64(c.Rank()) * per
	count := per
	if c.Rank() == c.Size()-1 {
		count = totalElems - start
	}
	if start >= totalElems {
		return 0, nil
	}
	sel := hdf5.MustSimple(totalElems)
	if err := sel.SelectHyperslab([]uint64{start}, nil, []uint64{1}, []uint64{count}); err != nil {
		return 0, err
	}
	nbytes := int64(count) * 8
	if materialize {
		if err := ds.Write(pr, sel, make([]byte, nbytes)); err != nil {
			return 0, err
		}
	} else if err := ds.WriteDiscard(pr, sel); err != nil {
		return 0, err
	}
	return nbytes, nil
}
