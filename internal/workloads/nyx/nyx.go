// Package nyx reproduces the I/O behaviour of Nyx (§IV-C): a massively
// parallel AMR cosmology code built on AMReX. Each I/O phase writes one
// HDF5 plotfile; the computation phase is StepsPerPlot simulation time
// steps. The domain is fixed per configuration (256³ "small", 2048³
// "large"), so scaling the rank count is strong scaling: each rank's
// share of the plotfile shrinks, which is exactly the regime where the
// paper finds synchronous GPFS bandwidth degrading while asynchronous
// staging keeps scaling (Fig. 4a/4b) — until per-rank data becomes too
// small to use DRAM copy bandwidth efficiently (Cori, Fig. 4b).
package nyx

import (
	"sync"
	"time"

	"asyncio/internal/amrex"
	"asyncio/internal/core"
	"asyncio/internal/model"
	"asyncio/internal/systems"
	"asyncio/internal/taskengine"
	"asyncio/internal/trace"
	"asyncio/internal/workloads/harness"
)

// Config parameterizes a run.
type Config struct {
	// Dim is the cubic domain edge (256 small, 2048 large).
	Dim int
	// MaxGrid is the AMReX max_grid_size; 0 auto-sizes it so every rank
	// owns at least one box (amrex.AutoMaxGrid).
	MaxGrid int
	// NComp is the number of plotfile components (default 4).
	NComp int
	// Plotfiles is the number of I/O epochs (default 5).
	Plotfiles int
	// StepsPerPlot is the simulation steps between plotfiles (paper:
	// 20 small / 50 large). This is Fig. 7's swept parameter.
	StepsPerPlot int
	// TimePerStep is the computation cost of one simulation step
	// (default 1 s).
	TimePerStep time.Duration
	Mode        core.Mode
	Ranks       int
	Materialize bool
	// Env selects the staging path; Nyx's GPU configuration sets
	// Env.GPU.
	Env       harness.Options
	Estimator *model.Estimator
}

// Defaults for the paper's two configurations.
func SmallConfig() Config {
	return Config{Dim: 256, StepsPerPlot: 20, NComp: 4, Plotfiles: 5}
}

// LargeConfig is the Summit configuration.
func LargeConfig() Config {
	return Config{Dim: 2048, StepsPerPlot: 50, NComp: 4, Plotfiles: 5}
}

// Run executes Nyx's I/O skeleton on sys.
func Run(sys *systems.System, cfg Config) (*core.Report, error) {
	if cfg.Dim == 0 {
		cfg.Dim = 256
	}
	if cfg.NComp == 0 {
		cfg.NComp = 4
	}
	if cfg.Plotfiles == 0 {
		cfg.Plotfiles = 5
	}
	if cfg.StepsPerPlot == 0 {
		cfg.StepsPerPlot = 20
	}
	if cfg.TimePerStep == 0 {
		cfg.TimePerStep = time.Second
	}
	cfg.Env.Materialize = cfg.Materialize
	ranks := cfg.Ranks
	if ranks == 0 {
		ranks = sys.Size()
	}
	if cfg.MaxGrid == 0 {
		cfg.MaxGrid = amrex.AutoMaxGrid(cfg.Dim, ranks)
	}

	raw, err := harness.CreateSharedFile(sys, cfg.Materialize)
	if err != nil {
		return nil, err
	}
	eng := taskengine.New(sys.Clk)
	ba := amrex.ChopDomain(amrex.DomainBox(cfg.Dim), cfg.MaxGrid)
	mf := amrex.NewMultiFab(ba, cfg.NComp, ranks)
	envs := make([]*harness.Env, ranks)
	var mu sync.Mutex

	compute := time.Duration(cfg.StepsPerPlot) * cfg.TimePerStep
	hooks := core.Hooks{
		Init: func(ctx *core.RankCtx) error {
			env := harness.NewEnv(ctx, eng, raw, cfg.Env)
			mu.Lock()
			envs[ctx.Rank] = env
			mu.Unlock()
			return nil
		},
		Compute: func(ctx *core.RankCtx, iter int) error {
			ctx.P.Sleep(compute)
			return nil
		},
		IO: func(ctx *core.RankCtx, iter int, mode trace.Mode) (int64, error) {
			env := envs[ctx.Rank]
			pr := env.Props(ctx.P, mode)
			return amrex.WritePlotfile(pr, env.File(mode), iter, ctx.Rank, mf,
				cfg.Materialize, ctx.Comm.Barrier)
		},
		Drain: func(ctx *core.RankCtx) error { return envs[ctx.Rank].Drain(ctx.P) },
		Term:  func(ctx *core.RankCtx) error { return envs[ctx.Rank].Term(ctx.P) },
	}
	return core.Run(sys, core.Config{
		Workload:   "nyx",
		Iterations: cfg.Plotfiles,
		Mode:       cfg.Mode,
		Ranks:      ranks,
		Estimator:  cfg.Estimator,
	}, hooks)
}
