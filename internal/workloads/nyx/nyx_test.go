package nyx

import (
	"testing"
	"time"

	"asyncio/internal/core"
	"asyncio/internal/systems"
	"asyncio/internal/vclock"
)

func peakRate(t *testing.T, nodes int, mode core.Mode, cfg Config) float64 {
	t.Helper()
	clk := vclock.New()
	sys := systems.Summit(clk, nodes)
	cfg.Mode = mode
	rep, err := Run(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep.Run.PeakRate()
}

func TestStrongScalingSyncStallsAsyncGrows(t *testing.T) {
	// Fig. 4a regime (large configuration, Summit): past the backend
	// knee the synchronous rate stalls while asynchronous staging keeps
	// scaling with node count.
	cfg := LargeConfig()
	cfg.Plotfiles = 2
	cfg.TimePerStep = 2 * time.Second
	syncSmall := peakRate(t, 32, core.ForceSync, cfg)
	syncBig := peakRate(t, 256, core.ForceSync, cfg)
	asyncSmall := peakRate(t, 32, core.ForceAsync, cfg)
	asyncBig := peakRate(t, 256, core.ForceAsync, cfg)
	if asyncBig < 4*asyncSmall {
		t.Fatalf("async did not scale: %.3g -> %.3g", asyncSmall, asyncBig)
	}
	if asyncBig <= syncBig {
		t.Fatalf("async %.3g not above sync %.3g at 256 nodes", asyncBig, syncBig)
	}
	growth := syncBig / syncSmall
	asyncGrowth := asyncBig / asyncSmall
	if growth > 0.7*asyncGrowth {
		t.Fatalf("sync growth %.2f not clearly below async growth %.2f", growth, asyncGrowth)
	}
}

func TestSyncDecaysPastKnee(t *testing.T) {
	// Beyond the Summit saturation knee (128 nodes), shrinking per-rank
	// requests drag the synchronous aggregate bandwidth down slightly —
	// "the aggregate bandwidth of synchronous I/O decreases" (§V-A3).
	cfg := LargeConfig()
	cfg.Plotfiles = 2
	cfg.TimePerStep = 2 * time.Second
	atKnee := peakRate(t, 128, core.ForceSync, cfg)
	past := peakRate(t, 1024, core.ForceSync, cfg)
	if past >= atKnee {
		t.Fatalf("sync did not decay past the knee: %.4g -> %.4g", atKnee, past)
	}
}

func TestMaterializedRunCompletes(t *testing.T) {
	clk := vclock.New()
	sys := systems.Summit(clk, 1)
	rep, err := Run(sys, Config{
		Dim: 32, MaxGrid: 16, NComp: 2, Plotfiles: 2,
		StepsPerPlot: 2, TimePerStep: 100 * time.Millisecond,
		Mode: core.ForceAsync, Materialize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Run.Records) != 2 {
		t.Fatalf("records = %d", len(rep.Run.Records))
	}
	// 32³ cells × 2 comps × 8 B per plotfile.
	want := int64(32*32*32) * 2 * 8
	if rep.Run.Records[0].Bytes != want {
		t.Fatalf("bytes = %d, want %d", rep.Run.Records[0].Bytes, want)
	}
}

func TestGPUStagingCostsMoreThanCPU(t *testing.T) {
	cfg := Config{Dim: 256, MaxGrid: 32, NComp: 4, Plotfiles: 3, StepsPerPlot: 10, TimePerStep: time.Second}
	cpu := peakRate(t, 2, core.ForceAsync, cfg)
	cfgGPU := cfg
	cfgGPU.Env.GPU = true
	gpu := peakRate(t, 2, core.ForceAsync, cfgGPU)
	// GPU staging adds the link transfer before the host copy, so the
	// observed async rate must be lower.
	if gpu >= cpu {
		t.Fatalf("gpu staging rate %.3g not below cpu %.3g", gpu, cpu)
	}
}

func TestConfigDefaults(t *testing.T) {
	small, large := SmallConfig(), LargeConfig()
	if small.Dim != 256 || small.StepsPerPlot != 20 {
		t.Fatalf("small = %+v", small)
	}
	if large.Dim != 2048 || large.StepsPerPlot != 50 {
		t.Fatalf("large = %+v", large)
	}
}
