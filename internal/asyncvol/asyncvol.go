// Package asyncvol implements the asynchronous VOL connector — the
// system under evaluation in the paper (Tang et al.'s vol-async,
// reproduced on the simulation substrate).
//
// One Connector is created per simulated MPI process and owns one
// background execution stream (vol-async spawns one Argobots background
// thread per process). Every data operation is constructed as an
// ioreq.Request and flows through two pipelines:
//
//   - the inline pipeline runs on the caller: the transactional staging
//     copy (the overhead of the paper's Eq. 2b) is a stage, optionally
//     followed by a write-aggregation stage, terminating at the op
//     queue — each request becomes one background task;
//   - the background pipeline (validate → resolve → execute) runs on
//     the background stream and performs the real transfer, charging
//     the file's driver.
//
// Reads can be prefetched: a background task stages the selection, and a
// later matching Read costs only the staging-buffer copy. Completion is
// tracked with EventSets (the H5ES analog); File.Close flushes the
// inline pipeline and drains the stream's pending work first.
package asyncvol

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"asyncio/internal/critpath"
	"asyncio/internal/hdf5"
	"asyncio/internal/ioreq"
	"asyncio/internal/metrics"
	"asyncio/internal/taskengine"
	"asyncio/internal/vclock"
	"asyncio/internal/vol"
)

// CopyModel charges the transactional overhead: the time to copy nbytes
// between two memory buffers on the acting process's node (DRAM-to-DRAM
// for CPU applications, GPU↔CPU for GPU applications — §III-B1).
type CopyModel interface {
	Copy(p *vclock.Proc, nbytes int64)
}

// CopyFunc adapts a function to CopyModel.
type CopyFunc func(p *vclock.Proc, nbytes int64)

// Copy implements CopyModel.
func (f CopyFunc) Copy(p *vclock.Proc, nbytes int64) { f(p, nbytes) }

// FaultModel perturbs the connector's asynchronous machinery; it is the
// asyncvol half of a fault injector (internal/faults implements it).
type FaultModel interface {
	// BackgroundStall returns the extra delay a background task picked
	// up at virtual time now must sleep before running (an Argobots
	// thread descheduled under memory pressure); 0 means none.
	BackgroundStall(now time.Duration) time.Duration
	// StagingCapacity bounds outstanding staged write bytes per
	// connector; a staging request that would exceed it degrades to a
	// synchronous in-place dispatch. 0 means unbounded.
	StagingCapacity() int64
	// StagingExhausted records one such degradation.
	StagingExhausted()
}

// Options configures a Connector.
type Options struct {
	// Copy charges the transactional overhead per staged operation. Nil
	// disables the charge — the "zero-copy async" ablation, physically
	// unrealizable but useful to isolate the overhead's contribution.
	Copy CopyModel
	// Materialize controls whether staging buffers are actually
	// allocated and copied. Correctness tests set it; full-scale
	// experiments disable it so 12k ranks don't allocate hundreds of
	// gigabytes. When disabled the connector retains the caller's
	// buffer, so callers must not mutate it before completion.
	Materialize bool
	// MaxPending bounds outstanding background operations: a submission
	// beyond the bound blocks the caller until the queue drains below
	// it. This is the backpressure that bounds staging-buffer memory on
	// real systems (vol-async's task-queue limit). Zero means
	// unbounded.
	MaxPending int
	// Aggregate enables the write-aggregation stage between staging and
	// the op queue: adjacent staged writes to the same dataset coalesce
	// into one background dispatch (two-phase-style collective
	// buffering). The zero value leaves aggregation off. A buffered
	// write's completion is observable only after its chain flushes —
	// window trigger, Drain, Flush, or Close.
	Aggregate ioreq.AggConfig
	// Metrics, when non-nil, records the connector's activity under
	// "asyncvol.*" (op-queue depth, staged bytes, drain and backpressure
	// waits) and instruments both request pipelines. Instruments are
	// shared by every connector on the registry, so the series aggregate
	// across ranks.
	Metrics *metrics.Registry
	// Faults, when non-nil, injects background-stream stalls and
	// staging-buffer exhaustion (see FaultModel).
	Faults FaultModel
	// ExecStages are extra middleware stages (e.g. the fault-injection
	// retry stage) inserted into the background execution pipeline
	// between resolve and execute. Stages are shared across connectors
	// and must be stateless or concurrency-safe.
	ExecStages []ioreq.Stage
	// InlineStages are extra stages run on the caller BEFORE the staging
	// copy (e.g. the write-ahead journal stage from internal/recovery:
	// WAL semantics require the log append to precede everything else,
	// including the degraded synchronous dispatch path inside staging).
	// Stages are shared across connectors and must be concurrency-safe.
	InlineStages []ioreq.Stage
	// Clock places the connector's background stream on an explicit
	// clock — under the sharded engine, the owning rank's home shard —
	// instead of the engine's. Nil keeps the engine clock (the serial
	// default).
	Clock *vclock.Clock
	// Crit, when non-nil, records the connector's blocking intervals —
	// backpressure, drain waits, staging copies, prefetch waits, and
	// injected background stalls — as causal critical-path edges.
	Crit *critpath.Recorder
	// OnDrained, when non-nil, runs on the caller after every successful
	// Drain — the connector's sync point, where MPI-IO-style consistency
	// models publish the rank's completed writes.
	OnDrained func(p *vclock.Proc)
	// OnClose, when non-nil, runs on the caller after a successful file
	// Close (post-drain) — the session-consistency publish point.
	OnClose func(p *vclock.Proc)
}

// Connector is the asynchronous connector for one simulated process.
type Connector struct {
	name   string
	eng    *taskengine.Engine
	stream *taskengine.Stream
	opts   Options

	// inline runs on the caller: staging (+optional aggregation) →
	// enqueue. exec runs the real transfer; background tasks and
	// synchronous read fallbacks both use it.
	inline *ioreq.Pipeline
	exec   *ioreq.Pipeline
	agg    *ioreq.AggStage

	mu       sync.Mutex
	last     *taskengine.Task
	inflight []*taskengine.Task // submission order; pruned as tasks finish
	cache    map[cacheKey]*cacheEntry
	fetching map[cacheKey]bool // prefetch reservations (see Prefetch)

	// Staged-byte accounting: bytes held by write-staging buffers from
	// submission until the background dispatch finishes (successfully or
	// not). Releases become visible to capacity checks only at a
	// strictly later virtual instant, so a check racing a same-instant
	// completion is deterministic (it sees the bytes as still held).
	// Prefetch staging buffers are not counted — they live until
	// consumed by a Read, which is the caller's business, not queue
	// pressure.
	staged      map[*ioreq.Request]int64
	released    []releaseRec
	outstanding int64 // sum over staged + not-yet-folded releases

	// Instruments (nil when Options.Metrics is nil; methods no-op).
	mQueueDepth        *metrics.Gauge
	mEnqueued          *metrics.Counter
	mStagedBytes       *metrics.Counter
	mStagedOutstanding *metrics.Gauge
	mDrains            *metrics.Counter
	mDrainWait         *metrics.Histogram
	mStalls            *metrics.Counter
	mStallWait         *metrics.Histogram
}

type releaseRec struct {
	at time.Duration
	n  int64
}

type cacheKey struct {
	uid any // hdf5.Dataset.UID of the underlying object
	sel string
}

type cacheEntry struct {
	task *taskengine.Task
	buf  []byte // nil when not materializing
}

// New creates a connector with its own background stream on eng.
func New(eng *taskengine.Engine, name string, opts Options) *Connector {
	c := &Connector{
		name:     name,
		eng:      eng,
		opts:     opts,
		cache:    make(map[cacheKey]*cacheEntry),
		fetching: make(map[cacheKey]bool),
		staged:   make(map[*ioreq.Request]int64),
	}
	if m := opts.Metrics; m != nil {
		c.mQueueDepth = m.Gauge("asyncvol.queue_depth")
		c.mEnqueued = m.Counter("asyncvol.ops_enqueued")
		c.mStagedBytes = m.Counter("asyncvol.staged_bytes")
		c.mStagedOutstanding = m.Gauge("asyncvol.staged_outstanding_bytes")
		c.mDrains = m.Counter("asyncvol.drains")
		c.mDrainWait = m.Histogram("asyncvol.drain_wait_seconds")
		c.mStalls = m.Counter("asyncvol.backpressure_stalls")
		c.mStallWait = m.Histogram("asyncvol.backpressure_wait_seconds")
	}
	c.stream = eng.NewStreamOn(opts.Clock, "asyncvol:"+name)
	stages := append(append([]ioreq.Stage(nil), opts.InlineStages...), stagingStage{c: c})
	if opts.Aggregate.Enabled() {
		c.agg = ioreq.NewAgg(opts.Aggregate)
		stages = append(stages, c.agg)
	}
	c.inline = ioreq.NewCustom(c.enqueue, stages...).WithMetrics(opts.Metrics)
	c.exec = ioreq.New(opts.ExecStages...).WithMetrics(opts.Metrics)
	return c
}

// Name implements vol.Connector.
func (c *Connector) Name() string { return "async:" + c.name }

// AggStats returns the aggregation stage's counters (zero stats when
// aggregation is off).
func (c *Connector) AggStats() ioreq.AggStats {
	if c.agg == nil {
		return ioreq.AggStats{}
	}
	return c.agg.Stats()
}

// Shutdown stops the background stream after draining queued work. The
// connector is unusable afterwards. Writes still buffered in an
// aggregation chain are NOT dispatched — call Drain (or close the file)
// first, as harness.Env.Term does.
func (c *Connector) Shutdown() { c.stream.Shutdown() }

// Kill crashes the connector: the background stream's process dies at
// the current virtual instant, queued and in-flight operations complete
// with reason, and later submissions fail. Buffered aggregation chains
// are abandoned un-dispatched — precisely the data-loss window that
// crash-consistency experiments measure.
func (c *Connector) Kill(reason error) { c.stream.Kill(reason) }

// Drain flushes the inline pipeline (dispatching any aggregation
// chains), then blocks p until every operation pushed so far has
// completed.
func (c *Connector) Drain(p *vclock.Proc) error {
	start := procNow(p)
	if err := c.inline.Flush(p); err != nil {
		return err
	}
	c.mu.Lock()
	last := c.last
	c.mu.Unlock()
	if last == nil {
		if f := c.opts.OnDrained; f != nil {
			f(p)
		}
		return nil
	}
	waitStart := procNow(p)
	err := last.Wait(p)
	c.mDrains.Add(1)
	c.mDrainWait.Observe((procNow(p) - start).Seconds())
	c.opts.Crit.Record(critpath.Edge{
		Track: procName(p), Cause: critpath.QueueWait, Subsystem: "asyncvol",
		Detail: "drain", Start: waitStart, End: procNow(p),
	})
	if err == nil {
		if f := c.opts.OnDrained; f != nil {
			f(p)
		}
	}
	return err
}

// stagingStage is the transactional double-buffer copy as a pipeline
// stage: it snapshots the caller's buffer (when materializing) and
// charges the copy model on the calling process, then passes the
// request on. This is the only stage that runs before the request
// leaves the caller, so its charge is the entire blocking cost of an
// asynchronous write.
type stagingStage struct {
	c *Connector
}

func (stagingStage) Name() string { return "stage-copy" }

func (s stagingStage) Process(req *ioreq.Request, next func(*ioreq.Request) error) error {
	c := s.c
	n := req.Bytes()
	if fm := c.opts.Faults; fm != nil && n > 0 {
		if budget := fm.StagingCapacity(); budget > 0 && c.stagedOutstandingAt(procNow(req.Proc))+n > budget {
			// Staging buffers are exhausted: degrade this op to a
			// synchronous in-place dispatch on the caller — no staging
			// copy, no background task, completion before return (so
			// event sets have nothing to track).
			fm.StagingExhausted()
			req.Span.EventOn("asyncvol:staging-exhausted", n, procNow(req.Proc), procName(req.Proc))
			return c.exec.Do(req)
		}
	}
	if req.Buf != nil && c.opts.Materialize {
		req.Buf = append([]byte(nil), req.Buf...)
	}
	if c.opts.Copy != nil {
		copyStart := procNow(req.Proc)
		c.opts.Copy.Copy(req.Proc, n)
		c.opts.Crit.Record(critpath.Edge{
			Track: procName(req.Proc), Cause: critpath.StageCopy, Subsystem: "asyncvol",
			Detail: "stage-copy", Start: copyStart, End: procNow(req.Proc), Bytes: n,
		})
	}
	c.mStagedBytes.Add(n)
	c.recordStaged(req, n)
	req.Span.EventOn("asyncvol:stage", n, procNow(req.Proc), procName(req.Proc))
	return next(req)
}

func (stagingStage) Flush(*vclock.Proc, func(*ioreq.Request) error) error { return nil }

// recordStaged notes n staged bytes held by req.
func (c *Connector) recordStaged(req *ioreq.Request, n int64) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	c.staged[req] = n
	c.outstanding += n
	c.mu.Unlock()
	c.mStagedOutstanding.Add(float64(n))
}

// releaseStaged frees the staging bytes of req and its aggregation
// sources at virtual time at, whether the dispatch succeeded or failed
// — a dropped op must not leak its buffer accounting. Idempotent per
// request. Capacity checks observe the release only strictly after at
// (see stagedOutstandingAt).
func (c *Connector) releaseStaged(at time.Duration, req *ioreq.Request) {
	var freed int64
	c.mu.Lock()
	rel := func(r *ioreq.Request) {
		if n, ok := c.staged[r]; ok {
			delete(c.staged, r)
			freed += n
			c.released = append(c.released, releaseRec{at: at, n: n})
		}
	}
	rel(req)
	for _, src := range req.Sources {
		rel(src)
	}
	c.mu.Unlock()
	if freed != 0 {
		c.mStagedOutstanding.Add(-float64(freed))
	}
}

// stagedOutstandingAt folds releases that happened strictly before now
// and returns the staged bytes a capacity check at now observes. The
// strict inequality makes the check independent of whether a
// same-instant background completion has already run: either way the
// bytes still count, so goroutine interleaving cannot change the
// decision.
func (c *Connector) stagedOutstandingAt(now time.Duration) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	kept := c.released[:0]
	for _, r := range c.released {
		if r.at < now {
			c.outstanding -= r.n
		} else {
			kept = append(kept, r)
		}
	}
	c.released = kept
	return c.outstanding
}

// enqueue is the inline pipeline's terminal: one request becomes one
// background task running the exec pipeline. The task is added to the
// event set the request carries in Tag — and, for a merged request, to
// every absorbed source's event set, so each contributor's ES.Wait
// observes the coalesced dispatch.
func (c *Connector) enqueue(req *ioreq.Request) error {
	sets, err := eventSets(req)
	if err != nil {
		// The op dies here; its staging bytes must not stay accounted.
		c.releaseStaged(procNow(req.Proc), req)
		return err
	}
	t := c.push(req.Proc, taskName(req.Op), func(p *vclock.Proc) error {
		// Charge the transfer to the background stream's process: the
		// overlap with application compute the paper measures. The
		// stream runs a copy — the submitting rank can be runnable at
		// the same virtual instant and must never observe this task's
		// mutations — while the staging release keeps the original
		// pointer, which keys the staged-bytes accounting.
		r := *req
		r.Proc = p
		err := c.exec.Do(&r)
		c.releaseStaged(p.Now(), req)
		return err
	})
	for _, es := range sets {
		es.add(t)
	}
	return nil
}

// taskName labels background tasks after the HDF5 call they execute.
func taskName(op ioreq.Op) string {
	switch op {
	case ioreq.OpWrite:
		return "H5Dwrite:async"
	case ioreq.OpWriteNull:
		return "H5Dwrite:async-discard"
	case ioreq.OpRead:
		return "H5Dread:async"
	default:
		return "H5Dread:async-discard"
	}
}

// eventSets collects the event sets of a request and its aggregation
// sources, deduplicated. A tag of the wrong concrete type is a caller
// error reported as such — a connector mix-up is recoverable (use the
// right connector's set), so it is not a panic.
func eventSets(req *ioreq.Request) ([]*EventSet, error) {
	var out []*EventSet
	seen := make(map[*EventSet]bool, 1)
	add := func(tag any) error {
		if tag == nil {
			return nil
		}
		es, err := eventSetOf(tag)
		if err != nil {
			return err
		}
		if es != nil && !seen[es] {
			seen[es] = true
			out = append(out, es)
		}
		return nil
	}
	if err := add(req.Tag); err != nil {
		return nil, err
	}
	for _, src := range req.Sources {
		if err := add(src.Tag); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// eventSetOf checks that a caller-supplied event set belongs to this
// connector type. nil (no tracking) is allowed.
func eventSetOf(set any) (*EventSet, error) {
	if set == nil {
		return nil, nil
	}
	es, ok := set.(*EventSet)
	if !ok {
		return nil, fmt.Errorf("asyncvol: event set %T is not *asyncvol.EventSet", set)
	}
	return es, nil
}

// setTag converts a vol.EventSet to a request tag, keeping nil
// interfaces as untagged.
func setTag(set vol.EventSet) any {
	if set == nil {
		return nil
	}
	return set
}

// procNow returns p's virtual time, tolerating nil.
func procNow(p *vclock.Proc) time.Duration {
	if p == nil {
		return 0
	}
	return p.Now()
}

// procName returns p's process name, tolerating nil.
func procName(p *vclock.Proc) string {
	if p == nil {
		return ""
	}
	return p.Name()
}

// push enqueues a background task and records it as the newest. When
// MaxPending is set and p is non-nil, the caller blocks until the queue
// has room (backpressure).
func (c *Connector) push(p *vclock.Proc, name string, fn func(p *vclock.Proc) error) *taskengine.Task {
	if c.opts.MaxPending > 0 && p != nil {
		c.waitForRoom(p)
	}
	// Queue depth counts submit → complete, so the series shows how much
	// work is riding the background stream at any virtual instant; the
	// decrement runs on the stream at completion time.
	c.mEnqueued.Add(1)
	c.mQueueDepth.Add(1)
	inner := fn
	run := func(p *vclock.Proc) error {
		if fm := c.opts.Faults; fm != nil {
			if d := fm.BackgroundStall(p.Now()); d > 0 {
				stallStart := p.Now()
				p.Sleep(d)
				c.opts.Crit.Record(critpath.Edge{
					Track: p.Name(), Cause: critpath.FaultStall, Subsystem: "asyncvol",
					Detail: "bg-stall", Start: stallStart, End: p.Now(),
				})
			}
		}
		err := inner(p)
		c.mQueueDepth.Add(-1)
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.stream.Push(name, nil, run)
	c.last = t
	// Only buffer-holding submissions (those with a caller to block)
	// count toward the bound; deferred metadata tasks hold nothing.
	if c.opts.MaxPending > 0 && p != nil {
		c.inflight = append(c.inflight, t)
	}
	return t
}

// waitForRoom blocks p until fewer than MaxPending tasks are
// outstanding. The stream is FIFO, so waiting on the oldest unfinished
// task suffices.
func (c *Connector) waitForRoom(p *vclock.Proc) {
	start := procNow(p)
	stalled := false
	for {
		c.mu.Lock()
		// Prune finished tasks from the front.
		for len(c.inflight) > 0 && c.inflight[0].Done() {
			c.inflight = c.inflight[1:]
		}
		if len(c.inflight) < c.opts.MaxPending {
			c.mu.Unlock()
			if stalled {
				c.mStallWait.Observe((procNow(p) - start).Seconds())
				c.opts.Crit.Record(critpath.Edge{
					Track: procName(p), Cause: critpath.QueueWait, Subsystem: "asyncvol",
					Detail: "backpressure", Start: start, End: procNow(p),
				})
			}
			return
		}
		oldest := c.inflight[0]
		c.mu.Unlock()
		if !stalled {
			stalled = true
			c.mStalls.Add(1)
		}
		// Errors are observed by the task's owner (EventSet/Drain), not
		// the backpressure path.
		_ = oldest.Wait(p)
	}
}

// StagedOutstanding returns the staged write bytes currently held by
// in-flight operations (completed releases folded immediately; the
// strict-visibility rule only applies to capacity checks).
func (c *Connector) StagedOutstanding() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.outstanding
	for _, r := range c.released {
		n -= r.n
	}
	return n
}

// Pending returns the number of outstanding background operations
// (only tracked when MaxPending is set).
func (c *Connector) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, t := range c.inflight {
		if !t.Done() {
			n++
		}
	}
	return n
}

// Create implements vol.Connector.
func (c *Connector) Create(pr vol.Props, store hdf5.Store, opts ...hdf5.FileOption) (vol.File, error) {
	f, err := hdf5.Create(store, opts...)
	if err != nil {
		return nil, err
	}
	return &asyncFile{c: c, f: f, native: vol.Native{}.Wrap(f)}, nil
}

// Open implements vol.Connector.
func (c *Connector) Open(pr vol.Props, store hdf5.Store, opts ...hdf5.FileOption) (vol.File, error) {
	f, err := hdf5.Open(store, opts...)
	if err != nil {
		return nil, err
	}
	return &asyncFile{c: c, f: f, native: vol.Native{}.Wrap(f)}, nil
}

// Wrap implements vol.Connector.
func (c *Connector) Wrap(f *hdf5.File) vol.File {
	return &asyncFile{c: c, f: f, native: vol.Native{}.Wrap(f)}
}

type asyncFile struct {
	c      *Connector
	f      *hdf5.File
	native vol.File
}

func (af *asyncFile) Root() vol.Group {
	return &asyncGroup{c: af.c, raw: af.f, g: af.native.Root()}
}

// Flush drains pending asynchronous work (flushing aggregation chains
// first), then flushes metadata.
func (af *asyncFile) Flush(pr vol.Props) error {
	if err := af.c.Drain(pr.Proc); err != nil {
		return err
	}
	return af.native.Flush(pr)
}

// Close drains pending asynchronous work for this process, then closes
// the underlying file (idempotent, so each sharing rank may call it).
func (af *asyncFile) Close(pr vol.Props) error {
	if err := af.c.Drain(pr.Proc); err != nil {
		return err
	}
	if err := af.native.Close(pr); err != nil {
		return err
	}
	if f := af.c.opts.OnClose; f != nil {
		f(pr.Proc)
	}
	return nil
}

func (af *asyncFile) Unwrap() *hdf5.File { return af.f }

// asyncGroup executes metadata operations immediately (callers need the
// resulting handles) but asynchronously with respect to their cost:
// vol-async enqueues metadata on the background thread, so the calling
// process does not block on metadata round trips. The structural change
// happens uncharged on the caller; the latency is charged to the
// background stream.
type asyncGroup struct {
	c   *Connector
	raw *hdf5.File
	g   vol.Group
}

// deferMeta performs the op's structural work uncharged and pushes its
// n-round-trip cost onto the background stream.
func (ag *asyncGroup) deferMeta(pr vol.Props, n int) error {
	es, err := eventSetOf(setTag(pr.Set))
	if err != nil {
		return err
	}
	raw := ag.raw
	// Metadata tasks are tiny and exempt from backpressure (no staging
	// buffer is held).
	t := ag.c.push(nil, "H5meta:async", func(p *vclock.Proc) error {
		raw.ChargeMetaOps(&hdf5.TransferProps{Proc: p}, n)
		return nil
	})
	if es != nil {
		es.add(t)
	}
	return nil
}

// uncharged strips the acting process so the native call costs nothing.
func uncharged() vol.Props { return vol.Props{} }

// pathOps counts metadata round trips for a path walk, without
// allocating the component slice (it runs on every queued operation).
func pathOps(path string) int {
	n := 0
	for rest := path; rest != ""; {
		var part string
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			part, rest = rest[:i], rest[i+1:]
		} else {
			part, rest = rest, ""
		}
		if part != "" {
			n++
		}
	}
	if n == 0 {
		n = 1
	}
	return n
}

func (ag *asyncGroup) CreateGroup(pr vol.Props, name string) (vol.Group, error) {
	g, err := ag.g.CreateGroup(uncharged(), name)
	if err != nil {
		return nil, err
	}
	if err := ag.deferMeta(pr, 1); err != nil {
		return nil, err
	}
	return &asyncGroup{c: ag.c, raw: ag.raw, g: g}, nil
}

func (ag *asyncGroup) OpenGroup(pr vol.Props, path string) (vol.Group, error) {
	g, err := ag.g.OpenGroup(uncharged(), path)
	if err != nil {
		return nil, err
	}
	if err := ag.deferMeta(pr, pathOps(path)); err != nil {
		return nil, err
	}
	return &asyncGroup{c: ag.c, raw: ag.raw, g: g}, nil
}

func (ag *asyncGroup) CreateDataset(pr vol.Props, name string, dtype hdf5.Datatype, space *hdf5.Dataspace, props *hdf5.CreateProps) (vol.Dataset, error) {
	d, err := ag.g.CreateDataset(uncharged(), name, dtype, space, props)
	if err != nil {
		return nil, err
	}
	if err := ag.deferMeta(pr, 1); err != nil {
		return nil, err
	}
	return &asyncDataset{c: ag.c, d: d, raw: d.Unwrap()}, nil
}

func (ag *asyncGroup) OpenDataset(pr vol.Props, path string) (vol.Dataset, error) {
	d, err := ag.g.OpenDataset(uncharged(), path)
	if err != nil {
		return nil, err
	}
	if err := ag.deferMeta(pr, pathOps(path)); err != nil {
		return nil, err
	}
	return &asyncDataset{c: ag.c, d: d, raw: d.Unwrap()}, nil
}

func (ag *asyncGroup) SetAttrInt64(pr vol.Props, name string, v int64) error {
	if err := ag.g.SetAttrInt64(uncharged(), name, v); err != nil {
		return err
	}
	return ag.deferMeta(pr, 1)
}

func (ag *asyncGroup) AttrInt64(pr vol.Props, name string) (int64, error) {
	// Attribute reads return data to the caller, so they stay charged
	// (the caller genuinely waits for the value).
	return ag.g.AttrInt64(pr, name)
}

func (ag *asyncGroup) SetAttrString(pr vol.Props, name, v string) error {
	if err := ag.g.SetAttrString(uncharged(), name, v); err != nil {
		return err
	}
	return ag.deferMeta(pr, 1)
}

func (ag *asyncGroup) AttrString(pr vol.Props, name string) (string, error) {
	return ag.g.AttrString(pr, name)
}

func (ag *asyncGroup) List() []string { return ag.g.List() }

type asyncDataset struct {
	c   *Connector
	d   vol.Dataset   // native handle (metadata)
	raw *hdf5.Dataset // request target
}

// request builds the ioreq descriptor for one operation on this
// dataset. The selection is copied for staged (inline) requests, which
// outlive the call; synchronous fallbacks pass the caller's selection
// straight through.
func (ad *asyncDataset) request(op ioreq.Op, pr vol.Props, fspace *hdf5.Dataspace, buf []byte) *ioreq.Request {
	return &ioreq.Request{
		Op:      op,
		Dataset: ad.raw,
		Space:   fspace,
		Buf:     buf,
		Proc:    pr.Proc,
		Span:    pr.Span,
		Tag:     setTag(pr.Set),
	}
}

// Write stages the buffer (charging the transactional overhead on the
// calling process), enqueues the real write on the background stream,
// and returns. Completion is observable through pr.Set, Drain, Flush,
// or Close.
func (ad *asyncDataset) Write(pr vol.Props, fspace *hdf5.Dataspace, buf []byte) error {
	var sel *hdf5.Dataspace
	if fspace != nil {
		sel = fspace.Copy()
	}
	return ad.c.inline.Do(ad.request(ioreq.OpWrite, pr, sel, buf))
}

// WriteDiscard stages a write without byte movement: the caller pays
// the transactional copy, the background stream pays the file-system
// write. See vol.Dataset.
func (ad *asyncDataset) WriteDiscard(pr vol.Props, fspace *hdf5.Dataspace) error {
	var sel *hdf5.Dataspace
	if fspace != nil {
		sel = fspace.Copy()
	}
	return ad.c.inline.Do(ad.request(ioreq.OpWriteNull, pr, sel, nil))
}

// ReadDiscard serves a timing-only read: a matching prefetch costs only
// the staging copy, otherwise a blocking charged read runs.
func (ad *asyncDataset) ReadDiscard(pr vol.Props, fspace *hdf5.Dataspace) error {
	c := ad.c
	nbytes := ad.NBytes()
	if fspace != nil {
		nbytes = int64(fspace.SelectionCount()) * int64(ad.Dtype().Size)
	}
	key := ad.key(fspace)
	c.mu.Lock()
	entry, ok := c.cache[key]
	if ok {
		delete(c.cache, key)
	}
	c.mu.Unlock()
	if !ok {
		return c.exec.Do(ad.request(ioreq.OpReadNull, pr, fspace, nil))
	}
	waitStart := procNow(pr.Proc)
	if err := entry.task.Wait(pr.Proc); err != nil {
		return err
	}
	c.opts.Crit.Record(critpath.Edge{
		Track: procName(pr.Proc), Cause: critpath.QueueWait, Subsystem: "asyncvol",
		Detail: "prefetch", Start: waitStart, End: procNow(pr.Proc),
	})
	if c.opts.Copy != nil {
		c.opts.Copy.Copy(pr.Proc, nbytes)
	}
	return nil
}

// Read serves the selection from a matching prefetch staging buffer if
// one exists (waiting for the background read if it is still in flight,
// then charging only the staging copy); otherwise it falls back to a
// blocking synchronous read, exactly like the first time step in the
// paper's BD-CATS-IO runs.
func (ad *asyncDataset) Read(pr vol.Props, fspace *hdf5.Dataspace, buf []byte) error {
	c := ad.c
	key := ad.key(fspace)
	c.mu.Lock()
	entry, ok := c.cache[key]
	if ok {
		delete(c.cache, key)
	}
	c.mu.Unlock()
	if !ok {
		return c.exec.Do(ad.request(ioreq.OpRead, pr, fspace, buf))
	}
	waitStart := procNow(pr.Proc)
	if err := entry.task.Wait(pr.Proc); err != nil {
		return err
	}
	c.opts.Crit.Record(critpath.Edge{
		Track: procName(pr.Proc), Cause: critpath.QueueWait, Subsystem: "asyncvol",
		Detail: "prefetch", Start: waitStart, End: procNow(pr.Proc),
	})
	if c.opts.Copy != nil {
		c.opts.Copy.Copy(pr.Proc, int64(len(buf)))
	}
	if entry.buf != nil {
		if len(entry.buf) != len(buf) {
			return fmt.Errorf("asyncvol: prefetch buffer %d bytes vs read buffer %d", len(entry.buf), len(buf))
		}
		copy(buf, entry.buf)
	}
	return nil
}

// Prefetch stages the selection in the background. A later Read with an
// equal selection is served from the staging buffer.
func (ad *asyncDataset) Prefetch(pr vol.Props, fspace *hdf5.Dataspace) error {
	c := ad.c
	es, err := eventSetOf(setTag(pr.Set))
	if err != nil {
		return err
	}
	key := ad.key(fspace)
	var sel *hdf5.Dataspace
	nbytes := ad.NBytes()
	if fspace != nil {
		sel = fspace.Copy()
		nbytes = int64(fspace.SelectionCount()) * int64(ad.Dtype().Size)
	}
	var staging []byte
	if c.opts.Materialize {
		staging = make([]byte, nbytes)
	}
	c.mu.Lock()
	if _, dup := c.cache[key]; dup || c.fetching[key] {
		c.mu.Unlock()
		return nil // already staged or in flight
	}
	// Reserve the key before dropping the lock: without this, two
	// concurrent prefetches of the same selection both pass the dup
	// check and the loser's staging buffer is stranded (it is neither
	// cached nor ever released).
	c.fetching[key] = true
	c.mu.Unlock()
	task := c.push(pr.Proc, "H5Dread:prefetch", func(p *vclock.Proc) error {
		req := &ioreq.Request{Dataset: ad.raw, Space: sel, Proc: p, Span: pr.Span}
		if staging == nil {
			// Timing-only mode: charge the read without materializing.
			req.Op = ioreq.OpReadNull
		} else {
			req.Op = ioreq.OpRead
			req.Buf = staging
		}
		return c.exec.Do(req)
	})
	if es != nil {
		es.add(task)
	}
	c.mu.Lock()
	delete(c.fetching, key)
	c.cache[key] = &cacheEntry{task: task, buf: staging}
	c.mu.Unlock()
	return nil
}

func (ad *asyncDataset) key(fspace *hdf5.Dataspace) cacheKey {
	sel := "all"
	if fspace != nil {
		sel = fspace.String()
	}
	return cacheKey{uid: ad.raw.UID(), sel: sel}
}

func (ad *asyncDataset) Dims() []uint64        { return ad.d.Dims() }
func (ad *asyncDataset) Dtype() hdf5.Datatype  { return ad.d.Dtype() }
func (ad *asyncDataset) NBytes() int64         { return ad.d.NBytes() }
func (ad *asyncDataset) Unwrap() *hdf5.Dataset { return ad.raw }

// EventSet tracks asynchronous operations, like H5ES.
type EventSet struct {
	mu    sync.Mutex
	tasks []*taskengine.Task
	crit  *critpath.Recorder
}

// NewEventSet returns an empty event set.
func NewEventSet() *EventSet { return &EventSet{} }

// SetCrit attaches the critical-path recorder; Wait records its
// blocking interval as a queue-wait edge. Call before the run.
func (es *EventSet) SetCrit(rec *critpath.Recorder) {
	if es == nil {
		return
	}
	es.mu.Lock()
	es.crit = rec
	es.mu.Unlock()
}

func (es *EventSet) add(t *taskengine.Task) {
	es.mu.Lock()
	es.tasks = append(es.tasks, t)
	es.mu.Unlock()
}

// Wait blocks p until every tracked operation completes, returning the
// first error. The set is emptied.
func (es *EventSet) Wait(p *vclock.Proc) error {
	es.mu.Lock()
	tasks := es.tasks
	es.tasks = nil
	rec := es.crit
	es.mu.Unlock()
	start := procNow(p)
	var first error
	for _, t := range tasks {
		if err := t.Wait(p); err != nil && first == nil {
			first = err
		}
	}
	if len(tasks) > 0 {
		rec.Record(critpath.Edge{
			Track: procName(p), Cause: critpath.QueueWait, Subsystem: "asyncvol",
			Detail: "eventset", Start: start, End: procNow(p),
		})
	}
	return first
}

// Pending returns the number of tracked incomplete operations.
func (es *EventSet) Pending() int {
	es.mu.Lock()
	defer es.mu.Unlock()
	n := 0
	for _, t := range es.tasks {
		if !t.Done() {
			n++
		}
	}
	return n
}

// Timing-only scratch reads in Prefetch allocate nbytes transiently;
// interface conformance checks.
var (
	_ vol.Connector = (*Connector)(nil)
	_ vol.EventSet  = (*EventSet)(nil)
	_ ioreq.Stage   = stagingStage{}
)
