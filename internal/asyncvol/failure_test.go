package asyncvol

import (
	"errors"
	"testing"

	"asyncio/internal/hdf5"
	"asyncio/internal/taskengine"
	"asyncio/internal/vclock"
	"asyncio/internal/vol"
)

// failingStore wraps a MemStore and starts failing writes after a given
// number of successful ones — fault injection for the background I/O
// path.
type failingStore struct {
	*hdf5.MemStore
	allow int
	err   error
}

func (fs *failingStore) WriteAt(p []byte, off int64) (int, error) {
	if fs.allow <= 0 {
		return 0, fs.err
	}
	fs.allow--
	return fs.MemStore.WriteAt(p, off)
}

func TestBackgroundWriteFailureSurfacesThroughEventSet(t *testing.T) {
	sentinel := errors.New("injected disk failure")
	clk := vclock.New()
	eng := taskengine.New(clk)
	c := New(eng, "r0", Options{Materialize: true})
	// Allow enough writes for file setup, then fail.
	store := &failingStore{MemStore: hdf5.NewMemStore(), allow: 2, err: sentinel}
	f, err := c.Create(vol.Props{}, store)
	if err != nil {
		t.Fatal(err)
	}
	clk.Go("app", func(p *vclock.Proc) {
		pr := vol.Props{Proc: p}
		ds, err := f.Root().CreateDataset(pr, "d", hdf5.U8, hdf5.MustSimple(64), nil)
		if err != nil {
			t.Error(err)
			return
		}
		es := NewEventSet()
		store.allow = 0 // fail everything from here
		if err := ds.Write(vol.Props{Proc: p, Set: es}, nil, make([]byte, 64)); err != nil {
			t.Errorf("async Write must not fail at submission: %v", err)
		}
		if err := es.Wait(p); !errors.Is(err, sentinel) {
			t.Errorf("ES.Wait = %v, want injected failure", err)
		}
		c.Shutdown()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestBackgroundFailureSurfacesThroughDrainAndClose(t *testing.T) {
	sentinel := errors.New("injected failure")
	clk := vclock.New()
	eng := taskengine.New(clk)
	c := New(eng, "r0", Options{Materialize: true})
	store := &failingStore{MemStore: hdf5.NewMemStore(), allow: 2, err: sentinel}
	f, err := c.Create(vol.Props{}, store)
	if err != nil {
		t.Fatal(err)
	}
	clk.Go("app", func(p *vclock.Proc) {
		pr := vol.Props{Proc: p}
		ds, err := f.Root().CreateDataset(pr, "d", hdf5.U8, hdf5.MustSimple(8), nil)
		if err != nil {
			t.Error(err)
			return
		}
		store.allow = 0
		if err := ds.Write(pr, nil, make([]byte, 8)); err != nil {
			t.Error(err)
		}
		if err := c.Drain(p); !errors.Is(err, sentinel) {
			t.Errorf("Drain = %v, want injected failure", err)
		}
		c.Shutdown()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchFailureSurfacesAtRead(t *testing.T) {
	sentinel := errors.New("read path down")
	clk := vclock.New()
	eng := taskengine.New(clk)
	c := New(eng, "r0", Options{Materialize: true})
	store := &readFailStore{MemStore: hdf5.NewMemStore(), err: sentinel}
	f, err := c.Create(vol.Props{}, store)
	if err != nil {
		t.Fatal(err)
	}
	clk.Go("app", func(p *vclock.Proc) {
		pr := vol.Props{Proc: p}
		ds, err := f.Root().CreateDataset(pr, "d", hdf5.U8, hdf5.MustSimple(8), nil)
		if err != nil {
			t.Error(err)
			return
		}
		if err := ds.Write(pr, nil, make([]byte, 8)); err != nil {
			t.Error(err)
		}
		if err := c.Drain(p); err != nil {
			t.Error(err)
		}
		store.failing = true
		if err := ds.Prefetch(pr, nil); err != nil {
			t.Errorf("Prefetch must not fail at submission: %v", err)
		}
		out := make([]byte, 8)
		if err := ds.Read(pr, nil, out); !errors.Is(err, sentinel) {
			t.Errorf("Read after failed prefetch = %v, want injected failure", err)
		}
		c.Shutdown()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}

type readFailStore struct {
	*hdf5.MemStore
	failing bool
	err     error
}

func (rs *readFailStore) ReadAt(p []byte, off int64) (int, error) {
	if rs.failing {
		return 0, rs.err
	}
	return rs.MemStore.ReadAt(p, off)
}
