package asyncvol

import (
	"testing"
	"time"

	"asyncio/internal/hdf5"
	"asyncio/internal/ioreq"
	"asyncio/internal/pfs"
	"asyncio/internal/taskengine"
	"asyncio/internal/trace"
	"asyncio/internal/vclock"
	"asyncio/internal/vol"
)

// TestSpanFollowsRequestToBackgroundStream verifies end-to-end tracing:
// one span handed to an asynchronous Write records both the staging copy
// (on the caller, at submission time) and the file-system transfer (on
// the background stream, later) — the request carries the span across
// the queue.
func TestSpanFollowsRequestToBackgroundStream(t *testing.T) {
	clk := vclock.New()
	eng := taskengine.New(clk)
	c := New(eng, "rank0", Options{Copy: fixedCopy{bw: 4 * MiB}, Materialize: true})
	// A pfs.Target implements hdf5.SpanDriver, so the background
	// transfer lands on the span too. 1 MiB/s, no extras.
	target := pfs.NewTarget(clk, pfs.TargetConfig{Name: "test", BackendPeak: 1 * MiB})
	f, err := c.Create(vol.Props{}, hdf5.NewMemStore(), hdf5.WithDriver(target))
	if err != nil {
		t.Fatal(err)
	}

	clk.Go("app", func(p *vclock.Proc) {
		ds, err := f.Root().CreateDataset(vol.Props{Proc: p}, "x", hdf5.U8, hdf5.MustSimple(4*MiB), nil)
		if err != nil {
			t.Error(err)
			return
		}
		span := trace.NewSpan("epoch0:io")
		es := NewEventSet()
		pr := vol.Props{Proc: p, Set: es, Span: span}
		if err := ds.Write(pr, nil, make([]byte, 4*MiB)); err != nil {
			t.Error(err)
			return
		}
		// The staging copy happened on the caller before Write returned.
		stage, ok := span.Find("asyncvol:stage")
		if !ok {
			t.Errorf("span missing staging event right after Write:\n%s", span)
		}
		if _, ok := span.Find("pfs:test:write"); ok {
			t.Error("pfs write event present before completion")
		}
		if err := es.Wait(p); err != nil {
			t.Error(err)
			return
		}
		// The background transfer completed and recorded itself.
		wr, ok := span.Find("pfs:test:write")
		if !ok {
			t.Fatalf("span missing pfs write event after Wait:\n%s", span)
		}
		if wr.Bytes != 4*MiB {
			t.Errorf("pfs event bytes = %d, want %d", wr.Bytes, 4*MiB)
		}
		// Copy at 4 MiB/s = 1s; transfer at 1 MiB/s = 4s, starting after
		// the copy.
		if wr.Dur != 4*time.Second {
			t.Errorf("pfs event duration = %v, want 4s", wr.Dur)
		}
		if wr.At < stage.At {
			t.Errorf("transfer at %v before staging at %v", wr.At, stage.At)
		}
		if err := f.Close(vol.Props{Proc: p}); err != nil {
			t.Error(err)
		}
		c.Shutdown()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestAggregatedAsyncWritesShareOneDispatch verifies the connector's
// aggregation stage: two adjacent staged writes become one background
// task and one storage dispatch, and both writers' event sets observe
// the merged completion.
func TestAggregatedAsyncWritesShareOneDispatch(t *testing.T) {
	clk := vclock.New()
	eng := taskengine.New(clk)
	c := New(eng, "rank0", Options{
		Copy:        fixedCopy{bw: 4 * MiB},
		Materialize: true,
		Aggregate:   ioreq.AggConfig{MaxRequests: 2},
	})
	target := pfs.NewTarget(clk, pfs.TargetConfig{Name: "test", BackendPeak: 1 * MiB})
	f, err := c.Create(vol.Props{}, hdf5.NewMemStore(), hdf5.WithDriver(target))
	if err != nil {
		t.Fatal(err)
	}

	clk.Go("app", func(p *vclock.Proc) {
		const n = 1 * MiB
		ds, err := f.Root().CreateDataset(vol.Props{Proc: p}, "x", hdf5.U8, hdf5.MustSimple(2*n), nil)
		if err != nil {
			t.Error(err)
			return
		}
		es := NewEventSet()
		for i := uint64(0); i < 2; i++ {
			sp := hdf5.MustSimple(2 * n)
			if err := sp.SelectHyperslab([]uint64{i * n}, nil, []uint64{1}, []uint64{n}); err != nil {
				t.Error(err)
				return
			}
			buf := make([]byte, n)
			for j := range buf {
				buf[j] = byte(i + 1)
			}
			if err := ds.Write(vol.Props{Proc: p, Set: es}, sp, buf); err != nil {
				t.Error(err)
				return
			}
		}
		if err := es.Wait(p); err != nil {
			t.Error(err)
			return
		}
		if got := target.Stats().WriteOps; got != 1 {
			t.Errorf("WriteOps = %d, want 1 (adjacent writes coalesce)", got)
		}
		if st := c.AggStats(); st.Dispatched != 1 || st.Absorbed != 1 {
			t.Errorf("agg stats = %+v, want Dispatched 1, Absorbed 1", st)
		}
		// Both halves must have landed.
		got := make([]byte, 2*n)
		if err := ds.Read(vol.Props{Proc: p}, nil, got); err != nil {
			t.Error(err)
			return
		}
		if got[0] != 1 || got[n-1] != 1 || got[n] != 2 || got[2*n-1] != 2 {
			t.Errorf("merged write landed wrong: edges %d %d %d %d",
				got[0], got[n-1], got[n], got[2*n-1])
		}
		if err := f.Close(vol.Props{Proc: p}); err != nil {
			t.Error(err)
		}
		c.Shutdown()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestWrongEventSetTypeIsAnError pins the panic-to-error conversion: a
// foreign event-set implementation is reported, not a crash.
func TestWrongEventSetTypeIsAnError(t *testing.T) {
	clk := vclock.New()
	eng := taskengine.New(clk)
	c := New(eng, "rank0", Options{Materialize: true})
	f, err := c.Create(vol.Props{}, hdf5.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	clk.Go("app", func(p *vclock.Proc) {
		defer c.Shutdown()
		ds, err := f.Root().CreateDataset(vol.Props{Proc: p}, "x", hdf5.U8, hdf5.MustSimple(8), nil)
		if err != nil {
			t.Error(err)
			return
		}
		if err := ds.Write(vol.Props{Proc: p, Set: vol.NullEventSet{}}, nil, make([]byte, 8)); err == nil {
			t.Error("Write with foreign event set: err = nil, want type error")
		}
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}
