package asyncvol

import (
	"bytes"
	"testing"
	"time"

	"asyncio/internal/hdf5"
	"asyncio/internal/taskengine"
	"asyncio/internal/vclock"
	"asyncio/internal/vol"
)

// sleepDriver charges a fixed bandwidth for data and a fixed latency for
// metadata — a minimal stand-in for the pfs models.
type sleepDriver struct {
	bw   float64 // bytes/s
	meta time.Duration
}

func (d sleepDriver) WriteData(p *vclock.Proc, n int64) {
	if p != nil {
		p.Sleep(time.Duration(float64(n) / d.bw * float64(time.Second)))
	}
}

func (d sleepDriver) ReadData(p *vclock.Proc, n int64) {
	if p != nil {
		p.Sleep(time.Duration(float64(n) / d.bw * float64(time.Second)))
	}
}

func (d sleepDriver) MetaOp(p *vclock.Proc) {
	if p != nil {
		p.Sleep(d.meta)
	}
}

// fixedCopy charges a fixed bandwidth for the transactional copy.
type fixedCopy struct {
	bw float64
}

func (c fixedCopy) Copy(p *vclock.Proc, n int64) {
	if p != nil {
		p.Sleep(time.Duration(float64(n) / c.bw * float64(time.Second)))
	}
}

const MiB = 1 << 20

// setup creates a clock, an engine, a connector, and a file backed by a
// MemStore with a 1 MiB/s driver.
func setup(t *testing.T, opts Options) (*vclock.Clock, *Connector, vol.File) {
	t.Helper()
	clk := vclock.New()
	eng := taskengine.New(clk)
	c := New(eng, "rank0", opts)
	f, err := c.Create(vol.Props{}, hdf5.NewMemStore(),
		hdf5.WithDriver(sleepDriver{bw: 1 * MiB}))
	if err != nil {
		t.Fatal(err)
	}
	return clk, c, f
}

func TestAsyncWriteReturnsAfterCopyOnly(t *testing.T) {
	// Driver write of 4 MiB takes 4s; the transactional copy at 4 MiB/s
	// takes 1s. The caller must be blocked only for the copy.
	opts := Options{Copy: fixedCopy{bw: 4 * MiB}, Materialize: true}
	clk, c, f := setup(t, opts)
	clk.Go("app", func(p *vclock.Proc) {
		ds, err := f.Root().CreateDataset(vol.Props{Proc: p}, "x", hdf5.U8, hdf5.MustSimple(4*MiB), nil)
		if err != nil {
			t.Error(err)
			return
		}
		start := p.Now()
		es := NewEventSet()
		if err := ds.Write(vol.Props{Proc: p, Set: es}, nil, make([]byte, 4*MiB)); err != nil {
			t.Error(err)
			return
		}
		blocked := p.Now() - start
		if blocked != 1*time.Second {
			t.Errorf("Write blocked caller %v, want 1s (copy only)", blocked)
		}
		if es.Pending() != 1 {
			t.Errorf("Pending = %d, want 1", es.Pending())
		}
		if err := es.Wait(p); err != nil {
			t.Error(err)
		}
		// Copy 1s + background write 4s.
		if p.Now() != 5*time.Second {
			t.Errorf("completion at %v, want 5s", p.Now())
		}
		if err := f.Close(vol.Props{Proc: p}); err != nil {
			t.Error(err)
		}
		c.Shutdown()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncWriteOverlapsCompute(t *testing.T) {
	// Eq. 2b, ideal scenario: compute (6s) ≥ background I/O (4s), so the
	// epoch costs copy (1s) + compute (6s) = 7s.
	opts := Options{Copy: fixedCopy{bw: 4 * MiB}, Materialize: true}
	clk, c, f := setup(t, opts)
	clk.Go("app", func(p *vclock.Proc) {
		ds, _ := f.Root().CreateDataset(vol.Props{Proc: p}, "x", hdf5.U8, hdf5.MustSimple(4*MiB), nil)
		es := NewEventSet()
		start := p.Now()
		if err := ds.Write(vol.Props{Proc: p, Set: es}, nil, make([]byte, 4*MiB)); err != nil {
			t.Error(err)
		}
		p.Sleep(6 * time.Second) // compute phase
		if err := es.Wait(p); err != nil {
			t.Error(err)
		}
		if got := p.Now() - start; got != 7*time.Second {
			t.Errorf("async epoch = %v, want 7s (1s copy + 6s compute, I/O hidden)", got)
		}
		c.Shutdown()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncWriteDataLandsCorrectly(t *testing.T) {
	opts := Options{Copy: fixedCopy{bw: 100 * MiB}, Materialize: true}
	clk, c, f := setup(t, opts)
	clk.Go("app", func(p *vclock.Proc) {
		pr := vol.Props{Proc: p}
		ds, _ := f.Root().CreateDataset(pr, "x", hdf5.U8, hdf5.MustSimple(1024), nil)
		buf := make([]byte, 1024)
		for i := range buf {
			buf[i] = byte(i % 251)
		}
		if err := ds.Write(pr, nil, buf); err != nil {
			t.Error(err)
		}
		// Mutate the caller's buffer immediately — the staged private
		// copy must protect the write (this is what the transactional
		// overhead buys).
		for i := range buf {
			buf[i] = 0xFF
		}
		if err := c.Drain(p); err != nil {
			t.Error(err)
		}
		out := make([]byte, 1024)
		if err := ds.Read(pr, nil, out); err != nil {
			t.Error(err)
		}
		for i := range out {
			if out[i] != byte(i%251) {
				t.Errorf("byte %d = %d, want %d (caller mutation leaked)", i, out[i], i%251)
				break
			}
		}
		c.Shutdown()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestWritesExecuteInOrder(t *testing.T) {
	opts := Options{Copy: fixedCopy{bw: 100 * MiB}, Materialize: true}
	clk, c, f := setup(t, opts)
	clk.Go("app", func(p *vclock.Proc) {
		pr := vol.Props{Proc: p}
		ds, _ := f.Root().CreateDataset(pr, "x", hdf5.U8, hdf5.MustSimple(8), nil)
		for v := byte(1); v <= 3; v++ {
			buf := bytes.Repeat([]byte{v}, 8)
			if err := ds.Write(pr, nil, buf); err != nil {
				t.Error(err)
			}
		}
		if err := c.Drain(p); err != nil {
			t.Error(err)
		}
		out := make([]byte, 8)
		if err := ds.Read(pr, nil, out); err != nil {
			t.Error(err)
		}
		for _, b := range out {
			if b != 3 {
				t.Errorf("last write not final: %v", out)
				break
			}
		}
		c.Shutdown()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchHitCostsOnlyCopy(t *testing.T) {
	// 2 MiB dataset: sync read = 2s; prefetched read = copy at 2 MiB/s =
	// 1s, overlapped with a 3s compute so the read returns immediately
	// after the copy.
	opts := Options{Copy: fixedCopy{bw: 2 * MiB}, Materialize: true}
	clk, c, f := setup(t, opts)
	clk.Go("app", func(p *vclock.Proc) {
		pr := vol.Props{Proc: p}
		ds, _ := f.Root().CreateDataset(pr, "x", hdf5.U8, hdf5.MustSimple(2*MiB), nil)
		want := bytes.Repeat([]byte{7}, 2*MiB)
		if err := ds.Write(pr, nil, want); err != nil {
			t.Error(err)
		}
		if err := c.Drain(p); err != nil {
			t.Error(err)
		}
		if err := ds.Prefetch(pr, nil); err != nil {
			t.Error(err)
		}
		p.Sleep(3 * time.Second) // compute; prefetch (2s) completes inside
		start := p.Now()
		out := make([]byte, 2*MiB)
		if err := ds.Read(pr, nil, out); err != nil {
			t.Error(err)
		}
		if got := p.Now() - start; got != time.Second {
			t.Errorf("prefetched read took %v, want 1s (staging copy only)", got)
		}
		if !bytes.Equal(out, want) {
			t.Error("prefetched data mismatch")
		}
		// Second read of the same selection is a cache miss (entries are
		// one-shot) and goes back to the synchronous path.
		start = p.Now()
		if err := ds.Read(pr, nil, out); err != nil {
			t.Error(err)
		}
		if got := p.Now() - start; got != 2*time.Second {
			t.Errorf("post-prefetch read took %v, want 2s (sync)", got)
		}
		c.Shutdown()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchStillInFlightBlocksUntilDone(t *testing.T) {
	opts := Options{Copy: fixedCopy{bw: 100 * MiB}, Materialize: true}
	clk, c, f := setup(t, opts)
	clk.Go("app", func(p *vclock.Proc) {
		pr := vol.Props{Proc: p}
		ds, _ := f.Root().CreateDataset(pr, "x", hdf5.U8, hdf5.MustSimple(4*MiB), nil)
		if err := ds.Write(pr, nil, make([]byte, 4*MiB)); err != nil {
			t.Error(err)
		}
		if err := c.Drain(p); err != nil {
			t.Error(err)
		}
		ioStart := p.Now()
		if err := ds.Prefetch(pr, nil); err != nil {
			t.Error(err)
		}
		// No compute: read immediately; must wait the full 4s background
		// read (partial overlap scenario).
		out := make([]byte, 4*MiB)
		if err := ds.Read(pr, nil, out); err != nil {
			t.Error(err)
		}
		if got := p.Now() - ioStart; got < 4*time.Second {
			t.Errorf("read returned after %v, before prefetch could finish", got)
		}
		c.Shutdown()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchSelectionKeyedBySlab(t *testing.T) {
	opts := Options{Copy: fixedCopy{bw: 100 * MiB}, Materialize: true}
	clk, c, f := setup(t, opts)
	clk.Go("app", func(p *vclock.Proc) {
		pr := vol.Props{Proc: p}
		ds, _ := f.Root().CreateDataset(pr, "x", hdf5.U8, hdf5.MustSimple(1024), nil)
		seed := make([]byte, 1024)
		for i := range seed {
			seed[i] = byte(i)
		}
		if err := ds.Write(pr, nil, seed); err != nil {
			t.Error(err)
		}
		if err := c.Drain(p); err != nil {
			t.Error(err)
		}
		slab := hdf5.MustSimple(1024)
		if err := slab.SelectHyperslab([]uint64{512}, nil, []uint64{1}, []uint64{256}); err != nil {
			t.Error(err)
		}
		if err := ds.Prefetch(pr, slab); err != nil {
			t.Error(err)
		}
		if err := c.Drain(p); err != nil {
			t.Error(err)
		}
		out := make([]byte, 256)
		if err := ds.Read(pr, slab, out); err != nil {
			t.Error(err)
		}
		for i := range out {
			if out[i] != byte(512+i) {
				t.Errorf("slab byte %d = %d, want %d", i, out[i], byte(512+i))
				break
			}
		}
		c.Shutdown()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseDrainsPendingWrites(t *testing.T) {
	opts := Options{Copy: fixedCopy{bw: 100 * MiB}, Materialize: true}
	clk, c, f := setup(t, opts)
	clk.Go("app", func(p *vclock.Proc) {
		pr := vol.Props{Proc: p}
		ds, _ := f.Root().CreateDataset(pr, "x", hdf5.U8, hdf5.MustSimple(2*MiB), nil)
		if err := ds.Write(pr, nil, make([]byte, 2*MiB)); err != nil {
			t.Error(err)
		}
		start := p.Now()
		if err := f.Close(pr); err != nil {
			t.Error(err)
		}
		// Close must have waited for the 2s background write.
		if got := p.Now() - start; got < 2*time.Second {
			t.Errorf("Close returned after %v, pending write not drained", got)
		}
		c.Shutdown()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestNilCopyModelIsZeroOverhead(t *testing.T) {
	// Ablation: zero-copy async. The caller must not block at all.
	opts := Options{Copy: nil, Materialize: true}
	clk, c, f := setup(t, opts)
	clk.Go("app", func(p *vclock.Proc) {
		pr := vol.Props{Proc: p}
		ds, _ := f.Root().CreateDataset(pr, "x", hdf5.U8, hdf5.MustSimple(4*MiB), nil)
		start := p.Now()
		if err := ds.Write(pr, nil, make([]byte, 4*MiB)); err != nil {
			t.Error(err)
		}
		if got := p.Now() - start; got != 0 {
			t.Errorf("zero-copy write blocked %v", got)
		}
		c.Shutdown()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestTimingOnlyModeChargesWithoutData(t *testing.T) {
	opts := Options{Copy: fixedCopy{bw: 4 * MiB}, Materialize: false}
	clk, c, f := setup(t, opts)
	clk.Go("app", func(p *vclock.Proc) {
		pr := vol.Props{Proc: p}
		ds, _ := f.Root().CreateDataset(pr, "x", hdf5.U8, hdf5.MustSimple(4*MiB), nil)
		start := p.Now()
		if err := ds.Write(pr, nil, make([]byte, 4*MiB)); err != nil {
			t.Error(err)
		}
		if got := p.Now() - start; got != time.Second {
			t.Errorf("copy charge = %v, want 1s", got)
		}
		if err := c.Drain(p); err != nil {
			t.Error(err)
		}
		if p.Now() != 5*time.Second {
			t.Errorf("drain at %v, want 5s", p.Now())
		}
		// Prefetch in timing-only mode uses ReadNull: charges time, no
		// allocation.
		if err := ds.Prefetch(pr, nil); err != nil {
			t.Error(err)
		}
		if err := c.Drain(p); err != nil {
			t.Error(err)
		}
		if p.Now() != 9*time.Second {
			t.Errorf("prefetch drain at %v, want 9s", p.Now())
		}
		c.Shutdown()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestEventSetCollectsMultipleOps(t *testing.T) {
	opts := Options{Copy: fixedCopy{bw: 100 * MiB}, Materialize: true}
	clk, c, f := setup(t, opts)
	clk.Go("app", func(p *vclock.Proc) {
		pr := vol.Props{Proc: p}
		es := NewEventSet()
		prES := vol.Props{Proc: p, Set: es}
		for i := 0; i < 4; i++ {
			name := string(rune('a' + i))
			ds, err := f.Root().CreateDataset(pr, name, hdf5.U8, hdf5.MustSimple(MiB), nil)
			if err != nil {
				t.Error(err)
				return
			}
			if err := ds.Write(prES, nil, make([]byte, MiB)); err != nil {
				t.Error(err)
			}
		}
		if es.Pending() == 0 {
			t.Error("Pending = 0 with writes in flight")
		}
		if err := es.Wait(p); err != nil {
			t.Error(err)
		}
		if es.Pending() != 0 {
			t.Errorf("Pending after Wait = %d", es.Pending())
		}
		// First copy finishes at 10ms; 4 writes of 1 MiB at 1 MiB/s run
		// back-to-back on one background stream → done at 4.01s.
		if want := 4*time.Second + 10*time.Millisecond; p.Now() != want {
			t.Errorf("all writes done at %v, want %v (serialized on one stream)", p.Now(), want)
		}
		c.Shutdown()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}
