package asyncvol

import (
	"testing"
	"time"

	"asyncio/internal/hdf5"
	"asyncio/internal/taskengine"
	"asyncio/internal/vclock"
	"asyncio/internal/vol"
)

func TestConnectorNameAndOpen(t *testing.T) {
	clk := vclock.New()
	eng := taskengine.New(clk)
	c := New(eng, "rank7", Options{Materialize: true})
	if c.Name() != "async:rank7" {
		t.Fatalf("Name = %q", c.Name())
	}
	store := hdf5.NewMemStore()
	f, err := c.Create(vol.Props{}, store)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Root().CreateGroup(vol.Props{}, "g"); err != nil {
		t.Fatal(err)
	}
	clk.Go("x", func(p *vclock.Proc) {
		if err := f.Close(vol.Props{Proc: p}); err != nil {
			t.Error(err)
		}
		c.Shutdown()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	// Open through a second connector (fresh stream).
	c2 := New(eng, "rank8", Options{Materialize: true})
	f2, err := c2.Open(vol.Props{}, store)
	if err != nil {
		t.Fatal(err)
	}
	if got := f2.Root().List(); len(got) != 1 || got[0] != "g" {
		t.Fatalf("List = %v", got)
	}
	c2.Shutdown()
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncMetadataDoesNotBlockCaller(t *testing.T) {
	// With a driver charging 10ms per metadata op, the async connector's
	// metadata calls must not advance the caller's clock; the charges
	// land on the background stream.
	clk := vclock.New()
	eng := taskengine.New(clk)
	c := New(eng, "r0", Options{Materialize: true})
	drv := sleepDriver{bw: 1 << 30, meta: 10 * time.Millisecond}
	f, err := c.Create(vol.Props{}, hdf5.NewMemStore(), hdf5.WithDriver(drv))
	if err != nil {
		t.Fatal(err)
	}
	clk.Go("app", func(p *vclock.Proc) {
		pr := vol.Props{Proc: p}
		g, err := f.Root().CreateGroup(pr, "step")
		if err != nil {
			t.Error(err)
			return
		}
		if err := g.SetAttrInt64(pr, "n", 1); err != nil {
			t.Error(err)
		}
		if err := g.SetAttrString(pr, "s", "x"); err != nil {
			t.Error(err)
		}
		if _, err := g.CreateDataset(pr, "d", hdf5.U8, hdf5.MustSimple(4), nil); err != nil {
			t.Error(err)
		}
		if _, err := f.Root().OpenGroup(pr, "step"); err != nil {
			t.Error(err)
		}
		if _, err := f.Root().OpenDataset(pr, "step/d"); err != nil {
			t.Error(err)
		}
		if p.Now() != 0 {
			t.Errorf("metadata blocked the caller until %v", p.Now())
		}
		// Draining pays the deferred charges: 1 create-group + 2 attrs +
		// 1 create-dataset + 1 open-group hop + 2 open-dataset hops = 7
		// metadata ops × 10ms.
		if err := c.Drain(p); err != nil {
			t.Error(err)
		}
		if p.Now() != 70*time.Millisecond {
			t.Errorf("deferred metadata cost %v, want 70ms", p.Now())
		}
		// Attribute reads return values, so they stay synchronous.
		g2, _ := f.Root().OpenGroup(pr, "step")
		before := p.Now()
		if v, err := g2.AttrInt64(pr, "n"); err != nil || v != 1 {
			t.Errorf("AttrInt64 = %d, %v", v, err)
		}
		if s, err := g2.AttrString(pr, "s"); err != nil || s != "x" {
			t.Errorf("AttrString = %q, %v", s, err)
		}
		if p.Now() == before {
			t.Error("attribute reads should charge the caller")
		}
		c.Shutdown()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestDiscardPathsThroughConnector(t *testing.T) {
	clk := vclock.New()
	eng := taskengine.New(clk)
	c := New(eng, "r0", Options{Copy: fixedCopy{bw: 1 * MiB}, Materialize: false})
	f, err := c.Create(vol.Props{}, hdf5.NewNullStore(),
		hdf5.WithDriver(sleepDriver{bw: 1 * MiB}))
	if err != nil {
		t.Fatal(err)
	}
	clk.Go("app", func(p *vclock.Proc) {
		pr := vol.Props{Proc: p}
		ds, err := f.Root().CreateDataset(pr, "d", hdf5.U8, hdf5.MustSimple(MiB), nil)
		if err != nil {
			t.Error(err)
			return
		}
		// WriteDiscard: caller pays the 1s copy, background pays 1s write.
		start := p.Now()
		if err := ds.WriteDiscard(pr, nil); err != nil {
			t.Error(err)
		}
		if got := p.Now() - start; got != time.Second {
			t.Errorf("WriteDiscard blocked %v, want 1s copy", got)
		}
		if err := c.Drain(p); err != nil {
			t.Error(err)
		}
		// ReadDiscard without prefetch: synchronous charged read (1s).
		start = p.Now()
		if err := ds.ReadDiscard(pr, nil); err != nil {
			t.Error(err)
		}
		if got := p.Now() - start; got != time.Second {
			t.Errorf("cold ReadDiscard took %v, want 1s", got)
		}
		// Prefetch + ReadDiscard: wait + copy only.
		if err := ds.Prefetch(pr, nil); err != nil {
			t.Error(err)
		}
		// Duplicate prefetch is a no-op.
		if err := ds.Prefetch(pr, nil); err != nil {
			t.Error(err)
		}
		p.Sleep(2 * time.Second) // let the background read finish
		start = p.Now()
		if err := ds.ReadDiscard(pr, nil); err != nil {
			t.Error(err)
		}
		if got := p.Now() - start; got != time.Second {
			t.Errorf("prefetched ReadDiscard took %v, want 1s copy", got)
		}
		c.Shutdown()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestFlushDrainsThenWritesMetadata(t *testing.T) {
	clk := vclock.New()
	eng := taskengine.New(clk)
	c := New(eng, "r0", Options{Materialize: true})
	store := hdf5.NewMemStore()
	f, err := c.Create(vol.Props{}, store, hdf5.WithDriver(sleepDriver{bw: 1 * MiB}))
	if err != nil {
		t.Fatal(err)
	}
	clk.Go("app", func(p *vclock.Proc) {
		pr := vol.Props{Proc: p}
		ds, _ := f.Root().CreateDataset(pr, "d", hdf5.U8, hdf5.MustSimple(MiB), nil)
		if err := ds.Write(pr, nil, make([]byte, MiB)); err != nil {
			t.Error(err)
		}
		if err := f.Flush(pr); err != nil {
			t.Error(err)
		}
		// Flush waited for the 1s background write.
		if p.Now() < time.Second {
			t.Errorf("Flush returned at %v before background write", p.Now())
		}
		c.Shutdown()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	// Metadata reached the store: reopening works.
	if _, err := hdf5.Open(store); err != nil {
		t.Fatal(err)
	}
}

func TestDatasetAccessors(t *testing.T) {
	clk := vclock.New()
	eng := taskengine.New(clk)
	c := New(eng, "r0", Options{Materialize: true})
	f, _ := c.Create(vol.Props{}, hdf5.NewMemStore())
	ds, err := f.Root().CreateDataset(vol.Props{}, "d", hdf5.F32, hdf5.MustSimple(4, 8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NBytes() != 4*8*4 {
		t.Fatalf("NBytes = %d", ds.NBytes())
	}
	if ds.Dtype() != hdf5.F32 {
		t.Fatalf("Dtype = %v", ds.Dtype())
	}
	if dims := ds.Dims(); len(dims) != 2 || dims[1] != 8 {
		t.Fatalf("Dims = %v", dims)
	}
	if ds.Unwrap() == nil {
		t.Fatal("Unwrap nil")
	}
	c.Shutdown()
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestMaxPendingBackpressure(t *testing.T) {
	// With MaxPending=1 and 1s background writes, the second submission
	// must block until the first completes; unbounded submissions
	// return immediately.
	run := func(maxPending int) time.Duration {
		clk := vclock.New()
		eng := taskengine.New(clk)
		c := New(eng, "r0", Options{Materialize: true, MaxPending: maxPending})
		f, err := c.Create(vol.Props{}, hdf5.NewMemStore(),
			hdf5.WithDriver(sleepDriver{bw: 1 * MiB}))
		if err != nil {
			t.Fatal(err)
		}
		var submitted time.Duration
		clk.Go("app", func(p *vclock.Proc) {
			pr := vol.Props{Proc: p}
			ds, err := f.Root().CreateDataset(pr, "d", hdf5.U8, hdf5.MustSimple(4*MiB), nil)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 3; i++ {
				sel := hdf5.MustSimple(4 * MiB)
				if err := sel.SelectHyperslab([]uint64{uint64(i) * MiB}, nil,
					[]uint64{1}, []uint64{MiB}); err != nil {
					t.Error(err)
				}
				if err := ds.Write(pr, sel, make([]byte, MiB)); err != nil {
					t.Error(err)
				}
			}
			submitted = p.Now()
			if err := c.Drain(p); err != nil {
				t.Error(err)
			}
			c.Shutdown()
		})
		if err := clk.Wait(); err != nil {
			t.Fatal(err)
		}
		return submitted
	}
	unbounded := run(0)
	bounded := run(1)
	if unbounded != 0 {
		t.Fatalf("unbounded submissions blocked %v", unbounded)
	}
	// Bounded: 3rd submission waits for writes 1 and 2 (1s each).
	if bounded < 2*time.Second {
		t.Fatalf("bounded submissions blocked only %v, want >= 2s", bounded)
	}
}

func TestPendingCounter(t *testing.T) {
	clk := vclock.New()
	eng := taskengine.New(clk)
	c := New(eng, "r0", Options{Materialize: true, MaxPending: 8})
	f, _ := c.Create(vol.Props{}, hdf5.NewMemStore(),
		hdf5.WithDriver(sleepDriver{bw: 1 * MiB}))
	clk.Go("app", func(p *vclock.Proc) {
		pr := vol.Props{Proc: p}
		ds, _ := f.Root().CreateDataset(pr, "d", hdf5.U8, hdf5.MustSimple(2*MiB), nil)
		if err := ds.Write(pr, nil, make([]byte, 2*MiB)); err != nil {
			t.Error(err)
		}
		if n := c.Pending(); n != 1 {
			t.Errorf("Pending = %d mid-flight, want 1", n)
		}
		if err := c.Drain(p); err != nil {
			t.Error(err)
		}
		if n := c.Pending(); n != 0 {
			t.Errorf("Pending = %d after drain", n)
		}
		c.Shutdown()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}
