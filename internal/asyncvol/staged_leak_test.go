package asyncvol

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"asyncio/internal/hdf5"
	"asyncio/internal/metrics"
	"asyncio/internal/taskengine"
	"asyncio/internal/vclock"
	"asyncio/internal/vol"
)

// stubFaults is a minimal FaultModel: a fixed staging budget, no
// background stalls.
type stubFaults struct {
	cap       int64
	exhausted int
}

func (s *stubFaults) BackgroundStall(time.Duration) time.Duration { return 0 }
func (s *stubFaults) StagingCapacity() int64                      { return s.cap }
func (s *stubFaults) StagingExhausted()                           { s.exhausted++ }

// TestStagedBytesReleasedAfterFaultedRun is the regression test for the
// staged-buffer leak: a background dispatch that fails used to keep its
// staging bytes accounted forever, so the staged-bytes gauge never
// returned to zero and capacity checks eventually degraded every write.
func TestStagedBytesReleasedAfterFaultedRun(t *testing.T) {
	sentinel := errors.New("injected disk failure")
	clk := vclock.New()
	eng := taskengine.New(clk)
	reg := metrics.NewRegistry(clk)
	c := New(eng, "r0", Options{Materialize: true, Metrics: reg})
	store := &failingStore{MemStore: hdf5.NewMemStore(), allow: 2, err: sentinel}
	f, err := c.Create(vol.Props{}, store)
	if err != nil {
		t.Fatal(err)
	}
	clk.Go("app", func(p *vclock.Proc) {
		pr := vol.Props{Proc: p}
		ds, err := f.Root().CreateDataset(pr, "d", hdf5.U8, hdf5.MustSimple(64), nil)
		if err != nil {
			t.Error(err)
			return
		}
		store.allow = 0 // every background dispatch from here fails
		for i := 0; i < 4; i++ {
			if err := ds.Write(pr, nil, make([]byte, 64)); err != nil {
				t.Errorf("write %d: %v", i, err)
			}
		}
		if err := c.Drain(p); !errors.Is(err, sentinel) {
			t.Errorf("Drain = %v, want injected failure", err)
		}
		c.Shutdown()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	if n := c.StagedOutstanding(); n != 0 {
		t.Errorf("StagedOutstanding = %d after faulted run, want 0", n)
	}
	g := reg.FindGauge("asyncvol.staged_outstanding_bytes")
	if g == nil {
		t.Fatal("staged_outstanding_bytes gauge not registered")
	}
	if v := g.Value(); v != 0 {
		t.Errorf("staged_outstanding_bytes gauge = %v after faulted run, want 0", v)
	}
}

// TestStagingExhaustionFallsBackSynchronously covers the degraded path:
// a write that would exceed the staging budget must complete in place on
// the caller (correct data, no background task) and must not disturb
// the staged-byte accounting.
func TestStagingExhaustionFallsBackSynchronously(t *testing.T) {
	clk := vclock.New()
	eng := taskengine.New(clk)
	reg := metrics.NewRegistry(clk)
	fm := &stubFaults{cap: 100}
	c := New(eng, "r0", Options{Materialize: true, Metrics: reg, Faults: fm})
	f, err := c.Create(vol.Props{}, hdf5.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	bufA := bytes.Repeat([]byte{0xAA}, 64)
	bufB := bytes.Repeat([]byte{0xBB}, 64)
	clk.Go("app", func(p *vclock.Proc) {
		pr := vol.Props{Proc: p}
		a, err := f.Root().CreateDataset(pr, "a", hdf5.U8, hdf5.MustSimple(64), nil)
		if err != nil {
			t.Error(err)
			return
		}
		b, err := f.Root().CreateDataset(pr, "b", hdf5.U8, hdf5.MustSimple(64), nil)
		if err != nil {
			t.Error(err)
			return
		}
		if err := a.Write(pr, nil, bufA); err != nil { // 64 B staged, under budget
			t.Error(err)
		}
		if err := b.Write(pr, nil, bufB); err != nil { // 64+64 > 100: in-place fallback
			t.Error(err)
		}
		if fm.exhausted != 1 {
			t.Errorf("StagingExhausted called %d times, want 1", fm.exhausted)
		}
		if err := c.Drain(p); err != nil {
			t.Error(err)
		}
		for _, tc := range []struct {
			ds   vol.Dataset
			want []byte
		}{{a, bufA}, {b, bufB}} {
			out := make([]byte, 64)
			if err := tc.ds.Read(pr, nil, out); err != nil {
				t.Error(err)
			} else if !bytes.Equal(out, tc.want) {
				t.Errorf("read back %x, want %x", out[0], tc.want[0])
			}
		}
		c.Shutdown()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	if n := c.StagedOutstanding(); n != 0 {
		t.Errorf("StagedOutstanding = %d, want 0", n)
	}
	if v := reg.FindGauge("asyncvol.staged_outstanding_bytes").Value(); v != 0 {
		t.Errorf("staged_outstanding_bytes gauge = %v, want 0", v)
	}
}
