package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLeastSquaresExact(t *testing.T) {
	// y = 2 + 3x, noiseless.
	x := [][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	y := []float64{2, 5, 8, 11}
	beta, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(beta[0], 2, 1e-9) || !approx(beta[1], 3, 1e-9) {
		t.Fatalf("beta = %v, want [2 3]", beta)
	}
}

func TestLeastSquaresThreeColumns(t *testing.T) {
	// y = 1 + 2a - 3b.
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		x = append(x, []float64{1, a, b})
		y = append(y, 1+2*a-3*b)
	}
	beta, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, -3}
	for i := range want {
		if !approx(beta[i], want[i], 1e-6) {
			t.Fatalf("beta = %v, want %v", beta, want)
		}
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil); !errors.Is(err, ErrDegenerate) {
		t.Errorf("empty: err = %v", err)
	}
	// Fewer rows than columns.
	if _, err := LeastSquares([][]float64{{1, 2}}, []float64{1}); !errors.Is(err, ErrDegenerate) {
		t.Errorf("underdetermined: err = %v", err)
	}
	// Perfectly collinear columns → singular.
	x := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	if _, err := LeastSquares(x, []float64{1, 2, 3}); !errors.Is(err, ErrDegenerate) {
		t.Errorf("singular: err = %v", err)
	}
	// Ragged rows.
	if _, err := LeastSquares([][]float64{{1, 2}, {1}}, []float64{1, 2}); !errors.Is(err, ErrDegenerate) {
		t.Errorf("ragged: err = %v", err)
	}
}

func TestLinearNoIntercept2RecoversPlane(t *testing.T) {
	// y = 0.5*size + 7*ranks with slight noise — the Eq. 4 form.
	rng := rand.New(rand.NewSource(7))
	var x0, x1, y []float64
	for i := 0; i < 100; i++ {
		s := rng.Float64() * 1e9
		r := float64(rng.Intn(1000) + 1)
		x0 = append(x0, s)
		x1 = append(x1, r)
		y = append(y, 0.5*s+7*r+rng.NormFloat64()*10)
	}
	fit, err := LinearNoIntercept2(x0, x1, y)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(fit.Beta[0], 0.5, 1e-3) {
		t.Errorf("beta0 = %v, want 0.5", fit.Beta[0])
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v, want > 0.99 on near-noiseless data", fit.R2)
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{3, 5, 7, 9, 11} // y = 1 + 2x
	fit, err := Linear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(fit.Beta[0], 1, 1e-9) || !approx(fit.Beta[1], 2, 1e-9) {
		t.Fatalf("beta = %v, want [1 2]", fit.Beta)
	}
	if !approx(fit.R2, 1, 1e-12) {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
	if !approx(fit.EvalLinear(10), 21, 1e-9) {
		t.Fatalf("EvalLinear(10) = %v, want 21", fit.EvalLinear(10))
	}
}

func TestLinearLogFitsSaturatingCurve(t *testing.T) {
	// Bandwidth that grows as 5 + 2·ln(nodes) — the shape the paper fits
	// for synchronous aggregate bandwidth.
	var x, y []float64
	for n := 1; n <= 2048; n *= 2 {
		x = append(x, float64(n))
		y = append(y, 5+2*math.Log(float64(n)))
	}
	fit, err := LinearLog(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(fit.Beta[0], 5, 1e-9) || !approx(fit.Beta[1], 2, 1e-9) {
		t.Fatalf("beta = %v, want [5 2]", fit.Beta)
	}
	if !approx(fit.EvalLinearLog(math.E), 7, 1e-9) {
		t.Fatalf("EvalLinearLog(e) = %v, want 7", fit.EvalLinearLog(math.E))
	}
}

func TestLinearLogRejectsNonPositive(t *testing.T) {
	if _, err := LinearLog([]float64{0, 1}, []float64{1, 2}); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("err = %v, want ErrDegenerate", err)
	}
}

func TestR2Bounds(t *testing.T) {
	perfect := []float64{1, 2, 3, 4}
	if r := R2(perfect, perfect); !approx(r, 1, 1e-12) {
		t.Errorf("R2(x,x) = %v, want 1", r)
	}
	if r := R2([]float64{1, 1, 1}, []float64{1, 2, 3}); r != 0 {
		t.Errorf("R2 with zero-variance fitted = %v, want 0", r)
	}
	if r := R2([]float64{1}, []float64{1}); r != 0 {
		t.Errorf("R2 single sample = %v, want 0", r)
	}
	if r := R2([]float64{1, 2}, []float64{1, 2, 3}); r != 0 {
		t.Errorf("R2 length mismatch = %v, want 0", r)
	}
}

func TestR2InUnitIntervalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 2
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64() * 100
			b[i] = rng.NormFloat64() * 100
		}
		r := R2(a, b)
		return r >= 0 && r <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryStats(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !approx(m, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); !approx(v, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", v)
	}
	if s := StdDev(xs); !approx(s, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", s)
	}
	if cv := CV(xs); !approx(cv, 0.4, 1e-12) {
		t.Errorf("CV = %v, want 0.4", cv)
	}
	lo, hi := MinMax(xs)
	if lo != 2 || hi != 9 {
		t.Errorf("MinMax = %v,%v, want 2,9", lo, hi)
	}
}

func TestSummaryStatsEmptyAndDegenerate(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdDev(nil) != 0 || CV(nil) != 0 {
		t.Error("empty-slice stats must be zero")
	}
	if Variance([]float64{5}) != 0 {
		t.Error("single-sample variance must be zero")
	}
	if CV([]float64{0, 0}) != 0 {
		t.Error("zero-mean CV must be zero")
	}
	lo, hi := MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Error("empty MinMax must be zeros")
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.3)
	if e.Ready() {
		t.Fatal("fresh EWMA reports ready")
	}
	for i := 0; i < 100; i++ {
		e.Observe(42)
	}
	if !e.Ready() || !approx(e.Value(), 42, 1e-9) {
		t.Fatalf("Value = %v, want 42", e.Value())
	}
}

func TestEWMAFirstObservationSeeds(t *testing.T) {
	e := NewEWMA(0.1)
	e.Observe(100)
	if !approx(e.Value(), 100, 1e-12) {
		t.Fatalf("Value after first observation = %v, want 100", e.Value())
	}
	e.Observe(0)
	if !approx(e.Value(), 90, 1e-12) {
		t.Fatalf("Value = %v, want 90", e.Value())
	}
}

func TestEWMAPanicsOnBadAlpha(t *testing.T) {
	for _, a := range []float64{0, -0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEWMA(%v) did not panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

func TestLeastSquaresMatchesClosedFormProperty(t *testing.T) {
	// For 1D no-intercept fits, OLS has the closed form Σxy/Σx².
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 2
		x := make([][]float64, n)
		y := make([]float64, n)
		var sxy, sxx float64
		for i := 0; i < n; i++ {
			xv := rng.Float64()*100 + 1
			yv := rng.NormFloat64() * 50
			x[i] = []float64{xv}
			y[i] = yv
			sxy += xv * yv
			sxx += xv * xv
		}
		beta, err := LeastSquares(x, y)
		if err != nil {
			return false
		}
		return approx(beta[0], sxy/sxx, 1e-6*math.Max(1, math.Abs(sxy/sxx)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
