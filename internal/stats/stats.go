// Package stats provides the statistical machinery behind the paper's
// empirical performance model (§III-B): ordinary least squares in the
// exact forms of Eq. 4 (linear, no intercept, over data size and rank
// count; and a linear-log variant for saturating synchronous rates), the
// coefficient of determination of Eq. 5, exponentially weighted averages
// for computation-time estimation, and summary statistics used by the
// variability analysis (§V-C).
package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrDegenerate is returned when a fit cannot be computed (too few
// observations or a singular normal matrix).
var ErrDegenerate = errors.New("stats: degenerate fit")

// Fit is the result of a regression: coefficients plus goodness of fit.
type Fit struct {
	Beta []float64 // model coefficients
	R2   float64   // coefficient of determination in [0, 1]
}

// LeastSquares solves min ||X·β − y||² by normal equations with
// Gaussian elimination (partial pivoting). X is row-major: one row per
// observation, one column per regressor. The paper's Eq. 4,
// β = (XᵀX)⁻¹ Xᵀ Y, is exactly this computation.
func LeastSquares(x [][]float64, y []float64) ([]float64, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("%w: %d rows vs %d targets", ErrDegenerate, n, len(y))
	}
	k := len(x[0])
	if k == 0 || n < k {
		return nil, fmt.Errorf("%w: %d observations for %d coefficients", ErrDegenerate, n, k)
	}
	// Build XᵀX (k×k) and Xᵀy (k).
	xtx := make([][]float64, k)
	for i := range xtx {
		xtx[i] = make([]float64, k)
	}
	xty := make([]float64, k)
	for r, row := range x {
		if len(row) != k {
			return nil, fmt.Errorf("%w: ragged design matrix at row %d", ErrDegenerate, r)
		}
		for i := 0; i < k; i++ {
			for j := i; j < k; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xty[i] += row[i] * y[r]
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}
	return solve(xtx, xty)
}

// solve performs in-place Gaussian elimination with partial pivoting on
// the augmented system a·β = b.
func solve(a [][]float64, b []float64) ([]float64, error) {
	k := len(a)
	for col := 0; col < k; col++ {
		pivot := col
		for r := col + 1; r < k; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("%w: singular normal matrix", ErrDegenerate)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for r := col + 1; r < k; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < k; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	beta := make([]float64, k)
	for i := k - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < k; j++ {
			s -= a[i][j] * beta[j]
		}
		beta[i] = s / a[i][i]
	}
	return beta, nil
}

// LinearNoIntercept2 fits y = β0·x0 + β1·x1 — the paper's Eq. 4 with
// x0 = data size and x1 = number of MPI ranks — and reports r² between
// fitted and observed values.
func LinearNoIntercept2(x0, x1, y []float64) (Fit, error) {
	if len(x0) != len(y) || len(x1) != len(y) {
		return Fit{}, fmt.Errorf("%w: length mismatch", ErrDegenerate)
	}
	x := make([][]float64, len(y))
	for i := range x {
		x[i] = []float64{x0[i], x1[i]}
	}
	beta, err := LeastSquares(x, y)
	if err != nil {
		return Fit{}, err
	}
	fitted := make([]float64, len(y))
	for i := range y {
		fitted[i] = beta[0]*x0[i] + beta[1]*x1[i]
	}
	return Fit{Beta: beta, R2: R2(fitted, y)}, nil
}

// Linear fits y = β0 + β1·x.
func Linear(x, y []float64) (Fit, error) {
	rows := make([][]float64, len(x))
	for i := range x {
		rows[i] = []float64{1, x[i]}
	}
	beta, err := LeastSquares(rows, y)
	if err != nil {
		return Fit{}, err
	}
	fitted := make([]float64, len(y))
	for i := range y {
		fitted[i] = beta[0] + beta[1]*x[i]
	}
	return Fit{Beta: beta, R2: R2(fitted, y)}, nil
}

// LinearLog fits y = β0 + β1·ln(x), the form the paper uses for the
// saturating synchronous aggregate bandwidth (§V-A1). All x must be
// positive.
func LinearLog(x, y []float64) (Fit, error) {
	rows := make([][]float64, len(x))
	for i, v := range x {
		if v <= 0 {
			return Fit{}, fmt.Errorf("%w: non-positive x for log fit", ErrDegenerate)
		}
		rows[i] = []float64{1, math.Log(v)}
	}
	beta, err := LeastSquares(rows, y)
	if err != nil {
		return Fit{}, err
	}
	fitted := make([]float64, len(y))
	for i := range y {
		fitted[i] = beta[0] + beta[1]*math.Log(x[i])
	}
	return Fit{Beta: beta, R2: R2(fitted, y)}, nil
}

// EvalLinearLog evaluates a LinearLog fit at x.
func (f Fit) EvalLinearLog(x float64) float64 {
	return f.Beta[0] + f.Beta[1]*math.Log(x)
}

// EvalLinear evaluates a Linear fit at x.
func (f Fit) EvalLinear(x float64) float64 {
	return f.Beta[0] + f.Beta[1]*x
}

// EvalNoIntercept2 evaluates a LinearNoIntercept2 fit at (x0, x1).
func (f Fit) EvalNoIntercept2(x0, x1 float64) float64 {
	return f.Beta[0]*x0 + f.Beta[1]*x1
}

// R2 is the paper's Eq. 5 — Cov(X,Y)²/(Var(X)·Var(Y)) — computed between
// fitted and observed values: the squared Pearson correlation. Returns 0
// when either side has zero variance.
func R2(fitted, observed []float64) float64 {
	if len(fitted) != len(observed) || len(fitted) < 2 {
		return 0
	}
	mf := Mean(fitted)
	mo := Mean(observed)
	var cov, vf, vo float64
	for i := range fitted {
		df := fitted[i] - mf
		do := observed[i] - mo
		cov += df * do
		vf += df * df
		vo += do * do
	}
	if vf == 0 || vo == 0 {
		return 0
	}
	r := cov / math.Sqrt(vf*vo)
	return r * r
}

// Mean returns the arithmetic mean; 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Variance returns the population variance; 0 for fewer than 2 samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CV returns the coefficient of variation (σ/μ); 0 when the mean is 0.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// MinMax returns the extrema; zeros for an empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// EWMA is an exponentially weighted moving average — the paper's
// "weighted average over the measurements taken in previous iterations"
// used to estimate the next computation phase (§III-B). Alpha in (0, 1]
// weights the newest observation.
type EWMA struct {
	Alpha float64
	value float64
	ready bool
}

// NewEWMA returns an EWMA with the given weight for new observations.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("stats: EWMA alpha %v out of (0,1]", alpha))
	}
	return &EWMA{Alpha: alpha}
}

// Observe folds a new measurement into the average.
func (e *EWMA) Observe(v float64) {
	if !e.ready {
		e.value = v
		e.ready = true
		return
	}
	e.value = e.Alpha*v + (1-e.Alpha)*e.value
}

// Value returns the current estimate; 0 before any observation.
func (e *EWMA) Value() float64 { return e.value }

// Ready reports whether at least one observation has been folded in.
func (e *EWMA) Ready() bool { return e.ready }
