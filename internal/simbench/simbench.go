// Package simbench benchmarks the simulator itself — not the simulated
// systems. It times the virtual-clock engine on synthetic schedules and
// the figure generators end to end, reporting wall-clock, simulator
// events/second, ns/event, and allocations/event. The numbers feed the
// committed BENCH_simulator.json baseline that TestBenchRegression
// guards, and `asyncio-bench -selfbench` regenerates.
package simbench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"asyncio/internal/experiments"
	"asyncio/internal/vclock"
)

// Case is one self-benchmark: a named closure exercising the simulator.
// Shards records the intra-run shard count the case executes at (0 and
// 1 both mean the serial engine).
type Case struct {
	Name   string
	Shards int
	Run    func() error
}

// Result is the measurement of one Case.
type Result struct {
	Name           string  `json:"name"`
	Shards         int     `json:"shards,omitempty"`
	WallSeconds    float64 `json:"wall_seconds"`
	Events         int64   `json:"events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
}

// Report is the full self-benchmark output, annotated with enough
// environment to interpret the numbers.
type Report struct {
	GoVersion   string   `json:"go_version"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	NumCPU      int      `json:"num_cpu"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	Parallelism int      `json:"parallelism"`
	Results     []Result `json:"results"`
}

// Measure runs one case and derives its per-event metrics from the
// process-wide vclock event counter and allocator statistics.
func Measure(c Case) (Result, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	ev0 := vclock.TotalEvents()
	start := time.Now()
	if err := c.Run(); err != nil {
		return Result{}, fmt.Errorf("%s: %w", c.Name, err)
	}
	wall := time.Since(start)
	events := vclock.TotalEvents() - ev0
	runtime.ReadMemStats(&after)
	r := Result{
		Name:        c.Name,
		Shards:      c.Shards,
		WallSeconds: wall.Seconds(),
		Events:      events,
	}
	if events > 0 {
		r.EventsPerSec = float64(events) / wall.Seconds()
		r.NsPerEvent = float64(wall.Nanoseconds()) / float64(events)
		r.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(events)
		r.BytesPerEvent = float64(after.TotalAlloc-before.TotalAlloc) / float64(events)
	}
	return r, nil
}

// EngineCases are synthetic schedules hitting only internal/vclock —
// the pure event-engine cost, free of workload modeling.
func EngineCases() []Case {
	return []Case{
		{Name: "engine-sleep", Run: func() error {
			// One proc, a long chain of sleeps: the hot Sleep/advance path.
			clk := vclock.New()
			clk.Go("sleeper", func(p *vclock.Proc) {
				for i := 0; i < 200_000; i++ {
					p.Sleep(time.Microsecond)
				}
			})
			return clk.Wait()
		}},
		{Name: "engine-fanout", Run: func() error {
			// Many procs waking at the same instants: the batched-wakeup path.
			clk := vclock.New()
			for g := 0; g < 64; g++ {
				clk.Go(fmt.Sprintf("p%d", g), func(p *vclock.Proc) {
					for i := 0; i < 2_000; i++ {
						p.Sleep(time.Microsecond)
					}
				})
			}
			return clk.Wait()
		}},
		{Name: "engine-timers", Run: func() error {
			// Callback timers with a live cancellation mix: the pooled
			// entry + heap.Remove path.
			clk := vclock.New()
			clk.Go("driver", func(p *vclock.Proc) {
				for i := 0; i < 100_000; i++ {
					keep := p.Clock().AfterFunc(time.Microsecond, func(time.Duration) {})
					drop := p.Clock().AfterFunc(time.Millisecond, func(time.Duration) {})
					drop.Stop()
					_ = keep
					p.Sleep(time.Microsecond)
				}
			})
			return clk.Wait()
		}},
	}
}

// shardWorkload drives the scaling workload behind the engine-4096 /
// engine-sharded pair: 4096 procs with staggered sleep periods, spread
// round-robin across the engine's clocks. Staggered periods make every
// advance window a different-sized wake batch, so the measurement
// covers both dense and sparse instants.
func shardWorkload(clks []*vclock.Clock) {
	const procs, iters = 4096, 50
	for i := 0; i < procs; i++ {
		c := clks[i%len(clks)]
		step := time.Duration(1+i%7) * time.Microsecond
		c.Go(fmt.Sprintf("p%d", i), func(p *vclock.Proc) {
			for k := 0; k < iters; k++ {
				p.Sleep(step)
			}
		})
	}
}

// ShardCases measures the sharded coordinator against the serial engine
// on an identical 4096-proc schedule. The two entries share a workload
// by construction, so their events/s ratio is the intra-run speedup.
func ShardCases() []Case {
	return []Case{
		{Name: "engine-4096", Run: func() error {
			clk := vclock.New()
			shardWorkload([]*vclock.Clock{clk})
			return clk.Wait()
		}},
		{Name: "engine-sharded", Shards: 4, Run: func() error {
			co := vclock.NewSharded(4)
			// The workload has no cross-shard edges, so any lookahead
			// is safe; a generous horizon lets the shards run decoupled.
			// A conservative engine's parallelism comes entirely from
			// lookahead — L=0 lockstep is serialized by design — so this
			// case measures the decoupled ceiling, not the lockstep path.
			co.SetLookahead(time.Millisecond)
			shardWorkload(co.Clocks())
			return co.Wait()
		}},
	}
}

// FigureCases wraps figure generators from the experiments registry at
// the given scale. Unknown ids are skipped (the registry owns the id
// space; callers pass a stable subset).
func FigureCases(scale experiments.Scale, ids []string) []Case {
	reg := experiments.Registry()
	var cases []Case
	for _, id := range ids {
		gen, ok := reg[id]
		if !ok {
			continue
		}
		cases = append(cases, Case{
			Name: "fig-" + id,
			Run: func() error {
				_, err := gen(scale)
				return err
			},
		})
	}
	return cases
}

// ShardedFigureCases reruns figure cases on the n-shard engine. Entries
// are suffixed "-sN" and record the shard count, so the baseline tracks
// the full-stack sharded path (systems + harness + VOL connectors over
// the coordinator) alongside the pure-engine pair.
func ShardedFigureCases(scale experiments.Scale, ids []string, shards int) []Case {
	var cases []Case
	for _, base := range FigureCases(scale, ids) {
		run := base.Run
		cases = append(cases, Case{
			Name:   fmt.Sprintf("%s-s%d", base.Name, shards),
			Shards: shards,
			Run: func() error {
				prev := experiments.SetShards(shards)
				defer experiments.SetShards(prev)
				return run()
			},
		})
	}
	return cases
}

// DefaultShardedFigureIDs is the subset the baseline reruns sharded: a
// weak-scaling write sweep (request pipeline + staging engine) and the
// steps sweep (estimator) — enough stack coverage without doubling the
// selfbench runtime.
func DefaultShardedFigureIDs() []string {
	return []string{"fig3a", "fig7"}
}

// DefaultFigureIDs is the stable subset of figures the baseline tracks:
// a weak-scaling write sweep, a prefetch-read sweep, the steps sweep,
// and the fault sweep — together they cover the request pipeline, the
// staging engine, the estimator, and fault retries.
func DefaultFigureIDs() []string {
	return []string{"fig3a", "fig3c", "fig7", "faultsweep"}
}

// Run measures the engine cases plus the default figure cases at the
// given scale and assembles the Report. Unless GOGC is set explicitly
// it measures under the same GC target the CLI uses (400), so numbers
// from `go test` and from `asyncio-bench -selfbench` are comparable.
func Run(scale experiments.Scale) (*Report, error) {
	if os.Getenv("GOGC") == "" {
		defer debug.SetGCPercent(debug.SetGCPercent(400))
	}
	rep := &Report{
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallelism: experiments.Parallelism(),
	}
	cases := append(EngineCases(), ShardCases()...)
	cases = append(cases, FigureCases(scale, DefaultFigureIDs())...)
	cases = append(cases, ShardedFigureCases(scale, DefaultShardedFigureIDs(), 4)...)
	for _, c := range cases {
		r, err := Measure(c)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, r)
	}
	return rep, nil
}

// WriteJSON emits the report as indented JSON (the BENCH_simulator.json
// format).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadJSON parses a report previously written by WriteJSON.
func ReadJSON(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Find returns the named result, or nil.
func (r *Report) Find(name string) *Result {
	for i := range r.Results {
		if r.Results[i].Name == name {
			return &r.Results[i]
		}
	}
	return nil
}
