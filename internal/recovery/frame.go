package recovery

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Exported record framing.
//
// The write-ahead journal above frames every record as magic + body +
// CRC32; this file exports that discipline as a generic container any
// append-only log in the tree can reuse (the campaign point store's
// segment files are the first external user). A frame is:
//
//	magic    u32  little-endian FrameMagic
//	length   u32  payload byte count
//	payload  length bytes, caller-defined
//	crc      u32  CRC32-IEEE over magic, length, and payload
//
// The guarantees mirror the journal's: a decoder either returns the
// exact payload that was appended or a typed *FrameError — a torn tail,
// a flipped bit, and hostile garbage all surface as errors, never as
// wrong bytes, and decoding never panics.

// FrameMagic opens every frame ("FRM1" little-endian).
const FrameMagic uint32 = 0x314D5246

// MaxFramePayload caps a single frame's payload; a length field beyond
// it is treated as corruption rather than an allocation request.
const MaxFramePayload = 1 << 30

// frameOverhead is the fixed cost of framing a payload: magic, length,
// and trailing CRC.
const frameOverhead = 4 + 4 + 4

// FrameLen returns the encoded size of a frame holding n payload bytes.
func FrameLen(n int) int { return n + frameOverhead }

// ErrCorruptFrame is wrapped by every frame decode failure, so callers
// can errors.Is against a single sentinel.
var ErrCorruptFrame = errors.New("recovery: corrupt frame")

// FrameError reports where and why frame decoding failed. It wraps
// ErrCorruptFrame.
type FrameError struct {
	Off    int64 // byte offset of the failed frame within the caller's buffer
	Reason string
}

func (e *FrameError) Error() string {
	return fmt.Sprintf("recovery: corrupt frame at byte %d: %s", e.Off, e.Reason)
}

func (e *FrameError) Unwrap() error { return ErrCorruptFrame }

// AppendFrame appends one framed payload to dst and returns the
// extended slice.
func AppendFrame(dst, payload []byte) []byte {
	start := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, FrameMagic)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	crc := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// DecodeFrame parses one frame from the front of b. On success it
// returns the payload (aliasing b, not a copy) and the total encoded
// frame length. On failure it returns a *FrameError with Off 0; callers
// scanning a larger buffer add their own base offset.
func DecodeFrame(b []byte) (payload []byte, n int, err error) {
	if len(b) < 8 {
		return nil, 0, &FrameError{Reason: "truncated header"}
	}
	if binary.LittleEndian.Uint32(b) != FrameMagic {
		return nil, 0, &FrameError{Reason: "bad frame magic"}
	}
	plen := binary.LittleEndian.Uint32(b[4:])
	if plen > MaxFramePayload {
		return nil, 0, &FrameError{Reason: fmt.Sprintf("implausible payload size %d", plen)}
	}
	total := int(plen) + frameOverhead
	if len(b) < total {
		return nil, 0, &FrameError{Reason: fmt.Sprintf("truncated frame: have %d of %d bytes", len(b), total)}
	}
	want := binary.LittleEndian.Uint32(b[total-4:])
	if crc := crc32.ChecksumIEEE(b[:total-4]); crc != want {
		return nil, 0, &FrameError{Reason: fmt.Sprintf("checksum mismatch: have %#x want %#x", crc, want)}
	}
	return b[8 : total-4], total, nil
}

// ResyncFrame scans b for the next offset >= from at which a complete,
// checksum-valid frame begins, and returns that offset or -1. It is the
// recovery path after mid-log corruption: everything between the
// failure point and the resync offset is damage to quarantine, and
// because candidates must fully decode, a stray magic inside corrupt
// payload bytes cannot produce a false resync.
func ResyncFrame(b []byte, from int) int {
	if from < 0 {
		from = 0
	}
	for off := from; off+frameOverhead <= len(b); off++ {
		if binary.LittleEndian.Uint32(b[off:]) != FrameMagic {
			continue
		}
		if _, _, err := DecodeFrame(b[off:]); err == nil {
			return off
		}
	}
	return -1
}
