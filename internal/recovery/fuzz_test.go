package recovery

import (
	"bytes"
	"errors"
	"testing"

	"asyncio/internal/hdf5"
)

// FuzzDecodeJournal asserts the decoder's contract on arbitrary bytes:
// it never panics, and on failure it returns a typed *JournalError plus
// the valid record prefix. Any records it does return must re-encode to
// a journal that decodes to the same records (the codec is a fixed
// point on its own output).
func FuzzDecodeJournal(f *testing.F) {
	j := NewJournal(Cost{})
	j.Append(nil, &Record{Path: "/g/d", ElemSize: 4, Runs: []Run{{0, 8}}, Payload: bytes.Repeat([]byte{7}, 32)})
	j.Append(nil, &Record{Path: "/g/e", ElemSize: 8, Runs: []Run{{1, 2}, {5, 3}}})
	valid := j.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-4])
	f.Add([]byte{})
	f.Add([]byte("WJAL"))
	mut := append([]byte(nil), valid...)
	mut[len(mut)/2] ^= 0xFF
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeJournal(data)
		if err != nil {
			var jerr *JournalError
			if !errors.As(err, &jerr) {
				t.Fatalf("decode error %T is not *JournalError: %v", err, err)
			}
		}
		if len(recs) == 0 {
			return
		}
		j2 := NewJournal(Cost{})
		for i := range recs {
			r := recs[i]
			if err := j2.Append(nil, &r); err != nil {
				t.Fatalf("decoded record %d does not re-encode: %v", i, err)
			}
		}
		recs2, err := DecodeJournal(j2.Bytes())
		if err != nil {
			t.Fatalf("re-encoded journal does not decode: %v", err)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("round trip lost records: %d -> %d", len(recs), len(recs2))
		}
		for i := range recs {
			if recs[i].Path != recs2[i].Path || recs[i].ElemSize != recs2[i].ElemSize ||
				len(recs[i].Runs) != len(recs2[i].Runs) || !bytes.Equal(recs[i].Payload, recs2[i].Payload) {
				t.Fatalf("record %d changed across round trip", i)
			}
		}
	})
}

// FuzzRecoveryScan drives Scan with arbitrary journal bytes against
// both a valid image and a corrupted one: whatever the inputs, Scan
// must classify (never panic) and its counts must balance.
func FuzzRecoveryScan(f *testing.F) {
	payload := bytes.Repeat([]byte{0x44}, 64)
	j := NewJournal(Cost{})
	j.Append(nil, &Record{Path: "/g/d", ElemSize: 4, Runs: []Run{{0, 16}}, Payload: payload})
	j.Append(nil, &Record{Path: "/g/missing", ElemSize: 4, Runs: []Run{{0, 4}}, Payload: payload[:16]})
	valid := j.Bytes()
	f.Add(valid, 0, uint8(0))
	f.Add(valid, len(valid)/2, uint8(0x80))
	f.Add([]byte{}, 0, uint8(0))
	f.Add(valid[:len(valid)-7], 3, uint8(1))

	f.Fuzz(func(t *testing.T, jb []byte, flipAt int, flipBits uint8) {
		journal := append([]byte(nil), jb...)
		if len(journal) > 0 {
			journal[((flipAt%len(journal))+len(journal))%len(journal)] ^= flipBits
		}

		// A freshly built image, with the fuzzer also flipping a byte of
		// the stored container to model a torn write.
		store := hdf5.NewMemStore()
		func() {
			fh, err := hdf5.Create(store)
			if err != nil {
				t.Fatal(err)
			}
			g, err := fh.Root().CreateGroup(nil, "g")
			if err != nil {
				t.Fatal(err)
			}
			ds, err := g.CreateDataset(nil, "d", hdf5.F32, hdf5.MustSimple(16), nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := ds.Write(nil, nil, payload); err != nil {
				t.Fatal(err)
			}
			if err := fh.Close(nil); err != nil {
				t.Fatal(err)
			}
		}()
		if n := store.Size(); n > 0 && flipBits != 0 {
			b := make([]byte, 1)
			off := int64(((int64(flipAt) % n) + n) % n)
			store.ReadAt(b, off)
			b[0] ^= flipBits
			store.WriteAt(b, off)
		}

		for _, replay := range []bool{false, true} {
			rep := Scan(journal, store, ScanOptions{Replay: replay})
			if rep == nil {
				t.Fatal("Scan returned nil report")
			}
			total := rep.Committed + rep.Torn + rep.Lost + rep.Unverified
			if total != len(rep.Outcomes) {
				t.Fatalf("counts %d do not match %d outcomes", total, len(rep.Outcomes))
			}
			if rep.Replayed > rep.Torn {
				t.Fatalf("replayed %d > torn %d", rep.Replayed, rep.Torn)
			}
			_ = rep.Summary()
			_ = rep.Clean()
		}
	})
}
