package recovery

import (
	"bytes"
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		[]byte("x"),
		bytes.Repeat([]byte{0xAB}, 1000),
		[]byte("FRM1FRM1FRM1"), // payload that contains the magic
	}
	var buf []byte
	for _, p := range payloads {
		buf = AppendFrame(buf, p)
	}
	off := 0
	for i, p := range payloads {
		got, n, err := DecodeFrame(buf[off:])
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if n != FrameLen(len(p)) {
			t.Fatalf("frame %d: length %d, want %d", i, n, FrameLen(len(p)))
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: payload mismatch", i)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
}

// TestFrameDetectsEveryFlip flips every single byte of an encoded frame
// in turn: each mutation must be rejected (bad magic, bad length, or
// checksum mismatch) — never decoded as a different payload.
func TestFrameDetectsEveryFlip(t *testing.T) {
	orig := AppendFrame(nil, []byte("the quick brown fox"))
	for i := range orig {
		mut := append([]byte(nil), orig...)
		mut[i] ^= 0x01
		got, _, err := DecodeFrame(mut)
		if err == nil {
			t.Fatalf("flip at byte %d went undetected (payload %q)", i, got)
		}
		var fe *FrameError
		if !errors.As(err, &fe) || !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("flip at byte %d: error %T not a typed *FrameError", i, err)
		}
	}
}

// TestFrameTruncation decodes every proper prefix of a frame; all must
// fail with a typed error, never panic or return a payload.
func TestFrameTruncation(t *testing.T) {
	orig := AppendFrame(nil, bytes.Repeat([]byte{7}, 64))
	for n := 0; n < len(orig); n++ {
		if _, _, err := DecodeFrame(orig[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded", n, len(orig))
		}
	}
}

func TestResyncFrame(t *testing.T) {
	a := AppendFrame(nil, []byte("first"))
	b := AppendFrame(nil, []byte("second"))
	garbage := append([]byte("FRM1 lookalike garbage \x00\x01\x02"), 0x46, 0x52, 0x4D, 0x31)
	buf := append(append(append([]byte(nil), a...), garbage...), b...)

	// Corrupt the first frame: resync must skip the garbage (including
	// the embedded magic bytes that do not open a valid frame) and land
	// exactly on the second frame.
	buf[2] ^= 0xFF
	if _, _, err := DecodeFrame(buf); err == nil {
		t.Fatal("corrupted first frame decoded")
	}
	at := ResyncFrame(buf, 1)
	want := len(a) + len(garbage)
	if at != want {
		t.Fatalf("resync at %d, want %d", at, want)
	}
	got, _, err := DecodeFrame(buf[at:])
	if err != nil || string(got) != "second" {
		t.Fatalf("resynced frame: %q, %v", got, err)
	}

	if at := ResyncFrame([]byte("no frames here"), 0); at != -1 {
		t.Fatalf("resync in garbage returned %d", at)
	}
}
