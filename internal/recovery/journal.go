// Package recovery provides crash-consistency for asynchronous I/O: a
// write-ahead journal that records dataset writes before they enter the
// background pipeline, and a post-crash scanner that classifies each
// journaled extent as committed, torn, or lost against the surviving
// file image and optionally replays it.
//
// The journal models a small synchronous log device (a burst buffer or
// NVRAM strip): appends charge the writing process a fixed latency plus
// a bandwidth term, and the log itself is assumed durable — crash
// tearing applies to the data container, not the WAL. Torn-journal
// handling still matters for robustness (a real log can lose its tail),
// so the decoder treats any truncated or corrupt record as the end of
// the usable log and reports a typed error rather than failing the
// whole scan.
package recovery

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sync"
	"time"

	"asyncio/internal/critpath"
	"asyncio/internal/metrics"
	"asyncio/internal/vclock"
)

// recordMagic opens every journal record ("WJAL" little-endian).
const recordMagic uint32 = 0x4C414A57

// Decode limits: a record that claims more than this is corrupt, not
// merely large. Paths are already capped at 64 KiB by the u16 length.
const (
	maxRuns        = 1 << 20
	maxPayloadSize = 1 << 31
)

// Run is one maximal contiguous run of journaled elements in the
// dataset's row-major linear element space (the same coordinates
// Dataspace.EachRun yields).
type Run struct {
	Off uint64 // first element
	N   uint64 // run length in elements
}

// Record is one journaled write. Payload, when captured, holds the
// packed element bytes in run order; without it the scanner can locate
// the write but not verify or replay it.
type Record struct {
	Seq      uint64
	Path     string // absolute dataset path, e.g. "/Timestep_3/x"
	ElemSize uint32
	Runs     []Run
	Payload  []byte // nil when payload capture is off
}

// Elems returns the total journaled element count.
func (r *Record) Elems() uint64 {
	var n uint64
	for _, run := range r.Runs {
		n += run.N
	}
	return n
}

// NBytes returns the total journaled byte count.
func (r *Record) NBytes() int64 { return int64(r.Elems()) * int64(r.ElemSize) }

// flag bits in the record header.
const flagPayload = 1 << 0

// ErrCorruptJournal is wrapped by every decode failure, so callers can
// errors.Is against a single sentinel.
var ErrCorruptJournal = errors.New("recovery: corrupt journal")

// JournalError reports where and why journal decoding stopped. It wraps
// ErrCorruptJournal.
type JournalError struct {
	Off    int64 // byte offset of the failed record
	Reason string
}

func (e *JournalError) Error() string {
	return fmt.Sprintf("recovery: corrupt journal at byte %d: %s", e.Off, e.Reason)
}

func (e *JournalError) Unwrap() error { return ErrCorruptJournal }

// Cost models the synchronous append charge: AppendLatency per record
// plus record-bytes / Bandwidth (bytes per second). A zero Cost makes
// appends free.
type Cost struct {
	AppendLatency time.Duration
	Bandwidth     float64
}

// DefaultCost approximates a local NVMe log device.
func DefaultCost() Cost {
	return Cost{AppendLatency: 10 * time.Microsecond, Bandwidth: 3e9}
}

// Journal is an append-only write-ahead log. Safe for concurrent use by
// multiple rank processes; records are sequenced in append order.
type Journal struct {
	cost Cost

	mu  sync.Mutex
	buf []byte
	seq uint64

	// Pay-for-use instruments; nil-safe when never registered.
	mRecords *metrics.Counter
	mBytes   *metrics.Counter

	crit *critpath.Recorder
}

// SetCrit attaches the critical-path recorder; charged appends record
// fsync-journal edges. Call once, before the run.
func (j *Journal) SetCrit(rec *critpath.Recorder) {
	if j == nil {
		return
	}
	j.crit = rec
}

// NewJournal returns an empty journal with the given append cost.
func NewJournal(cost Cost) *Journal { return &Journal{cost: cost} }

// Instrument registers append counters under "recovery.<name>.journal.*".
func (j *Journal) Instrument(m *metrics.Registry, name string) {
	prefix := "recovery." + name + ".journal."
	j.mRecords = m.Counter(prefix + "records")
	j.mBytes = m.Counter(prefix + "bytes")
}

// Append encodes rec, charges p the modeled log-write cost, and appends
// the record. The sequence number is assigned here (rec.Seq is
// overwritten) so concurrent ranks get a total order.
func (j *Journal) Append(p *vclock.Proc, rec *Record) error {
	if len(rec.Path) > math.MaxUint16 {
		return fmt.Errorf("recovery: journal path %d bytes exceeds limit %d", len(rec.Path), math.MaxUint16)
	}
	if len(rec.Runs) > maxRuns {
		return fmt.Errorf("recovery: journal record has %d runs, limit %d", len(rec.Runs), maxRuns)
	}
	if len(rec.Payload) > maxPayloadSize {
		return fmt.Errorf("recovery: journal payload %d bytes exceeds limit %d", len(rec.Payload), maxPayloadSize)
	}
	size := recordSize(rec)
	// Charge before taking the lock: a virtual-time sleep under a real
	// mutex would stall every other appending rank for wall-clock time.
	if p != nil {
		d := j.cost.AppendLatency
		if j.cost.Bandwidth > 0 {
			d += time.Duration(float64(size) / j.cost.Bandwidth * float64(time.Second))
		}
		if d > 0 {
			start := p.Now()
			p.Sleep(d)
			j.crit.Record(critpath.Edge{
				Track: p.Name(), Cause: critpath.FsyncJournal, Subsystem: "recovery",
				Detail: "journal-append", Start: start, End: p.Now(), Bytes: int64(size),
			})
		}
	}
	j.mu.Lock()
	j.seq++
	rec.Seq = j.seq
	j.buf = appendRecord(j.buf, rec)
	j.mu.Unlock()
	j.mRecords.Add(1)
	j.mBytes.Add(int64(size))
	return nil
}

// Bytes returns a copy of the current log contents.
func (j *Journal) Bytes() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]byte(nil), j.buf...)
}

// Len returns the log size in bytes.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.buf)
}

// Records returns how many records have been appended.
func (j *Journal) Records() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Reset truncates the log, e.g. after a durable checkpoint makes all
// journaled writes redundant.
func (j *Journal) Reset() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.buf = j.buf[:0]
}

// recordSize returns the encoded size of rec in bytes.
func recordSize(rec *Record) int {
	// magic u32, seq u64, flags u8, pathLen u16, path, elemSize u32,
	// nRuns u32, runs 16B each, [payloadLen u64, payload], crc u32.
	n := 4 + 8 + 1 + 2 + len(rec.Path) + 4 + 4 + 16*len(rec.Runs) + 4
	if rec.Payload != nil {
		n += 8 + len(rec.Payload)
	}
	return n
}

// appendRecord encodes rec onto buf. Layout is little-endian with a
// trailing CRC32 (IEEE) over everything from the magic through the
// payload.
func appendRecord(buf []byte, rec *Record) []byte {
	start := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, recordMagic)
	buf = binary.LittleEndian.AppendUint64(buf, rec.Seq)
	var flags byte
	if rec.Payload != nil {
		flags |= flagPayload
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(rec.Path)))
	buf = append(buf, rec.Path...)
	buf = binary.LittleEndian.AppendUint32(buf, rec.ElemSize)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Runs)))
	for _, run := range rec.Runs {
		buf = binary.LittleEndian.AppendUint64(buf, run.Off)
		buf = binary.LittleEndian.AppendUint64(buf, run.N)
	}
	if rec.Payload != nil {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(rec.Payload)))
		buf = append(buf, rec.Payload...)
	}
	crc := crc32.ChecksumIEEE(buf[start:])
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// DecodeJournal parses a journal image. It returns every record up to
// the first corruption; err is nil for a clean log and a *JournalError
// (wrapping ErrCorruptJournal) when the tail is torn, truncated, or
// fails its checksum. Decoding never panics on hostile input.
func DecodeJournal(b []byte) (recs []Record, err error) {
	off := 0
	for off < len(b) {
		rec, n, derr := decodeRecord(b[off:])
		if derr != "" {
			return recs, &JournalError{Off: int64(off), Reason: derr}
		}
		recs = append(recs, rec)
		off += n
	}
	return recs, nil
}

// decodeRecord parses one record from the front of b, returning the
// record, its encoded length, and a non-empty reason on failure.
func decodeRecord(b []byte) (rec Record, n int, reason string) {
	const fixedHead = 4 + 8 + 1 + 2 // magic, seq, flags, pathLen
	if len(b) < fixedHead {
		return rec, 0, "truncated header"
	}
	if binary.LittleEndian.Uint32(b) != recordMagic {
		return rec, 0, "bad record magic"
	}
	rec.Seq = binary.LittleEndian.Uint64(b[4:])
	flags := b[12]
	if flags&^byte(flagPayload) != 0 {
		return rec, 0, fmt.Sprintf("unknown flag bits %#x", flags)
	}
	pathLen := int(binary.LittleEndian.Uint16(b[13:]))
	off := fixedHead
	if len(b) < off+pathLen+8 {
		return rec, 0, "truncated path"
	}
	rec.Path = string(b[off : off+pathLen])
	off += pathLen
	rec.ElemSize = binary.LittleEndian.Uint32(b[off:])
	nRuns := int(binary.LittleEndian.Uint32(b[off+4:]))
	off += 8
	if nRuns > maxRuns {
		return rec, 0, fmt.Sprintf("implausible run count %d", nRuns)
	}
	if len(b)-off < 16*nRuns {
		return rec, 0, "truncated run list"
	}
	var totalElems uint64
	rec.Runs = make([]Run, nRuns)
	for i := range rec.Runs {
		rec.Runs[i] = Run{
			Off: binary.LittleEndian.Uint64(b[off:]),
			N:   binary.LittleEndian.Uint64(b[off+8:]),
		}
		off += 16
		if rec.Runs[i].N > math.MaxUint64-totalElems {
			return rec, 0, "element count overflow"
		}
		totalElems += rec.Runs[i].N
	}
	if flags&flagPayload != 0 {
		if len(b) < off+8 {
			return rec, 0, "truncated payload length"
		}
		payloadLen := binary.LittleEndian.Uint64(b[off:])
		off += 8
		if payloadLen > maxPayloadSize {
			return rec, 0, fmt.Sprintf("implausible payload size %d", payloadLen)
		}
		want := totalElems * uint64(rec.ElemSize)
		if totalElems != 0 && want/totalElems != uint64(rec.ElemSize) {
			return rec, 0, "payload size overflow"
		}
		if payloadLen != want {
			return rec, 0, fmt.Sprintf("payload %d bytes, runs describe %d", payloadLen, want)
		}
		if uint64(len(b)-off) < payloadLen {
			return rec, 0, "truncated payload"
		}
		rec.Payload = append([]byte(nil), b[off:off+int(payloadLen)]...)
		off += int(payloadLen)
	}
	if len(b) < off+4 {
		return rec, 0, "truncated checksum"
	}
	want := binary.LittleEndian.Uint32(b[off:])
	if crc := crc32.ChecksumIEEE(b[:off]); crc != want {
		return rec, 0, fmt.Sprintf("checksum mismatch: have %#x want %#x", crc, want)
	}
	return rec, off + 4, ""
}
