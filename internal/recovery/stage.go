package recovery

import (
	"asyncio/internal/ioreq"
	"asyncio/internal/vclock"
)

// JournalStage is an ioreq pipeline stage that appends a write-ahead
// record for every write request before passing it downstream. Placed
// in an asynchronous connector's inline (caller-side) pipeline it gives
// WAL semantics: the journal append is charged synchronously to the
// issuing rank, so by the time the data write is queued in the
// background the log already describes it.
type JournalStage struct {
	j       *Journal
	capture bool
}

// NewJournalStage wraps j as a pipeline stage. capturePayload controls
// whether element bytes are copied into the log (enabling post-crash
// verification and replay) or only the extent map is recorded (cheaper,
// classification only).
func NewJournalStage(j *Journal, capturePayload bool) *JournalStage {
	return &JournalStage{j: j, capture: capturePayload}
}

// Journal returns the underlying log.
func (s *JournalStage) Journal() *Journal { return s.j }

// Name implements ioreq.Stage.
func (s *JournalStage) Name() string { return "journal" }

// Process journals write requests, then forwards every request
// unchanged. Reads pass through without a log entry.
func (s *JournalStage) Process(req *ioreq.Request, next func(*ioreq.Request) error) error {
	if req.Op.IsWrite() && req.Dataset != nil {
		rec := Record{
			Path:     req.Dataset.Path(),
			ElemSize: req.Dataset.Dtype().Size,
		}
		if req.Space == nil {
			rec.Runs = []Run{{Off: 0, N: req.Dataset.Space().Extent()}}
		} else {
			// EachRun cannot fail: the callback below is infallible.
			_ = req.Space.EachRun(func(off, n uint64) error {
				rec.Runs = append(rec.Runs, Run{Off: off, N: n})
				return nil
			})
		}
		if s.capture && req.Buf != nil {
			// Append encodes immediately, so referencing the caller's
			// buffer without copying is safe.
			rec.Payload = req.Buf
		}
		if err := s.j.Append(req.Proc, &rec); err != nil {
			return err
		}
	}
	return next(req)
}

// Flush implements ioreq.Stage. The journal buffers no requests, so
// there is nothing to emit downstream.
func (s *JournalStage) Flush(p *vclock.Proc, next func(*ioreq.Request) error) error {
	return nil
}
