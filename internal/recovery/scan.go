package recovery

import (
	"bytes"
	"fmt"

	"asyncio/internal/hdf5"
)

// Class is the post-crash disposition of one journaled write.
type Class uint8

const (
	// ClassCommitted: the surviving image already holds the journaled
	// bytes in full.
	ClassCommitted Class = iota
	// ClassTorn: the image holds a different (partial or stale) version
	// of the extent; with a payload on record it is replayable.
	ClassTorn
	// ClassLost: the extent cannot be located at all — the dataset is
	// missing, unreadable, or its shape/type no longer matches.
	ClassLost
	// ClassUnverified: the record carries no payload, so the extent can
	// be located but not checked or replayed.
	ClassUnverified
)

func (c Class) String() string {
	switch c {
	case ClassCommitted:
		return "committed"
	case ClassTorn:
		return "torn"
	case ClassLost:
		return "lost"
	case ClassUnverified:
		return "unverified"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// RecordOutcome is the scanner's verdict on one journal record.
type RecordOutcome struct {
	Seq      uint64
	Path     string
	Bytes    int64
	Class    Class
	Replayed bool
	// Detail explains non-committed verdicts ("dataset missing", the
	// read error, ...).
	Detail string
}

// Report summarizes a post-crash scan.
type Report struct {
	Outcomes []RecordOutcome

	Committed, Torn, Lost, Unverified int
	Replayed                          int

	BytesCommitted, BytesTorn, BytesLost int64
	BytesReplayed                        int64

	// JournalError is non-empty when the log itself was torn; records
	// before the tear are still scanned.
	JournalError string
	// ImageError is non-empty when the file image could not be opened
	// (e.g. the superblock was never flushed); every record is then
	// classified lost.
	ImageError string
}

// Summary renders a one-line human-readable digest.
func (r *Report) Summary() string {
	return fmt.Sprintf("%d committed, %d torn (%d replayed), %d lost, %d unverified",
		r.Committed, r.Torn, r.Replayed, r.Lost, r.Unverified)
}

// Clean reports whether every journaled write survived or was restored:
// no lost extents and no torn extents left unreplayed.
func (r *Report) Clean() bool {
	return r.Lost == 0 && r.Torn == r.Replayed && r.ImageError == ""
}

func (r *Report) add(o RecordOutcome) {
	switch o.Class {
	case ClassCommitted:
		r.Committed++
		r.BytesCommitted += o.Bytes
	case ClassTorn:
		r.Torn++
		r.BytesTorn += o.Bytes
		if o.Replayed {
			r.Replayed++
			r.BytesReplayed += o.Bytes
		}
	case ClassLost:
		r.Lost++
		r.BytesLost += o.Bytes
	case ClassUnverified:
		r.Unverified++
	}
	r.Outcomes = append(r.Outcomes, o)
}

// ScanOptions configures Scan.
type ScanOptions struct {
	// Replay writes each torn record's payload back into the image, in
	// journal order, and flushes the container afterwards.
	Replay bool
}

// maxPointReplay bounds the per-element selection fallback used for
// datasets of rank > 1, where a linear run is not a hyperslab. Larger
// runs on such datasets are reported unverified rather than scanned one
// element at a time.
const maxPointReplay = 1 << 16

// Scan checks a journal against a post-crash file image and classifies
// every record. Records are processed in journal order, so with Replay
// set the image converges to the last journaled version of every extent
// even when records overlap (an earlier overwritten record classifies
// as torn, then the later record restores the final bytes). Scan never
// panics on corrupt input: a torn log tail or unopenable image is
// reported in the corresponding Report field.
func Scan(journal []byte, store hdf5.Store, opts ScanOptions) *Report {
	rep := &Report{}
	recs, jerr := DecodeJournal(journal)
	if jerr != nil {
		rep.JournalError = jerr.Error()
	}
	if len(recs) == 0 {
		return rep
	}
	f, err := hdf5.Open(store)
	if err != nil {
		rep.ImageError = err.Error()
		for i := range recs {
			rep.add(RecordOutcome{
				Seq: recs[i].Seq, Path: recs[i].Path, Bytes: recs[i].NBytes(),
				Class: ClassLost, Detail: "image unopenable",
			})
		}
		return rep
	}
	replayed := false
	for i := range recs {
		o := scanRecord(f, &recs[i], opts.Replay)
		replayed = replayed || o.Replayed
		rep.add(o)
	}
	if replayed {
		// Make the restored bytes part of the image. Flush errors are
		// surfaced as an image problem; the classification stands.
		if err := f.Flush(nil); err != nil && rep.ImageError == "" {
			rep.ImageError = fmt.Sprintf("flushing replayed writes: %v", err)
		}
	}
	return rep
}

// scanRecord classifies one record against the open image.
func scanRecord(f *hdf5.File, rec *Record, replay bool) RecordOutcome {
	o := RecordOutcome{Seq: rec.Seq, Path: rec.Path, Bytes: rec.NBytes()}
	ds, err := f.Root().OpenDataset(nil, rec.Path)
	if err != nil {
		o.Class = ClassLost
		o.Detail = fmt.Sprintf("opening dataset: %v", err)
		return o
	}
	if got := ds.Dtype().Size; got != rec.ElemSize {
		o.Class = ClassLost
		o.Detail = fmt.Sprintf("element size %d on disk, %d journaled", got, rec.ElemSize)
		return o
	}
	if rec.Payload == nil {
		o.Class = ClassUnverified
		return o
	}
	// Read the journaled extents back and compare run by run.
	cursor := 0
	torn := false
	for _, run := range rec.Runs {
		runBytes := int(run.N) * int(rec.ElemSize)
		want := rec.Payload[cursor : cursor+runBytes]
		cursor += runBytes
		got := make([]byte, runBytes)
		sel, selErr := runSelection(ds, run)
		if selErr != nil {
			o.Class = ClassUnverified
			o.Detail = selErr.Error()
			return o
		}
		if err := ds.Read(nil, sel, got); err != nil {
			o.Class = ClassLost
			o.Detail = fmt.Sprintf("reading [%d,+%d): %v", run.Off, run.N, err)
			return o
		}
		if !bytes.Equal(got, want) {
			torn = true
		}
	}
	if !torn {
		o.Class = ClassCommitted
		return o
	}
	o.Class = ClassTorn
	if !replay {
		return o
	}
	cursor = 0
	for _, run := range rec.Runs {
		runBytes := int(run.N) * int(rec.ElemSize)
		part := rec.Payload[cursor : cursor+runBytes]
		cursor += runBytes
		sel, selErr := runSelection(ds, run)
		if selErr != nil {
			o.Detail = selErr.Error()
			return o
		}
		if err := ds.Write(nil, sel, part); err != nil {
			o.Detail = fmt.Sprintf("replaying [%d,+%d): %v", run.Off, run.N, err)
			return o
		}
	}
	o.Replayed = true
	return o
}

// runSelection builds a file-space selection covering one linear
// element run. Rank-1 datasets use a hyperslab; higher ranks fall back
// to an explicit point list (bounded by maxPointReplay) because an
// arbitrary linear run is not a hyperslab in row-major N-D space.
func runSelection(ds *hdf5.Dataset, run Run) (*hdf5.Dataspace, error) {
	space := ds.Space()
	dims := space.Dims()
	if len(dims) == 1 {
		if err := space.SelectHyperslab([]uint64{run.Off}, nil, []uint64{run.N}, nil); err != nil {
			return nil, fmt.Errorf("selecting [%d,+%d): %w", run.Off, run.N, err)
		}
		return space, nil
	}
	if run.N > maxPointReplay {
		return nil, fmt.Errorf("run of %d elements on rank-%d dataset exceeds point-selection limit %d",
			run.N, len(dims), maxPointReplay)
	}
	points := make([][]uint64, 0, run.N)
	for i := uint64(0); i < run.N; i++ {
		points = append(points, unflatten(run.Off+i, dims))
	}
	if err := space.SelectPoints(points); err != nil {
		return nil, fmt.Errorf("selecting %d points: %w", len(points), err)
	}
	return space, nil
}

// unflatten converts a row-major linear element index to coordinates.
func unflatten(idx uint64, dims []uint64) []uint64 {
	coord := make([]uint64, len(dims))
	for d := len(dims) - 1; d >= 0; d-- {
		coord[d] = idx % dims[d]
		idx /= dims[d]
	}
	return coord
}
