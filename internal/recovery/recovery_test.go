package recovery

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"asyncio/internal/hdf5"
	"asyncio/internal/vclock"
)

// Journal round trip: appended records decode back identically, with
// monotonically assigned sequence numbers.
func TestJournalRoundTrip(t *testing.T) {
	j := NewJournal(Cost{})
	recs := []Record{
		{Path: "/Step#0/x", ElemSize: 4, Runs: []Run{{0, 8}}, Payload: bytes.Repeat([]byte{1}, 32)},
		{Path: "/Step#0/y", ElemSize: 4, Runs: []Run{{8, 4}, {16, 4}}, Payload: bytes.Repeat([]byte{2}, 32)},
		{Path: "/Step#1/z", ElemSize: 8, Runs: []Run{{2, 3}}}, // no payload
	}
	for i := range recs {
		if err := j.Append(nil, &recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := DecodeJournal(j.Bytes())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d seq = %d, want %d", i, r.Seq, i+1)
		}
		if r.Path != recs[i].Path || r.ElemSize != recs[i].ElemSize {
			t.Errorf("record %d header mismatch: %+v", i, r)
		}
		if len(r.Runs) != len(recs[i].Runs) {
			t.Errorf("record %d runs = %v", i, r.Runs)
		}
		if !bytes.Equal(r.Payload, recs[i].Payload) {
			t.Errorf("record %d payload mismatch", i)
		}
	}
	if n := j.Records(); n != 3 {
		t.Fatalf("Records() = %d, want 3", n)
	}
}

// Appends charge the writing process the modeled log cost.
func TestJournalAppendCharges(t *testing.T) {
	j := NewJournal(Cost{AppendLatency: time.Millisecond})
	clk := vclock.New()
	var elapsed time.Duration
	clk.Go("rank", func(p *vclock.Proc) {
		rec := Record{Path: "/d", ElemSize: 1, Runs: []Run{{0, 4}}, Payload: []byte{1, 2, 3, 4}}
		if err := j.Append(p, &rec); err != nil {
			t.Error(err)
		}
		elapsed = p.Now()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	if elapsed != time.Millisecond {
		t.Fatalf("append charged %v, want 1ms", elapsed)
	}
}

// A truncated journal yields the records before the tear plus a typed
// error wrapping ErrCorruptJournal; a bit flip fails the checksum.
func TestDecodeJournalCorruption(t *testing.T) {
	j := NewJournal(Cost{})
	for i := 0; i < 3; i++ {
		rec := Record{Path: "/d", ElemSize: 4, Runs: []Run{{0, 2}}, Payload: bytes.Repeat([]byte{byte(i)}, 8)}
		if err := j.Append(nil, &rec); err != nil {
			t.Fatal(err)
		}
	}
	full := j.Bytes()

	trunc := full[:len(full)-5]
	recs, err := DecodeJournal(trunc)
	if len(recs) != 2 {
		t.Fatalf("truncated decode: %d records, want 2", len(recs))
	}
	if !errors.Is(err, ErrCorruptJournal) {
		t.Fatalf("truncated decode error = %v, want ErrCorruptJournal", err)
	}
	var jerr *JournalError
	if !errors.As(err, &jerr) {
		t.Fatalf("error %T is not *JournalError", err)
	}

	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/2] ^= 0x80
	_, err = DecodeJournal(flipped)
	if !errors.Is(err, ErrCorruptJournal) {
		t.Fatalf("bit-flipped decode error = %v, want ErrCorruptJournal", err)
	}

	if _, err := DecodeJournal(nil); err != nil {
		t.Fatalf("empty journal decode error = %v, want nil", err)
	}
}

// makeImage builds a small container with one 16-element float32
// dataset under /g/d and returns its store.
func makeImage(t *testing.T, payload []byte) *hdf5.MemStore {
	t.Helper()
	store := hdf5.NewMemStore()
	f, err := hdf5.Create(store)
	if err != nil {
		t.Fatal(err)
	}
	g, err := f.Root().CreateGroup(nil, "g")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := g.CreateDataset(nil, "d", hdf5.F32, hdf5.MustSimple(16), nil)
	if err != nil {
		t.Fatal(err)
	}
	if payload != nil {
		if err := ds.Write(nil, nil, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(nil); err != nil {
		t.Fatal(err)
	}
	return store
}

func journalOne(t *testing.T, rec Record) []byte {
	t.Helper()
	j := NewJournal(Cost{})
	if err := j.Append(nil, &rec); err != nil {
		t.Fatal(err)
	}
	return j.Bytes()
}

// Scan classifies: intact extent → committed; altered extent → torn
// (and replayed on request); missing dataset → lost; no payload →
// unverified.
func TestScanClassification(t *testing.T) {
	want := bytes.Repeat([]byte{0x11}, 64)

	t.Run("committed", func(t *testing.T) {
		store := makeImage(t, want)
		jb := journalOne(t, Record{Path: "/g/d", ElemSize: 4, Runs: []Run{{0, 16}}, Payload: want})
		rep := Scan(jb, store, ScanOptions{})
		if rep.Committed != 1 || rep.Torn != 0 || rep.Lost != 0 {
			t.Fatalf("got %s", rep.Summary())
		}
		if !rep.Clean() {
			t.Fatal("Clean() = false for a fully committed image")
		}
	})

	t.Run("torn-and-replayed", func(t *testing.T) {
		torn := append([]byte(nil), want...)
		for i := 32; i < 64; i++ {
			torn[i] = 0 // second half never reached the image
		}
		store := makeImage(t, torn)
		jb := journalOne(t, Record{Path: "/g/d", ElemSize: 4, Runs: []Run{{0, 16}}, Payload: want})

		rep := Scan(jb, store, ScanOptions{})
		if rep.Torn != 1 || rep.Replayed != 0 {
			t.Fatalf("no-replay scan: %s", rep.Summary())
		}
		if rep.Clean() {
			t.Fatal("Clean() = true with an unreplayed torn record")
		}

		rep = Scan(jb, store, ScanOptions{Replay: true})
		if rep.Torn != 1 || rep.Replayed != 1 {
			t.Fatalf("replay scan: %s", rep.Summary())
		}
		if !rep.Clean() {
			t.Fatal("Clean() = false after replay")
		}
		// The image now holds the journaled bytes.
		rep = Scan(jb, store, ScanOptions{})
		if rep.Committed != 1 {
			t.Fatalf("post-replay scan: %s", rep.Summary())
		}
	})

	t.Run("lost", func(t *testing.T) {
		store := makeImage(t, want)
		jb := journalOne(t, Record{Path: "/g/missing", ElemSize: 4, Runs: []Run{{0, 16}}, Payload: want})
		rep := Scan(jb, store, ScanOptions{Replay: true})
		if rep.Lost != 1 {
			t.Fatalf("got %s", rep.Summary())
		}
	})

	t.Run("unverified", func(t *testing.T) {
		store := makeImage(t, want)
		jb := journalOne(t, Record{Path: "/g/d", ElemSize: 4, Runs: []Run{{0, 16}}})
		rep := Scan(jb, store, ScanOptions{})
		if rep.Unverified != 1 {
			t.Fatalf("got %s", rep.Summary())
		}
	})

	t.Run("elem-size-mismatch", func(t *testing.T) {
		store := makeImage(t, want)
		jb := journalOne(t, Record{Path: "/g/d", ElemSize: 8, Runs: []Run{{0, 8}}, Payload: want})
		rep := Scan(jb, store, ScanOptions{})
		if rep.Lost != 1 {
			t.Fatalf("got %s", rep.Summary())
		}
	})

	t.Run("unopenable-image", func(t *testing.T) {
		store := hdf5.NewMemStore() // no superblock at all
		jb := journalOne(t, Record{Path: "/g/d", ElemSize: 4, Runs: []Run{{0, 16}}, Payload: want})
		rep := Scan(jb, store, ScanOptions{Replay: true})
		if rep.ImageError == "" || rep.Lost != 1 {
			t.Fatalf("got %s (image error %q)", rep.Summary(), rep.ImageError)
		}
	})
}

// Multi-run records verify and replay per run.
func TestScanMultiRunReplay(t *testing.T) {
	want := bytes.Repeat([]byte{0x22}, 64)
	store := makeImage(t, nil) // dataset exists, all zeros
	jb := journalOne(t, Record{
		Path:     "/g/d",
		ElemSize: 4,
		Runs:     []Run{{0, 4}, {8, 4}, {12, 4}},
		Payload:  bytes.Repeat([]byte{0x22}, 48),
	})
	rep := Scan(jb, store, ScanOptions{Replay: true})
	if rep.Torn != 1 || rep.Replayed != 1 {
		t.Fatalf("got %s", rep.Summary())
	}
	f, err := hdf5.Open(store)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := f.Root().OpenDataset(nil, "g/d")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64)
	if err := ds.Read(nil, nil, got); err != nil {
		t.Fatal(err)
	}
	for _, elems := range [][2]int{{0, 4}, {8, 4}, {12, 4}} {
		off, n := elems[0]*4, elems[1]*4
		if !bytes.Equal(got[off:off+n], want[off:off+n]) {
			t.Fatalf("elements [%d,+%d) not replayed", elems[0], elems[1])
		}
	}
	if !bytes.Equal(got[16:32], make([]byte, 16)) {
		t.Fatal("unjournaled elements [4,8) were overwritten by replay")
	}
}

// A torn journal tail still scans the intact prefix.
func TestScanTornJournalTail(t *testing.T) {
	want := bytes.Repeat([]byte{0x33}, 64)
	store := makeImage(t, want)
	j := NewJournal(Cost{})
	r1 := Record{Path: "/g/d", ElemSize: 4, Runs: []Run{{0, 16}}, Payload: want}
	r2 := Record{Path: "/g/d", ElemSize: 4, Runs: []Run{{0, 16}}, Payload: want}
	if err := j.Append(nil, &r1); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(nil, &r2); err != nil {
		t.Fatal(err)
	}
	jb := j.Bytes()
	rep := Scan(jb[:len(jb)-3], store, ScanOptions{})
	if rep.JournalError == "" {
		t.Fatal("JournalError empty for a torn log")
	}
	if rep.Committed != 1 {
		t.Fatalf("got %s", rep.Summary())
	}
}

// Reset truncates; appends after Reset restart cleanly.
func TestJournalReset(t *testing.T) {
	j := NewJournal(Cost{})
	rec := Record{Path: "/d", ElemSize: 1, Runs: []Run{{0, 1}}, Payload: []byte{9}}
	if err := j.Append(nil, &rec); err != nil {
		t.Fatal(err)
	}
	j.Reset()
	if j.Len() != 0 {
		t.Fatalf("Len after Reset = %d", j.Len())
	}
	if err := j.Append(nil, &rec); err != nil {
		t.Fatal(err)
	}
	recs, err := DecodeJournal(j.Bytes())
	if err != nil || len(recs) != 1 {
		t.Fatalf("decode after Reset: %d records, err %v", len(recs), err)
	}
}
