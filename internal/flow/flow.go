// Package flow implements a processor-sharing bandwidth server on the
// virtual clock.
//
// A Server models a shared resource — a parallel file system's aggregate
// bandwidth, a node's DRAM copy bandwidth, a GPU link — that concurrent
// transfers divide among themselves. The aggregate capacity is a function
// of the number of active flows, which lets system models express
// scaling effects (more clients extract more bandwidth from GPFS/Lustre
// until the backend saturates). Individual flows may additionally be
// rate-capped (e.g. by a node's injection bandwidth); spare capacity is
// redistributed to uncapped flows by water-filling.
//
// The simulation is an exact processor-sharing discrete-event model:
// per-flow rates are piecewise constant between arrivals and departures,
// and the completion timer is recomputed on every state change.
package flow

import (
	"math"
	"sync"
	"time"

	"asyncio/internal/vclock"
)

// Capacity returns the aggregate service rate in bytes/second available
// when n flows are active. It must be positive for n >= 1.
type Capacity func(n int) float64

// ConstCapacity returns a Capacity with a fixed aggregate rate.
func ConstCapacity(bytesPerSec float64) Capacity {
	return func(int) float64 { return bytesPerSec }
}

// LinearCapacity scales per-flow bandwidth linearly up to an aggregate
// ceiling: min(n*perFlow, ceiling).
func LinearCapacity(perFlow, ceiling float64) Capacity {
	return func(n int) float64 {
		return math.Min(float64(n)*perFlow, ceiling)
	}
}

// completion tolerance, in bytes. Flows whose remaining volume falls
// below this are considered finished; it absorbs float rounding across
// rate recomputations.
const epsBytes = 1e-3

// Server is a processor-sharing bandwidth server. Construct with
// NewServer.
type Server struct {
	mu    sync.Mutex
	clk   *vclock.Clock
	capFn Capacity
	// flows is kept in arrival order. Iteration order is observable —
	// completion fires per-flow events, and water-filling accumulates
	// floating-point remainders — so it must not vary between runs the
	// way map iteration does.
	flows []*flowState
	timer *vclock.Timer
	last  time.Duration // virtual time of the last rate recomputation
	// pending marks a zero-delay rebalance already scheduled for the
	// current instant. Arrivals are batched through it: when thousands
	// of ranks start transfers at the same virtual time (a barrier-
	// synced I/O phase), rates are recomputed once for the whole batch
	// instead of once per arrival — the difference between O(n) and
	// O(n²) work per phase.
	pending bool
}

type flowState struct {
	remaining float64 // bytes left to serve
	maxRate   float64 // per-flow cap in bytes/sec; 0 means uncapped
	rate      float64 // current allocated rate
	done      *vclock.Event
}

// NewServer returns a Server on clk with the given capacity function.
func NewServer(clk *vclock.Clock, capFn Capacity) *Server {
	return &Server{clk: clk, capFn: capFn}
}

// Active returns the number of in-flight flows.
func (s *Server) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.flows)
}

// Transfer serves a flow of the given size, blocking p in virtual time
// until it completes. It returns the virtual time the transfer took.
// Transfers of non-positive size complete immediately.
func (s *Server) Transfer(p *vclock.Proc, bytes int64) time.Duration {
	return s.TransferLimited(p, bytes, 0)
}

// TransferLimited is Transfer with a per-flow rate cap in bytes/second.
// A cap of zero means uncapped.
func (s *Server) TransferLimited(p *vclock.Proc, bytes int64, maxRate float64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	start := p.Now()
	f := &flowState{
		remaining: float64(bytes),
		maxRate:   maxRate,
		done:      vclock.NewEvent(p.Clock()),
	}
	s.mu.Lock()
	s.advanceLocked(start)
	s.flows = append(s.flows, f)
	if !s.pending {
		s.pending = true
		s.clk.AfterFunc(0, s.onRebalance)
	}
	s.mu.Unlock()
	f.done.Wait(p)
	return p.Now() - start
}

// onRebalance runs once per instant with batched arrivals and
// recomputes the allocation.
func (s *Server) onRebalance(now time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending = false
	s.advanceLocked(now)
	s.rescheduleLocked(now)
}

// advanceLocked drains served bytes for the interval [s.last, now] at the
// rates allocated at s.last, then moves the accounting point to now.
func (s *Server) advanceLocked(now time.Duration) {
	if now <= s.last {
		return
	}
	dt := (now - s.last).Seconds()
	for _, f := range s.flows {
		f.remaining -= f.rate * dt
	}
	s.last = now
}

// rescheduleLocked fires finished flows, reallocates rates, and arms the
// completion timer for the next departure.
func (s *Server) rescheduleLocked(now time.Duration) {
	live := s.flows[:0]
	for _, f := range s.flows {
		if f.remaining <= epsBytes {
			f.done.Fire()
		} else {
			live = append(live, f)
		}
	}
	for i := len(live); i < len(s.flows); i++ {
		s.flows[i] = nil
	}
	s.flows = live
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	if len(s.flows) == 0 {
		return
	}
	s.allocateLocked()
	next := math.Inf(1)
	for _, f := range s.flows {
		if f.rate <= 0 {
			continue
		}
		if t := f.remaining / f.rate; t < next {
			next = t
		}
	}
	if math.IsInf(next, 1) {
		// Every flow is stalled at rate zero; nothing to schedule. This
		// only happens with a zero capacity function, which is a model
		// configuration error surfaced as a vclock deadlock.
		return
	}
	d := time.Duration(next * float64(time.Second))
	if d < time.Nanosecond {
		d = time.Nanosecond
	}
	s.timer = s.clk.AfterFunc(d, s.onTimer)
}

func (s *Server) onTimer(now time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked(now)
	// Absorb sub-epsilon residue from Duration truncation: the earliest
	// flow may be a hair short of done. Treat anything within one
	// nanosecond of service as complete.
	minResidue := math.Inf(1)
	for _, f := range s.flows {
		if f.rate > 0 {
			if r := f.remaining / f.rate; r < minResidue {
				minResidue = r
			}
		}
	}
	if minResidue > 0 && minResidue*float64(time.Second) < 2 {
		for _, f := range s.flows {
			if f.rate > 0 && f.remaining/f.rate <= minResidue {
				f.remaining = 0
			}
		}
	}
	s.rescheduleLocked(now)
}

// allocateLocked distributes capFn(n) across flows by water-filling
// around per-flow caps.
func (s *Server) allocateLocked() {
	n := len(s.flows)
	capacity := s.capFn(n)
	uncapped := make([]*flowState, 0, n)
	for _, f := range s.flows {
		f.rate = 0
		uncapped = append(uncapped, f)
	}
	remaining := capacity
	for len(uncapped) > 0 {
		share := remaining / float64(len(uncapped))
		progressed := false
		next := uncapped[:0]
		for _, f := range uncapped {
			if f.maxRate > 0 && f.maxRate <= share {
				f.rate = f.maxRate
				remaining -= f.maxRate
				progressed = true
			} else {
				next = append(next, f)
			}
		}
		uncapped = next
		if !progressed {
			for _, f := range uncapped {
				f.rate = share
			}
			break
		}
	}
}
