package flow

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"asyncio/internal/vclock"
)

const MiB = 1 << 20

func run(t *testing.T, clk *vclock.Clock) {
	t.Helper()
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleTransferTime(t *testing.T) {
	clk := vclock.New()
	srv := NewServer(clk, ConstCapacity(100*MiB)) // 100 MiB/s
	var took time.Duration
	clk.Go("x", func(p *vclock.Proc) {
		took = srv.Transfer(p, 200*MiB)
	})
	run(t, clk)
	if got, want := took.Seconds(), 2.0; math.Abs(got-want) > 1e-6 {
		t.Fatalf("transfer took %vs, want %vs", got, want)
	}
}

func TestZeroBytesImmediate(t *testing.T) {
	clk := vclock.New()
	srv := NewServer(clk, ConstCapacity(MiB))
	clk.Go("x", func(p *vclock.Proc) {
		if d := srv.Transfer(p, 0); d != 0 {
			t.Errorf("zero-byte transfer took %v", d)
		}
		if d := srv.Transfer(p, -5); d != 0 {
			t.Errorf("negative transfer took %v", d)
		}
	})
	run(t, clk)
}

func TestTwoEqualFlowsShareBandwidth(t *testing.T) {
	clk := vclock.New()
	srv := NewServer(clk, ConstCapacity(100*MiB))
	var took [2]time.Duration
	for i := 0; i < 2; i++ {
		clk.Go("x", func(p *vclock.Proc) {
			took[i] = srv.Transfer(p, 100*MiB)
		})
	}
	run(t, clk)
	// Two flows share 100 MiB/s: each gets 50 MiB/s, both finish at 2s.
	for i, d := range took {
		if math.Abs(d.Seconds()-2.0) > 1e-6 {
			t.Errorf("flow %d took %vs, want 2s", i, d.Seconds())
		}
	}
}

func TestLateArrivalProcessorSharing(t *testing.T) {
	clk := vclock.New()
	srv := NewServer(clk, ConstCapacity(100*MiB))
	var first, second time.Duration
	clk.Go("a", func(p *vclock.Proc) {
		first = srv.Transfer(p, 100*MiB)
	})
	clk.Go("b", func(p *vclock.Proc) {
		p.Sleep(500 * time.Millisecond)
		second = srv.Transfer(p, 100*MiB)
	})
	run(t, clk)
	// Flow A runs alone for 0.5s (50 MiB done), then shares. Remaining 50
	// MiB at 50 MiB/s = 1s more: A finishes at 1.5s (duration 1.5s).
	// B then runs alone: it did 50 MiB in its first second, 50 MiB left at
	// full rate = 0.5s: B's duration = 1.5s.
	if math.Abs(first.Seconds()-1.5) > 1e-6 {
		t.Errorf("first flow took %vs, want 1.5s", first.Seconds())
	}
	if math.Abs(second.Seconds()-1.5) > 1e-6 {
		t.Errorf("second flow took %vs, want 1.5s", second.Seconds())
	}
}

func TestLinearCapacityScalesUntilCeiling(t *testing.T) {
	clk := vclock.New()
	// 10 MiB/s per flow up to 40 MiB/s aggregate.
	srv := NewServer(clk, LinearCapacity(10*MiB, 40*MiB))
	elapsed := make([]time.Duration, 8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		clk.Go("x", func(p *vclock.Proc) {
			defer wg.Done()
			elapsed[i] = srv.Transfer(p, 10*MiB)
		})
	}
	run(t, clk)
	wg.Wait()
	// 8 flows, aggregate capped at 40 MiB/s → each flow gets 5 MiB/s →
	// 10 MiB takes 2s.
	for i, d := range elapsed {
		if math.Abs(d.Seconds()-2.0) > 1e-6 {
			t.Errorf("flow %d took %vs, want 2s", i, d.Seconds())
		}
	}
}

func TestPerFlowRateCap(t *testing.T) {
	clk := vclock.New()
	srv := NewServer(clk, ConstCapacity(100*MiB))
	var capped, free time.Duration
	clk.Go("capped", func(p *vclock.Proc) {
		capped = srv.TransferLimited(p, 10*MiB, 10*MiB)
	})
	clk.Go("free", func(p *vclock.Proc) {
		free = srv.Transfer(p, 90*MiB)
	})
	run(t, clk)
	// Capped flow gets 10 MiB/s; the free flow water-fills the remaining
	// 90 MiB/s. Both finish at t=1s.
	if math.Abs(capped.Seconds()-1.0) > 1e-6 {
		t.Errorf("capped flow took %vs, want 1s", capped.Seconds())
	}
	if math.Abs(free.Seconds()-1.0) > 1e-6 {
		t.Errorf("free flow took %vs, want 1s", free.Seconds())
	}
}

func TestWaterFillingAllCapped(t *testing.T) {
	clk := vclock.New()
	srv := NewServer(clk, ConstCapacity(1000*MiB))
	var took [3]time.Duration
	for i := 0; i < 3; i++ {
		clk.Go("x", func(p *vclock.Proc) {
			took[i] = srv.TransferLimited(p, 10*MiB, 10*MiB)
		})
	}
	run(t, clk)
	for i, d := range took {
		if math.Abs(d.Seconds()-1.0) > 1e-6 {
			t.Errorf("flow %d took %vs, want 1s (rate cap binding)", i, d.Seconds())
		}
	}
}

func TestSequentialTransfersAccumulate(t *testing.T) {
	clk := vclock.New()
	srv := NewServer(clk, ConstCapacity(10*MiB))
	var end time.Duration
	clk.Go("x", func(p *vclock.Proc) {
		srv.Transfer(p, 10*MiB)
		srv.Transfer(p, 20*MiB)
		end = p.Now()
	})
	run(t, clk)
	if math.Abs(end.Seconds()-3.0) > 1e-6 {
		t.Fatalf("sequential transfers ended at %vs, want 3s", end.Seconds())
	}
}

func TestActiveCount(t *testing.T) {
	clk := vclock.New()
	srv := NewServer(clk, ConstCapacity(MiB))
	clk.Go("a", func(p *vclock.Proc) { srv.Transfer(p, MiB) })
	clk.Go("watch", func(p *vclock.Proc) {
		p.Sleep(100 * time.Millisecond)
		if n := srv.Active(); n != 1 {
			t.Errorf("Active = %d mid-transfer, want 1", n)
		}
		p.Sleep(2 * time.Second)
		if n := srv.Active(); n != 0 {
			t.Errorf("Active = %d after completion, want 0", n)
		}
	})
	run(t, clk)
}

func TestManyFlowsConserveWork(t *testing.T) {
	// N identical flows on a constant-capacity server must take exactly
	// N * (size/capacity) — processor sharing conserves total work.
	clk := vclock.New()
	const n = 50
	srv := NewServer(clk, ConstCapacity(100*MiB))
	var maxEnd time.Duration
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		clk.Go("x", func(p *vclock.Proc) {
			srv.Transfer(p, 2*MiB)
			mu.Lock()
			if p.Now() > maxEnd {
				maxEnd = p.Now()
			}
			mu.Unlock()
		})
	}
	run(t, clk)
	want := float64(n) * 2 / 100
	if math.Abs(maxEnd.Seconds()-want) > 1e-3 {
		t.Fatalf("last completion at %vs, want %vs", maxEnd.Seconds(), want)
	}
}

func TestStaggeredArrivalsConserveWork(t *testing.T) {
	clk := vclock.New()
	srv := NewServer(clk, ConstCapacity(64*MiB))
	const n = 16
	var mu sync.Mutex
	var totalBusy time.Duration
	var lastEnd time.Duration
	for i := 0; i < n; i++ {
		start := time.Duration(i) * 10 * time.Millisecond
		clk.Go("x", func(p *vclock.Proc) {
			p.Sleep(start)
			srv.Transfer(p, 8*MiB)
			mu.Lock()
			if p.Now() > lastEnd {
				lastEnd = p.Now()
			}
			mu.Unlock()
		})
	}
	run(t, clk)
	_ = totalBusy
	// Server is busy continuously from t=0: total work = 128 MiB at 64
	// MiB/s = 2s.
	if math.Abs(lastEnd.Seconds()-2.0) > 1e-3 {
		t.Fatalf("last completion at %vs, want 2s", lastEnd.Seconds())
	}
}

// TestWorkConservationProperty: for any batch of flows on a
// constant-capacity server, the last completion time equals total
// demand divided by capacity (processor sharing never idles while work
// remains), and no flow finishes before its fair minimum.
func TestWorkConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		clk := vclock.New()
		const capacity = 100 * MiB
		srv := NewServer(clk, ConstCapacity(capacity))
		n := rng.Intn(20) + 1
		var total int64
		var mu sync.Mutex
		var last time.Duration
		release := clk.Hold()
		for i := 0; i < n; i++ {
			size := int64(rng.Intn(64)+1) * MiB
			total += size
			clk.Go("f", func(p *vclock.Proc) {
				srv.Transfer(p, size)
				mu.Lock()
				if p.Now() > last {
					last = p.Now()
				}
				mu.Unlock()
			})
		}
		release()
		if err := clk.Wait(); err != nil {
			return false
		}
		want := float64(total) / capacity
		return math.Abs(last.Seconds()-want) < 1e-3*want+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
