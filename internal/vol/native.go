package vol

import (
	"errors"

	"asyncio/internal/hdf5"
	"asyncio/internal/ioreq"
	"asyncio/internal/vclock"
)

// defaultPipeline executes dataset I/O synchronously: validate →
// resolve → execute. Stateless, so one instance serves every Native
// connector that doesn't override it.
var defaultPipeline = ioreq.New()

// Native is the pass-through connector: every operation executes
// synchronously on the calling process, exactly like stock HDF5 without
// the async VOL loaded. The zero value is usable.
type Native struct {
	// Pipeline overrides the dataset data path. Nil uses the shared
	// default (validate → resolve → execute). Supplying e.g.
	// ioreq.New(ioreq.NewAgg(cfg)) — one instance shared by all ranks —
	// turns on collective write aggregation; the pipeline is flushed on
	// file Flush and Close.
	Pipeline *ioreq.Pipeline
	// OnClose, when non-nil, runs on the caller after a successful file
	// Close — the session-consistency publish point for the synchronous
	// path.
	OnClose func(p *vclock.Proc)
}

func (n Native) pipeline() *ioreq.Pipeline {
	if n.Pipeline != nil {
		return n.Pipeline
	}
	return defaultPipeline
}

// Name implements Connector.
func (Native) Name() string { return "native" }

// Create implements Connector.
func (n Native) Create(pr Props, store hdf5.Store, opts ...hdf5.FileOption) (File, error) {
	f, err := hdf5.Create(store, opts...)
	if err != nil {
		return nil, err
	}
	return nativeFile{f: f, pl: n.pipeline(), onClose: n.OnClose}, nil
}

// Open implements Connector.
func (n Native) Open(pr Props, store hdf5.Store, opts ...hdf5.FileOption) (File, error) {
	f, err := hdf5.Open(store, opts...)
	if err != nil {
		return nil, err
	}
	return nativeFile{f: f, pl: n.pipeline(), onClose: n.OnClose}, nil
}

// Wrap implements Connector.
func (n Native) Wrap(f *hdf5.File) File {
	return nativeFile{f: f, pl: n.pipeline(), onClose: n.OnClose}
}

type nativeFile struct {
	f       *hdf5.File
	pl      *ioreq.Pipeline
	onClose func(p *vclock.Proc)
}

func (nf nativeFile) Root() Group { return nativeGroup{g: nf.f.Root(), pl: nf.pl} }

// Flush dispatches any writes buffered in the data pipeline (e.g. an
// aggregation stage's partial chains), then flushes metadata.
func (nf nativeFile) Flush(pr Props) error {
	if err := nf.pl.Flush(pr.Proc); err != nil {
		return err
	}
	return nf.f.Flush(pr.TP())
}

// Close flushes the data pipeline, then closes the container. The file
// is closed even when the pipeline flush fails, so a dispatch error
// cannot leak the handle.
func (nf nativeFile) Close(pr Props) error {
	perr := nf.pl.Flush(pr.Proc)
	cerr := nf.f.Close(pr.TP())
	if err := errors.Join(perr, cerr); err != nil {
		return err
	}
	if nf.onClose != nil {
		nf.onClose(pr.Proc)
	}
	return nil
}

func (nf nativeFile) Unwrap() *hdf5.File { return nf.f }

type nativeGroup struct {
	g  *hdf5.Group
	pl *ioreq.Pipeline
}

func (ng nativeGroup) CreateGroup(pr Props, name string) (Group, error) {
	g, err := ng.g.CreateGroup(pr.TP(), name)
	if err != nil {
		return nil, err
	}
	return nativeGroup{g: g, pl: ng.pl}, nil
}

func (ng nativeGroup) OpenGroup(pr Props, path string) (Group, error) {
	g, err := ng.g.OpenGroup(pr.TP(), path)
	if err != nil {
		return nil, err
	}
	return nativeGroup{g: g, pl: ng.pl}, nil
}

func (ng nativeGroup) CreateDataset(pr Props, name string, dtype hdf5.Datatype, space *hdf5.Dataspace, props *hdf5.CreateProps) (Dataset, error) {
	d, err := ng.g.CreateDataset(pr.TP(), name, dtype, space, props)
	if err != nil {
		return nil, err
	}
	return nativeDataset{d: d, pl: ng.pl}, nil
}

func (ng nativeGroup) OpenDataset(pr Props, path string) (Dataset, error) {
	d, err := ng.g.OpenDataset(pr.TP(), path)
	if err != nil {
		return nil, err
	}
	return nativeDataset{d: d, pl: ng.pl}, nil
}

func (ng nativeGroup) SetAttrInt64(pr Props, name string, v int64) error {
	return ng.g.SetAttrInt64(pr.TP(), name, v)
}

func (ng nativeGroup) AttrInt64(pr Props, name string) (int64, error) {
	return ng.g.AttrInt64(pr.TP(), name)
}

func (ng nativeGroup) SetAttrString(pr Props, name, v string) error {
	return ng.g.SetAttrString(pr.TP(), name, v)
}

func (ng nativeGroup) AttrString(pr Props, name string) (string, error) {
	return ng.g.AttrString(pr.TP(), name)
}

func (ng nativeGroup) List() []string { return ng.g.List() }

// nativeDataset routes every data operation through the connector's
// ioreq pipeline: the operation is constructed as a Request once, and
// validation, resolution, optional aggregation, and the store dispatch
// are pipeline stages.
type nativeDataset struct {
	d  *hdf5.Dataset
	pl *ioreq.Pipeline
}

func (nd nativeDataset) request(op ioreq.Op, pr Props, fspace *hdf5.Dataspace, buf []byte) *ioreq.Request {
	return &ioreq.Request{
		Op:      op,
		Dataset: nd.d,
		Space:   fspace,
		Buf:     buf,
		Proc:    pr.Proc,
		Span:    pr.Span,
	}
}

func (nd nativeDataset) Write(pr Props, fspace *hdf5.Dataspace, buf []byte) error {
	return nd.pl.Do(nd.request(ioreq.OpWrite, pr, fspace, buf))
}

func (nd nativeDataset) Read(pr Props, fspace *hdf5.Dataspace, buf []byte) error {
	return nd.pl.Do(nd.request(ioreq.OpRead, pr, fspace, buf))
}

func (nd nativeDataset) WriteDiscard(pr Props, fspace *hdf5.Dataspace) error {
	return nd.pl.Do(nd.request(ioreq.OpWriteNull, pr, fspace, nil))
}

func (nd nativeDataset) ReadDiscard(pr Props, fspace *hdf5.Dataspace) error {
	return nd.pl.Do(nd.request(ioreq.OpReadNull, pr, fspace, nil))
}

// Prefetch is a no-op for the synchronous connector.
func (nd nativeDataset) Prefetch(Props, *hdf5.Dataspace) error { return nil }

func (nd nativeDataset) Dims() []uint64        { return nd.d.Dims() }
func (nd nativeDataset) Dtype() hdf5.Datatype  { return nd.d.Dtype() }
func (nd nativeDataset) NBytes() int64         { return nd.d.NBytes() }
func (nd nativeDataset) Unwrap() *hdf5.Dataset { return nd.d }

// NullEventSet is the empty event set used with synchronous connectors.
type NullEventSet struct{}

// Wait implements EventSet.
func (NullEventSet) Wait(*vclock.Proc) error { return nil }

// Pending implements EventSet.
func (NullEventSet) Pending() int { return 0 }
