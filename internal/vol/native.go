package vol

import (
	"asyncio/internal/hdf5"
	"asyncio/internal/vclock"
)

// Native is the pass-through connector: every operation executes
// synchronously on the calling process, exactly like stock HDF5 without
// the async VOL loaded. It is stateless; the zero value is usable.
type Native struct{}

// Name implements Connector.
func (Native) Name() string { return "native" }

// Create implements Connector.
func (Native) Create(pr Props, store hdf5.Store, opts ...hdf5.FileOption) (File, error) {
	f, err := hdf5.Create(store, opts...)
	if err != nil {
		return nil, err
	}
	return nativeFile{f: f}, nil
}

// Open implements Connector.
func (Native) Open(pr Props, store hdf5.Store, opts ...hdf5.FileOption) (File, error) {
	f, err := hdf5.Open(store, opts...)
	if err != nil {
		return nil, err
	}
	return nativeFile{f: f}, nil
}

// Wrap implements Connector.
func (Native) Wrap(f *hdf5.File) File { return nativeFile{f: f} }

type nativeFile struct {
	f *hdf5.File
}

func (nf nativeFile) Root() Group          { return nativeGroup{g: nf.f.Root()} }
func (nf nativeFile) Flush(pr Props) error { return nf.f.Flush(pr.TP()) }
func (nf nativeFile) Close(pr Props) error { return nf.f.Close(pr.TP()) }
func (nf nativeFile) Unwrap() *hdf5.File   { return nf.f }

type nativeGroup struct {
	g *hdf5.Group
}

func (ng nativeGroup) CreateGroup(pr Props, name string) (Group, error) {
	g, err := ng.g.CreateGroup(pr.TP(), name)
	if err != nil {
		return nil, err
	}
	return nativeGroup{g: g}, nil
}

func (ng nativeGroup) OpenGroup(pr Props, path string) (Group, error) {
	g, err := ng.g.OpenGroup(pr.TP(), path)
	if err != nil {
		return nil, err
	}
	return nativeGroup{g: g}, nil
}

func (ng nativeGroup) CreateDataset(pr Props, name string, dtype hdf5.Datatype, space *hdf5.Dataspace, props *hdf5.CreateProps) (Dataset, error) {
	d, err := ng.g.CreateDataset(pr.TP(), name, dtype, space, props)
	if err != nil {
		return nil, err
	}
	return nativeDataset{d: d}, nil
}

func (ng nativeGroup) OpenDataset(pr Props, path string) (Dataset, error) {
	d, err := ng.g.OpenDataset(pr.TP(), path)
	if err != nil {
		return nil, err
	}
	return nativeDataset{d: d}, nil
}

func (ng nativeGroup) SetAttrInt64(pr Props, name string, v int64) error {
	return ng.g.SetAttrInt64(pr.TP(), name, v)
}

func (ng nativeGroup) AttrInt64(pr Props, name string) (int64, error) {
	return ng.g.AttrInt64(pr.TP(), name)
}

func (ng nativeGroup) SetAttrString(pr Props, name, v string) error {
	return ng.g.SetAttrString(pr.TP(), name, v)
}

func (ng nativeGroup) AttrString(pr Props, name string) (string, error) {
	return ng.g.AttrString(pr.TP(), name)
}

func (ng nativeGroup) List() []string { return ng.g.List() }

type nativeDataset struct {
	d *hdf5.Dataset
}

func (nd nativeDataset) Write(pr Props, fspace *hdf5.Dataspace, buf []byte) error {
	return nd.d.Write(pr.TP(), fspace, buf)
}

func (nd nativeDataset) Read(pr Props, fspace *hdf5.Dataspace, buf []byte) error {
	return nd.d.Read(pr.TP(), fspace, buf)
}

func (nd nativeDataset) WriteDiscard(pr Props, fspace *hdf5.Dataspace) error {
	return nd.d.WriteNull(pr.TP(), fspace)
}

func (nd nativeDataset) ReadDiscard(pr Props, fspace *hdf5.Dataspace) error {
	return nd.d.ReadNull(pr.TP(), fspace)
}

// Prefetch is a no-op for the synchronous connector.
func (nd nativeDataset) Prefetch(Props, *hdf5.Dataspace) error { return nil }

func (nd nativeDataset) Dims() []uint64        { return nd.d.Dims() }
func (nd nativeDataset) Dtype() hdf5.Datatype  { return nd.d.Dtype() }
func (nd nativeDataset) NBytes() int64         { return nd.d.NBytes() }
func (nd nativeDataset) Unwrap() *hdf5.Dataset { return nd.d }

// NullEventSet is the empty event set used with synchronous connectors.
type NullEventSet struct{}

// Wait implements EventSet.
func (NullEventSet) Wait(*vclock.Proc) error { return nil }

// Pending implements EventSet.
func (NullEventSet) Pending() int { return 0 }
