package vol

import (
	"bytes"
	"testing"
	"time"

	"asyncio/internal/hdf5"
	"asyncio/internal/vclock"
)

// tickDriver counts operations and charges fixed times.
type tickDriver struct {
	writes, reads, metas int
}

func (d *tickDriver) WriteData(p *vclock.Proc, n int64) {
	d.writes++
	if p != nil {
		p.Sleep(time.Second)
	}
}

func (d *tickDriver) ReadData(p *vclock.Proc, n int64) {
	d.reads++
	if p != nil {
		p.Sleep(time.Second)
	}
}

func (d *tickDriver) MetaOp(p *vclock.Proc) {
	d.metas++
	if p != nil {
		p.Sleep(time.Millisecond)
	}
}

func TestNativeConnectorRoundtrip(t *testing.T) {
	drv := &tickDriver{}
	store := hdf5.NewMemStore()
	f, err := Native{}.Create(Props{}, store, hdf5.WithDriver(drv))
	if err != nil {
		t.Fatal(err)
	}
	g, err := f.Root().CreateGroup(Props{}, "g")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := g.CreateDataset(Props{}, "d", hdf5.U8, hdf5.MustSimple(16), nil)
	if err != nil {
		t.Fatal(err)
	}
	in := bytes.Repeat([]byte{9}, 16)
	if err := ds.Write(Props{}, nil, in); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 16)
	if err := ds.Read(Props{}, nil, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Fatal("roundtrip mismatch")
	}
	if ds.NBytes() != 16 || ds.Dtype() != hdf5.U8 || len(ds.Dims()) != 1 {
		t.Fatal("dataset metadata accessors wrong")
	}
	if ds.Unwrap() == nil || f.Unwrap() == nil {
		t.Fatal("Unwrap returned nil")
	}
	// Prefetch is a documented no-op.
	if err := ds.Prefetch(Props{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(Props{}); err != nil {
		t.Fatal(err)
	}
	if drv.writes != 1 || drv.reads != 1 {
		t.Fatalf("driver counts: writes=%d reads=%d", drv.writes, drv.reads)
	}
	// Reopen through the connector.
	f2, err := Native{}.Open(Props{}, store, hdf5.WithDriver(drv))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Root().OpenDataset(Props{}, "g/d"); err != nil {
		t.Fatal(err)
	}
}

func TestNativeChargesActingProc(t *testing.T) {
	clk := vclock.New()
	drv := &tickDriver{}
	f, err := Native{}.Create(Props{}, hdf5.NewMemStore(), hdf5.WithDriver(drv))
	if err != nil {
		t.Fatal(err)
	}
	clk.Go("rank", func(p *vclock.Proc) {
		pr := Props{Proc: p}
		ds, err := f.Root().CreateDataset(pr, "d", hdf5.U8, hdf5.MustSimple(8), nil)
		if err != nil {
			t.Error(err)
			return
		}
		afterMeta := p.Now()
		if afterMeta != time.Millisecond {
			t.Errorf("create charged %v, want 1ms", afterMeta)
		}
		if err := ds.Write(pr, nil, make([]byte, 8)); err != nil {
			t.Error(err)
		}
		if got := p.Now() - afterMeta; got != time.Second {
			t.Errorf("write charged %v, want 1s", got)
		}
		if err := ds.WriteDiscard(pr, nil); err != nil {
			t.Error(err)
		}
		if err := ds.ReadDiscard(pr, nil); err != nil {
			t.Error(err)
		}
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	if drv.writes != 2 || drv.reads != 1 {
		t.Fatalf("discard ops not charged: writes=%d reads=%d", drv.writes, drv.reads)
	}
}

func TestNativeGroupAttrs(t *testing.T) {
	f, err := Native{}.Create(Props{}, hdf5.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	g, _ := f.Root().CreateGroup(Props{}, "meta")
	if err := g.SetAttrInt64(Props{}, "n", 7); err != nil {
		t.Fatal(err)
	}
	if err := g.SetAttrString(Props{}, "s", "hi"); err != nil {
		t.Fatal(err)
	}
	if v, err := g.AttrInt64(Props{}, "n"); err != nil || v != 7 {
		t.Fatalf("n = %d, %v", v, err)
	}
	if v, err := g.AttrString(Props{}, "s"); err != nil || v != "hi" {
		t.Fatalf("s = %q, %v", v, err)
	}
	if names := f.Root().List(); len(names) != 1 || names[0] != "meta" {
		t.Fatalf("List = %v", names)
	}
}

func TestNullEventSet(t *testing.T) {
	var es NullEventSet
	if es.Pending() != 0 {
		t.Fatal("Pending != 0")
	}
	if err := es.Wait(nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropsTP(t *testing.T) {
	if (Props{}).TP().Proc != nil {
		t.Fatal("empty props must carry nil proc")
	}
}
