// Package vol defines the Virtual Object Layer: the interception point
// between the HDF5-style public API and its storage implementation,
// mirroring HDF5's VOL architecture (§II-A of the paper). A Connector
// decides how each file, group, and dataset operation executes; the
// Native connector passes straight through synchronously, while
// internal/asyncvol implements the asynchronous background-thread
// connector under evaluation.
//
// Applications program against the vol interfaces, so switching between
// synchronous and asynchronous I/O is a one-line connector swap — the
// transparency property the paper's methodology depends on.
package vol

import (
	"asyncio/internal/hdf5"
	"asyncio/internal/trace"
	"asyncio/internal/vclock"
)

// Props carries per-call context, like HDF5's access/transfer property
// lists: the acting virtual-clock process, an optional event set for
// asynchronous completion tracking (the H5ES analog), and an optional
// trace span the operation's request will carry through the pipeline.
type Props struct {
	Proc *vclock.Proc
	Set  EventSet
	Span *trace.Span
}

// TP converts to the hdf5 layer's transfer props.
func (pr Props) TP() *hdf5.TransferProps {
	return &hdf5.TransferProps{Proc: pr.Proc, Span: pr.Span}
}

// EventSet tracks in-flight asynchronous operations. Wait blocks until
// every tracked operation completes and returns the first error. For
// synchronous connectors an event set is always empty.
type EventSet interface {
	Wait(p *vclock.Proc) error
	// Pending returns the number of tracked incomplete operations.
	Pending() int
}

// Connector creates file handles bound to one I/O strategy.
type Connector interface {
	Name() string
	// Create initializes a fresh container on store.
	Create(pr Props, store hdf5.Store, opts ...hdf5.FileOption) (File, error)
	// Open loads an existing container.
	Open(pr Props, store hdf5.Store, opts ...hdf5.FileOption) (File, error)
	// Wrap adopts an already-open hdf5 file. In the simulation many
	// ranks share one file object (they would share one file through
	// the parallel file system); each rank wraps it through its own
	// connector.
	Wrap(f *hdf5.File) File
}

// File is a connector-mediated open container.
type File interface {
	Root() Group
	Flush(pr Props) error
	// Close completes outstanding asynchronous work for this handle and
	// closes the container (idempotent across sharing ranks).
	Close(pr Props) error
	// Unwrap exposes the underlying hdf5 file.
	Unwrap() *hdf5.File
}

// Group is a connector-mediated group handle.
type Group interface {
	CreateGroup(pr Props, name string) (Group, error)
	OpenGroup(pr Props, path string) (Group, error)
	CreateDataset(pr Props, name string, dtype hdf5.Datatype, space *hdf5.Dataspace, props *hdf5.CreateProps) (Dataset, error)
	OpenDataset(pr Props, path string) (Dataset, error)
	SetAttrInt64(pr Props, name string, v int64) error
	AttrInt64(pr Props, name string) (int64, error)
	SetAttrString(pr Props, name, v string) error
	AttrString(pr Props, name string) (string, error)
	List() []string
}

// Dataset is a connector-mediated dataset handle.
type Dataset interface {
	// Write stores buf into the selection. Asynchronous connectors
	// return once the operation is staged; completion is tracked by
	// pr.Set.
	Write(pr Props, fspace *hdf5.Dataspace, buf []byte) error
	// Read fills buf from the selection. Asynchronous connectors serve
	// it from a prefetched staging buffer when one matches.
	Read(pr Props, fspace *hdf5.Dataspace, buf []byte) error
	// WriteDiscard charges a write of the selection without moving
	// bytes — for full-scale timing runs where materializing buffers
	// across tens of thousands of ranks is impossible. Chunk allocation
	// happens exactly as in Write.
	WriteDiscard(pr Props, fspace *hdf5.Dataspace) error
	// ReadDiscard charges a read of the selection without moving bytes.
	ReadDiscard(pr Props, fspace *hdf5.Dataspace) error
	// Prefetch hints that the selection will be read soon; asynchronous
	// connectors stage it in the background, synchronous connectors
	// ignore it.
	Prefetch(pr Props, fspace *hdf5.Dataspace) error
	Dims() []uint64
	Dtype() hdf5.Datatype
	NBytes() int64
	// Unwrap exposes the underlying hdf5 dataset.
	Unwrap() *hdf5.Dataset
}
