package core

import (
	"testing"
	"time"

	"asyncio/internal/faults"
	"asyncio/internal/systems"
	"asyncio/internal/trace"
	"asyncio/internal/vclock"
)

// degradeRun executes a ForceAsync run where rank 0's I/O hook scripts
// the asyncvol queue-depth gauge per epoch, driving the degradation
// state machine deterministically.
func degradeRun(t *testing.T, sys *systems.System, pol DegradePolicy, depths []float64) *Report {
	t.Helper()
	hooks := fakeIO(time.Second, 2*time.Second, 100*time.Millisecond, 1<<20)
	inner := hooks.IO
	hooks.IO = func(ctx *RankCtx, iter int, mode trace.Mode) (int64, error) {
		if ctx.Rank == 0 {
			ctx.Sys.Metrics.Gauge("asyncvol.queue_depth").Set(depths[iter])
		}
		return inner(ctx, iter, mode)
	}
	rep, err := Run(sys, Config{
		Workload:   "fake",
		Iterations: len(depths),
		Mode:       ForceAsync,
		Degrade:    pol,
	}, hooks)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// Demotion requires the queue depth to strictly exceed the watermark:
// a depth sitting exactly on the watermark is healthy.
func TestDegradeWatermarkIsExclusive(t *testing.T) {
	pol := DegradePolicy{Enabled: true, QueueWatermark: 10, HealthyEpochs: 2}

	sys := systems.Summit(vclock.New(), 1)
	rep := degradeRun(t, sys, pol, []float64{10, 10, 10})
	if len(rep.ModeSwitches) != 0 {
		t.Fatalf("depth == watermark demoted: %+v", rep.ModeSwitches)
	}
	for _, ep := range rep.Epochs {
		if ep.Mode != trace.Async {
			t.Fatalf("epoch %d ran %v at a healthy watermark", ep.Epoch, ep.Mode)
		}
	}

	sys = systems.Summit(vclock.New(), 1)
	rep = degradeRun(t, sys, pol, []float64{10, 10.5, 0, 0})
	if len(rep.ModeSwitches) == 0 {
		t.Fatal("depth just above the watermark did not demote")
	}
	sw := rep.ModeSwitches[0]
	if sw.To != trace.Sync || sw.Epoch != 2 {
		t.Fatalf("first switch = %+v, want demotion effective epoch 2", sw)
	}
}

// Re-promotion happens on the Nth consecutive healthy epoch, not the
// first, and an unhealthy epoch resets the streak.
func TestDegradeHealthyStreak(t *testing.T) {
	pol := DegradePolicy{Enabled: true, QueueWatermark: 10, HealthyEpochs: 3}

	// Demote after epoch 0; epochs 1,2,3 are the healthy streak, so the
	// promotion lands after epoch 3 (effective epoch 4).
	sys := systems.Summit(vclock.New(), 1)
	rep := degradeRun(t, sys, pol, []float64{11, 0, 0, 0, 0, 0})
	var promos []ModeSwitch
	for _, sw := range rep.ModeSwitches {
		if sw.To == trace.Async {
			promos = append(promos, sw)
		}
	}
	if len(promos) != 1 {
		t.Fatalf("promotions = %+v, want exactly 1", promos)
	}
	if promos[0].Epoch != 4 {
		t.Fatalf("promotion effective epoch %d, want 4 (3rd healthy epoch, not 1st)", promos[0].Epoch)
	}

	// A relapse mid-streak resets the counter: healthy at 1, unhealthy
	// at 2, then 3,4,5 healthy → promotion only after epoch 5.
	sys = systems.Summit(vclock.New(), 1)
	rep = degradeRun(t, sys, pol, []float64{11, 0, 11, 0, 0, 0, 0})
	promos = promos[:0]
	demos := 0
	for _, sw := range rep.ModeSwitches {
		if sw.To == trace.Async {
			promos = append(promos, sw)
		} else {
			demos++
		}
	}
	if demos != 1 {
		t.Fatalf("demotions = %d, want 1 (relapse while degraded is not a new demotion)", demos)
	}
	if len(promos) != 1 || promos[0].Epoch != 6 {
		t.Fatalf("promotions = %+v, want one effective epoch 6 (streak reset by relapse)", promos)
	}
}

// Degradation state is per-run: a crash while demoted does not leak the
// degraded mode into the restarted run.
func TestDegradeStateClearedOnRestart(t *testing.T) {
	pol := DegradePolicy{Enabled: true, QueueWatermark: 10, HealthyEpochs: 2}

	// First run: demote after epoch 0, then crash mid-epoch 2.
	in, err := faults.New("crashrank=1@8s")
	if err != nil {
		t.Fatal(err)
	}
	sys := systems.Summit(vclock.New(), 1, systems.WithFaults(in))
	hooks := fakeIO(time.Second, 2*time.Second, 100*time.Millisecond, 1<<20)
	inner := hooks.IO
	hooks.IO = func(ctx *RankCtx, iter int, mode trace.Mode) (int64, error) {
		if ctx.Rank == 0 {
			ctx.Sys.Metrics.Gauge("asyncvol.queue_depth").Set(11)
		}
		return inner(ctx, iter, mode)
	}
	rep, err := Run(sys, Config{
		Workload:   "fake",
		Iterations: 10,
		Mode:       ForceAsync,
		Degrade:    pol,
	}, hooks)
	if !faults.IsCrash(err) {
		t.Fatalf("Run error = %v, want an injected crash", err)
	}
	demoted := false
	for _, sw := range rep.ModeSwitches {
		if sw.To == trace.Sync {
			demoted = true
		}
	}
	if !demoted {
		t.Fatal("first run never demoted; the restart assertion would be vacuous")
	}

	// Restart (fresh run, healthy queue): epoch 0 must be async again.
	sys2 := systems.Summit(vclock.New(), 1)
	rep2 := degradeRun(t, sys2, pol, []float64{0, 0, 0})
	if len(rep2.ModeSwitches) != 0 {
		t.Fatalf("restarted run carries mode switches: %+v", rep2.ModeSwitches)
	}
	for _, ep := range rep2.Epochs {
		if ep.Mode != trace.Async {
			t.Fatalf("restarted run epoch %d ran %v, want async (degraded state must not survive restart)", ep.Epoch, ep.Mode)
		}
	}
}
