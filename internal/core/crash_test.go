package core

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"asyncio/internal/faults"
	"asyncio/internal/perfetto"
	"asyncio/internal/systems"
	"asyncio/internal/vclock"
)

// crashSystem builds a 2-node Summit with the given fault spec.
func crashSystem(t *testing.T, spec string) *systems.System {
	t.Helper()
	in, err := faults.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	return systems.Summit(vclock.New(), 2, systems.WithFaults(in))
}

// A rank crash mid-run aborts the run with a typed crash error but
// still flushes a partial report: the epochs committed before the
// crash, the crash record, and every rank's spans.
func TestCrashRankAbortsWithPartialReport(t *testing.T) {
	sys := crashSystem(t, "crashrank=3@10s")
	// Epochs are ~7s (5s compute + 2s sync I/O): epoch 0 commits at ~7s,
	// the crash lands inside epoch 1.
	rep, err := Run(sys, Config{
		Workload:   "fake",
		Iterations: 5,
		Mode:       ForceSync,
	}, fakeIO(5*time.Second, 2*time.Second, 100*time.Millisecond, 1<<20))
	if !faults.IsCrash(err) {
		t.Fatalf("Run error = %v, want an injected crash", err)
	}
	if rep == nil {
		t.Fatal("Run returned a nil report on abort")
	}
	if !rep.Aborted || rep.Err == "" {
		t.Fatalf("Aborted/Err = %v/%q, want true/non-empty", rep.Aborted, rep.Err)
	}
	if len(rep.Run.Records) != 1 {
		t.Fatalf("committed epochs = %d, want 1 (epoch 0 finished before the 10s crash)", len(rep.Run.Records))
	}
	if len(rep.Crashes) != 1 {
		t.Fatalf("crash records = %d, want 1", len(rep.Crashes))
	}
	cr := rep.Crashes[0]
	if cr.Node != -1 || len(cr.Ranks) != 1 || cr.Ranks[0] != 3 || cr.At != 10*time.Second {
		t.Fatalf("crash record = %+v", cr)
	}
	if got := sys.Metrics.Counter("core.crashes").Value(); got != 1 {
		t.Fatalf("core.crashes = %d, want 1", got)
	}
	for r, sp := range rep.Spans {
		if sp == nil {
			t.Fatalf("rank %d span missing from the partial report", r)
		}
	}
}

// A node crash kills every rank the node hosts.
func TestCrashNodeKillsAllNodeRanks(t *testing.T) {
	sys := crashSystem(t, "crashnode=1@10s")
	rep, err := Run(sys, Config{
		Workload:   "fake",
		Iterations: 5,
		Mode:       ForceSync,
	}, fakeIO(5*time.Second, 2*time.Second, 100*time.Millisecond, 1<<20))
	if !faults.IsCrash(err) {
		t.Fatalf("Run error = %v, want an injected crash", err)
	}
	if len(rep.Crashes) != 1 {
		t.Fatalf("crash records = %d, want 1", len(rep.Crashes))
	}
	cr := rep.Crashes[0]
	if cr.Node != 1 {
		t.Fatalf("crash node = %d, want 1", cr.Node)
	}
	want := []int{6, 7, 8, 9, 10, 11} // Summit hosts 6 ranks per node
	if len(cr.Ranks) != len(want) {
		t.Fatalf("victims = %v, want %v", cr.Ranks, want)
	}
	for i, r := range want {
		if cr.Ranks[i] != r {
			t.Fatalf("victims = %v, want %v", cr.Ranks, want)
		}
	}
}

// A crash scheduled past the end of the run is a no-op: the run
// completes cleanly and the armed timer does not drag virtual time out
// to the crash instant.
func TestCrashAfterFinishIsNoOp(t *testing.T) {
	sys := crashSystem(t, "crashrank=0@10m")
	rep, err := Run(sys, Config{
		Workload:   "fake",
		Iterations: 2,
		Mode:       ForceSync,
	}, fakeIO(time.Second, time.Second, time.Second, 1<<20))
	if err != nil {
		t.Fatalf("Run error = %v, want clean completion", err)
	}
	if rep.Aborted || len(rep.Crashes) != 0 {
		t.Fatalf("Aborted=%v Crashes=%v on a run that outlived its crash", rep.Aborted, rep.Crashes)
	}
	if now := sys.Clk.Now(); now >= 10*time.Minute {
		t.Fatalf("clock ran to %v; the dead crash timer dragged time forward", now)
	}
	// Same for a crash aimed at a rank the run does not have.
	sys2 := crashSystem(t, "crashrank=99@1s")
	_, err = Run(sys2, Config{
		Workload:   "fake",
		Iterations: 2,
		Mode:       ForceSync,
	}, fakeIO(time.Second, time.Second, time.Second, 1<<20))
	if err != nil {
		t.Fatalf("out-of-range crash target aborted the run: %v", err)
	}
}

// OnCrash hooks run exactly once, only on the victim, with the typed
// crash error.
func TestOnCrashHooksFireOnVictimOnly(t *testing.T) {
	sys := crashSystem(t, "crashrank=2@10s")
	fired := make([]error, 12)
	hooks := fakeIO(5*time.Second, 2*time.Second, 100*time.Millisecond, 1<<20)
	hooks.Init = func(ctx *RankCtx) error {
		r := ctx.Rank
		ctx.OnCrash(func(reason error) { fired[r] = reason })
		return nil
	}
	_, err := Run(sys, Config{
		Workload:   "fake",
		Iterations: 5,
		Mode:       ForceSync,
	}, hooks)
	if !faults.IsCrash(err) {
		t.Fatalf("Run error = %v, want an injected crash", err)
	}
	for r, reason := range fired {
		if r == 2 {
			if !faults.IsCrash(reason) {
				t.Fatalf("victim hook reason = %v, want the crash error", reason)
			}
		} else if reason != nil {
			t.Fatalf("rank %d (survivor) crash hook fired: %v", r, reason)
		}
	}
}

// Satellite: an aborted run's partial report still exports a valid
// Perfetto trace containing the crash marker — observability survives
// the crash.
func TestAbortedRunExportsValidPerfetto(t *testing.T) {
	sys := crashSystem(t, "crashrank=3@10s")
	rep, err := Run(sys, Config{
		Workload:   "fake",
		Iterations: 5,
		Mode:       ForceSync,
	}, fakeIO(5*time.Second, 2*time.Second, 100*time.Millisecond, 1<<20))
	if !faults.IsCrash(err) {
		t.Fatalf("Run error = %v, want an injected crash", err)
	}
	var buf bytes.Buffer
	if err := perfetto.Write(&buf, rep.Spans, rep.Metrics); err != nil {
		t.Fatalf("perfetto export of aborted run: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("aborted-run trace is not valid JSON")
	}
	if !bytes.Contains(buf.Bytes(), []byte("core:crash(rank3)")) {
		t.Fatal("trace lacks the core:crash(rank3) event")
	}
}
