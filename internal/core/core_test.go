package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"asyncio/internal/systems"
	"asyncio/internal/trace"
	"asyncio/internal/vclock"
)

// fakeIO builds hooks where compute sleeps comp and the I/O phase sleeps
// syncT or asyncT depending on mode, reporting bytesPerRank.
func fakeIO(comp, syncT, asyncT time.Duration, bytesPerRank int64) Hooks {
	return Hooks{
		Compute: func(ctx *RankCtx, iter int) error {
			ctx.P.Sleep(comp)
			return nil
		},
		IO: func(ctx *RankCtx, iter int, mode trace.Mode) (int64, error) {
			if mode == trace.Sync {
				ctx.P.Sleep(syncT)
			} else {
				ctx.P.Sleep(asyncT)
			}
			return bytesPerRank, nil
		},
	}
}

func TestForceSyncRunShape(t *testing.T) {
	clk := vclock.New()
	sys := systems.Summit(clk, 2) // 12 ranks
	rep, err := Run(sys, Config{
		Workload:   "fake",
		Iterations: 3,
		Mode:       ForceSync,
	}, fakeIO(5*time.Second, 2*time.Second, 100*time.Millisecond, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Run.Ranks != 12 || rep.Run.Nodes != 2 {
		t.Fatalf("ranks/nodes = %d/%d", rep.Run.Ranks, rep.Run.Nodes)
	}
	if len(rep.Run.Records) != 3 {
		t.Fatalf("records = %d", len(rep.Run.Records))
	}
	for i, r := range rep.Run.Records {
		if r.Mode != trace.Sync {
			t.Errorf("epoch %d mode = %v", i, r.Mode)
		}
		if r.Bytes != 12<<20 {
			t.Errorf("epoch %d bytes = %d, want %d", i, r.Bytes, 12<<20)
		}
		if r.CompTime != 5*time.Second {
			t.Errorf("epoch %d comp = %v", i, r.CompTime)
		}
		// IOTime includes the closing barrier's latency; allow slack.
		if r.IOTime < 2*time.Second || r.IOTime > 2*time.Second+time.Millisecond {
			t.Errorf("epoch %d io = %v, want ~2s", i, r.IOTime)
		}
	}
	if rep.Run.TotalTime() < 21*time.Second {
		t.Errorf("TotalTime = %v, want >= 21s", rep.Run.TotalTime())
	}
}

func TestForceAsyncUsesAsyncPath(t *testing.T) {
	clk := vclock.New()
	sys := systems.CoriHaswell(clk, 1) // 32 ranks
	rep, err := Run(sys, Config{
		Workload:   "fake",
		Iterations: 2,
		Mode:       ForceAsync,
	}, fakeIO(time.Second, 10*time.Second, 50*time.Millisecond, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Run.Records {
		if r.Mode != trace.Async {
			t.Fatalf("mode = %v", r.Mode)
		}
		if r.IOTime > 100*time.Millisecond {
			t.Fatalf("async io = %v, looks like the sync path ran", r.IOTime)
		}
	}
}

func TestAdaptiveSeedsThenPicksAsync(t *testing.T) {
	clk := vclock.New()
	sys := systems.Summit(clk, 1)
	// Async clearly better: sync 10s vs async 0.1s with 5s compute.
	rep, err := Run(sys, Config{
		Workload:   "fake",
		Iterations: 10,
		Mode:       Adaptive,
		SeedEpochs: 2,
	}, fakeIO(5*time.Second, 10*time.Second, 100*time.Millisecond, 32<<20))
	if err != nil {
		t.Fatal(err)
	}
	recs := rep.Run.Records
	// Seed phase alternates sync/async.
	wantSeed := []trace.Mode{trace.Sync, trace.Async, trace.Sync, trace.Async}
	for i, want := range wantSeed {
		if recs[i].Mode != want {
			t.Fatalf("seed epoch %d mode = %v, want %v", i, recs[i].Mode, want)
		}
	}
	for i := 4; i < len(recs); i++ {
		if recs[i].Mode != trace.Async {
			t.Fatalf("post-seed epoch %d chose %v, want async", i, recs[i].Mode)
		}
		if !rep.Epochs[i].EstOK {
			t.Fatalf("post-seed epoch %d has no estimate", i)
		}
	}
}

func TestAdaptivePicksSyncWhenOverheadDominates(t *testing.T) {
	clk := vclock.New()
	sys := systems.Summit(clk, 1)
	// Slowdown scenario (Fig. 1c): compute 10ms, async staging 500ms,
	// sync I/O 400ms. Sync epoch 410ms beats async 510ms.
	rep, err := Run(sys, Config{
		Workload:   "fake",
		Iterations: 12,
		Mode:       Adaptive,
		SeedEpochs: 2,
	}, fakeIO(10*time.Millisecond, 400*time.Millisecond, 500*time.Millisecond, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	for i := 4; i < len(rep.Run.Records); i++ {
		if rep.Run.Records[i].Mode != trace.Sync {
			t.Fatalf("epoch %d chose %v, want sync (overhead-dominated)", i, rep.Run.Records[i].Mode)
		}
	}
	// The estimate itself must flag the slowdown region.
	last := rep.Epochs[len(rep.Epochs)-1]
	if !last.EstOK || !last.Est.SlowdownRegion() {
		t.Fatalf("slowdown region not detected: %+v", last.Est)
	}
}

func TestHookErrorsPropagate(t *testing.T) {
	sentinel := errors.New("disk on fire")
	cases := map[string]Hooks{
		"init": {
			Init: func(*RankCtx) error { return sentinel },
			IO:   func(*RankCtx, int, trace.Mode) (int64, error) { return 0, nil },
		},
		"compute": {
			Compute: func(*RankCtx, int) error { return sentinel },
			IO:      func(*RankCtx, int, trace.Mode) (int64, error) { return 0, nil },
		},
	}
	for name, hooks := range cases {
		clk := vclock.New()
		sys := systems.Summit(clk, 1)
		_, err := Run(sys, Config{Workload: "fake", Iterations: 1, Mode: ForceSync}, hooks)
		if !errors.Is(err, sentinel) {
			t.Errorf("%s: err = %v, want sentinel", name, err)
		}
	}
}

func TestIOErrorAbortsAllRanks(t *testing.T) {
	sentinel := errors.New("write failed")
	clk := vclock.New()
	sys := systems.Summit(clk, 1)
	hooks := Hooks{
		IO: func(ctx *RankCtx, iter int, mode trace.Mode) (int64, error) {
			if ctx.Rank == 3 {
				return 0, sentinel
			}
			return 1, nil
		},
	}
	_, err := Run(sys, Config{Workload: "fake", Iterations: 1, Mode: ForceSync}, hooks)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	clk := vclock.New()
	sys := systems.Summit(clk, 1)
	if _, err := Run(sys, Config{Iterations: 0}, Hooks{IO: func(*RankCtx, int, trace.Mode) (int64, error) { return 0, nil }}); err == nil {
		t.Error("zero iterations accepted")
	}
	if _, err := Run(sys, Config{Iterations: 1}, Hooks{}); err == nil {
		t.Error("missing IO hook accepted")
	}
	if _, err := Run(sys, Config{Iterations: 1, Ranks: 7}, Hooks{IO: func(*RankCtx, int, trace.Mode) (int64, error) { return 0, nil }}); err == nil {
		t.Error("ranks beyond allocation accepted")
	}
}

func TestEstimatorCarriesAcrossRuns(t *testing.T) {
	clk := vclock.New()
	sys := systems.Summit(clk, 1)
	rep1, err := Run(sys, Config{
		Workload: "fake", Iterations: 4, Mode: ForceSync,
	}, fakeIO(time.Second, time.Second, time.Millisecond, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	// Second run reuses the estimator and the clock.
	rep2, err := Run(sys, Config{
		Workload: "fake", Iterations: 4, Mode: ForceAsync, Estimator: rep1.Estimator,
	}, fakeIO(time.Second, time.Second, time.Millisecond, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Estimator != rep1.Estimator {
		t.Fatal("estimator not carried")
	}
	// After sync + async runs, the estimator has both models.
	if _, ok := rep2.Estimator.EstimateEpoch(12<<20, 6); !ok {
		t.Fatal("combined history cannot estimate")
	}
}

func TestDrainAndTermHooksRun(t *testing.T) {
	clk := vclock.New()
	sys := systems.Summit(clk, 1)
	var drained, termed atomic.Int64
	hooks := fakeIO(time.Second, time.Second, time.Second, 1)
	hooks.Drain = func(ctx *RankCtx) error {
		ctx.P.Sleep(2 * time.Second)
		drained.Add(1)
		return nil
	}
	hooks.Term = func(*RankCtx) error { termed.Add(1); return nil }
	rep, err := Run(sys, Config{Workload: "fake", Iterations: 1, Mode: ForceSync}, hooks)
	if err != nil {
		t.Fatal(err)
	}
	if drained.Load() != 6 || termed.Load() != 6 {
		t.Fatalf("drain/term ran %d/%d times, want 6/6", drained.Load(), termed.Load())
	}
	if rep.Run.TermTime < 2*time.Second {
		t.Fatalf("TermTime = %v, want >= 2s (drain)", rep.Run.TermTime)
	}
}
