// Package core is the library's primary contribution glue: an iterative
// application driver that executes alternating computation and I/O
// phases over simulated MPI, measures every phase, feeds the paper's
// performance model (internal/model), and — in Adaptive mode — uses the
// model's epoch estimates to pick synchronous or asynchronous I/O for
// each upcoming epoch: the transparent, adaptive asynchronous I/O
// interface the paper motivates (§II-B) and the feedback loop of its
// Fig. 2.
//
// Workloads supply Hooks (connector setup, a compute phase, an I/O
// phase, drain and teardown); the Loop owns phase timing, barriers,
// mode decisions, and the per-epoch record stream.
package core

import (
	"fmt"
	"sync"
	"time"

	"asyncio/internal/critpath"
	"asyncio/internal/faults"
	"asyncio/internal/metrics"
	"asyncio/internal/model"
	"asyncio/internal/mpi"
	"asyncio/internal/systems"
	"asyncio/internal/trace"
	"asyncio/internal/vclock"
)

// Mode selects the I/O strategy policy for a run.
type Mode int

// Run policies.
const (
	// ForceSync runs every epoch synchronously.
	ForceSync Mode = iota
	// ForceAsync runs every epoch asynchronously.
	ForceAsync
	// Adaptive seeds the model with a few epochs of each mode, then
	// picks the mode with the smaller estimated epoch time (Fig. 2).
	Adaptive
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ForceSync:
		return "sync"
	case ForceAsync:
		return "async"
	case Adaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config parameterizes a run.
type Config struct {
	Workload   string
	Iterations int
	Mode       Mode
	// Ranks defaults to the full allocation (system Size()).
	Ranks int
	// SeedEpochs is how many epochs of each mode Adaptive runs before
	// trusting the model. Default 2.
	SeedEpochs int
	// Estimator, when non-nil, carries history across runs (the paper
	// progressively adds measurements from previous runs). A fresh one
	// is created otherwise.
	Estimator *model.Estimator
	// Degrade enables graceful degradation. The zero value inherits the
	// policy from the system's fault injector (none when no faults).
	Degrade DegradePolicy
}

// DegradePolicy is the graceful-degradation state machine's
// configuration: rank 0 watches the run's health at each epoch boundary
// and demotes async→sync for subsequent epochs when it looks unhealthy,
// re-promoting after a clean streak. Health signals (any non-zero
// subset):
//
//   - the asyncvol drain-queue depth exceeds QueueWatermark — the
//     background streams are falling behind and staging memory grows
//     without bound;
//   - the faults retry-exhaustion counter advanced this epoch — an op
//     just failed for good;
//   - an async epoch's measured I/O time exceeded OverheadSpike × the
//     model's t_overhead estimate — the "async" path has stopped hiding
//     anything.
//
// The checks read the shared metrics registry on rank 0 only, so an
// enabled policy adds no collectives and a disabled one adds no work at
// all.
type DegradePolicy struct {
	Enabled        bool
	QueueWatermark float64 // 0 disables the queue-depth signal
	OverheadSpike  float64 // 0 disables the spike signal
	HealthyEpochs  int     // clean epochs before re-promotion; default 2
}

// ModeSwitch records one degradation decision.
type ModeSwitch struct {
	// Epoch is the first epoch the new policy applies to.
	Epoch int
	To    trace.Mode
	At    time.Duration
	// Reason is the health signal that tripped ("queue depth 12 > 4").
	Reason string
}

// RankCtx is the per-rank execution context passed to every hook.
type RankCtx struct {
	Comm *mpi.Comm
	P    *vclock.Proc
	Sys  *systems.System
	Rank int
	// Span is the rank's root trace span for the run. Hooks may hang
	// their own children off it.
	Span *trace.Span
	// IOSpan is the span for the current I/O phase, reset by the loop
	// before each IO hook. Workloads thread it into vol.Props so every
	// request the phase issues — including work completing later on a
	// background stream — records its transfer events here.
	IOSpan *trace.Span

	crashes *crashTable
}

// OnCrash registers fn to run when an injected crash kills this rank
// (after the rank's process dies). Workloads use it to take the rank's
// background machinery down with it — e.g. asyncvol.Connector.Kill, so
// queued asynchronous writes die un-issued exactly as they would on a
// real node loss. No-op when the run has no crash schedule.
func (ctx *RankCtx) OnCrash(fn func(reason error)) {
	if ctx.crashes == nil {
		return
	}
	ctx.crashes.register(ctx.Rank, fn)
}

// crashTable holds per-rank crash cleanup hooks; allocated only when
// the fault schedule contains crash events.
type crashTable struct {
	mu    sync.Mutex
	hooks [][]func(error)
}

func (ct *crashTable) register(rank int, fn func(error)) {
	ct.mu.Lock()
	ct.hooks[rank] = append(ct.hooks[rank], fn)
	ct.mu.Unlock()
}

// take removes and returns rank's hooks, so each runs at most once.
func (ct *crashTable) take(rank int) []func(error) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	h := ct.hooks[rank]
	ct.hooks[rank] = nil
	return h
}

// Hooks are the workload-specific callbacks. All hooks run on every
// rank. IO returns the bytes this rank moved during the phase.
type Hooks struct {
	// Init performs per-rank setup (connectors, file create/open).
	Init func(ctx *RankCtx) error
	// Compute runs one computation phase (typically a virtual sleep).
	Compute func(ctx *RankCtx, iter int) error
	// IO runs one I/O phase in the given mode and returns this rank's
	// bytes. For async mode it should return once staging completes.
	IO func(ctx *RankCtx, iter int, mode trace.Mode) (int64, error)
	// Drain waits for outstanding asynchronous work (nil to skip).
	Drain func(ctx *RankCtx) error
	// Term closes files and shuts connectors down (nil to skip).
	Term func(ctx *RankCtx) error
	// Observe, when non-nil, runs on rank 0 right after each epoch's
	// record is committed, with the epoch's measurements. Experiments
	// use it to assert on mid-run metrics (ctx.Sys.Metrics) while the
	// simulation is still at that virtual instant.
	Observe func(ctx *RankCtx, iter int, rec trace.Record)
}

// EpochReport pairs an epoch's measurements with the model's prediction
// made before the epoch ran.
type EpochReport struct {
	trace.Record
	Est   model.EpochEstimate
	EstOK bool
}

// Report is the outcome of a run.
type Report struct {
	Run       trace.RunResult
	Epochs    []EpochReport
	Estimator *model.Estimator
	// Spans holds each rank's root trace span, indexed by rank.
	Spans []*trace.Span
	// Metrics is the system registry the run recorded into.
	Metrics *metrics.Registry
	// CritPath is the run's causal critical-path profile (nil when the
	// system was built without WithCritPath).
	CritPath *critpath.Profile
	// ModeSwitches lists graceful-degradation demotions/promotions in
	// order (empty when the policy is off or never tripped).
	ModeSwitches []ModeSwitch
	// Crashes lists injected crash events that fired during the run, in
	// firing order.
	Crashes []CrashRecord
	// Aborted is true when the run ended early (injected crash or hook
	// failure). The report then holds every epoch committed before the
	// abort — partial observability instead of none.
	Aborted bool
	// Err is the abort cause when Aborted (the same error Run returns).
	Err string
}

// CrashRecord notes one injected crash that fired.
type CrashRecord struct {
	// Node is the crashed node index, or -1 for a single-rank crash.
	Node int
	// Ranks lists the killed ranks in ascending order.
	Ranks []int
	At    time.Duration
	Err   string
}

// runObserver, when set, receives every completed Report. Command-line
// tools that cannot reach into experiment internals (cmd/asyncio-bench
// constructs systems deep inside sweep helpers) register one to collect
// per-run observability data. Runs execute sequentially per process.
var (
	runObserverMu sync.Mutex
	runObserver   func(*Report)
)

// SetRunObserver installs fn (nil to clear), returning the previous
// observer.
func SetRunObserver(fn func(*Report)) func(*Report) {
	runObserverMu.Lock()
	defer runObserverMu.Unlock()
	prev := runObserver
	runObserver = fn
	return prev
}

// Run executes the iterative application on sys. It spawns cfg.Ranks MPI
// rank processes on the system's clock, drives Iterations epochs, and
// returns after all ranks finish. It must be called from the host
// goroutine (it waits on the clock).
func Run(sys *systems.System, cfg Config, hooks Hooks) (*Report, error) {
	if cfg.Iterations <= 0 {
		return nil, fmt.Errorf("core: Iterations %d must be positive", cfg.Iterations)
	}
	if hooks.IO == nil {
		return nil, fmt.Errorf("core: Hooks.IO is required")
	}
	ranks := cfg.Ranks
	if ranks == 0 {
		ranks = sys.Size()
	}
	if ranks <= 0 || ranks > sys.Size() {
		return nil, fmt.Errorf("core: Ranks %d outside 1..%d", ranks, sys.Size())
	}
	if cfg.SeedEpochs <= 0 {
		cfg.SeedEpochs = 2
	}
	est := cfg.Estimator
	if est == nil {
		est = model.NewEstimator()
	}
	if !cfg.Degrade.Enabled && sys.Faults != nil {
		cfg.Degrade = degradeFromInjector(sys.Faults)
	}
	if cfg.Degrade.HealthyEpochs <= 0 {
		cfg.Degrade.HealthyEpochs = 2
	}
	ctl := &controller{mode: cfg.Mode, seed: cfg.SeedEpochs, est: est, degrade: cfg.Degrade}
	if cfg.Degrade.Enabled && sys.Metrics != nil {
		// Pay-for-use: the degradation series exist only when the policy
		// does, so fault-free runs export byte-identical metrics.
		ctl.mDegraded = sys.Metrics.Gauge("core.degraded")
		ctl.mModeAsync = sys.Metrics.Gauge("core.mode_async")
		ctl.mDemotions = sys.Metrics.Counter("core.demotions")
		ctl.mPromotions = sys.Metrics.Counter("core.promotions")
	}
	rep := &Report{
		Run: trace.RunResult{
			System:   sys.Name,
			Workload: cfg.Workload,
			Mode:     runModeLabel(cfg.Mode),
			Ranks:    ranks,
			Nodes:    (ranks + sys.RanksPerNode - 1) / sys.RanksPerNode,
		},
		Estimator: est,
		Spans:     make([]*trace.Span, ranks),
		Metrics:   sys.Metrics,
	}
	var crashes []faults.Crash
	if sys.Faults != nil {
		crashes = sys.Faults.Crashes()
	}
	var ct *crashTable
	if len(crashes) > 0 {
		ct = &crashTable{hooks: make([][]func(error), ranks)}
	}
	costs := mpi.DefaultCosts()
	costs.Metrics = sys.Metrics
	costs.Crit = sys.Crit
	// Sharded systems spawn each rank on its home shard's clock; the
	// world's rendezvous events live on shard 0 and wake cross-shard.
	world := mpi.RunOn(sys.RankClocks(ranks), ranks, costs, func(c *mpi.Comm) {
		runRank(c, sys, cfg, hooks, ctl, rep, ct)
	})
	timers := scheduleCrashes(sys, crashes, ranks, world, ct, rep)
	werr := sys.Clk.Wait()
	for _, t := range timers {
		t.Stop()
	}
	// A hook error aborts the ranks mid-run, which can leave background
	// streams idle and trip the clock's deadlock detector; the root
	// cause is the workload error, so report it first.
	err := world.Err()
	if err == nil {
		err = werr
	}
	if sys.Crit != nil {
		// The profile label is a pure function of the run configuration,
		// never of the execution (shard count, workers), so the exported
		// profile bytes stay comparable across engines.
		sys.Crit.SetMakespan(sys.Clk.Now())
		rep.CritPath = sys.Crit.Profile(fmt.Sprintf("%s/%s/%s ranks=%d",
			sys.Name, cfg.Workload, rep.Run.Mode, ranks))
	}
	if err != nil {
		// Flush what the run measured before it died: the epochs already
		// committed, every rank's spans so far, the metrics registry, and
		// the crash records. Observers (trace export, metric dumps) see
		// the partial report; callers still get the error.
		rep.Aborted = true
		rep.Err = err.Error()
	}
	runObserverMu.Lock()
	obs := runObserver
	runObserverMu.Unlock()
	if obs != nil {
		obs(rep)
	}
	if err != nil {
		return rep, err
	}
	return rep, nil
}

// scheduleCrashes arms one virtual-clock timer per crash event. A node
// crash kills every rank the node hosts (rank/RanksPerNode == node); a
// crash aimed at a rank or node outside the run, or firing after all
// ranks finished, is a no-op. Each victim's process is killed first, the
// world is aborted at the crash instant (survivors observe a revoked
// communicator), and then the victims' registered crash hooks take the
// per-rank background machinery down.
func scheduleCrashes(sys *systems.System, crashes []faults.Crash, ranks int,
	world *mpi.World, ct *crashTable, rep *Report) []*vclock.Timer {
	if len(crashes) == 0 {
		return nil
	}
	// Pay-for-use: the series exists only on runs with a crash schedule.
	var mCrashes *metrics.Counter
	if sys.Metrics != nil {
		mCrashes = sys.Metrics.Counter("core.crashes")
	}
	var mu sync.Mutex // serializes same-instant crash callbacks on rep
	timers := make([]*vclock.Timer, 0, len(crashes))
	for _, cr := range crashes {
		cr := cr
		delay := cr.At - sys.Clk.Now()
		timers = append(timers, sys.Clk.AfterFunc(delay, func(now time.Duration) {
			if world.Finished() {
				return
			}
			node := -1
			var victims []int
			if cr.Node {
				node = cr.Index
				for r := 0; r < ranks; r++ {
					if r/sys.RanksPerNode == cr.Index {
						victims = append(victims, r)
					}
				}
			} else if cr.Index < ranks {
				victims = []int{cr.Index}
			}
			if len(victims) == 0 {
				return
			}
			ferr := cr.CrashError()
			for _, r := range victims {
				world.Kill(r, ferr)
				if sp := rep.Spans[r]; sp != nil {
					sp.EventOn("core:crash("+ferr.Target+")", 0, now, fmt.Sprintf("rank%d", r))
				}
				if ct != nil {
					for _, fn := range ct.take(r) {
						fn(ferr)
					}
				}
			}
			mCrashes.Add(1)
			mu.Lock()
			rep.Crashes = append(rep.Crashes, CrashRecord{
				Node: node, Ranks: victims, At: now, Err: ferr.Error(),
			})
			mu.Unlock()
		}))
	}
	return timers
}

func runModeLabel(m Mode) trace.Mode {
	if m == ForceAsync {
		return trace.Async
	}
	return trace.Sync
}

// degradeFromInjector maps a fault injector's degradation spec onto the
// core policy.
func degradeFromInjector(in *faults.Injector) DegradePolicy {
	d := in.Degrade()
	return DegradePolicy{
		Enabled:        d.Enabled,
		QueueWatermark: d.QueueWatermark,
		OverheadSpike:  d.OverheadSpike,
		HealthyEpochs:  d.HealthyEpochs,
	}
}

// controller makes per-epoch mode decisions on rank 0.
type controller struct {
	mode Mode
	seed int
	est  *model.Estimator

	// Degradation state (rank 0 only; no locking needed).
	degrade       DegradePolicy
	degraded      bool
	healthy       int
	lastExhausted int64

	mDegraded   *metrics.Gauge
	mModeAsync  *metrics.Gauge
	mDemotions  *metrics.Counter
	mPromotions *metrics.Counter
}

// choose returns the mode for the given epoch plus the estimate used.
// While degraded, async decisions are demoted to sync.
func (ctl *controller) choose(epoch int, bytes int64, ranks int) (trace.Mode, model.EpochEstimate, bool) {
	mode, est, ok := ctl.chooseRaw(epoch, bytes, ranks)
	if ctl.degraded && mode == trace.Async {
		mode = trace.Sync
	}
	return mode, est, ok
}

func (ctl *controller) chooseRaw(epoch int, bytes int64, ranks int) (trace.Mode, model.EpochEstimate, bool) {
	switch ctl.mode {
	case ForceSync, ForceAsync:
		// Forced runs still compute estimates (when possible) so
		// reports can compare prediction against measurement.
		est, ok := ctl.est.EstimateEpoch(bytes, ranks)
		if ctl.mode == ForceAsync {
			return trace.Async, est, ok
		}
		return trace.Sync, est, ok
	}
	// Adaptive: alternate sync/async for the seed epochs, and keep
	// alternating while the model still lacks data for either mode.
	alternate := func() (trace.Mode, model.EpochEstimate, bool) {
		if epoch%2 == 0 {
			return trace.Sync, model.EpochEstimate{}, false
		}
		return trace.Async, model.EpochEstimate{}, false
	}
	if epoch < 2*ctl.seed {
		return alternate()
	}
	est, ok := ctl.est.EstimateEpoch(bytes, ranks)
	if !ok {
		return alternate()
	}
	return est.Better(), est, true
}

func runRank(c *mpi.Comm, sys *systems.System, cfg Config, hooks Hooks, ctl *controller, rep *Report, ct *crashTable) {
	p := c.Proc()
	ctx := &RankCtx{
		Comm: c, P: p, Sys: sys, Rank: c.Rank(),
		Span:    trace.NewSpan(fmt.Sprintf("rank%d", c.Rank())),
		crashes: ct,
	}
	// Distinct indices per rank, so no lock is needed.
	rep.Spans[c.Rank()] = ctx.Span
	fail := func(err error) { c.Abort(err) }

	initStart := p.Now()
	if hooks.Init != nil {
		if err := hooks.Init(ctx); err != nil {
			fail(fmt.Errorf("init: %w", err))
			return
		}
	}
	c.Barrier()
	initTime := p.Now() - initStart
	if c.Rank() == 0 {
		sys.Crit.MarkInit(p.Now())
	}

	var lastBytes int64 = -1
	for iter := 0; iter < cfg.Iterations; iter++ {
		// Rank 0 decides the epoch's mode from the model; everyone else
		// follows. The expected I/O size of the next epoch is the
		// previous epoch's — iterative applications write the same
		// shape every checkpoint.
		var mode trace.Mode
		var est model.EpochEstimate
		var estOK bool
		if c.Rank() == 0 {
			mode, est, estOK = ctl.choose(iter, lastBytes, c.Size())
		}
		mode = mpi.Bcast(c, mode, 0)

		// Computation phase.
		compStart := p.Now()
		if hooks.Compute != nil {
			if err := hooks.Compute(ctx, iter); err != nil {
				fail(fmt.Errorf("compute iter %d: %w", iter, err))
				return
			}
		}
		compTime := p.Now() - compStart
		sys.Crit.Record(critpath.Edge{
			Track: p.Name(), Cause: critpath.Compute, Subsystem: "core",
			Detail: "compute", Start: compStart, End: p.Now(),
		})

		// I/O phase, bracketed by barriers so rank 0's elapsed time is
		// the max across ranks — parallel I/O finishes when the slowest
		// rank finishes (§III-B2).
		c.Barrier()
		ctx.IOSpan = ctx.Span.Child(fmt.Sprintf("epoch%d:io", iter))
		ioStart := p.Now()
		myBytes, err := hooks.IO(ctx, iter, mode)
		if err != nil {
			fail(fmt.Errorf("io iter %d: %w", iter, err))
			return
		}
		c.Barrier()
		ioTime := p.Now() - ioStart
		totalBytes := mpi.Allreduce(c, myBytes, func(a, b int64) int64 { return a + b })
		maxComp := mpi.Allreduce(c, compTime, func(a, b time.Duration) time.Duration {
			if a > b {
				return a
			}
			return b
		})
		lastBytes = totalBytes

		if c.Rank() == 0 {
			rec := recordEpoch(ctl, rep, iter, mode, c.Size(), totalBytes, ioTime, maxComp, est, estOK)
			sys.Crit.MarkEpoch(iter, p.Now())
			ctl.checkHealth(ctx, iter, rec, est, estOK, rep)
			if hooks.Observe != nil {
				hooks.Observe(ctx, iter, rec)
			}
		}
	}

	// Termination: drain background I/O, tear down.
	termStart := p.Now()
	if hooks.Drain != nil {
		if err := hooks.Drain(ctx); err != nil {
			fail(fmt.Errorf("drain: %w", err))
			return
		}
	}
	c.Barrier()
	if hooks.Term != nil {
		if err := hooks.Term(ctx); err != nil {
			fail(fmt.Errorf("term: %w", err))
			return
		}
	}
	c.Barrier()
	termTime := p.Now() - termStart
	if c.Rank() == 0 {
		rep.Run.InitTime = initTime
		rep.Run.TermTime = termTime
	}
}

// checkHealth runs the degradation state machine on rank 0 after each
// epoch's record commits. It reads the shared metrics registry at the
// epoch-boundary virtual instant (all ranks are between the post-IO
// collectives and the next epoch's Bcast, so the values are
// deterministic) and flips the controller between healthy and degraded.
// Every switch is recorded on the report, the metrics series, and the
// rank-0 span (a Perfetto instant).
func (ctl *controller) checkHealth(ctx *RankCtx, iter int, rec trace.Record,
	est model.EpochEstimate, estOK bool, rep *Report) {
	if !ctl.degrade.Enabled {
		return
	}
	now := ctx.P.Now()
	ctl.mModeAsync.Set(boolGauge(rec.Mode == trace.Async))
	unhealthy := false
	reason := ""
	if w := ctl.degrade.QueueWatermark; w > 0 && ctx.Sys.Metrics != nil {
		if g := ctx.Sys.Metrics.FindGauge("asyncvol.queue_depth"); g != nil {
			if v := g.Value(); v > w {
				unhealthy = true
				reason = fmt.Sprintf("queue depth %.0f > watermark %.0f", v, w)
			}
		}
	}
	if !unhealthy && ctx.Sys.Metrics != nil {
		if c := ctx.Sys.Metrics.FindCounter(faults.MetricRetryExhausted); c != nil {
			if v := c.Value(); v > ctl.lastExhausted {
				unhealthy = true
				reason = fmt.Sprintf("%d ops exhausted retries", v-ctl.lastExhausted)
				ctl.lastExhausted = v
			}
		}
	}
	if s := ctl.degrade.OverheadSpike; !unhealthy && s > 0 && estOK &&
		rec.Mode == trace.Async && est.Overhead > 0 &&
		rec.IOTime > time.Duration(s*float64(est.Overhead)) {
		unhealthy = true
		reason = fmt.Sprintf("async io %s > %gx overhead estimate %s", rec.IOTime, s, est.Overhead)
	}
	switch {
	case !ctl.degraded && unhealthy:
		ctl.degraded = true
		ctl.healthy = 0
		ctl.mDegraded.Set(1)
		ctl.mDemotions.Add(1)
		ctx.Span.EventOn("core:demote("+reason+")", 0, now, ctx.P.Name())
		rep.ModeSwitches = append(rep.ModeSwitches, ModeSwitch{
			Epoch: iter + 1, To: trace.Sync, At: now, Reason: reason,
		})
	case ctl.degraded && unhealthy:
		ctl.healthy = 0
	case ctl.degraded && !unhealthy:
		ctl.healthy++
		if ctl.healthy >= ctl.degrade.HealthyEpochs {
			ctl.degraded = false
			ctl.healthy = 0
			ctl.mDegraded.Set(0)
			ctl.mPromotions.Add(1)
			reason = fmt.Sprintf("%d healthy epochs", ctl.degrade.HealthyEpochs)
			ctx.Span.EventOn("core:promote("+reason+")", 0, now, ctx.P.Name())
			rep.ModeSwitches = append(rep.ModeSwitches, ModeSwitch{
				Epoch: iter + 1, To: trace.Async, At: now, Reason: reason,
			})
		}
	}
}

// boolGauge maps a bool onto a 0/1 gauge value.
func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// recordEpoch runs on rank 0 only and returns the committed record.
func recordEpoch(ctl *controller, rep *Report, iter int, mode trace.Mode, ranks int,
	bytes int64, ioTime, compTime time.Duration, est model.EpochEstimate, estOK bool) trace.Record {
	rec := trace.Record{
		Epoch:    iter,
		Mode:     mode,
		Ranks:    ranks,
		Bytes:    bytes,
		IOTime:   ioTime,
		CompTime: compTime,
	}
	// Feed the feedback loop (Fig. 2): measurements from this epoch
	// improve estimates for the next.
	ctl.est.ObserveComp(compTime)
	if mode == trace.Sync {
		ctl.est.ObserveSyncIO(bytes, ranks, ioTime)
	} else {
		ctl.est.ObserveOverhead(bytes, ranks, ioTime)
	}
	rep.Run.Records = append(rep.Run.Records, rec)
	rep.Epochs = append(rep.Epochs, EpochReport{Record: rec, Est: est, EstOK: estOK})
	return rec
}
