package model

import (
	"errors"
	"math"
	"testing"
	"time"

	"asyncio/internal/trace"
)

func TestHistoryBound(t *testing.T) {
	h := NewHistory(3)
	for i := 0; i < 5; i++ {
		h.Add(Observation{Bytes: int64(i), Ranks: 1, Rate: 1})
	}
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
	snap := h.Snapshot()
	if snap[0].Bytes != 2 || snap[2].Bytes != 4 {
		t.Fatalf("Snapshot = %+v, want newest 3", snap)
	}
}

func TestHistoryUnbounded(t *testing.T) {
	h := NewHistory(0)
	for i := 0; i < 100; i++ {
		h.Add(Observation{Bytes: 1, Ranks: 1, Rate: 1})
	}
	if h.Len() != 100 {
		t.Fatalf("Len = %d", h.Len())
	}
}

func TestFitRateInsufficientData(t *testing.T) {
	h := NewHistory(0)
	h.Add(Observation{Bytes: 1, Ranks: 1, Rate: 1})
	if _, err := FitRate(h, FitLinearLogRanks); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("err = %v", err)
	}
}

func TestFitLinearSizeRanksRecovers(t *testing.T) {
	// rate = 2·size + 1e6·ranks, the async Eq. 4 shape.
	h := NewHistory(0)
	for _, o := range []Observation{
		{Bytes: 1 << 20, Ranks: 6, Rate: 2*(1<<20) + 6e6},
		{Bytes: 2 << 20, Ranks: 48, Rate: 2*(2<<20) + 48e6},
		{Bytes: 4 << 20, Ranks: 12, Rate: 2*(4<<20) + 12e6},
		{Bytes: 8 << 20, Ranks: 96, Rate: 2*(8<<20) + 96e6},
		{Bytes: 16 << 20, Ranks: 24, Rate: 2*(16<<20) + 24e6},
	} {
		h.Add(o)
	}
	m, err := FitRate(h, FitLinearSizeRanks)
	if err != nil {
		t.Fatal(err)
	}
	if m.R2() < 0.999 {
		t.Fatalf("R2 = %v", m.R2())
	}
	got := m.EstimateRate(32<<20, 192)
	want := 2*float64(32<<20) + 192e6
	if math.Abs(got-want)/want > 1e-6 {
		t.Fatalf("EstimateRate = %v, want %v", got, want)
	}
}

func TestFitLinearLogRanksSaturating(t *testing.T) {
	h := NewHistory(0)
	for n := 1; n <= 1024; n *= 4 {
		h.Add(Observation{Bytes: 1 << 30, Ranks: n, Rate: 5e9 + 2e9*math.Log(float64(n))})
	}
	m, err := FitRate(h, FitLinearLogRanks)
	if err != nil {
		t.Fatal(err)
	}
	if m.R2() < 0.999 {
		t.Fatalf("R2 = %v", m.R2())
	}
	est := m.EstimateRate(1<<30, 256)
	want := 5e9 + 2e9*math.Log(256)
	if math.Abs(est-want)/want > 1e-9 {
		t.Fatalf("EstimateRate = %v, want %v", est, want)
	}
	// Eq. 3: t_io = size / rate.
	d := m.EstimateIOTime(1<<30, 256)
	wantD := float64(1<<30) / want
	if math.Abs(d.Seconds()-wantD) > 1e-9 {
		t.Fatalf("EstimateIOTime = %v, want %vs", d, wantD)
	}
}

func TestEstimateRateFloor(t *testing.T) {
	// A wildly extrapolated linear-log model can predict negative rates;
	// estimates must stay positive.
	h := NewHistory(0)
	h.Add(Observation{Bytes: 1, Ranks: 100, Rate: 10})
	h.Add(Observation{Bytes: 1, Ranks: 200, Rate: 5})
	h.Add(Observation{Bytes: 1, Ranks: 400, Rate: 1})
	m, err := FitRate(h, FitLinearLogRanks)
	if err != nil {
		t.Fatal(err)
	}
	if r := m.EstimateRate(1, 1_000_000); r < 1 {
		t.Fatalf("rate = %v, want floored at 1", r)
	}
}

func TestFitKindString(t *testing.T) {
	if FitLinearSizeRanks.String() == "" || FitLinearLogRanks.String() == "" || FitLinearRanks.String() == "" {
		t.Fatal("empty FitKind names")
	}
	if FitKind(99).String() == "" {
		t.Fatal("unknown kind must still render")
	}
}

// seedEstimator feeds an estimator a consistent world: sync I/O at a
// saturating rate, overhead at a linear rate, constant compute.
func seedEstimator(comp time.Duration, syncRate, overheadRatePerRank float64, ranks int) *Estimator {
	e := NewEstimator()
	for i := 1; i <= 5; i++ {
		bytes := int64(i) * (1 << 28)
		e.ObserveComp(comp)
		e.ObserveSyncIO(bytes, ranks, time.Duration(float64(bytes)/syncRate*float64(time.Second)))
		ovRate := overheadRatePerRank * float64(ranks)
		e.ObserveOverhead(bytes, ranks, time.Duration(float64(bytes)/ovRate*float64(time.Second)))
	}
	return e
}

func TestEstimatorNotReadyWithoutData(t *testing.T) {
	e := NewEstimator()
	if _, ok := e.EstimateEpoch(1<<30, 64); ok {
		t.Fatal("empty estimator produced an estimate")
	}
	if _, ok := e.CompEstimate(); ok {
		t.Fatal("empty estimator has a comp estimate")
	}
	if _, ok := e.SyncModel(); ok {
		t.Fatal("empty estimator has a sync model")
	}
	if _, ok := e.AsyncModel(); ok {
		t.Fatal("empty estimator has an async model")
	}
}

func TestEstimateEpochIdealOverlap(t *testing.T) {
	// Compute 30s, sync I/O rate 1 GB/s, overhead rate 4 GB/s/rank ×
	// 64 ranks. For 8 GB: t_io = 8s ≤ comp → async = comp + overhead.
	e := seedEstimator(30*time.Second, 1e9, 4e9, 64)
	est, ok := e.EstimateEpoch(8e9, 64)
	if !ok {
		t.Fatal("estimator not ready")
	}
	if math.Abs(est.SyncIO.Seconds()-8) > 0.2 {
		t.Fatalf("SyncIO = %v, want ~8s", est.SyncIO)
	}
	if math.Abs(est.Sync.Seconds()-38) > 0.3 {
		t.Fatalf("Sync = %v, want ~38s (Eq. 2a)", est.Sync)
	}
	wantOv := 8e9 / (4e9 * 64)
	if math.Abs(est.Overhead.Seconds()-wantOv) > 0.01 {
		t.Fatalf("Overhead = %v, want ~%vs", est.Overhead, wantOv)
	}
	wantAsync := 30 + wantOv
	if math.Abs(est.Async.Seconds()-wantAsync) > 0.3 {
		t.Fatalf("Async = %v, want ~%vs (Eq. 2b, full overlap)", est.Async, wantAsync)
	}
	if est.Better() != trace.Async {
		t.Fatal("async should win in the ideal scenario")
	}
	if est.SlowdownRegion() {
		t.Fatal("not a slowdown scenario")
	}
}

func TestEstimateEpochPartialOverlap(t *testing.T) {
	// Compute 2s, I/O 8s: Eq. 2b async = max(2, 8-2) + overhead = 6 + ov.
	e := seedEstimator(2*time.Second, 1e9, 4e9, 64)
	est, ok := e.EstimateEpoch(8e9, 64)
	if !ok {
		t.Fatal("not ready")
	}
	wantOv := 8e9 / (4e9 * 64)
	if math.Abs(est.Async.Seconds()-(6+wantOv)) > 0.3 {
		t.Fatalf("Async = %v, want ~%vs", est.Async, 6+wantOv)
	}
	if math.Abs(est.Sync.Seconds()-10) > 0.3 {
		t.Fatalf("Sync = %v, want ~10s", est.Sync)
	}
	if est.Better() != trace.Async {
		t.Fatal("async still wins under partial overlap here")
	}
}

func TestEstimateEpochSlowdownScenario(t *testing.T) {
	// Fig. 1c: compute shorter than the transactional overhead. Slow
	// overhead rate (0.001 GB/s/rank × 1 rank), tiny compute.
	e := seedEstimator(time.Millisecond, 1e9, 1e6, 1)
	est, ok := e.EstimateEpoch(1e9, 1)
	if !ok {
		t.Fatal("not ready")
	}
	if !est.SlowdownRegion() {
		t.Fatalf("SlowdownRegion = false with comp=%v overhead=%v", est.Comp, est.Overhead)
	}
	if est.Better() != trace.Sync {
		t.Fatalf("sync should win: sync=%v async=%v", est.Sync, est.Async)
	}
}

func TestEstimatorR2OnCleanData(t *testing.T) {
	// Cross-scale history (the paper's setting): sync rate saturates
	// log-like with ranks, async staging rate grows linearly.
	e := NewEstimator()
	perRank := []int64{16 << 20, 32 << 20, 64 << 20} // decouple size from ranks
	i := 0
	for n := 16; n <= 4096; n *= 2 {
		bytes := int64(n) * perRank[i%len(perRank)]
		i++
		syncRate := 3e9 + 1.2e9*math.Log(float64(n))
		asyncRate := 2e9 * float64(n)
		e.ObserveComp(30 * time.Second)
		e.ObserveSyncIO(bytes, n, time.Duration(float64(bytes)/syncRate*float64(time.Second)))
		e.ObserveOverhead(bytes, n, time.Duration(float64(bytes)/asyncRate*float64(time.Second)))
	}
	sm, ok := e.SyncModel()
	if !ok {
		t.Fatal("no sync model")
	}
	am, ok := e.AsyncModel()
	if !ok {
		t.Fatal("no async model")
	}
	// The paper reports r² ≥ 80% (sync) and ≥ 90% (async); clean data
	// must clear both easily.
	if sm.Kind != FitLinearLogRanks || sm.R2() < 0.8 {
		t.Fatalf("sync model %v R2 = %v", sm.Kind, sm.R2())
	}
	if am.Kind != FitLinearSizeRanks || am.R2() < 0.9 {
		t.Fatalf("async model %v R2 = %v", am.Kind, am.R2())
	}
}

func TestSingleRunHistoryFallsBackToMeanRate(t *testing.T) {
	// Within one run every request has the same size and rank count;
	// the regression is singular and the estimator must fall back to
	// the mean observed rate rather than fail.
	e := NewEstimator()
	for i := 0; i < 5; i++ {
		e.ObserveComp(10 * time.Second)
		e.ObserveSyncIO(1e9, 64, time.Second)            // 1 GB/s
		e.ObserveOverhead(1e9, 64, 100*time.Millisecond) // 10 GB/s
	}
	est, ok := e.EstimateEpoch(1e9, 64)
	if !ok {
		t.Fatal("estimator not ready on single-run history")
	}
	sm, _ := e.SyncModel()
	if sm.Kind != FitMean {
		t.Fatalf("sync kind = %v, want FitMean", sm.Kind)
	}
	if math.Abs(est.SyncIO.Seconds()-1) > 1e-6 {
		t.Fatalf("SyncIO = %v, want 1s", est.SyncIO)
	}
	if math.Abs(est.Overhead.Seconds()-0.1) > 1e-6 {
		t.Fatalf("Overhead = %v, want 0.1s", est.Overhead)
	}
}

func TestWithFitKindsAndHistoryBound(t *testing.T) {
	e := NewEstimator(WithFitKinds(FitLinearRanks, FitLinearRanks), WithHistoryBound(4))
	for i := 1; i <= 10; i++ {
		e.ObserveSyncIO(1<<20, i, time.Second)
	}
	if e.syncHist.Len() != 4 {
		t.Fatalf("bounded history Len = %d", e.syncHist.Len())
	}
	m, ok := e.SyncModel()
	if !ok {
		t.Fatal("no model")
	}
	if m.Kind != FitLinearRanks {
		t.Fatalf("Kind = %v", m.Kind)
	}
}

func TestZeroDurationObservationsIgnored(t *testing.T) {
	e := NewEstimator()
	e.ObserveSyncIO(1<<20, 4, 0)
	e.ObserveOverhead(1<<20, 4, -time.Second)
	if e.syncHist.Len() != 0 || e.asyncHist.Len() != 0 {
		t.Fatal("zero/negative durations must be dropped")
	}
}

func TestEstimateApp(t *testing.T) {
	got := EstimateApp(2*time.Second, time.Second, 10*time.Second, 5)
	if got != 53*time.Second {
		t.Fatalf("EstimateApp = %v, want 53s", got)
	}
}
