// Package model implements the paper's iterative-I/O performance model
// (§III):
//
//	t_app         = t_init + Σ t_epoch + t_term              (Eq. 1)
//	t_sync_epoch  = t_io + t_comp                            (Eq. 2a)
//	t_async_epoch = max(t_comp, t_io − t_comp) + t_overhead  (Eq. 2b)
//	t_io          = data_size / f_io_rate                    (Eq. 3)
//
// f_io_rate is estimated empirically from a history of past I/O
// requests: for each request the history stores (data size, MPI ranks,
// observed aggregate rate); the estimators fit either the paper's Eq. 4
// linear form (rate = β0·size + β1·ranks, used for the linearly scaling
// asynchronous staging rate) or a linear-log form in the rank count
// (rate = β0 + β1·ln ranks, used for the saturating synchronous rate),
// and expose Eq. 5's coefficient of determination. Computation time is
// tracked with a weighted moving average. An Advisor compares the two
// epoch estimates to decide which I/O mode the next epoch should use —
// the feedback loop of the paper's Fig. 2.
package model

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"asyncio/internal/stats"
	"asyncio/internal/trace"
)

// Observation is one past I/O request: how much data, how many ranks,
// and the aggregate rate achieved.
type Observation struct {
	Bytes int64
	Ranks int
	Rate  float64 // bytes/second
}

// History is a bounded record of past observations, newest last.
type History struct {
	mu  sync.Mutex
	obs []Observation
	max int
}

// NewHistory returns a history bounded to max observations (0 means
// unbounded).
func NewHistory(max int) *History { return &History{max: max} }

// Add appends an observation, evicting the oldest past the bound.
func (h *History) Add(o Observation) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.obs = append(h.obs, o)
	if h.max > 0 && len(h.obs) > h.max {
		h.obs = h.obs[len(h.obs)-h.max:]
	}
}

// Len returns the number of stored observations.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.obs)
}

// Snapshot returns a copy of the observations.
func (h *History) Snapshot() []Observation {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Observation(nil), h.obs...)
}

// FitKind selects the regression form for an I/O-rate model.
type FitKind int

// Supported regression forms.
const (
	// FitLinearSizeRanks is Eq. 4: rate = β0·size + β1·ranks (no
	// intercept). Fits the asynchronous staging rate, which scales
	// linearly (§V-A1).
	FitLinearSizeRanks FitKind = iota
	// FitLinearLogRanks is rate = β0 + β1·ln(ranks): the saturating
	// synchronous aggregate rate (dotted lines in Fig. 3).
	FitLinearLogRanks
	// FitLinearRanks is rate = β0 + β1·ranks, provided for the ablation
	// comparing linear and linear-log fits on saturating data.
	FitLinearRanks
	// FitMean is the degenerate-history fallback: within a single run,
	// every request has the same size and rank count, so the regression
	// matrix is singular; the best estimator is then the mean observed
	// rate. FitRate falls back to it automatically.
	FitMean
)

// String names the fit kind.
func (k FitKind) String() string {
	switch k {
	case FitLinearSizeRanks:
		return "linear(size,ranks)"
	case FitLinearLogRanks:
		return "linear-log(ranks)"
	case FitLinearRanks:
		return "linear(ranks)"
	case FitMean:
		return "mean-rate"
	default:
		return fmt.Sprintf("fitkind(%d)", int(k))
	}
}

// ErrInsufficientData is returned when a history cannot support a fit.
var ErrInsufficientData = errors.New("model: insufficient observations")

// RateModel estimates f_io_rate (Eq. 3) from history.
type RateModel struct {
	Kind FitKind
	Fit  stats.Fit
	N    int
	mean float64 // used by FitMean
}

// minObservations before a fit is attempted. Two suffice because the
// degenerate-history path falls back to a mean-rate model.
const minObservations = 2

// FitRate fits a rate model of the given form to the history.
func FitRate(h *History, kind FitKind) (RateModel, error) {
	obs := h.Snapshot()
	if len(obs) < minObservations {
		return RateModel{}, fmt.Errorf("%w: have %d, need %d", ErrInsufficientData, len(obs), minObservations)
	}
	sizes := make([]float64, len(obs))
	ranks := make([]float64, len(obs))
	rates := make([]float64, len(obs))
	for i, o := range obs {
		sizes[i] = float64(o.Bytes)
		ranks[i] = float64(o.Ranks)
		rates[i] = o.Rate
	}
	var fit stats.Fit
	var err error
	switch kind {
	case FitLinearSizeRanks:
		fit, err = stats.LinearNoIntercept2(sizes, ranks, rates)
	case FitLinearLogRanks:
		fit, err = stats.LinearLog(ranks, rates)
	case FitLinearRanks:
		fit, err = stats.Linear(ranks, rates)
	case FitMean:
		return meanModel(rates, len(obs)), nil
	default:
		return RateModel{}, fmt.Errorf("model: unknown fit kind %v", kind)
	}
	if errors.Is(err, stats.ErrDegenerate) {
		// Constant regressors (single-run history): fall back to the
		// mean observed rate.
		return meanModel(rates, len(obs)), nil
	}
	if err != nil {
		return RateModel{}, err
	}
	return RateModel{Kind: kind, Fit: fit, N: len(obs)}, nil
}

func meanModel(rates []float64, n int) RateModel {
	return RateModel{Kind: FitMean, N: n, mean: stats.Mean(rates)}
}

// EstimateRate returns the estimated aggregate rate (bytes/s) for a
// request of the given size and rank count. Estimates are floored at a
// tiny positive rate so downstream divisions are safe.
func (m RateModel) EstimateRate(bytes int64, ranksN int) float64 {
	var r float64
	switch m.Kind {
	case FitLinearSizeRanks:
		r = m.Fit.EvalNoIntercept2(float64(bytes), float64(ranksN))
	case FitLinearLogRanks:
		r = m.Fit.EvalLinearLog(float64(ranksN))
	case FitLinearRanks:
		r = m.Fit.EvalLinear(float64(ranksN))
	case FitMean:
		r = m.mean
	}
	if r < 1 {
		r = 1
	}
	return r
}

// EstimateIOTime is Eq. 3: data_size / f_io_rate.
func (m RateModel) EstimateIOTime(bytes int64, ranksN int) time.Duration {
	secs := float64(bytes) / m.EstimateRate(bytes, ranksN)
	return time.Duration(secs * float64(time.Second))
}

// R2 is the fit's coefficient of determination (Eq. 5).
func (m RateModel) R2() float64 { return m.Fit.R2 }

// Score applies Eq. 5 to an arbitrary observation set: the coefficient
// of determination between the model's predicted and the observed
// aggregate rates. Scoring against a history the model was not fitted
// on measures generalization; tests use it to hold fitted accuracy to
// the paper's §V-C thresholds on fresh run histories.
func (m RateModel) Score(obs []Observation) float64 {
	pred := make([]float64, len(obs))
	meas := make([]float64, len(obs))
	for i, o := range obs {
		pred[i] = m.EstimateRate(o.Bytes, o.Ranks)
		meas[i] = o.Rate
	}
	return stats.R2(pred, meas)
}

// Estimator is the full feedback-loop state of Fig. 2: computation-time
// EWMA plus separate rate histories for synchronous I/O and the
// asynchronous transactional overhead.
type Estimator struct {
	mu        sync.Mutex
	comp      *stats.EWMA
	syncHist  *History
	asyncHist *History
	syncKind  FitKind
	asyncKind FitKind

	syncModel  RateModel
	asyncModel RateModel
	syncOK     bool
	asyncOK    bool
	dirtySync  bool
	dirtyAsync bool
}

// EstimatorOption configures NewEstimator.
type EstimatorOption func(*Estimator)

// WithFitKinds overrides the regression forms (defaults: linear-log for
// sync, Eq. 4 linear for async).
func WithFitKinds(syncKind, asyncKind FitKind) EstimatorOption {
	return func(e *Estimator) {
		e.syncKind = syncKind
		e.asyncKind = asyncKind
	}
}

// WithHistoryBound bounds both histories.
func WithHistoryBound(n int) EstimatorOption {
	return func(e *Estimator) {
		e.syncHist = NewHistory(n)
		e.asyncHist = NewHistory(n)
	}
}

// NewEstimator returns an empty estimator.
func NewEstimator(opts ...EstimatorOption) *Estimator {
	e := &Estimator{
		comp:      stats.NewEWMA(0.5),
		syncHist:  NewHistory(0),
		asyncHist: NewHistory(0),
		syncKind:  FitLinearLogRanks,
		asyncKind: FitLinearSizeRanks,
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// ObserveComp folds a measured computation-phase duration into the EWMA.
func (e *Estimator) ObserveComp(d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.comp.Observe(d.Seconds())
}

// ObserveSyncIO records a synchronous I/O phase: aggregate bytes, rank
// count, blocking duration.
func (e *Estimator) ObserveSyncIO(bytes int64, ranks int, d time.Duration) {
	if d <= 0 {
		return
	}
	e.syncHist.Add(Observation{Bytes: bytes, Ranks: ranks, Rate: float64(bytes) / d.Seconds()})
	e.mu.Lock()
	e.dirtySync = true
	e.mu.Unlock()
}

// ObserveOverhead records an asynchronous staging (transactional
// overhead) phase.
func (e *Estimator) ObserveOverhead(bytes int64, ranks int, d time.Duration) {
	if d <= 0 {
		return
	}
	e.asyncHist.Add(Observation{Bytes: bytes, Ranks: ranks, Rate: float64(bytes) / d.Seconds()})
	e.mu.Lock()
	e.dirtyAsync = true
	e.mu.Unlock()
}

// CompEstimate returns the estimated next computation-phase duration.
func (e *Estimator) CompEstimate() (time.Duration, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.comp.Ready() {
		return 0, false
	}
	return time.Duration(e.comp.Value() * float64(time.Second)), true
}

// refitLocked refreshes stale models.
func (e *Estimator) refitLocked() {
	if e.dirtySync {
		if m, err := FitRate(e.syncHist, e.syncKind); err == nil {
			e.syncModel, e.syncOK = m, true
		}
		e.dirtySync = false
	}
	if e.dirtyAsync {
		if m, err := FitRate(e.asyncHist, e.asyncKind); err == nil {
			e.asyncModel, e.asyncOK = m, true
		}
		e.dirtyAsync = false
	}
}

// SyncModel returns the current synchronous rate model.
func (e *Estimator) SyncModel() (RateModel, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.refitLocked()
	return e.syncModel, e.syncOK
}

// AsyncModel returns the current transactional-overhead rate model.
func (e *Estimator) AsyncModel() (RateModel, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.refitLocked()
	return e.asyncModel, e.asyncOK
}

// SyncHistory returns a snapshot of the synchronous-rate observations.
func (e *Estimator) SyncHistory() []Observation { return e.syncHist.Snapshot() }

// AsyncHistory returns a snapshot of the overhead-rate observations.
func (e *Estimator) AsyncHistory() []Observation { return e.asyncHist.Snapshot() }

// EpochEstimate holds the model's prediction for one future epoch.
type EpochEstimate struct {
	Comp     time.Duration
	SyncIO   time.Duration
	Overhead time.Duration
	Sync     time.Duration // Eq. 2a
	Async    time.Duration // Eq. 2b
}

// Better returns the mode with the smaller estimated epoch time.
func (ee EpochEstimate) Better() trace.Mode {
	if ee.Async < ee.Sync {
		return trace.Async
	}
	return trace.Sync
}

// EstimateEpoch predicts the next epoch's duration under both modes for
// an I/O phase of the given aggregate size and rank count. ok is false
// until the estimator has computation history plus both rate models.
func (e *Estimator) EstimateEpoch(bytes int64, ranks int) (EpochEstimate, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.refitLocked()
	if !e.comp.Ready() || !e.syncOK || !e.asyncOK {
		return EpochEstimate{}, false
	}
	comp := time.Duration(e.comp.Value() * float64(time.Second))
	tIO := e.syncModel.EstimateIOTime(bytes, ranks)
	tOv := e.asyncModel.EstimateIOTime(bytes, ranks)
	est := EpochEstimate{
		Comp:     comp,
		SyncIO:   tIO,
		Overhead: tOv,
		Sync:     tIO + comp,
		Async:    maxDur(comp, tIO-comp) + tOv,
	}
	return est, true
}

// EstimateApp is Eq. 1 for a run of iters identical epochs.
func EstimateApp(init, term, epoch time.Duration, iters int) time.Duration {
	return init + term + time.Duration(iters)*epoch
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// SlowdownRegion reports whether asynchronous I/O is predicted to be a
// slowdown per the Fig. 1c condition t_comp ≤ t_overhead: no amount of
// overlap amortizes the transactional copy.
func (ee EpochEstimate) SlowdownRegion() bool {
	return ee.Comp <= ee.Overhead
}
