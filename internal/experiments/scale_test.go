package experiments

import (
	"os"
	"testing"

	"asyncio/internal/pfs"
)

// TestRaceAtScale runs one VPIC-IO sweep point at 4096 ranks (128
// Cori-Haswell nodes, 32 ranks each) — both modes, through the parallel
// driver. At this rank count the engine multiplexes thousands of procs
// over one clock, which is exactly where a locking mistake in the
// batched-wakeup or pooled-timer paths would surface; CI runs it under
// -race. Gated behind ASYNCIO_SCALE_TEST because it simulates ~40× more
// ranks than the ordinary test matrix.
func TestRaceAtScale(t *testing.T) { raceAtScale(t) }

// TestRaceAtScaleSharded reruns the 4096-rank point on the 4-shard
// coordinator: the same locking surfaces plus the cross-shard window
// protocol, under -race in CI.
func TestRaceAtScaleSharded(t *testing.T) {
	prev := SetShards(4)
	defer SetShards(prev)
	raceAtScale(t)
}

// TestRaceAtScaleConsistency reruns the 4096-rank point with the POSIX
// consistency model and its checker enabled on every generated system:
// thousands of ranks recording writes into one oracle is exactly where
// a locking mistake in the checker's recorder would surface under
// -race. CI runs it in both halves of the race matrix.
func TestRaceAtScaleConsistency(t *testing.T) {
	sp, err := pfs.ParseConsistency("posix;check=1")
	if err != nil {
		t.Fatal(err)
	}
	SetDefaultConsistency(sp)
	defer SetDefaultConsistency(nil)
	raceAtScale(t)
}

func raceAtScale(t *testing.T) {
	t.Helper()
	if os.Getenv("ASYNCIO_SCALE_TEST") == "" {
		t.Skip("set ASYNCIO_SCALE_TEST=1 to run the 4096-rank point")
	}
	sc := Scale{CoriNodes: []int{128}, SummitNodes: []int{128}, Steps: 2, Days: 1}
	d, err := SimulateSweep("fig3b", sc)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := AssembleSweep(d)
	if err != nil {
		t.Fatal(err)
	}
	s := mustSeries(t, tab, "sync")
	if got := s.X[len(s.X)-1]; got != 4096 {
		t.Fatalf("expected the point to run at 4096 ranks, got %v", got)
	}
	a := mustSeries(t, tab, "async")
	if a.Y[len(a.Y)-1] <= s.Y[len(s.Y)-1] {
		t.Errorf("async rate %.2f ≤ sync rate %.2f at 4096 ranks; expected async to win",
			a.Y[len(a.Y)-1], s.Y[len(s.Y)-1])
	}
}
