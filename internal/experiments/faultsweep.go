package experiments

import (
	"fmt"
	"time"

	"asyncio/internal/core"
	"asyncio/internal/faults"
	"asyncio/internal/systems"
	"asyncio/internal/workloads/vpicio"
)

// defaultFaultSpec, when non-nil, is attached (as a fresh injector per
// run — an injector serves exactly one run) to every system the
// experiments build. cmd/asyncio-bench wires its -faults flag here so
// any figure can be regenerated under an injected fault schedule.
var defaultFaultSpec *faults.Spec

// SetDefaultFaults installs a fault schedule on every system the
// experiment generators construct; the empty string clears it.
func SetDefaultFaults(spec string) error {
	if spec == "" {
		defaultFaultSpec = nil
		return nil
	}
	sp, err := faults.ParseSpec(spec)
	if err != nil {
		return err
	}
	defaultFaultSpec = sp
	return nil
}

// FaultSweep measures how injected storage faults erode the paper's
// headline async-vs-sync comparison: VPIC-IO on Summit under increasing
// transient-error rates on every storage target, with the retry stage
// absorbing the failures. Synchronous rates pay every retry's backoff
// inside the blocking I/O phase; asynchronous rates hide the retries in
// the background stream until the staging pipeline itself saturates.
func FaultSweep(scale Scale) (*Table, error) {
	nodes := scale.SummitNodes[0]
	if len(scale.SummitNodes) > 1 {
		nodes = scale.SummitNodes[1]
	}
	rates := []float64{0, 0.02, 0.05, 0.1, 0.2}
	t := &Table{
		ID:     "faultsweep",
		Title:  fmt.Sprintf("VPIC-IO under injected transient I/O errors, Summit (%d nodes)", nodes),
		XLabel: "error rate", YLabel: "GB/s",
	}
	// Every (rate, mode) run is independent — its own seeded injector,
	// clock, and system — so the sweep fans out through RunParallel with
	// results and retry counts stored by index; the per-rate notes are
	// then emitted in order, identical to the serial sweep.
	type point struct {
		rate    float64
		retries int64
	}
	points := make([]point, 2*len(rates))
	err := RunParallel(len(points), func(i int) error {
		rate := rates[i/2]
		mode := core.ForceSync
		if i%2 == 1 {
			mode = core.ForceAsync
		}
		in, err := faults.New(fmt.Sprintf("seed=11;err=*:%g;retries=10", rate))
		if err != nil {
			return err
		}
		sys := newSystem("summit", nodes, systems.WithFaults(in))
		rep, _, err := vpicio.Run(sys, vpicio.Config{
			Steps: scale.Steps, ComputeTime: 30 * time.Second, Mode: mode,
		})
		if err != nil {
			return fmt.Errorf("faultsweep rate=%g %v: %w", rate, mode, err)
		}
		points[i].rate = gb(rep.Run.PeakRate())
		if c := sys.Metrics.FindCounter(faults.MetricRetries); c != nil {
			points[i].retries = c.Value()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var xs, syncY, asyncY []float64
	for ri, rate := range rates {
		xs = append(xs, rate)
		syncY = append(syncY, points[2*ri].rate)
		asyncY = append(asyncY, points[2*ri+1].rate)
		if rate > 0 {
			t.note("rate %g: %d sync / %d async retries absorbed",
				rate, points[2*ri].retries, points[2*ri+1].retries)
		}
	}
	t.Series = []Series{
		{Name: "sync", X: xs, Y: syncY},
		{Name: "async", X: xs, Y: asyncY},
	}
	t.note("seeded per-op draws; each failed op retries with capped exponential backoff (50 ms × 2ⁿ)")
	return t, nil
}
