package experiments

import (
	"testing"

	"asyncio/internal/stats"
)

// TestModelAccuracy holds the model to the paper's §V-C accuracy claims
// on the two figure configurations that exercise both estimate kinds:
// fig3a (global regression fits over the VPIC-IO weak-scaling sweep) and
// fig5 (per-configuration run-history estimates for Cosmoflow reads).
// The thresholds are the paper's: r² ≥ 0.80 for synchronous I/O and
// ≥ 0.90 for the asynchronous staging rate.
func TestModelAccuracy(t *testing.T) {
	sc := ReducedScale()

	syncR2, asyncR2, err := R2Values(sc)
	if err != nil {
		t.Fatalf("fig3a fits: %v", err)
	}
	t.Logf("fig3a regression: sync r²=%.3f async r²=%.3f", syncR2, asyncR2)
	if syncR2 < 0.80 {
		t.Errorf("fig3a sync r² = %.3f, want ≥ 0.80", syncR2)
	}
	if asyncR2 < 0.90 {
		t.Errorf("fig3a async r² = %.3f, want ≥ 0.90", asyncR2)
	}

	tab, err := Fig5CosmoflowSummit(sc)
	if err != nil {
		t.Fatalf("fig5: %v", err)
	}
	seriesR2 := func(meas, est string) float64 {
		m, okM := tab.SeriesByName(meas)
		e, okE := tab.SeriesByName(est)
		if !okM || !okE {
			t.Fatalf("fig5 table missing series %q/%q", meas, est)
		}
		return stats.R2(e.Y, m.Y)
	}
	fig5Sync := seriesR2("sync", "sync est")
	fig5Async := seriesR2("async", "async est")
	t.Logf("fig5 history estimates: sync r²=%.3f async r²=%.3f", fig5Sync, fig5Async)
	if fig5Sync < 0.80 {
		t.Errorf("fig5 sync r² = %.3f, want ≥ 0.80", fig5Sync)
	}
	if fig5Async < 0.90 {
		t.Errorf("fig5 async r² = %.3f, want ≥ 0.90", fig5Async)
	}
}
