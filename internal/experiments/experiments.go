// Package experiments regenerates every table and figure of the paper's
// evaluation (§V). Each FigXX function runs the relevant workload across
// a scaling sweep on the simulated Summit or Cori-Haswell system, in
// synchronous and asynchronous modes, fits the paper's regression models
// to the collected observations, and returns a Table with the same
// series the paper plots (measured sync, measured async, and the model's
// dotted estimate lines).
//
// Scales: ReducedScale keeps unit-test and benchmark runtime small;
// FullScale reproduces the paper's node counts (up to 2,048 Summit
// nodes / 12,288 ranks) and is what cmd/asyncio-bench runs.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
)

// Series is one plotted line: Y versus X with a name.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Table is the regenerated form of one paper figure.
type Table struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Scale bounds an experiment sweep.
type Scale struct {
	// SummitNodes / CoriNodes are the node counts swept on each system.
	SummitNodes []int
	CoriNodes   []int
	// Steps is the number of epochs per run.
	Steps int
	// Days is the number of repeated runs for the variability study.
	Days int
}

// ReducedScale completes in seconds; used by tests and testing.B benches.
func ReducedScale() Scale {
	return Scale{
		SummitNodes: []int{2, 8, 32, 128},
		CoriNodes:   []int{1, 4, 16, 48},
		Steps:       3,
		Days:        5,
	}
}

// FullScale reproduces the paper's sweeps: Summit up to 2,048 nodes
// (12,288 ranks), Cori to 128 nodes (4,096 ranks).
func FullScale() Scale {
	return Scale{
		SummitNodes: []int{2, 8, 32, 128, 512, 2048},
		CoriNodes:   []int{1, 4, 16, 32, 64, 128},
		Steps:       5,
		Days:        10,
	}
}

// Render writes the table as aligned text: one row per X value, one
// column per series.
func (t *Table) Render(w io.Writer) error {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	cols := []string{t.XLabel}
	for _, s := range t.Series {
		cols = append(cols, s.Name+" ("+t.YLabel+")")
	}
	fmt.Fprintln(tw, strings.Join(cols, "\t"))

	// Collect the union of X values across series.
	xset := map[float64]bool{}
	for _, s := range t.Series {
		for _, x := range s.X {
			xset[x] = true
		}
	}
	xs := make([]float64, 0, len(xset))
	for x := range xset {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	for _, x := range xs {
		row := []string{formatX(x)}
		for _, s := range t.Series {
			row = append(row, lookup(s, x))
		}
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
	return nil
}

func formatX(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%.3g", x)
}

func lookup(s Series, x float64) string {
	for i, sx := range s.X {
		if sx == x {
			return fmt.Sprintf("%.4g", s.Y[i])
		}
	}
	return "-"
}

// SeriesByName returns the named series.
func (t *Table) SeriesByName(name string) (Series, bool) {
	for _, s := range t.Series {
		if s.Name == name {
			return s, true
		}
	}
	return Series{}, false
}

// note appends a formatted note to the table.
func (t *Table) note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// gb converts bytes/s to GB/s for plotting.
func gb(bytesPerSec float64) float64 { return bytesPerSec / 1e9 }
