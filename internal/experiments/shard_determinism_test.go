package experiments

import "testing"

// renderAllSharded is renderAll with every run's event engine split
// into n shards.
func renderAllSharded(t *testing.T, workers, shards int) string {
	t.Helper()
	prev := SetShards(shards)
	defer SetShards(prev)
	return renderAll(t, workers)
}

// TestShardedDeterminism is the sharded engine's contract: every figure
// renders byte-identical whether a run executes on the serial engine or
// across any number of shards. The coordinator's lockstep windows fire
// exactly the serial engine's batches, so shard count — like worker
// count — must be unobservable in every export.
func TestShardedDeterminism(t *testing.T) {
	serial := renderAll(t, 1)
	for _, shards := range []int{2, 4} {
		sharded := renderAllSharded(t, 1, shards)
		if sharded != serial {
			t.Errorf("output differs between serial and %d shards:\n%s",
				shards, firstDiff(serial, sharded))
		}
	}
	// Shards compose with sweep workers: both dimensions at once.
	both := renderAllSharded(t, 4, 2)
	if both != serial {
		t.Errorf("output differs with 4 workers x 2 shards:\n%s", firstDiff(serial, both))
	}
}
