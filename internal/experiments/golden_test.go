package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// updateGoldens regenerates the committed figure goldens instead of
// comparing against them:
//
//	go test -run TestDefaultModelGoldenFigures ./internal/experiments -update-goldens
var updateGoldens = flag.Bool("update-goldens", false, "rewrite testdata/golden_*.txt from the current output")

// goldenFigures are the figure renders pinned byte-for-byte across PRs.
// They run with every knob at its default — no faults, no consistency
// model, serial engine — so any refactor that claims to be
// semantics-preserving when its switch is off must keep these identical.
var goldenFigures = []string{"fig3a", "fig3b", "fig5", "fig7"}

// TestDefaultModelGoldenFigures renders each pinned figure at reduced
// scale and byte-compares it against the committed golden. The goldens
// were captured before the consistency-model refactor (PR 7 outputs),
// so a pass proves the default path is untouched.
func TestDefaultModelGoldenFigures(t *testing.T) {
	reg := Registry()
	for _, id := range goldenFigures {
		id := id
		t.Run(id, func(t *testing.T) {
			gen := reg[id]
			if gen == nil {
				t.Fatalf("figure %q not registered", id)
			}
			tab, err := gen(ReducedScale())
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := tab.Render(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden_"+id+".txt")
			if *updateGoldens {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update-goldens to capture): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s output drifted from the committed golden.\n--- got ---\n%s\n--- want ---\n%s",
					id, buf.Bytes(), want)
			}
		})
	}
}
