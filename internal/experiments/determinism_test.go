package experiments

import (
	"sort"
	"strconv"
	"strings"
	"testing"
)

// renderAll regenerates every registered experiment at tiny scale under
// the given parallelism and returns one concatenated rendering, id by
// id in sorted order.
func renderAll(t *testing.T, workers int) string {
	t.Helper()
	prev := SetParallelism(workers)
	defer SetParallelism(prev)

	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	var sb strings.Builder
	sc := tinyScale()
	for _, id := range ids {
		tab, err := reg[id](sc)
		if err != nil {
			t.Fatalf("%s (parallelism %d): %v", id, workers, err)
		}
		if err := tab.Render(&sb); err != nil {
			t.Fatalf("%s (parallelism %d): rendering: %v", id, workers, err)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestParallelDeterminism is the contract the parallel sweep driver
// must keep: every figure — rate sweeps, the steps and variability
// sweeps, the fault sweep, every ablation — renders byte-identical
// whether its points run serially or across any number of workers.
// Each point owns its clock and system, and results land at fixed
// indexes, so worker count and interleaving must be unobservable.
func TestParallelDeterminism(t *testing.T) {
	serial := renderAll(t, 1)
	for _, workers := range []int{2, 8} {
		parallel := renderAll(t, workers)
		if parallel != serial {
			t.Errorf("output differs between serial and %d workers:\n%s",
				workers, firstDiff(serial, parallel))
		}
	}
}

// firstDiff locates the first differing line for a readable failure.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return "line " + strconv.Itoa(i+1) + ":\n  serial:   " + al[i] + "\n  parallel: " + bl[i]
		}
	}
	return "outputs have different lengths"
}
