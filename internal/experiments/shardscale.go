package experiments

import (
	"fmt"
	"time"

	"asyncio/internal/core"
	"asyncio/internal/systems"
	"asyncio/internal/vclock"
	"asyncio/internal/workloads/vpicio"
)

// ShardScale is the abl-shard ablation: VPIC-IO wall-clock and
// simulator events/second versus intra-run shard count, for sync and
// async I/O at each rank count. It is deliberately NOT in Registry():
// its Y axis is host wall-clock, which no two machines (or even two
// runs) reproduce byte-identically, so it must never enter the
// determinism suites. Run it via `asyncio-bench -shardscale`.
//
// Simulated results are still engine-invariant — every point produces
// the same virtual timeline at any shard count; only the host-side
// throughput varies, which is the quantity under study.
func ShardScale(scale Scale, rankCounts, shardCounts []int) (*Table, error) {
	if len(rankCounts) == 0 {
		// 4096 ranks matches the selfbench scaling workload.
		rankCounts = []int{4096}
		if n := len(scale.SummitNodes); n > 0 && scale.SummitNodes[n-1] >= 1024 {
			// Full scale extends through 64Ki to 1Mi ranks (memory
			// permitting: one goroutine per rank).
			rankCounts = []int{4096, 1 << 16, 1 << 20}
		}
	}
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4, 8}
	}
	t := &Table{
		ID:     "abl-shard",
		Title:  "Engine sharding ablation: simulator events/s vs shard count, VPIC-IO on Summit",
		XLabel: "shards", YLabel: "simulator Mevents/s (host wall-clock)",
	}
	for _, ranks := range rankCounts {
		nodes := (ranks + 5) / 6 // Summit hosts 6 ranks per node
		for _, mode := range []core.Mode{core.ForceSync, core.ForceAsync} {
			var xs, ys []float64
			for _, shards := range shardCounts {
				clk, shardOpts := newClock(shards)
				sys := systems.Summit(clk, nodes, shardOpts...)
				ev0 := vclock.TotalEvents()
				start := time.Now()
				_, _, err := vpicio.Run(sys, vpicio.Config{
					Steps:            2,
					ParticlesPerRank: 64,
					ComputeTime:      time.Second,
					Mode:             mode,
				})
				if err != nil {
					return nil, fmt.Errorf("abl-shard %dr %v shards=%d: %w", ranks, mode, shards, err)
				}
				wall := time.Since(start)
				events := vclock.TotalEvents() - ev0
				xs = append(xs, float64(shards))
				ys = append(ys, float64(events)/wall.Seconds()/1e6)
				t.note("%dr %v shards=%d: %d events in %v", ranks, mode, shards, events, wall.Round(time.Millisecond))
			}
			t.Series = append(t.Series, Series{
				Name: fmt.Sprintf("%v-%dr", mode, ranks), X: xs, Y: ys,
			})
		}
	}
	return t, nil
}
