package experiments

import (
	"fmt"
	"sort"
	"time"

	"asyncio/internal/core"
	"asyncio/internal/model"
	"asyncio/internal/stats"
	"asyncio/internal/systems"
	"asyncio/internal/workloads/bdcats"
	"asyncio/internal/workloads/castro"
	"asyncio/internal/workloads/cosmoflow"
	"asyncio/internal/workloads/eqsim"
	"asyncio/internal/workloads/nyx"
	"asyncio/internal/workloads/vpicio"
)

// Generator regenerates one figure at the given scale.
type Generator func(Scale) (*Table, error)

// Registry maps experiment ids (as in DESIGN.md) to generators.
func Registry() map[string]Generator {
	reg := map[string]Generator{
		"fig1":            Fig1Scenarios,
		"fig7":            Fig7NyxOverlapCori,
		"fig8":            Fig8VPICVariability,
		"r2":              ModelAccuracy,
		"faultsweep":      FaultSweep,
		"crashsweep":      CrashSweep,
		"micro-mem":       MicroMemcpy,
		"micro-gpu":       MicroGPUTransfer,
		"abl-zerocopy":    AblationZeroCopy,
		"abl-fit":         AblationFitKinds,
		"abl-staging":     AblationStaging,
		"abl-bb":          AblationBurstBuffer,
		"abl-agg":         AblationAggregation,
		"abl-blame":       AblationBlame,
		"abl-consistency": AblationConsistency,
	}
	for id := range sweepSpecs() {
		id := id
		reg[id] = func(scale Scale) (*Table, error) { return genSweep(id, scale) }
	}
	return reg
}

// newSystem builds a fresh clock+system for one run, attaching the
// process-wide default fault schedule, consistency model, critical-path
// profiling, and shard setting when they are installed. Callers that
// cannot use the globals (concurrent differently-configured runs) build
// systems through an explicit RunKnobs instead.
func newSystem(name string, nodes int, opts ...systems.Option) *systems.System {
	return snapshotKnobs().newSystem(name, nodes, opts...)
}

// runFn executes one workload run on a fresh system and returns its
// report.
type runFn func(sysName string, nodes int, mode core.Mode) (*core.Report, error)

// sweepPoint is one (scale point, mode) measurement: the peak aggregate
// rate (what the paper plots) plus the model's per-configuration
// estimate, which the runtime derives from that configuration's own
// epoch history (mean observed rate — the Fig. 2 feedback loop's view).
type sweepPoint struct {
	nodes, ranks      int
	sync, async       float64 // peak aggregate rates, bytes/s
	syncEst, asyncEst float64 // model estimates from per-run history
}

// SweepPoint is one simulated (nodes, mode) half of a sweep figure: the
// measurements SimulateSweepPoint extracts from a single independent
// run. Point index i maps to node count i/2 with sync (even i) before
// async (odd i), so a figure's point list is a stable, enumerable unit
// of work — the campaign service content-hashes and memoizes exactly
// these.
type SweepPoint struct {
	Ranks     int
	Peak, Est float64
}

// SweepPointCount returns how many independent points the sweep figure
// id simulates at the given scale (two per node count: sync and async).
func SweepPointCount(id string, scale Scale) (int, error) {
	sp, ok := sweepSpecs()[id]
	if !ok {
		return 0, fmt.Errorf("experiments: %q is not a sweep figure (see SweepIDs)", id)
	}
	return 2 * len(sp.nodes(scale)), nil
}

// SimulateSweepPoint runs exactly one (nodes, mode) half of a sweep
// figure under the given knobs (nil = the process-wide defaults) and
// returns its measurements. Each point is an independent simulation on
// its own clock and system, so any subset of points can be computed on
// any worker — or served from a cache — and reassembled with
// AssembleSweepPoints into output byte-identical to the full sweep.
func SimulateSweepPoint(id string, scale Scale, i int, k *RunKnobs) (SweepPoint, error) {
	sp, ok := sweepSpecs()[id]
	if !ok {
		return SweepPoint{}, fmt.Errorf("experiments: %q is not a sweep figure (see SweepIDs)", id)
	}
	nodeCounts := sp.nodes(scale)
	if i < 0 || i >= 2*len(nodeCounts) {
		return SweepPoint{}, fmt.Errorf("experiments: %s point %d out of range [0,%d)", id, i, 2*len(nodeCounts))
	}
	nodes := nodeCounts[i/2]
	mode := core.ForceSync
	if i%2 == 1 {
		mode = core.ForceAsync
	}
	rep, err := sp.run(scale, k.orDefaults())(sp.sys, nodes, mode)
	if err != nil {
		return SweepPoint{}, fmt.Errorf("%s %d nodes %v: %w", sp.sys, nodes, mode, err)
	}
	return SweepPoint{Ranks: rep.Run.Ranks, Peak: rep.Run.PeakRate(), Est: stats.Mean(rep.Run.Rates())}, nil
}

// AssembleSweepPoints packs index-ordered per-point results (as produced
// by SimulateSweepPoint) into the SweepData AssembleSweep fits and
// renders. The halves must cover every point exactly once.
func AssembleSweepPoints(id string, scale Scale, halves []SweepPoint) (*SweepData, error) {
	sp, ok := sweepSpecs()[id]
	if !ok {
		return nil, fmt.Errorf("experiments: %q is not a sweep figure (see SweepIDs)", id)
	}
	nodeCounts := sp.nodes(scale)
	if len(halves) != 2*len(nodeCounts) {
		return nil, fmt.Errorf("experiments: %s expects %d points, got %d", id, 2*len(nodeCounts), len(halves))
	}
	pts := make([]sweepPoint, len(nodeCounts))
	for i, nodes := range nodeCounts {
		s, a := halves[2*i], halves[2*i+1]
		pts[i] = sweepPoint{
			nodes: nodes, ranks: s.Ranks,
			sync: s.Peak, syncEst: s.Est,
			async: a.Peak, asyncEst: a.Est,
		}
	}
	return &SweepData{ID: id, pts: pts}, nil
}

// estKind selects how a figure's dotted estimate lines are derived.
type estKind int

const (
	// estRegression fits one global regression across the sweep
	// (linear-log for sync, linear in ranks for async) — the §V-A1
	// treatment of the weak-scaling kernels in Fig. 3.
	estRegression estKind = iota
	// estHistory uses each configuration's own run history (the Fig. 2
	// feedback loop): "estimate the I/O performance based on the best
	// maximum I/O rates from previous iterations" (§V-A5). Right for
	// the strong-scaling application figures, whose peak-shaped curves
	// no single regression form fits.
	estHistory
)

// rateTable renders a sweep as the paper's standard four series:
// measured sync/async plus the model's dotted estimate lines.
func rateTable(id, title string, pts []sweepPoint, kind estKind) *Table {
	t := &Table{ID: id, Title: title, XLabel: "MPI ranks", YLabel: "GB/s"}
	n := len(pts)
	ranks := make([]float64, n)
	syncY := make([]float64, n)
	asyncY := make([]float64, n)
	for i, p := range pts {
		ranks[i] = float64(p.ranks)
		syncY[i] = gb(p.sync)
		asyncY[i] = gb(p.async)
	}
	t.Series = append(t.Series,
		Series{Name: "sync", X: ranks, Y: syncY},
		Series{Name: "async", X: ranks, Y: asyncY},
	)
	switch kind {
	case estRegression:
		if fit, err := stats.LinearLog(ranks, syncY); err == nil {
			est := make([]float64, n)
			for i, r := range ranks {
				est[i] = fit.EvalLinearLog(r)
			}
			t.Series = append(t.Series, Series{Name: "sync est", X: ranks, Y: est})
			t.note("sync fit linear-log(ranks): r²=%.3f", fit.R2)
		}
		if fit, err := stats.Linear(ranks, asyncY); err == nil {
			est := make([]float64, n)
			for i, r := range ranks {
				est[i] = fit.EvalLinear(r)
			}
			t.Series = append(t.Series, Series{Name: "async est", X: ranks, Y: est})
			t.note("async fit linear(ranks): r²=%.3f", fit.R2)
		}
	case estHistory:
		syncEst := make([]float64, n)
		asyncEst := make([]float64, n)
		for i, p := range pts {
			syncEst[i] = gb(p.syncEst)
			asyncEst[i] = gb(p.asyncEst)
		}
		t.Series = append(t.Series,
			Series{Name: "sync est", X: ranks, Y: syncEst},
			Series{Name: "async est", X: ranks, Y: asyncEst},
		)
		t.note("estimates from each configuration's run history: sync r²=%.3f, async r²=%.3f",
			stats.R2(syncEst, syncY), stats.R2(asyncEst, asyncY))
	}
	return t
}

// sweepSpec declares a plain rate figure — a (nodes × mode) sweep of
// one workload on one system — in two separable phases: run(scale)
// produces the simulation runner (the expensive part), and the
// title/kind/notes drive assembly into a Table (regression fits, cheap).
// The split lets the wall-clock benchmarks time simulation without
// re-fitting tables, and keeps every such figure on the parallel sweep
// path.
type sweepSpec struct {
	title string
	sys   string
	nodes func(Scale) []int
	run   func(Scale, *RunKnobs) runFn
	kind  estKind
	notes []string
}

func summitNodes(s Scale) []int { return s.SummitNodes }
func coriNodes(s Scale) []int   { return s.CoriNodes }

func vpicRun(scale Scale, k *RunKnobs) runFn {
	return func(sn string, n int, mode core.Mode) (*core.Report, error) {
		rep, _, err := vpicio.Run(k.newSystem(sn, n), vpicio.Config{
			Steps: scale.Steps, ComputeTime: 30 * time.Second, Mode: mode,
		})
		return rep, err
	}
}

func bdcatsRun(scale Scale, k *RunKnobs) runFn {
	return func(sn string, n int, mode core.Mode) (*core.Report, error) {
		return bdcats.Run(k.newSystem(sn, n), bdcats.Config{
			Steps: scale.Steps, ComputeTime: 30 * time.Second, Mode: mode,
		}, nil)
	}
}

func nyxRun(scale Scale, k *RunKnobs, large bool) runFn {
	return func(sn string, n int, mode core.Mode) (*core.Report, error) {
		cfg := nyx.SmallConfig()
		if large {
			cfg = nyx.LargeConfig()
		}
		cfg.Plotfiles = scale.Steps
		cfg.TimePerStep = 2 * time.Second
		cfg.Mode = mode
		return nyx.Run(k.newSystem(sn, n), cfg)
	}
}

func castroRun(scale Scale, k *RunKnobs) runFn {
	return func(sn string, n int, mode core.Mode) (*core.Report, error) {
		return castro.Run(k.newSystem(sn, n), castro.Config{
			Checkpoints: scale.Steps, ComputeTime: 25 * time.Second, Mode: mode,
		})
	}
}

func sweepSpecs() map[string]sweepSpec {
	return map[string]sweepSpec{
		"fig3a": {
			title: "VPIC-IO write aggregate bandwidth, Summit (weak scaling)",
			sys:   "summit", nodes: summitNodes, run: vpicRun, kind: estRegression,
			notes: []string{"compute phase 30 s; 8 properties × 8Mi particles (≈32 MB/property) per rank"},
		},
		"fig3b": {
			title: "VPIC-IO write aggregate bandwidth, Cori-Haswell (weak scaling)",
			sys:   "cori", nodes: coriNodes, run: vpicRun, kind: estRegression,
			notes: []string{"compute phase 30 s; 8 properties × 8Mi particles (≈32 MB/property) per rank"},
		},
		"fig3c": {
			title: "BD-CATS-IO read aggregate bandwidth, Summit (weak scaling)",
			sys:   "summit", nodes: summitNodes, run: bdcatsRun, kind: estRegression,
			notes: []string{"first time step reads synchronously; later steps are served from prefetch staging"},
		},
		"fig3d": {
			title: "BD-CATS-IO read aggregate bandwidth, Cori-Haswell (weak scaling)",
			sys:   "cori", nodes: coriNodes, run: bdcatsRun, kind: estRegression,
			notes: []string{"first time step reads synchronously; later steps are served from prefetch staging"},
		},
		"fig4a": {
			title: "Nyx (large, 2048³) plotfile aggregate bandwidth, Summit (strong scaling)",
			sys:   "summit", nodes: summitNodes,
			run:   func(s Scale, k *RunKnobs) runFn { return nyxRun(s, k, true) },
			kind:  estHistory,
			notes: []string{"plotfile every 50 steps; per-rank data shrinks with rank count"},
		},
		"fig4b": {
			title: "Nyx (small, 256³) plotfile aggregate bandwidth, Cori-Haswell (strong scaling)",
			sys:   "cori", nodes: coriNodes,
			run:   func(s Scale, k *RunKnobs) runFn { return nyxRun(s, k, false) },
			kind:  estHistory,
			notes: []string{"small per-rank requests keep sync poor and cap the async staging rate (§V-A3)"},
		},
		"fig4c": {
			title: "Castro checkpoint aggregate bandwidth, Summit (strong scaling)",
			sys:   "summit", nodes: summitNodes, run: castroRun, kind: estHistory,
			notes: []string{"128³ domain, 6 components, 2 particles/cell"},
		},
		"fig4d": {
			title: "Castro checkpoint aggregate bandwidth, Cori-Haswell (strong scaling)",
			sys:   "cori", nodes: coriNodes, run: castroRun, kind: estHistory,
			notes: []string{"128³ domain, 6 components, 2 particles/cell"},
		},
		"fig5": {
			title: "Cosmoflow batch-read aggregate bandwidth, Summit",
			sys:   "summit", nodes: summitNodes,
			run: func(scale Scale, k *RunKnobs) runFn {
				return func(sn string, n int, mode core.Mode) (*core.Report, error) {
					return cosmoflow.Run(k.newSystem(sn, n), cosmoflow.Config{
						Epochs: 1, StepsPerEpoch: scale.Steps + 1,
						TrainTime: 60 * time.Second, Mode: mode,
					})
				}
			},
			kind:  estHistory,
			notes: []string{"128³ voxel samples, batch size 8; async = double-buffered DataLoader"},
		},
		"fig6": {
			title: "EQSIM checkpoint aggregate bandwidth, Summit (strong scaling)",
			sys:   "summit", nodes: summitNodes,
			run: func(scale Scale, k *RunKnobs) runFn {
				return func(sn string, n int, mode core.Mode) (*core.Report, error) {
					return eqsim.Run(k.newSystem(sn, n), eqsim.Config{
						Checkpoints: scale.Steps, Mode: mode,
					})
				}
			},
			kind:  estHistory,
			notes: []string{"grid 600×600×340 (h=50), checkpoint every 100 steps"},
		},
	}
}

// SweepData holds the simulated points of one sweep figure, ready for
// AssembleSweep. It separates the expensive phase (simulation) from the
// cheap one (fits and table assembly) so benchmarks can time them apart.
type SweepData struct {
	ID  string
	pts []sweepPoint
}

// SweepIDs lists the figures that expose the two-phase
// SimulateSweep/AssembleSweep path, sorted.
func SweepIDs() []string {
	specs := sweepSpecs()
	ids := make([]string, 0, len(specs))
	for id := range specs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// SimulateSweep runs only the simulations of a sweep figure (in
// parallel across points, under the process-wide default knobs read
// once up front) and returns the collected points. Every point is an
// independent simulation on its own clock and system, so the points
// fan out through RunParallel with each result stored at its index —
// the collected data is identical serial or parallel, and identical to
// computing the points one at a time through SimulateSweepPoint.
func SimulateSweep(id string, scale Scale) (*SweepData, error) {
	n, err := SweepPointCount(id, scale)
	if err != nil {
		return nil, err
	}
	k := snapshotKnobs()
	halves := make([]SweepPoint, n)
	err = RunParallel(n, func(i int) error {
		p, perr := SimulateSweepPoint(id, scale, i, k)
		halves[i] = p
		return perr
	})
	if err != nil {
		return nil, err
	}
	return AssembleSweepPoints(id, scale, halves)
}

// AssembleSweep fits the figure's estimate lines over previously
// simulated points and builds the Table.
func AssembleSweep(d *SweepData) (*Table, error) {
	sp, ok := sweepSpecs()[d.ID]
	if !ok {
		return nil, fmt.Errorf("experiments: %q is not a sweep figure (see SweepIDs)", d.ID)
	}
	t := rateTable(d.ID, sp.title, d.pts, sp.kind)
	for _, n := range sp.notes {
		t.note("%s", n)
	}
	return t, nil
}

func genSweep(id string, scale Scale) (*Table, error) {
	d, err := SimulateSweep(id, scale)
	if err != nil {
		return nil, err
	}
	return AssembleSweep(d)
}

// Fig3aVPICWriteSummit is Fig. 3a: VPIC-IO weak-scaling writes, Summit.
func Fig3aVPICWriteSummit(scale Scale) (*Table, error) { return genSweep("fig3a", scale) }

// Fig3bVPICWriteCori is Fig. 3b: VPIC-IO weak-scaling writes, Cori.
func Fig3bVPICWriteCori(scale Scale) (*Table, error) { return genSweep("fig3b", scale) }

// Fig3cBDCATSReadSummit is Fig. 3c: BD-CATS-IO weak-scaling reads,
// Summit.
func Fig3cBDCATSReadSummit(scale Scale) (*Table, error) { return genSweep("fig3c", scale) }

// Fig3dBDCATSReadCori is Fig. 3d: BD-CATS-IO weak-scaling reads, Cori.
func Fig3dBDCATSReadCori(scale Scale) (*Table, error) { return genSweep("fig3d", scale) }

// Fig4aNyxSummit is Fig. 4a: Nyx large configuration (2048³), Summit,
// strong scaling.
func Fig4aNyxSummit(scale Scale) (*Table, error) { return genSweep("fig4a", scale) }

// Fig4bNyxCori is Fig. 4b: Nyx small configuration (256³), Cori.
func Fig4bNyxCori(scale Scale) (*Table, error) { return genSweep("fig4b", scale) }

// Fig4cCastroSummit is Fig. 4c: Castro, Summit, strong scaling.
func Fig4cCastroSummit(scale Scale) (*Table, error) { return genSweep("fig4c", scale) }

// Fig4dCastroCori is Fig. 4d: Castro, Cori, strong scaling.
func Fig4dCastroCori(scale Scale) (*Table, error) { return genSweep("fig4d", scale) }

// Fig5CosmoflowSummit is Fig. 5: Cosmoflow training reads, Summit.
func Fig5CosmoflowSummit(scale Scale) (*Table, error) { return genSweep("fig5", scale) }

// Fig6EQSIMSummit is Fig. 6: EQSIM/SW4 checkpoints, Summit, strong
// scaling.
func Fig6EQSIMSummit(scale Scale) (*Table, error) { return genSweep("fig6", scale) }

// Fig7NyxOverlapCori is Fig. 7: Nyx on Cori with the number of time
// steps per computation phase swept, comparing application duration
// under both modes plus the model's estimate (Eq. 1).
func Fig7NyxOverlapCori(scale Scale) (*Table, error) {
	stepsSweep := []int{1, 3, 6, 12, 24, 48, 96, 192}
	// A moderate allocation where one plotfile costs a few compute
	// steps — the regime where checkpoint frequency matters (the paper
	// varied exactly this trade-off).
	nodes := 4
	if scale.CoriNodes[len(scale.CoriNodes)-1] < nodes {
		nodes = scale.CoriNodes[len(scale.CoriNodes)-1]
	}
	t := &Table{
		ID:     "fig7",
		Title:  fmt.Sprintf("Nyx application duration vs steps per computation phase, Cori (%d nodes)", nodes),
		XLabel: "steps/phase", YLabel: "seconds",
	}
	// Each steps-per-phase point owns an estimator shared only by its
	// two runs (sync feeds it, then async), so points are independent
	// and run in parallel; the two modes within a point stay sequential.
	type point struct {
		syncDur, asyncDur, syncEst, asyncEst float64
	}
	points := make([]point, len(stepsSweep))
	err := RunParallel(len(stepsSweep), func(si int) error {
		steps := stepsSweep[si]
		est := model.NewEstimator()
		var durs [2]float64
		var reps [2]*core.Report
		for i, mode := range []core.Mode{core.ForceSync, core.ForceAsync} {
			cfg := nyx.SmallConfig()
			cfg.Plotfiles = scale.Steps
			cfg.StepsPerPlot = steps
			cfg.TimePerStep = 30 * time.Millisecond
			cfg.Mode = mode
			cfg.Estimator = est
			rep, err := nyx.Run(newSystem("cori", nodes), cfg)
			if err != nil {
				return fmt.Errorf("fig7 steps=%d %v: %w", steps, mode, err)
			}
			durs[i] = rep.Run.TotalTime().Seconds()
			reps[i] = rep
		}
		pt := point{syncDur: durs[0], asyncDur: durs[1]}
		// Model estimate (Eq. 1 + Eq. 2) from the shared estimator fed
		// by both runs.
		bytes := reps[0].Run.Records[0].Bytes
		if ee, ok := est.EstimateEpoch(bytes, reps[0].Run.Ranks); ok {
			pt.syncEst = model.EstimateApp(
				reps[0].Run.InitTime, reps[0].Run.TermTime, ee.Sync, scale.Steps).Seconds()
			pt.asyncEst = model.EstimateApp(
				reps[1].Run.InitTime, reps[1].Run.TermTime, ee.Async, scale.Steps).Seconds()
		}
		points[si] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	var xs, syncY, asyncY, syncEst, asyncEst []float64
	for si, steps := range stepsSweep {
		xs = append(xs, float64(steps))
		syncY = append(syncY, points[si].syncDur)
		asyncY = append(asyncY, points[si].asyncDur)
		syncEst = append(syncEst, points[si].syncEst)
		asyncEst = append(asyncEst, points[si].asyncEst)
	}
	t.Series = []Series{
		{Name: "sync", X: xs, Y: syncY},
		{Name: "async", X: xs, Y: asyncY},
		{Name: "sync est", X: xs, Y: syncEst},
		{Name: "async est", X: xs, Y: asyncEst},
	}
	t.note("fewer steps per phase = more frequent checkpoints; async advantage shrinks as compute becomes too short to overlap")
	return t, nil
}

// Fig8VPICVariability is Fig. 8: VPIC-IO aggregate bandwidth across
// repeated runs on different days with backend contention — synchronous
// rates scatter with the day's contention, asynchronous rates stay
// consistent.
func Fig8VPICVariability(scale Scale) (*Table, error) {
	nodes := scale.SummitNodes[len(scale.SummitNodes)-1]
	t := &Table{
		ID:     "fig8",
		Title:  fmt.Sprintf("VPIC-IO variability across days, Summit (%d nodes)", nodes),
		XLabel: "day", YLabel: "GB/s",
	}
	const seed = 20230601
	// Every (day, mode) run is independent: its own clock, system, and
	// contention factor derived only from (seed, day).
	rates := make([]float64, 2*scale.Days)
	err := RunParallel(len(rates), func(i int) error {
		day := i / 2
		mode := core.ForceSync
		if i%2 == 1 {
			mode = core.ForceAsync
		}
		sys := newSystem("summit", nodes, systems.WithContention(seed, int64(day)))
		rep, _, err := vpicio.Run(sys, vpicio.Config{
			Steps: scale.Steps, ComputeTime: 30 * time.Second, Mode: mode,
		})
		if err != nil {
			return fmt.Errorf("fig8 day %d %v: %w", day, mode, err)
		}
		rates[i] = gb(rep.Run.PeakRate())
		return nil
	})
	if err != nil {
		return nil, err
	}
	var xs, syncY, asyncY []float64
	for day := 0; day < scale.Days; day++ {
		xs = append(xs, float64(day))
		syncY = append(syncY, rates[2*day])
		asyncY = append(asyncY, rates[2*day+1])
	}
	t.Series = []Series{
		{Name: "sync", X: xs, Y: syncY},
		{Name: "async", X: xs, Y: asyncY},
	}
	t.note("sync CV=%.3f, async CV=%.3f (async hides system-level contention)",
		stats.CV(syncY), stats.CV(asyncY))
	return t, nil
}

// Fig1Scenarios reproduces Fig. 1's three timelines from the epoch
// equations: ideal overlap, partial overlap, and the slowdown scenario
// where the transactional overhead exceeds the computation phase.
func Fig1Scenarios(Scale) (*Table, error) {
	type scenario struct {
		name               string
		comp, io, overhead time.Duration
	}
	cases := []scenario{
		{"ideal (comp > io)", 30 * time.Second, 10 * time.Second, 1 * time.Second},
		{"partial (comp < io)", 10 * time.Second, 30 * time.Second, 1 * time.Second},
		{"slowdown (comp <= overhead)", 500 * time.Millisecond, 1 * time.Second, 1500 * time.Millisecond},
	}
	t := &Table{
		ID:     "fig1",
		Title:  "Epoch-time scenarios (Eq. 2a vs Eq. 2b)",
		XLabel: "scenario", YLabel: "seconds",
	}
	var xs, syncY, asyncY []float64
	for i, c := range cases {
		xs = append(xs, float64(i+1))
		syncEpoch := c.io + c.comp
		asyncEpoch := maxDur(c.comp, c.io-c.comp) + c.overhead
		syncY = append(syncY, syncEpoch.Seconds())
		asyncY = append(asyncY, asyncEpoch.Seconds())
		verdict := "async wins"
		if asyncEpoch >= syncEpoch {
			verdict = "sync wins"
		}
		t.note("scenario %d = %s: %s", i+1, c.name, verdict)
	}
	t.Series = []Series{
		{Name: "sync epoch", X: xs, Y: syncY},
		{Name: "async epoch", X: xs, Y: asyncY},
	}
	return t, nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// ModelAccuracy reproduces §V-C's accuracy claims: across a VPIC-IO
// scaling sweep the linear fits reach r² ≥ 80% for synchronous I/O and
// ≥ 90% for the asynchronous staging rate.
//
// The sweep stays serial on purpose: every run feeds one shared
// estimator (the Fig. 2 feedback loop accumulates observations run over
// run), so the points are not independent the way the rate-figure
// sweeps are.
func ModelAccuracy(scale Scale) (*Table, error) {
	est := model.NewEstimator(model.WithFitKinds(model.FitLinearLogRanks, model.FitLinearRanks))
	var ranks, syncMeas, asyncMeas []float64
	for _, nodes := range scale.SummitNodes {
		for _, mode := range []core.Mode{core.ForceSync, core.ForceAsync} {
			rep, _, err := vpicio.Run(newSystem("summit", nodes), vpicio.Config{
				Steps: scale.Steps, ComputeTime: 30 * time.Second, Mode: mode,
				Estimator: est,
			})
			if err != nil {
				return nil, err
			}
			if mode == core.ForceSync {
				ranks = append(ranks, float64(rep.Run.Ranks))
				syncMeas = append(syncMeas, gb(rep.Run.PeakRate()))
			} else {
				asyncMeas = append(asyncMeas, gb(rep.Run.PeakRate()))
			}
		}
	}
	t := &Table{
		ID:     "r2",
		Title:  "Model accuracy (§V-C): measured vs fitted aggregate rates, VPIC-IO Summit",
		XLabel: "MPI ranks", YLabel: "GB/s",
	}
	t.Series = append(t.Series,
		Series{Name: "sync", X: ranks, Y: syncMeas},
		Series{Name: "async", X: ranks, Y: asyncMeas},
	)
	sm, okS := est.SyncModel()
	am, okA := est.AsyncModel()
	if okS {
		fitted := make([]float64, len(ranks))
		for i, r := range ranks {
			fitted[i] = gb(sm.EstimateRate(0, int(r)))
		}
		t.Series = append(t.Series, Series{Name: "sync est", X: ranks, Y: fitted})
		t.note("sync %v: r²=%.3f (paper: ≥0.80)", sm.Kind, sm.R2())
	}
	if okA {
		fitted := make([]float64, len(ranks))
		for i, r := range ranks {
			fitted[i] = gb(am.EstimateRate(0, int(r)))
		}
		t.Series = append(t.Series, Series{Name: "async est", X: ranks, Y: fitted})
		t.note("async %v: r²=%.3f (paper: ≥0.90)", am.Kind, am.R2())
	}
	return t, nil
}

// R2Values runs ModelAccuracy's underlying fits and returns (syncR2,
// asyncR2) for programmatic assertions. Serial for the same reason as
// ModelAccuracy: one estimator accumulates across the whole sweep.
func R2Values(scale Scale) (float64, float64, error) {
	est := model.NewEstimator(model.WithFitKinds(model.FitLinearLogRanks, model.FitLinearRanks))
	for _, nodes := range scale.SummitNodes {
		for _, mode := range []core.Mode{core.ForceSync, core.ForceAsync} {
			if _, _, err := vpicio.Run(newSystem("summit", nodes), vpicio.Config{
				Steps: scale.Steps, ComputeTime: 30 * time.Second, Mode: mode,
				Estimator: est,
			}); err != nil {
				return 0, 0, err
			}
		}
	}
	sm, okS := est.SyncModel()
	am, okA := est.AsyncModel()
	if !okS || !okA {
		return 0, 0, fmt.Errorf("experiments: models not fitted")
	}
	return sm.R2(), am.R2(), nil
}

// MicroMemcpy is the §III-B1 memcpy micro-benchmark: single-copy
// bandwidth versus size on both systems' nodes, showing the knee below
// ~32 MB.
func MicroMemcpy(Scale) (*Table, error) {
	sizes := []int64{64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 32 << 20, 128 << 20, 512 << 20}
	t := &Table{
		ID:     "micro-mem",
		Title:  "memcpy micro-benchmark: copy bandwidth vs size",
		XLabel: "MB", YLabel: "GB/s",
	}
	summit := newSystem("summit", 1)
	cori := newSystem("cori", 1)
	var xs, sy, cy []float64
	for _, sz := range sizes {
		xs = append(xs, float64(sz)/1e6)
		sy = append(sy, gb(summit.NodeOf(0).MemcpyBandwidth(sz)))
		cy = append(cy, gb(cori.NodeOf(0).MemcpyBandwidth(sz)))
	}
	t.Series = []Series{
		{Name: "summit node", X: xs, Y: sy},
		{Name: "cori node", X: xs, Y: cy},
	}
	t.note("bandwidth is constant above ~32 MB, penalized below (§III-B1)")
	return t, nil
}

// MicroGPUTransfer is the §III-B1 GPU micro-benchmark: effective
// CPU↔GPU bandwidth versus size, pinned vs unpinned host memory.
func MicroGPUTransfer(Scale) (*Table, error) {
	sizes := []int64{64 << 10, 1 << 20, 10 << 20, 100 << 20, 1 << 30}
	t := &Table{
		ID:     "micro-gpu",
		Title:  "GPU transfer micro-benchmark (Summit NVLink 2.0)",
		XLabel: "MB", YLabel: "GB/s",
	}
	node := newSystem("summit", 1).NodeOf(0)
	var xs, pinned, unpinned []float64
	for _, sz := range sizes {
		xs = append(xs, float64(sz)/1e6)
		pinned = append(pinned, gb(node.GPUBandwidth(sz, true)))
		unpinned = append(unpinned, gb(node.GPUBandwidth(sz, false)))
	}
	t.Series = []Series{
		{Name: "pinned", X: xs, Y: pinned},
		{Name: "unpinned", X: xs, Y: unpinned},
	}
	t.note("pinned transfers amortize DMA setup above ~10 MB and approach the 50 GB/s link peak")
	return t, nil
}

// AblationZeroCopy isolates the transactional overhead: asynchronous
// VPIC-IO with and without the staging copy. Without it the slowdown
// region of Fig. 1c cannot exist.
func AblationZeroCopy(scale Scale) (*Table, error) {
	nodes := scale.SummitNodes
	t := &Table{
		ID:     "abl-zerocopy",
		Title:  "Ablation: transactional copy vs zero-copy async, VPIC-IO Summit",
		XLabel: "MPI ranks", YLabel: "s (I/O phase)",
	}
	type point struct {
		ranks float64
		io    float64
	}
	points := make([]point, 2*len(nodes))
	err := RunParallel(len(points), func(i int) error {
		n := nodes[i/2]
		zero := i%2 == 1
		cfg := vpicio.Config{Steps: scale.Steps, ComputeTime: 30 * time.Second, Mode: core.ForceAsync}
		cfg.Env.ZeroCopy = zero
		rep, _, err := vpicio.Run(newSystem("summit", n), cfg)
		if err != nil {
			return err
		}
		points[i] = point{
			ranks: float64(rep.Run.Ranks),
			io:    rep.Run.Records[len(rep.Run.Records)-1].IOTime.Seconds(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var ranks, withCopy, zeroCopy []float64
	for i := range nodes {
		ranks = append(ranks, points[2*i].ranks)
		withCopy = append(withCopy, points[2*i].io)
		zeroCopy = append(zeroCopy, points[2*i+1].io)
	}
	t.Series = []Series{
		{Name: "with copy", X: ranks, Y: withCopy},
		{Name: "zero-copy", X: ranks, Y: zeroCopy},
	}
	t.note("zero-copy async has no blocking I/O phase at all; the copy is the entire visible async cost")
	return t, nil
}

// AblationFitKinds compares linear and linear-log fits on saturating
// synchronous data, justifying the paper's linear-log choice.
func AblationFitKinds(scale Scale) (*Table, error) {
	ranks := make([]float64, len(scale.SummitNodes))
	rates := make([]float64, len(scale.SummitNodes))
	err := RunParallel(len(scale.SummitNodes), func(i int) error {
		rep, _, err := vpicio.Run(newSystem("summit", scale.SummitNodes[i]), vpicio.Config{
			Steps: scale.Steps, ComputeTime: 30 * time.Second, Mode: core.ForceSync,
		})
		if err != nil {
			return err
		}
		ranks[i] = float64(rep.Run.Ranks)
		rates[i] = gb(rep.Run.PeakRate())
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "abl-fit",
		Title:  "Ablation: linear vs linear-log regression on saturating sync rates",
		XLabel: "MPI ranks", YLabel: "GB/s",
	}
	t.Series = append(t.Series, Series{Name: "measured", X: ranks, Y: rates})
	if lin, err := stats.Linear(ranks, rates); err == nil {
		y := make([]float64, len(ranks))
		for i, r := range ranks {
			y[i] = lin.EvalLinear(r)
		}
		t.Series = append(t.Series, Series{Name: "linear fit", X: ranks, Y: y})
		t.note("linear r²=%.3f", lin.R2)
	}
	if ll, err := stats.LinearLog(ranks, rates); err == nil {
		y := make([]float64, len(ranks))
		for i, r := range ranks {
			y[i] = ll.EvalLinearLog(r)
		}
		t.Series = append(t.Series, Series{Name: "linear-log fit", X: ranks, Y: y})
		t.note("linear-log r²=%.3f", ll.R2)
	}
	return t, nil
}

// AblationBurstBuffer compares synchronous VPIC-IO on Cori's Lustre
// scratch against its DataWarp burst buffer — the faster shared tier
// the related work (DataElevator, MLBS) stages through (§II-C).
func AblationBurstBuffer(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "abl-bb",
		Title:  "Extension: Lustre scratch vs burst buffer, sync VPIC-IO on Cori",
		XLabel: "MPI ranks", YLabel: "GB/s",
	}
	type point struct {
		ranks, rate float64
	}
	points := make([]point, 2*len(scale.CoriNodes))
	err := RunParallel(len(points), func(i int) error {
		n := scale.CoriNodes[i/2]
		bb := i%2 == 1
		sys := newSystem("cori", n)
		cfg := vpicio.Config{Steps: scale.Steps, ComputeTime: 30 * time.Second, Mode: core.ForceSync}
		if bb {
			cfg.Target = sys.BurstBuffer
		}
		rep, _, err := vpicio.Run(sys, cfg)
		if err != nil {
			return err
		}
		points[i] = point{ranks: float64(rep.Run.Ranks), rate: gb(rep.Run.PeakRate())}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var ranks, lustreY, bbY []float64
	for i := range scale.CoriNodes {
		ranks = append(ranks, points[2*i].ranks)
		lustreY = append(lustreY, points[2*i].rate)
		bbY = append(bbY, points[2*i+1].rate)
	}
	t.Series = []Series{
		{Name: "lustre", X: ranks, Y: lustreY},
		{Name: "burst buffer", X: ranks, Y: bbY},
	}
	t.note("the burst buffer lifts synchronous rates but still cannot match async staging to node-local memory")
	return t, nil
}

// AblationStaging compares staging locations for the transactional copy:
// DRAM, node-local SSD, and GPU-sourced (pinned) staging on Summit.
func AblationStaging(scale Scale) (*Table, error) {
	nodes := scale.SummitNodes
	t := &Table{
		ID:     "abl-staging",
		Title:  "Ablation: staging location for async writes, EQSIM Summit",
		XLabel: "MPI ranks", YLabel: "GB/s",
	}
	kinds := []struct {
		name string
		mod  func(*eqsim.Config)
	}{
		{"dram", func(*eqsim.Config) {}},
		{"ssd", func(c *eqsim.Config) { c.Env.SSD = true }},
		{"gpu+dram", func(c *eqsim.Config) { c.Env.GPU = true; c.Env.Pinned = true }},
	}
	type point struct {
		ranks, rate float64
	}
	points := make([]point, len(nodes)*len(kinds))
	err := RunParallel(len(points), func(i int) error {
		n := nodes[i/len(kinds)]
		k := kinds[i%len(kinds)]
		cfg := eqsim.Config{Checkpoints: scale.Steps, Mode: core.ForceAsync}
		k.mod(&cfg)
		rep, err := eqsim.Run(newSystem("summit", n), cfg)
		if err != nil {
			return err
		}
		points[i] = point{ranks: float64(rep.Run.Ranks), rate: gb(rep.Run.PeakRate())}
		return nil
	})
	if err != nil {
		return nil, err
	}
	xs := make([]float64, len(nodes))
	ys := make([][]float64, len(kinds))
	for ni := range nodes {
		for ki := range kinds {
			p := points[ni*len(kinds)+ki]
			xs[ni] = p.ranks
			ys[ki] = append(ys[ki], p.rate)
		}
	}
	for ki, k := range kinds {
		t.Series = append(t.Series, Series{Name: k.name, X: xs, Y: ys[ki]})
	}
	t.note("DRAM staging is fastest; SSD staging trades speed for not consuming memory (§VI-A)")
	return t, nil
}
