package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// tinyScale keeps the full-matrix tests fast.
func tinyScale() Scale {
	return Scale{
		SummitNodes: []int{1, 4, 16},
		CoriNodes:   []int{1, 2, 4},
		Steps:       2,
		Days:        4,
	}
}

func mustSeries(t *testing.T, tab *Table, name string) Series {
	t.Helper()
	s, ok := tab.SeriesByName(name)
	if !ok {
		t.Fatalf("%s: series %q missing (have %v)", tab.ID, name, seriesNames(tab))
	}
	return s
}

func seriesNames(tab *Table) []string {
	var out []string
	for _, s := range tab.Series {
		out = append(out, s.Name)
	}
	return out
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "demo", XLabel: "ranks", YLabel: "GB/s",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Name: "b", X: []float64{2, 4}, Y: []float64{1, 2}},
		},
		Notes: []string{"hello"},
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "ranks", "a (GB/s)", "b (GB/s)", "note: hello", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	want := []string{
		"fig1", "fig3a", "fig3b", "fig3c", "fig3d",
		"fig4a", "fig4b", "fig4c", "fig4d",
		"fig5", "fig6", "fig7", "fig8",
		"r2", "micro-mem", "micro-gpu",
		"abl-zerocopy", "abl-fit", "abl-staging", "abl-bb",
		"abl-agg", "abl-blame", "abl-consistency",
		"faultsweep", "crashsweep",
	}
	for _, id := range want {
		if reg[id] == nil {
			t.Errorf("registry missing %q", id)
		}
	}
	if len(reg) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(reg), len(want))
	}
}

func TestFig3aShape(t *testing.T) {
	tab, err := Fig3aVPICWriteSummit(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	syncS := mustSeries(t, tab, "sync")
	asyncS := mustSeries(t, tab, "async")
	mustSeries(t, tab, "sync est")
	mustSeries(t, tab, "async est")
	// Weak scaling: both grow with ranks; async above sync everywhere.
	for i := 1; i < len(syncS.Y); i++ {
		if syncS.Y[i] <= syncS.Y[i-1] {
			t.Errorf("sync not growing pre-knee: %v", syncS.Y)
		}
	}
	for i := range asyncS.Y {
		if asyncS.Y[i] <= syncS.Y[i] {
			t.Errorf("async %v not above sync %v at ranks %v", asyncS.Y[i], syncS.Y[i], asyncS.X[i])
		}
	}
}

func TestFig3cAsyncReadsOrdersOfMagnitudeFaster(t *testing.T) {
	tab, err := Fig3cBDCATSReadSummit(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	syncS := mustSeries(t, tab, "sync")
	asyncS := mustSeries(t, tab, "async")
	last := len(syncS.Y) - 1
	if asyncS.Y[last] < 5*syncS.Y[last] {
		t.Fatalf("async read %v not >> sync %v", asyncS.Y[last], syncS.Y[last])
	}
}

func TestFig8AsyncHidesVariability(t *testing.T) {
	tab, err := Fig8VPICVariability(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	syncS := mustSeries(t, tab, "sync")
	asyncS := mustSeries(t, tab, "async")
	cv := func(ys []float64) float64 {
		var mean float64
		for _, y := range ys {
			mean += y
		}
		mean /= float64(len(ys))
		var v float64
		for _, y := range ys {
			v += (y - mean) * (y - mean)
		}
		if mean == 0 {
			return 0
		}
		return v / float64(len(ys)) / (mean * mean)
	}
	if cv(asyncS.Y) >= cv(syncS.Y) {
		t.Fatalf("async variability %v not below sync %v", cv(asyncS.Y), cv(syncS.Y))
	}
}

func TestFig1ScenarioVerdicts(t *testing.T) {
	tab, err := Fig1Scenarios(Scale{})
	if err != nil {
		t.Fatal(err)
	}
	syncS := mustSeries(t, tab, "sync epoch")
	asyncS := mustSeries(t, tab, "async epoch")
	// Scenario 1 (ideal) and 2 (partial): async wins. Scenario 3
	// (slowdown): sync wins.
	if asyncS.Y[0] >= syncS.Y[0] || asyncS.Y[1] >= syncS.Y[1] {
		t.Fatalf("async should win scenarios 1-2: %v vs %v", asyncS.Y, syncS.Y)
	}
	if asyncS.Y[2] <= syncS.Y[2] {
		t.Fatalf("sync should win scenario 3: %v vs %v", asyncS.Y, syncS.Y)
	}
}

func TestModelAccuracyMeetsPaperThresholds(t *testing.T) {
	syncR2, asyncR2, err := R2Values(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if syncR2 < 0.80 {
		t.Errorf("sync r² = %.3f, paper claims ≥ 0.80", syncR2)
	}
	if asyncR2 < 0.90 {
		t.Errorf("async r² = %.3f, paper claims ≥ 0.90", asyncR2)
	}
}

func TestMicroMemcpyKnee(t *testing.T) {
	tab, err := MicroMemcpy(Scale{})
	if err != nil {
		t.Fatal(err)
	}
	s := mustSeries(t, tab, "summit node")
	// Bandwidth at 32 MB within 5% of the largest size's bandwidth.
	var bw32, bwMax float64
	for i, x := range s.X {
		if x == 32*(1<<20)/1e6 {
			bw32 = s.Y[i]
		}
		if s.Y[i] > bwMax {
			bwMax = s.Y[i]
		}
	}
	if bw32 < 0.95*bwMax {
		t.Fatalf("bw(32MB)=%v not ~constant vs max %v", bw32, bwMax)
	}
	if s.Y[0] > 0.8*bwMax {
		t.Fatalf("small-copy bandwidth %v not penalized (max %v)", s.Y[0], bwMax)
	}
}

func TestMicroGPUAmortization(t *testing.T) {
	tab, err := MicroGPUTransfer(Scale{})
	if err != nil {
		t.Fatal(err)
	}
	pinned := mustSeries(t, tab, "pinned")
	unpinned := mustSeries(t, tab, "unpinned")
	last := len(pinned.Y) - 1
	if pinned.Y[last] < 45 { // ≈ theoretical 50 GB/s
		t.Fatalf("pinned peak %v GB/s below NVLink theoretical", pinned.Y[last])
	}
	for i := range pinned.Y {
		if unpinned.Y[i] >= pinned.Y[i] {
			t.Fatalf("unpinned %v not below pinned %v", unpinned.Y[i], pinned.Y[i])
		}
	}
}

func TestAblationZeroCopyEliminatesBlockingIO(t *testing.T) {
	sc := tinyScale()
	sc.SummitNodes = []int{1, 4}
	tab, err := AblationZeroCopy(sc)
	if err != nil {
		t.Fatal(err)
	}
	withCopy := mustSeries(t, tab, "with copy")
	zero := mustSeries(t, tab, "zero-copy")
	for i := range zero.Y {
		if zero.Y[i] >= withCopy.Y[i] {
			t.Fatalf("zero-copy io %v not below with-copy %v", zero.Y[i], withCopy.Y[i])
		}
	}
}

func TestAblationFitKindsLinearLogWins(t *testing.T) {
	sc := Scale{SummitNodes: []int{2, 8, 32, 128, 512, 1024}, Steps: 2}
	tab, err := AblationFitKinds(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Notes carry "linear r²=..." and "linear-log r²=..."; on saturating
	// data the linear-log fit must be at least as good.
	var linR2, llR2 float64
	for _, n := range tab.Notes {
		if strings.HasPrefix(n, "linear r²=") {
			if _, err := fmtSscanf(n, "linear r²=%f", &linR2); err != nil {
				t.Fatal(err)
			}
		}
		if strings.HasPrefix(n, "linear-log r²=") {
			if _, err := fmtSscanf(n, "linear-log r²=%f", &llR2); err != nil {
				t.Fatal(err)
			}
		}
	}
	if llR2 < linR2 {
		t.Fatalf("linear-log r² %.3f below linear %.3f on saturating data", llR2, linR2)
	}
}

func TestAblationStagingOrdering(t *testing.T) {
	sc := tinyScale()
	sc.SummitNodes = []int{2}
	tab, err := AblationStaging(sc)
	if err != nil {
		t.Fatal(err)
	}
	dram := mustSeries(t, tab, "dram")
	ssd := mustSeries(t, tab, "ssd")
	if ssd.Y[0] >= dram.Y[0] {
		t.Fatalf("ssd staging %v not below dram %v", ssd.Y[0], dram.Y[0])
	}
}

func TestAblationBurstBufferBeatsLustre(t *testing.T) {
	sc := tinyScale()
	sc.CoriNodes = []int{4}
	tab, err := AblationBurstBuffer(sc)
	if err != nil {
		t.Fatal(err)
	}
	lustre := mustSeries(t, tab, "lustre")
	bb := mustSeries(t, tab, "burst buffer")
	if bb.Y[0] <= lustre.Y[0] {
		t.Fatalf("burst buffer %v not above lustre %v", bb.Y[0], lustre.Y[0])
	}
}

func TestAblationAggregationWinsOnCongestedBackend(t *testing.T) {
	sc := tinyScale()
	sc.CoriNodes = []int{1}
	tab, err := AblationAggregation(sc)
	if err != nil {
		t.Fatal(err)
	}
	direct := mustSeries(t, tab, "sync direct")
	agged := mustSeries(t, tab, "sync aggregated")
	// On the congested backend the merged dispatches amortize the
	// per-request ramp, so aggregation comes out well ahead.
	if agged.Y[0] < 2*direct.Y[0] {
		t.Fatalf("aggregated %v not ≥ 2× direct %v", agged.Y[0], direct.Y[0])
	}
}

func TestFig7AsyncLessSensitiveToCheckpointFrequency(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	sc := Scale{CoriNodes: []int{2}, Steps: 2}
	tab, err := Fig7NyxOverlapCori(sc)
	if err != nil {
		t.Fatal(err)
	}
	syncS := mustSeries(t, tab, "sync")
	asyncS := mustSeries(t, tab, "async")
	// At the shortest compute phases the application runs longer in
	// both modes than with long phases; async durations sit at or below
	// sync everywhere except possibly the degenerate 1-step point.
	for i := 1; i < len(syncS.X); i++ {
		if asyncS.Y[i] > syncS.Y[i]*1.05 {
			t.Fatalf("async duration %v above sync %v at %v steps/phase",
				asyncS.Y[i], syncS.Y[i], syncS.X[i])
		}
	}
	// Relative penalty for frequent checkpoints is smaller with async:
	// compare duration(1 step)/duration(192 steps) normalized by the
	// compute difference... simplified: the absolute extra time sync
	// pays at high checkpoint frequency exceeds async's.
	syncPenalty := syncS.Y[0] - syncS.Y[len(syncS.Y)-1]*0 // duration at most frequent checkpointing
	asyncPenalty := asyncS.Y[0]
	if asyncPenalty >= syncPenalty {
		t.Fatalf("async total %v not below sync %v at 1 step/phase", asyncPenalty, syncPenalty)
	}
}

// fmtSscanf adapts fmt.Sscanf for the note-parsing tests.
func fmtSscanf(s, format string, args ...any) (int, error) {
	return fmt.Sscanf(s, format, args...)
}

// TestDeterministicReproduction is the simulation's headline guarantee:
// re-running an experiment yields bit-identical results, because the
// virtual clock is a deterministic discrete-event simulator.
func TestDeterministicReproduction(t *testing.T) {
	sc := Scale{SummitNodes: []int{2, 8}, Steps: 2, Days: 2}
	render := func() string {
		tab, err := Fig3aVPICWriteSummit(sc)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tab.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("non-deterministic reproduction:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	// Contended runs are deterministic too (seeded).
	renderFig8 := func() string {
		tab, err := Fig8VPICVariability(sc)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tab.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if renderFig8() != renderFig8() {
		t.Fatal("fig8 not deterministic")
	}
}
