package experiments

import (
	"time"

	"asyncio/internal/core"
	"asyncio/internal/pfs"
	"asyncio/internal/workloads/vpicio"
)

// AblationAggregation measures what two-phase-style write aggregation
// (the ioreq pipeline's AggStage) buys back from the small-request
// penalty: a reduced VPIC-IO checkpoint where each rank's per-property
// slab is far below the stripe-efficiency knee, written synchronously
// with aggregation off and on (window = one slot per rank, so each
// property's adjacent rank slabs coalesce into one dispatch per step).
//
// The checkpoint targets a congested backend — aggregate capacity a few
// multiples of one flow's injection rate, the state of a busy shared
// scratch system — because that is the regime the penalty governs: the
// file system serves b+ramp bytes of work per b-byte request, so at 16
// KB per request the backend does ~65× the useful work. On an idle
// backend the per-flow injection cap is the bottleneck instead and
// direct parallel writes win; both columns report honestly whichever
// way it falls at the given scale.
func AblationAggregation(scale Scale) (*Table, error) {
	nodes := scale.CoriNodes
	// Small per-rank slabs: 16 Ki particles → 64 KB per property.
	const particles = 16 << 10

	t := &Table{
		ID:     "abl-agg",
		Title:  "Ablation: collective write aggregation vs direct dispatch, small-request VPIC-IO, congested Lustre (sync)",
		XLabel: "MPI ranks", YLabel: "GB/s",
	}
	// Each (nodes, window) run builds its own congested target on its own
	// clock, so the grid fans out through RunParallel; notes are emitted
	// in node order afterwards, matching the serial sweep.
	type point struct {
		ranks, rate float64
		dispatches  int64
	}
	points := make([]point, 2*len(nodes))
	err := RunParallel(len(points), func(i int) error {
		n := nodes[i/2]
		window := i%2 == 1
		sys := newSystem("cori", n)
		target := pfs.NewTarget(sys.Clk, pfs.TargetConfig{
			Name:        "lustre-congested",
			BackendPeak: 0.3e9,
			PerFlowBW:   0.1e9,
			ReqRamp:     1 << 20,
			MetaLatency: 30 * time.Microsecond,
			OpLatency:   100 * time.Microsecond,
		})
		cfg := vpicio.Config{
			Steps:            scale.Steps,
			ParticlesPerRank: particles,
			ComputeTime:      time.Second,
			Mode:             core.ForceSync,
			Target:           target,
		}
		if window {
			cfg.AggWindow = sys.Size()
		}
		rep, _, err := vpicio.Run(sys, cfg)
		if err != nil {
			return err
		}
		points[i] = point{
			ranks:      float64(rep.Run.Ranks),
			rate:       gb(rep.Run.PeakRate()),
			dispatches: target.Stats().WriteOps,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var ranks, plain, agged []float64
	for ni := range nodes {
		direct, win := points[2*ni], points[2*ni+1]
		ranks = append(ranks, direct.ranks)
		plain = append(plain, direct.rate)
		agged = append(agged, win.rate)
		t.note("%d ranks: %d write dispatches direct, %d aggregated",
			int(direct.ranks), direct.dispatches, win.dispatches)
	}
	t.Series = []Series{
		{Name: "sync direct", X: ranks, Y: plain},
		{Name: "sync aggregated", X: ranks, Y: agged},
	}
	t.note("aggregation merges adjacent rank slabs per dataset into one request, sidestepping the b/(b+ramp) small-request efficiency loss")
	return t, nil
}
