package experiments

import (
	"asyncio/internal/critpath"
	"asyncio/internal/pfs"
	"asyncio/internal/systems"
)

// defaultCritPath, when true, attaches a fresh critical-path recorder
// to every system the experiment generators construct, so each run's
// report carries an analyzed profile. cmd/asyncio-bench wires its
// -critpath/-pprof flags here.
var defaultCritPath bool

// SetCritPathProfiling toggles critical-path recording on every system
// the experiment generators construct.
func SetCritPathProfiling(on bool) { defaultCritPath = on }

// critOpts returns the extra system options critical-path profiling
// requires (none when it is off). Each call hands out a fresh recorder:
// a recorder serves exactly one run. Generators that assemble their
// options manually (crash trials) use this; the figure sweeps go
// through RunKnobs instead.
func critOpts() []systems.Option {
	if !defaultCritPath {
		return nil
	}
	return []systems.Option{systems.WithCritPath(critpath.NewRecorder())}
}

// defaultConsistency, when non-nil, attaches a PFS consistency model
// (built fresh per system — a Consistency serves exactly one run) to
// every system the experiment generators construct. cmd/asyncio-bench
// wires its -consistency flag here.
var defaultConsistency *pfs.ConsistencySpec

// SetDefaultConsistency installs the consistency model every generated
// system runs under; nil restores the historical implicit model.
func SetDefaultConsistency(sp *pfs.ConsistencySpec) { defaultConsistency = sp }

// defaultDurability, when non-nil, replaces the stock GPFS write-back
// model on crash trials whose config does not pin one.
// cmd/asyncio-bench wires its -durability/-durability-seed flags here.
var defaultDurability *pfs.DurabilityConfig

// SetDefaultDurability overrides the durability model crash trials use
// when their config leaves Durability nil; nil restores the built-in
// default (GPFS semantics, seed 1).
func SetDefaultDurability(cfg *pfs.DurabilityConfig) { defaultDurability = cfg }
