package experiments

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"asyncio/internal/core"
	"asyncio/internal/faults"
	"asyncio/internal/hdf5"
	"asyncio/internal/perfetto"
	"asyncio/internal/systems"
	"asyncio/internal/vol"
	"asyncio/internal/workloads/vpicio"
)

// randomFaultSpec composes an arbitrary fault schedule from the trial's
// rng: any subset of fault types, wild parameters, deliberately
// including schedules harsh enough to exhaust retries.
func randomFaultSpec(rng *rand.Rand) string {
	var parts []string
	add := func(f string, args ...any) { parts = append(parts, fmt.Sprintf(f, args...)) }
	targets := []string{"*", "gpfs"}
	tgt := func() string { return targets[rng.Intn(len(targets))] }
	add("seed=%d", rng.Int63n(1<<32))
	if rng.Float64() < 0.7 {
		add("err=%s:%.3f", tgt(), rng.Float64()*0.3)
	}
	if rng.Float64() < 0.5 {
		start := rng.Intn(5)
		add("slow=%s:%.2f@%ds-%ds", tgt(), 0.05+rng.Float64()*0.9, start, start+1+rng.Intn(10))
	}
	if rng.Float64() < 0.4 {
		add("outage=%s@%dms+%dms", tgt(), rng.Intn(10000), 200+rng.Intn(4000))
	}
	if rng.Float64() < 0.3 {
		start := rng.Intn(6)
		add("meta=%s:%dms@%ds-%ds", tgt(), 1+rng.Intn(50), start, start+1+rng.Intn(8))
	}
	if rng.Float64() < 0.3 {
		add("bgstall=%dms+%dms", rng.Intn(8000), 100+rng.Intn(3000))
	}
	if rng.Float64() < 0.3 {
		add("stagecap=%d", int64(1)<<uint(8+rng.Intn(12)))
	}
	add("retries=%d", 1+rng.Intn(8))
	add("backoff=%dms", 1+rng.Intn(40))
	add("maxbackoff=%dms", 50+rng.Intn(400))
	if rng.Float64() < 0.3 {
		add("deadline=%dms", 100+rng.Intn(5000))
	}
	if rng.Float64() < 0.4 {
		add("demote=%d", 10+rng.Intn(400))
	}
	return strings.Join(parts, ";")
}

// trialOutcome captures everything a trial may produce, for the
// determinism comparison.
type trialOutcome struct {
	spec     string
	errText  string
	metrics  []byte
	perfJSON []byte
}

// TestFaultProperty is the tentpole's safety net: across 1000 seeded
// trials, an arbitrary fault schedule applied to a small materialized
// VPIC-IO run must either complete with every byte of every dataset
// correct, or fail with a typed *faults.Error — never panic, deadlock,
// or corrupt data — and re-running the same trial must reproduce
// byte-identical metrics and trace exports.
func TestFaultProperty(t *testing.T) {
	trials := 1000
	if testing.Short() {
		trials = 100
	}
	const (
		steps   = 2
		ranks   = 6 // one Summit node
		perRank = 64
	)
	var failed, succeeded int
	for trial := 0; trial < trials; trial++ {
		first := runFaultTrial(t, int64(trial), steps, perRank)
		second := runFaultTrial(t, int64(trial), steps, perRank)
		if first.errText != second.errText {
			t.Fatalf("trial %d (%s): error not reproducible:\n  %q\nvs\n  %q",
				trial, first.spec, first.errText, second.errText)
		}
		if !bytes.Equal(first.metrics, second.metrics) {
			t.Fatalf("trial %d (%s): metrics exports differ between identical runs", trial, first.spec)
		}
		if !bytes.Equal(first.perfJSON, second.perfJSON) {
			t.Fatalf("trial %d (%s): trace exports differ between identical runs", trial, first.spec)
		}
		if first.errText != "" {
			failed++
		} else {
			succeeded++
		}
	}
	t.Logf("%d trials: %d completed, %d failed with typed errors", trials, succeeded, failed)
	if succeeded == 0 || failed == 0 {
		t.Errorf("want both outcomes exercised: %d completed, %d failed", succeeded, failed)
	}
}

// runFaultTrial runs one seeded trial and verifies its invariants.
func runFaultTrial(t *testing.T, seed int64, steps int, perRank uint64) trialOutcome {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	spec := randomFaultSpec(rng)
	mode := []core.Mode{core.ForceSync, core.ForceAsync, core.Adaptive}[rng.Intn(3)]
	out := trialOutcome{spec: spec}

	in, err := faults.New(spec)
	if err != nil {
		t.Fatalf("trial %d: generated invalid spec %q: %v", seed, spec, err)
	}
	sys := newSystem("summit", 1, systems.WithFaults(in))
	sys.Metrics.EnableSeries()
	rep, raw, err := vpicio.Run(sys, vpicio.Config{
		Steps: steps, ParticlesPerRank: perRank, ComputeTime: 500 * time.Millisecond,
		Mode: mode, Materialize: true,
	})
	if err != nil {
		var fe *faults.Error
		if !errors.As(err, &fe) {
			t.Fatalf("trial %d (%s, %v): non-fault error: %v", seed, spec, mode, err)
		}
		out.errText = err.Error()
		return out
	}

	// Completed: every byte of every dataset must match the fill
	// pattern, regardless of retries, fallbacks, or mode switches.
	verifyTrialFile(t, seed, spec, raw, steps, 6, perRank)
	// And nothing may leak staged accounting.
	if g := sys.Metrics.FindGauge("asyncvol.staged_outstanding_bytes"); g != nil && g.Value() != 0 {
		t.Fatalf("trial %d (%s): staged bytes gauge = %v after completed run", seed, spec, g.Value())
	}

	var mbuf, pbuf bytes.Buffer
	if err := rep.Metrics.WriteCSV(&mbuf, "trial"); err != nil {
		t.Fatalf("trial %d: metrics export: %v", seed, err)
	}
	if err := perfetto.Write(&pbuf, rep.Spans, rep.Metrics); err != nil {
		t.Fatalf("trial %d: trace export: %v", seed, err)
	}
	out.metrics = mbuf.Bytes()
	out.perfJSON = pbuf.Bytes()
	return out
}

// verifyTrialFile checks every step/prop/rank slab against vpicio's
// deterministic fill pattern.
func verifyTrialFile(t *testing.T, seed int64, spec string, closed *hdf5.File, steps, ranks int, perRank uint64) {
	t.Helper()
	raw, err := hdf5.Open(closed.Store())
	if err != nil {
		t.Fatalf("trial %d (%s): reopening: %v", seed, spec, err)
	}
	root := vol.Native{}.Wrap(raw).Root()
	pr := vol.Props{}
	for s := 0; s < steps; s++ {
		g, err := root.OpenGroup(pr, vpicio.StepGroup(s))
		if err != nil {
			t.Fatalf("trial %d (%s): step %d: %v", seed, spec, s, err)
		}
		for pi, prop := range vpicio.Properties {
			ds, err := g.OpenDataset(pr, prop)
			if err != nil {
				t.Fatalf("trial %d (%s): %v", seed, spec, err)
			}
			buf := make([]byte, int(perRank)*4*ranks)
			if err := ds.Read(pr, nil, buf); err != nil {
				t.Fatalf("trial %d (%s): %v", seed, spec, err)
			}
			for r := 0; r < ranks; r++ {
				base := r * int(perRank) * 4
				for i := 0; i < int(perRank); i++ {
					got := binary.LittleEndian.Uint32(buf[base+4*i:])
					want := vpicio.ExpectedValue(r, s, pi, i)
					if got != want {
						t.Fatalf("trial %d (%s): step %d prop %s rank %d elem %d = %#x, want %#x",
							seed, spec, s, prop, r, i, got, want)
					}
				}
			}
		}
	}
}
