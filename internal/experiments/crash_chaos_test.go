package experiments

import (
	"fmt"
	"testing"
	"time"

	"asyncio/internal/core"
	"asyncio/internal/pfs"
)

// chaosTrialConfig builds the i-th chaos trial: a tiny VPIC-IO run with
// a seeded crash whose target, instant, mode, durability model, and
// checkpoint interval all derive deterministically from the trial index.
func chaosTrialConfig(i int) CrashTrialConfig {
	// Cheap deterministic mixing (splitmix64) so neighboring trials get
	// unrelated draws without math/rand.
	mix := func(k uint64) uint64 {
		z := uint64(i+1)*0x9E3779B97F4A7C15 + k*0xBF58476D1CE4E5B9
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		z *= 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	const steps = 4
	// Epochs are ~1 s of compute plus I/O; the run ends around 5 s. Crash
	// times span [200ms, 6s] so some trials crash in epoch 0 (before any
	// checkpoint), most mid-run, and a few after completion (no-op).
	crashAt := 200*time.Millisecond + time.Duration(mix(1)%5800)*time.Millisecond
	target := "crashrank"
	idx := int(mix(2) % 6) // Summit node hosts 6 ranks
	if mix(3)%4 == 0 {
		target = "crashnode"
		idx = 0
	}
	mode := core.ForceAsync
	if mix(4)%3 == 0 {
		mode = core.ForceSync
	}
	var durability pfs.DurabilityConfig
	if mix(5)%2 == 0 {
		durability = pfs.GPFSDurability(int64(mix(6)))
		durability.BlockSize = 256 // tiny blocks: real tearing at this scale
	} else {
		durability = pfs.LustreDurability(int64(mix(6)), 4)
		durability.StripeSize = 256
	}
	return CrashTrialConfig{
		Nodes:            1,
		Steps:            steps,
		ParticlesPerRank: 64, // 256 B per property per rank
		ComputeTime:      time.Second,
		Mode:             mode,
		CheckpointEvery:  1 + int(mix(7)%3),
		FaultSpec:        fmt.Sprintf("seed=%d;%s=%d@%s", int64(mix(8)%1000), target, idx, crashAt),
		Durability:       &durability,
		JournalPayload:   true,
	}
}

// runChaosTrial executes trial i and applies the harness's invariants:
// the trial never panics, every journal record is classified, and after
// scan + replay + restart the image is byte-identical to a crash-free
// run — or, when the crash outran every checkpoint, the restart rebuilt
// it from scratch. Returns a short outcome tag for aggregation.
func runChaosTrial(t *testing.T, i, shards int) string {
	t.Helper()
	cfg := chaosTrialConfig(i)
	cfg.Shards = shards
	res, err := CrashTrial(cfg)
	if err != nil {
		t.Fatalf("trial %d (%s): %v", i, cfg.FaultSpec, err)
	}
	const ranks = 6
	if !res.Crashed {
		// Crash scheduled past the end: the run completed and flushed.
		if err := VerifyTrialImage(res.Store, ranks, cfg.Steps, cfg.ParticlesPerRank); err != nil {
			t.Fatalf("trial %d (%s): clean run image corrupt: %v", i, cfg.FaultSpec, err)
		}
		return "clean"
	}
	if !res.CrashRun.Aborted || len(res.CrashRun.Crashes) == 0 {
		t.Fatalf("trial %d: crashed without a crash record", i)
	}
	// No silent corruption: every journaled extent must be accounted for.
	if res.Scan == nil {
		t.Fatalf("trial %d: no scan report", i)
	}
	sum := res.Scan.Committed + res.Scan.Torn + res.Scan.Lost + res.Scan.Unverified
	if sum != len(res.Scan.Outcomes) {
		t.Fatalf("trial %d: scan counts unbalanced: %s", i, res.Scan.Summary())
	}
	// The recovered-and-restarted image must be byte-identical to a
	// crash-free run's: durable prefix from the checkpoints (plus journal
	// replay), the rest re-executed.
	if err := VerifyTrialImage(res.Store, ranks, cfg.Steps, cfg.ParticlesPerRank); err != nil {
		t.Fatalf("trial %d (%s, lastDurable=%d, fresh=%v, scan=%s): recovered image diverges: %v",
			i, cfg.FaultSpec, res.LastDurable, res.RestartFresh, res.Scan.Summary(), err)
	}
	if res.RestartFresh {
		return "fresh-restart"
	}
	return "recovered"
}

// runChaosFleet drives the seeded crash-trial fleet at a fixed shard
// count: every trial must end in a byte-identical recovered image or a
// typed, classified loss — never a panic, never silent corruption.
func runChaosFleet(t *testing.T, shards int) {
	trials := 500
	if testing.Short() {
		trials = 40
	}
	counts := make(map[string]int)
	type out struct{ tag string }
	outs := make([]out, trials)
	if err := RunParallel(trials, func(i int) error {
		outs[i].tag = runChaosTrial(t, i, shards)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, o := range outs {
		counts[o.tag]++
	}
	t.Logf("chaos outcomes over %d trials (shards=%d): %v", trials, shards, counts)
	if counts["recovered"] == 0 {
		t.Fatal("no trial exercised the checkpoint-recovery path")
	}
	if counts["fresh-restart"] == 0 {
		t.Fatal("no trial exercised the crash-before-first-checkpoint path")
	}
}

func TestCrashChaos(t *testing.T) { runChaosFleet(t, 1) }

// TestCrashChaosSharded reruns the fleet on the 4-shard engine: crashes,
// journal scans, and restarts must behave identically when each run's
// ranks are spread across shards.
func TestCrashChaosSharded(t *testing.T) { runChaosFleet(t, 4) }

// TestCrashTrialDeterministic pins the chaos harness's replayability:
// identical trial configs produce byte-identical final images and
// identical scan classifications.
func TestCrashTrialDeterministic(t *testing.T) {
	for _, i := range []int{3, 17, 42} {
		cfg := chaosTrialConfig(i)
		a, err := CrashTrial(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := CrashTrial(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Crashed != b.Crashed || a.LastDurable != b.LastDurable || a.RestartFresh != b.RestartFresh {
			t.Fatalf("trial %d diverged: %+v vs %+v", i, a, b)
		}
		if a.Crashed && a.Scan.Summary() != b.Scan.Summary() {
			t.Fatalf("trial %d scan diverged: %s vs %s", i, a.Scan.Summary(), b.Scan.Summary())
		}
		if na, nb := a.Store.Size(), b.Store.Size(); na != nb {
			t.Fatalf("trial %d image sizes diverged: %d vs %d", i, na, nb)
		}
		ab := make([]byte, a.Store.Size())
		bb := make([]byte, b.Store.Size())
		if _, err := a.Store.ReadAt(ab, 0); err != nil && len(ab) > 0 {
			t.Fatal(err)
		}
		if _, err := b.Store.ReadAt(bb, 0); err != nil && len(bb) > 0 {
			t.Fatal(err)
		}
		for k := range ab {
			if ab[k] != bb[k] {
				t.Fatalf("trial %d images diverge at byte %d", i, k)
			}
		}
	}
}

// TestCrashSweepSmoke exercises the registered experiment end to end.
func TestCrashSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("crashsweep runs 30s-compute epochs")
	}
	tab, err := CrashSweep(ReducedScale())
	if err != nil {
		t.Fatal(err)
	}
	sy, ok1 := tab.SeriesByName("sync")
	ay, ok2 := tab.SeriesByName("async")
	if !ok1 || !ok2 {
		t.Fatalf("missing series: %+v", tab.Series)
	}
	// Longer checkpoint intervals cannot lose fewer epochs.
	for _, s := range []Series{sy, ay} {
		for k := 1; k < len(s.Y); k++ {
			if s.Y[k] < s.Y[k-1] {
				t.Fatalf("%s: epochs lost decreased with a longer interval: %v", s.Name, s.Y)
			}
		}
	}
}
