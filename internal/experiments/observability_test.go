package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"asyncio/internal/core"
	"asyncio/internal/metrics"
	"asyncio/internal/perfetto"
	"asyncio/internal/systems"
	"asyncio/internal/vclock"
	"asyncio/internal/workloads/vpicio"
)

// asyncObservedRun executes a small async VPIC-IO run with series
// recording on and returns the report.
func asyncObservedRun(t *testing.T) *core.Report {
	t.Helper()
	clk := vclock.New()
	sys := systems.Summit(clk, 1) // 6 ranks
	sys.Metrics.EnableSeries()
	rep, _, err := vpicio.Run(sys, vpicio.Config{
		Steps:            2,
		ParticlesPerRank: 1 << 16,
		ComputeTime:      time.Second,
		Mode:             core.ForceAsync,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics == nil {
		t.Fatal("report carries no metrics registry")
	}
	return rep
}

// TestAsyncQueueDepthOverlapsThenDrains is the acceptance assertion for
// the observability layer: during an async run the background op queue
// is observably non-empty (that is the overlap the paper measures), and
// after the final drain it is exactly empty.
func TestAsyncQueueDepthOverlapsThenDrains(t *testing.T) {
	rep := asyncObservedRun(t)
	g := rep.Metrics.FindGauge("asyncvol.queue_depth")
	if g == nil {
		t.Fatalf("asyncvol.queue_depth not registered (have %v)", rep.Metrics.Names())
	}
	series := g.Series()
	if len(series) == 0 {
		t.Fatal("queue depth recorded no change points")
	}
	var peak float64
	for _, s := range series {
		if s.V > peak {
			peak = s.V
		}
	}
	if peak <= 0 {
		t.Fatalf("queue depth never positive during async run: %v", series)
	}
	if last := series[len(series)-1]; last.V != 0 {
		t.Fatalf("queue depth final sample = %+v, want 0 after drain", last)
	}
	if g.Value() != 0 {
		t.Fatalf("queue depth = %v after run, want 0", g.Value())
	}
	if enq := rep.Metrics.FindCounter("asyncvol.ops_enqueued"); enq == nil || enq.Value() == 0 {
		t.Fatal("no ops were enqueued on the background streams")
	}
	if dw := rep.Metrics.FindHistogram("asyncvol.drain_wait_seconds"); dw == nil || dw.Count() == 0 {
		t.Fatal("drain waits were not observed")
	}
}

// TestPerfettoExportHasDistinctTracks validates the exported JSON: it
// parses, and rank, background-stream, and PFS-target rows all exist as
// separate thread tracks.
func TestPerfettoExportHasDistinctTracks(t *testing.T) {
	rep := asyncObservedRun(t)
	var buf bytes.Buffer
	if err := perfetto.Write(&buf, rep.Spans, rep.Metrics); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	tracks := map[int]map[string]bool{}
	var counterSamples int
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			if tracks[ev.Pid] == nil {
				tracks[ev.Pid] = map[string]bool{}
			}
			tracks[ev.Pid][ev.Args["name"].(string)] = true
		}
		if ev.Ph == "C" {
			counterSamples++
		}
	}
	if n := len(tracks[1]); n != 6 {
		t.Fatalf("rank tracks = %d, want 6: %v", n, tracks[1])
	}
	if !tracks[1]["rank0"] || !tracks[1]["rank5"] {
		t.Fatalf("rank rows missing: %v", tracks[1])
	}
	if !tracks[2]["stream:asyncvol:rank0"] {
		t.Fatalf("background stream rows missing: %v", tracks[2])
	}
	if len(tracks[4]) == 0 {
		t.Fatal("no PFS target track")
	}
	if counterSamples == 0 {
		t.Fatal("no metric counter samples exported")
	}
}

// TestObservabilityOutputsAreDeterministic runs the same seed twice and
// requires byte-identical trace JSON and metrics CSV — goroutine
// scheduling must not leak into the exports.
func TestObservabilityOutputsAreDeterministic(t *testing.T) {
	render := func() (string, string) {
		rep := asyncObservedRun(t)
		var j, c bytes.Buffer
		if err := perfetto.Write(&j, rep.Spans, rep.Metrics); err != nil {
			t.Fatal(err)
		}
		if err := rep.Metrics.WriteCSV(&c, "obs"); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j1, c1 := render()
	j2, c2 := render()
	if j1 != j2 {
		t.Error("trace JSON differs between identical runs")
	}
	if c1 != c2 {
		t.Error("metrics CSV differs between identical runs")
	}
}

// TestRunObserverCollectsReports covers the hook asyncio-bench uses to
// reach registries constructed inside experiment sweeps.
func TestRunObserverCollectsReports(t *testing.T) {
	prevDefault := metrics.SetSeriesDefault(true)
	defer metrics.SetSeriesDefault(prevDefault)
	var got []*core.Report
	prev := core.SetRunObserver(func(rep *core.Report) { got = append(got, rep) })
	defer core.SetRunObserver(prev)

	clk := vclock.New()
	sys := systems.Summit(clk, 1)
	rep, _, err := vpicio.Run(sys, vpicio.Config{
		Steps:            1,
		ParticlesPerRank: 1 << 14,
		ComputeTime:      time.Second,
		Mode:             core.ForceAsync,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != rep {
		t.Fatalf("observer saw %d reports", len(got))
	}
	if !rep.Metrics.SeriesEnabled() {
		t.Fatal("SetSeriesDefault did not propagate to the run's registry")
	}
	if len(rep.Spans) != 6 {
		t.Fatalf("report has %d spans, want 6", len(rep.Spans))
	}
}
