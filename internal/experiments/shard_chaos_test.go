package experiments

import (
	"crypto/sha256"
	"fmt"
	"testing"
)

// chaosFingerprint reduces a crash-trial result to a comparable string:
// every externally observable outcome — crash records, scan
// classification, checkpoint coverage, restart cost, and a hash of the
// final image bytes. Two engines that agree on this string produced the
// same report byte for byte.
func chaosFingerprint(t *testing.T, res *CrashTrialResult) string {
	t.Helper()
	s := fmt.Sprintf("crashed=%v lastDurable=%d fresh=%v", res.Crashed, res.LastDurable, res.RestartFresh)
	if res.CrashRun != nil {
		s += fmt.Sprintf(" epochs=%d crashes=%+v aborted=%v",
			len(res.CrashRun.Run.Records), res.CrashRun.Crashes, res.CrashRun.Aborted)
	}
	if res.Scan != nil {
		s += " scan=" + res.Scan.Summary()
	}
	if res.RestartRun != nil {
		s += fmt.Sprintf(" restartEpochs=%d restartTime=%s", len(res.RestartRun.Run.Records), res.RestartTime)
	}
	buf := make([]byte, res.Store.Size())
	if len(buf) > 0 {
		if _, err := res.Store.ReadAt(buf, 0); err != nil {
			t.Fatalf("reading final image: %v", err)
		}
	}
	return fmt.Sprintf("%s image=%x", s, sha256.Sum256(buf))
}

// TestShardedCrashProperty is the property-based half of the sharded
// engine's contract: across 1000 random seeds, crash targets, crash
// instants, durability models, and checkpoint intervals, the serial
// engine and the 4-shard engine must produce byte-identical trial
// reports — same crash records, same journal classification, same
// recovered image.
func TestShardedCrashProperty(t *testing.T) {
	trials := 1000
	if testing.Short() {
		trials = 40
	}
	diffs := make([]string, trials)
	if err := RunParallel(trials, func(i int) error {
		// Offset past the chaos fleet's indices so the two suites draw
		// different (seed, fault-spec) tuples.
		cfg := chaosTrialConfig(i + 10_000)
		cfg.Shards = 1
		serial, err := CrashTrial(cfg)
		if err != nil {
			return fmt.Errorf("trial %d serial (%s): %w", i, cfg.FaultSpec, err)
		}
		cfg.Shards = 4
		sharded, err := CrashTrial(cfg)
		if err != nil {
			return fmt.Errorf("trial %d sharded (%s): %w", i, cfg.FaultSpec, err)
		}
		a, b := chaosFingerprint(t, serial), chaosFingerprint(t, sharded)
		if a != b {
			diffs[i] = fmt.Sprintf("trial %d (%s):\n  serial:  %s\n  sharded: %s", i, cfg.FaultSpec, a, b)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	bad := 0
	for _, d := range diffs {
		if d != "" {
			bad++
			if bad <= 3 {
				t.Error(d)
			}
		}
	}
	if bad > 0 {
		t.Fatalf("%d of %d trials diverged between 1 and 4 shards", bad, trials)
	}
}
