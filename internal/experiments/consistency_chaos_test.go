package experiments

import (
	"testing"
	"time"

	"asyncio/internal/core"
	"asyncio/internal/pfs"
	"asyncio/internal/systems"
	"asyncio/internal/vclock"
	"asyncio/internal/workloads/bdcats"
	"asyncio/internal/workloads/vpicio"
)

// checkedSpec builds the model's spec with the oracle enabled.
func checkedSpec(t *testing.T, model pfs.Model) *pfs.ConsistencySpec {
	t.Helper()
	sp, err := pfs.ParseConsistency(string(model) + ";check=1")
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// runConsistencyChaosTrial executes crash-chaos trial i under the given
// consistency model and applies the oracle's invariants on top of the
// base harness's: the checker saw the run, found no visibility
// violations, and every write the model promised durable survives in
// the final image.
func runConsistencyChaosTrial(t *testing.T, i, shards int, model pfs.Model) string {
	t.Helper()
	// Offset past the crash-chaos (base) and sharded-property (+10k)
	// suites so this fleet draws its own (seed, fault-spec) tuples.
	cfg := chaosTrialConfig(i + 20_000)
	cfg.Shards = shards
	cfg.Consistency = checkedSpec(t, model)
	res, err := CrashTrial(cfg)
	if err != nil {
		t.Fatalf("trial %d (%s, %s): %v", i, model, cfg.FaultSpec, err)
	}
	if res.Checker == nil {
		t.Fatalf("trial %d (%s): no checker on a checked trial", i, model)
	}
	if err := res.Checker.Check(); err != nil {
		t.Fatalf("trial %d (%s, %s): visibility violation: %v", i, model, cfg.FaultSpec, err)
	}
	if err := res.Checker.VerifyDurable(res.Store); err != nil {
		t.Fatalf("trial %d (%s, %s, lastDurable=%d): durability violation: %v",
			i, model, cfg.FaultSpec, res.LastDurable, err)
	}
	if !res.Crashed {
		return "clean"
	}
	if res.RestartFresh {
		return "fresh-restart"
	}
	return "recovered"
}

// runConsistencyChaosFleet drives the kill schedule for one model at
// one shard count.
func runConsistencyChaosFleet(t *testing.T, shards int, model pfs.Model) {
	trials := 500
	if testing.Short() {
		trials = 40
	}
	tags := make([]string, trials)
	if err := RunParallel(trials, func(i int) error {
		tags[i] = runConsistencyChaosTrial(t, i, shards, model)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for _, tag := range tags {
		counts[tag]++
	}
	t.Logf("%s chaos outcomes over %d trials (shards=%d): %v", model, trials, shards, counts)
	if counts["recovered"] == 0 || counts["fresh-restart"] == 0 {
		t.Fatalf("%s fleet missed a recovery path: %v", model, counts)
	}
}

// TestConsistencyChaos runs the 500-trial kill schedule once per model
// on the serial engine: zero visibility or durability violations.
func TestConsistencyChaos(t *testing.T) {
	for _, model := range consistencyModels {
		model := model
		t.Run(string(model), func(t *testing.T) {
			t.Parallel()
			runConsistencyChaosFleet(t, 1, model)
		})
	}
}

// TestConsistencyChaosSharded reruns the per-model kill schedule on the
// 4-shard engine.
func TestConsistencyChaosSharded(t *testing.T) {
	for _, model := range consistencyModels {
		model := model
		t.Run(string(model), func(t *testing.T) {
			t.Parallel()
			runConsistencyChaosFleet(t, 4, model)
		})
	}
}

// TestConsistencyInlineScenarios runs the oracle inline on the tier-1
// workload scenarios: VPIC-IO (write side) under every model × mode,
// and BD-CATS-IO (read side) under posix — all must come back clean,
// with the checker demonstrably engaged.
func TestConsistencyInlineScenarios(t *testing.T) {
	for _, model := range consistencyModels {
		for _, mode := range []core.Mode{core.ForceSync, core.ForceAsync} {
			cons := pfs.NewConsistency(checkedSpec(t, model))
			sys := systems.Summit(vclock.New(), 1, systems.WithConsistency(cons))
			if _, _, err := vpicio.Run(sys, vpicio.Config{
				Steps: 2, ComputeTime: time.Second, Mode: mode,
			}); err != nil {
				t.Fatalf("vpic %s %v: %v", model, mode, err)
			}
			if err := cons.Checker().Check(); err != nil {
				t.Fatalf("vpic %s %v: %v", model, mode, err)
			}
			if cons.Checker().Summary() == "consistency=off" {
				t.Fatalf("vpic %s %v: checker never engaged", model, mode)
			}
		}
	}
	cons := pfs.NewConsistency(checkedSpec(t, pfs.ModelPOSIX))
	sys := systems.Summit(vclock.New(), 1, systems.WithConsistency(cons))
	if _, err := bdcats.Run(sys, bdcats.Config{
		Steps: 2, ComputeTime: time.Second, Mode: core.ForceSync,
	}, nil); err != nil {
		t.Fatalf("bdcats posix: %v", err)
	}
	if err := cons.Checker().Check(); err != nil {
		t.Fatalf("bdcats posix: %v", err)
	}
}

// TestAblationConsistencySmoke exercises the registered experiment —
// including its strict-ordering and bandwidth-gain gates — end to end.
func TestAblationConsistencySmoke(t *testing.T) {
	tab, err := AblationConsistency(ReducedScale())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tab.SeriesByName("sync vis-share"); !ok {
		t.Fatalf("missing series: %+v", tab.Series)
	}
}
