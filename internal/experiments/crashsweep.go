package experiments

import (
	"errors"
	"fmt"
	"time"

	"asyncio/internal/core"
	"asyncio/internal/faults"
	"asyncio/internal/hdf5"
	"asyncio/internal/pfs"
	"asyncio/internal/recovery"
	"asyncio/internal/systems"
	"asyncio/internal/workloads/harness"
	"asyncio/internal/workloads/vpicio"
)

// CrashTrialConfig parameterizes one crash-consistency trial: a VPIC-IO
// run with a write-back durable store, a write-ahead journal on the
// asynchronous path, and periodic durable checkpoints, killed by an
// injected crash, then scanned, replayed, and restarted from the last
// durable checkpoint.
type CrashTrialConfig struct {
	Nodes            int
	Steps            int
	ParticlesPerRank uint64
	ComputeTime      time.Duration
	Mode             core.Mode
	// CheckpointEvery is the durable-commit interval in epochs; <= 0
	// disables checkpoints (restart then replays from step 0).
	CheckpointEvery int
	// FaultSpec is the full schedule, typically "seed=N;crashrank=R@T".
	FaultSpec string
	// Durability overrides the write-back cache model (default: GPFS
	// semantics seeded from the trial).
	Durability *pfs.DurabilityConfig
	// JournalPayload captures element bytes in the journal (verification
	// and replay) rather than extent maps alone.
	JournalPayload bool
	// Consistency pins the crash run's PFS consistency model (nil falls
	// back to the process-wide default, or the historical implicit model
	// when that is unset too). A fresh pfs.Consistency is built per
	// trial; its checker lands in the result for visibility/durability
	// oracle runs.
	Consistency *pfs.ConsistencySpec
	// Shards runs both the crash run and the restart on a sharded event
	// engine (<= 1: serial). Trials are byte-identical across shard
	// counts — the chaos harness asserts it.
	Shards int
}

// CrashTrialResult carries everything a trial produced, for both the
// sweep's aggregates and the chaos harness's byte-level assertions.
type CrashTrialResult struct {
	// Crashed reports whether the injected crash actually fired; a crash
	// scheduled past the run's end leaves a clean complete run.
	Crashed bool
	// CrashRun is the (partial, when Crashed) report of the first run.
	CrashRun *core.Report
	// PFSCrash describes the torn write-back cache (nil when !Crashed).
	PFSCrash *pfs.CrashReport
	// Scan is the post-crash journal scan + replay (nil when !Crashed).
	Scan *recovery.Report
	// LastDurable is the newest epoch covered by a durable checkpoint.
	LastDurable int
	// RestartFresh reports that the crashed image was unopenable (crash
	// before the first durable commit) and the restart recreated the
	// container from scratch.
	RestartFresh bool
	// RestartRun is the restart run's report (nil when !Crashed).
	RestartRun *core.Report
	// RestartTime is the virtual duration of the restart run — the
	// recovery-cost side of the checkpoint-interval tradeoff.
	RestartTime time.Duration
	// Store is the final base image after restart (or after the clean
	// run when the crash never fired).
	Store hdf5.Store
	// Journal is the run's write-ahead journal (post-crash state).
	Journal *recovery.Journal
	// Checker is the crash run's consistency oracle (nil when the trial
	// ran without a consistency model). The restart run deliberately
	// carries no model: the oracle judges the run that crashed, and
	// VerifyDurable holds against the final Store because the restart
	// rewrites the same deterministic bytes.
	Checker *pfs.ConsistencyChecker
}

// CrashTrial executes one crash→scan→replay→restart cycle. The flow is
// deterministic: every random draw (crash tearing, fault schedule) is
// seeded through cfg, so identical configs produce byte-identical
// stores.
func CrashTrial(cfg CrashTrialConfig) (*CrashTrialResult, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 4
	}
	if cfg.ParticlesPerRank == 0 {
		cfg.ParticlesPerRank = 256
	}
	if cfg.ComputeTime == 0 {
		cfg.ComputeTime = time.Second
	}
	dur := pfs.GPFSDurability(1)
	if defaultDurability != nil {
		dur = *defaultDurability
	}
	if cfg.Durability != nil {
		dur = *cfg.Durability
	}

	kit := harness.NewCrashKit(dur, recovery.DefaultCost(), cfg.JournalPayload)
	ck := harness.NewCheckpointer(cfg.CheckpointEvery, kit.Journal)
	in, err := faults.New(cfg.FaultSpec)
	if err != nil {
		return nil, err
	}
	var cons *pfs.Consistency
	if sp := cfg.Consistency; sp != nil {
		c := *sp
		cons = pfs.NewConsistency(&c)
	} else if defaultConsistency != nil {
		c := *defaultConsistency
		cons = pfs.NewConsistency(&c)
	}

	clk, shardOpts := newClock(cfg.Shards)
	opts := append(append(shardOpts, critOpts()...), systems.WithFaults(in))
	if cons != nil {
		opts = append(opts, systems.WithConsistency(cons))
	}
	sys := systems.Summit(clk, cfg.Nodes, opts...)
	ck.Instrument(sys.Metrics)
	kit.Journal.Instrument(sys.Metrics, "vpic")
	kit.SetCrit(sys.Crit)

	res := &CrashTrialResult{LastDurable: -1, Store: kit.Base, Journal: kit.Journal, Checker: cons.Checker()}
	rep, _, err := vpicio.Run(sys, vpicio.Config{
		Steps:            cfg.Steps,
		ParticlesPerRank: cfg.ParticlesPerRank,
		ComputeTime:      cfg.ComputeTime,
		Mode:             cfg.Mode,
		Materialize:      true,
		Env:              harness.Options{AsyncInlineStages: kit.InlineStages()},
		Store:            kit.Durable,
		Checkpoint:       ck,
	})
	res.CrashRun = rep
	res.LastDurable = ck.LastDurable()
	if err == nil {
		// The crash never fired (scheduled past the end): the run is
		// complete and fully flushed by Term. Seal the cache into the base
		// so Store is readable either way.
		kit.Durable.Crash(sys.Clk.Now())
		return res, nil
	}
	if !faults.IsCrash(err) {
		return nil, fmt.Errorf("crash trial failed for a non-crash reason: %w", err)
	}
	res.Crashed = true

	// Power is gone: tear the volatile write-back cache into the base
	// image, then scan the journal against what survived and replay the
	// salvageable extents.
	res.PFSCrash = kit.Durable.Crash(sys.Clk.Now())
	res.Scan = recovery.Scan(kit.Journal.Bytes(), kit.Base, recovery.ScanOptions{Replay: true})

	// Restart from the last durable checkpoint. A crash before the first
	// durable commit can leave the image unopenable — then recovery is a
	// fresh run from step 0.
	start := res.LastDurable + 1
	openExisting := true
	if _, oerr := hdf5.Open(kit.Base); oerr != nil {
		openExisting = false
		start = 0
		res.RestartFresh = true
	}
	if start >= cfg.Steps {
		// The crash landed after the final epoch's durable commit: every
		// step is already checkpointed, so the recovered image plus journal
		// replay is the final state and there is nothing to re-execute.
		return res, nil
	}
	clk2, shardOpts2 := newClock(cfg.Shards)
	sys2 := systems.Summit(clk2, cfg.Nodes, shardOpts2...)
	rep2, _, err := vpicio.Run(sys2, vpicio.Config{
		Steps:            cfg.Steps,
		ParticlesPerRank: cfg.ParticlesPerRank,
		ComputeTime:      cfg.ComputeTime,
		Mode:             cfg.Mode,
		Materialize:      true,
		Store:            kit.Base,
		OpenExisting:     openExisting,
		StartStep:        start,
	})
	if err != nil {
		return nil, fmt.Errorf("restart from step %d: %w", start, err)
	}
	res.RestartRun = rep2
	res.RestartTime = sys2.Clk.Now()
	return res, nil
}

// VerifyTrialImage checks the final image against the crash-free
// pattern: every step's every property must hold each rank's
// fillParticles bytes. This is the chaos harness's ground truth — after
// recovery plus restart the image must be byte-identical to a run that
// never crashed.
func VerifyTrialImage(store hdf5.Store, ranks, steps int, perRank uint64) error {
	f, err := hdf5.Open(store)
	if err != nil {
		return fmt.Errorf("opening recovered image: %w", err)
	}
	buf := make([]byte, int(perRank)*4)
	for step := 0; step < steps; step++ {
		g, err := f.Root().OpenGroup(nil, vpicio.StepGroup(step))
		if err != nil {
			return fmt.Errorf("step %d: %w", step, err)
		}
		for pi, prop := range vpicio.Properties {
			ds, err := g.OpenDataset(nil, prop)
			if err != nil {
				return fmt.Errorf("step %d %s: %w", step, prop, err)
			}
			for rank := 0; rank < ranks; rank++ {
				slab, err := harness.Slab1D(perRank*uint64(ranks), perRank, rank)
				if err != nil {
					return err
				}
				if err := ds.Read(nil, slab, buf); err != nil {
					return fmt.Errorf("step %d %s rank %d: %w", step, prop, rank, err)
				}
				for i := 0; i+4 <= len(buf); i += 4 {
					want := vpicio.ExpectedValue(rank, step, pi, i/4)
					got := uint32(buf[i]) | uint32(buf[i+1])<<8 | uint32(buf[i+2])<<16 | uint32(buf[i+3])<<24
					if got != want {
						return fmt.Errorf("step %d %s rank %d element %d: %08x != %08x",
							step, prop, rank, i/4, got, want)
					}
				}
			}
		}
	}
	return nil
}

// CrashSweep measures the crash-consistency tradeoff (robustness study):
// VPIC-IO on Summit killed mid-run by an injected node crash, for sync
// vs async I/O across checkpoint intervals. For each point it reports
// the epochs lost to the crash (work that must be redone on restart);
// the notes record the journal's classification of in-flight extents
// and the restart cost.
func CrashSweep(scale Scale) (*Table, error) {
	intervals := []int{1, 2, 4}
	steps := scale.Steps
	if steps < 5 {
		steps = 5
	}
	t := &Table{
		ID:     "crashsweep",
		Title:  "VPIC-IO crash recovery: epochs lost vs checkpoint interval, Summit (1 node)",
		XLabel: "checkpoint interval (epochs)", YLabel: "epochs lost",
	}
	type point struct {
		lost       float64
		torn, dead int
		restart    time.Duration
	}
	points := make([]point, 2*len(intervals))
	// The crash lands mid-run: after a couple of epochs (~31 s each with
	// the paper's 30 s compute phase) but well before the last.
	crashAt := 95 * time.Second
	err := RunParallel(len(points), func(i int) error {
		every := intervals[i/2]
		mode := core.ForceSync
		if i%2 == 1 {
			mode = core.ForceAsync
		}
		res, err := CrashTrial(CrashTrialConfig{
			Nodes:            1,
			Steps:            steps,
			ParticlesPerRank: 1 << 10,
			ComputeTime:      30 * time.Second,
			Mode:             mode,
			CheckpointEvery:  every,
			FaultSpec:        fmt.Sprintf("seed=17;crashnode=0@%s", crashAt),
			JournalPayload:   true,
		})
		if err != nil {
			return fmt.Errorf("crashsweep every=%d %v: %w", every, mode, err)
		}
		if !res.Crashed {
			return errors.New("crashsweep: scheduled crash never fired")
		}
		// Epochs lost = epochs that ran (fully or partially) before the
		// crash but were not covered by a durable checkpoint.
		ran := len(res.CrashRun.Run.Records)
		lost := ran - (res.LastDurable + 1)
		if lost < 0 {
			lost = 0
		}
		points[i] = point{lost: float64(lost), restart: res.RestartTime}
		if res.Scan != nil {
			points[i].torn = res.Scan.Torn
			points[i].dead = res.Scan.Lost
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var xs, syncY, asyncY []float64
	for ii, every := range intervals {
		xs = append(xs, float64(every))
		syncY = append(syncY, points[2*ii].lost)
		asyncY = append(asyncY, points[2*ii+1].lost)
		t.note("every=%d: async journal classified %d torn / %d lost extents; restart cost %s (sync) / %s (async)",
			every, points[2*ii+1].torn, points[2*ii+1].dead,
			points[2*ii].restart.Round(time.Second), points[2*ii+1].restart.Round(time.Second))
	}
	t.Series = []Series{
		{Name: "sync", X: xs, Y: syncY},
		{Name: "async", X: xs, Y: asyncY},
	}
	t.note("node 0 killed at %s; durable store tears un-fsynced writes at block granularity (GPFS semantics)", crashAt)
	return t, nil
}
