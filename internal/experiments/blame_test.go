package experiments

import (
	"bytes"
	"testing"

	"asyncio/internal/core"
	"asyncio/internal/critpath"
	"asyncio/internal/systems"
	"asyncio/internal/vclock"
	"asyncio/internal/workloads/vpicio"
)

// TestAblationBlame runs the blame-attribution validation experiment at
// reduced scale; the generator itself errors when any of the profiler's
// promised properties fail.
func TestAblationBlame(t *testing.T) {
	tbl, err := AblationBlame(ReducedScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(tbl.Series))
	}
	for _, s := range tbl.Series {
		var total float64
		for _, y := range s.Y {
			total += y
		}
		if total < 0.97 || total > 1.0+1e-9 {
			t.Errorf("%s: category shares sum to %.4f, want ~1", s.Name, total)
		}
	}
}

// blameProfileAt runs one profiled VPIC-IO configuration on an engine
// with the given shard count and returns the profile's canonical JSON.
func blameProfileAt(t *testing.T, shards int) ([]byte, *critpath.Recorder) {
	t.Helper()
	rec := critpath.NewRecorder()
	opts := []systems.Option{systems.WithCritPath(rec)}
	var clk *vclock.Clock
	if shards > 1 {
		co := vclock.NewSharded(shards)
		clk = co.Clock(0)
		opts = append(opts, systems.WithSharding(co, ""))
	} else {
		clk = vclock.New()
	}
	sys := systems.Summit(clk, 2, opts...)
	rep, _, err := vpicio.Run(sys, vpicio.Config{Steps: 3, Mode: core.ForceAsync})
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	if rep.CritPath == nil {
		t.Fatalf("shards=%d: no profile", shards)
	}
	b, err := rep.CritPath.MarshalBytes()
	if err != nil {
		t.Fatalf("shards=%d: marshal: %v", shards, err)
	}
	return b, rec
}

// TestCritpathShardDeterminism asserts the profiler sees the same causal
// structure regardless of the engine partition: the full profile —
// categories, segments, phases, and the wait-for graph — is
// byte-identical between the serial engine and a 4-shard run, even
// though the sharded run demonstrably took cross-shard wait edges.
func TestCritpathShardDeterminism(t *testing.T) {
	serial, _ := blameProfileAt(t, 1)
	sharded, rec := blameProfileAt(t, 4)
	if !bytes.Equal(serial, sharded) {
		t.Fatalf("profile JSON differs between shards=1 (%d bytes) and shards=4 (%d bytes):\n--- serial ---\n%s\n--- sharded ---\n%s",
			len(serial), len(sharded), serial, sharded)
	}
	if rec.CrossShardWaits() == 0 {
		t.Fatal("sharded run recorded no cross-shard waits; determinism check is vacuous")
	}
}
