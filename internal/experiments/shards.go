package experiments

import (
	"runtime"
	"sync/atomic"

	"asyncio/internal/shard"
	"asyncio/internal/systems"
	"asyncio/internal/vclock"
)

// shardsOverride is the intra-run shard count every system built by
// newSystem uses; <= 1 means the serial engine. Set via SetShards (the
// CLIs' -shards flag, resolved against the core budget).
var shardsOverride atomic.Int64

// SetShards fixes the intra-run shard count for subsequently built
// systems. n <= 1 restores the serial engine. It returns the previous
// value so callers can restore it. Shards compose with SetParallelism:
// shards multiply within a run, sweep workers across runs, and the two
// share the machine's core budget — the CLIs resolve `-shards auto` as
// GOMAXPROCS / Parallelism().
func SetShards(n int) int {
	if n < 1 {
		n = 1
	}
	return int(shardsOverride.Swap(int64(n)))
}

// Shards returns the intra-run shard count newSystem will use.
func Shards() int {
	if n := int(shardsOverride.Load()); n > 1 {
		return n
	}
	return 1
}

// shardPolicyOverride is the rank-assignment policy for sharded runs;
// empty means shard.PolicyBlock.
var shardPolicyOverride atomic.Value // string

// SetShardPolicy fixes the rank-assignment policy (shard.PolicyBlock or
// shard.PolicyStripe) for subsequently built sharded systems and
// returns the previous value. The policy changes which shard owns which
// rank, never the simulated outcome: lockstep windows make every
// partition byte-identical.
func SetShardPolicy(p string) string {
	prev, _ := shardPolicyOverride.Swap(p).(string)
	return prev
}

// ShardPolicy returns the current rank-assignment policy.
func ShardPolicy() string {
	if p, _ := shardPolicyOverride.Load().(string); p != "" {
		return p
	}
	return shard.PolicyBlock
}

// ResolveShardSpec parses a -shards flag value and resolves it against
// the process's core budget: "auto" becomes GOMAXPROCS divided by the
// sweep worker count (Parallelism), so intra-run shards and cross-run
// workers share the machine instead of multiplying against it. Call it
// after SetParallelism. The returned count is what SetShards should be
// given; the spec's policy is applied as a side effect.
func ResolveShardSpec(raw string) (int, error) {
	sp, err := shard.ParseSpec(raw)
	if err != nil {
		return 0, err
	}
	budget := runtime.GOMAXPROCS(0) / Parallelism()
	if budget < 1 {
		budget = 1
	}
	// Rank counts vary per run; clamping a too-large request down to the
	// run's size is NewPlan's job, so resolve against the spec ceiling.
	n := sp.Resolve(shard.MaxShards, budget)
	SetShardPolicy(sp.Policy)
	return n, nil
}

// newClock builds the engine for one run at the current shard setting:
// a serial clock, or shard 0 of a fresh coordinator plus the sharding
// option for the system constructor. Every run owns its engine, so
// sweep-level parallelism and intra-run sharding nest freely.
func newClock(n int) (*vclock.Clock, []systems.Option) {
	if n <= 1 {
		return vclock.New(), nil
	}
	co := vclock.NewSharded(n)
	return co.Clock(0), []systems.Option{systems.WithSharding(co, ShardPolicy())}
}
