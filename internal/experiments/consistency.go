package experiments

import (
	"fmt"
	"time"

	"asyncio/internal/core"
	"asyncio/internal/critpath"
	"asyncio/internal/pfs"
	"asyncio/internal/systems"
	"asyncio/internal/workloads/harness"
	"asyncio/internal/workloads/vpicio"
)

// consistencyModels is the spectrum the ablation sweeps, strongest
// first. The assertion order below depends on it.
var consistencyModels = []pfs.Model{
	pfs.ModelPOSIX,
	pfs.ModelSession,
	pfs.ModelMPIIO,
	pfs.ModelCommit,
}

// AblationConsistency reproduces the paper's weaker-models-buy-bandwidth
// result deterministically: VPIC-IO on a small Summit allocation, swept
// across the PFS consistency spectrum × {sync, async}, with the oracle
// checking every run. The experiment errors (rather than merely noting)
// when the spectrum fails the properties the models promise:
//
//   - under synchronous I/O the visibility-wait share of the critical
//     path strictly decreases along posix > session > mpiio > commit
//     (each weaker model defers or drops publish work);
//   - at least one weaker model delivers measurably higher synchronous
//     bandwidth than POSIX (≥ 1.05×) — the bandwidth the strong model's
//     per-write publish traffic was costing;
//   - asynchronous I/O hides the visibility cost: every model's async
//     visibility-wait share stays below its sync share cap;
//   - the consistency checker finds zero violations on every run (the
//     harness publishes at each model's own point, so the spectrum is
//     exercised, not just priced).
func AblationConsistency(scale Scale) (*Table, error) {
	nodes := scale.SummitNodes[0]
	const steps = 3
	const compute = time.Second

	type cell struct {
		rate     float64 // delivered bandwidth, bytes/s
		visShare float64 // visibility-wait share of the makespan
		summary  string
	}
	cells := make([]cell, 2*len(consistencyModels))
	err := RunParallel(len(cells), func(i int) error {
		model := consistencyModels[i/2]
		mode := core.ForceSync
		if i%2 == 1 {
			mode = core.ForceAsync
		}
		sp, err := pfs.ParseConsistency(string(model) + ";check=1")
		if err != nil {
			return err
		}
		cons := pfs.NewConsistency(sp)
		sys := newSystem("summit", nodes,
			systems.WithCritPath(critpath.NewRecorder()),
			systems.WithConsistency(cons))
		// Checkpoint every epoch so the commit model has publish points
		// inside the run, not only at close.
		ck := harness.NewCheckpointer(1, nil)
		ck.Instrument(sys.Metrics)
		rep, _, err := vpicio.Run(sys, vpicio.Config{
			Steps: steps, ComputeTime: compute, Mode: mode,
			Checkpoint: ck,
		})
		if err != nil {
			return fmt.Errorf("abl-consistency %s %v: %w", model, mode, err)
		}
		if rep.CritPath == nil {
			return fmt.Errorf("abl-consistency %s %v: report carries no critical-path profile", model, mode)
		}
		if err := cons.Checker().Check(); err != nil {
			return fmt.Errorf("abl-consistency %s %v: %w", model, mode, err)
		}
		cells[i] = cell{
			rate:     rep.Run.PeakRate(),
			visShare: rep.CritPath.CategoryShare(critpath.VisibilityWait),
			summary:  cons.Checker().Summary(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// The spectrum must be strictly ordered under synchronous I/O.
	for mi := 1; mi < len(consistencyModels); mi++ {
		stronger, weaker := cells[2*(mi-1)], cells[2*mi]
		if weaker.visShare >= stronger.visShare {
			return nil, fmt.Errorf(
				"abl-consistency: sync visibility-wait share not strictly decreasing: %s %.4f vs %s %.4f",
				consistencyModels[mi-1], stronger.visShare, consistencyModels[mi], weaker.visShare)
		}
	}
	posixSync := cells[0].rate
	bestGain, bestModel := 0.0, consistencyModels[0]
	for mi := 1; mi < len(consistencyModels); mi++ {
		if gain := cells[2*mi].rate / posixSync; gain > bestGain {
			bestGain, bestModel = gain, consistencyModels[mi]
		}
	}
	if bestGain < 1.05 {
		return nil, fmt.Errorf(
			"abl-consistency: no weaker model beats posix sync bandwidth measurably (best %s at %.3f×, want ≥ 1.05×)",
			bestModel, bestGain)
	}
	for mi, model := range consistencyModels {
		if sync, async := cells[2*mi], cells[2*mi+1]; async.visShare >= sync.visShare && sync.visShare > 0 {
			return nil, fmt.Errorf(
				"abl-consistency %s: async visibility-wait share %.4f not below sync %.4f — async failed to hide it",
				model, async.visShare, sync.visShare)
		}
	}

	t := &Table{
		ID:     "abl-consistency",
		Title:  fmt.Sprintf("VPIC-IO bandwidth and visibility-wait share by consistency model, Summit (%d nodes)", nodes),
		XLabel: "model index", YLabel: "GB/s | share of makespan",
	}
	var xs []float64
	for mi := range consistencyModels {
		xs = append(xs, float64(mi))
	}
	pick := func(f func(cell) float64, off int) []float64 {
		var ys []float64
		for mi := range consistencyModels {
			ys = append(ys, f(cells[2*mi+off]))
		}
		return ys
	}
	t.Series = []Series{
		{Name: "sync GB/s", X: xs, Y: pick(func(c cell) float64 { return gb(c.rate) }, 0)},
		{Name: "async GB/s", X: xs, Y: pick(func(c cell) float64 { return gb(c.rate) }, 1)},
		{Name: "sync vis-share", X: xs, Y: pick(func(c cell) float64 { return c.visShare }, 0)},
		{Name: "async vis-share", X: xs, Y: pick(func(c cell) float64 { return c.visShare }, 1)},
	}
	for mi, model := range consistencyModels {
		t.note("model %d = %s: sync %.2f GB/s (vis %.1f%%), async %.2f GB/s (vis %.1f%%)",
			mi, model, gb(cells[2*mi].rate), 100*cells[2*mi].visShare,
			gb(cells[2*mi+1].rate), 100*cells[2*mi+1].visShare)
	}
	for mi, model := range consistencyModels {
		t.note("%s checker: sync %s | async %s", model, cells[2*mi].summary, cells[2*mi+1].summary)
	}
	t.note("weakest useful model: %s at %.2f× posix sync bandwidth", bestModel, bestGain)
	return t, nil
}
