package experiments

import (
	"errors"
	"fmt"
	"testing"

	"asyncio/internal/pfs"
)

// consistencyOutcome classifies one checked trial: either the oracle is
// clean, or it reports a *typed* model violation. Anything else — a
// harness error, an untyped checker error, a panic — fails the
// property. The classification string also feeds the shard-equivalence
// fingerprint, so the serial and sharded engines must agree not only on
// the bytes they produce but on the verdict the oracle reaches.
func consistencyOutcome(t *testing.T, i int, model pfs.Model, res *CrashTrialResult) string {
	t.Helper()
	if res.Checker == nil {
		t.Fatalf("trial %d (%s): checked trial carries no checker", i, model)
	}
	verdict := "clean"
	if err := res.Checker.Check(); err != nil {
		var verr *pfs.ViolationError
		if !errors.As(err, &verr) {
			t.Fatalf("trial %d (%s): untyped checker error: %v", i, model, err)
		}
		verdict = "violation:" + verr.Error()
	}
	if err := res.Checker.VerifyDurable(res.Store); err != nil {
		var verr *pfs.ViolationError
		if !errors.As(err, &verr) {
			t.Fatalf("trial %d (%s): untyped durability error: %v", i, model, err)
		}
		verdict += " durability:" + verr.Error()
	}
	return verdict
}

// TestConsistencyProperty is the model-spectrum property suite: 1000
// random (seed, fault-spec, durability, checkpoint-interval) tuples
// cycled across all four consistency models. Every trial must either
// come back checker-clean or fail with a typed model violation, and the
// full trial fingerprint — final image bytes, recovery classification,
// and the oracle's verdict plus its event counts — must be
// byte-identical between the serial engine and the 4-shard engine.
func TestConsistencyProperty(t *testing.T) {
	trials := 1000
	if testing.Short() {
		trials = 40
	}
	if err := RunParallel(trials, func(i int) error {
		model := consistencyModels[i%len(consistencyModels)]
		run := func(shards int) (string, error) {
			// Offset past the base chaos (+0), sharded-property (+10k),
			// and consistency-chaos (+20k) suites.
			cfg := chaosTrialConfig(i + 30_000)
			cfg.Shards = shards
			cfg.Consistency = checkedSpec(t, model)
			res, err := CrashTrial(cfg)
			if err != nil {
				return "", fmt.Errorf("trial %d (%s, shards=%d, %s): %w", i, model, shards, cfg.FaultSpec, err)
			}
			fp := chaosFingerprint(t, res) +
				" checker=" + res.Checker.Summary() +
				" verdict=" + consistencyOutcome(t, i, model, res)
			return fp, nil
		}
		serial, err := run(1)
		if err != nil {
			return err
		}
		sharded, err := run(4)
		if err != nil {
			return err
		}
		if serial != sharded {
			return fmt.Errorf("trial %d (%s): shard divergence\n  serial:  %s\n  sharded: %s",
				i, model, serial, sharded)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
