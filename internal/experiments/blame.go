package experiments

import (
	"fmt"
	"time"

	"asyncio/internal/core"
	"asyncio/internal/critpath"
	"asyncio/internal/faults"
	"asyncio/internal/systems"
	"asyncio/internal/workloads/vpicio"
)

// blameCauses is the fixed category order the abl-blame table plots
// (one X index per cause, every run a series over the same axis).
var blameCauses = []critpath.Cause{
	critpath.Compute,
	critpath.CollectiveWait,
	critpath.QueueWait,
	critpath.StageCopy,
	critpath.PFSTransfer,
	critpath.Metadata,
	critpath.FsyncJournal,
	critpath.RetryBackoff,
	critpath.FaultStall,
	critpath.Unattributed,
}

// blameOutageSpec injects a full GPFS outage across the start of the
// second epoch's I/O phase. With 1 s compute and ~1.35 s of synchronous
// I/O per epoch, epoch 1's write burst begins at ~3.35 s; the outage
// opens just before it, so every write fails on arrival until the
// window lifts and the retry stage's capped exponential backoff carries
// the critical path through the fault.
const blameOutageSpec = "outage=gpfs@3300ms+1s;retries=12;backoff=50ms;maxbackoff=400ms"

// AblationBlame validates the causal critical-path profiler's blame
// attribution end to end (§V-A's sync/async contrast, re-read through
// the profiler): VPIC-IO on a small Summit allocation, run three ways —
// synchronous, asynchronous, and synchronous under an injected storage
// outage. The experiment errors (rather than merely noting) when the
// profiles violate the properties the profiler promises:
//
//   - attribution coverage ≥ 97% of the makespan on every run;
//   - the synchronous run's largest non-compute category is
//     pfs-transfer (blocking writes sit on the critical path);
//   - the asynchronous run's top category is compute (I/O is hidden);
//   - the sync→async differential moves ≥ 0.20 of makespan share off
//     pfs-transfer;
//   - inside the faulted run's outage window, blame concentrates on
//     retry-backoff / fault-stall.
func AblationBlame(scale Scale) (*Table, error) {
	nodes := scale.SummitNodes[0]
	const steps = 3
	const compute = time.Second

	variants := []struct {
		name string
		mode core.Mode
		spec string
	}{
		{"sync", core.ForceSync, ""},
		{"async", core.ForceAsync, ""},
		{"sync-faulted", core.ForceSync, blameOutageSpec},
	}
	profs := make([]*critpath.Profile, len(variants))
	err := RunParallel(len(variants), func(i int) error {
		v := variants[i]
		opts := []systems.Option{systems.WithCritPath(critpath.NewRecorder())}
		if v.spec != "" {
			in, err := faults.New(v.spec)
			if err != nil {
				return err
			}
			opts = append(opts, systems.WithFaults(in))
		}
		sys := newSystem("summit", nodes, opts...)
		rep, _, err := vpicio.Run(sys, vpicio.Config{
			Steps: steps, ComputeTime: compute, Mode: v.mode,
		})
		if err != nil {
			return fmt.Errorf("abl-blame %s: %w", v.name, err)
		}
		if rep.CritPath == nil {
			return fmt.Errorf("abl-blame %s: report carries no critical-path profile", v.name)
		}
		profs[i] = rep.CritPath
		return nil
	})
	if err != nil {
		return nil, err
	}
	syncProf, asyncProf, faultProf := profs[0], profs[1], profs[2]

	for i, p := range profs {
		if p.Coverage < 0.97 {
			return nil, fmt.Errorf("abl-blame %s: attribution coverage %.4f below 0.97",
				variants[i].name, p.Coverage)
		}
	}
	if top := largestNonCompute(syncProf); top != critpath.PFSTransfer {
		return nil, fmt.Errorf("abl-blame sync: largest non-compute category is %s, want %s",
			top, critpath.PFSTransfer)
	}
	if top := asyncProf.TopCause(); top != critpath.Compute {
		return nil, fmt.Errorf("abl-blame async: top category is %s, want %s", top, critpath.Compute)
	}
	diff := critpath.Diff(syncProf, asyncProf)
	if moved := -diff.Entry(critpath.PFSTransfer).DeltaShare; moved < 0.20 {
		return nil, fmt.Errorf("abl-blame: sync→async moved only %.3f of makespan share off %s, want ≥ 0.20",
			moved, critpath.PFSTransfer)
	}
	outage, ok := findWindow(faultProf, "outage:gpfs")
	if !ok {
		return nil, fmt.Errorf("abl-blame sync-faulted: profile has no outage:gpfs window")
	}
	if len(outage.Categories) == 0 {
		return nil, fmt.Errorf("abl-blame sync-faulted: outage window attributes nothing")
	}
	if top := outage.Categories[0].Cause; top != critpath.RetryBackoff && top != critpath.FaultStall {
		return nil, fmt.Errorf("abl-blame sync-faulted: outage window blames %s, want %s or %s",
			top, critpath.RetryBackoff, critpath.FaultStall)
	}

	t := &Table{
		ID:     "abl-blame",
		Title:  fmt.Sprintf("VPIC-IO critical-path blame by category, Summit (%d nodes)", nodes),
		XLabel: "category index", YLabel: "share of makespan",
	}
	for i, v := range variants {
		var xs, ys []float64
		for ci, c := range blameCauses {
			xs = append(xs, float64(ci))
			ys = append(ys, profs[i].CategoryShare(c))
		}
		t.Series = append(t.Series, Series{Name: v.name, X: xs, Y: ys})
	}
	for ci, c := range blameCauses {
		t.note("category %d = %s", ci, c)
	}
	for i, v := range variants {
		t.note("%s: makespan %.3fs, coverage %.1f%%, top cause %s",
			v.name, profs[i].MakespanSeconds, 100*profs[i].Coverage, profs[i].TopCause())
	}
	t.note("sync→async: %.2f of makespan share moved off %s",
		-diff.Entry(critpath.PFSTransfer).DeltaShare, critpath.PFSTransfer)
	t.note("outage window [%.2fs, %.2fs] blames %s",
		outage.StartSeconds, outage.EndSeconds, outage.Categories[0].Cause)
	return t, nil
}

// largestNonCompute returns the biggest category that is neither
// compute nor unattributed.
func largestNonCompute(p *critpath.Profile) critpath.Cause {
	for _, ct := range p.Categories { // sorted by seconds, descending
		c := critpath.Cause(ct.Cause)
		if c != critpath.Compute && c != critpath.Unattributed {
			return c
		}
	}
	return critpath.Unattributed
}

// findWindow returns the named fault-window profile.
func findWindow(p *critpath.Profile, name string) (critpath.WindowProfile, bool) {
	for _, w := range p.Windows {
		if w.Name == name {
			return w, true
		}
	}
	return critpath.WindowProfile{}, false
}
