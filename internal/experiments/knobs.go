package experiments

import (
	"asyncio/internal/critpath"
	"asyncio/internal/faults"
	"asyncio/internal/pfs"
	"asyncio/internal/shard"
	"asyncio/internal/systems"
	"asyncio/internal/vclock"
)

// RunKnobs bundles the per-run configuration the CLIs historically
// installed through process-wide setters (SetDefaultFaults,
// SetDefaultConsistency, SetCritPathProfiling, SetShards): the fault
// schedule, the PFS consistency model, critical-path recording, and
// intra-run engine sharding. The global setters still exist for the
// flag-driven CLIs, but callers that execute many differently-configured
// runs concurrently (the campaign service schedules points from separate
// campaigns onto one worker pool) pass explicit knobs instead, so
// concurrent points never race on — or observe each other's — globals.
//
// The zero value is the default configuration: no faults, the historical
// implicit consistency model, no profiling, the serial engine.
type RunKnobs struct {
	// Faults, when non-nil, attaches a fresh injector built from this
	// schedule to every system (an injector serves exactly one run).
	Faults *faults.Spec
	// Consistency, when non-nil, attaches a fresh consistency model
	// built from a copy of this spec (one model serves exactly one run).
	Consistency *pfs.ConsistencySpec
	// CritPath attaches a fresh critical-path recorder to every system.
	CritPath bool
	// Shards is the intra-run engine shard count; <= 1 is the serial
	// engine. Sharding never changes simulated output, only wall speed.
	Shards int
	// ShardPolicy is the rank-assignment policy for sharded runs
	// (shard.PolicyBlock or shard.PolicyStripe; "" = block).
	ShardPolicy string
}

// snapshotKnobs captures the current process-wide defaults as explicit
// knobs, so a sweep reads the globals exactly once.
func snapshotKnobs() *RunKnobs {
	return &RunKnobs{
		Faults:      defaultFaultSpec,
		Consistency: defaultConsistency,
		CritPath:    defaultCritPath,
		Shards:      Shards(),
		ShardPolicy: ShardPolicy(),
	}
}

// orDefaults resolves a nil receiver to the process-wide defaults.
func (k *RunKnobs) orDefaults() *RunKnobs {
	if k == nil {
		return snapshotKnobs()
	}
	return k
}

// sysOpts builds the per-run system options these knobs require. Every
// call hands out fresh run-scoped state (injector, consistency model,
// recorder): each serves exactly one run.
func (k *RunKnobs) sysOpts() []systems.Option {
	var opts []systems.Option
	if k.Faults != nil {
		opts = append(opts, systems.WithFaults(faults.FromSpec(k.Faults)))
	}
	if k.CritPath {
		opts = append(opts, systems.WithCritPath(critpath.NewRecorder()))
	}
	if k.Consistency != nil {
		sp := *k.Consistency
		opts = append(opts, systems.WithConsistency(pfs.NewConsistency(&sp)))
	}
	return opts
}

// newClock builds one run's engine at the knobs' shard setting: a serial
// clock, or shard 0 of a fresh coordinator plus the sharding option for
// the system constructor.
func (k *RunKnobs) newClock() (*vclock.Clock, []systems.Option) {
	if k.Shards <= 1 {
		return vclock.New(), nil
	}
	co := vclock.NewSharded(k.Shards)
	policy := k.ShardPolicy
	if policy == "" {
		policy = shard.PolicyBlock
	}
	return co.Clock(0), []systems.Option{systems.WithSharding(co, policy)}
}

// newSystem builds a fresh clock+system for one run under these knobs.
// Option order matches the historical newSystem exactly (faults, crit,
// consistency, sharding, then caller extras), so the global-default path
// stays byte-identical.
func (k *RunKnobs) newSystem(name string, nodes int, opts ...systems.Option) *systems.System {
	clk, shardOpts := k.newClock()
	opts = append(append(k.sysOpts(), shardOpts...), opts...)
	if name == "summit" {
		return systems.Summit(clk, nodes, opts...)
	}
	return systems.CoriHaswell(clk, nodes, opts...)
}
