package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelismOverride, when >0, fixes the worker count RunParallel uses;
// 0 means "one worker per GOMAXPROCS". Set via SetParallelism.
var parallelismOverride atomic.Int64

// SetParallelism fixes the number of workers RunParallel uses for
// independent experiment points. n <= 0 restores the default (one worker
// per GOMAXPROCS). It returns the previous override (0 = default) so
// callers can restore it.
func SetParallelism(n int) int {
	if n < 0 {
		n = 0
	}
	return int(parallelismOverride.Swap(int64(n)))
}

// Parallelism returns the worker count RunParallel will use.
func Parallelism() int {
	if n := int(parallelismOverride.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// RunParallel executes fn(0) … fn(n-1) across min(Parallelism(), n)
// workers and returns the lowest-index error, if any. Every index runs
// regardless of other indexes' failures, and on one worker the indexes
// run in order — so a figure built from independent experiment points
// (each with its own vclock.Clock and systems.System) produces identical
// results serial or parallel: callers store each point's result at its
// index and never share mutable state across points.
func RunParallel(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					errs[i] = fn(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
