package experiments

import (
	"testing"
	"time"

	"asyncio/internal/core"
	"asyncio/internal/faults"
	"asyncio/internal/systems"
	"asyncio/internal/trace"
	"asyncio/internal/workloads/vpicio"
)

// TestDegradationDemotesAndRepromotes is the end-to-end degradation
// scenario: an async VPIC-IO run hits a sustained GPFS outage, the
// background streams fall behind, the drain-queue watermark trips, the
// controller demotes to synchronous I/O, and after the target repairs
// and the queue drains it re-promotes. Every switch must be visible in
// the report and in the exported metrics series.
func TestDegradationDemotesAndRepromotes(t *testing.T) {
	// The healthy end-of-epoch backlog on this configuration is 180 ops
	// (each epoch's just-staged writes, drained during the next compute
	// phase); 200 only trips once the outage stalls the streams.
	in, err := faults.New("seed=3;outage=gpfs@30s+25s;retries=20;demote=200;healthy=2")
	if err != nil {
		t.Fatal(err)
	}
	sys := newSystem("summit", 2, systems.WithFaults(in))
	sys.Metrics.EnableSeries()
	rep, _, err := vpicio.Run(sys, vpicio.Config{
		Steps: 16, ComputeTime: 5 * time.Second, Mode: core.ForceAsync,
	})
	if err != nil {
		t.Fatalf("faulted run failed: %v", err)
	}

	var demote, promote *core.ModeSwitch
	for i := range rep.ModeSwitches {
		sw := &rep.ModeSwitches[i]
		switch {
		case sw.To == trace.Sync && demote == nil:
			demote = sw
		case sw.To == trace.Async && demote != nil && promote == nil:
			promote = sw
		}
	}
	if demote == nil {
		t.Fatalf("no demotion recorded; switches: %+v", rep.ModeSwitches)
	}
	if promote == nil {
		t.Fatalf("no re-promotion after demotion; switches: %+v", rep.ModeSwitches)
	}
	if promote.At <= demote.At {
		t.Errorf("promotion at %v not after demotion at %v", promote.At, demote.At)
	}
	if demote.At < 30*time.Second {
		t.Errorf("demoted at %v, before the outage began at 30s — wrong trigger", demote.At)
	}
	t.Logf("demoted at %v (%s), promoted at %v (%s)",
		demote.At, demote.Reason, promote.At, promote.Reason)

	// The demoted epochs must actually have run synchronously despite
	// the forced-async policy, and async must resume afterwards.
	sawSync, sawAsyncAfter := false, false
	for _, ep := range rep.Epochs {
		if ep.Epoch >= demote.Epoch && ep.Epoch < promote.Epoch && ep.Mode == trace.Sync {
			sawSync = true
		}
		if ep.Epoch >= promote.Epoch && ep.Mode == trace.Async {
			sawAsyncAfter = true
		}
	}
	if !sawSync {
		t.Error("no synchronous epoch recorded while degraded")
	}
	if !sawAsyncAfter {
		t.Error("no asynchronous epoch recorded after re-promotion")
	}

	// The switches must be visible in the exported metrics series:
	// core.degraded rises to 1 and returns to 0.
	g := rep.Metrics.FindGauge("core.degraded")
	if g == nil {
		t.Fatal("core.degraded gauge not registered")
	}
	series := g.Series()
	rose, fell := false, false
	for _, s := range series {
		if s.V == 1 {
			rose = true
		}
		if rose && s.V == 0 {
			fell = true
		}
	}
	if !rose || !fell {
		t.Errorf("core.degraded series %v never rose and fell", series)
	}
	if c := rep.Metrics.FindCounter("core.demotions"); c == nil || c.Value() < 1 {
		t.Error("core.demotions counter missing or zero")
	}
	if c := rep.Metrics.FindCounter("core.promotions"); c == nil || c.Value() < 1 {
		t.Error("core.promotions counter missing or zero")
	}
	if c := rep.Metrics.FindCounter(faults.MetricOutage); c == nil || c.Value() == 0 {
		t.Error("no outage rejections recorded — the outage never bit")
	}
}
