package experiments

import (
	"bytes"
	"testing"
)

// TestSweepPointParityFig3a pins the campaign service's point-level path
// to the CLI path: simulating the fig3a sweep one point at a time with
// SimulateSweepPoint and reassembling with AssembleSweepPoints must
// render byte-identically to the registry generator cmd/asyncio-bench
// runs (SimulateSweep + AssembleSweep under RunParallel).
func TestSweepPointParityFig3a(t *testing.T) {
	const id = "fig3a"
	scale := ReducedScale()

	gen := Registry()[id]
	if gen == nil {
		t.Fatalf("figure %q not registered", id)
	}
	cliTab, err := gen(scale)
	if err != nil {
		t.Fatal(err)
	}
	var cli bytes.Buffer
	if err := cliTab.Render(&cli); err != nil {
		t.Fatal(err)
	}

	n, err := SweepPointCount(id, scale)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2*len(scale.SummitNodes) {
		t.Fatalf("SweepPointCount = %d, want %d", n, 2*len(scale.SummitNodes))
	}
	// One point at a time, serially, under explicit zero-value knobs —
	// the way a campaign worker computes (or caches) them.
	halves := make([]SweepPoint, n)
	for i := 0; i < n; i++ {
		p, err := SimulateSweepPoint(id, scale, i, &RunKnobs{})
		if err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
		halves[i] = p
	}
	data, err := AssembleSweepPoints(id, scale, halves)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := AssembleSweep(data)
	if err != nil {
		t.Fatal(err)
	}
	var pts bytes.Buffer
	if err := tab.Render(&pts); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(cli.Bytes(), pts.Bytes()) {
		t.Errorf("per-point assembly drifted from the CLI sweep path.\n--- sweep ---\n%s\n--- points ---\n%s",
			cli.Bytes(), pts.Bytes())
	}
}

// TestSweepPointErrors covers the typed failure modes of the point API.
func TestSweepPointErrors(t *testing.T) {
	scale := ReducedScale()
	if _, err := SweepPointCount("fig8", scale); err == nil {
		t.Error("SweepPointCount accepted a non-sweep figure")
	}
	if _, err := SimulateSweepPoint("nope", scale, 0, nil); err == nil {
		t.Error("SimulateSweepPoint accepted an unknown figure")
	}
	if _, err := SimulateSweepPoint("fig3a", scale, 999, nil); err == nil {
		t.Error("SimulateSweepPoint accepted an out-of-range index")
	}
	if _, err := AssembleSweepPoints("fig3a", scale, make([]SweepPoint, 3)); err == nil {
		t.Error("AssembleSweepPoints accepted a short point list")
	}
}
