package ioreq_test

import (
	"bytes"
	"strings"
	"testing"

	"asyncio/internal/hdf5"
	"asyncio/internal/ioreq"
	"asyncio/internal/trace"
	"asyncio/internal/vclock"
)

// newDataset returns a fresh 1-D uint8 dataset of n elements backed by a
// MemStore (untimed — these tests exercise pipeline mechanics, not
// timing).
func newDataset(t *testing.T, n uint64) *hdf5.Dataset {
	t.Helper()
	f, err := hdf5.Create(hdf5.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	d, err := f.Root().CreateDataset(nil, "x", hdf5.U8, hdf5.MustSimple(n), nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// slab selects [off, off+n) of a 1-D extent of total elements.
func slab(t *testing.T, total, off, n uint64) *hdf5.Dataspace {
	t.Helper()
	sp, err := hdf5.NewSimple(total)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.SelectHyperslab([]uint64{off}, nil, []uint64{1}, []uint64{n}); err != nil {
		t.Fatal(err)
	}
	return sp
}

// recordStage logs its name on every Process call.
type recordStage struct {
	name string
	log  *[]string
}

func (s recordStage) Name() string { return s.name }

func (s recordStage) Process(req *ioreq.Request, next func(*ioreq.Request) error) error {
	*s.log = append(*s.log, s.name)
	return next(req)
}

func (s recordStage) Flush(*vclock.Proc, func(*ioreq.Request) error) error { return nil }

func TestPipelineStageOrdering(t *testing.T) {
	d := newDataset(t, 8)
	var log []string
	pl := ioreq.NewCustom(func(req *ioreq.Request) error {
		log = append(log, "terminal")
		return nil
	}, recordStage{"a", &log}, recordStage{"b", &log}, recordStage{"c", &log})
	if err := pl.Do(&ioreq.Request{Op: ioreq.OpWriteNull, Dataset: d}); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c", "terminal"}
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestStandardPipelineStageNames(t *testing.T) {
	got := ioreq.New(ioreq.NewAgg(ioreq.AggConfig{MaxRequests: 2})).Stages()
	want := []string{"validate", "resolve", "aggregate"}
	if len(got) != len(want) {
		t.Fatalf("Stages() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Stages() = %v, want %v", got, want)
		}
	}
}

func TestValidateRejectsMalformedRequests(t *testing.T) {
	d := newDataset(t, 8)
	pl := ioreq.New()

	err := pl.Do(&ioreq.Request{Op: ioreq.OpWrite, Dataset: d, Buf: make([]byte, 3)})
	if err == nil || !strings.Contains(err.Error(), "buffer") {
		t.Errorf("short buffer: err = %v, want buffer-size error", err)
	}

	bad, err := hdf5.NewSimple(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	err = pl.Do(&ioreq.Request{Op: ioreq.OpRead, Dataset: d, Space: bad, Buf: make([]byte, 8)})
	if err == nil || !strings.Contains(err.Error(), "rank") {
		t.Errorf("rank mismatch: err = %v, want rank error", err)
	}

	if err := pl.Do(&ioreq.Request{Op: ioreq.OpWriteNull}); err == nil {
		t.Error("nil dataset: err = nil, want error")
	}
}

func TestRequestContiguity(t *testing.T) {
	d := newDataset(t, 16)
	one := &ioreq.Request{Op: ioreq.OpWrite, Dataset: d, Space: slab(t, 16, 4, 8)}
	if run, ok := one.Contiguous(); !ok || run.Off != 4 || run.N != 8 {
		t.Errorf("single slab: run=%+v contig=%v, want {4 8} true", run, ok)
	}

	strided, err := hdf5.NewSimple(16)
	if err != nil {
		t.Fatal(err)
	}
	// Two elements 8 apart: two runs.
	if err := strided.SelectHyperslab([]uint64{0}, []uint64{8}, []uint64{2}, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	two := &ioreq.Request{Op: ioreq.OpWrite, Dataset: d, Space: strided}
	if _, ok := two.Contiguous(); ok {
		t.Error("strided selection reported contiguous")
	}
}

func TestAggCoalescesAdjacentWrites(t *testing.T) {
	d := newDataset(t, 8)
	agg := ioreq.NewAgg(ioreq.AggConfig{MaxRequests: 2})
	dispatches := 0
	pl := ioreq.NewCustom(func(req *ioreq.Request) error {
		dispatches++
		return ioreq.Execute(req)
	}, agg)

	spans := [2]*trace.Span{trace.NewSpan("w0"), trace.NewSpan("w1")}
	if err := pl.Do(&ioreq.Request{
		Op: ioreq.OpWrite, Dataset: d, Space: slab(t, 8, 0, 4),
		Buf: []byte{1, 2, 3, 4}, Span: spans[0],
	}); err != nil {
		t.Fatal(err)
	}
	if dispatches != 0 {
		t.Fatalf("dispatched %d before window filled", dispatches)
	}
	if err := pl.Do(&ioreq.Request{
		Op: ioreq.OpWrite, Dataset: d, Space: slab(t, 8, 4, 4),
		Buf: []byte{5, 6, 7, 8}, Span: spans[1],
	}); err != nil {
		t.Fatal(err)
	}

	if dispatches != 1 {
		t.Errorf("dispatches = %d, want 1 (two adjacent writes coalesce)", dispatches)
	}
	got := make([]byte, 8)
	if err := d.Read(nil, nil, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Errorf("dataset = %v after merged write", got)
	}
	st := agg.Stats()
	if st.Buffered != 2 || st.Dispatched != 1 || st.Absorbed != 1 {
		t.Errorf("stats = %+v, want Buffered 2, Dispatched 1, Absorbed 1", st)
	}
	for i, sp := range spans {
		if _, ok := sp.Find("ioreq:agg:absorbed"); !ok {
			t.Errorf("span %d missing absorbed event:\n%s", i, sp)
		}
	}
}

func TestAggKeepsNonAdjacentWritesSeparate(t *testing.T) {
	d := newDataset(t, 8)
	dispatches := 0
	pl := ioreq.NewCustom(func(req *ioreq.Request) error {
		dispatches++
		return ioreq.Execute(req)
	}, ioreq.NewAgg(ioreq.AggConfig{MaxRequests: 2}))

	if err := pl.Do(&ioreq.Request{Op: ioreq.OpWrite, Dataset: d, Space: slab(t, 8, 0, 2), Buf: []byte{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := pl.Do(&ioreq.Request{Op: ioreq.OpWrite, Dataset: d, Space: slab(t, 8, 6, 2), Buf: []byte{7, 8}}); err != nil {
		t.Fatal(err)
	}
	if dispatches != 2 {
		t.Errorf("dispatches = %d, want 2 (gap prevents merging)", dispatches)
	}
	got := make([]byte, 8)
	if err := d.Read(nil, nil, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 0, 0, 0, 0, 7, 8}) {
		t.Errorf("dataset = %v", got)
	}
}

func TestAggFlushDispatchesPartialChains(t *testing.T) {
	d := newDataset(t, 8)
	dispatches := 0
	agg := ioreq.NewAgg(ioreq.AggConfig{MaxRequests: 10})
	pl := ioreq.NewCustom(func(req *ioreq.Request) error {
		dispatches++
		return ioreq.Execute(req)
	}, agg)

	for off := uint64(0); off < 8; off += 4 {
		buf := []byte{byte(off + 1), byte(off + 2), byte(off + 3), byte(off + 4)}
		if err := pl.Do(&ioreq.Request{Op: ioreq.OpWrite, Dataset: d, Space: slab(t, 8, off, 4), Buf: buf}); err != nil {
			t.Fatal(err)
		}
	}
	if dispatches != 0 {
		t.Fatalf("dispatched %d before flush", dispatches)
	}
	if err := pl.Flush(nil); err != nil {
		t.Fatal(err)
	}
	if dispatches != 1 {
		t.Errorf("dispatches = %d after flush, want 1", dispatches)
	}
	got := make([]byte, 8)
	if err := d.Read(nil, nil, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Errorf("dataset = %v after flush", got)
	}
	if st := agg.Stats(); st.Dispatched != 1 || st.Absorbed != 1 {
		t.Errorf("stats = %+v, want Dispatched 1, Absorbed 1", st)
	}
}

func TestAggReusedSelectionIsSafe(t *testing.T) {
	// Callers may legally mutate their dataspace after Write returns;
	// the stage must have detached from it.
	d := newDataset(t, 8)
	pl := ioreq.NewCustom(ioreq.Execute, ioreq.NewAgg(ioreq.AggConfig{MaxRequests: 2}))

	sp := slab(t, 8, 0, 4)
	if err := pl.Do(&ioreq.Request{Op: ioreq.OpWrite, Dataset: d, Space: sp, Buf: []byte{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	// Re-aim the caller's dataspace at a different slab and write again.
	if err := sp.SelectHyperslab([]uint64{4}, nil, []uint64{1}, []uint64{4}); err != nil {
		t.Fatal(err)
	}
	if err := pl.Do(&ioreq.Request{Op: ioreq.OpWrite, Dataset: d, Space: sp, Buf: []byte{5, 6, 7, 8}}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	if err := d.Read(nil, nil, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Errorf("dataset = %v", got)
	}
}

func TestAggPassesReadsThrough(t *testing.T) {
	d := newDataset(t, 8)
	if err := d.Write(nil, nil, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	agg := ioreq.NewAgg(ioreq.AggConfig{MaxRequests: 4})
	pl := ioreq.NewCustom(ioreq.Execute, agg)
	got := make([]byte, 4)
	if err := pl.Do(&ioreq.Request{Op: ioreq.OpRead, Dataset: d, Space: slab(t, 8, 2, 4), Buf: got}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{3, 4, 5, 6}) {
		t.Errorf("read = %v, want [3 4 5 6]", got)
	}
	if st := agg.Stats(); st.Passthrough != 1 || st.Buffered != 0 {
		t.Errorf("stats = %+v, want Passthrough 1, Buffered 0", st)
	}
}
