// Package ioreq reifies dataset I/O as first-class request objects
// flowing through a staged pipeline — the spine every connector's data
// path shares. Instead of each layer (hdf5 dataset code, vol.Native,
// asyncvol) re-deriving "rank R wants these bytes of this selection of
// this dataset" from loose arguments, the operation is constructed once
// as a Request and executed by a Pipeline of Stages; cross-cutting
// features (validation, chunk-run resolution, write aggregation,
// tracing) become stages instead of per-call-site edits.
//
// The default pipeline is validate → resolve → execute; connectors may
// interpose extra stages (asyncvol inserts its transactional staging
// copy, and either path can insert an AggStage for two-phase-style
// collective write buffering).
package ioreq

import (
	"fmt"

	"asyncio/internal/hdf5"
	"asyncio/internal/metrics"
	"asyncio/internal/trace"
	"asyncio/internal/vclock"
)

// Op is the request's operation kind.
type Op uint8

// Operation kinds. The Null variants charge the driver and walk chunk
// allocation exactly like their counterparts without moving bytes
// (full-scale timing runs — see hdf5.Dataset.WriteNull).
const (
	OpWrite Op = iota
	OpRead
	OpWriteNull
	OpReadNull
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpWriteNull:
		return "write-null"
	case OpReadNull:
		return "read-null"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// IsWrite reports whether the op stores data (or charges a store).
func (o Op) IsWrite() bool { return o == OpWrite || o == OpWriteNull }

// Run is one maximal contiguous element run of a selection: Off is the
// linear element offset within the dataset extent, N the run length.
type Run struct {
	Off, N uint64
}

// Request describes one dataset I/O operation: what to do, to which
// dataset, over which selection, with which memory buffer, on behalf of
// which virtual-clock process, traced by which span. Requests are built
// by connectors and executed by a Pipeline; stages may annotate or
// replace them (aggregation folds several requests into one, recording
// the originals in Sources).
type Request struct {
	Op      Op
	Dataset *hdf5.Dataset
	// Space is the file-space selection; nil selects the whole extent
	// (normalized by the validate stage).
	Space *hdf5.Dataspace
	// Buf is the packed memory buffer for OpWrite/OpRead; nil for the
	// Null variants.
	Buf []byte
	// Proc is the virtual-clock process charged for the operation. For a
	// request dispatched by an aggregation flush this is the flusher's
	// process — time charges must always run on the goroutine that owns
	// them (see internal/vclock).
	Proc *vclock.Proc
	// Span, when non-nil, traces the request across layers.
	Span *trace.Span
	// Tag is connector-private context that rides along with the request
	// (asyncvol stores the caller's event set here).
	Tag any
	// Sources holds the original requests folded into this one by an
	// aggregation stage, in file order. Nil for un-merged requests.
	Sources []*Request

	// NBytes is the selection's byte count, set by the validate stage
	// (or lazily by Bytes).
	NBytes int64

	resolved bool
	contig   bool // selection is a single contiguous run
	run      Run  // first run; valid when resolved
}

// Bytes returns the request's payload size without requiring the
// validate stage to have run: buffer length when a buffer is present,
// else the selection's byte count.
func (r *Request) Bytes() int64 {
	if r.Buf != nil {
		return int64(len(r.Buf))
	}
	if r.NBytes > 0 {
		return r.NBytes
	}
	if r.Dataset == nil {
		return 0
	}
	if r.Space != nil {
		return int64(r.Space.SelectionCount()) * int64(r.Dataset.Dtype().Size)
	}
	return r.Dataset.NBytes()
}

// Contiguous reports whether the selection resolved to a single
// contiguous run, returning that run. Resolves lazily.
func (r *Request) Contiguous() (Run, bool) {
	resolve(r)
	return r.run, r.contig
}

// String summarizes the request for logs and errors.
func (r *Request) String() string {
	return fmt.Sprintf("ioreq{%s %d B}", r.Op, r.Bytes())
}

// Stage is one step of a pipeline. Process handles a request and calls
// next to pass it (or derived requests) downstream; a stage may buffer
// the request and call next later from another Process or from Flush.
// Flush dispatches anything buffered, charging time to p — the process
// of the goroutine actually performing the flush.
type Stage interface {
	Name() string
	Process(req *Request, next func(*Request) error) error
	Flush(p *vclock.Proc, next func(*Request) error) error
}

// Pipeline chains stages over a terminal dispatch function. Do and
// Flush are safe for concurrent callers as long as every stage is
// (the built-in stages are).
type Pipeline struct {
	stages   []Stage
	terminal func(*Request) error
	metrics  *metrics.Registry
	// chain[i] enters the pipeline at stage i (chain[len(stages)] is the
	// terminal dispatch), memoized at construction so the hot Do path
	// allocates no closures per request.
	chain []func(*Request) error
}

// WithMetrics instruments the pipeline on m and returns it (chainable
// at construction; must not be called concurrently with Do/Flush).
// Each stage records an inclusive latency histogram
// "ioreq.stage.<name>.seconds" — the virtual time from entering the
// stage to the request returning from everything downstream, measured
// on the request's process. Requests reaching the terminal count into
// "ioreq.requests"; merged requests additionally count into
// "ioreq.agg.merged_requests" with their absorbed originals in
// "ioreq.agg.merged_sources". A nil registry leaves the pipeline
// unmetered.
func (pl *Pipeline) WithMetrics(m *metrics.Registry) *Pipeline {
	pl.metrics = m
	pl.build()
	return pl
}

// New returns the standard pipeline — validate → resolve → extra… →
// Execute — used by synchronous connectors and by asyncvol's background
// execution.
func New(extra ...Stage) *Pipeline {
	stages := append([]Stage{validateStage{}, resolveStage{}}, extra...)
	return NewCustom(Execute, stages...)
}

// NewCustom builds a pipeline with an explicit terminal: asyncvol's
// inline path terminates at its queue's enqueue function instead of
// Execute.
func NewCustom(terminal func(*Request) error, stages ...Stage) *Pipeline {
	pl := &Pipeline{stages: stages, terminal: terminal}
	pl.build()
	return pl
}

// Do runs req through the pipeline.
func (pl *Pipeline) Do(req *Request) error {
	return pl.chain[0](req)
}

// Flush dispatches everything buffered in any stage, front to back, so
// a flushed request still traverses the stages downstream of the one
// holding it. Time is charged to p.
func (pl *Pipeline) Flush(p *vclock.Proc) error {
	var first error
	for i, st := range pl.stages {
		if err := st.Flush(p, pl.chain[i+1]); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// build memoizes the stage dispatch chain, back to front. Called at
// construction and again by WithMetrics (which must not race Do/Flush).
func (pl *Pipeline) build() {
	pl.chain = make([]func(*Request) error, len(pl.stages)+1)
	pl.chain[len(pl.stages)] = pl.dispatch
	for i := len(pl.stages) - 1; i >= 0; i-- {
		st, next := pl.stages[i], pl.chain[i+1]
		if pl.metrics == nil {
			pl.chain[i] = func(req *Request) error {
				return st.Process(req, next)
			}
			continue
		}
		hist := pl.metrics.Histogram("ioreq.stage." + st.Name() + ".seconds")
		pl.chain[i] = func(req *Request) error {
			// Capture the submitting proc before Process: a terminal may
			// hand the request to another proc (asyncvol's background
			// stream) that runs concurrently at this same virtual
			// instant, so req.Proc must not be re-read afterwards — and
			// the inclusive latency belongs on the submitter's clock.
			p := req.Proc
			start := procNow(p)
			err := st.Process(req, next)
			hist.Observe((procNow(p) - start).Seconds())
			return err
		}
	}
}

// dispatch invokes the terminal, counting the requests that actually
// leave the pipeline (a buffered aggregation write does not reach here
// until its chain flushes).
func (pl *Pipeline) dispatch(req *Request) error {
	if m := pl.metrics; m != nil {
		m.Counter("ioreq.requests").Add(1)
		if n := len(req.Sources); n > 0 {
			m.Counter("ioreq.agg.merged_requests").Add(1)
			m.Counter("ioreq.agg.merged_sources").Add(int64(n))
		}
	}
	return pl.terminal(req)
}

// Stages returns the pipeline's stage names, in order.
func (pl *Pipeline) Stages() []string {
	out := make([]string, len(pl.stages))
	for i, st := range pl.stages {
		out[i] = st.Name()
	}
	return out
}

// Execute is the standard terminal: it dispatches the request to the
// hdf5 layer, which charges the file's driver and moves the bytes.
func Execute(req *Request) error {
	if req.Dataset == nil {
		return fmt.Errorf("ioreq: %s request has no dataset", req.Op)
	}
	tp := &hdf5.TransferProps{Proc: req.Proc, Span: req.Span}
	switch req.Op {
	case OpWrite:
		return req.Dataset.Write(tp, req.Space, req.Buf)
	case OpRead:
		return req.Dataset.Read(tp, req.Space, req.Buf)
	case OpWriteNull:
		return req.Dataset.WriteNull(tp, req.Space)
	case OpReadNull:
		return req.Dataset.ReadNull(tp, req.Space)
	default:
		return fmt.Errorf("ioreq: unknown op %v", req.Op)
	}
}
