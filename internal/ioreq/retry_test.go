package ioreq

import (
	"errors"
	"testing"
	"time"

	"asyncio/internal/vclock"
)

// TestRetryBackoffSequence pins the stage's virtual-time behavior: the
// first retry waits Backoff, each later one doubles it up to MaxBackoff,
// and the request succeeds once the downstream stops failing.
func TestRetryBackoffSequence(t *testing.T) {
	sentinel := errors.New("transient")
	st := NewRetry(RetryPolicy{
		MaxAttempts: 6,
		Backoff:     10 * time.Millisecond,
		MaxBackoff:  15 * time.Millisecond,
		Retryable:   func(err error) bool { return errors.Is(err, sentinel) },
	})
	clk := vclock.New()
	clk.Go("app", func(p *vclock.Proc) {
		var at []time.Duration
		fails := 3
		next := func(req *Request) error {
			at = append(at, p.Now())
			if fails > 0 {
				fails--
				return sentinel
			}
			return nil
		}
		if err := st.Process(&Request{Proc: p}, next); err != nil {
			t.Errorf("Process = %v, want success after retries", err)
		}
		want := []time.Duration{
			0,
			10 * time.Millisecond, // first backoff
			25 * time.Millisecond, // doubled 20ms capped to 15ms
			40 * time.Millisecond, // still capped
		}
		if len(at) != len(want) {
			t.Fatalf("dispatch times %v, want %v", at, want)
		}
		for i := range want {
			if at[i] != want[i] {
				t.Errorf("dispatch %d at %v, want %v", i, at[i], want[i])
			}
		}
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	sentinel := errors.New("transient")
	var exhaustedWith int
	st := NewRetry(RetryPolicy{
		MaxAttempts: 3,
		Backoff:     time.Millisecond,
		Retryable:   func(err error) bool { return errors.Is(err, sentinel) },
		Exhausted: func(req *Request, attempts int, err error) error {
			exhaustedWith = attempts
			return err
		},
	})
	clk := vclock.New()
	clk.Go("app", func(p *vclock.Proc) {
		dispatches := 0
		next := func(req *Request) error { dispatches++; return sentinel }
		if err := st.Process(&Request{Proc: p}, next); !errors.Is(err, sentinel) {
			t.Errorf("Process = %v, want the final failure", err)
		}
		if dispatches != 3 {
			t.Errorf("dispatches = %d, want MaxAttempts = 3", dispatches)
		}
		if exhaustedWith != 3 {
			t.Errorf("Exhausted called with attempts = %d, want 3", exhaustedWith)
		}
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestRetryDeadline asserts a retry whose backoff would cross the
// per-request deadline is not attempted.
func TestRetryDeadline(t *testing.T) {
	sentinel := errors.New("transient")
	st := NewRetry(RetryPolicy{
		MaxAttempts: 100,
		Backoff:     100 * time.Millisecond,
		Deadline:    150 * time.Millisecond,
		Retryable:   func(err error) bool { return errors.Is(err, sentinel) },
	})
	clk := vclock.New()
	clk.Go("app", func(p *vclock.Proc) {
		dispatches := 0
		next := func(req *Request) error { dispatches++; return sentinel }
		err := st.Process(&Request{Proc: p}, next)
		if !errors.Is(err, sentinel) {
			t.Errorf("Process = %v", err)
		}
		// First failure at 0 sets the deadline to 150ms; the 100ms retry
		// fits, the next (200ms backoff) would land at 300ms and is cut.
		if dispatches != 2 {
			t.Errorf("dispatches = %d, want 2", dispatches)
		}
		if now := p.Now(); now != 100*time.Millisecond {
			t.Errorf("gave up at %v, want 100ms", now)
		}
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestRetryPassesThroughNonRetryable(t *testing.T) {
	sentinel := errors.New("fatal")
	st := NewRetry(RetryPolicy{
		MaxAttempts: 5,
		Backoff:     time.Second,
		Retryable:   func(err error) bool { return false },
	})
	clk := vclock.New()
	clk.Go("app", func(p *vclock.Proc) {
		dispatches := 0
		next := func(req *Request) error { dispatches++; return sentinel }
		if err := st.Process(&Request{Proc: p}, next); !errors.Is(err, sentinel) {
			t.Errorf("Process = %v, want sentinel unchanged", err)
		}
		if dispatches != 1 {
			t.Errorf("dispatches = %d, want 1 (no retries)", dispatches)
		}
		if p.Now() != 0 {
			t.Errorf("non-retryable failure slept until %v", p.Now())
		}
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestRetryNilPolicyIsPassThrough(t *testing.T) {
	sentinel := errors.New("any")
	st := NewRetry(RetryPolicy{MaxAttempts: 5, Backoff: time.Second})
	clk := vclock.New()
	clk.Go("app", func(p *vclock.Proc) {
		if err := st.Process(&Request{Proc: p}, func(*Request) error { return sentinel }); !errors.Is(err, sentinel) {
			t.Errorf("Process = %v, want sentinel (nil Retryable retries nothing)", err)
		}
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}
