package ioreq

import (
	"errors"
	"fmt"
	"time"

	"asyncio/internal/vclock"
)

// validateStage normalizes and checks the request before later stages
// act on it: a nil selection becomes the full extent, the selection's
// rank and (for buffered ops) extent must match the dataset, and the
// buffer must match the selection's byte count. It mirrors the hdf5
// layer's own checks so malformed requests fail before an aggregation
// stage could merge them.
type validateStage struct{}

func (validateStage) Name() string { return "validate" }

func (validateStage) Process(req *Request, next func(*Request) error) error {
	if req.Dataset == nil {
		return fmt.Errorf("ioreq: %s request has no dataset", req.Op)
	}
	d := req.Dataset
	if req.Space == nil {
		req.Space = d.Space()
	} else {
		ddims := d.Dims()
		if req.Space.NDims() != len(ddims) {
			return fmt.Errorf("ioreq: selection rank %d vs dataset rank %d",
				req.Space.NDims(), len(ddims))
		}
		if req.Op == OpWrite || req.Op == OpRead {
			fdims := req.Space.Dims()
			for i := range fdims {
				if fdims[i] != ddims[i] {
					return fmt.Errorf("ioreq: selection extent %v vs dataset extent %v", fdims, ddims)
				}
			}
		}
	}
	req.NBytes = int64(req.Space.SelectionCount()) * int64(d.Dtype().Size)
	if (req.Op == OpWrite || req.Op == OpRead) && int64(len(req.Buf)) != req.NBytes {
		return fmt.Errorf("ioreq: buffer is %d bytes, selection needs %d", len(req.Buf), req.NBytes)
	}
	return next(req)
}

func (validateStage) Flush(*vclock.Proc, func(*Request) error) error { return nil }

// resolveStage computes the request's contiguity: whether the selection
// is one contiguous run (the shape aggregation can merge). Enumeration
// is capped at two runs — enough to decide contiguity without walking a
// point selection's full run list.
type resolveStage struct{}

func (resolveStage) Name() string { return "resolve" }

func (resolveStage) Process(req *Request, next func(*Request) error) error {
	resolve(req)
	return next(req)
}

func (resolveStage) Flush(*vclock.Proc, func(*Request) error) error { return nil }

// errStopWalk aborts a capped EachRun enumeration; it never escapes.
var errStopWalk = errors.New("ioreq: stop walk")

// resolve fills the request's run/contiguity fields (idempotent).
func resolve(req *Request) {
	if req.resolved || req.Dataset == nil {
		return
	}
	req.resolved = true
	sp := req.Space
	if sp == nil {
		sp = req.Dataset.Space()
	}
	runs := 0
	err := sp.EachRun(func(off, n uint64) error {
		runs++
		if runs == 1 {
			req.run = Run{Off: off, N: n}
			return nil
		}
		return errStopWalk // two runs seen: not contiguous
	})
	req.contig = err == nil && runs == 1
}

// procNow returns p's virtual time, tolerating nil.
func procNow(p *vclock.Proc) time.Duration {
	if p == nil {
		return 0
	}
	return p.Now()
}

// procName returns p's process name, tolerating nil.
func procName(p *vclock.Proc) string {
	if p == nil {
		return ""
	}
	return p.Name()
}
