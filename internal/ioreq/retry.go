package ioreq

import (
	"fmt"
	"time"

	"asyncio/internal/critpath"
	"asyncio/internal/vclock"
)

// RetryPolicy configures the retry middleware stage: capped exponential
// backoff in virtual time, with an optional per-request deadline. The
// callbacks keep the package free of any fault-injector dependency —
// internal/faults supplies them.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first;
	// values below 2 disable retrying.
	MaxAttempts int
	// Backoff is the delay before the first retry; each subsequent retry
	// doubles it, capped at MaxBackoff (uncapped when MaxBackoff is 0).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Deadline bounds the virtual time a request may spend in the stage,
	// measured from the first failure. A retry whose backoff would cross
	// the deadline is not attempted. Zero means no deadline.
	Deadline time.Duration
	// Retryable reports whether an error is worth retrying. Nil retries
	// nothing (the stage is a pass-through).
	Retryable func(error) bool
	// OnRetry, when non-nil, observes every retry before its backoff
	// sleep: attempt is the 1-based number of the attempt that just
	// failed.
	OnRetry func(req *Request, attempt int, err error)
	// Exhausted, when non-nil, maps the final error once attempts or the
	// deadline run out; the default wraps it with attempt context.
	Exhausted func(req *Request, attempts int, err error) error
	// Crit, when non-nil, records every backoff sleep as a retry-backoff
	// critical-path edge.
	Crit *critpath.Recorder
}

// RetryStage retries failed downstream dispatches under a RetryPolicy.
// It is stateless and safe to share across pipelines.
type RetryStage struct {
	pol RetryPolicy
}

// NewRetry builds the retry middleware stage.
func NewRetry(pol RetryPolicy) *RetryStage { return &RetryStage{pol: pol} }

// Name implements Stage.
func (s *RetryStage) Name() string { return "retry" }

// Process implements Stage: dispatch, and on a retryable error back off
// on the request's process (advancing virtual time) and redispatch.
func (s *RetryStage) Process(req *Request, next func(*Request) error) error {
	err := next(req)
	if err == nil || s.pol.Retryable == nil || !s.pol.Retryable(err) {
		return err
	}
	var deadline time.Duration
	if s.pol.Deadline > 0 && req.Proc != nil {
		deadline = req.Proc.Now() + s.pol.Deadline
	}
	backoff := s.pol.Backoff
	for attempt := 1; ; attempt++ {
		if attempt >= s.pol.MaxAttempts {
			return s.exhaust(req, attempt, err)
		}
		if deadline > 0 && req.Proc.Now()+backoff > deadline {
			return s.exhaust(req, attempt, err)
		}
		if s.pol.OnRetry != nil {
			s.pol.OnRetry(req, attempt, err)
		}
		if req.Proc != nil && backoff > 0 {
			sleepStart := req.Proc.Now()
			req.Proc.Sleep(backoff)
			s.pol.Crit.Record(critpath.Edge{
				Track: req.Proc.Name(), Cause: critpath.RetryBackoff, Subsystem: "ioreq",
				Detail: "backoff", Start: sleepStart, End: req.Proc.Now(),
			})
		}
		backoff *= 2
		if s.pol.MaxBackoff > 0 && backoff > s.pol.MaxBackoff {
			backoff = s.pol.MaxBackoff
		}
		if err = next(req); err == nil || !s.pol.Retryable(err) {
			return err
		}
	}
}

// Flush implements Stage (nothing is buffered).
func (s *RetryStage) Flush(*vclock.Proc, func(*Request) error) error { return nil }

func (s *RetryStage) exhaust(req *Request, attempts int, err error) error {
	if s.pol.Exhausted != nil {
		return s.pol.Exhausted(req, attempts, err)
	}
	return fmt.Errorf("ioreq: retries exhausted after %d attempts: %w", attempts, err)
}

var _ Stage = (*RetryStage)(nil)
