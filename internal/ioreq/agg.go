package ioreq

import (
	"sort"
	"sync"
	"sync/atomic"

	"asyncio/internal/hdf5"
	"asyncio/internal/vclock"
)

// AggConfig parameterizes write aggregation — the property-list knob
// that enables it. The zero value disables aggregation entirely.
type AggConfig struct {
	// MaxRequests flushes a dataset's pending requests once this many
	// are buffered. Set it to the writer count for one coalesced
	// dispatch per collective write (two-phase collective buffering).
	MaxRequests int
	// MaxBytes flushes once a dataset's buffered payload reaches this
	// many bytes (0 = no byte trigger).
	MaxBytes int64
}

// Enabled reports whether any trigger is configured.
func (c AggConfig) Enabled() bool { return c.MaxRequests > 0 || c.MaxBytes > 0 }

// AggStats counts an AggStage's traffic.
type AggStats struct {
	// Buffered is how many requests entered a pending chain.
	Buffered int64
	// Dispatched is how many requests left the stage downstream
	// (merged requests count once).
	Dispatched int64
	// Absorbed is how many buffered requests were folded into a merged
	// neighbor instead of dispatching on their own.
	Absorbed int64
	// Passthrough is how many ineligible requests were forwarded
	// unchanged (reads, multi-run selections, N-D datasets).
	Passthrough int64
}

// AggStage coalesces adjacent same-dataset writes into single dispatches
// — the two-phase-style collective buffering that lifts the parallel
// file system's small-request penalty (the VPIC-IO regime where every
// rank writes a thin adjacent slab of the same 1-D dataset).
//
// Eligible requests (1-D writes whose selection is a single contiguous
// run) are buffered per (dataset, op). When a chain reaches the
// configured window it is sorted by file offset, adjacent runs are
// merged into one request (concatenating buffers for materialized
// writes), and the results continue down the pipeline charged to the
// triggering request's process. Pipeline.Flush dispatches partial
// chains, charged to the flushing process.
//
// Semantics callers must accept when enabling aggregation:
//
//   - A buffered write is not durable (or even charged) until its chain
//     flushes; Pipeline.Flush on epoch/file boundaries bounds the delay.
//   - The caller's buffer is retained until dispatch (asyncvol's
//     staging stage copies first, so this only constrains direct users).
//   - Merged requests assume writers cover disjoint ranges, as
//     collective I/O patterns do; overlapping writes are dispatched
//     unmerged but in file order, not program order.
type AggStage struct {
	cfg AggConfig

	mu      sync.Mutex
	pending map[aggKey]*aggChain
	seq     int64 // stamps chains with creation order for Flush

	buffered    atomic.Int64
	dispatched  atomic.Int64
	absorbed    atomic.Int64
	passthrough atomic.Int64
}

type aggKey struct {
	uid any
	op  Op
}

type aggChain struct {
	reqs  []*Request
	bytes int64
	seq   int64
}

// NewAgg returns an aggregation stage. A disabled config yields a stage
// that passes everything through.
func NewAgg(cfg AggConfig) *AggStage {
	return &AggStage{cfg: cfg, pending: make(map[aggKey]*aggChain)}
}

// Name implements Stage.
func (a *AggStage) Name() string { return "aggregate" }

// Stats returns the stage's counters.
func (a *AggStage) Stats() AggStats {
	return AggStats{
		Buffered:    a.buffered.Load(),
		Dispatched:  a.dispatched.Load(),
		Absorbed:    a.absorbed.Load(),
		Passthrough: a.passthrough.Load(),
	}
}

// eligible reports whether req can join an aggregation chain: a write
// of at least one byte to a 1-D dataset through a single contiguous
// run.
func (a *AggStage) eligible(req *Request) bool {
	if !a.cfg.Enabled() || !req.Op.IsWrite() || req.Dataset == nil {
		return false
	}
	if len(req.Dataset.Dims()) != 1 || req.Bytes() <= 0 {
		return false
	}
	_, contig := req.Contiguous()
	return contig
}

// Process implements Stage. Eligible requests are buffered and Process
// returns nil — completion of a buffered write is observable only after
// its chain flushes (window trigger, Pipeline.Flush, or file
// flush/close).
func (a *AggStage) Process(req *Request, next func(*Request) error) error {
	if !a.eligible(req) {
		a.passthrough.Add(1)
		return next(req)
	}
	// The request outlives this call; detach the selection from the
	// caller, who may legally reuse it after Write returns.
	if req.Space != nil {
		req.Space = req.Space.Copy()
	}
	a.buffered.Add(1)
	k := aggKey{uid: req.Dataset.UID(), op: req.Op}
	a.mu.Lock()
	ch := a.pending[k]
	if ch == nil {
		a.seq++
		ch = &aggChain{seq: a.seq}
		a.pending[k] = ch
	}
	ch.reqs = append(ch.reqs, req)
	ch.bytes += req.Bytes()
	full := (a.cfg.MaxRequests > 0 && len(ch.reqs) >= a.cfg.MaxRequests) ||
		(a.cfg.MaxBytes > 0 && ch.bytes >= a.cfg.MaxBytes)
	if full {
		delete(a.pending, k)
	}
	// Never dispatch under the lock: dispatch charges virtual time
	// (Proc.Sleep), and sleeping while holding a real mutex would wedge
	// every other rank's Process behind this one's transfer.
	a.mu.Unlock()
	if !full {
		return nil
	}
	return a.dispatch(ch, req.Proc, next)
}

// Flush implements Stage: every partial chain dispatches, charged to p.
func (a *AggStage) Flush(p *vclock.Proc, next func(*Request) error) error {
	a.mu.Lock()
	chains := make([]*aggChain, 0, len(a.pending))
	for k, ch := range a.pending {
		delete(a.pending, k)
		chains = append(chains, ch)
	}
	a.mu.Unlock()
	// Dispatch order is observable (each dispatch charges virtual time
	// to p); map order is not deterministic, chain creation order is.
	sort.Slice(chains, func(i, j int) bool { return chains[i].seq < chains[j].seq })
	var first error
	for _, ch := range chains {
		if err := a.dispatch(ch, p, next); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// dispatch sorts a chain by file offset, merges maximal groups of
// adjacent runs, and sends the results downstream charged to p.
func (a *AggStage) dispatch(ch *aggChain, p *vclock.Proc, next func(*Request) error) error {
	reqs := ch.reqs
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].run.Off < reqs[j].run.Off })
	var first error
	for i := 0; i < len(reqs); {
		j := i + 1
		for j < len(reqs) && reqs[j-1].run.Off+reqs[j-1].run.N == reqs[j].run.Off {
			j++
		}
		out := reqs[i]
		if j > i+1 {
			merged, err := a.merge(reqs[i:j], p)
			if err != nil {
				if first == nil {
					first = err
				}
				i = j
				continue
			}
			out = merged
		}
		out.Proc = p
		a.dispatched.Add(1)
		if err := next(out); err != nil && first == nil {
			first = err
		}
		i = j
	}
	return first
}

// merge folds a group of adjacent requests into one covering their
// combined range, concatenating buffers for materialized writes. The
// originals become the merged request's Sources, so connector context
// (event sets) survives; their spans each record the absorption.
func (a *AggStage) merge(group []*Request, p *vclock.Proc) (*Request, error) {
	first := group[0]
	start := first.run.Off
	var elems uint64
	var nbytes int64
	for _, r := range group {
		elems += r.run.N
		nbytes += r.Bytes()
	}
	sp, err := hdf5.NewSimple(first.Dataset.Dims()...)
	if err != nil {
		return nil, err
	}
	if err := sp.SelectHyperslab([]uint64{start}, nil, []uint64{1}, []uint64{elems}); err != nil {
		return nil, err
	}
	m := &Request{
		Op:       first.Op,
		Dataset:  first.Dataset,
		Space:    sp,
		Proc:     p,
		NBytes:   nbytes,
		Sources:  append([]*Request(nil), group...),
		resolved: true,
		contig:   true,
		run:      Run{Off: start, N: elems},
	}
	if first.Op == OpWrite {
		buf := make([]byte, 0, nbytes)
		for _, r := range group {
			buf = append(buf, r.Buf...)
		}
		m.Buf = buf
	}
	at := procNow(p)
	track := procName(p)
	for _, r := range group {
		if m.Span == nil {
			m.Span = r.Span
		}
		if r.Tag != nil && m.Tag == nil {
			m.Tag = r.Tag
		}
		r.Span.EventOn("ioreq:agg:absorbed", r.Bytes(), at, track)
	}
	m.Span.EventOn("ioreq:agg:merged", nbytes, at, track)
	a.absorbed.Add(int64(len(group) - 1))
	return m, nil
}

var _ Stage = (*AggStage)(nil)
