// Package trace defines the measurement records the evaluation collects:
// per-epoch phase timings and aggregate I/O rates, per-run summaries,
// and CSV export for offline model fitting (cmd/iomodel).
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"
)

// Mode identifies the I/O strategy of an epoch or run.
type Mode string

// The two I/O modes under evaluation.
const (
	Sync  Mode = "sync"
	Async Mode = "async"
)

// Record is one epoch's measurements.
type Record struct {
	Epoch int
	Mode  Mode
	Ranks int
	// Bytes is the aggregate data moved by the I/O phase across ranks.
	Bytes int64
	// IOTime is the blocking time of the I/O phase observed by the
	// application (max across ranks): full transfer time for sync,
	// staging/transactional time for async.
	IOTime time.Duration
	// CompTime is the computation phase duration.
	CompTime time.Duration
	// DrainTime is how long the epoch additionally waited for background
	// I/O that did not fit under the computation (async only).
	DrainTime time.Duration
}

// Rate returns the aggregate observed I/O rate in bytes/second — the
// "aggregate bandwidth" of the paper's plots: data volume over the
// blocking I/O time.
func (r Record) Rate() float64 {
	s := r.IOTime.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(r.Bytes) / s
}

// EpochTime returns the end-to-end epoch duration.
func (r Record) EpochTime() time.Duration {
	return r.IOTime + r.CompTime + r.DrainTime
}

// RunResult summarizes one application run.
type RunResult struct {
	System   string
	Workload string
	Mode     Mode
	Ranks    int
	Nodes    int
	Records  []Record
	// InitTime and TermTime bracket the epochs (Eq. 1's t_init and
	// t_term: connector setup, file create/open, drain and close).
	InitTime time.Duration
	TermTime time.Duration
}

// TotalTime is Eq. 1: init + Σ epochs + term.
func (rr *RunResult) TotalTime() time.Duration {
	total := rr.InitTime + rr.TermTime
	for _, r := range rr.Records {
		total += r.EpochTime()
	}
	return total
}

// PeakRate returns the maximum per-epoch aggregate rate — the paper
// reports "peak measured aggregate bandwidth for all I/O phases".
func (rr *RunResult) PeakRate() float64 {
	var peak float64
	for _, r := range rr.Records {
		if rate := r.Rate(); rate > peak {
			peak = rate
		}
	}
	return peak
}

// Rates returns every epoch's aggregate rate.
func (rr *RunResult) Rates() []float64 {
	out := make([]float64, len(rr.Records))
	for i, r := range rr.Records {
		out[i] = r.Rate()
	}
	return out
}

// TotalBytes returns the run's aggregate data volume.
func (rr *RunResult) TotalBytes() int64 {
	var n int64
	for _, r := range rr.Records {
		n += r.Bytes
	}
	return n
}

// csvHeader is the exported column set.
var csvHeader = []string{
	"epoch", "mode", "ranks", "bytes", "io_seconds", "comp_seconds",
	"drain_seconds", "rate_bytes_per_sec",
}

// WriteCSV exports records for offline analysis.
func WriteCSV(w io.Writer, records []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range records {
		row := []string{
			strconv.Itoa(r.Epoch),
			string(r.Mode),
			strconv.Itoa(r.Ranks),
			strconv.FormatInt(r.Bytes, 10),
			strconv.FormatFloat(r.IOTime.Seconds(), 'g', -1, 64),
			strconv.FormatFloat(r.CompTime.Seconds(), 'g', -1, 64),
			strconv.FormatFloat(r.DrainTime.Seconds(), 'g', -1, 64),
			strconv.FormatFloat(r.Rate(), 'g', -1, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses records previously written by WriteCSV.
func ReadCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	if len(rows[0]) != len(csvHeader) || rows[0][0] != csvHeader[0] {
		return nil, fmt.Errorf("trace: unexpected header %v", rows[0])
	}
	var out []Record
	for i, row := range rows[1:] {
		rec, err := parseRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: %w", i+1, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

func parseRow(row []string) (Record, error) {
	var r Record
	if len(row) != len(csvHeader) {
		return r, fmt.Errorf("want %d columns, got %d", len(csvHeader), len(row))
	}
	var err error
	if r.Epoch, err = strconv.Atoi(row[0]); err != nil {
		return r, err
	}
	r.Mode = Mode(row[1])
	if r.Mode != Sync && r.Mode != Async {
		return r, fmt.Errorf("unknown mode %q", row[1])
	}
	if r.Ranks, err = strconv.Atoi(row[2]); err != nil {
		return r, err
	}
	if r.Bytes, err = strconv.ParseInt(row[3], 10, 64); err != nil {
		return r, err
	}
	if r.Bytes < 0 {
		return r, fmt.Errorf("negative byte count %d", r.Bytes)
	}
	secs := make([]float64, 3)
	for i := 0; i < 3; i++ {
		if secs[i], err = strconv.ParseFloat(row[4+i], 64); err != nil {
			return r, err
		}
		if math.IsNaN(secs[i]) || math.IsInf(secs[i], 0) {
			return r, fmt.Errorf("column %s: non-finite duration %v", csvHeader[4+i], secs[i])
		}
		if secs[i] < 0 {
			return r, fmt.Errorf("column %s: negative duration %v", csvHeader[4+i], secs[i])
		}
		// Beyond ~292 years the nanosecond conversion overflows int64 and
		// the duration would come back negative.
		if secs[i] > float64(math.MaxInt64)/float64(time.Second) {
			return r, fmt.Errorf("column %s: duration %v overflows", csvHeader[4+i], secs[i])
		}
	}
	r.IOTime = time.Duration(secs[0] * float64(time.Second))
	r.CompTime = time.Duration(secs[1] * float64(time.Second))
	r.DrainTime = time.Duration(secs[2] * float64(time.Second))
	return r, nil
}
