package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// SpanEvent is one timestamped occurrence inside a Span. At is virtual
// time (the acting process's clock when the event happened); Dur is the
// virtual time the event covered (zero for instantaneous marks). Track
// names the execution context that recorded the event — conventionally
// the vclock process name ("rank3", "stream:asyncvol:rank3") — so
// exporters can place the same request's caller-side and
// background-side events on different timeline rows. Empty means
// "wherever the span lives".
type SpanEvent struct {
	Name  string
	Bytes int64
	At    time.Duration
	Dur   time.Duration
	Track string
}

// Span is a lightweight trace node for following one I/O request — or a
// whole epoch of them — across layers: the application rank that issued
// it, the connector that staged it, the background stream that executed
// it, and the file-system target that charged it.
//
// Spans form a tree (Child) and collect events (Event/EventDur). All
// methods are safe for concurrent use and safe on a nil receiver, so
// code paths can record unconditionally: untraced requests simply carry
// a nil span and every call is a no-op.
type Span struct {
	name string

	mu       sync.Mutex
	events   []SpanEvent
	children []*Span
}

// NewSpan returns an empty root span.
func NewSpan(name string) *Span { return &Span{name: name} }

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Child creates and attaches a sub-span. Returns nil when s is nil, so
// chains of untraced spans stay no-ops.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Event records an instantaneous event at virtual time at.
func (s *Span) Event(name string, bytes int64, at time.Duration) {
	s.EventDurOn(name, bytes, at, 0, "")
}

// EventDur records an event covering [at, at+dur) in virtual time.
func (s *Span) EventDur(name string, bytes int64, at, dur time.Duration) {
	s.EventDurOn(name, bytes, at, dur, "")
}

// EventOn records an instantaneous event attributed to track.
func (s *Span) EventOn(name string, bytes int64, at time.Duration, track string) {
	s.EventDurOn(name, bytes, at, 0, track)
}

// EventDurOn records an event covering [at, at+dur) attributed to track.
func (s *Span) EventDurOn(name string, bytes int64, at, dur time.Duration, track string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.events = append(s.events, SpanEvent{Name: name, Bytes: bytes, At: at, Dur: dur, Track: track})
	s.mu.Unlock()
}

// Events returns a copy of the span's own events (nil for a nil span).
func (s *Span) Events() []SpanEvent {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SpanEvent(nil), s.events...)
}

// Children returns a copy of the attached sub-spans.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Find returns the first event with the given name in this span or any
// descendant, depth-first.
func (s *Span) Find(name string) (SpanEvent, bool) {
	if s == nil {
		return SpanEvent{}, false
	}
	for _, ev := range s.Events() {
		if ev.Name == name {
			return ev, true
		}
	}
	for _, c := range s.Children() {
		if ev, ok := c.Find(name); ok {
			return ev, true
		}
	}
	return SpanEvent{}, false
}

// String renders the span tree, one node or event per line.
func (s *Span) String() string {
	if s == nil {
		return "<nil span>"
	}
	var b strings.Builder
	s.render(&b, 0)
	return b.String()
}

func (s *Span) render(b *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%s%s\n", indent, s.name)
	// Concurrent recorders (issuing rank vs. background stream) append
	// in nondeterministic order; render in virtual-time order, breaking
	// ties by name so equal-time events are stable too.
	events := s.Events()
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		return events[i].Name < events[j].Name
	})
	for _, ev := range events {
		fmt.Fprintf(b, "%s  @%v", indent, ev.At)
		if ev.Dur > 0 {
			fmt.Fprintf(b, "+%v", ev.Dur)
		}
		fmt.Fprintf(b, " %s", ev.Name)
		if ev.Bytes > 0 {
			fmt.Fprintf(b, " (%d B)", ev.Bytes)
		}
		b.WriteByte('\n')
	}
	for _, c := range s.Children() {
		c.render(b, depth+1)
	}
}
