package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func sampleRecords() []Record {
	return []Record{
		{Epoch: 0, Mode: Sync, Ranks: 64, Bytes: 1 << 30, IOTime: 2 * time.Second, CompTime: 30 * time.Second},
		{Epoch: 1, Mode: Async, Ranks: 64, Bytes: 1 << 30, IOTime: 250 * time.Millisecond, CompTime: 30 * time.Second, DrainTime: time.Second},
	}
}

func TestRecordRate(t *testing.T) {
	r := Record{Bytes: 100, IOTime: 2 * time.Second}
	if got := r.Rate(); got != 50 {
		t.Fatalf("Rate = %v, want 50", got)
	}
	if (Record{Bytes: 100}).Rate() != 0 {
		t.Fatal("zero IOTime must give zero rate")
	}
}

func TestEpochTime(t *testing.T) {
	r := sampleRecords()[1]
	want := 250*time.Millisecond + 30*time.Second + time.Second
	if r.EpochTime() != want {
		t.Fatalf("EpochTime = %v, want %v", r.EpochTime(), want)
	}
}

func TestRunResultAggregates(t *testing.T) {
	rr := RunResult{
		Records:  sampleRecords(),
		InitTime: 3 * time.Second,
		TermTime: time.Second,
	}
	wantTotal := 3*time.Second + time.Second +
		(2*time.Second + 30*time.Second) +
		(250*time.Millisecond + 30*time.Second + time.Second)
	if rr.TotalTime() != wantTotal {
		t.Fatalf("TotalTime = %v, want %v", rr.TotalTime(), wantTotal)
	}
	// Peak rate: async epoch at 1 GiB / 0.25s.
	wantPeak := float64(1<<30) / 0.25
	if got := rr.PeakRate(); got != wantPeak {
		t.Fatalf("PeakRate = %v, want %v", got, wantPeak)
	}
	if got := rr.TotalBytes(); got != 2<<30 {
		t.Fatalf("TotalBytes = %d", got)
	}
	if rates := rr.Rates(); len(rates) != 2 || rates[0] >= rates[1] {
		t.Fatalf("Rates = %v", rates)
	}
}

func TestCSVRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	recs := sampleRecords()
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("len = %d, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Error("bad header accepted")
	}
	bad := "epoch,mode,ranks,bytes,io_seconds,comp_seconds,drain_seconds,rate_bytes_per_sec\n" +
		"0,warp,4,100,1,1,0,100\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Error("unknown mode accepted")
	}
	bad2 := "epoch,mode,ranks,bytes,io_seconds,comp_seconds,drain_seconds,rate_bytes_per_sec\n" +
		"x,sync,4,100,1,1,0,100\n"
	if _, err := ReadCSV(strings.NewReader(bad2)); err == nil {
		t.Error("non-numeric epoch accepted")
	}
}
