package trace

import (
	"bytes"
	"testing"
)

// FuzzReadCSV asserts the trace CSV parser never panics and that any
// input it accepts survives an export/re-import round trip: records that
// parsed once must serialize to a CSV that parses again to the same
// number of records. (The overflow guard in parseRow exists because this
// harness found durations large enough to wrap time.Duration negative,
// which made WriteCSV output unreadable.)
func FuzzReadCSV(f *testing.F) {
	var valid bytes.Buffer
	_ = WriteCSV(&valid, []Record{
		{Epoch: 0, Mode: Sync, Ranks: 6, Bytes: 1 << 20, IOTime: 1e9, CompTime: 3e10},
		{Epoch: 1, Mode: Async, Ranks: 6, Bytes: 1 << 20, IOTime: 5e7, CompTime: 3e10, DrainTime: 2e8},
	})
	seeds := [][]byte{
		valid.Bytes(),
		[]byte("epoch,mode,ranks,bytes,io_seconds,comp_seconds,drain_seconds,rate_bytes_per_sec\n"),
		[]byte("epoch,mode,ranks,bytes,io_seconds,comp_seconds,drain_seconds,rate_bytes_per_sec\n0,sync,1,8,0.5,1,0,16\n"),
		[]byte("epoch,mode,ranks,bytes,io_seconds,comp_seconds,drain_seconds,rate_bytes_per_sec\n0,walk,1,8,0.5,1,0,16\n"),
		[]byte("epoch,mode,ranks,bytes,io_seconds,comp_seconds,drain_seconds,rate_bytes_per_sec\n0,sync,1,8,1e300,1,0,16\n"),
		[]byte(""),
		[]byte("not,a,trace\n1,2,3\n"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, recs); err != nil {
			t.Fatalf("exporting %d accepted records: %v", len(recs), err)
		}
		again, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-importing exported records: %v\nexport:\n%s", err, buf.Bytes())
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count: %d → %d", len(recs), len(again))
		}
	})
}
