package trace

import (
	"strings"
	"testing"
	"time"
)

func TestSpanRenderSortsEventsByTime(t *testing.T) {
	sp := NewSpan("root")
	// Appended out of order, as concurrent recorders would.
	sp.EventDur("late", 0, 3*time.Second, time.Second)
	sp.Event("early", 10, 1*time.Second)
	sp.Event("middle", 0, 2*time.Second)
	out := sp.String()
	early := strings.Index(out, "early")
	middle := strings.Index(out, "middle")
	late := strings.Index(out, "late")
	if early < 0 || middle < 0 || late < 0 {
		t.Fatalf("missing events:\n%s", out)
	}
	if !(early < middle && middle < late) {
		t.Fatalf("events not in time order:\n%s", out)
	}
}

func TestSpanRenderBreaksTiesByName(t *testing.T) {
	mk := func(order []string) string {
		sp := NewSpan("root")
		for _, name := range order {
			sp.Event(name, 0, time.Second)
		}
		return sp.String()
	}
	a := mk([]string{"b", "a", "c"})
	b := mk([]string{"c", "b", "a"})
	if a != b {
		t.Fatalf("same-time events rendered order-dependently:\n%s\nvs\n%s", a, b)
	}
	if ia, ib := strings.Index(a, " a"), strings.Index(a, " b"); ia > ib {
		t.Fatalf("ties not broken by name:\n%s", a)
	}
}

func TestSpanEventTracks(t *testing.T) {
	sp := NewSpan("rank0")
	sp.EventOn("staged", 4, time.Second, "rank0")
	sp.EventDurOn("transfer", 4, 2*time.Second, time.Second, "stream:asyncvol:rank0")
	sp.Event("plain", 0, 3*time.Second)
	evs := sp.Events()
	if evs[0].Track != "rank0" || evs[1].Track != "stream:asyncvol:rank0" || evs[2].Track != "" {
		t.Fatalf("tracks = %q, %q, %q", evs[0].Track, evs[1].Track, evs[2].Track)
	}
	if evs[1].Dur != time.Second {
		t.Fatalf("dur = %v", evs[1].Dur)
	}
}

const testHeader = "epoch,mode,ranks,bytes,io_seconds,comp_seconds,drain_seconds,rate_bytes_per_sec\n"

func TestReadCSVRejectsNonFiniteAndNegative(t *testing.T) {
	cases := map[string]string{
		"NaN io_seconds":         "0,sync,4,100,NaN,1,0,100\n",
		"+Inf io_seconds":        "0,sync,4,100,+Inf,1,0,100\n",
		"-Inf comp_seconds":      "0,sync,4,100,1,-Inf,0,100\n",
		"NaN drain_seconds":      "0,async,4,100,1,1,NaN,100\n",
		"negative io_seconds":    "0,sync,4,100,-1,1,0,100\n",
		"negative comp_seconds":  "0,sync,4,100,1,-2,0,100\n",
		"negative drain_seconds": "0,async,4,100,1,1,-0.5,100\n",
		"negative bytes":         "0,sync,4,-100,1,1,0,100\n",
	}
	for name, row := range cases {
		if _, err := ReadCSV(strings.NewReader(testHeader + row)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// A well-formed row must still parse.
	if _, err := ReadCSV(strings.NewReader(testHeader + "0,sync,4,100,1,1,0,100\n")); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
}
