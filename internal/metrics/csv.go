package metrics

import (
	"fmt"
	"io"
	"strconv"
)

// WriteCSV renders the registry deterministically: header, then metrics
// sorted by name. Counters and gauges emit one "sample" row per series
// change point followed by a "final" row with the end-of-run value;
// gauges add a time-weighted summary ("tw_mean", "tw_max" over the full
// run, maintained even when series recording is off); histograms emit
// their summary statistics including p50/p95/p99. label tags every row
// so CSVs from several runs can be concatenated (cmd/asyncio-bench does
// this per experiment point).
//
// Schema: label,metric,kind,stat,at_seconds,value
func (r *Registry) WriteCSV(w io.Writer, label string) error {
	if _, err := fmt.Fprintln(w, "label,metric,kind,stat,at_seconds,value"); err != nil {
		return err
	}
	if r == nil {
		return nil
	}
	row := func(metric string, kind Kind, stat string, atSec, v float64) error {
		_, err := fmt.Fprintf(w, "%s,%s,%s,%s,%s,%s\n",
			label, metric, kind, stat,
			strconv.FormatFloat(atSec, 'g', -1, 64),
			strconv.FormatFloat(v, 'g', -1, 64))
		return err
	}
	final := r.now().Seconds()
	for _, name := range r.Names() {
		r.mu.Lock()
		c, g, h := r.counts[name], r.gauges[name], r.hists[name]
		r.mu.Unlock()
		switch {
		case c != nil:
			for _, s := range c.Series() {
				if err := row(name, KindCounter, "sample", s.At.Seconds(), s.V); err != nil {
					return err
				}
			}
			if err := row(name, KindCounter, "final", final, float64(c.Value())); err != nil {
				return err
			}
		case g != nil:
			for _, s := range g.Series() {
				if err := row(name, KindGauge, "sample", s.At.Seconds(), s.V); err != nil {
					return err
				}
			}
			if err := row(name, KindGauge, "final", final, g.Value()); err != nil {
				return err
			}
			mean, max := g.TimeWeightedStats(r.now())
			if err := row(name, KindGauge, "tw_mean", final, mean); err != nil {
				return err
			}
			if err := row(name, KindGauge, "tw_max", final, max); err != nil {
				return err
			}
		case h != nil:
			snap := h.Snapshot()
			stats := []struct {
				stat string
				v    float64
			}{
				{"count", float64(snap.Count)},
				{"min", snap.Min},
				{"max", snap.Max},
				{"mean", snap.Mean},
				{"p50", snap.P50},
				{"p95", snap.P95},
				{"p99", snap.P99},
			}
			for _, s := range stats {
				if err := row(name, KindHistogram, s.stat, final, s.v); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
