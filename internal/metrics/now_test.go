package metrics

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestRegistryWithNow pins the wall-time registry variant the campaign
// service self-instruments with: observations are stamped by the
// injected time source instead of a virtual clock, and the CSV export
// works without any simulation attached.
func TestRegistryWithNow(t *testing.T) {
	var now time.Duration
	r := NewRegistryWithNow(func() time.Duration { return now })
	r.EnableSeries()

	g := r.Gauge("queue.depth")
	now = 5 * time.Second
	g.Set(3)
	now = 9 * time.Second
	g.Set(1)

	if got := r.Now(); got != 9*time.Second {
		t.Errorf("Now() = %v, want 9s", got)
	}
	series := g.Series()
	if len(series) != 2 {
		t.Fatalf("series has %d points, want 2", len(series))
	}
	if series[0].At != 5*time.Second || series[1].At != 9*time.Second {
		t.Errorf("series timestamps %v, %v: want 5s, 9s", series[0].At, series[1].At)
	}

	var buf bytes.Buffer
	if err := r.WriteCSV(&buf, "svc"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "queue.depth") {
		t.Errorf("CSV export missing gauge:\n%s", buf.String())
	}
}
