// Package metrics is the simulator's observability substrate: a registry
// of counters, gauges, and histograms whose observations are timestamped
// on the **virtual clock**, so a time series of background-queue depth or
// file-system utilization is meaningful even though a 12,288-rank run
// completes in milliseconds of wall time.
//
// Instruments record change points rather than being polled: every
// update appends (virtual time, value) to the instrument's series (when
// series recording is enabled), which is exactly the step function a
// counter track in a trace viewer wants. Updates from processes that are
// concurrent at the same virtual instant coalesce to one point holding
// the instant's final value, keeping exports deterministic regardless of
// goroutine scheduling.
//
// All instrument methods are safe on a nil receiver and a nil *Registry
// returns nil instruments, so instrumented code records unconditionally
// — an uninstrumented subsystem pays only a nil check (the same pattern
// trace.Span uses).
//
// Determinism rules for writers (enforced by convention, asserted by the
// observability tests):
//
//   - Counter.Add and Gauge.Add are order-independent, so any number of
//     same-instant concurrent writers stay deterministic as long as Gauge
//     deltas are integral (float64 sums of integers are exact).
//   - Gauge.Set must have a single writer per instant (setup-time
//     configuration, or an OnChange hook of another gauge, which runs
//     under that gauge's update lock).
//   - Histogram statistics are computed from value-sorted samples, so
//     observation order never matters.
package metrics

import (
	"math"
	"sort"
	"sync"
	"time"

	"asyncio/internal/vclock"
)

// Kind identifies an instrument type.
type Kind string

// Instrument kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Sample is one point of an instrument's virtual-time series.
type Sample struct {
	At time.Duration
	V  float64
}

// Registry holds one simulation's instruments, keyed by name. Construct
// with NewRegistry; the zero value and nil are usable as "no metrics".
type Registry struct {
	clk *vclock.Clock
	// nowFn, when non-nil, replaces clk as the time source. Services
	// that live on the wall clock rather than a simulation's virtual
	// clock (cmd/asyncio-serve instruments itself with a registry)
	// construct with NewRegistryWithNow.
	nowFn func() time.Duration

	mu     sync.Mutex
	series bool
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// seriesDefault is consulted by NewRegistry. Tools that cannot reach a
// registry before the run constructs it (cmd/asyncio-bench builds
// systems deep inside experiment sweeps) flip it with SetSeriesDefault.
var (
	seriesDefaultMu sync.Mutex
	seriesDefault   bool
)

// SetSeriesDefault makes registries created afterwards record series by
// default. Returns the previous default.
func SetSeriesDefault(enabled bool) bool {
	seriesDefaultMu.Lock()
	defer seriesDefaultMu.Unlock()
	prev := seriesDefault
	seriesDefault = enabled
	return prev
}

// NewRegistry returns an empty registry stamping observations with clk's
// virtual time. Series recording starts at the package default (see
// SetSeriesDefault); current values and histogram samples are always
// kept.
func NewRegistry(clk *vclock.Clock) *Registry {
	seriesDefaultMu.Lock()
	series := seriesDefault
	seriesDefaultMu.Unlock()
	return &Registry{
		clk:    clk,
		series: series,
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// EnableSeries turns on change-point series recording for counters and
// gauges. Call before the run starts; points are only captured from then
// on.
func (r *Registry) EnableSeries() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.series = true
	r.mu.Unlock()
}

// SeriesEnabled reports whether change-point series are being recorded.
func (r *Registry) SeriesEnabled() bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.series
}

// NewRegistryWithNow returns a registry stamping observations with the
// given time source instead of a virtual clock — for long-running
// services that instrument themselves with the same counter/gauge/
// histogram substrate the simulator uses, but live on wall time.
// Typical use: a monotonic offset since process start, so exports stay
// meaningful without depending on absolute dates.
func NewRegistryWithNow(now func() time.Duration) *Registry {
	r := NewRegistry(nil)
	r.nowFn = now
	return r
}

// now returns the registry's virtual time (0 for a nil registry).
func (r *Registry) now() time.Duration {
	if r == nil {
		return 0
	}
	if r.nowFn != nil {
		return r.nowFn()
	}
	if r.clk == nil {
		return 0
	}
	return r.clk.Now()
}

// Now exposes the registry's virtual time to exporters that need an
// end-of-run timestamp (0 for a nil registry).
func (r *Registry) Now() time.Duration { return r.now() }

// Counter returns (creating if needed) the named monotonically
// increasing counter. Nil registry returns nil — a no-op instrument.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counts[name]
	if c == nil {
		c = &Counter{reg: r, name: name}
		r.counts[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{reg: r, name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{reg: r, name: name}
		r.hists[name] = h
	}
	return h
}

// FindCounter returns the named counter, or nil if none is registered.
// Unlike Counter it never creates, so exporters can probe without
// polluting the registry.
func (r *Registry) FindCounter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[name]
}

// FindGauge returns the named gauge, or nil if none is registered.
func (r *Registry) FindGauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// FindHistogram returns the named histogram, or nil if none is
// registered.
func (r *Registry) FindHistogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hists[name]
}

// Names returns all registered instrument names, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.counts)+len(r.gauges)+len(r.hists))
	for n := range r.counts {
		out = append(out, n)
	}
	for n := range r.gauges {
		out = append(out, n)
	}
	for n := range r.hists {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// series is the shared change-point recording behind counters and
// gauges. Callers hold the owning instrument's mutex.
type series struct {
	points []Sample
}

// record appends (at, v), coalescing same-instant updates to the
// instant's final value.
func (s *series) record(at time.Duration, v float64) {
	if n := len(s.points); n > 0 && s.points[n-1].At == at {
		s.points[n-1].V = v
		return
	}
	s.points = append(s.points, Sample{At: at, V: v})
}

// Counter is a monotonically increasing int64.
type Counter struct {
	reg  *Registry
	name string

	mu  sync.Mutex
	v   int64
	ser series
}

// Name returns the counter's registered name ("" for nil).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Add increments the counter by n (n < 0 is ignored — counters are
// monotone). No-op on nil.
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	at := c.reg.now()
	recording := c.reg.SeriesEnabled()
	c.mu.Lock()
	c.v += n
	if recording {
		c.ser.record(at, float64(c.v))
	}
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Series returns a copy of the recorded change points.
func (c *Counter) Series() []Sample {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Sample(nil), c.ser.points...)
}

// Gauge is a value that can go up and down. See the package comment for
// the determinism contract on Add vs Set.
type Gauge struct {
	reg  *Registry
	name string

	mu       sync.Mutex
	v        float64
	ser      series
	onChange func(at time.Duration, v float64)

	// Time-weighted accumulators, maintained on every update regardless
	// of series recording. area integrates the step function up to
	// lastAt; maxHeld tracks the largest value that persisted for a
	// nonzero interval (same-instant intermediates are never observed,
	// keeping concurrent same-instant Adds order-independent).
	area    float64
	lastAt  time.Duration
	maxHeld float64
}

// Name returns the gauge's registered name ("" for nil).
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// OnChange registers fn to run after every update, under the gauge's
// update lock with the post-update value. Use it to maintain a gauge
// derived from this one (e.g. effective bandwidth from an in-flight
// count): because the hook runs in value-update order, the derived
// series coalesces deterministically. fn must not touch g itself.
func (g *Gauge) OnChange(fn func(at time.Duration, v float64)) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.onChange = fn
	g.mu.Unlock()
}

// Add shifts the gauge by d. Concurrent same-instant adds must use
// integral deltas to stay deterministic. No-op on nil.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.update(func(v float64) float64 { return v + d })
}

// Set replaces the gauge's value. Single writer per instant.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.update(func(float64) float64 { return v })
}

func (g *Gauge) update(f func(float64) float64) {
	at := g.reg.now()
	recording := g.reg.SeriesEnabled()
	g.mu.Lock()
	if at > g.lastAt {
		g.area += g.v * (at - g.lastAt).Seconds()
		if g.v > g.maxHeld {
			g.maxHeld = g.v
		}
		g.lastAt = at
	}
	g.v = f(g.v)
	if recording {
		g.ser.record(at, g.v)
	}
	hook := g.onChange
	v := g.v
	if hook != nil {
		// Run under g.mu so derived updates happen in this gauge's
		// value order; the hook updates a *different* gauge, so the
		// nested lock is ordered and cannot cycle.
		hook(at, v)
	}
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// TimeWeightedStats summarizes the gauge's step function over [0, end]:
// the time-weighted mean, and the maximum value the gauge held for a
// nonzero interval (including the current value, which holds through
// end). end at or before the last update extends the horizon to the
// last update instead, and a zero horizon returns the current value as
// its own mean.
func (g *Gauge) TimeWeightedStats(end time.Duration) (mean, max float64) {
	if g == nil {
		return 0, 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	max = g.maxHeld
	if g.v > max {
		max = g.v
	}
	area, horizon := g.area, g.lastAt
	if end > horizon {
		area += g.v * (end - horizon).Seconds()
		horizon = end
	}
	if horizon <= 0 {
		return g.v, max
	}
	return area / horizon.Seconds(), max
}

// Series returns a copy of the recorded change points.
func (g *Gauge) Series() []Sample {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]Sample(nil), g.ser.points...)
}

// Histogram collects float64 observations and answers order-independent
// summary statistics. Samples are retained exactly; the workloads this
// simulator runs observe at most a few million points per run.
type Histogram struct {
	reg  *Registry
	name string

	mu      sync.Mutex
	samples []float64
}

// Name returns the histogram's registered name ("" for nil).
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Observe records one value. NaN observations are dropped — they would
// poison every statistic. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	h.samples = append(h.samples, v)
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// HistSnapshot is an order-independent summary of a histogram.
type HistSnapshot struct {
	Count          int
	Min, Max, Mean float64
	P50, P95, P99  float64
}

// Snapshot computes the summary from value-sorted samples. An empty
// histogram snapshots to all zeros; a single sample is every quantile.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	h.mu.Lock()
	sorted := append([]float64(nil), h.samples...)
	h.mu.Unlock()
	if len(sorted) == 0 {
		return HistSnapshot{}
	}
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return HistSnapshot{
		Count: len(sorted),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		Mean:  sum / float64(len(sorted)),
		P50:   Quantile(sorted, 0.50),
		P95:   Quantile(sorted, 0.95),
		P99:   Quantile(sorted, 0.99),
	}
}

// Quantile returns the nearest-rank quantile of an already-sorted,
// non-empty sample set: the smallest value such that at least q of the
// mass is at or below it. q outside [0,1] is clamped; an empty slice
// returns 0.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}
