package metrics

import (
	"bytes"
	"math"
	"testing"
	"time"

	"asyncio/internal/vclock"
)

func TestQuantileEdgeCases(t *testing.T) {
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	one := []float64{7}
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if got := Quantile(one, q); got != 7 {
			t.Fatalf("single-sample q=%v = %v, want 7", q, got)
		}
	}
	// Nearest rank on a known set: rank = ceil(q*n).
	s := []float64{1, 2, 3, 4}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.25, 1}, {0.26, 2}, {0.5, 2}, {0.51, 3},
		{0.75, 3}, {0.76, 4}, {1, 4}, {-0.5, 1}, {1.5, 4},
	}
	for _, c := range cases {
		if got := Quantile(s, c.q); got != c.want {
			t.Errorf("q=%v = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestHistogramSnapshotEmptyAndSingle(t *testing.T) {
	r := NewRegistry(vclock.New())
	h := r.Histogram("h")
	if snap := h.Snapshot(); snap != (HistSnapshot{}) {
		t.Fatalf("empty snapshot = %+v, want zero", snap)
	}
	h.Observe(3.5)
	snap := h.Snapshot()
	want := HistSnapshot{Count: 1, Min: 3.5, Max: 3.5, Mean: 3.5, P50: 3.5, P95: 3.5, P99: 3.5}
	if snap != want {
		t.Fatalf("single-sample snapshot = %+v, want %+v", snap, want)
	}
}

func TestHistogramDropsNaNAndIsOrderIndependent(t *testing.T) {
	r := NewRegistry(vclock.New())
	a, b := r.Histogram("a"), r.Histogram("b")
	vals := []float64{5, 1, 3, 2, 4}
	for _, v := range vals {
		a.Observe(v)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		b.Observe(vals[i])
	}
	b.Observe(math.NaN())
	if a.Count() != 5 || b.Count() != 5 {
		t.Fatalf("counts = %d, %d (NaN must be dropped)", a.Count(), b.Count())
	}
	if a.Snapshot() != b.Snapshot() {
		t.Fatalf("order changed snapshot: %+v vs %+v", a.Snapshot(), b.Snapshot())
	}
	if s := a.Snapshot(); s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestCounterMonotone(t *testing.T) {
	r := NewRegistry(vclock.New())
	c := r.Counter("c")
	c.Add(3)
	c.Add(-5) // ignored: counters are monotone
	c.Add(0)  // ignored
	c.Add(2)
	if c.Value() != 5 {
		t.Fatalf("value = %d, want 5", c.Value())
	}
}

func TestSeriesRecordsChangePointsOnVirtualClock(t *testing.T) {
	clk := vclock.New()
	r := NewRegistry(clk)
	r.EnableSeries()
	c := r.Counter("ops")
	g := r.Gauge("depth")
	clk.Go("p", func(p *vclock.Proc) {
		c.Add(1)
		g.Add(1)
		p.Sleep(time.Second)
		c.Add(1)
		g.Add(1)
		p.Sleep(time.Second)
		g.Add(-2)
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	wantC := []Sample{{0, 1}, {time.Second, 2}}
	if got := c.Series(); len(got) != 2 || got[0] != wantC[0] || got[1] != wantC[1] {
		t.Fatalf("counter series = %v, want %v", got, wantC)
	}
	wantG := []Sample{{0, 1}, {time.Second, 2}, {2 * time.Second, 0}}
	got := g.Series()
	if len(got) != 3 {
		t.Fatalf("gauge series = %v, want %v", got, wantG)
	}
	for i := range wantG {
		if got[i] != wantG[i] {
			t.Fatalf("gauge series[%d] = %v, want %v", i, got[i], wantG[i])
		}
	}
}

func TestSeriesCoalescesSameInstant(t *testing.T) {
	clk := vclock.New()
	r := NewRegistry(clk)
	r.EnableSeries()
	g := r.Gauge("g")
	clk.Go("p", func(p *vclock.Proc) {
		// Three updates at one virtual instant must collapse to one
		// point holding the instant's final value.
		g.Add(1)
		g.Add(1)
		g.Add(-2)
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	got := g.Series()
	if len(got) != 1 || got[0] != (Sample{0, 0}) {
		t.Fatalf("series = %v, want [{0 0}]", got)
	}
}

func TestSeriesDisabledByDefault(t *testing.T) {
	r := NewRegistry(vclock.New())
	if r.SeriesEnabled() {
		t.Fatal("series enabled without EnableSeries")
	}
	c := r.Counter("c")
	c.Add(1)
	if len(c.Series()) != 0 {
		t.Fatalf("series recorded while disabled: %v", c.Series())
	}
	if c.Value() != 1 {
		t.Fatal("value must be kept even with series off")
	}
}

func TestSetSeriesDefault(t *testing.T) {
	prev := SetSeriesDefault(true)
	defer SetSeriesDefault(prev)
	if !NewRegistry(vclock.New()).SeriesEnabled() {
		t.Fatal("SetSeriesDefault(true) did not enable series on new registries")
	}
	SetSeriesDefault(false)
	if NewRegistry(vclock.New()).SeriesEnabled() {
		t.Fatal("SetSeriesDefault(false) left series enabled")
	}
}

func TestGaugeOnChangeDerivesSecondGauge(t *testing.T) {
	clk := vclock.New()
	r := NewRegistry(clk)
	r.EnableSeries()
	src := r.Gauge("src")
	derived := r.Gauge("derived")
	src.OnChange(func(at time.Duration, v float64) { derived.Set(v * 10) })
	src.Add(2)
	src.Add(1)
	if derived.Value() != 30 {
		t.Fatalf("derived = %v, want 30", derived.Value())
	}
	got := derived.Series()
	if len(got) != 1 || got[0].V != 30 {
		t.Fatalf("derived series = %v, want one point at 30", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c, g, h := r.Counter("c"), r.Gauge("g"), r.Histogram("h")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must return nil instruments")
	}
	// Every method must be a no-op, not a panic.
	c.Add(1)
	g.Add(1)
	g.Set(2)
	g.OnChange(func(time.Duration, float64) {})
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if c.Series() != nil || g.Series() != nil {
		t.Fatal("nil instruments must have nil series")
	}
	if h.Snapshot() != (HistSnapshot{}) || c.Name() != "" || g.Name() != "" || h.Name() != "" {
		t.Fatal("nil instrument accessors must return zero values")
	}
	r.EnableSeries()
	if r.SeriesEnabled() || r.Names() != nil {
		t.Fatal("nil registry accessors must return zero values")
	}
	if r.FindCounter("c") != nil || r.FindGauge("g") != nil || r.FindHistogram("h") != nil {
		t.Fatal("nil registry Find must return nil")
	}
}

func TestFindDoesNotCreate(t *testing.T) {
	r := NewRegistry(vclock.New())
	if r.FindCounter("x") != nil || r.FindGauge("x") != nil || r.FindHistogram("x") != nil {
		t.Fatal("Find created or found a non-existent instrument")
	}
	if len(r.Names()) != 0 {
		t.Fatalf("Find polluted the registry: %v", r.Names())
	}
	c := r.Counter("x")
	if r.FindCounter("x") != c {
		t.Fatal("FindCounter did not return the registered instrument")
	}
}

// populate drives one deterministic update sequence against r.
func populate(t *testing.T, r *Registry) {
	t.Helper()
	clk := vclock.New()
	*r = *NewRegistry(clk)
	r.EnableSeries()
	clk.Go("p", func(p *vclock.Proc) {
		r.Counter("z.ops").Add(2)
		r.Gauge("a.depth").Add(3)
		p.Sleep(500 * time.Millisecond)
		r.Gauge("a.depth").Add(-3)
		r.Histogram("m.wait").Observe(0.25)
		r.Histogram("m.wait").Observe(0.75)
		p.Sleep(time.Second)
		r.Counter("z.ops").Add(1)
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCSVDeterministicAndSorted(t *testing.T) {
	var r1, r2 Registry
	populate(t, &r1)
	populate(t, &r2)
	var b1, b2 bytes.Buffer
	if err := r1.WriteCSV(&b1, "lbl"); err != nil {
		t.Fatal(err)
	}
	if err := r2.WriteCSV(&b2, "lbl"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("two identical runs rendered differently:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	out := b1.String()
	want := "label,metric,kind,stat,at_seconds,value\n" +
		"lbl,a.depth,gauge,sample,0,3\n" +
		"lbl,a.depth,gauge,sample,0.5,0\n" +
		"lbl,a.depth,gauge,final,1.5,0\n" +
		"lbl,a.depth,gauge,tw_mean,1.5,1\n" +
		"lbl,a.depth,gauge,tw_max,1.5,3\n" +
		"lbl,m.wait,histogram,count,1.5,2\n" +
		"lbl,m.wait,histogram,min,1.5,0.25\n" +
		"lbl,m.wait,histogram,max,1.5,0.75\n" +
		"lbl,m.wait,histogram,mean,1.5,0.5\n" +
		"lbl,m.wait,histogram,p50,1.5,0.25\n" +
		"lbl,m.wait,histogram,p95,1.5,0.75\n" +
		"lbl,m.wait,histogram,p99,1.5,0.75\n" +
		"lbl,z.ops,counter,sample,0,2\n" +
		"lbl,z.ops,counter,sample,1.5,3\n" +
		"lbl,z.ops,counter,final,1.5,3\n"
	if out != want {
		t.Fatalf("CSV =\n%s\nwant\n%s", out, want)
	}
}

func TestWriteCSVNilRegistry(t *testing.T) {
	var buf bytes.Buffer
	var r *Registry
	if err := r.WriteCSV(&buf, "x"); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "label,metric,kind,stat,at_seconds,value\n" {
		t.Fatalf("nil registry CSV = %q", buf.String())
	}
}

func TestGaugeTimeWeightedStats(t *testing.T) {
	clk := vclock.New()
	r := NewRegistry(clk) // series recording off: stats must still work
	g := r.Gauge("depth")
	clk.Go("p", func(p *vclock.Proc) {
		g.Add(4)
		p.Sleep(time.Second)
		g.Add(6) // 10 held for 1s
		p.Sleep(time.Second)
		g.Add(-10) // back to 0
		p.Sleep(2 * time.Second)
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	mean, max := g.TimeWeightedStats(clk.Now())
	if want := (4.0 + 10.0) / 4.0; mean != want {
		t.Errorf("tw mean = %v, want %v", mean, want)
	}
	if max != 10 {
		t.Errorf("tw max = %v, want 10", max)
	}
	// Same-instant intermediates must not leak into the max.
	clk2 := vclock.New()
	g2 := NewRegistry(clk2).Gauge("spiky")
	clk2.Go("p", func(p *vclock.Proc) {
		g2.Add(100)
		g2.Add(-99) // net 1 at instant 0; 100 never persisted
		p.Sleep(time.Second)
	})
	if err := clk2.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, max := g2.TimeWeightedStats(clk2.Now()); max != 1 {
		t.Errorf("same-instant max = %v, want 1", max)
	}
	// Nil gauge and zero horizon are safe.
	var nilG *Gauge
	if m, mx := nilG.TimeWeightedStats(time.Second); m != 0 || mx != 0 {
		t.Errorf("nil gauge stats = %v, %v", m, mx)
	}
}
