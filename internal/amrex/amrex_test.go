package amrex

import (
	"testing"

	"asyncio/internal/hdf5"
	"asyncio/internal/vol"
)

func TestBoxBasics(t *testing.T) {
	b := Box{Lo: [3]int{1, 2, 3}, Hi: [3]int{4, 6, 8}}
	if b.NumCells() != 3*4*5 {
		t.Fatalf("NumCells = %d", b.NumCells())
	}
	if (Box{Lo: [3]int{2, 0, 0}, Hi: [3]int{1, 5, 5}}).NumCells() != 0 {
		t.Fatal("inverted box must have zero cells")
	}
	if b.String() == "" {
		t.Fatal("empty String")
	}
	if DomainBox(8).NumCells() != 512 {
		t.Fatal("DomainBox wrong")
	}
}

func TestChopDomainCoversExactly(t *testing.T) {
	dom := DomainBox(100)
	ba := ChopDomain(dom, 32)
	// 100/32 → 4 per side → 64 boxes.
	if len(ba.Boxes) != 64 {
		t.Fatalf("boxes = %d", len(ba.Boxes))
	}
	if ba.NumCells() != dom.NumCells() {
		t.Fatalf("cells = %d, want %d", ba.NumCells(), dom.NumCells())
	}
	// Partial edge boxes are 4 cells wide in each dimension's last slot.
	var partial int
	for _, b := range ba.Boxes {
		for d := 0; d < 3; d++ {
			if b.Hi[d]-b.Lo[d] == 4 {
				partial++
				break
			}
		}
	}
	if partial == 0 {
		t.Fatal("no partial boxes on a 100/32 chop")
	}
}

func TestChopDomainExactFit(t *testing.T) {
	ba := ChopDomain(DomainBox(64), 32)
	if len(ba.Boxes) != 8 {
		t.Fatalf("boxes = %d", len(ba.Boxes))
	}
	for _, b := range ba.Boxes {
		if b.NumCells() != 32*32*32 {
			t.Fatalf("box %v not full size", b)
		}
	}
}

func TestMultiFabDistribution(t *testing.T) {
	ba := ChopDomain(DomainBox(64), 16) // 64 boxes
	mf := NewMultiFab(ba, 6, 12)
	if mf.TotalElems() != uint64(ba.NumCells())*6 {
		t.Fatalf("TotalElems = %d", mf.TotalElems())
	}
	// Every box owned exactly once; counts balanced within 1.
	counts := map[int]int{}
	total := 0
	for r := 0; r < 12; r++ {
		n := len(mf.LocalBoxes(r))
		counts[r] = n
		total += n
	}
	if total != 64 {
		t.Fatalf("owned boxes = %d, want 64", total)
	}
	for r, n := range counts {
		if n < 64/12 || n > 64/12+1 {
			t.Fatalf("rank %d owns %d boxes, unbalanced", r, n)
		}
	}
	// Local bytes sum to total bytes.
	var sum int64
	for r := 0; r < 12; r++ {
		sum += mf.LocalBytes(r)
	}
	if sum != mf.TotalBytes() {
		t.Fatalf("local bytes sum %d vs total %d", sum, mf.TotalBytes())
	}
}

func TestBoxSelectionsAreDisjointAndComplete(t *testing.T) {
	ba := ChopDomain(DomainBox(20), 8)
	mf := NewMultiFab(ba, 2, 3)
	covered := make([]bool, mf.TotalElems())
	for bi := range ba.Boxes {
		sel, err := mf.BoxSelection(bi)
		if err != nil {
			t.Fatal(err)
		}
		if err := sel.EachRun(func(off, n uint64) error {
			for i := off; i < off+n; i++ {
				if covered[i] {
					t.Fatalf("element %d covered twice", i)
				}
				covered[i] = true
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i, c := range covered {
		if !c {
			t.Fatalf("element %d never covered", i)
		}
	}
}

func TestWritePlotfileMaterialized(t *testing.T) {
	raw, err := hdf5.Create(hdf5.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	f := vol.Native{}.Wrap(raw)
	ba := ChopDomain(DomainBox(8), 4) // 8 boxes
	mf := NewMultiFab(ba, 2, 2)
	pr := vol.Props{}
	var total int64
	for rank := 0; rank < 2; rank++ {
		n, err := WritePlotfile(pr, f, 7, rank, mf, true, func() {})
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total != mf.TotalBytes() {
		t.Fatalf("wrote %d bytes, want %d", total, mf.TotalBytes())
	}
	// Verify pattern placement per box.
	ds, err := f.Root().OpenDataset(pr, PlotfileName(7)+"/level_0/data:datatype=0")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, mf.TotalBytes())
	if err := ds.Read(pr, nil, buf); err != nil {
		t.Fatal(err)
	}
	for bi := range ba.Boxes {
		sel, _ := mf.BoxSelection(bi)
		want := ExpectedBoxByte(7, bi)
		if err := sel.EachRun(func(off, n uint64) error {
			for i := off * 8; i < (off+n)*8; i++ {
				if buf[i] != want {
					t.Fatalf("box %d byte %d = %d, want %d", bi, i, buf[i], want)
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Metadata attributes present.
	g, err := f.Root().OpenGroup(pr, PlotfileName(7))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := g.AttrInt64(pr, "nboxes"); err != nil || v != 8 {
		t.Fatalf("nboxes = %d, %v", v, err)
	}
}

func TestValidationPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"chop":     func() { ChopDomain(DomainBox(8), 0) },
		"multifab": func() { NewMultiFab(BoxArray{}, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
