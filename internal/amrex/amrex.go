// Package amrex is a compact analog of the AMReX block-structured AMR
// framework's data model, sufficient to reproduce the I/O footprint of
// Nyx and Castro (§IV-C): boxes (index-space rectangles), box arrays
// produced by domain chopping, multifabs (distributed multi-component
// fab data), and an HDF5 plotfile writer that lays box data out
// sequentially in a single per-level dataset, as AMReX's HDF5 plotfile
// format does.
package amrex

import (
	"fmt"

	"asyncio/internal/hdf5"
	"asyncio/internal/vol"
)

// Box is a 3-D index-space rectangle: Lo inclusive, Hi exclusive.
type Box struct {
	Lo, Hi [3]int
}

// NumCells returns the cell count of the box.
func (b Box) NumCells() int64 {
	n := int64(1)
	for d := 0; d < 3; d++ {
		if b.Hi[d] <= b.Lo[d] {
			return 0
		}
		n *= int64(b.Hi[d] - b.Lo[d])
	}
	return n
}

// String renders like AMReX: ((lo) (hi)).
func (b Box) String() string {
	return fmt.Sprintf("((%d,%d,%d) (%d,%d,%d))",
		b.Lo[0], b.Lo[1], b.Lo[2], b.Hi[0]-1, b.Hi[1]-1, b.Hi[2]-1)
}

// DomainBox returns the box [0,n)³ for a cubic domain.
func DomainBox(n int) Box {
	return Box{Hi: [3]int{n, n, n}}
}

// BoxArray is a disjoint set of boxes covering a domain.
type BoxArray struct {
	Boxes []Box
}

// AutoMaxGrid picks the largest power-of-two-ish grid size (halving from
// dim, floored at 4) that chops a dim³ domain into at least nranks
// boxes, so every rank owns work — the effect of AMReX's max_grid_size
// plus load-balancing defaults as jobs scale out.
func AutoMaxGrid(dim, nranks int) int {
	if dim < 4 {
		return dim
	}
	mg := dim
	for mg > 4 {
		n := (dim + mg - 1) / mg
		if n*n*n >= nranks {
			return mg
		}
		mg /= 2
	}
	return mg
}

// ChopDomain splits domain into blocks of at most maxGrid cells per
// side, the standard AMReX max_grid_size decomposition.
func ChopDomain(domain Box, maxGrid int) BoxArray {
	if maxGrid <= 0 {
		panic(fmt.Sprintf("amrex: maxGrid %d must be positive", maxGrid))
	}
	var ba BoxArray
	for x := domain.Lo[0]; x < domain.Hi[0]; x += maxGrid {
		for y := domain.Lo[1]; y < domain.Hi[1]; y += maxGrid {
			for z := domain.Lo[2]; z < domain.Hi[2]; z += maxGrid {
				b := Box{
					Lo: [3]int{x, y, z},
					Hi: [3]int{
						min(x+maxGrid, domain.Hi[0]),
						min(y+maxGrid, domain.Hi[1]),
						min(z+maxGrid, domain.Hi[2]),
					},
				}
				ba.Boxes = append(ba.Boxes, b)
			}
		}
	}
	return ba
}

// NumCells returns the total cells across all boxes.
func (ba BoxArray) NumCells() int64 {
	var n int64
	for _, b := range ba.Boxes {
		n += b.NumCells()
	}
	return n
}

// MultiFab is a distributed multi-component field over a BoxArray. The
// distribution assigns balanced blocks of consecutive boxes to each
// rank, matching how AMReX's HDF5 plotfile writer lays data out: every
// rank's boxes occupy one contiguous region of the flattened per-level
// dataset, so a plotfile write is a single large request per rank. The
// request size therefore shrinks with the rank count under strong
// scaling — the effect driving Figs. 4 and 6.
type MultiFab struct {
	BA    BoxArray
	NComp int
	owner []int
	// offsets[i] is the element offset (cells × ncomp) of box i in the
	// plotfile's flattened per-level dataset.
	offsets []uint64
	total   uint64
}

// NewMultiFab distributes ba over nranks.
func NewMultiFab(ba BoxArray, ncomp, nranks int) *MultiFab {
	if ncomp <= 0 || nranks <= 0 {
		panic(fmt.Sprintf("amrex: invalid multifab ncomp=%d nranks=%d", ncomp, nranks))
	}
	mf := &MultiFab{BA: ba, NComp: ncomp}
	mf.owner = make([]int, len(ba.Boxes))
	mf.offsets = make([]uint64, len(ba.Boxes))
	var off uint64
	for i, b := range ba.Boxes {
		mf.owner[i] = i * nranks / len(ba.Boxes) // balanced contiguous blocks
		mf.offsets[i] = off
		off += uint64(b.NumCells()) * uint64(ncomp)
	}
	mf.total = off
	return mf
}

// TotalElems returns cells × components across the fab.
func (mf *MultiFab) TotalElems() uint64 { return mf.total }

// TotalBytes returns the fab's plotfile payload in bytes (float64
// elements).
func (mf *MultiFab) TotalBytes() int64 { return int64(mf.total) * 8 }

// LocalBoxes returns the indices of boxes owned by rank.
func (mf *MultiFab) LocalBoxes(rank int) []int {
	var out []int
	for i, r := range mf.owner {
		if r == rank {
			out = append(out, i)
		}
	}
	return out
}

// LocalBytes returns the bytes rank contributes to a plotfile write.
func (mf *MultiFab) LocalBytes(rank int) int64 {
	var n int64
	for _, bi := range mf.LocalBoxes(rank) {
		n += mf.BA.Boxes[bi].NumCells() * int64(mf.NComp) * 8
	}
	return n
}

// BoxSelection returns the 1-D hyperslab of box bi within the flattened
// per-level dataset.
func (mf *MultiFab) BoxSelection(bi int) (*hdf5.Dataspace, error) {
	sp, err := hdf5.NewSimple(mf.total)
	if err != nil {
		return nil, err
	}
	n := uint64(mf.BA.Boxes[bi].NumCells()) * uint64(mf.NComp)
	if err := sp.SelectHyperslab([]uint64{mf.offsets[bi]}, nil, []uint64{1}, []uint64{n}); err != nil {
		return nil, err
	}
	return sp, nil
}

// LocalRange returns the contiguous element range [start, start+n) that
// rank's boxes occupy in the flattened per-level dataset. n is 0 when
// the rank owns no boxes (more ranks than boxes).
func (mf *MultiFab) LocalRange(rank int) (start, n uint64) {
	first := -1
	for i, r := range mf.owner {
		if r == rank {
			if first < 0 {
				first = i
			}
			n += uint64(mf.BA.Boxes[i].NumCells()) * uint64(mf.NComp)
		}
	}
	if first < 0 {
		return 0, 0
	}
	return mf.offsets[first], n
}

// PlotfileName names the HDF5 plotfile group for a step, AMReX-style.
func PlotfileName(step int) string { return fmt.Sprintf("plt%05d", step) }

// WritePlotfile writes one plotfile for the multifab: rank 0 creates the
// level group, its metadata attributes, and the flattened level dataset;
// then every rank writes its boxes' segments. Returns this rank's bytes.
// barrier must synchronize ranks between metadata creation and data
// writes; it is injected so this package stays MPI-agnostic.
func WritePlotfile(pr vol.Props, f vol.File, step, rank int, mf *MultiFab, materialize bool, barrier func()) (int64, error) {
	if rank == 0 {
		g, err := f.Root().CreateGroup(pr, PlotfileName(step))
		if err != nil {
			return 0, err
		}
		if err := g.SetAttrInt64(pr, "step", int64(step)); err != nil {
			return 0, err
		}
		if err := g.SetAttrInt64(pr, "ncomp", int64(mf.NComp)); err != nil {
			return 0, err
		}
		if err := g.SetAttrInt64(pr, "nboxes", int64(len(mf.BA.Boxes))); err != nil {
			return 0, err
		}
		lvl, err := g.CreateGroup(pr, "level_0")
		if err != nil {
			return 0, err
		}
		space := hdf5.MustSimple(mf.total)
		if _, err := lvl.CreateDataset(pr, "data:datatype=0", hdf5.F64, space, nil); err != nil {
			return 0, err
		}
	}
	barrier()

	ds, err := f.Root().OpenDataset(pr, PlotfileName(step)+"/level_0/data:datatype=0")
	if err != nil {
		return 0, err
	}
	// Aggregated write: the rank's boxes are contiguous in the file, so
	// the whole local contribution moves in one request — as AMReX's
	// HDF5 writer does after gathering its local fabs.
	start, n := mf.LocalRange(rank)
	if n == 0 {
		return 0, nil
	}
	sel, err := hdf5.NewSimple(mf.total)
	if err != nil {
		return 0, err
	}
	if err := sel.SelectHyperslab([]uint64{start}, nil, []uint64{1}, []uint64{n}); err != nil {
		return 0, err
	}
	nbytes := int64(n) * 8
	if materialize {
		buf := make([]byte, nbytes)
		for _, bi := range mf.LocalBoxes(rank) {
			boxBytes := mf.BA.Boxes[bi].NumCells() * int64(mf.NComp) * 8
			boxStart := (mf.offsets[bi] - start) * 8
			fillBox(buf[boxStart:boxStart+uint64(boxBytes)], step, bi)
		}
		if err := ds.Write(pr, sel, buf); err != nil {
			return 0, err
		}
	} else if err := ds.WriteDiscard(pr, sel); err != nil {
		return 0, err
	}
	return nbytes, nil
}

// fillBox writes a recognizable pattern for correctness tests.
func fillBox(buf []byte, step, bi int) {
	v := byte(step*31 + bi + 1)
	for i := range buf {
		buf[i] = v
	}
}

// ExpectedBoxByte returns the pattern byte for (step, box).
func ExpectedBoxByte(step, bi int) byte { return byte(step*31 + bi + 1) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
