// Package memsys models node-local memory systems: DRAM copy bandwidth,
// the CPU↔GPU link, and node-local SSDs. These supply the transactional-
// overhead costs of the paper's model (§III-B1): an asynchronous write
// first copies the application buffer to a private staging buffer, and
// that copy's cost is what asynchronous I/O pays per epoch.
//
// Each Node owns processor-sharing servers, so the paper's observation
// that "the aggregate asynchronous bandwidth scales linearly with nodes
// because the per-node copy bandwidth is constant" falls out naturally:
// ranks on one node share that node's DRAM bandwidth, ranks on different
// nodes do not contend.
package memsys

import (
	"fmt"
	"time"

	"asyncio/internal/flow"
	"asyncio/internal/vclock"
)

// NodeConfig describes one compute node's memory system.
type NodeConfig struct {
	// MemcpyPeak is the aggregate DRAM copy bandwidth (bytes/s) the
	// node's ranks share.
	MemcpyPeak float64
	// MemcpyRamp controls the small-copy penalty: a copy of b bytes
	// achieves efficiency b/(b+MemcpyRamp). The paper measured memcpy
	// bandwidth constant above 32 MB; a ramp of ~1 MB reproduces that
	// knee.
	MemcpyRamp int64
	// GPULinkPeak is the CPU↔GPU link bandwidth in bytes/s (NVLink 2.0:
	// 50 GB/s; PCIe 3.0 x16: 15.75 GB/s). Zero means no GPUs.
	GPULinkPeak float64
	// GPUPinnedSetup / GPUUnpinnedSetup are the DMA setup latencies per
	// transfer. Unpinned memory pays an extra staging copy, captured by
	// GPUUnpinnedFactor (fraction of link bandwidth achieved).
	GPUPinnedSetup    time.Duration
	GPUUnpinnedSetup  time.Duration
	GPUUnpinnedFactor float64
	// SSDWritePeak / SSDReadPeak describe the node-local SSD (bytes/s).
	// Zero means no node-local SSD.
	SSDWritePeak float64
	SSDReadPeak  float64
}

// Node is one compute node's memory system.
type Node struct {
	cfg      NodeConfig
	mem      *flow.Server
	gpu      *flow.Server
	ssdWrite *flow.Server
	ssdRead  *flow.Server
}

// NewNode builds a node on clk.
func NewNode(clk *vclock.Clock, cfg NodeConfig) *Node {
	if cfg.MemcpyPeak <= 0 {
		panic(fmt.Sprintf("memsys: MemcpyPeak %v must be positive", cfg.MemcpyPeak))
	}
	n := &Node{cfg: cfg, mem: flow.NewServer(clk, flow.ConstCapacity(cfg.MemcpyPeak))}
	if cfg.GPULinkPeak > 0 {
		n.gpu = flow.NewServer(clk, flow.ConstCapacity(cfg.GPULinkPeak))
	}
	if cfg.SSDWritePeak > 0 {
		n.ssdWrite = flow.NewServer(clk, flow.ConstCapacity(cfg.SSDWritePeak))
	}
	if cfg.SSDReadPeak > 0 {
		n.ssdRead = flow.NewServer(clk, flow.ConstCapacity(cfg.SSDReadPeak))
	}
	return n
}

// memcpyEff is the efficiency of a copy of b bytes.
func (n *Node) memcpyEff(b int64) float64 {
	if n.cfg.MemcpyRamp <= 0 || b <= 0 {
		return 1
	}
	return float64(b) / float64(b+n.cfg.MemcpyRamp)
}

// Memcpy charges a DRAM-to-DRAM copy of b bytes, sharing the node's copy
// bandwidth with concurrent local copies. It returns the elapsed virtual
// time.
func (n *Node) Memcpy(p *vclock.Proc, b int64) time.Duration {
	if b <= 0 {
		return 0
	}
	served := int64(float64(b) / n.memcpyEff(b))
	return n.mem.Transfer(p, served)
}

// MemcpyBandwidth returns the modelled single-flow copy bandwidth
// (bytes/s) for a copy of b bytes — the quantity the paper's memcpy
// micro-benchmark measures.
func (n *Node) MemcpyBandwidth(b int64) float64 {
	return n.cfg.MemcpyPeak * n.memcpyEff(b)
}

// GPUTransfer charges a CPU↔GPU transfer of b bytes. Pinned host memory
// reaches the link's peak after a short DMA setup; unpinned memory pays
// a longer setup plus a staging-copy penalty. Panics if the node has no
// GPU configured.
func (n *Node) GPUTransfer(p *vclock.Proc, b int64, pinned bool) time.Duration {
	if n.gpu == nil {
		panic("memsys: GPUTransfer on node without GPUs")
	}
	if b <= 0 {
		return 0
	}
	start := p.Now()
	served := b
	if pinned {
		p.Sleep(n.cfg.GPUPinnedSetup)
	} else {
		p.Sleep(n.cfg.GPUUnpinnedSetup)
		f := n.cfg.GPUUnpinnedFactor
		if f <= 0 || f > 1 {
			f = 1
		}
		served = int64(float64(b) / f)
	}
	n.gpu.Transfer(p, served)
	return p.Now() - start
}

// GPUBandwidth returns the modelled effective bandwidth (bytes/s) of one
// isolated transfer of b bytes — what the paper's GPU micro-benchmark
// reports, including setup amortization.
func (n *Node) GPUBandwidth(b int64, pinned bool) float64 {
	if n.gpu == nil || b <= 0 {
		return 0
	}
	var setup time.Duration
	rate := n.cfg.GPULinkPeak
	if pinned {
		setup = n.cfg.GPUPinnedSetup
	} else {
		setup = n.cfg.GPUUnpinnedSetup
		if f := n.cfg.GPUUnpinnedFactor; f > 0 && f <= 1 {
			rate *= f
		}
	}
	t := setup.Seconds() + float64(b)/rate
	return float64(b) / t
}

// SSDWrite charges a write of b bytes to the node-local SSD.
func (n *Node) SSDWrite(p *vclock.Proc, b int64) time.Duration {
	if n.ssdWrite == nil {
		panic("memsys: SSDWrite on node without SSD")
	}
	return n.ssdWrite.Transfer(p, b)
}

// SSDRead charges a read of b bytes from the node-local SSD.
func (n *Node) SSDRead(p *vclock.Proc, b int64) time.Duration {
	if n.ssdRead == nil {
		panic("memsys: SSDRead on node without SSD")
	}
	return n.ssdRead.Transfer(p, b)
}

// HasGPU reports whether the node has a GPU link configured.
func (n *Node) HasGPU() bool { return n.gpu != nil }

// HasSSD reports whether the node has a node-local SSD configured.
func (n *Node) HasSSD() bool { return n.ssdWrite != nil }

// Machine is a set of identical nodes with a fixed rank-to-node mapping
// (block distribution: ranks r*k..r*k+k-1 on node r, matching how MPI
// launchers place consecutive ranks).
type Machine struct {
	nodes        []*Node
	ranksPerNode int
}

// NewMachine builds nodes identical nodes.
func NewMachine(clk *vclock.Clock, nodes, ranksPerNode int, cfg NodeConfig) *Machine {
	if nodes <= 0 || ranksPerNode <= 0 {
		panic(fmt.Sprintf("memsys: invalid machine %d nodes × %d ranks", nodes, ranksPerNode))
	}
	m := &Machine{ranksPerNode: ranksPerNode}
	for i := 0; i < nodes; i++ {
		m.nodes = append(m.nodes, NewNode(clk, cfg))
	}
	return m
}

// NodeOf returns the node hosting the given rank.
func (m *Machine) NodeOf(rank int) *Node {
	idx := rank / m.ranksPerNode
	if idx < 0 || idx >= len(m.nodes) {
		panic(fmt.Sprintf("memsys: rank %d outside machine (%d nodes × %d)",
			rank, len(m.nodes), m.ranksPerNode))
	}
	return m.nodes[idx]
}

// NumNodes returns the node count.
func (m *Machine) NumNodes() int { return len(m.nodes) }

// RanksPerNode returns the ranks placed on each node.
func (m *Machine) RanksPerNode() int { return m.ranksPerNode }

// Size returns the total rank capacity.
func (m *Machine) Size() int { return len(m.nodes) * m.ranksPerNode }
