package memsys

import (
	"math"
	"testing"
	"time"

	"asyncio/internal/vclock"
)

const (
	MiB = 1 << 20
	GiB = 1 << 30
)

func testConfig() NodeConfig {
	return NodeConfig{
		MemcpyPeak:        10 * GiB,
		MemcpyRamp:        1 * MiB,
		GPULinkPeak:       50 * GiB,
		GPUPinnedSetup:    10 * time.Microsecond,
		GPUUnpinnedSetup:  100 * time.Microsecond,
		GPUUnpinnedFactor: 0.5,
		SSDWritePeak:      2 * GiB,
		SSDReadPeak:       5 * GiB,
	}
}

func TestMemcpyLargeCopyNearPeak(t *testing.T) {
	clk := vclock.New()
	n := NewNode(clk, testConfig())
	var took time.Duration
	clk.Go("x", func(p *vclock.Proc) {
		took = n.Memcpy(p, 10*GiB)
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	// 10 GiB at ~10 GiB/s, tiny ramp penalty.
	if took.Seconds() < 0.99 || took.Seconds() > 1.01 {
		t.Fatalf("10GiB copy took %vs, want ~1s", took.Seconds())
	}
}

func TestMemcpyBandwidthConstantAfter32MB(t *testing.T) {
	clk := vclock.New()
	n := NewNode(clk, testConfig())
	bw32 := n.MemcpyBandwidth(32 * MiB)
	bw256 := n.MemcpyBandwidth(256 * MiB)
	if rel := math.Abs(bw256-bw32) / bw256; rel > 0.05 {
		t.Fatalf("bandwidth not constant above 32MB: 32MB=%.3g 256MB=%.3g", bw32, bw256)
	}
	// And clearly lower for small copies.
	bw64k := n.MemcpyBandwidth(64 * 1024)
	if bw64k > 0.2*bw256 {
		t.Fatalf("small-copy bandwidth %.3g not penalized vs %.3g", bw64k, bw256)
	}
}

func TestMemcpySharedByLocalRanks(t *testing.T) {
	clk := vclock.New()
	n := NewNode(clk, testConfig())
	var end [4]time.Duration
	for i := 0; i < 4; i++ {
		clk.Go("r", func(p *vclock.Proc) {
			n.Memcpy(p, 10*GiB)
			end[i] = p.Now()
		})
	}
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, e := range end {
		// 4 copies of 10 GiB share 10 GiB/s → ~4s each.
		if e.Seconds() < 3.9 || e.Seconds() > 4.1 {
			t.Fatalf("rank %d finished at %vs, want ~4s", i, e.Seconds())
		}
	}
}

func TestMemcpyZeroBytes(t *testing.T) {
	clk := vclock.New()
	n := NewNode(clk, testConfig())
	clk.Go("x", func(p *vclock.Proc) {
		if d := n.Memcpy(p, 0); d != 0 {
			t.Errorf("zero copy took %v", d)
		}
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestGPUPinnedFasterThanUnpinned(t *testing.T) {
	clk := vclock.New()
	n := NewNode(clk, testConfig())
	var pinned, unpinned time.Duration
	clk.Go("x", func(p *vclock.Proc) {
		pinned = n.GPUTransfer(p, 100*MiB, true)
		unpinned = n.GPUTransfer(p, 100*MiB, false)
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	if pinned >= unpinned {
		t.Fatalf("pinned %v not faster than unpinned %v", pinned, unpinned)
	}
	if unpinned < 18*time.Millisecond { // 100MiB at 25 GiB/s ≈ 3.9ms... plus factor
		t.Logf("unpinned = %v", unpinned)
	}
}

func TestGPUBandwidthAmortizesAbove10MB(t *testing.T) {
	n := NewNode(vclock.New(), testConfig())
	bwSmall := n.GPUBandwidth(64*1024, true)
	bw10M := n.GPUBandwidth(10*MiB, true)
	bwBig := n.GPUBandwidth(1*GiB, true)
	if bwSmall > 0.5*bwBig {
		t.Fatalf("64KB transfer bandwidth %.3g not dominated by setup (big %.3g)", bwSmall, bwBig)
	}
	if bw10M < 0.9*bwBig {
		t.Fatalf("10MB transfer %.3g not amortized vs %.3g", bw10M, bwBig)
	}
	// Pinned approaches the link's theoretical peak.
	if bwBig < 0.98*50*GiB {
		t.Fatalf("pinned peak %.3g below theoretical", bwBig)
	}
}

func TestGPUWithoutGPUPanics(t *testing.T) {
	cfg := testConfig()
	cfg.GPULinkPeak = 0
	n := NewNode(vclock.New(), cfg)
	if n.HasGPU() {
		t.Fatal("HasGPU = true")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("GPUTransfer without GPU did not panic")
		}
	}()
	n.GPUTransfer(nil, 1, true)
}

func TestSSDReadWriteRates(t *testing.T) {
	clk := vclock.New()
	n := NewNode(clk, testConfig())
	if !n.HasSSD() {
		t.Fatal("HasSSD = false")
	}
	var w, r time.Duration
	clk.Go("x", func(p *vclock.Proc) {
		w = n.SSDWrite(p, 2*GiB)
		r = n.SSDRead(p, 5*GiB)
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(w.Seconds()-1) > 0.01 || math.Abs(r.Seconds()-1) > 0.01 {
		t.Fatalf("ssd write %vs read %vs, want ~1s each", w.Seconds(), r.Seconds())
	}
}

func TestMachineRankMapping(t *testing.T) {
	clk := vclock.New()
	m := NewMachine(clk, 4, 6, testConfig())
	if m.NumNodes() != 4 || m.RanksPerNode() != 6 || m.Size() != 24 {
		t.Fatalf("machine shape wrong: %d/%d/%d", m.NumNodes(), m.RanksPerNode(), m.Size())
	}
	if m.NodeOf(0) != m.NodeOf(5) {
		t.Fatal("ranks 0 and 5 on different nodes")
	}
	if m.NodeOf(5) == m.NodeOf(6) {
		t.Fatal("ranks 5 and 6 on same node")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range rank did not panic")
		}
	}()
	m.NodeOf(24)
}

func TestRanksOnDifferentNodesDoNotContend(t *testing.T) {
	clk := vclock.New()
	m := NewMachine(clk, 2, 1, testConfig())
	var end [2]time.Duration
	for i := 0; i < 2; i++ {
		clk.Go("r", func(p *vclock.Proc) {
			m.NodeOf(i).Memcpy(p, 10*GiB)
			end[i] = p.Now()
		})
	}
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, e := range end {
		if e.Seconds() > 1.05 {
			t.Fatalf("rank %d took %vs; cross-node contention should not exist", i, e.Seconds())
		}
	}
}
