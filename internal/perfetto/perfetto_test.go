package perfetto

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"asyncio/internal/metrics"
	"asyncio/internal/trace"
	"asyncio/internal/vclock"
)

var update = flag.Bool("update", false, "rewrite golden files")

// twoRankFixture builds the span trees and registry of a miniature
// two-rank async run: each rank stages a write, the background stream
// executes it against the PFS, and the queue-depth gauge tracks the
// overlap. All timestamps are fixed so the fixture is deterministic.
func twoRankFixture(t *testing.T) ([]*trace.Span, *metrics.Registry) {
	t.Helper()
	ms := time.Millisecond
	spans := make([]*trace.Span, 2)
	for r, name := range []string{"rank0", "rank1"} {
		sp := trace.NewSpan(name)
		ep := sp.Child("epoch0")
		off := time.Duration(r) * ms
		ep.EventOn("asyncvol:stage", 1<<20, off, name)
		ep.EventDurOn("pfs:alpine:write", 1<<20, 10*ms+off, 5*ms, "stream:asyncvol:"+name)
		ep.Event("epoch-commit", 0, 20*ms+off) // no track: lands on the root's row
		spans[r] = sp
	}

	clk := vclock.New()
	reg := metrics.NewRegistry(clk)
	reg.EnableSeries()
	depth := reg.Gauge("asyncvol.queue_depth")
	ops := reg.Counter("asyncvol.ops_enqueued")
	clk.Go("p", func(p *vclock.Proc) {
		depth.Add(2)
		ops.Add(2)
		p.Sleep(15 * ms)
		depth.Add(-2)
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	// Histograms have no series and must not produce counter tracks.
	reg.Histogram("asyncvol.drain_wait_seconds").Observe(0.015)
	return spans, reg
}

func TestGoldenTwoRankRun(t *testing.T) {
	spans, reg := twoRankFixture(t)
	var buf bytes.Buffer
	if err := Write(&buf, spans, reg); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "two_rank_run.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with go test ./internal/perfetto -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("output diverged from golden file:\n got: %s\nwant: %s", buf.Bytes(), want)
	}
}

func TestWriteIsDeterministic(t *testing.T) {
	spans, reg := twoRankFixture(t)
	var a, b bytes.Buffer
	if err := Write(&a, spans, reg); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, spans, reg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two writes of the same data differ")
	}
}

// decode parses the output back for structural assertions.
func decode(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	return doc.TraceEvents
}

func TestTrackLayout(t *testing.T) {
	spans, reg := twoRankFixture(t)
	var buf bytes.Buffer
	if err := Write(&buf, spans, reg); err != nil {
		t.Fatal(err)
	}
	events := decode(t, buf.Bytes())

	// Collect thread_name metadata per pid.
	threads := make(map[float64][]string)
	for _, ev := range events {
		if ev["ph"] == "M" && ev["name"] == "thread_name" {
			pid := ev["pid"].(float64)
			args := ev["args"].(map[string]any)
			threads[pid] = append(threads[pid], args["name"].(string))
		}
	}
	wantThreads := map[float64][]string{
		1: {"rank0", "rank1"},
		2: {"stream:asyncvol:rank0", "stream:asyncvol:rank1"},
		4: {"alpine"},
	}
	for pid, want := range wantThreads {
		got := threads[pid]
		if len(got) != len(want) {
			t.Fatalf("pid %v threads = %v, want %v", pid, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("pid %v threads = %v, want %v", pid, got, want)
			}
		}
	}

	// The PFS transfer appears twice: on its stream row and on the
	// target's storage-side row. Counter samples land on the metrics pid.
	var streamCopies, pfsCopies, counterSamples int
	for _, ev := range events {
		switch {
		case ev["name"] == "pfs:alpine:write" && ev["pid"].(float64) == 2:
			streamCopies++
		case ev["name"] == "pfs:alpine:write" && ev["pid"].(float64) == 4:
			pfsCopies++
		case ev["ph"] == "C":
			counterSamples++
			if ev["pid"].(float64) != 5 {
				t.Fatalf("counter sample on pid %v", ev["pid"])
			}
		}
	}
	if streamCopies != 2 || pfsCopies != 2 {
		t.Fatalf("pfs write copies: stream=%d pfs=%d, want 2 and 2", streamCopies, pfsCopies)
	}
	// queue_depth has 2 change points, ops_enqueued has 1; the
	// sample-less histogram contributes none.
	if counterSamples != 3 {
		t.Fatalf("counter samples = %d, want 3", counterSamples)
	}
}

func TestWriteEmptyInputs(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	if events := decode(t, buf.Bytes()); len(events) != 0 {
		t.Fatalf("empty inputs produced %d events", len(events))
	}
}

func TestTrackOrderNumericSuffix(t *testing.T) {
	names := []string{"rank10", "rank9", "rank1", "stream", "rank2"}
	want := []string{"rank1", "rank2", "rank9", "rank10", "stream"}
	sort.Sort(trackOrder(names))
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("sorted = %v, want %v", names, want)
		}
	}
}
