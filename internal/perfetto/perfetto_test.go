package perfetto

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"asyncio/internal/critpath"
	"asyncio/internal/metrics"
	"asyncio/internal/trace"
	"asyncio/internal/vclock"
)

var update = flag.Bool("update", false, "rewrite golden files")

// twoRankFixture builds the span trees and registry of a miniature
// two-rank async run: each rank stages a write, the background stream
// executes it against the PFS, and the queue-depth gauge tracks the
// overlap. All timestamps are fixed so the fixture is deterministic.
func twoRankFixture(t *testing.T) ([]*trace.Span, *metrics.Registry) {
	t.Helper()
	ms := time.Millisecond
	spans := make([]*trace.Span, 2)
	for r, name := range []string{"rank0", "rank1"} {
		sp := trace.NewSpan(name)
		ep := sp.Child("epoch0")
		off := time.Duration(r) * ms
		ep.EventOn("asyncvol:stage", 1<<20, off, name)
		ep.EventDurOn("pfs:alpine:write", 1<<20, 10*ms+off, 5*ms, "stream:asyncvol:"+name)
		ep.Event("epoch-commit", 0, 20*ms+off) // no track: lands on the root's row
		spans[r] = sp
	}

	clk := vclock.New()
	reg := metrics.NewRegistry(clk)
	reg.EnableSeries()
	depth := reg.Gauge("asyncvol.queue_depth")
	ops := reg.Counter("asyncvol.ops_enqueued")
	clk.Go("p", func(p *vclock.Proc) {
		depth.Add(2)
		ops.Add(2)
		p.Sleep(15 * ms)
		depth.Add(-2)
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	// Histograms have no change-point series; they surface as one
	// single-sample quantile track per percentile.
	reg.Histogram("asyncvol.drain_wait_seconds").Observe(0.015)
	return spans, reg
}

func TestGoldenTwoRankRun(t *testing.T) {
	spans, reg := twoRankFixture(t)
	var buf bytes.Buffer
	if err := Write(&buf, spans, reg); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "two_rank_run.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with go test ./internal/perfetto -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("output diverged from golden file:\n got: %s\nwant: %s", buf.Bytes(), want)
	}
}

func TestWriteIsDeterministic(t *testing.T) {
	spans, reg := twoRankFixture(t)
	var a, b bytes.Buffer
	if err := Write(&a, spans, reg); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, spans, reg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two writes of the same data differ")
	}
}

// decode parses the output back for structural assertions.
func decode(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	return doc.TraceEvents
}

func TestTrackLayout(t *testing.T) {
	spans, reg := twoRankFixture(t)
	var buf bytes.Buffer
	if err := Write(&buf, spans, reg); err != nil {
		t.Fatal(err)
	}
	events := decode(t, buf.Bytes())

	// Collect thread_name metadata per pid.
	threads := make(map[float64][]string)
	for _, ev := range events {
		if ev["ph"] == "M" && ev["name"] == "thread_name" {
			pid := ev["pid"].(float64)
			args := ev["args"].(map[string]any)
			threads[pid] = append(threads[pid], args["name"].(string))
		}
	}
	wantThreads := map[float64][]string{
		1: {"rank0", "rank1"},
		2: {"stream:asyncvol:rank0", "stream:asyncvol:rank1"},
		4: {"alpine"},
	}
	for pid, want := range wantThreads {
		got := threads[pid]
		if len(got) != len(want) {
			t.Fatalf("pid %v threads = %v, want %v", pid, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("pid %v threads = %v, want %v", pid, got, want)
			}
		}
	}

	// The PFS transfer appears twice: on its stream row and on the
	// target's storage-side row. Counter samples land on the metrics pid.
	var streamCopies, pfsCopies, counterSamples int
	for _, ev := range events {
		switch {
		case ev["name"] == "pfs:alpine:write" && ev["pid"].(float64) == 2:
			streamCopies++
		case ev["name"] == "pfs:alpine:write" && ev["pid"].(float64) == 4:
			pfsCopies++
		case ev["ph"] == "C":
			counterSamples++
			if ev["pid"].(float64) != 5 {
				t.Fatalf("counter sample on pid %v", ev["pid"])
			}
		}
	}
	if streamCopies != 2 || pfsCopies != 2 {
		t.Fatalf("pfs write copies: stream=%d pfs=%d, want 2 and 2", streamCopies, pfsCopies)
	}
	// queue_depth has 2 change points, ops_enqueued has 1, and the
	// histogram contributes one sample on each of its three quantile
	// tracks.
	if counterSamples != 6 {
		t.Fatalf("counter samples = %d, want 6", counterSamples)
	}
	quantiles := make(map[string]float64)
	for _, ev := range events {
		if ev["ph"] == "C" && strings.HasPrefix(ev["name"].(string), "asyncvol.drain_wait_seconds.") {
			args := ev["args"].(map[string]any)
			quantiles[ev["name"].(string)] = args["value"].(float64)
		}
	}
	for _, q := range []string{"p50", "p95", "p99"} {
		if v := quantiles["asyncvol.drain_wait_seconds."+q]; v != 0.015 {
			t.Fatalf("%s quantile track = %v, want 0.015", q, v)
		}
	}
}

// TestCritPathOverlay checks that WriteProfile adds the pid-6 overlay:
// one slice per profile segment, named by its top cause.
func TestCritPathOverlay(t *testing.T) {
	spans, reg := twoRankFixture(t)
	prof := &critpath.Profile{
		SchemaVersion:   critpath.SchemaVersion,
		MakespanSeconds: 0.025,
		Segments: []critpath.Segment{
			{StartSeconds: 0, EndSeconds: 0.010, Track: "rank0", TopCause: critpath.Compute},
			{StartSeconds: 0.010, EndSeconds: 0.025, Track: "rank1", TopCause: critpath.PFSTransfer},
		},
	}
	var buf bytes.Buffer
	if err := WriteProfile(&buf, spans, reg, prof); err != nil {
		t.Fatal(err)
	}
	events := decode(t, buf.Bytes())

	var overlay []map[string]any
	var procName, threadName string
	for _, ev := range events {
		if ev["pid"].(float64) != 6 {
			continue
		}
		switch {
		case ev["ph"] == "M" && ev["name"] == "process_name":
			procName = ev["args"].(map[string]any)["name"].(string)
		case ev["ph"] == "M" && ev["name"] == "thread_name":
			threadName = ev["args"].(map[string]any)["name"].(string)
		case ev["ph"] == "X":
			overlay = append(overlay, ev)
		}
	}
	if procName != "critical path" || threadName != "segments" {
		t.Fatalf("overlay metadata = (%q, %q), want (critical path, segments)", procName, threadName)
	}
	if len(overlay) != 2 {
		t.Fatalf("overlay slices = %d, want 2", len(overlay))
	}
	if overlay[0]["name"] != string(critpath.Compute) || overlay[1]["name"] != string(critpath.PFSTransfer) {
		t.Fatalf("overlay names = %v, %v", overlay[0]["name"], overlay[1]["name"])
	}
	if tr := overlay[1]["args"].(map[string]any)["track"]; tr != "rank1" {
		t.Fatalf("second segment track = %v, want rank1", tr)
	}
	if dur := overlay[1]["dur"].(float64); math.Abs(dur-15000) > 1e-6 {
		t.Fatalf("second segment dur = %v usec, want 15000", dur)
	}

	// Write without a profile must not grow a pid-6 group.
	var plain bytes.Buffer
	if err := Write(&plain, spans, reg); err != nil {
		t.Fatal(err)
	}
	for _, ev := range decode(t, plain.Bytes()) {
		if ev["pid"].(float64) == 6 {
			t.Fatal("Write without a profile emitted a critical-path event")
		}
	}
}

func TestWriteEmptyInputs(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	if events := decode(t, buf.Bytes()); len(events) != 0 {
		t.Fatalf("empty inputs produced %d events", len(events))
	}
}

func TestTrackOrderNumericSuffix(t *testing.T) {
	names := []string{"rank10", "rank9", "rank1", "stream", "rank2"}
	want := []string{"rank1", "rank2", "rank9", "rank10", "stream"}
	sort.Sort(trackOrder(names))
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("sorted = %v, want %v", names, want)
		}
	}
}
