// Package perfetto exports a run's observability data — trace.Span
// trees and metrics series — as Chrome trace-event JSON, the format
// ui.perfetto.dev and chrome://tracing open directly.
//
// The timeline is organized into process groups ("pid" in the format's
// vocabulary), one per execution domain of the simulator:
//
//	pid 1  ranks               one thread row per MPI rank
//	pid 2  background streams  one row per asyncvol background stream
//	pid 3  other               events from unnamed/auxiliary contexts
//	pid 4  pfs targets         storage-side copies of pfs:* transfer
//	                           events, one row per target
//	pid 5  metrics             counter tracks from the registry's series
//	                           plus one quantile track (p50/p95/p99)
//	                           per histogram
//	pid 6  critical path       overlay marking the run's on-critical-
//	                           path segments, one slice per segment
//	                           named by its dominant blame category
//
// Span events carry a Track (the vclock process that recorded them);
// events without one are attributed to their root span's name, which
// for core runs is the issuing rank. All output is deterministic: rows
// and events are sorted, and virtual timestamps do not depend on
// goroutine scheduling.
package perfetto

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
	"time"

	"asyncio/internal/critpath"
	"asyncio/internal/metrics"
	"asyncio/internal/trace"
)

// Process-group ids.
const (
	pidRanks = iota + 1
	pidStreams
	pidOther
	pidPFS
	pidMetrics
	pidCritPath
)

var pidNames = map[int]string{
	pidRanks:    "ranks",
	pidStreams:  "background streams",
	pidOther:    "other",
	pidPFS:      "pfs targets",
	pidMetrics:  "metrics",
	pidCritPath: "critical path",
}

// event is one trace-event object. Field order here fixes the JSON
// field order, part of the determinism contract.
type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// usec converts virtual time to the format's microsecond timestamps.
func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// pidFor classifies a track name into its process group.
func pidFor(track string) int {
	switch {
	case strings.HasPrefix(track, "rank"):
		return pidRanks
	case strings.HasPrefix(track, "stream:"):
		return pidStreams
	default:
		return pidOther
	}
}

// pfsTarget extracts the target name from a "pfs:<target>:<op>" event
// name ("" when the event is not a PFS transfer).
func pfsTarget(name string) string {
	rest, ok := strings.CutPrefix(name, "pfs:")
	if !ok {
		return ""
	}
	if i := strings.IndexByte(rest, ':'); i >= 0 {
		return rest[:i]
	}
	return rest
}

// flatEvent is a span event joined with its resolved track and span.
type flatEvent struct {
	trace.SpanEvent
	track string
	cat   string
}

// flatten walks a span tree depth-first, resolving each event's track.
func flatten(sp *trace.Span, root string, out *[]flatEvent) {
	if sp == nil {
		return
	}
	for _, ev := range sp.Events() {
		track := ev.Track
		if track == "" {
			track = root
		}
		*out = append(*out, flatEvent{SpanEvent: ev, track: track, cat: sp.Name()})
	}
	for _, c := range sp.Children() {
		flatten(c, root, out)
	}
}

// counterTrack is one metrics counter row: a named series of samples.
type counterTrack struct {
	name    string
	samples []metrics.Sample
}

// counterTracks collects the registry's counter rows: counter and
// gauge change-point series (when series recording is on) plus one
// single-sample quantile track per histogram percentile, stamped at
// the registry's end-of-run time. Order follows reg.Names(), so the
// tid assignment is deterministic.
func counterTracks(reg *metrics.Registry) []counterTrack {
	if reg == nil {
		return nil
	}
	var tracks []counterTrack
	series := reg.SeriesEnabled()
	final := reg.Now()
	for _, name := range reg.Names() {
		if c := reg.FindCounter(name); c != nil {
			if s := c.Series(); series && len(s) > 0 {
				tracks = append(tracks, counterTrack{name, s})
			}
		} else if g := reg.FindGauge(name); g != nil {
			if s := g.Series(); series && len(s) > 0 {
				tracks = append(tracks, counterTrack{name, s})
			}
		} else if h := reg.FindHistogram(name); h != nil {
			snap := h.Snapshot()
			if snap.Count == 0 {
				continue
			}
			for _, q := range []struct {
				suffix string
				v      float64
			}{{".p50", snap.P50}, {".p95", snap.P95}, {".p99", snap.P99}} {
				tracks = append(tracks, counterTrack{
					name + q.suffix,
					[]metrics.Sample{{At: final, V: q.v}},
				})
			}
		}
	}
	return tracks
}

// Write renders spans and the registry's counter/gauge series as a
// trace-event JSON document. Either argument may be nil/empty; the
// output is always a valid document.
func Write(w io.Writer, spans []*trace.Span, reg *metrics.Registry) error {
	return WriteProfile(w, spans, reg, nil)
}

// WriteProfile is Write plus an optional critical-path overlay: each
// profile segment becomes a slice on the "critical path" process row,
// named by the segment's dominant blame category and tagged with the
// rank/stream that carried the path through it.
func WriteProfile(w io.Writer, spans []*trace.Span, reg *metrics.Registry, prof *critpath.Profile) error {
	var flat []flatEvent
	for _, sp := range spans {
		flatten(sp, sp.Name(), &flat)
	}

	// Assign thread rows: tids are per-pid ordinals of the sorted track
	// names, so row order in the viewer matches rank/stream order and is
	// independent of event arrival.
	trackSet := make(map[int]map[string]bool)
	addTrack := func(pid int, name string) {
		if trackSet[pid] == nil {
			trackSet[pid] = make(map[string]bool)
		}
		trackSet[pid][name] = true
	}
	for _, fe := range flat {
		addTrack(pidFor(fe.track), fe.track)
		if tgt := pfsTarget(fe.Name); tgt != "" {
			addTrack(pidPFS, tgt)
		}
	}
	tids := make(map[int]map[string]int)
	for pid, set := range trackSet {
		names := make([]string, 0, len(set))
		for n := range set {
			names = append(names, n)
		}
		sort.Sort(trackOrder(names))
		m := make(map[string]int, len(names))
		for i, n := range names {
			m[n] = i + 1
		}
		tids[pid] = m
	}

	ctracks := counterTracks(reg)

	var events []event
	meta := func(pid, tid int, kind, name string) {
		events = append(events, event{
			Name: kind, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	for pid := pidRanks; pid <= pidCritPath; pid++ {
		switch pid {
		case pidMetrics:
			if len(ctracks) == 0 {
				continue
			}
		case pidCritPath:
			if prof == nil || len(prof.Segments) == 0 {
				continue
			}
		default:
			if len(tids[pid]) == 0 {
				continue
			}
		}
		meta(pid, 0, "process_name", pidNames[pid])
		if pid == pidCritPath {
			meta(pid, 1, "thread_name", "segments")
			continue
		}
		names := make([]string, 0, len(tids[pid]))
		for n := range tids[pid] {
			names = append(names, n)
		}
		sort.Sort(trackOrder(names))
		for _, n := range names {
			meta(pid, tids[pid][n], "thread_name", n)
		}
	}

	for _, fe := range flat {
		pid := pidFor(fe.track)
		ev := event{
			Name: fe.Name,
			Ph:   "X",
			Ts:   usec(fe.At),
			Pid:  pid,
			Tid:  tids[pid][fe.track],
			Cat:  fe.cat,
		}
		dur := usec(fe.Dur)
		ev.Dur = &dur
		if fe.Bytes > 0 {
			ev.Args = map[string]any{"bytes": fe.Bytes}
		}
		events = append(events, ev)
		if tgt := pfsTarget(fe.Name); tgt != "" {
			// Storage-side view: the same transfer on the target's row.
			cp := ev
			cp.Pid = pidPFS
			cp.Tid = tids[pidPFS][tgt]
			cp.Cat = fe.track
			events = append(events, cp)
		}
	}

	for i, ct := range ctracks {
		for _, s := range ct.samples {
			events = append(events, event{
				Name: ct.name,
				Ph:   "C",
				Ts:   usec(s.At),
				Pid:  pidMetrics,
				Tid:  i + 1,
				Args: map[string]any{"value": s.V},
			})
		}
	}

	if prof != nil {
		for _, seg := range prof.Segments {
			dur := (seg.EndSeconds - seg.StartSeconds) * 1e6
			events = append(events, event{
				Name: string(seg.TopCause),
				Ph:   "X",
				Ts:   seg.StartSeconds * 1e6,
				Dur:  &dur,
				Pid:  pidCritPath,
				Tid:  1,
				Cat:  "critpath",
				Args: map[string]any{"track": seg.Track},
			})
		}
	}

	sortEvents(events)
	doc := traceFile{TraceEvents: events, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// sortEvents orders the document deterministically: metadata first,
// then by (pid, tid, ts, name). Metadata records additionally
// tie-break on their args name, so two records that agree on every
// outer field (e.g. duplicate thread_name rows) still have a total
// order and goldens never depend on emission order.
func sortEvents(events []event) {
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		am, bm := a.Ph == "M", b.Ph == "M"
		if am != bm {
			return am
		}
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if am {
			return metaArgName(a) < metaArgName(b)
		}
		return false
	})
}

// metaArgName extracts a metadata record's args.name for sorting.
func metaArgName(e event) string {
	if s, ok := e.Args["name"].(string); ok {
		return s
	}
	return ""
}

// trackOrder sorts track names with numeric suffix awareness, so rank10
// follows rank9 rather than rank1.
type trackOrder []string

func (t trackOrder) Len() int      { return len(t) }
func (t trackOrder) Swap(i, j int) { t[i], t[j] = t[j], t[i] }
func (t trackOrder) Less(i, j int) bool {
	pi, ni, oki := splitNum(t[i])
	pj, nj, okj := splitNum(t[j])
	if oki && okj && pi == pj {
		return ni < nj
	}
	return t[i] < t[j]
}

// splitNum splits a trailing decimal number off a name.
func splitNum(s string) (prefix string, n int, ok bool) {
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	if i == len(s) {
		return s, 0, false
	}
	for _, c := range s[i:] {
		n = n*10 + int(c-'0')
	}
	return s[:i], n, true
}
