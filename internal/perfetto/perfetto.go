// Package perfetto exports a run's observability data — trace.Span
// trees and metrics series — as Chrome trace-event JSON, the format
// ui.perfetto.dev and chrome://tracing open directly.
//
// The timeline is organized into process groups ("pid" in the format's
// vocabulary), one per execution domain of the simulator:
//
//	pid 1  ranks               one thread row per MPI rank
//	pid 2  background streams  one row per asyncvol background stream
//	pid 3  other               events from unnamed/auxiliary contexts
//	pid 4  pfs targets         storage-side copies of pfs:* transfer
//	                           events, one row per target
//	pid 5  metrics             counter tracks from the registry's series
//
// Span events carry a Track (the vclock process that recorded them);
// events without one are attributed to their root span's name, which
// for core runs is the issuing rank. All output is deterministic: rows
// and events are sorted, and virtual timestamps do not depend on
// goroutine scheduling.
package perfetto

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
	"time"

	"asyncio/internal/metrics"
	"asyncio/internal/trace"
)

// Process-group ids.
const (
	pidRanks = iota + 1
	pidStreams
	pidOther
	pidPFS
	pidMetrics
)

var pidNames = map[int]string{
	pidRanks:   "ranks",
	pidStreams: "background streams",
	pidOther:   "other",
	pidPFS:     "pfs targets",
	pidMetrics: "metrics",
}

// event is one trace-event object. Field order here fixes the JSON
// field order, part of the determinism contract.
type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// usec converts virtual time to the format's microsecond timestamps.
func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// pidFor classifies a track name into its process group.
func pidFor(track string) int {
	switch {
	case strings.HasPrefix(track, "rank"):
		return pidRanks
	case strings.HasPrefix(track, "stream:"):
		return pidStreams
	default:
		return pidOther
	}
}

// pfsTarget extracts the target name from a "pfs:<target>:<op>" event
// name ("" when the event is not a PFS transfer).
func pfsTarget(name string) string {
	rest, ok := strings.CutPrefix(name, "pfs:")
	if !ok {
		return ""
	}
	if i := strings.IndexByte(rest, ':'); i >= 0 {
		return rest[:i]
	}
	return rest
}

// flatEvent is a span event joined with its resolved track and span.
type flatEvent struct {
	trace.SpanEvent
	track string
	cat   string
}

// flatten walks a span tree depth-first, resolving each event's track.
func flatten(sp *trace.Span, root string, out *[]flatEvent) {
	if sp == nil {
		return
	}
	for _, ev := range sp.Events() {
		track := ev.Track
		if track == "" {
			track = root
		}
		*out = append(*out, flatEvent{SpanEvent: ev, track: track, cat: sp.Name()})
	}
	for _, c := range sp.Children() {
		flatten(c, root, out)
	}
}

// Write renders spans and the registry's counter/gauge series as a
// trace-event JSON document. Either argument may be nil/empty; the
// output is always a valid document.
func Write(w io.Writer, spans []*trace.Span, reg *metrics.Registry) error {
	var flat []flatEvent
	for _, sp := range spans {
		flatten(sp, sp.Name(), &flat)
	}

	// Assign thread rows: tids are per-pid ordinals of the sorted track
	// names, so row order in the viewer matches rank/stream order and is
	// independent of event arrival.
	trackSet := make(map[int]map[string]bool)
	addTrack := func(pid int, name string) {
		if trackSet[pid] == nil {
			trackSet[pid] = make(map[string]bool)
		}
		trackSet[pid][name] = true
	}
	for _, fe := range flat {
		addTrack(pidFor(fe.track), fe.track)
		if tgt := pfsTarget(fe.Name); tgt != "" {
			addTrack(pidPFS, tgt)
		}
	}
	tids := make(map[int]map[string]int)
	for pid, set := range trackSet {
		names := make([]string, 0, len(set))
		for n := range set {
			names = append(names, n)
		}
		sort.Sort(trackOrder(names))
		m := make(map[string]int, len(names))
		for i, n := range names {
			m[n] = i + 1
		}
		tids[pid] = m
	}

	var events []event
	meta := func(pid, tid int, kind, name string) {
		events = append(events, event{
			Name: kind, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	for pid := pidRanks; pid <= pidMetrics; pid++ {
		if len(tids[pid]) == 0 && pid != pidMetrics {
			continue
		}
		if pid == pidMetrics && (reg == nil || !reg.SeriesEnabled()) {
			continue
		}
		meta(pid, 0, "process_name", pidNames[pid])
		names := make([]string, 0, len(tids[pid]))
		for n := range tids[pid] {
			names = append(names, n)
		}
		sort.Sort(trackOrder(names))
		for _, n := range names {
			meta(pid, tids[pid][n], "thread_name", n)
		}
	}

	for _, fe := range flat {
		pid := pidFor(fe.track)
		ev := event{
			Name: fe.Name,
			Ph:   "X",
			Ts:   usec(fe.At),
			Pid:  pid,
			Tid:  tids[pid][fe.track],
			Cat:  fe.cat,
		}
		dur := usec(fe.Dur)
		ev.Dur = &dur
		if fe.Bytes > 0 {
			ev.Args = map[string]any{"bytes": fe.Bytes}
		}
		events = append(events, ev)
		if tgt := pfsTarget(fe.Name); tgt != "" {
			// Storage-side view: the same transfer on the target's row.
			cp := ev
			cp.Pid = pidPFS
			cp.Tid = tids[pidPFS][tgt]
			cp.Cat = fe.track
			events = append(events, cp)
		}
	}

	if reg != nil && reg.SeriesEnabled() {
		counterTid := 0
		for _, name := range reg.Names() {
			var samples []metrics.Sample
			if c := reg.FindCounter(name); c != nil {
				samples = c.Series()
			} else if g := reg.FindGauge(name); g != nil {
				samples = g.Series()
			}
			if len(samples) == 0 {
				continue
			}
			counterTid++
			for _, s := range samples {
				events = append(events, event{
					Name: name,
					Ph:   "C",
					Ts:   usec(s.At),
					Pid:  pidMetrics,
					Tid:  counterTid,
					Args: map[string]any{"value": s.V},
				})
			}
		}
	}

	sortEvents(events)
	doc := traceFile{TraceEvents: events, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// sortEvents orders the document deterministically: metadata first,
// then by (pid, tid, ts, name).
func sortEvents(events []event) {
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		am, bm := a.Ph == "M", b.Ph == "M"
		if am != bm {
			return am
		}
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		return a.Name < b.Name
	})
}

// trackOrder sorts track names with numeric suffix awareness, so rank10
// follows rank9 rather than rank1.
type trackOrder []string

func (t trackOrder) Len() int      { return len(t) }
func (t trackOrder) Swap(i, j int) { t[i], t[j] = t[j], t[i] }
func (t trackOrder) Less(i, j int) bool {
	pi, ni, oki := splitNum(t[i])
	pj, nj, okj := splitNum(t[j])
	if oki && okj && pi == pj {
		return ni < nj
	}
	return t[i] < t[j]
}

// splitNum splits a trailing decimal number off a name.
func splitNum(s string) (prefix string, n int, ok bool) {
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	if i == len(s) {
		return s, 0, false
	}
	for _, c := range s[i:] {
		n = n*10 + int(c-'0')
	}
	return s[:i], n, true
}
