package hdf5

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
)

// The deflate filter stores each chunk DEFLATE-compressed. Compressed
// chunks vary in size, so a rewritten chunk is reallocated at the end of
// the file and the index entry updated (space is never reclaimed,
// matching the library's allocator policy; h5repack-style compaction is
// a Flush-time rewrite away).
//
// Writes touching part of a chunk are read-modify-write: the chunk is
// inflated, patched, deflated, and stored again. One dataset operation
// caches every chunk it touches so a multi-row hyperslab compresses each
// chunk once, not once per row.

// writeDeflate implements Dataset.Write for deflate-filtered layouts.
func (d *Dataset) writeDeflate(fspace *Dataspace, buf []byte) error {
	tsize := uint64(d.o.dtype.Size)
	cache := make(map[chunkKey][]byte)
	var order []chunkKey // deterministic flush order
	var memOff uint64
	err := fspace.EachRun(func(off, n uint64) error {
		return d.eachChunkPiece(off, n, func(key chunkKey, innerOff, pieceElems uint64) error {
			chunk, ok := cache[key]
			if !ok {
				var err error
				chunk, err = d.loadChunkDeflate(key)
				if err != nil {
					return err
				}
				cache[key] = chunk
				order = append(order, key)
			}
			b := buf[memOff*tsize : (memOff+pieceElems)*tsize]
			memOff += pieceElems
			copy(chunk[innerOff*tsize:(innerOff+pieceElems)*tsize], b)
			return nil
		})
	})
	if err != nil {
		return err
	}
	for _, key := range order {
		if err := d.storeChunkDeflate(key, cache[key]); err != nil {
			return err
		}
	}
	return nil
}

// readDeflate implements Dataset.Read for deflate-filtered layouts.
func (d *Dataset) readDeflate(fspace *Dataspace, buf []byte) error {
	tsize := uint64(d.o.dtype.Size)
	cache := make(map[chunkKey][]byte)
	var memOff uint64
	return fspace.EachRun(func(off, n uint64) error {
		return d.eachChunkPiece(off, n, func(key chunkKey, innerOff, pieceElems uint64) error {
			chunk, ok := cache[key]
			if !ok {
				var err error
				chunk, err = d.loadChunkDeflate(key)
				if err != nil {
					return err
				}
				cache[key] = chunk
			}
			b := buf[memOff*tsize : (memOff+pieceElems)*tsize]
			memOff += pieceElems
			copy(b, chunk[innerOff*tsize:(innerOff+pieceElems)*tsize])
			return nil
		})
	})
}

// loadChunkDeflate returns the chunk's uncompressed contents, or a
// zero-filled buffer for unallocated chunks (the fill value).
func (d *Dataset) loadChunkDeflate(key chunkKey) ([]byte, error) {
	f := d.o.f
	raw := make([]byte, d.chunkNBytes())
	f.mu.Lock()
	ce, ok := d.o.lay.chunks.Get(key)
	f.mu.Unlock()
	if !ok {
		return raw, nil
	}
	stored := make([]byte, ce.size)
	if _, err := f.store.ReadAt(stored, ce.addr); err != nil && err != io.EOF {
		return nil, fmt.Errorf("hdf5: read compressed chunk: %w", err)
	}
	fr := flate.NewReader(bytes.NewReader(stored))
	defer fr.Close()
	if _, err := io.ReadFull(fr, raw); err != nil {
		return nil, fmt.Errorf("%w: inflating chunk: %v", ErrCorrupt, err)
	}
	return raw, nil
}

// storeChunkDeflate compresses and stores a chunk at a fresh address,
// updating the index.
func (d *Dataset) storeChunkDeflate(key chunkKey, chunk []byte) error {
	var comp bytes.Buffer
	fw, err := flate.NewWriter(&comp, flate.DefaultCompression)
	if err != nil {
		return fmt.Errorf("hdf5: deflate init: %w", err)
	}
	if _, err := fw.Write(chunk); err != nil {
		return fmt.Errorf("hdf5: deflating chunk: %w", err)
	}
	if err := fw.Close(); err != nil {
		return fmt.Errorf("hdf5: deflating chunk: %w", err)
	}
	f := d.o.f
	f.mu.Lock()
	addr := f.alloc(int64(comp.Len()))
	d.o.lay.chunks.Put(key, chunkEntry{addr: addr, size: int64(comp.Len())})
	f.mu.Unlock()
	if _, err := f.store.WriteAt(comp.Bytes(), addr); err != nil {
		return fmt.Errorf("hdf5: write compressed chunk: %w", err)
	}
	return nil
}

// Deflated reports whether the dataset uses the deflate filter.
func (d *Dataset) Deflated() bool { return d.o.lay.deflate }

// StoredBytes returns the bytes of allocated raw storage: the contiguous
// extent, or the sum of (possibly compressed) chunk sizes.
func (d *Dataset) StoredBytes() int64 {
	f := d.o.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if !d.o.lay.chunked {
		return d.o.lay.size
	}
	var n int64
	d.o.lay.chunks.Ascend(func(_ chunkKey, ce chunkEntry) bool {
		n += ce.size
		return true
	})
	return n
}
