package hdf5

import (
	"fmt"
	"io"
)

// Dataset is a typed N-dimensional array in the file, like an HDF5
// dataset. Read and Write accept a file-space selection; the memory
// buffer is packed in the selection's row-major traversal order
// (equivalent to a contiguous memory dataspace in HDF5).
type Dataset struct {
	o    *object
	path string
}

// Path returns the absolute path the dataset was created or opened
// under (e.g. "/Step#0/x"); recovery journals record it so a post-crash
// scan can re-open the dataset by name.
func (d *Dataset) Path() string { return d.path }

// Dtype returns the element type.
func (d *Dataset) Dtype() Datatype { return d.o.dtype }

// Space returns a copy of the dataset's extent with everything selected.
func (d *Dataset) Space() *Dataspace { return &Dataspace{dims: d.o.shape.Dims()} }

// Dims returns the dataset dimensions.
func (d *Dataset) Dims() []uint64 { return d.o.shape.Dims() }

// NBytes returns the total dataset size in bytes.
func (d *Dataset) NBytes() int64 {
	return int64(d.o.shape.Extent()) * int64(d.o.dtype.Size)
}

// Chunked reports whether the dataset uses chunked layout.
func (d *Dataset) Chunked() bool { return d.o.lay.chunked }

// UID returns an opaque comparable token identifying the underlying
// dataset object: handles from separate opens of the same dataset share
// it. Connectors use it as a cache key.
func (d *Dataset) UID() any { return d.o }

// validateTransfer checks the selection against the dataset shape and
// buffer, returning the selection to use and its byte count.
func (d *Dataset) validateTransfer(fspace *Dataspace, buf []byte) (*Dataspace, int64, error) {
	if fspace == nil {
		fspace = d.Space()
	} else {
		if fspace.NDims() != d.o.shape.NDims() {
			return nil, 0, fmt.Errorf("hdf5: selection rank %d vs dataset rank %d",
				fspace.NDims(), d.o.shape.NDims())
		}
		fd, dd := fspace.dims, d.o.shape.dims
		for i := range fd {
			if fd[i] != dd[i] {
				return nil, 0, fmt.Errorf("hdf5: selection extent %v vs dataset extent %v", fd, dd)
			}
		}
	}
	nbytes := int64(fspace.SelectionCount()) * int64(d.o.dtype.Size)
	if int64(len(buf)) != nbytes {
		return nil, 0, fmt.Errorf("hdf5: buffer is %d bytes, selection needs %d", len(buf), nbytes)
	}
	return fspace, nbytes, nil
}

// Write stores buf into the selected region of the dataset. A nil fspace
// selects the whole extent. The driver is charged for nbytes before the
// bytes move.
func (d *Dataset) Write(tp *TransferProps, fspace *Dataspace, buf []byte) error {
	f := d.o.f
	if err := f.checkOpen(); err != nil {
		return err
	}
	fspace, nbytes, err := d.validateTransfer(fspace, buf)
	if err != nil {
		return err
	}
	if err := chargeWrite(f.driver, tp, nbytes); err != nil {
		return err
	}
	tsize := uint64(d.o.dtype.Size)
	var memOff uint64
	if !d.o.lay.chunked {
		base := d.o.lay.addr
		return fspace.EachRun(func(off, n uint64) error {
			b := buf[memOff*tsize : (memOff+n)*tsize]
			memOff += n
			if _, err := f.store.WriteAt(b, base+int64(off*tsize)); err != nil {
				return fmt.Errorf("hdf5: write data: %w", err)
			}
			return nil
		})
	}
	if d.o.lay.deflate {
		return d.writeDeflate(fspace, buf)
	}
	chunkBytes := d.chunkNBytes()
	return fspace.EachRun(func(off, n uint64) error {
		return d.eachChunkPiece(off, n, func(key chunkKey, innerOff, pieceElems uint64) error {
			addr, err := d.chunkAddr(key, chunkBytes, true)
			if err != nil {
				return err
			}
			b := buf[memOff*tsize : (memOff+pieceElems)*tsize]
			memOff += pieceElems
			if _, err := f.store.WriteAt(b, addr+int64(innerOff*tsize)); err != nil {
				return fmt.Errorf("hdf5: write chunk: %w", err)
			}
			return nil
		})
	})
}

// Read fills buf from the selected region. Unallocated chunk regions
// read as zeros (the fill value).
func (d *Dataset) Read(tp *TransferProps, fspace *Dataspace, buf []byte) error {
	f := d.o.f
	if err := f.checkOpen(); err != nil {
		return err
	}
	fspace, nbytes, err := d.validateTransfer(fspace, buf)
	if err != nil {
		return err
	}
	if err := chargeRead(f.driver, tp, nbytes); err != nil {
		return err
	}
	tsize := uint64(d.o.dtype.Size)
	var memOff uint64
	readAt := func(b []byte, addr int64) error {
		if _, err := f.store.ReadAt(b, addr); err != nil && err != io.EOF {
			return fmt.Errorf("hdf5: read data: %w", err)
		}
		return nil
	}
	if !d.o.lay.chunked {
		base := d.o.lay.addr
		return fspace.EachRun(func(off, n uint64) error {
			b := buf[memOff*tsize : (memOff+n)*tsize]
			memOff += n
			return readAt(b, base+int64(off*tsize))
		})
	}
	if d.o.lay.deflate {
		return d.readDeflate(fspace, buf)
	}
	chunkBytes := d.chunkNBytes()
	return fspace.EachRun(func(off, n uint64) error {
		return d.eachChunkPiece(off, n, func(key chunkKey, innerOff, pieceElems uint64) error {
			addr, err := d.chunkAddr(key, chunkBytes, false)
			if err != nil {
				return err
			}
			b := buf[memOff*tsize : (memOff+pieceElems)*tsize]
			memOff += pieceElems
			if addr < 0 { // unallocated chunk: fill value
				for i := range b {
					b[i] = 0
				}
				return nil
			}
			return readAt(b, addr+int64(innerOff*tsize))
		})
	})
}

// ReadNull charges and walks a read of the selection without moving any
// bytes. It exists for simulation-scale runs (NullStore-backed files
// with tens of thousands of ranks) where materializing buffers would
// exhaust host memory: the driver is charged and chunk lookups happen
// exactly as in Read.
func (d *Dataset) ReadNull(tp *TransferProps, fspace *Dataspace) error {
	f := d.o.f
	if err := f.checkOpen(); err != nil {
		return err
	}
	fspace, nbytes, err := d.validateSelection(fspace)
	if err != nil {
		return err
	}
	if err := chargeRead(f.driver, tp, nbytes); err != nil {
		return err
	}
	if !d.o.lay.chunked {
		return nil
	}
	return fspace.EachRun(func(off, n uint64) error {
		return d.eachChunkPiece(off, n, func(chunkKey, uint64, uint64) error { return nil })
	})
}

// WriteNull charges and walks a write of the selection without moving
// any bytes. Chunks are allocated exactly as a real write would allocate
// them. See ReadNull.
func (d *Dataset) WriteNull(tp *TransferProps, fspace *Dataspace) error {
	f := d.o.f
	if err := f.checkOpen(); err != nil {
		return err
	}
	fspace, nbytes, err := d.validateSelection(fspace)
	if err != nil {
		return err
	}
	if err := chargeWrite(f.driver, tp, nbytes); err != nil {
		return err
	}
	if !d.o.lay.chunked {
		return nil
	}
	chunkBytes := d.chunkNBytes()
	return fspace.EachRun(func(off, n uint64) error {
		return d.eachChunkPiece(off, n, func(key chunkKey, _, _ uint64) error {
			_, err := d.chunkAddr(key, chunkBytes, true)
			return err
		})
	})
}

// validateSelection is validateTransfer without a buffer to check.
func (d *Dataset) validateSelection(fspace *Dataspace) (*Dataspace, int64, error) {
	if fspace == nil {
		fspace = d.Space()
	} else if fspace.NDims() != d.o.shape.NDims() {
		return nil, 0, fmt.Errorf("hdf5: selection rank %d vs dataset rank %d",
			fspace.NDims(), d.o.shape.NDims())
	}
	return fspace, int64(fspace.SelectionCount()) * int64(d.o.dtype.Size), nil
}

// eachChunkPiece splits the run starting at linear element offset off
// with n elements (contiguous along the last dimension) at chunk
// boundaries, invoking fn with the chunk's grid coordinate and the
// piece's element offset within the chunk.
func (d *Dataset) eachChunkPiece(off, n uint64, fn func(key chunkKey, innerOff, pieceElems uint64) error) error {
	dims := d.o.shape.dims
	cd := d.o.lay.chunkDims
	nd := len(dims)
	tsize := uint64(d.o.dtype.Size)
	// Decompose the linear offset into coordinates.
	coord := make([]uint64, nd)
	rem := off
	for dim := nd - 1; dim >= 0; dim-- {
		coord[dim] = rem % dims[dim]
		rem /= dims[dim]
	}
	// Row-major strides within a chunk.
	chunkStride := make([]uint64, nd)
	cs := uint64(1)
	for dim := nd - 1; dim >= 0; dim-- {
		chunkStride[dim] = cs
		cs *= cd[dim]
	}
	_ = tsize

	last := nd - 1
	x := coord[last]
	remaining := n
	// Chunk coordinate and intra-chunk offset contributions of the
	// fixed (non-last) dimensions, recomputed whenever the run wraps to
	// the next row.
	var gridBase chunkKey
	var innerBase uint64
	recompute := func() {
		gridBase = chunkKey{}
		innerBase = 0
		for dim := 0; dim < last; dim++ {
			gridBase[dim] = coord[dim] / cd[dim]
			innerBase += (coord[dim] % cd[dim]) * chunkStride[dim]
		}
	}
	recompute()
	for remaining > 0 {
		// Serve the current row up to its end, chunk piece by chunk
		// piece.
		span := dims[last] - x
		if span > remaining {
			span = remaining
		}
		end := x + span
		for x < end {
			cc := x / cd[last]
			x0 := x % cd[last]
			take := cd[last] - x0
			if take > end-x {
				take = end - x
			}
			key := gridBase
			key[last] = cc
			if err := fn(key, innerBase+x0*chunkStride[last], take); err != nil {
				return err
			}
			x += take
			remaining -= take
		}
		if remaining == 0 {
			return nil
		}
		// Wrap to the start of the next row (runs from SelectAll span
		// many rows).
		x = 0
		for dim := last - 1; dim >= 0; dim-- {
			coord[dim]++
			if coord[dim] < dims[dim] {
				break
			}
			coord[dim] = 0
		}
		recompute()
	}
	return nil
}

// chunkNBytes returns the uncompressed byte size of one chunk.
func (d *Dataset) chunkNBytes() int64 {
	n := int64(d.o.dtype.Size)
	for _, c := range d.o.lay.chunkDims {
		n *= int64(c)
	}
	return n
}

// chunkAddr returns the base byte address of the chunk with the given
// grid coordinate, allocating it when requested. Returns -1 for absent
// chunks when allocate is false.
func (d *Dataset) chunkAddr(key chunkKey, chunkBytes int64, allocate bool) (int64, error) {
	f := d.o.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if ce, ok := d.o.lay.chunks.Get(key); ok {
		return ce.addr, nil
	}
	if !allocate {
		return -1, nil
	}
	addr := f.alloc(chunkBytes)
	d.o.lay.chunks.Put(key, chunkEntry{addr: addr, size: chunkBytes})
	return addr, nil
}

// Extend grows the dataset's extent, like H5Dset_extent restricted to
// growth. Only chunked datasets are extendable (contiguous storage is
// allocated at creation); existing data is preserved because chunks are
// keyed by grid coordinates.
func (d *Dataset) Extend(tp *TransferProps, newDims []uint64) error {
	f := d.o.f
	if err := f.checkOpen(); err != nil {
		return err
	}
	if !d.o.lay.chunked {
		return fmt.Errorf("hdf5: Extend on contiguous dataset (chunked layout required)")
	}
	f.mu.Lock()
	old := d.o.shape.dims
	if len(newDims) != len(old) {
		f.mu.Unlock()
		return fmt.Errorf("hdf5: Extend rank %d vs dataset rank %d", len(newDims), len(old))
	}
	for i, nv := range newDims {
		if nv < old[i] {
			f.mu.Unlock()
			return fmt.Errorf("hdf5: Extend would shrink dim %d (%d -> %d)", i, old[i], nv)
		}
	}
	d.o.shape.dims = append([]uint64(nil), newDims...)
	f.mu.Unlock()
	f.driver.MetaOp(tp.proc())
	return nil
}

// NumChunks returns the number of allocated chunks (0 for contiguous
// datasets).
func (d *Dataset) NumChunks() int {
	if !d.o.lay.chunked {
		return 0
	}
	f := d.o.f
	f.mu.Lock()
	defer f.mu.Unlock()
	return d.o.lay.chunks.Len()
}
