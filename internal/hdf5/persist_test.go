package hdf5

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRandomTreePersistenceProperty builds a random object tree (nested
// groups, datasets in every layout/filter combination, attributes),
// closes the file, reopens it from the same store, and verifies the
// complete structure and contents survive — the end-to-end contract of
// the on-disk format.
func TestRandomTreePersistenceProperty(t *testing.T) {
	type dsSpec struct {
		path    string
		dims    []uint64
		chunked bool
		deflate bool
		data    []byte
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		store := NewMemStore()
		file, err := Create(store)
		if err != nil {
			return false
		}
		var specs []dsSpec
		attrs := map[string]int64{} // group path -> attribute value

		var build func(g *Group, path string, depth int)
		build = func(g *Group, path string, depth int) {
			if rng.Intn(2) == 0 {
				v := rng.Int63()
				if g.SetAttrInt64(nil, "meta", v) != nil {
					return
				}
				attrs[path] = v
			}
			nKids := rng.Intn(3) + 1
			for k := 0; k < nKids; k++ {
				name := fmt.Sprintf("n%d", k)
				if depth < 2 && rng.Intn(2) == 0 {
					sub, err := g.CreateGroup(nil, name)
					if err != nil {
						continue
					}
					build(sub, path+"/"+name, depth+1)
					continue
				}
				nd := rng.Intn(2) + 1
				dims := make([]uint64, nd)
				elems := uint64(1)
				for d := range dims {
					dims[d] = uint64(rng.Intn(12) + 1)
					elems *= dims[d]
				}
				spec := dsSpec{
					path:    path + "/" + name,
					dims:    dims,
					chunked: rng.Intn(2) == 0,
				}
				var props *CreateProps
				if spec.chunked {
					chunks := make([]uint64, nd)
					for d := range chunks {
						chunks[d] = uint64(rng.Intn(int(dims[d])) + 1)
					}
					spec.deflate = rng.Intn(2) == 0
					props = &CreateProps{ChunkDims: chunks, Deflate: spec.deflate}
				}
				space, err := NewSimple(dims...)
				if err != nil {
					continue
				}
				ds, err := g.CreateDataset(nil, name, U8, space, props)
				if err != nil {
					continue
				}
				spec.data = make([]byte, elems)
				rng.Read(spec.data)
				if ds.Write(nil, nil, spec.data) != nil {
					return
				}
				specs = append(specs, spec)
			}
		}
		build(file.Root(), "", 0)
		if file.Close(nil) != nil {
			return false
		}

		re, err := Open(store)
		if err != nil {
			return false
		}
		for path, want := range attrs {
			g := re.Root()
			if path != "" {
				if g, err = re.Root().OpenGroup(nil, path); err != nil {
					return false
				}
			}
			if v, err := g.AttrInt64(nil, "meta"); err != nil || v != want {
				return false
			}
		}
		for _, spec := range specs {
			ds, err := re.Root().OpenDataset(nil, spec.path)
			if err != nil {
				return false
			}
			if ds.Chunked() != spec.chunked || ds.Deflated() != spec.deflate {
				return false
			}
			dims := ds.Dims()
			if len(dims) != len(spec.dims) {
				return false
			}
			for d := range dims {
				if dims[d] != spec.dims[d] {
					return false
				}
			}
			out := make([]byte, len(spec.data))
			if ds.Read(nil, nil, out) != nil {
				return false
			}
			if !bytes.Equal(out, spec.data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
