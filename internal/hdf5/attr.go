package hdf5

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Attribute is a small named, typed value attached to a group or
// dataset. Data is stored inline in the object header.
type Attribute struct {
	Name  string
	Dtype Datatype
	Space *Dataspace
	Data  []byte
}

// setAttr adds or replaces an attribute on o.
func (o *object) setAttr(tp *TransferProps, name string, dtype Datatype, space *Dataspace, data []byte) error {
	if err := validateName(name); err != nil {
		return err
	}
	if !dtype.Valid() {
		return fmt.Errorf("hdf5: invalid attribute datatype %v", dtype)
	}
	if space == nil {
		space = NewScalar()
	}
	want := int64(space.Extent()) * int64(dtype.Size)
	if int64(len(data)) != want {
		return fmt.Errorf("hdf5: attribute %q data is %d bytes, space needs %d", name, len(data), want)
	}
	f := o.f
	f.mu.Lock()
	if err := f.checkOpen(); err != nil {
		f.mu.Unlock()
		return err
	}
	entry := attrEntry{
		name:  name,
		dtype: dtype,
		shape: &Dataspace{dims: space.Dims()},
		data:  append([]byte(nil), data...),
	}
	replaced := false
	for i := range o.attrs {
		if o.attrs[i].name == name {
			o.attrs[i] = entry
			replaced = true
			break
		}
	}
	if !replaced {
		o.attrs = append(o.attrs, entry)
	}
	f.mu.Unlock()
	f.driver.MetaOp(tp.proc())
	return nil
}

func (o *object) attr(tp *TransferProps, name string) (Attribute, error) {
	f := o.f
	f.mu.Lock()
	if err := f.checkOpen(); err != nil {
		f.mu.Unlock()
		return Attribute{}, err
	}
	for _, a := range o.attrs {
		if a.name == name {
			out := Attribute{
				Name:  a.name,
				Dtype: a.dtype,
				Space: &Dataspace{dims: a.shape.Dims()},
				Data:  append([]byte(nil), a.data...),
			}
			f.mu.Unlock()
			f.driver.MetaOp(tp.proc())
			return out, nil
		}
	}
	f.mu.Unlock()
	return Attribute{}, fmt.Errorf("%w: attribute %q", ErrNotFound, name)
}

func (o *object) attrNames() []string {
	f := o.f
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(o.attrs))
	for i, a := range o.attrs {
		out[i] = a.name
	}
	return out
}

// SetAttr adds or replaces an attribute on the group.
func (g *Group) SetAttr(tp *TransferProps, name string, dtype Datatype, space *Dataspace, data []byte) error {
	return g.o.setAttr(tp, name, dtype, space, data)
}

// Attr returns the named attribute of the group.
func (g *Group) Attr(tp *TransferProps, name string) (Attribute, error) {
	return g.o.attr(tp, name)
}

// AttrNames lists the group's attributes in creation order.
func (g *Group) AttrNames() []string { return g.o.attrNames() }

// SetAttr adds or replaces an attribute on the dataset.
func (d *Dataset) SetAttr(tp *TransferProps, name string, dtype Datatype, space *Dataspace, data []byte) error {
	return d.o.setAttr(tp, name, dtype, space, data)
}

// Attr returns the named attribute of the dataset.
func (d *Dataset) Attr(tp *TransferProps, name string) (Attribute, error) {
	return d.o.attr(tp, name)
}

// AttrNames lists the dataset's attributes in creation order.
func (d *Dataset) AttrNames() []string { return d.o.attrNames() }

// Scalar attribute conveniences.

// SetAttrInt64 stores a scalar int64 attribute.
func (g *Group) SetAttrInt64(tp *TransferProps, name string, v int64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return g.SetAttr(tp, name, I64, NewScalar(), b[:])
}

// AttrInt64 reads a scalar int64 attribute.
func (g *Group) AttrInt64(tp *TransferProps, name string) (int64, error) {
	return attrInt64(g.o, tp, name)
}

// SetAttrInt64 stores a scalar int64 attribute.
func (d *Dataset) SetAttrInt64(tp *TransferProps, name string, v int64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return d.SetAttr(tp, name, I64, NewScalar(), b[:])
}

// AttrInt64 reads a scalar int64 attribute.
func (d *Dataset) AttrInt64(tp *TransferProps, name string) (int64, error) {
	return attrInt64(d.o, tp, name)
}

func attrInt64(o *object, tp *TransferProps, name string) (int64, error) {
	a, err := o.attr(tp, name)
	if err != nil {
		return 0, err
	}
	if a.Dtype != I64 {
		return 0, fmt.Errorf("hdf5: attribute %q is %v, not int64", name, a.Dtype)
	}
	return int64(binary.LittleEndian.Uint64(a.Data)), nil
}

// SetAttrFloat64 stores a scalar float64 attribute.
func (g *Group) SetAttrFloat64(tp *TransferProps, name string, v float64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return g.SetAttr(tp, name, F64, NewScalar(), b[:])
}

// AttrFloat64 reads a scalar float64 attribute.
func (g *Group) AttrFloat64(tp *TransferProps, name string) (float64, error) {
	a, err := g.o.attr(tp, name)
	if err != nil {
		return 0, err
	}
	if a.Dtype != F64 {
		return 0, fmt.Errorf("hdf5: attribute %q is %v, not float64", name, a.Dtype)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(a.Data)), nil
}

// SetAttrString stores a fixed-length string attribute. Empty strings
// are rejected (the format has no zero-length types).
func (g *Group) SetAttrString(tp *TransferProps, name, v string) error {
	if v == "" {
		return fmt.Errorf("hdf5: empty string attribute %q", name)
	}
	return g.SetAttr(tp, name, FixedString(len(v)), NewScalar(), []byte(v))
}

// AttrString reads a string attribute.
func (g *Group) AttrString(tp *TransferProps, name string) (string, error) {
	a, err := g.o.attr(tp, name)
	if err != nil {
		return "", err
	}
	if a.Dtype.Class != ClassString {
		return "", fmt.Errorf("hdf5: attribute %q is %v, not a string", name, a.Dtype)
	}
	return string(a.Data), nil
}
