package hdf5

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func collectRuns(t *testing.T, s *Dataspace) (offsets, lens []uint64) {
	t.Helper()
	err := s.EachRun(func(off, n uint64) error {
		offsets = append(offsets, off)
		lens = append(lens, n)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return
}

func TestScalarSpace(t *testing.T) {
	s := NewScalar()
	if s.NDims() != 0 || s.Extent() != 1 || s.SelectionCount() != 1 {
		t.Fatalf("scalar: ndims=%d extent=%d count=%d", s.NDims(), s.Extent(), s.SelectionCount())
	}
	off, n := collectRuns(t, s)
	if len(off) != 1 || off[0] != 0 || n[0] != 1 {
		t.Fatalf("scalar runs: %v %v", off, n)
	}
}

func TestSimpleSpaceRejectsZeroDim(t *testing.T) {
	if _, err := NewSimple(4, 0, 2); !errors.Is(err, ErrSelection) {
		t.Fatalf("err = %v", err)
	}
}

func TestSelectAllSingleRun(t *testing.T) {
	s := MustSimple(3, 4, 5)
	if s.Extent() != 60 {
		t.Fatalf("Extent = %d", s.Extent())
	}
	off, n := collectRuns(t, s)
	if len(off) != 1 || off[0] != 0 || n[0] != 60 {
		t.Fatalf("all runs: %v %v", off, n)
	}
}

func TestHyperslab1DContiguous(t *testing.T) {
	s := MustSimple(100)
	if err := s.SelectHyperslab([]uint64{10}, nil, []uint64{1}, []uint64{20}); err != nil {
		t.Fatal(err)
	}
	if s.SelectionCount() != 20 {
		t.Fatalf("count = %d", s.SelectionCount())
	}
	off, n := collectRuns(t, s)
	if len(off) != 1 || off[0] != 10 || n[0] != 20 {
		t.Fatalf("runs: %v %v", off, n)
	}
}

func TestHyperslab1DStrided(t *testing.T) {
	s := MustSimple(100)
	// 5 blocks of 2 elements every 10: offsets 0,10,20,30,40.
	if err := s.SelectHyperslab([]uint64{0}, []uint64{10}, []uint64{5}, []uint64{2}); err != nil {
		t.Fatal(err)
	}
	if s.SelectionCount() != 10 {
		t.Fatalf("count = %d", s.SelectionCount())
	}
	off, n := collectRuns(t, s)
	if len(off) != 5 {
		t.Fatalf("runs: %v %v", off, n)
	}
	for i, o := range off {
		if o != uint64(i*10) || n[i] != 2 {
			t.Fatalf("run %d = (%d,%d), want (%d,2)", i, o, n[i], i*10)
		}
	}
}

func TestHyperslabPackedBlocksCoalesce(t *testing.T) {
	s := MustSimple(100)
	// stride == block → one coalesced run.
	if err := s.SelectHyperslab([]uint64{5}, []uint64{4}, []uint64{6}, []uint64{4}); err != nil {
		t.Fatal(err)
	}
	off, n := collectRuns(t, s)
	if len(off) != 1 || off[0] != 5 || n[0] != 24 {
		t.Fatalf("runs: %v %v", off, n)
	}
}

func TestHyperslab2DRowBlock(t *testing.T) {
	s := MustSimple(8, 10)
	// Rows 2..3, columns 4..6 — two runs of 3.
	if err := s.SelectHyperslab([]uint64{2, 4}, nil, []uint64{1, 1}, []uint64{2, 3}); err != nil {
		t.Fatal(err)
	}
	off, n := collectRuns(t, s)
	want := []uint64{2*10 + 4, 3*10 + 4}
	if len(off) != 2 || off[0] != want[0] || off[1] != want[1] || n[0] != 3 || n[1] != 3 {
		t.Fatalf("runs: %v %v, want offsets %v len 3", off, n, want)
	}
}

func TestHyperslab3DRunOrder(t *testing.T) {
	s := MustSimple(2, 3, 4)
	if err := s.SelectHyperslab([]uint64{0, 1, 0}, nil, []uint64{2, 2, 1}, []uint64{1, 1, 4}); err != nil {
		t.Fatal(err)
	}
	off, n := collectRuns(t, s)
	// planes 0 and 1, rows 1 and 2, all 4 columns.
	want := []uint64{4, 8, 16, 20}
	if len(off) != 4 {
		t.Fatalf("runs: %v %v", off, n)
	}
	for i := range want {
		if off[i] != want[i] || n[i] != 4 {
			t.Fatalf("run %d = (%d,%d), want (%d,4)", i, off[i], n[i], want[i])
		}
	}
}

func TestHyperslabValidation(t *testing.T) {
	s := MustSimple(10, 10)
	cases := []struct {
		name                        string
		start, stride, count, block []uint64
	}{
		{"rank mismatch", []uint64{0}, nil, []uint64{1}, nil},
		{"beyond extent", []uint64{5, 0}, nil, []uint64{1, 1}, []uint64{6, 1}},
		{"stride overlap", []uint64{0, 0}, []uint64{1, 1}, []uint64{2, 1}, []uint64{2, 1}},
		{"zero block", []uint64{0, 0}, nil, []uint64{1, 1}, []uint64{0, 1}},
		{"strided overflow", []uint64{0, 0}, []uint64{5, 5}, []uint64{3, 1}, []uint64{1, 1}},
	}
	for _, c := range cases {
		if err := s.SelectHyperslab(c.start, c.stride, c.count, c.block); !errors.Is(err, ErrSelection) {
			t.Errorf("%s: err = %v, want ErrSelection", c.name, err)
		}
	}
}

func TestEmptySelection(t *testing.T) {
	s := MustSimple(10)
	if err := s.SelectHyperslab([]uint64{0}, nil, []uint64{0}, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if s.SelectionCount() != 0 {
		t.Fatalf("count = %d", s.SelectionCount())
	}
	off, _ := collectRuns(t, s)
	if len(off) != 0 {
		t.Fatalf("empty selection produced runs: %v", off)
	}
}

func TestSelectAllResets(t *testing.T) {
	s := MustSimple(10)
	if err := s.SelectHyperslab([]uint64{0}, nil, []uint64{1}, []uint64{3}); err != nil {
		t.Fatal(err)
	}
	s.SelectAll()
	if s.SelectionCount() != 10 {
		t.Fatalf("count after SelectAll = %d", s.SelectionCount())
	}
}

func TestCopyIsIndependent(t *testing.T) {
	s := MustSimple(10)
	if err := s.SelectHyperslab([]uint64{2}, nil, []uint64{1}, []uint64{3}); err != nil {
		t.Fatal(err)
	}
	c := s.Copy()
	s.SelectAll()
	if c.SelectionCount() != 3 {
		t.Fatalf("copy selection count = %d after original reset", c.SelectionCount())
	}
}

// TestRunsCoverSelectionExactlyProperty checks, for random regular
// hyperslabs on random shapes, that EachRun emits exactly the selected
// coordinates, in strictly increasing order, with total length equal to
// SelectionCount.
func TestRunsCoverSelectionExactlyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nd := rng.Intn(3) + 1
		dims := make([]uint64, nd)
		for i := range dims {
			dims[i] = uint64(rng.Intn(12) + 1)
		}
		s := MustSimple(dims...)
		start := make([]uint64, nd)
		stride := make([]uint64, nd)
		count := make([]uint64, nd)
		block := make([]uint64, nd)
		for d := 0; d < nd; d++ {
			start[d] = uint64(rng.Intn(int(dims[d])))
			maxBlock := dims[d] - start[d]
			block[d] = uint64(rng.Intn(int(maxBlock)) + 1)
			stride[d] = block[d] + uint64(rng.Intn(4))
			// max count so selection stays in bounds
			maxCount := (dims[d] - start[d] - block[d]) / stride[d]
			count[d] = uint64(rng.Intn(int(maxCount+1)) + 1)
		}
		if err := s.SelectHyperslab(start, stride, count, block); err != nil {
			return false
		}
		// Reference: enumerate selected linear offsets with nested loops.
		sel := map[uint64]bool{}
		var rec func(d int, base uint64)
		rowStride := make([]uint64, nd)
		rs := uint64(1)
		for d := nd - 1; d >= 0; d-- {
			rowStride[d] = rs
			rs *= dims[d]
		}
		rec = func(d int, base uint64) {
			if d == nd {
				sel[base] = true
				return
			}
			for c := uint64(0); c < count[d]; c++ {
				for b := uint64(0); b < block[d]; b++ {
					pos := start[d] + c*stride[d] + b
					rec(d+1, base+pos*rowStride[d])
				}
			}
		}
		rec(0, 0)

		var got []uint64
		var total uint64
		prevEnd := int64(-1)
		ok := true
		err := s.EachRun(func(off, n uint64) error {
			if int64(off) <= prevEnd {
				ok = false
			}
			prevEnd = int64(off + n - 1)
			total += n
			for i := uint64(0); i < n; i++ {
				got = append(got, off+i)
			}
			return nil
		})
		if err != nil || !ok {
			return false
		}
		if total != s.SelectionCount() || len(got) != len(sel) {
			return false
		}
		for _, o := range got {
			if !sel[o] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEachRunPropagatesError(t *testing.T) {
	s := MustSimple(10)
	if err := s.SelectHyperslab([]uint64{0}, []uint64{2}, []uint64{5}, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop")
	calls := 0
	err := s.EachRun(func(uint64, uint64) error {
		calls++
		if calls == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) || calls != 2 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestSelectPoints1D(t *testing.T) {
	s := MustSimple(20)
	if err := s.SelectPoints([][]uint64{{3}, {17}, {5}}); err != nil {
		t.Fatal(err)
	}
	if s.SelectionCount() != 3 {
		t.Fatalf("count = %d", s.SelectionCount())
	}
	off, n := collectRuns(t, s)
	want := []uint64{3, 17, 5} // visit order preserved
	for i := range want {
		if off[i] != want[i] || n[i] != 1 {
			t.Fatalf("runs = %v %v", off, n)
		}
	}
}

func TestSelectPoints2DRoundtripThroughDataset(t *testing.T) {
	f, _ := Create(NewMemStore())
	ds, err := f.Root().CreateDataset(nil, "p", U8, MustSimple(4, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	sel := MustSimple(4, 4)
	if err := sel.SelectPoints([][]uint64{{0, 0}, {1, 2}, {3, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := ds.Write(nil, sel, []byte{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	full := make([]byte, 16)
	if err := ds.Read(nil, nil, full); err != nil {
		t.Fatal(err)
	}
	if full[0] != 10 || full[1*4+2] != 20 || full[3*4+3] != 30 {
		t.Fatalf("point writes misplaced: %v", full)
	}
	back := make([]byte, 3)
	if err := ds.Read(nil, sel, back); err != nil {
		t.Fatal(err)
	}
	if back[0] != 10 || back[1] != 20 || back[2] != 30 {
		t.Fatalf("point readback = %v", back)
	}
}

func TestSelectPointsValidation(t *testing.T) {
	s := MustSimple(4, 4)
	if err := s.SelectPoints([][]uint64{{1}}); !errors.Is(err, ErrSelection) {
		t.Errorf("rank mismatch: %v", err)
	}
	if err := s.SelectPoints([][]uint64{{4, 0}}); !errors.Is(err, ErrSelection) {
		t.Errorf("out of extent: %v", err)
	}
	if err := s.SelectPoints([][]uint64{{1, 1}, {1, 1}}); !errors.Is(err, ErrSelection) {
		t.Errorf("duplicate: %v", err)
	}
}

func TestSelectPointsResetAndInterplay(t *testing.T) {
	s := MustSimple(10)
	if err := s.SelectPoints([][]uint64{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	// Hyperslab selection replaces points.
	if err := s.SelectHyperslab([]uint64{0}, nil, []uint64{1}, []uint64{5}); err != nil {
		t.Fatal(err)
	}
	if s.SelectionCount() != 5 {
		t.Fatalf("count after hyperslab = %d", s.SelectionCount())
	}
	if err := s.SelectPoints([][]uint64{{9}}); err != nil {
		t.Fatal(err)
	}
	if s.SelectionCount() != 1 {
		t.Fatalf("count after points = %d", s.SelectionCount())
	}
	s.SelectAll()
	if s.SelectionCount() != 10 {
		t.Fatalf("count after SelectAll = %d", s.SelectionCount())
	}
	// Copies carry point selections.
	if err := s.SelectPoints([][]uint64{{7}}); err != nil {
		t.Fatal(err)
	}
	c := s.Copy()
	s.SelectAll()
	if c.SelectionCount() != 1 {
		t.Fatalf("copy lost point selection")
	}
	if c.String() == s.String() {
		t.Fatal("String must distinguish selections")
	}
}
