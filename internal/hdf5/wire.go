package hdf5

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// writer accumulates little-endian encoded metadata.
type writer struct {
	buf []byte
}

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) bytes(b []byte) {
	w.buf = append(w.buf, b...)
}

// str writes a u16-length-prefixed string. Only object and attribute
// names reach here, and validateName bounds them to maxNameLen, so the
// length panic is a programmer-error invariant (an unvalidated call
// site), not a user-reachable failure.
func (w *writer) str(s string) {
	if len(s) > 0xFFFF {
		panic(fmt.Sprintf("hdf5: string too long (%d bytes)", len(s)))
	}
	w.u16(uint16(len(s)))
	w.buf = append(w.buf, s...)
}

// checksum appends a CRC32 (Castagnoli) over everything written so far.
func (w *writer) checksum() {
	w.u32(crc32.Checksum(w.buf, crcTable))
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// reader decodes little-endian metadata with sticky error state, so
// parse code reads linearly and checks once.
type reader struct {
	buf []byte
	off int
	err error
}

func newReader(b []byte) *reader { return &reader{buf: b} }

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.fail("truncated at offset %d (need %d of %d)", r.off, n, len(r.buf))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) str() string {
	n := int(r.u16())
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// verifyChecksum checks that the final 4 bytes of buf are the CRC32 of
// the rest, and returns the payload.
func verifyChecksum(buf []byte) ([]byte, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("%w: block shorter than checksum", ErrCorrupt)
	}
	payload := buf[:len(buf)-4]
	want := binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (got %08x, want %08x)", ErrCorrupt, got, want)
	}
	return payload, nil
}
