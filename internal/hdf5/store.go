// Package hdf5 implements a self-describing hierarchical container
// library modeled on HDF5: a single file holds a tree of groups,
// typed N-dimensional datasets with contiguous or chunked layout,
// attributes, and hyperslab-selectable parallel reads and writes.
//
// It is the substrate the paper's evaluation drives through H5Dread /
// H5Dwrite. The format is a simplified HDF5 analog (superblock, object
// headers with typed messages, B+tree chunk indexes, CRC32-guarded
// metadata), not the HDF5 wire format itself. Data moves for real through
// a pluggable Store; time is charged through a pluggable Driver so the
// same library runs both as an ordinary storage library (wall-clock,
// NopDriver) and inside the discrete-event simulation (virtual-clock
// file-system models).
package hdf5

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Store is the byte-addressable backing a File lives in. Implementations
// must be safe for concurrent use: parallel ranks write disjoint regions
// of raw data concurrently.
type Store interface {
	io.ReaderAt
	io.WriterAt
	// Size returns the current extent in bytes.
	Size() int64
	// Truncate sets the extent; growing zero-fills.
	Truncate(int64) error
	// Sync flushes buffered state to durable storage where applicable.
	Sync() error
}

// MemStore is an in-memory Store. The zero value is an empty store ready
// to use.
type MemStore struct {
	mu  sync.RWMutex
	buf []byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// ReadAt implements io.ReaderAt. Reads beyond the extent return io.EOF
// after the available bytes, matching os.File semantics.
func (m *MemStore) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("hdf5: negative read offset %d", off)
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	if off >= int64(len(m.buf)) {
		return 0, io.EOF
	}
	n := copy(p, m.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt, growing the store as needed.
func (m *MemStore) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("hdf5: negative write offset %d", off)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(m.buf)) {
		grown := make([]byte, end)
		copy(grown, m.buf)
		m.buf = grown
	}
	copy(m.buf[off:end], p)
	return len(p), nil
}

// Size returns the store extent.
func (m *MemStore) Size() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return int64(len(m.buf))
}

// Truncate sets the extent.
func (m *MemStore) Truncate(n int64) error {
	if n < 0 {
		return fmt.Errorf("hdf5: negative truncate %d", n)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if n <= int64(len(m.buf)) {
		m.buf = m.buf[:n]
	} else {
		grown := make([]byte, n)
		copy(grown, m.buf)
		m.buf = grown
	}
	return nil
}

// Sync is a no-op for memory.
func (m *MemStore) Sync() error { return nil }

// FileStore is a Store over an *os.File.
type FileStore struct {
	f *os.File
}

// NewFileStore wraps an already-open file.
func NewFileStore(f *os.File) *FileStore { return &FileStore{f: f} }

// CreateFileStore creates (truncating) the named file.
func CreateFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("hdf5: create store: %w", err)
	}
	return &FileStore{f: f}, nil
}

// OpenFileStore opens the named file read-write.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("hdf5: open store: %w", err)
	}
	return &FileStore{f: f}, nil
}

// ReadAt implements io.ReaderAt.
func (s *FileStore) ReadAt(p []byte, off int64) (int, error) { return s.f.ReadAt(p, off) }

// WriteAt implements io.WriterAt.
func (s *FileStore) WriteAt(p []byte, off int64) (int, error) { return s.f.WriteAt(p, off) }

// Size returns the file size.
func (s *FileStore) Size() int64 {
	fi, err := s.f.Stat()
	if err != nil {
		return 0
	}
	return fi.Size()
}

// Truncate sets the file size.
func (s *FileStore) Truncate(n int64) error { return s.f.Truncate(n) }

// Sync fsyncs the file.
func (s *FileStore) Sync() error { return s.f.Sync() }

// Close closes the underlying file.
func (s *FileStore) Close() error { return s.f.Close() }

// NullStore tracks the extent but discards all data; reads return zeros.
// Large-scale simulation runs use it so a 12,288-rank experiment does not
// materialize hundreds of gigabytes — the library still performs every
// allocation, layout, and metadata computation it would against a real
// store. Metadata durability is obviously lost: files on a NullStore
// cannot be re-opened.
type NullStore struct {
	mu   sync.Mutex
	size int64
}

// NewNullStore returns an empty discarding store.
func NewNullStore() *NullStore { return &NullStore{} }

// ReadAt returns zeros within the extent.
func (n *NullStore) ReadAt(p []byte, off int64) (int, error) {
	n.mu.Lock()
	size := n.size
	n.mu.Unlock()
	if off >= size {
		return 0, io.EOF
	}
	avail := size - off
	k := int64(len(p))
	if k > avail {
		k = avail
	}
	for i := int64(0); i < k; i++ {
		p[i] = 0
	}
	if k < int64(len(p)) {
		return int(k), io.EOF
	}
	return int(k), nil
}

// WriteAt discards data, extending the tracked size.
func (n *NullStore) WriteAt(p []byte, off int64) (int, error) {
	n.mu.Lock()
	if end := off + int64(len(p)); end > n.size {
		n.size = end
	}
	n.mu.Unlock()
	return len(p), nil
}

// Size returns the tracked extent.
func (n *NullStore) Size() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.size
}

// Truncate sets the tracked extent.
func (n *NullStore) Truncate(sz int64) error {
	n.mu.Lock()
	n.size = sz
	n.mu.Unlock()
	return nil
}

// Sync is a no-op.
func (n *NullStore) Sync() error { return nil }

// ErrClosed is returned by operations on a closed File.
var ErrClosed = errors.New("hdf5: file closed")

// ErrNotFound is returned when a named link does not exist.
var ErrNotFound = errors.New("hdf5: object not found")

// ErrExists is returned when creating a link that already exists.
var ErrExists = errors.New("hdf5: object already exists")

// ErrCorrupt is returned when on-disk metadata fails validation.
var ErrCorrupt = errors.New("hdf5: corrupt metadata")
