package hdf5

import (
	"fmt"
	"strings"
)

// Group is a directory of named objects, like an HDF5 group.
type Group struct {
	o    *object
	path string
}

// Path returns the absolute path the group was created or opened under
// ("/" for the root).
func (g *Group) Path() string { return g.path }

// joinPath appends a (possibly multi-component) relative path to a base
// group path, collapsing empty components.
func joinPath(base, rel string) string {
	var b strings.Builder
	b.WriteString(strings.TrimSuffix(base, "/"))
	for rest := rel; rest != ""; {
		var part string
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			part, rest = rest[:i], rest[i+1:]
		} else {
			part, rest = rest, ""
		}
		if part == "" {
			continue
		}
		b.WriteByte('/')
		b.WriteString(part)
	}
	if b.Len() == 0 {
		return "/"
	}
	return b.String()
}

// CreateProps configures dataset creation (the HDF5 DCPL analog).
type CreateProps struct {
	// ChunkDims switches the dataset to chunked layout with the given
	// chunk shape (same rank as the dataspace). Nil means contiguous.
	ChunkDims []uint64
	// Deflate enables per-chunk DEFLATE compression (the H5Pset_deflate
	// filter). Requires chunked layout.
	Deflate bool
}

// maxNameLen bounds object and attribute names to what the wire format
// can encode (a u16 length prefix — see writer.str).
const maxNameLen = 0xFFFF

// validateName rejects empty names, path separators, and names too long
// for the wire format; creation is one component at a time, as in
// H5Gcreate/H5Dcreate with relative names. Because every name entering
// the file passes this check, writer.str's length panic is an internal
// invariant rather than a user-reachable failure.
func validateName(name string) error {
	if name == "" {
		return fmt.Errorf("hdf5: empty object name")
	}
	if strings.Contains(name, "/") {
		return fmt.Errorf("hdf5: name %q must be a single path component", name)
	}
	if len(name) > maxNameLen {
		return fmt.Errorf("hdf5: name is %d bytes, limit %d", len(name), maxNameLen)
	}
	return nil
}

// CreateGroup creates a child group.
func (g *Group) CreateGroup(tp *TransferProps, name string) (*Group, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	f := g.o.f
	f.mu.Lock()
	if err := f.checkOpen(); err != nil {
		f.mu.Unlock()
		return nil, err
	}
	if _, exists := g.o.links.Get(name); exists {
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	child := &object{f: f, kind: kindGroup, links: newLinkTable()}
	g.o.links.Put(name, &link{name: name, kind: kindGroup, obj: child})
	f.mu.Unlock()
	// Time charges never run under f.mu: a virtual-time sleep while
	// holding a real mutex would wedge the whole simulation.
	f.driver.MetaOp(tp.proc())
	return &Group{o: child, path: joinPath(g.path, name)}, nil
}

// resolveLocked walks one path component, loading it from disk if needed.
func (g *Group) resolveLocked(name string) (*object, error) {
	l, ok := g.o.links.Get(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if l.obj == nil {
		o, err := g.o.f.loadObject(l.addr)
		if err != nil {
			return nil, fmt.Errorf("loading %q: %w", name, err)
		}
		l.obj = o
	}
	return l.obj, nil
}

// walk resolves a possibly multi-component path relative to g. Leading
// and repeated slashes are tolerated.
func (g *Group) walk(tp *TransferProps, path string) (*object, error) {
	f := g.o.f
	f.mu.Lock()
	if err := f.checkOpen(); err != nil {
		f.mu.Unlock()
		return nil, err
	}
	cur := g.o
	hops := 0
	var walkErr error
	// Iterate components without strings.Split: walk runs once per
	// dataset operation, and the split's slice allocation shows up in
	// whole-simulation profiles.
	for rest := path; rest != ""; {
		var part string
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			part, rest = rest[:i], rest[i+1:]
		} else {
			part, rest = rest, ""
		}
		if part == "" {
			continue
		}
		if cur.kind != kindGroup {
			walkErr = fmt.Errorf("hdf5: %q is not a group", part)
			break
		}
		o, err := (&Group{o: cur}).resolveLocked(part)
		if err != nil {
			walkErr = err
			break
		}
		hops++
		cur = o
	}
	f.mu.Unlock()
	for i := 0; i < hops; i++ {
		f.driver.MetaOp(tp.proc())
	}
	if walkErr != nil {
		return nil, walkErr
	}
	return cur, nil
}

// OpenGroup opens a group by path relative to g (absolute-style paths
// are treated as relative to g too; use File.Root for "/").
func (g *Group) OpenGroup(tp *TransferProps, path string) (*Group, error) {
	o, err := g.walk(tp, path)
	if err != nil {
		return nil, err
	}
	if o.kind != kindGroup {
		return nil, fmt.Errorf("hdf5: %q is not a group", path)
	}
	return &Group{o: o, path: joinPath(g.path, path)}, nil
}

// OpenDataset opens a dataset by path relative to g.
func (g *Group) OpenDataset(tp *TransferProps, path string) (*Dataset, error) {
	o, err := g.walk(tp, path)
	if err != nil {
		return nil, err
	}
	if o.kind != kindDataset {
		return nil, fmt.Errorf("hdf5: %q is not a dataset", path)
	}
	return &Dataset{o: o, path: joinPath(g.path, path)}, nil
}

// Exists reports whether a direct child with the given name exists.
func (g *Group) Exists(name string) bool {
	f := g.o.f
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := g.o.links.Get(name)
	return ok
}

// List returns the names of direct children in lexicographic order.
func (g *Group) List() []string {
	f := g.o.f
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, g.o.links.Len())
	g.o.links.Ascend(func(name string, _ *link) bool {
		out = append(out, name)
		return true
	})
	return out
}

// CreateDataset creates a child dataset with the given element type and
// shape. props may be nil for contiguous layout; contiguous storage is
// allocated eagerly, chunked storage on first touch per chunk.
func (g *Group) CreateDataset(tp *TransferProps, name string, dtype Datatype, space *Dataspace, props *CreateProps) (*Dataset, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	if !dtype.Valid() {
		return nil, fmt.Errorf("hdf5: invalid datatype %v", dtype)
	}
	if space == nil {
		return nil, fmt.Errorf("hdf5: nil dataspace")
	}
	f := g.o.f
	f.mu.Lock()
	if err := f.checkOpen(); err != nil {
		f.mu.Unlock()
		return nil, err
	}
	if _, exists := g.o.links.Get(name); exists {
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	ds := &object{
		f:     f,
		kind:  kindDataset,
		dtype: dtype,
		shape: &Dataspace{dims: space.Dims()},
	}
	if props != nil && props.ChunkDims != nil {
		if len(props.ChunkDims) != space.NDims() {
			f.mu.Unlock()
			return nil, fmt.Errorf("hdf5: chunk rank %d vs dataspace rank %d",
				len(props.ChunkDims), space.NDims())
		}
		if len(props.ChunkDims) > maxRank {
			f.mu.Unlock()
			return nil, fmt.Errorf("hdf5: chunked rank %d exceeds maximum %d",
				len(props.ChunkDims), maxRank)
		}
		for d, c := range props.ChunkDims {
			if c == 0 {
				f.mu.Unlock()
				return nil, fmt.Errorf("hdf5: zero chunk dimension %d", d)
			}
		}
		ds.lay = layout{
			chunked:   true,
			deflate:   props.Deflate,
			chunkDims: append([]uint64(nil), props.ChunkDims...),
			chunks:    newChunkIndex(),
		}
	} else if props != nil && props.Deflate {
		f.mu.Unlock()
		return nil, fmt.Errorf("hdf5: the deflate filter requires chunked layout")
	} else {
		size := int64(space.Extent()) * int64(dtype.Size)
		ds.lay = layout{addr: f.alloc(size), size: size}
	}
	g.o.links.Put(name, &link{name: name, kind: kindDataset, obj: ds})
	f.mu.Unlock()
	f.driver.MetaOp(tp.proc())
	return &Dataset{o: ds, path: joinPath(g.path, name)}, nil
}
