package hdf5

import (
	"asyncio/internal/trace"
	"asyncio/internal/vclock"
)

// Driver charges virtual time for the I/O a File performs. The library
// separates byte movement (always real, through the Store) from time
// (charged here), so the same code runs as a plain storage library with
// NopDriver or inside the discrete-event simulation with a file-system
// model driver (see internal/pfs).
//
// Calls receive the acting process from the operation's TransferProps;
// a nil process means "untimed" and implementations must treat it as a
// no-op.
type Driver interface {
	// WriteData charges the time to move nbytes from memory to storage.
	WriteData(p *vclock.Proc, nbytes int64)
	// ReadData charges the time to move nbytes from storage to memory.
	ReadData(p *vclock.Proc, nbytes int64)
	// MetaOp charges one metadata round trip (create/open/attribute).
	MetaOp(p *vclock.Proc)
}

// SpanDriver is optionally implemented by drivers that record transfer
// timing onto a request's trace span (internal/pfs does). When a
// transfer carries a span and the file's driver implements SpanDriver,
// the library routes the charge through these entry points instead of
// WriteData/ReadData; the time charged must be identical either way.
type SpanDriver interface {
	WriteDataSpan(p *vclock.Proc, nbytes int64, sp *trace.Span)
	ReadDataSpan(p *vclock.Proc, nbytes int64, sp *trace.Span)
}

// FallibleDriver is optionally implemented by drivers whose charges can
// fail — fault injection makes internal/pfs targets return transient
// errors and outages. When the file's driver implements it, the library
// routes data charges through these entry points and propagates the
// error to the caller; sp may be nil. The time charged on success must
// be identical to the plain Driver path.
type FallibleDriver interface {
	TryWriteData(p *vclock.Proc, nbytes int64, sp *trace.Span) error
	TryReadData(p *vclock.Proc, nbytes int64, sp *trace.Span) error
}

// NopDriver charges nothing; it is the default for plain library use.
type NopDriver struct{}

// WriteData implements Driver.
func (NopDriver) WriteData(*vclock.Proc, int64) {}

// ReadData implements Driver.
func (NopDriver) ReadData(*vclock.Proc, int64) {}

// MetaOp implements Driver.
func (NopDriver) MetaOp(*vclock.Proc) {}

// TransferProps parameterizes one data-transfer call, mirroring HDF5's
// dataset-transfer property list (DXPL). Proc identifies the acting
// virtual-clock process; nil performs the operation untimed. Span, when
// non-nil, receives trace events for the transfer and is forwarded to
// span-aware drivers.
type TransferProps struct {
	Proc *vclock.Proc
	Span *trace.Span
}

// proc returns the acting process of tp, tolerating a nil receiver.
func (tp *TransferProps) proc() *vclock.Proc {
	if tp == nil {
		return nil
	}
	return tp.Proc
}

// span returns the trace span of tp, tolerating a nil receiver.
func (tp *TransferProps) span() *trace.Span {
	if tp == nil {
		return nil
	}
	return tp.Span
}

// chargeWrite charges a data write on d, preferring the fallible entry
// point when the driver has one, and otherwise routing through the
// span-aware entry point when both a span and a SpanDriver are present.
func chargeWrite(d Driver, tp *TransferProps, nbytes int64) error {
	if fd, ok := d.(FallibleDriver); ok {
		return fd.TryWriteData(tp.proc(), nbytes, tp.span())
	}
	if sp := tp.span(); sp != nil {
		if sd, ok := d.(SpanDriver); ok {
			sd.WriteDataSpan(tp.proc(), nbytes, sp)
			return nil
		}
	}
	d.WriteData(tp.proc(), nbytes)
	return nil
}

// chargeRead is chargeWrite for reads.
func chargeRead(d Driver, tp *TransferProps, nbytes int64) error {
	if fd, ok := d.(FallibleDriver); ok {
		return fd.TryReadData(tp.proc(), nbytes, tp.span())
	}
	if sp := tp.span(); sp != nil {
		if sd, ok := d.(SpanDriver); ok {
			sd.ReadDataSpan(tp.proc(), nbytes, sp)
			return nil
		}
	}
	d.ReadData(tp.proc(), nbytes)
	return nil
}
