package hdf5

import "asyncio/internal/vclock"

// Driver charges virtual time for the I/O a File performs. The library
// separates byte movement (always real, through the Store) from time
// (charged here), so the same code runs as a plain storage library with
// NopDriver or inside the discrete-event simulation with a file-system
// model driver (see internal/pfs).
//
// Calls receive the acting process from the operation's TransferProps;
// a nil process means "untimed" and implementations must treat it as a
// no-op.
type Driver interface {
	// WriteData charges the time to move nbytes from memory to storage.
	WriteData(p *vclock.Proc, nbytes int64)
	// ReadData charges the time to move nbytes from storage to memory.
	ReadData(p *vclock.Proc, nbytes int64)
	// MetaOp charges one metadata round trip (create/open/attribute).
	MetaOp(p *vclock.Proc)
}

// NopDriver charges nothing; it is the default for plain library use.
type NopDriver struct{}

// WriteData implements Driver.
func (NopDriver) WriteData(*vclock.Proc, int64) {}

// ReadData implements Driver.
func (NopDriver) ReadData(*vclock.Proc, int64) {}

// MetaOp implements Driver.
func (NopDriver) MetaOp(*vclock.Proc) {}

// TransferProps parameterizes one data-transfer call, mirroring HDF5's
// dataset-transfer property list (DXPL). Proc identifies the acting
// virtual-clock process; nil performs the operation untimed.
type TransferProps struct {
	Proc *vclock.Proc
}

// proc returns the acting process of tp, tolerating a nil receiver.
func (tp *TransferProps) proc() *vclock.Proc {
	if tp == nil {
		return nil
	}
	return tp.Proc
}
