package hdf5

import (
	"fmt"
	"sync"
	"sync/atomic"

	"asyncio/internal/vclock"
)

const (
	superMagic   = "\x89AHD\r\n\x1a\n" // HDF5-style signature, 8 bytes
	superVersion = 1
	superSize    = 64 // reserved superblock region at offset 0
)

// File is an open container. One File may be shared by many simulated
// ranks: metadata operations are serialized internally, raw data
// transfers to disjoint regions proceed concurrently.
type File struct {
	mu     sync.Mutex
	store  Store
	driver Driver
	eof    int64
	root   *object
	closed atomic.Bool
}

// FileOption configures Create and Open.
type FileOption func(*File)

// WithDriver attaches a timing driver (see Driver). The default is
// NopDriver.
func WithDriver(d Driver) FileOption {
	return func(f *File) { f.driver = d }
}

// Create initializes a fresh container on store, destroying any previous
// content.
func Create(store Store, opts ...FileOption) (*File, error) {
	f := &File{store: store, driver: NopDriver{}, eof: superSize}
	for _, o := range opts {
		o(f)
	}
	if err := store.Truncate(0); err != nil {
		return nil, fmt.Errorf("hdf5: create: %w", err)
	}
	f.root = &object{f: f, kind: kindGroup, links: newLinkTable()}
	return f, nil
}

// Open loads an existing container from store.
func Open(store Store, opts ...FileOption) (*File, error) {
	f := &File{store: store, driver: NopDriver{}}
	for _, o := range opts {
		o(f)
	}
	hdr := make([]byte, superSize)
	if _, err := store.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("hdf5: open: reading superblock: %w", err)
	}
	// Superblock layout: magic(8) version(1) rootAddr(8) eof(8) crc(4).
	const sbLen = 8 + 1 + 8 + 8 + 4
	payload, err := verifyChecksum(hdr[:sbLen])
	if err != nil {
		return nil, fmt.Errorf("hdf5: open: %w", err)
	}
	r := newReader(payload)
	if string(r.take(8)) != superMagic {
		return nil, fmt.Errorf("%w: bad superblock signature", ErrCorrupt)
	}
	if v := r.u8(); v != superVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	rootAddr := int64(r.u64())
	f.eof = int64(r.u64())
	if r.err != nil {
		return nil, r.err
	}
	root, err := f.loadObject(rootAddr)
	if err != nil {
		return nil, fmt.Errorf("hdf5: open: loading root group: %w", err)
	}
	if root.kind != kindGroup {
		return nil, fmt.Errorf("%w: root object is not a group", ErrCorrupt)
	}
	f.root = root
	f.root.addr = rootAddr
	return f, nil
}

// Root returns the root group ("/").
func (f *File) Root() *Group { return &Group{o: f.root, path: "/"} }

// alloc reserves n bytes and returns their address. Space is never
// reclaimed (like classic HDF5 without repacking); flushed metadata is
// rewritten at fresh addresses.
func (f *File) alloc(n int64) int64 {
	addr := f.eof
	f.eof += n
	return addr
}

// Flush serializes all loaded metadata and the superblock to the store.
// The time cost is charged as one metadata operation per flushed object,
// after the lock is released (time charges never run under f.mu); the
// store sync — the fsync barrier — also runs after the lock drops, so a
// ProcSyncer store may sleep the flushing process for its modeled cost.
func (f *File) Flush(tp *TransferProps) error {
	f.mu.Lock()
	if err := f.checkOpen(); err != nil {
		f.mu.Unlock()
		return err
	}
	nops, err := f.flushLocked()
	f.mu.Unlock()
	f.chargeMeta(tp, nops)
	if err != nil {
		return err
	}
	return f.syncStore(tp)
}

// ProcSyncer is a Store whose fsync carries a modeled time cost charged
// to the flushing process (pfs.DurableStore). Plain stores fall back to
// the uncharged Sync.
type ProcSyncer interface {
	SyncOn(p *vclock.Proc) error
}

// syncStore issues the store's durability barrier on behalf of tp. Must
// be called without f.mu held: a charged sync sleeps the process, and
// virtual time cannot advance while other ranks spin on the file lock.
func (f *File) syncStore(tp *TransferProps) error {
	if ps, ok := f.store.(ProcSyncer); ok {
		return ps.SyncOn(tp.proc())
	}
	return f.store.Sync()
}

// flushLocked writes all metadata and returns how many metadata
// operations to charge. Caller holds f.mu; the store sync is the
// caller's job (syncStore, outside the lock).
func (f *File) flushLocked() (int, error) {
	nops := 0
	if err := f.writeObject(f.root, &nops); err != nil {
		return nops, err
	}
	w := &writer{}
	w.bytes([]byte(superMagic))
	w.u8(superVersion)
	w.u64(uint64(f.root.addr))
	w.u64(uint64(f.eof))
	w.checksum()
	nops++
	if _, err := f.store.WriteAt(w.buf, 0); err != nil {
		return nops, fmt.Errorf("hdf5: flush superblock: %w", err)
	}
	return nops, nil
}

func (f *File) chargeMeta(tp *TransferProps, n int) {
	for i := 0; i < n; i++ {
		f.driver.MetaOp(tp.proc())
	}
}

// ChargeMetaOps charges n metadata operations to the file's driver on
// behalf of tp. Asynchronous connectors use it to move metadata charges
// from the calling process to their background stream.
func (f *File) ChargeMetaOps(tp *TransferProps, n int) {
	f.chargeMeta(tp, n)
}

// writeObject serializes o and all its loaded descendants (post-order,
// so parents embed fresh child addresses), counting metadata operations
// in nops.
func (f *File) writeObject(o *object, nops *int) error {
	if o.kind == kindGroup {
		var err error
		o.links.Ascend(func(_ string, l *link) bool {
			if l.obj != nil {
				if err = f.writeObject(l.obj, nops); err != nil {
					return false
				}
				l.addr = l.obj.addr
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	buf := o.encode()
	// Prefix with total length so readers know how much to fetch.
	w := &writer{}
	w.u32(uint32(len(buf)))
	w.bytes(buf)
	o.addr = f.alloc(int64(len(w.buf)))
	*nops++
	if _, err := f.store.WriteAt(w.buf, o.addr); err != nil {
		return fmt.Errorf("hdf5: write object header: %w", err)
	}
	return nil
}

// loadObject reads and decodes the object header at addr.
func (f *File) loadObject(addr int64) (*object, error) {
	var lenBuf [4]byte
	if _, err := f.store.ReadAt(lenBuf[:], addr); err != nil {
		return nil, fmt.Errorf("hdf5: read object length at %d: %w", addr, err)
	}
	n := int64(newReader(lenBuf[:]).u32())
	if n <= 0 || n > 1<<30 {
		return nil, fmt.Errorf("%w: implausible object header size %d", ErrCorrupt, n)
	}
	buf := make([]byte, n)
	if _, err := f.store.ReadAt(buf, addr+4); err != nil {
		return nil, fmt.Errorf("hdf5: read object header at %d: %w", addr, err)
	}
	o, err := decodeObject(f, buf)
	if err != nil {
		return nil, err
	}
	o.addr = addr
	return o, nil
}

// Close flushes metadata and marks the file closed. The Store is not
// closed; the caller owns it.
func (f *File) Close(tp *TransferProps) error {
	f.mu.Lock()
	if f.closed.Load() {
		f.mu.Unlock()
		return nil
	}
	nops, err := f.flushLocked()
	if err == nil {
		f.closed.Store(true)
	}
	f.mu.Unlock()
	f.chargeMeta(tp, nops)
	if err != nil {
		return err
	}
	return f.syncStore(tp)
}

// Store returns the backing store, e.g. to re-open the container after
// Close.
func (f *File) Store() Store { return f.store }

// Closed reports whether the file has been closed.
func (f *File) Closed() bool { return f.closed.Load() }

// EOF returns the current allocation high-water mark, i.e. the logical
// file size.
func (f *File) EOF() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.eof
}

// checkOpen is safe to call with or without f.mu held.
func (f *File) checkOpen() error {
	if f.closed.Load() {
		return ErrClosed
	}
	return nil
}
