package hdf5

import (
	"fmt"

	"asyncio/internal/btree"
)

type objKind uint8

const (
	kindGroup   objKind = 1
	kindDataset objKind = 2
)

// Object header message types.
const (
	msgLinkTable uint16 = 1
	msgDatatype  uint16 = 2
	msgDataspace uint16 = 3
	msgLayout    uint16 = 4
	msgAttribute uint16 = 5
)

const (
	ohdrMagic    = "OHDR"
	linkOrder    = 32 // B+tree order for group link tables
	chunkOrder   = 64 // B+tree order for chunk indexes
	layoutContig = 0
	layoutChunk  = 1
)

// object is the in-memory form of any named thing in the file: a group
// or a dataset. It mirrors an HDF5 object header.
type object struct {
	f    *File
	kind objKind
	addr int64 // address of the serialized header; 0 if never flushed

	// Group state.
	links *btree.Tree[string, *link]

	// Dataset state.
	dtype Datatype
	shape *Dataspace
	lay   layout

	// Attributes, common to both kinds. Kept ordered by creation.
	attrs []attrEntry
}

// link is a directory entry in a group. obj is nil until the child is
// loaded from disk.
type link struct {
	name string
	kind objKind
	addr int64
	obj  *object
}

type attrEntry struct {
	name  string
	dtype Datatype
	shape *Dataspace
	data  []byte
}

type layout struct {
	chunked bool
	// Contiguous layout.
	addr int64
	size int64
	// Chunked layout. Chunks are keyed by their N-D grid coordinates
	// (not a linear index), so the index survives Extend growing the
	// dataset.
	chunkDims []uint64
	deflate   bool
	chunks    *btree.Tree[chunkKey, chunkEntry]
}

// chunkKey is a chunk's grid coordinate, padded to maxRank and ordered
// lexicographically.
type chunkKey [maxRank]uint64

// maxRank bounds dataset dimensionality (HDF5's own limit is 32; 8
// covers every workload here).
const maxRank = 8

func chunkKeyLess(a, b chunkKey) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

type chunkEntry struct {
	addr int64
	size int64
}

func newLinkTable() *btree.Tree[string, *link] {
	return btree.New[string, *link](linkOrder, func(a, b string) bool { return a < b })
}

func newChunkIndex() *btree.Tree[chunkKey, chunkEntry] {
	return btree.New[chunkKey, chunkEntry](chunkOrder, chunkKeyLess)
}

// encode serializes the object header (without writing it). Child links
// must already have resolved addresses.
func (o *object) encode() []byte {
	w := &writer{}
	w.bytes([]byte(ohdrMagic))
	w.u8(uint8(o.kind))
	switch o.kind {
	case kindGroup:
		w.u16(msgLinkTable)
		lw := &writer{}
		lw.u32(uint32(o.links.Len()))
		o.links.Ascend(func(name string, l *link) bool {
			lw.str(name)
			lw.u8(uint8(l.kind))
			lw.u64(uint64(l.addr))
			return true
		})
		w.u32(uint32(len(lw.buf)))
		w.bytes(lw.buf)
	case kindDataset:
		w.u16(msgDatatype)
		tw := &writer{}
		o.dtype.encode(tw)
		w.u32(uint32(len(tw.buf)))
		w.bytes(tw.buf)

		w.u16(msgDataspace)
		sw := &writer{}
		o.shape.encode(sw)
		w.u32(uint32(len(sw.buf)))
		w.bytes(sw.buf)

		w.u16(msgLayout)
		yw := &writer{}
		if !o.lay.chunked {
			yw.u8(layoutContig)
			yw.u64(uint64(o.lay.addr))
			yw.u64(uint64(o.lay.size))
		} else {
			yw.u8(layoutChunk)
			var flags uint8
			if o.lay.deflate {
				flags |= 1
			}
			yw.u8(flags)
			yw.u8(uint8(len(o.lay.chunkDims)))
			for _, d := range o.lay.chunkDims {
				yw.u64(d)
			}
			yw.u32(uint32(o.lay.chunks.Len()))
			nd := len(o.lay.chunkDims)
			o.lay.chunks.Ascend(func(key chunkKey, ce chunkEntry) bool {
				for d := 0; d < nd; d++ {
					yw.u64(key[d])
				}
				yw.u64(uint64(ce.addr))
				yw.u64(uint64(ce.size))
				return true
			})
		}
		w.u32(uint32(len(yw.buf)))
		w.bytes(yw.buf)
	}
	for _, a := range o.attrs {
		w.u16(msgAttribute)
		aw := &writer{}
		aw.str(a.name)
		a.dtype.encode(aw)
		a.shape.encode(aw)
		aw.u32(uint32(len(a.data)))
		aw.bytes(a.data)
		w.u32(uint32(len(aw.buf)))
		w.bytes(aw.buf)
	}
	w.checksum()
	return w.buf
}

// decodeObject parses a serialized object header.
func decodeObject(f *File, buf []byte) (*object, error) {
	payload, err := verifyChecksum(buf)
	if err != nil {
		return nil, err
	}
	r := newReader(payload)
	if string(r.take(len(ohdrMagic))) != ohdrMagic {
		return nil, fmt.Errorf("%w: bad object header magic", ErrCorrupt)
	}
	o := &object{f: f, kind: objKind(r.u8())}
	if o.kind != kindGroup && o.kind != kindDataset {
		return nil, fmt.Errorf("%w: unknown object kind %d", ErrCorrupt, o.kind)
	}
	if o.kind == kindGroup {
		o.links = newLinkTable()
	}
	for r.err == nil && r.off < len(payload) {
		mtype := r.u16()
		mlen := int(r.u32())
		body := r.take(mlen)
		if r.err != nil {
			break
		}
		mr := newReader(body)
		switch mtype {
		case msgLinkTable:
			n := int(mr.u32())
			for i := 0; i < n && mr.err == nil; i++ {
				name := mr.str()
				kind := objKind(mr.u8())
				addr := int64(mr.u64())
				o.links.Put(name, &link{name: name, kind: kind, addr: addr})
			}
		case msgDatatype:
			o.dtype = decodeDatatype(mr)
		case msgDataspace:
			o.shape = decodeDataspace(mr)
		case msgLayout:
			switch mr.u8() {
			case layoutContig:
				o.lay.addr = int64(mr.u64())
				o.lay.size = int64(mr.u64())
			case layoutChunk:
				o.lay.chunked = true
				flags := mr.u8()
				o.lay.deflate = flags&1 != 0
				nd := int(mr.u8())
				o.lay.chunkDims = make([]uint64, nd)
				for i := range o.lay.chunkDims {
					o.lay.chunkDims[i] = mr.u64()
				}
				o.lay.chunks = newChunkIndex()
				n := int(mr.u32())
				if nd > maxRank {
					mr.fail("chunk rank %d exceeds max %d", nd, maxRank)
				}
				for i := 0; i < n && mr.err == nil; i++ {
					var key chunkKey
					for d := 0; d < nd; d++ {
						key[d] = mr.u64()
					}
					addr := int64(mr.u64())
					size := int64(mr.u64())
					o.lay.chunks.Put(key, chunkEntry{addr: addr, size: size})
				}
			default:
				mr.fail("unknown layout class")
			}
		case msgAttribute:
			a := attrEntry{name: mr.str()}
			a.dtype = decodeDatatype(mr)
			a.shape = decodeDataspace(mr)
			dl := int(mr.u32())
			a.data = append([]byte(nil), mr.take(dl)...)
			o.attrs = append(o.attrs, a)
		default:
			// Unknown messages are skipped for forward compatibility.
		}
		if mr.err != nil {
			return nil, mr.err
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if o.kind == kindDataset {
		if !o.dtype.Valid() || o.shape == nil {
			return nil, fmt.Errorf("%w: dataset header missing type or shape", ErrCorrupt)
		}
		if o.lay.chunked && o.lay.chunks == nil {
			return nil, fmt.Errorf("%w: chunked dataset without chunk index", ErrCorrupt)
		}
	}
	return o, nil
}
