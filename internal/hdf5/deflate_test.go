package hdf5

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDeflateRoundtripFullWrite(t *testing.T) {
	f, _ := Create(NewMemStore())
	ds, err := f.Root().CreateDataset(nil, "z", I32, MustSimple(10, 10),
		&CreateProps{ChunkDims: []uint64{4, 4}, Deflate: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Deflated() || !ds.Chunked() {
		t.Fatal("filter flags wrong")
	}
	in := make([]int32, 100)
	for i := range in {
		in[i] = int32(i)
	}
	if err := ds.Write(nil, nil, Int32sToBytes(in)); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 400)
	if err := ds.Read(nil, nil, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, Int32sToBytes(in)) {
		t.Fatal("deflate roundtrip mismatch")
	}
}

func TestDeflateCompressesRepetitiveData(t *testing.T) {
	f, _ := Create(NewMemStore())
	ds, err := f.Root().CreateDataset(nil, "z", U8, MustSimple(1<<16),
		&CreateProps{ChunkDims: []uint64{1 << 12}, Deflate: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Write(nil, nil, bytes.Repeat([]byte{7}, 1<<16)); err != nil {
		t.Fatal(err)
	}
	if stored := ds.StoredBytes(); stored > (1<<16)/10 {
		t.Fatalf("stored %d bytes for 64 KiB of constant data; filter not compressing", stored)
	}
}

func TestDeflatePartialWriteRMW(t *testing.T) {
	f, _ := Create(NewMemStore())
	ds, err := f.Root().CreateDataset(nil, "z", U8, MustSimple(8, 8),
		&CreateProps{ChunkDims: []uint64{4, 4}, Deflate: true})
	if err != nil {
		t.Fatal(err)
	}
	base := make([]byte, 64)
	for i := range base {
		base[i] = byte(i)
	}
	if err := ds.Write(nil, nil, base); err != nil {
		t.Fatal(err)
	}
	// Overwrite a 2x2 tile crossing nothing, then a 4x4 tile crossing all
	// four chunks.
	sel := MustSimple(8, 8)
	if err := sel.SelectHyperslab([]uint64{2, 2}, nil, []uint64{1, 1}, []uint64{4, 4}); err != nil {
		t.Fatal(err)
	}
	patch := bytes.Repeat([]byte{0xAA}, 16)
	if err := ds.Write(nil, sel, patch); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 64)
	if err := ds.Read(nil, nil, out); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			want := byte(r*8 + c)
			if r >= 2 && r < 6 && c >= 2 && c < 6 {
				want = 0xAA
			}
			if out[r*8+c] != want {
				t.Fatalf("(%d,%d) = %#x, want %#x", r, c, out[r*8+c], want)
			}
		}
	}
}

func TestDeflateSparseReadsZeros(t *testing.T) {
	f, _ := Create(NewMemStore())
	ds, err := f.Root().CreateDataset(nil, "z", U8, MustSimple(64),
		&CreateProps{ChunkDims: []uint64{16}, Deflate: true})
	if err != nil {
		t.Fatal(err)
	}
	sel := MustSimple(64)
	if err := sel.SelectHyperslab([]uint64{16}, nil, []uint64{1}, []uint64{16}); err != nil {
		t.Fatal(err)
	}
	if err := ds.Write(nil, sel, bytes.Repeat([]byte{1}, 16)); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 64)
	if err := ds.Read(nil, nil, out); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		want := byte(0)
		if i >= 16 && i < 32 {
			want = 1
		}
		if v != want {
			t.Fatalf("elem %d = %d, want %d", i, v, want)
		}
	}
}

func TestDeflatePersistsAcrossReopen(t *testing.T) {
	store := NewMemStore()
	f, _ := Create(store)
	ds, err := f.Root().CreateDataset(nil, "z", I64, MustSimple(32),
		&CreateProps{ChunkDims: []uint64{8}, Deflate: true})
	if err != nil {
		t.Fatal(err)
	}
	in := make([]int64, 32)
	for i := range in {
		in[i] = int64(i * i)
	}
	if err := ds.Write(nil, nil, Int64sToBytes(in)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(nil); err != nil {
		t.Fatal(err)
	}
	f2, err := Open(store)
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := f2.Root().OpenDataset(nil, "z")
	if err != nil {
		t.Fatal(err)
	}
	if !ds2.Deflated() {
		t.Fatal("deflate flag lost across reopen")
	}
	out := make([]byte, 32*8)
	if err := ds2.Read(nil, nil, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, Int64sToBytes(in)) {
		t.Fatal("deflate persistence mismatch")
	}
}

func TestDeflateRequiresChunking(t *testing.T) {
	f, _ := Create(NewMemStore())
	if _, err := f.Root().CreateDataset(nil, "z", U8, MustSimple(8),
		&CreateProps{Deflate: true}); err == nil {
		t.Fatal("contiguous deflate accepted")
	}
}

func TestDeflateExtendAndAppend(t *testing.T) {
	f, _ := Create(NewMemStore())
	ds, err := f.Root().CreateDataset(nil, "z", U8, MustSimple(8),
		&CreateProps{ChunkDims: []uint64{4}, Deflate: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Write(nil, nil, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	if err := ds.Extend(nil, []uint64{12}); err != nil {
		t.Fatal(err)
	}
	sel := MustSimple(12)
	if err := sel.SelectHyperslab([]uint64{8}, nil, []uint64{1}, []uint64{4}); err != nil {
		t.Fatal(err)
	}
	if err := ds.Write(nil, sel, []byte{9, 10, 11, 12}); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 12)
	if err := ds.Read(nil, nil, out); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != byte(i+1) {
			t.Fatalf("elem %d = %d", i, v)
		}
	}
}

// TestDeflateMatchesUncompressedProperty: random tile writes against a
// deflate dataset and a plain chunked dataset must read back
// identically.
func TestDeflateMatchesUncompressedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const H, W = 12, 12
		file, _ := Create(NewMemStore())
		plain, err := file.Root().CreateDataset(nil, "p", U8, MustSimple(H, W),
			&CreateProps{ChunkDims: []uint64{5, 3}})
		if err != nil {
			return false
		}
		zipped, err := file.Root().CreateDataset(nil, "zp", U8, MustSimple(H, W),
			&CreateProps{ChunkDims: []uint64{5, 3}, Deflate: true})
		if err != nil {
			return false
		}
		for k := 0; k < 8; k++ {
			r0, c0 := rng.Intn(H), rng.Intn(W)
			h, w := rng.Intn(H-r0)+1, rng.Intn(W-c0)+1
			sel := MustSimple(H, W)
			if err := sel.SelectHyperslab(
				[]uint64{uint64(r0), uint64(c0)}, nil,
				[]uint64{1, 1}, []uint64{uint64(h), uint64(w)}); err != nil {
				return false
			}
			tile := make([]byte, h*w)
			rng.Read(tile)
			if plain.Write(nil, sel, tile) != nil || zipped.Write(nil, sel, append([]byte(nil), tile...)) != nil {
				return false
			}
		}
		a := make([]byte, H*W)
		b := make([]byte, H*W)
		if plain.Read(nil, nil, a) != nil || zipped.Read(nil, nil, b) != nil {
			return false
		}
		return bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
