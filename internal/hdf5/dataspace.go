package hdf5

import (
	"errors"
	"fmt"
)

// ErrSelection is returned for invalid hyperslab selections.
var ErrSelection = errors.New("hdf5: invalid selection")

// Dataspace describes the extent of a dataset or attribute — an
// N-dimensional array shape — plus the current selection within it.
// A fresh Dataspace selects everything.
//
// Selections follow HDF5's regular-hyperslab model: per-dimension start,
// stride, count and block. Element traversal order is row-major
// (C order), and data buffers passed to Dataset.Read/Write are packed in
// that traversal order.
type Dataspace struct {
	dims   []uint64
	sel    *hyperslab // nil means the whole extent
	points []uint64   // element-list selection (linear offsets), or nil
}

type hyperslab struct {
	start, stride, count, block []uint64
}

// NewScalar returns a zero-dimensional space holding a single element.
func NewScalar() *Dataspace { return &Dataspace{} }

// NewSimple returns a simple dataspace with the given dimensions. Every
// dimension must be positive.
func NewSimple(dims ...uint64) (*Dataspace, error) {
	for i, d := range dims {
		if d == 0 {
			return nil, fmt.Errorf("%w: zero-sized dimension %d", ErrSelection, i)
		}
	}
	return &Dataspace{dims: append([]uint64(nil), dims...)}, nil
}

// MustSimple is NewSimple for statically known shapes; it panics on error.
func MustSimple(dims ...uint64) *Dataspace {
	s, err := NewSimple(dims...)
	if err != nil {
		panic(err)
	}
	return s
}

// NDims returns the rank of the space (0 for scalar).
func (s *Dataspace) NDims() int { return len(s.dims) }

// Dims returns a copy of the dimensions.
func (s *Dataspace) Dims() []uint64 { return append([]uint64(nil), s.dims...) }

// Extent returns the total number of elements in the full space.
func (s *Dataspace) Extent() uint64 {
	n := uint64(1)
	for _, d := range s.dims {
		n *= d
	}
	return n
}

// Copy returns an independent copy of the space and its selection.
func (s *Dataspace) Copy() *Dataspace {
	c := &Dataspace{dims: append([]uint64(nil), s.dims...)}
	c.points = append([]uint64(nil), s.points...)
	if s.sel != nil {
		c.sel = &hyperslab{
			start:  append([]uint64(nil), s.sel.start...),
			stride: append([]uint64(nil), s.sel.stride...),
			count:  append([]uint64(nil), s.sel.count...),
			block:  append([]uint64(nil), s.sel.block...),
		}
	}
	return c
}

// SelectAll selects the entire extent.
func (s *Dataspace) SelectAll() {
	s.sel = nil
	s.points = nil
}

// SelectHyperslab selects a regular hyperslab. A nil block defaults to
// all-ones; a nil stride defaults to the block (packed blocks). Strides
// smaller than blocks (overlapping selections) are rejected, as are
// selections extending beyond the extent.
func (s *Dataspace) SelectHyperslab(start, stride, count, block []uint64) error {
	n := len(s.dims)
	if len(start) != n || len(count) != n {
		return fmt.Errorf("%w: start/count rank %d/%d vs space rank %d",
			ErrSelection, len(start), len(count), n)
	}
	if block == nil {
		block = make([]uint64, n)
		for i := range block {
			block[i] = 1
		}
	}
	if len(block) != n {
		return fmt.Errorf("%w: block rank %d vs space rank %d", ErrSelection, len(block), n)
	}
	if stride == nil {
		stride = append([]uint64(nil), block...)
	}
	if len(stride) != n {
		return fmt.Errorf("%w: stride rank %d vs space rank %d", ErrSelection, len(stride), n)
	}
	for d := 0; d < n; d++ {
		if block[d] == 0 {
			return fmt.Errorf("%w: zero block in dim %d", ErrSelection, d)
		}
		if stride[d] < block[d] {
			return fmt.Errorf("%w: overlapping blocks in dim %d (stride %d < block %d)",
				ErrSelection, d, stride[d], block[d])
		}
		if count[d] == 0 {
			continue
		}
		last := start[d] + (count[d]-1)*stride[d] + block[d]
		if last > s.dims[d] {
			return fmt.Errorf("%w: dim %d selection reaches %d beyond extent %d",
				ErrSelection, d, last, s.dims[d])
		}
	}
	s.sel = &hyperslab{
		start:  append([]uint64(nil), start...),
		stride: append([]uint64(nil), stride...),
		count:  append([]uint64(nil), count...),
		block:  append([]uint64(nil), block...),
	}
	s.points = nil
	return nil
}

// SelectionCount returns the number of selected elements.
func (s *Dataspace) SelectionCount() uint64 {
	if s.points != nil {
		return uint64(len(s.points))
	}
	if s.sel == nil {
		return s.Extent()
	}
	n := uint64(1)
	for d := range s.dims {
		n *= s.sel.count[d] * s.sel.block[d]
	}
	return n
}

// EachRun calls fn for every maximal contiguous run of selected
// elements, in row-major traversal order. offset is the linear element
// offset of the run within the full extent; n is the run length in
// elements. Iteration stops on the first error, which is returned.
func (s *Dataspace) EachRun(fn func(offset, n uint64) error) error {
	if s.points != nil {
		for _, off := range s.points {
			if err := fn(off, 1); err != nil {
				return err
			}
		}
		return nil
	}
	if s.SelectionCount() == 0 {
		return nil
	}
	if s.sel == nil {
		return fn(0, s.Extent())
	}
	nd := len(s.dims)
	// rowStride[d] = elements per unit step in dimension d.
	rowStride := make([]uint64, nd)
	rs := uint64(1)
	for d := nd - 1; d >= 0; d-- {
		rowStride[d] = rs
		rs *= s.dims[d]
	}
	sel := s.sel
	last := nd - 1
	// Fast path for the last dimension: packed blocks coalesce into one
	// run per row.
	lastPacked := sel.stride[last] == sel.block[last] || sel.count[last] == 1
	emitRow := func(base uint64) error {
		rowBase := base + sel.start[last]
		if lastPacked {
			return fn(rowBase, sel.count[last]*sel.block[last])
		}
		for c := uint64(0); c < sel.count[last]; c++ {
			if err := fn(rowBase+c*sel.stride[last], sel.block[last]); err != nil {
				return err
			}
		}
		return nil
	}
	if nd == 1 {
		return emitRow(0)
	}
	// Odometer over dims [0, last): each position enumerates
	// count[d]*block[d] coordinates.
	idx := make([]uint64, last)
	for {
		base := uint64(0)
		for d := 0; d < last; d++ {
			pos := sel.start[d] + (idx[d]/sel.block[d])*sel.stride[d] + idx[d]%sel.block[d]
			base += pos * rowStride[d]
		}
		if err := emitRow(base); err != nil {
			return err
		}
		// Increment odometer, rightmost fastest.
		d := last - 1
		for d >= 0 {
			idx[d]++
			if idx[d] < sel.count[d]*sel.block[d] {
				break
			}
			idx[d] = 0
			d--
		}
		if d < 0 {
			return nil
		}
	}
}

// String renders the extent and selection, e.g.
// "[100]{start:[10] stride:[1] count:[20] block:[1]}". It is stable and
// unique per (extent, selection), so callers may use it as a cache key.
func (s *Dataspace) String() string {
	if s.points != nil {
		return fmt.Sprintf("%v{points:%v}", s.dims, s.points)
	}
	if s.sel == nil {
		return fmt.Sprintf("%v{all}", s.dims)
	}
	return fmt.Sprintf("%v{start:%v stride:%v count:%v block:%v}",
		s.dims, s.sel.start, s.sel.stride, s.sel.count, s.sel.block)
}

func (s *Dataspace) encode(w *writer) {
	w.u8(uint8(len(s.dims)))
	for _, d := range s.dims {
		w.u64(d)
	}
}

func decodeDataspace(r *reader) *Dataspace {
	nd := int(r.u8())
	dims := make([]uint64, nd)
	for i := range dims {
		dims[i] = r.u64()
		if r.err == nil && dims[i] == 0 {
			r.fail("zero dimension %d in stored dataspace", i)
		}
	}
	return &Dataspace{dims: dims}
}

// SelectPoints selects an explicit list of element coordinates (HDF5's
// H5Sselect_elements). Points are visited in the order given; each
// becomes a run of one element. Duplicate points are rejected for
// writes' sake (they would make write order significant).
func (s *Dataspace) SelectPoints(points [][]uint64) error {
	n := len(s.dims)
	seen := make(map[uint64]struct{}, len(points))
	linear := make([]uint64, 0, len(points))
	for pi, pt := range points {
		if len(pt) != n {
			return fmt.Errorf("%w: point %d rank %d vs space rank %d",
				ErrSelection, pi, len(pt), n)
		}
		var off uint64
		stride := uint64(1)
		for d := n - 1; d >= 0; d-- {
			if pt[d] >= s.dims[d] {
				return fmt.Errorf("%w: point %d coordinate %d out of extent %v",
					ErrSelection, pi, pt[d], s.dims)
			}
			off += pt[d] * stride
			stride *= s.dims[d]
		}
		if _, dup := seen[off]; dup {
			return fmt.Errorf("%w: duplicate point %v", ErrSelection, pt)
		}
		seen[off] = struct{}{}
		linear = append(linear, off)
	}
	s.sel = nil
	s.points = linear
	return nil
}
