package hdf5

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestCreateWriteReadContiguous(t *testing.T) {
	f, err := Create(NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	ds, err := f.Root().CreateDataset(nil, "x", F64, MustSimple(100), nil)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, 100)
	for i := range in {
		in[i] = float64(i) * 1.5
	}
	if err := ds.Write(nil, nil, Float64sToBytes(in)); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 800)
	if err := ds.Read(nil, nil, out); err != nil {
		t.Fatal(err)
	}
	got := BytesToFloat64s(out)
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("elem %d = %v, want %v", i, got[i], in[i])
		}
	}
}

func TestHyperslabWriteReadBack(t *testing.T) {
	f, _ := Create(NewMemStore())
	ds, err := f.Root().CreateDataset(nil, "d", I32, MustSimple(10, 10), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Write a 3x4 tile at (2,3).
	sel := MustSimple(10, 10)
	if err := sel.SelectHyperslab([]uint64{2, 3}, nil, []uint64{1, 1}, []uint64{3, 4}); err != nil {
		t.Fatal(err)
	}
	tile := make([]int32, 12)
	for i := range tile {
		tile[i] = int32(i + 1)
	}
	if err := ds.Write(nil, sel, Int32sToBytes(tile)); err != nil {
		t.Fatal(err)
	}
	// Read everything and check placement.
	full := make([]byte, 400)
	if err := ds.Read(nil, nil, full); err != nil {
		t.Fatal(err)
	}
	grid := BytesToInt32s(full)
	for r := 0; r < 10; r++ {
		for c := 0; c < 10; c++ {
			want := int32(0)
			if r >= 2 && r < 5 && c >= 3 && c < 7 {
				want = int32((r-2)*4 + (c - 3) + 1)
			}
			if grid[r*10+c] != want {
				t.Fatalf("(%d,%d) = %d, want %d", r, c, grid[r*10+c], want)
			}
		}
	}
	// Read back just the tile.
	back := make([]byte, 48)
	if err := ds.Read(nil, sel, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, Int32sToBytes(tile)) {
		t.Fatal("tile readback mismatch")
	}
}

func TestChunkedWriteReadBack(t *testing.T) {
	f, _ := Create(NewMemStore())
	props := &CreateProps{ChunkDims: []uint64{4, 4}}
	ds, err := f.Root().CreateDataset(nil, "c", I32, MustSimple(10, 10), props)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Chunked() {
		t.Fatal("dataset not chunked")
	}
	in := make([]int32, 100)
	for i := range in {
		in[i] = int32(i * 7)
	}
	if err := ds.Write(nil, nil, Int32sToBytes(in)); err != nil {
		t.Fatal(err)
	}
	// 10/4 → 3x3 grid of chunks, all touched by a full write.
	if n := ds.NumChunks(); n != 9 {
		t.Fatalf("NumChunks = %d, want 9", n)
	}
	out := make([]byte, 400)
	if err := ds.Read(nil, nil, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, Int32sToBytes(in)) {
		t.Fatal("chunked roundtrip mismatch")
	}
}

func TestChunkedSparseReadsZeros(t *testing.T) {
	f, _ := Create(NewMemStore())
	props := &CreateProps{ChunkDims: []uint64{8}}
	ds, err := f.Root().CreateDataset(nil, "s", I64, MustSimple(64), props)
	if err != nil {
		t.Fatal(err)
	}
	// Write only elements 16..23 (exactly chunk 2).
	sel := MustSimple(64)
	if err := sel.SelectHyperslab([]uint64{16}, nil, []uint64{1}, []uint64{8}); err != nil {
		t.Fatal(err)
	}
	vals := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if err := ds.Write(nil, sel, Int64sToBytes(vals)); err != nil {
		t.Fatal(err)
	}
	if n := ds.NumChunks(); n != 1 {
		t.Fatalf("NumChunks = %d, want 1", n)
	}
	full := make([]byte, 64*8)
	if err := ds.Read(nil, nil, full); err != nil {
		t.Fatal(err)
	}
	got := BytesToInt64s(full)
	for i, v := range got {
		want := int64(0)
		if i >= 16 && i < 24 {
			want = vals[i-16]
		}
		if v != want {
			t.Fatalf("elem %d = %d, want %d", i, v, want)
		}
	}
}

func TestChunkBoundaryCrossingRun(t *testing.T) {
	f, _ := Create(NewMemStore())
	props := &CreateProps{ChunkDims: []uint64{5}}
	ds, err := f.Root().CreateDataset(nil, "b", U8, MustSimple(17), props)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]byte, 17)
	for i := range in {
		in[i] = byte(i + 1)
	}
	if err := ds.Write(nil, nil, in); err != nil {
		t.Fatal(err)
	}
	// 17/5 → 4 chunks (last partial).
	if n := ds.NumChunks(); n != 4 {
		t.Fatalf("NumChunks = %d, want 4", n)
	}
	out := make([]byte, 17)
	if err := ds.Read(nil, nil, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Fatalf("roundtrip: got %v want %v", out, in)
	}
}

func TestBufferSizeValidation(t *testing.T) {
	f, _ := Create(NewMemStore())
	ds, _ := f.Root().CreateDataset(nil, "v", F32, MustSimple(10), nil)
	if err := ds.Write(nil, nil, make([]byte, 39)); err == nil {
		t.Fatal("short buffer accepted")
	}
	if err := ds.Read(nil, nil, make([]byte, 41)); err == nil {
		t.Fatal("long buffer accepted")
	}
	// Wrong-extent selection.
	if err := ds.Write(nil, MustSimple(11), make([]byte, 44)); err == nil {
		t.Fatal("mismatched selection extent accepted")
	}
	if err := ds.Write(nil, MustSimple(10, 1), make([]byte, 40)); err == nil {
		t.Fatal("mismatched selection rank accepted")
	}
}

func TestGroupHierarchyAndPaths(t *testing.T) {
	f, _ := Create(NewMemStore())
	a, err := f.Root().CreateGroup(nil, "a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := a.CreateGroup(nil, "b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateDataset(nil, "d", I64, MustSimple(4), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Root().OpenDataset(nil, "a/b/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Root().OpenDataset(nil, "/a/b/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Root().OpenGroup(nil, "a/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Root().OpenDataset(nil, "a/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	// Opening a group as dataset and vice versa.
	if _, err := f.Root().OpenDataset(nil, "a/b"); err == nil {
		t.Fatal("opened group as dataset")
	}
	if _, err := f.Root().OpenGroup(nil, "a/b/d"); err == nil {
		t.Fatal("opened dataset as group")
	}
}

func TestDuplicateNamesRejected(t *testing.T) {
	f, _ := Create(NewMemStore())
	if _, err := f.Root().CreateGroup(nil, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Root().CreateGroup(nil, "x"); !errors.Is(err, ErrExists) {
		t.Fatalf("group: err = %v", err)
	}
	if _, err := f.Root().CreateDataset(nil, "x", I8, MustSimple(1), nil); !errors.Is(err, ErrExists) {
		t.Fatalf("dataset: err = %v", err)
	}
}

func TestNameValidation(t *testing.T) {
	f, _ := Create(NewMemStore())
	if _, err := f.Root().CreateGroup(nil, ""); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := f.Root().CreateGroup(nil, "a/b"); err == nil {
		t.Fatal("path name accepted")
	}
}

func TestListSorted(t *testing.T) {
	f, _ := Create(NewMemStore())
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := f.Root().CreateGroup(nil, n); err != nil {
			t.Fatal(err)
		}
	}
	got := f.Root().List()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List = %v, want %v", got, want)
		}
	}
	if !f.Root().Exists("mid") || f.Root().Exists("nope") {
		t.Fatal("Exists wrong")
	}
}

func TestAttributes(t *testing.T) {
	f, _ := Create(NewMemStore())
	g, _ := f.Root().CreateGroup(nil, "g")
	if err := g.SetAttrInt64(nil, "steps", 2000); err != nil {
		t.Fatal(err)
	}
	if err := g.SetAttrFloat64(nil, "dt", 0.25); err != nil {
		t.Fatal(err)
	}
	if err := g.SetAttrString(nil, "code", "vpic"); err != nil {
		t.Fatal(err)
	}
	if v, err := g.AttrInt64(nil, "steps"); err != nil || v != 2000 {
		t.Fatalf("steps = %d, %v", v, err)
	}
	if v, err := g.AttrFloat64(nil, "dt"); err != nil || v != 0.25 {
		t.Fatalf("dt = %v, %v", v, err)
	}
	if v, err := g.AttrString(nil, "code"); err != nil || v != "vpic" {
		t.Fatalf("code = %q, %v", v, err)
	}
	// Replacement.
	if err := g.SetAttrInt64(nil, "steps", 4000); err != nil {
		t.Fatal(err)
	}
	if v, _ := g.AttrInt64(nil, "steps"); v != 4000 {
		t.Fatalf("steps after replace = %d", v)
	}
	names := g.AttrNames()
	if len(names) != 3 || names[0] != "steps" {
		t.Fatalf("AttrNames = %v", names)
	}
	if _, err := g.Attr(nil, "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing attr err = %v", err)
	}
	// Type mismatch on typed getter.
	if _, err := g.AttrInt64(nil, "dt"); err == nil {
		t.Fatal("AttrInt64 on float attr succeeded")
	}
	// Wrong data size.
	if err := g.SetAttr(nil, "bad", I64, MustSimple(2), make([]byte, 8)); err == nil {
		t.Fatal("short attribute data accepted")
	}
	// Dataset attributes too.
	ds, _ := f.Root().CreateDataset(nil, "d", I8, MustSimple(1), nil)
	if err := ds.SetAttrInt64(nil, "rank", 3); err != nil {
		t.Fatal(err)
	}
	if v, err := ds.AttrInt64(nil, "rank"); err != nil || v != 3 {
		t.Fatalf("dataset attr = %d, %v", v, err)
	}
}

func TestPersistenceRoundtripMemStore(t *testing.T) {
	store := NewMemStore()
	f, _ := Create(store)
	g, _ := f.Root().CreateGroup(nil, "sim")
	if err := g.SetAttrString(nil, "name", "run1"); err != nil {
		t.Fatal(err)
	}
	ds, _ := g.CreateDataset(nil, "energy", F64, MustSimple(8), nil)
	in := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if err := ds.Write(nil, nil, Float64sToBytes(in)); err != nil {
		t.Fatal(err)
	}
	cds, _ := g.CreateDataset(nil, "grid", I32, MustSimple(6, 6), &CreateProps{ChunkDims: []uint64{2, 3}})
	gin := make([]int32, 36)
	for i := range gin {
		gin[i] = int32(i)
	}
	if err := cds.Write(nil, nil, Int32sToBytes(gin)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(nil); err != nil {
		t.Fatal(err)
	}

	f2, err := Open(store)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := f2.Root().OpenGroup(nil, "sim")
	if err != nil {
		t.Fatal(err)
	}
	if v, err := g2.AttrString(nil, "name"); err != nil || v != "run1" {
		t.Fatalf("attr after reopen = %q, %v", v, err)
	}
	ds2, err := g2.OpenDataset(nil, "energy")
	if err != nil {
		t.Fatal(err)
	}
	if ds2.Dtype() != F64 {
		t.Fatalf("dtype = %v", ds2.Dtype())
	}
	out := make([]byte, 64)
	if err := ds2.Read(nil, nil, out); err != nil {
		t.Fatal(err)
	}
	got := BytesToFloat64s(out)
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("energy[%d] = %v", i, got[i])
		}
	}
	cds2, err := g2.OpenDataset(nil, "grid")
	if err != nil {
		t.Fatal(err)
	}
	if !cds2.Chunked() {
		t.Fatal("grid lost chunked layout")
	}
	gout := make([]byte, 144)
	if err := cds2.Read(nil, nil, gout); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gout, Int32sToBytes(gin)) {
		t.Fatal("grid roundtrip mismatch")
	}
}

func TestPersistenceRoundtripFileStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.ah5")
	store, err := CreateFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := Create(store)
	ds, _ := f.Root().CreateDataset(nil, "d", I64, MustSimple(16), nil)
	in := make([]int64, 16)
	for i := range in {
		in[i] = int64(i * i)
	}
	if err := ds.Write(nil, nil, Int64sToBytes(in)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(nil); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	f2, err := Open(store2)
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := f2.Root().OpenDataset(nil, "d")
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 128)
	if err := ds2.Read(nil, nil, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, Int64sToBytes(in)) {
		t.Fatal("file-store roundtrip mismatch")
	}
}

func TestModifyAfterReopen(t *testing.T) {
	store := NewMemStore()
	f, _ := Create(store)
	if _, err := f.Root().CreateGroup(nil, "old"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(nil); err != nil {
		t.Fatal(err)
	}
	f2, err := Open(store)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Root().CreateGroup(nil, "new"); err != nil {
		t.Fatal(err)
	}
	if err := f2.Close(nil); err != nil {
		t.Fatal(err)
	}
	f3, err := Open(store)
	if err != nil {
		t.Fatal(err)
	}
	names := f3.Root().List()
	if len(names) != 2 || names[0] != "new" || names[1] != "old" {
		t.Fatalf("List = %v", names)
	}
}

func TestClosedFileRejectsOps(t *testing.T) {
	f, _ := Create(NewMemStore())
	ds, _ := f.Root().CreateDataset(nil, "d", I8, MustSimple(4), nil)
	if err := f.Close(nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(nil); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := f.Root().CreateGroup(nil, "g"); !errors.Is(err, ErrClosed) {
		t.Fatalf("CreateGroup err = %v", err)
	}
	if err := ds.Write(nil, nil, make([]byte, 4)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Write err = %v", err)
	}
	if err := f.Flush(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Flush err = %v", err)
	}
}

func TestOpenGarbageFails(t *testing.T) {
	store := NewMemStore()
	if _, err := store.WriteAt(make([]byte, 128), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(store); err == nil {
		t.Fatal("opened garbage store")
	}
}

func TestCorruptionDetected(t *testing.T) {
	store := NewMemStore()
	f, _ := Create(store)
	g, _ := f.Root().CreateGroup(nil, "g")
	if _, err := g.CreateDataset(nil, "d", I8, MustSimple(4), nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(nil); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the superblock checksum region.
	b := make([]byte, 1)
	if _, err := store.ReadAt(b, 10); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := store.WriteAt(b, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(store); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestNullStoreSemantics(t *testing.T) {
	ns := NewNullStore()
	if _, err := ns.WriteAt(make([]byte, 100), 50); err != nil {
		t.Fatal(err)
	}
	if ns.Size() != 150 {
		t.Fatalf("Size = %d", ns.Size())
	}
	buf := []byte{9, 9, 9}
	if _, err := ns.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	for _, v := range buf {
		if v != 0 {
			t.Fatal("NullStore read nonzero")
		}
	}
	// Library ops work on a NullStore (data is discarded).
	f, _ := Create(ns)
	ds, err := f.Root().CreateDataset(nil, "d", F32, MustSimple(1000), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Write(nil, nil, make([]byte, 4000)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(nil); err != nil {
		t.Fatal(err)
	}
}

// TestRandomTileWritesMatchReference property-tests the 2-D write path:
// random tiles written through hyperslab selections must equal a
// reference raster.
func TestRandomTileWritesMatchReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const H, W = 16, 16
		file, _ := Create(NewMemStore())
		var props *CreateProps
		if seed%2 == 0 {
			props = &CreateProps{ChunkDims: []uint64{uint64(rng.Intn(6) + 2), uint64(rng.Intn(6) + 2)}}
		}
		ds, err := file.Root().CreateDataset(nil, "t", U8, MustSimple(H, W), props)
		if err != nil {
			return false
		}
		ref := make([]byte, H*W)
		for k := 0; k < 12; k++ {
			r0 := rng.Intn(H)
			c0 := rng.Intn(W)
			h := rng.Intn(H-r0) + 1
			w := rng.Intn(W-c0) + 1
			sel := MustSimple(H, W)
			if err := sel.SelectHyperslab(
				[]uint64{uint64(r0), uint64(c0)}, nil,
				[]uint64{1, 1}, []uint64{uint64(h), uint64(w)}); err != nil {
				return false
			}
			tile := make([]byte, h*w)
			for i := range tile {
				tile[i] = byte(rng.Intn(256))
			}
			if err := ds.Write(nil, sel, tile); err != nil {
				return false
			}
			for i := 0; i < h; i++ {
				copy(ref[(r0+i)*W+c0:(r0+i)*W+c0+w], tile[i*w:(i+1)*w])
			}
		}
		out := make([]byte, H*W)
		if err := ds.Read(nil, nil, out); err != nil {
			return false
		}
		return bytes.Equal(out, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDatatypeStrings(t *testing.T) {
	cases := map[string]Datatype{
		"int64": I64, "uint8": U8, "float32": F32, "string[5]": FixedString(5),
	}
	for want, dt := range cases {
		if dt.String() != want {
			t.Errorf("String = %q, want %q", dt.String(), want)
		}
		if !dt.Valid() {
			t.Errorf("%v not valid", dt)
		}
	}
	if (Datatype{Class: ClassFloat, Size: 3}).Valid() {
		t.Error("float24 reported valid")
	}
	if (Datatype{}).Valid() {
		t.Error("zero datatype reported valid")
	}
}

func TestConversionHelpersRoundtrip(t *testing.T) {
	f32 := []float32{1.5, -2.25, 3e7}
	if got := BytesToFloat32s(Float32sToBytes(f32)); len(got) != 3 || got[1] != -2.25 {
		t.Fatalf("float32 roundtrip = %v", got)
	}
	f64 := []float64{1e-300, 2, -9.75}
	if got := BytesToFloat64s(Float64sToBytes(f64)); got[0] != 1e-300 || got[2] != -9.75 {
		t.Fatalf("float64 roundtrip = %v", got)
	}
	i64 := []int64{-1, 0, 1 << 60}
	if got := BytesToInt64s(Int64sToBytes(i64)); got[0] != -1 || got[2] != 1<<60 {
		t.Fatalf("int64 roundtrip = %v", got)
	}
	i32 := []int32{-7, 42}
	if got := BytesToInt32s(Int32sToBytes(i32)); got[0] != -7 || got[1] != 42 {
		t.Fatalf("int32 roundtrip = %v", got)
	}
}

func TestExtendChunkedDataset(t *testing.T) {
	store := NewMemStore()
	f, _ := Create(store)
	ds, err := f.Root().CreateDataset(nil, "ts", I32, MustSimple(8), &CreateProps{ChunkDims: []uint64{4}})
	if err != nil {
		t.Fatal(err)
	}
	first := []int32{1, 2, 3, 4, 5, 6, 7, 8}
	if err := ds.Write(nil, nil, Int32sToBytes(first)); err != nil {
		t.Fatal(err)
	}
	if err := ds.Extend(nil, []uint64{16}); err != nil {
		t.Fatal(err)
	}
	if got := ds.Dims()[0]; got != 16 {
		t.Fatalf("dims after Extend = %d", got)
	}
	// Append into the new region.
	sel := MustSimple(16)
	if err := sel.SelectHyperslab([]uint64{8}, nil, []uint64{1}, []uint64{8}); err != nil {
		t.Fatal(err)
	}
	second := []int32{9, 10, 11, 12, 13, 14, 15, 16}
	if err := ds.Write(nil, sel, Int32sToBytes(second)); err != nil {
		t.Fatal(err)
	}
	// Existing data must survive, new data must land.
	out := make([]byte, 16*4)
	if err := ds.Read(nil, nil, out); err != nil {
		t.Fatal(err)
	}
	got := BytesToInt32s(out)
	for i := 0; i < 16; i++ {
		if got[i] != int32(i+1) {
			t.Fatalf("elem %d = %d, want %d", i, got[i], i+1)
		}
	}
	// Extension survives flush + reopen.
	if err := f.Close(nil); err != nil {
		t.Fatal(err)
	}
	f2, err := Open(store)
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := f2.Root().OpenDataset(nil, "ts")
	if err != nil {
		t.Fatal(err)
	}
	if ds2.Dims()[0] != 16 {
		t.Fatalf("dims after reopen = %v", ds2.Dims())
	}
	out2 := make([]byte, 16*4)
	if err := ds2.Read(nil, nil, out2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, out2) {
		t.Fatal("data lost across reopen after Extend")
	}
}

func TestExtendValidation(t *testing.T) {
	f, _ := Create(NewMemStore())
	contig, _ := f.Root().CreateDataset(nil, "c", I8, MustSimple(4), nil)
	if err := contig.Extend(nil, []uint64{8}); err == nil {
		t.Error("Extend on contiguous dataset accepted")
	}
	ds, _ := f.Root().CreateDataset(nil, "d", I8, MustSimple(4, 4), &CreateProps{ChunkDims: []uint64{2, 2}})
	if err := ds.Extend(nil, []uint64{8}); err == nil {
		t.Error("rank mismatch accepted")
	}
	if err := ds.Extend(nil, []uint64{2, 8}); err == nil {
		t.Error("shrinking Extend accepted")
	}
	if err := ds.Extend(nil, []uint64{8, 8}); err != nil {
		t.Errorf("valid Extend rejected: %v", err)
	}
}

func TestExtend2DPreservesPlacement(t *testing.T) {
	f, _ := Create(NewMemStore())
	ds, err := f.Root().CreateDataset(nil, "g", U8, MustSimple(4, 4), &CreateProps{ChunkDims: []uint64{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	in := make([]byte, 16)
	for i := range in {
		in[i] = byte(i + 1)
	}
	if err := ds.Write(nil, nil, in); err != nil {
		t.Fatal(err)
	}
	if err := ds.Extend(nil, []uint64{4, 8}); err != nil {
		t.Fatal(err)
	}
	// The original 4x4 block must read back from the grown 4x8 extent.
	sel := MustSimple(4, 8)
	if err := sel.SelectHyperslab([]uint64{0, 0}, nil, []uint64{1, 1}, []uint64{4, 4}); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 16)
	if err := ds.Read(nil, sel, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Fatalf("placement lost after 2-D extend: %v vs %v", out, in)
	}
}

func TestChunkedRankLimit(t *testing.T) {
	f, _ := Create(NewMemStore())
	dims := []uint64{2, 2, 2, 2, 2, 2, 2, 2, 2} // rank 9 > maxRank
	chunks := make([]uint64, len(dims))
	for i := range chunks {
		chunks[i] = 1
	}
	space, err := NewSimple(dims...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Root().CreateDataset(nil, "x", U8, space, &CreateProps{ChunkDims: chunks}); err == nil {
		t.Fatal("rank-9 chunked dataset accepted")
	}
}
