package hdf5

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Class is the broad family of a Datatype, mirroring HDF5 type classes.
type Class uint8

// Datatype classes.
const (
	ClassInt Class = iota + 1
	ClassUint
	ClassFloat
	ClassString // fixed-length
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassInt:
		return "int"
	case ClassUint:
		return "uint"
	case ClassFloat:
		return "float"
	case ClassString:
		return "string"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Datatype describes the element type of a dataset or attribute. All
// numeric types are little-endian.
type Datatype struct {
	Class Class
	Size  uint32 // element size in bytes
}

// Predefined datatypes, named after their HDF5 counterparts.
var (
	I8  = Datatype{Class: ClassInt, Size: 1}
	I16 = Datatype{Class: ClassInt, Size: 2}
	I32 = Datatype{Class: ClassInt, Size: 4}
	I64 = Datatype{Class: ClassInt, Size: 8}
	U8  = Datatype{Class: ClassUint, Size: 1}
	U16 = Datatype{Class: ClassUint, Size: 2}
	U32 = Datatype{Class: ClassUint, Size: 4}
	U64 = Datatype{Class: ClassUint, Size: 8}
	F32 = Datatype{Class: ClassFloat, Size: 4}
	F64 = Datatype{Class: ClassFloat, Size: 8}
)

// FixedString returns a fixed-length string type of n bytes. A
// non-positive length is a programmer error (type shapes are static,
// like MustSimple's dimensions), hence the panic rather than an error
// return.
func FixedString(n int) Datatype {
	if n <= 0 {
		panic(fmt.Sprintf("hdf5: FixedString length %d", n))
	}
	return Datatype{Class: ClassString, Size: uint32(n)}
}

// Valid reports whether the datatype is a well-formed combination.
func (t Datatype) Valid() bool {
	switch t.Class {
	case ClassInt, ClassUint:
		return t.Size == 1 || t.Size == 2 || t.Size == 4 || t.Size == 8
	case ClassFloat:
		return t.Size == 4 || t.Size == 8
	case ClassString:
		return t.Size > 0
	default:
		return false
	}
}

// String implements fmt.Stringer, e.g. "float64" or "string[16]".
func (t Datatype) String() string {
	if t.Class == ClassString {
		return fmt.Sprintf("string[%d]", t.Size)
	}
	return fmt.Sprintf("%s%d", t.Class, t.Size*8)
}

func (t Datatype) encode(w *writer) {
	w.u8(uint8(t.Class))
	w.u32(t.Size)
}

func decodeDatatype(r *reader) Datatype {
	t := Datatype{Class: Class(r.u8()), Size: r.u32()}
	if r.err == nil && !t.Valid() {
		r.fail("invalid datatype %v", t)
	}
	return t
}

// The slice conversion helpers below move typed Go slices in and out of
// the raw little-endian []byte buffers the dataset API takes, without
// unsafe. They are the moral equivalent of HDF5's native memory types.

// Float32sToBytes encodes vs little-endian.
func Float32sToBytes(vs []float32) []byte {
	out := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out
}

// BytesToFloat32s decodes little-endian floats; len(b) must be a
// multiple of 4.
func BytesToFloat32s(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// Float64sToBytes encodes vs little-endian.
func Float64sToBytes(vs []float64) []byte {
	out := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// BytesToFloat64s decodes little-endian doubles; len(b) must be a
// multiple of 8.
func BytesToFloat64s(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// Int64sToBytes encodes vs little-endian.
func Int64sToBytes(vs []int64) []byte {
	out := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(v))
	}
	return out
}

// BytesToInt64s decodes little-endian int64s.
func BytesToInt64s(b []byte) []int64 {
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// Int32sToBytes encodes vs little-endian.
func Int32sToBytes(vs []int32) []byte {
	out := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}

// BytesToInt32s decodes little-endian int32s.
func BytesToInt32s(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}
