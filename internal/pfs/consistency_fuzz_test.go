package pfs

import "testing"

// FuzzConsistencySpec asserts the consistency-spec grammar's
// canonicalization fixed point: any string that parses must render to
// a canonical form that parses back to the identical spec, and that
// canonical form must be its own fixed point (String ∘ ParseConsistency
// is idempotent). Parse failures are fine; panics, canonical forms
// that fail to re-parse, and round-trips that change the spec are not.
func FuzzConsistencySpec(f *testing.F) {
	seeds := []string{
		"",
		"posix",
		"session",
		"mpiio",
		"commit",
		"posix;check=1",
		"posix;check=0;lock=400us",
		"posix;lock=1ms;publish=0s;bw=2e9",
		"session;lease=100us;publish=200us",
		"session; check=1 ; lease=0s",
		"mpiio;track=25us;check=1",
		"commit;publish=50us;bw=1e6",
		"commit;bw=0",
		"posix;bw=0x1p-2",
		"nfs",             // unknown model
		"posix;lock",      // not key=value
		"posix;lock=-1ms", // negative duration
		"posix;lock=fast", // unparsable duration
		"posix;check=yes", // bad bool
		"posix;bw=-1",     // negative bandwidth
		"mpiio;stripe=4",  // unknown key
		"posix;;publish=1s",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := ParseConsistency(s)
		if err != nil {
			return
		}
		canon := sp.String()
		sp2, err := ParseConsistency(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, s, err)
		}
		if again := sp2.String(); again != canon {
			t.Fatalf("String is not a fixed point: %q → %q → %q", s, canon, again)
		}
		if *sp2 != *sp {
			t.Fatalf("round-trip of %q changed the spec: %+v vs %+v", s, *sp, *sp2)
		}
	})
}
