//go:build !race

package pfs

const raceEnabled = false
