package pfs

import (
	"errors"
	"testing"
	"time"

	"asyncio/internal/critpath"
	"asyncio/internal/ioreq"
	"asyncio/internal/metrics"
	"asyncio/internal/vclock"
)

func TestParseConsistencyDefaults(t *testing.T) {
	cases := []struct {
		in   string
		want ConsistencySpec
	}{
		{"posix", ConsistencySpec{Model: ModelPOSIX, Lock: 400 * time.Microsecond, Publish: 200 * time.Microsecond, PublishBW: 1.5e9}},
		{"session", ConsistencySpec{Model: ModelSession, Lease: 100 * time.Microsecond, Publish: 200 * time.Microsecond}},
		{"mpiio", ConsistencySpec{Model: ModelMPIIO, Track: 25 * time.Microsecond, Publish: 200 * time.Microsecond}},
		{"commit", ConsistencySpec{Model: ModelCommit, Publish: 50 * time.Microsecond}},
		{"posix;check=1;lock=1ms", ConsistencySpec{Model: ModelPOSIX, Check: true, Lock: time.Millisecond, Publish: 200 * time.Microsecond, PublishBW: 1.5e9}},
		{"commit;publish=0s;bw=2e9", ConsistencySpec{Model: ModelCommit, PublishBW: 2e9}},
		{"session; check=1 ; lease=0s", ConsistencySpec{Model: ModelSession, Check: true, Publish: 200 * time.Microsecond}},
	}
	for _, c := range cases {
		sp, err := ParseConsistency(c.in)
		if err != nil {
			t.Errorf("ParseConsistency(%q): %v", c.in, err)
			continue
		}
		if *sp != c.want {
			t.Errorf("ParseConsistency(%q) = %+v, want %+v", c.in, *sp, c.want)
		}
	}
}

func TestParseConsistencyErrors(t *testing.T) {
	for _, in := range []string{
		"", "nfs", "posix;lock", "posix;lock=-1ms", "posix;lock=fast",
		"posix;check=yes", "posix;bw=-1", "posix;bw=abc", "mpiio;stripe=4",
	} {
		if _, err := ParseConsistency(in); err == nil {
			t.Errorf("ParseConsistency(%q): expected error", in)
		}
	}
}

func TestConsistencySpecStringFixedPoint(t *testing.T) {
	for _, in := range []string{
		"posix", "session", "mpiio", "commit",
		"posix;check=1", "session;lease=1ms;publish=5ms",
		"mpiio;check=1;track=0s", "commit;bw=1e6",
		"posix;check=0", "posix;lock=400us",
	} {
		sp, err := ParseConsistency(in)
		if err != nil {
			t.Fatalf("ParseConsistency(%q): %v", in, err)
		}
		canon := sp.String()
		sp2, err := ParseConsistency(canon)
		if err != nil {
			t.Fatalf("ParseConsistency(%q → %q): %v", in, canon, err)
		}
		if again := sp2.String(); again != canon {
			t.Errorf("String not a fixed point: %q → %q → %q", in, canon, again)
		}
		if *sp2 != *sp {
			t.Errorf("round-trip of %q changed the spec: %+v vs %+v", in, *sp, *sp2)
		}
	}
}

// stageWrite pushes one synthetic write of n bytes through the rank's
// consistency stage on p, returning the stage error.
func stageWrite(c *Consistency, rank int, p *vclock.Proc, n int) error {
	st := c.Stage(rank)
	req := &ioreq.Request{Op: ioreq.OpWrite, Buf: make([]byte, n), Proc: p}
	return st.Process(req, func(*ioreq.Request) error { return nil })
}

func TestConsistencyPerWriteCharges(t *testing.T) {
	cases := []struct {
		spec string
		n    int
		want time.Duration
	}{
		// posix: lock + publish + bytes/bw = 400µs + 200µs + 1.5e6/1.5e9 s.
		{"posix", 1_500_000, 400*time.Microsecond + 200*time.Microsecond + time.Millisecond},
		{"session", 1_500_000, 100 * time.Microsecond},
		{"mpiio", 1_500_000, 25 * time.Microsecond},
		{"commit", 1_500_000, 0},
	}
	for _, cse := range cases {
		sp, err := ParseConsistency(cse.spec)
		if err != nil {
			t.Fatal(err)
		}
		c := NewConsistency(sp)
		clk := vclock.New()
		c.Instrument(metrics.NewRegistry(clk))
		var got time.Duration
		clk.Go("r", func(p *vclock.Proc) {
			if err := stageWrite(c, 0, p, cse.n); err != nil {
				t.Error(err)
			}
			got = p.Now()
		})
		if err := clk.Wait(); err != nil {
			t.Fatal(err)
		}
		if got != cse.want {
			t.Errorf("%s: write of %d bytes charged %v, want %v", cse.spec, cse.n, got, cse.want)
		}
		if want := int64(cse.want); c.VisibilityWaitNs() != want {
			t.Errorf("%s: VisibilityWaitNs = %d, want %d", cse.spec, c.VisibilityWaitNs(), want)
		}
	}
}

func TestConsistencyPublishPoints(t *testing.T) {
	// session publishes at close, mpiio at sync, commit at commit; each
	// is idempotent — the second call with no new writes charges nothing.
	cases := []struct {
		spec    string
		publish func(c *Consistency, p *vclock.Proc)
	}{
		{"session", func(c *Consistency, p *vclock.Proc) { c.RankClose(p, 0) }},
		{"mpiio", func(c *Consistency, p *vclock.Proc) { c.RankSync(p, 0) }},
		{"commit", func(c *Consistency, p *vclock.Proc) { c.Commit(p, 0) }},
	}
	for _, cse := range cases {
		sp, err := ParseConsistency(cse.spec)
		if err != nil {
			t.Fatal(err)
		}
		c := NewConsistency(sp)
		clk := vclock.New()
		var afterWrite, afterPub, afterSecond time.Duration
		clk.Go("r", func(p *vclock.Proc) {
			if err := stageWrite(c, 0, p, 64); err != nil {
				t.Error(err)
			}
			afterWrite = p.Now()
			cse.publish(c, p)
			afterPub = p.Now()
			cse.publish(c, p)
			afterSecond = p.Now()
		})
		if err := clk.Wait(); err != nil {
			t.Fatal(err)
		}
		if got := afterPub - afterWrite; got != sp.Publish {
			t.Errorf("%s: publish charged %v, want %v", cse.spec, got, sp.Publish)
		}
		if afterSecond != afterPub {
			t.Errorf("%s: repeated publish charged %v; want idempotent", cse.spec, afterSecond-afterPub)
		}
	}
}

func TestConsistencyWrongModelPublishFree(t *testing.T) {
	// A session run's drain (RankSync) and a mpiio run's close
	// (RankClose) charge nothing: each model publishes only at its own
	// point.
	for _, cse := range []struct {
		spec string
		call func(c *Consistency, p *vclock.Proc)
	}{
		{"session", func(c *Consistency, p *vclock.Proc) { c.RankSync(p, 0); c.Commit(p, 0) }},
		{"mpiio", func(c *Consistency, p *vclock.Proc) { c.RankClose(p, 0); c.Commit(p, 0) }},
		{"commit", func(c *Consistency, p *vclock.Proc) { c.RankClose(p, 0); c.RankSync(p, 0) }},
	} {
		sp, err := ParseConsistency(cse.spec)
		if err != nil {
			t.Fatal(err)
		}
		c := NewConsistency(sp)
		clk := vclock.New()
		var wrote, after time.Duration
		clk.Go("r", func(p *vclock.Proc) {
			if err := stageWrite(c, 0, p, 64); err != nil {
				t.Error(err)
			}
			wrote = p.Now()
			cse.call(c, p)
			after = p.Now()
		})
		if err := clk.Wait(); err != nil {
			t.Fatal(err)
		}
		if after != wrote {
			t.Errorf("%s: foreign publish points charged %v", cse.spec, after-wrote)
		}
	}
}

func TestConsistencyVisibilityEdgesRecorded(t *testing.T) {
	sp, err := ParseConsistency("posix")
	if err != nil {
		t.Fatal(err)
	}
	c := NewConsistency(sp)
	rec := critpath.NewRecorder()
	c.SetCrit(rec)
	clk := vclock.New()
	clk.Go("rank0", func(p *vclock.Proc) {
		if err := stageWrite(c, 0, p, 1024); err != nil {
			t.Error(err)
		}
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, e := range rec.Edges() {
		if e.Cause == critpath.VisibilityWait {
			found = true
			if e.Subsystem != "consistency" || e.Track != "rank0" || e.End <= e.Start {
				t.Errorf("malformed visibility edge: %+v", e)
			}
		}
	}
	if !found {
		t.Error("no visibility-wait edge recorded for a posix write")
	}
}

func TestConsistencyStageForwardsErrors(t *testing.T) {
	sp, err := ParseConsistency("posix;check=1")
	if err != nil {
		t.Fatal(err)
	}
	c := NewConsistency(sp)
	clk := vclock.New()
	clk.Go("r", func(p *vclock.Proc) {
		st := c.Stage(0)
		req := &ioreq.Request{Op: ioreq.OpWrite, Buf: make([]byte, 8), Proc: p}
		wantErr := errInjected
		if err := st.Process(req, func(*ioreq.Request) error { return wantErr }); err != wantErr {
			t.Errorf("stage swallowed the error: %v", err)
		}
		if p.Now() != 0 {
			t.Errorf("failed write was charged %v", p.Now())
		}
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	// The failed write must not have been recorded by the checker.
	if s := c.Checker().Summary(); s != "consistency=posix writes=0 reads=0 syncs=0 closes=0 commits=0 lastCommit=0s" {
		t.Errorf("failed write leaked into the checker: %s", s)
	}
}

var errInjected = errors.New("injected failure")

func TestConsistencyNilSafe(t *testing.T) {
	var c *Consistency
	if c != NewConsistency(nil) {
		t.Error("NewConsistency(nil) must be nil")
	}
	c.SetCrit(critpath.NewRecorder())
	c.Instrument(nil)
	c.RankClose(nil, 0)
	c.RankSync(nil, 0)
	c.Commit(nil, 0)
	if c.Checker() != nil {
		t.Error("nil Consistency must have a nil checker")
	}
	if c.Stage(0) != nil {
		t.Error("nil Consistency must yield a nil stage")
	}
	if c.VisibilityWaitNs() != 0 {
		t.Error("nil Consistency must report zero wait")
	}
	var ck *ConsistencyChecker
	if err := ck.Check(); err != nil {
		t.Error("nil checker must pass")
	}
	if err := ck.VerifyDurable(nil); err != nil {
		t.Error("nil checker must verify durable")
	}
	if ck.Summary() != "consistency=off" {
		t.Error("nil checker summary")
	}
}
