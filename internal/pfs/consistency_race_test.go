package pfs

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"asyncio/internal/ioreq"
)

// TestCheckerRecorderConcurrency4096 hammers one Consistency's
// recorder from 4096 concurrent ranks — the sweep's largest scale
// point — mixing writes, reads, and every publish point, then runs the
// oracle over the result. Under `-race` this is the memory-model proof
// for the checker's event log; without it, it is still a useful
// smoke test that concurrent recording neither drops nor duplicates
// events.
func TestCheckerRecorderConcurrency4096(t *testing.T) {
	const ranks = 4096
	writesPerRank := 4
	if raceEnabled {
		writesPerRank = 2
	}

	for _, model := range []Model{ModelPOSIX, ModelSession, ModelMPIIO, ModelCommit} {
		t.Run(string(model), func(t *testing.T) {
			sp, err := ParseConsistency(string(model) + ";check=1")
			if err != nil {
				t.Fatal(err)
			}
			c := NewConsistency(sp)
			var wg sync.WaitGroup
			for rank := 0; rank < ranks; rank++ {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					st := c.Stage(rank)
					for i := 0; i < writesPerRank; i++ {
						op := ioreq.OpWrite
						if i%2 == 1 {
							op = ioreq.OpRead
						}
						// Nil Proc: charges are skipped (no virtual clock
						// here) but the recorder path is fully exercised.
						req := &ioreq.Request{Op: op, Buf: make([]byte, 32)}
						if err := st.Process(req, func(*ioreq.Request) error { return nil }); err != nil {
							t.Error(err)
							return
						}
					}
					c.RankSync(nil, rank)
					c.RankClose(nil, rank)
					if rank == 0 {
						c.Commit(nil, 0)
					}
				}(rank)
			}
			wg.Wait()

			want := fmt.Sprintf("consistency=%s writes=%d reads=%d syncs=%d closes=%d commits=1 lastCommit=0s",
				model, ranks*(writesPerRank-writesPerRank/2), ranks*(writesPerRank/2), ranks, ranks)
			if got := c.Checker().Summary(); got != want {
				t.Errorf("summary after concurrent recording:\n got %s\nwant %s", got, want)
			}
			// The synthetic requests carry no dataset, so the oracle has
			// no extents to cross-check; Check must still traverse the
			// full log without fault.
			if err := c.Checker().Check(); err != nil {
				t.Errorf("oracle over concurrent log: %v", err)
			}
		})
	}
}

// TestCheckerRecorderConcurrentPublish drives the publish bookkeeping
// (the unpublished-rank map) from many goroutines at once; the map is
// the only mutable aggregate shared across ranks.
func TestCheckerRecorderConcurrentPublish(t *testing.T) {
	sp, err := ParseConsistency("commit;check=1")
	if err != nil {
		t.Fatal(err)
	}
	c := NewConsistency(sp)
	var wg sync.WaitGroup
	for rank := 0; rank < 512; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			st := c.Stage(rank)
			req := &ioreq.Request{Op: ioreq.OpWrite, Buf: make([]byte, 8)}
			if err := st.Process(req, func(*ioreq.Request) error { return nil }); err != nil {
				t.Error(err)
			}
			c.Commit(nil, rank)
		}(rank)
	}
	wg.Wait()
	if got, ok := c.Checker().LastCommit(); !ok || got != time.Duration(0) {
		t.Errorf("LastCommit = %v, %v; want 0s, true", got, ok)
	}
}
