package pfs

import (
	"testing"
	"time"

	"asyncio/internal/metrics"
	"asyncio/internal/vclock"
)

// TestStatsCountsChargedTrafficOnly locks the Stats contract: only
// operations that actually charged the target (live proc, positive
// bytes) are counted.
func TestStatsCountsChargedTrafficOnly(t *testing.T) {
	clk := vclock.New()
	tg := basicTarget(clk)
	// Untimed operations must not count.
	tg.WriteData(nil, MB)
	tg.ReadData(nil, MB)
	tg.MetaOp(nil)
	clk.Go("r", func(p *vclock.Proc) {
		tg.WriteData(p, 0) // zero bytes: not served
		tg.ReadData(p, -5) // negative: not served
		tg.WriteData(p, MB)
		tg.WriteData(p, 2*MB)
		tg.ReadData(p, 3*MB)
		tg.MetaOp(p)
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	got := tg.Stats()
	want := Stats{WriteOps: 2, ReadOps: 1, MetaOps: 1, BytesWritten: 3 * MB, BytesRead: 3 * MB}
	if got != want {
		t.Fatalf("Stats = %+v, want %+v", got, want)
	}
}

// TestInstrumentMirrorsStats locks the registry-export semantics of
// satellite work: after Instrument, the pfs.<name>.* counters track
// Stats exactly, and configuration gauges are published.
func TestInstrumentMirrorsStats(t *testing.T) {
	clk := vclock.New()
	tg := basicTarget(clk)
	reg := metrics.NewRegistry(clk)
	tg.Instrument(reg)

	clk.Go("r", func(p *vclock.Proc) {
		tg.WriteData(p, 2*MB)
		tg.ReadData(p, MB)
		tg.MetaOp(p)
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}

	st := tg.Stats()
	checks := []struct {
		metric string
		want   int64
	}{
		{"pfs.test.write_ops", st.WriteOps},
		{"pfs.test.read_ops", st.ReadOps},
		{"pfs.test.meta_ops", st.MetaOps},
		{"pfs.test.bytes_written", st.BytesWritten},
		{"pfs.test.bytes_read", st.BytesRead},
	}
	for _, c := range checks {
		ctr := reg.FindCounter(c.metric)
		if ctr == nil {
			t.Fatalf("%s not registered (have %v)", c.metric, reg.Names())
		}
		if ctr.Value() != c.want {
			t.Errorf("%s = %d, want %d", c.metric, ctr.Value(), c.want)
		}
	}
	if g := reg.FindGauge("pfs.test.peak_bw_bytes_per_sec"); g == nil || g.Value() != 100*MB {
		t.Fatalf("peak_bw gauge = %v", g.Value())
	}
	if g := reg.FindGauge("pfs.test.contention_factor"); g == nil || g.Value() != 1 {
		t.Fatalf("contention gauge = %v", g.Value())
	}
	// All flows done: in-flight and the bandwidth derived from it are 0.
	if g := reg.FindGauge("pfs.test.inflight"); g.Value() != 0 {
		t.Fatalf("inflight = %v after completion", g.Value())
	}
	if g := reg.FindGauge("pfs.test.effective_bw_bytes_per_sec"); g.Value() != 0 {
		t.Fatalf("effective bw = %v after completion", g.Value())
	}
}

// TestInstrumentEffectiveBandwidthTracksInflight checks the derived
// series: while n flows are active, effective bandwidth equals the
// processor-sharing capacity for n, and utilization is its fraction of
// the peak.
func TestInstrumentEffectiveBandwidthTracksInflight(t *testing.T) {
	clk := vclock.New()
	tg := basicTarget(clk)
	reg := metrics.NewRegistry(clk)
	reg.EnableSeries()
	tg.Instrument(reg)

	const flows = 4
	for i := 0; i < flows; i++ {
		clk.Go("r", func(p *vclock.Proc) {
			tg.WriteData(p, 10*MB)
		})
	}
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}

	inflight := reg.FindGauge("pfs.test.inflight").Series()
	eff := reg.FindGauge("pfs.test.effective_bw_bytes_per_sec").Series()
	if len(inflight) == 0 || len(eff) == 0 {
		t.Fatal("derived series missing")
	}
	// All four flows start at t=0: the coalesced first point holds the
	// instant's final state, and the final point returns to zero.
	if first := inflight[0]; first.At != 0 || first.V != flows {
		t.Fatalf("inflight[0] = %+v, want {0 %d}", first, flows)
	}
	if want := tg.capacityFor(flows); eff[0].V != want {
		t.Fatalf("eff[0].V = %v, want capacityFor(%d) = %v", eff[0].V, flows, want)
	}
	if last := inflight[len(inflight)-1]; last.V != 0 {
		t.Fatalf("inflight final = %+v, want 0", last)
	}
	if last := eff[len(eff)-1]; last.V != 0 {
		t.Fatalf("effective bw final = %+v, want 0", last)
	}
	util := reg.FindGauge("pfs.test.utilization").Series()
	if util[0].V != eff[0].V/(100*MB) {
		t.Fatalf("utilization[0] = %v, want %v", util[0].V, eff[0].V/(100*MB))
	}
}

// TestInstrumentSmallRequestPenalty checks the penalty counters: a
// request at the efficiency knee is inflated to 2× its size, costing
// the backend the same again in extra bytes.
func TestInstrumentSmallRequestPenalty(t *testing.T) {
	clk := vclock.New()
	tg := NewTarget(clk, TargetConfig{
		Name:        "pen",
		BackendPeak: 100 * MB,
		ReqRamp:     1 << 20,
	})
	reg := metrics.NewRegistry(clk)
	tg.Instrument(reg)
	clk.Go("r", func(p *vclock.Proc) {
		tg.WriteData(p, 1<<20) // efficiency 0.5 → served 2 MiB
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	if v := reg.FindCounter("pfs.pen.small_request_penalty_hits").Value(); v != 1 {
		t.Fatalf("penalty hits = %d, want 1", v)
	}
	if v := reg.FindCounter("pfs.pen.small_request_penalty_bytes").Value(); v != 1<<20 {
		t.Fatalf("penalty bytes = %d, want %d", v, 1<<20)
	}
}

// TestUninstrumentedTargetWorks locks the nil-instrument contract:
// a target never passed to Instrument must work identically.
func TestUninstrumentedTargetWorks(t *testing.T) {
	clk := vclock.New()
	tg := basicTarget(clk)
	tg.Instrument(nil) // explicit nil registry is a no-op
	var end time.Duration
	clk.Go("r", func(p *vclock.Proc) {
		tg.WriteData(p, 10*MB)
		end = p.Now()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	if end == 0 {
		t.Fatal("transfer did not advance time")
	}
	tg.SetContentionFactor(0.5) // must not panic on nil mContention
	if tg.Stats().WriteOps != 1 {
		t.Fatalf("stats = %+v", tg.Stats())
	}
}
