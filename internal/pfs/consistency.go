// Consistency-model spectrum for the PFS layer. The simulator's data
// plane is a single address space and therefore always coherent; what
// differs between real parallel file systems is the *cost* a rank pays
// to make its writes visible to other ranks, and the point in time at
// which the model guarantees that visibility. Consistency makes that
// pluggable (Wang, Mohror & Snir, "Formal Definitions and Performance
// Comparison of Consistency Models for Parallel File Systems"):
//
//   - posix: strong consistency. Every write acquires a range lock and
//     publishes its bytes through the coherence protocol before it
//     completes — visibility is immediate, and the write path pays for
//     it (a fixed lock round-trip plus a byte-proportional publish).
//   - session: open-to-close consistency. Writes pay only a lease
//     validation; a rank's writes become visible to others at its file
//     close, which pays one publish barrier.
//   - mpiio: MPI-IO sync-barrier-sync. Writes pay a cheap sync-set
//     tracking charge; visibility is established at the rank's explicit
//     sync (the connector drain), which pays one publish barrier. A
//     reader is guaranteed to observe the data only if its own sync
//     follows the writer's.
//   - commit: commit consistency (e.g. BatchFS/DeltaFS-style). Writes
//     are free; visibility and durability are promised only at a global
//     commit (the checkpoint), which pays one publish barrier on the
//     committing rank.
//
// Every charge is recorded as a critpath.VisibilityWait edge, so the
// profiler blames visibility cost the same way it blames transfers or
// fsyncs, and the per-model cost asymmetry reproduces the paper's
// weaker-models-buy-bandwidth result. When Check is set, a
// ConsistencyChecker (checker.go) records every write/read/sync/close/
// commit on the virtual clock and asserts the model's formal visibility
// and durability guarantees after the run.
package pfs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"asyncio/internal/critpath"
	"asyncio/internal/ioreq"
	"asyncio/internal/metrics"
	"asyncio/internal/vclock"
)

// Model names one consistency model of the spectrum.
type Model string

// The spectrum, strongest to weakest.
const (
	ModelPOSIX   Model = "posix"
	ModelSession Model = "session"
	ModelMPIIO   Model = "mpiio"
	ModelCommit  Model = "commit"
)

// valid reports whether m is a known model.
func (m Model) valid() bool {
	switch m {
	case ModelPOSIX, ModelSession, ModelMPIIO, ModelCommit:
		return true
	}
	return false
}

// ConsistencySpec is the parsed form of a -consistency flag value:
// "<model>[;key=value]...". Models: posix, session, mpiio, commit.
// Keys: check=0|1 (enable the visibility checker), lock=<dur> (posix
// per-write lock round-trip), lease=<dur> (session per-write lease
// validation), track=<dur> (mpiio per-write sync-set tracking),
// publish=<dur> (per-publish barrier latency), bw=<bytes/s> (posix
// byte-proportional publish bandwidth; 0 disables).
type ConsistencySpec struct {
	Model Model
	// Check attaches a ConsistencyChecker to the run.
	Check bool
	// Lock is the posix per-write range-lock round-trip.
	Lock time.Duration
	// Lease is the session per-write lease validation.
	Lease time.Duration
	// Track is the mpiio per-write sync-set tracking charge.
	Track time.Duration
	// Publish is the per-publish barrier latency (charged per write for
	// posix; at close/sync/commit for the weaker models).
	Publish time.Duration
	// PublishBW, when positive, adds bytes/PublishBW to every posix
	// write (the coherence protocol moves the data eagerly).
	PublishBW float64
}

// defaultSpec returns the model's stock charges. Strong coherence is
// expensive per write; each step down the spectrum moves cost off the
// write path and onto an ever-later publish point.
func defaultSpec(m Model) ConsistencySpec {
	sp := ConsistencySpec{Model: m}
	switch m {
	case ModelPOSIX:
		sp.Lock = 400 * time.Microsecond
		sp.Publish = 200 * time.Microsecond
		sp.PublishBW = 1.5e9
	case ModelSession:
		sp.Lease = 100 * time.Microsecond
		sp.Publish = 200 * time.Microsecond
	case ModelMPIIO:
		sp.Track = 25 * time.Microsecond
		sp.Publish = 200 * time.Microsecond
	case ModelCommit:
		sp.Publish = 50 * time.Microsecond
	}
	return sp
}

// ParseConsistency parses a spec string. The empty string is an error;
// callers treat "" as "no consistency model" before parsing.
func ParseConsistency(s string) (*ConsistencySpec, error) {
	parts := strings.Split(s, ";")
	m := Model(strings.TrimSpace(parts[0]))
	if !m.valid() {
		return nil, fmt.Errorf("consistency: unknown model %q (want posix, session, mpiio, or commit)", string(m))
	}
	sp := defaultSpec(m)
	for _, part := range parts[1:] {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("consistency: %q is not key=value", part)
		}
		switch key {
		case "check":
			switch val {
			case "0":
				sp.Check = false
			case "1":
				sp.Check = true
			default:
				return nil, fmt.Errorf("consistency: check=%q (want 0 or 1)", val)
			}
		case "lock":
			d, err := parseConsDur(key, val)
			if err != nil {
				return nil, err
			}
			sp.Lock = d
		case "lease":
			d, err := parseConsDur(key, val)
			if err != nil {
				return nil, err
			}
			sp.Lease = d
		case "track":
			d, err := parseConsDur(key, val)
			if err != nil {
				return nil, err
			}
			sp.Track = d
		case "publish":
			d, err := parseConsDur(key, val)
			if err != nil {
				return nil, err
			}
			sp.Publish = d
		case "bw":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 {
				return nil, fmt.Errorf("consistency: bw=%q is not a non-negative bytes/s value", val)
			}
			sp.PublishBW = f
		default:
			return nil, fmt.Errorf("consistency: unknown key %q", key)
		}
	}
	return &sp, nil
}

func parseConsDur(key, val string) (time.Duration, error) {
	d, err := time.ParseDuration(val)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("consistency: %s=%q is not a non-negative duration", key, val)
	}
	return d, nil
}

// String renders the spec canonically: the model, then only the fields
// that differ from the model's defaults, in fixed key order.
// ParseConsistency(sp.String()) reproduces sp exactly.
func (sp *ConsistencySpec) String() string {
	def := defaultSpec(sp.Model)
	parts := []string{string(sp.Model)}
	if sp.Check {
		parts = append(parts, "check=1")
	}
	if sp.Lock != def.Lock {
		parts = append(parts, "lock="+sp.Lock.String())
	}
	if sp.Lease != def.Lease {
		parts = append(parts, "lease="+sp.Lease.String())
	}
	if sp.Track != def.Track {
		parts = append(parts, "track="+sp.Track.String())
	}
	if sp.Publish != def.Publish {
		parts = append(parts, "publish="+sp.Publish.String())
	}
	if sp.PublishBW != def.PublishBW {
		parts = append(parts, "bw="+strconv.FormatFloat(sp.PublishBW, 'g', -1, 64))
	}
	return strings.Join(parts, ";")
}

// Consistency applies one spec to one run: it charges visibility costs
// on the virtual clock, records them as critpath.VisibilityWait edges,
// and (when the spec asks) feeds a ConsistencyChecker. A Consistency
// serves exactly one run, like a fault injector. All exported methods
// tolerate a nil receiver, so callers thread it without guards.
type Consistency struct {
	spec    ConsistencySpec
	checker *ConsistencyChecker
	crit    *critpath.Recorder

	mWaitNs    *metrics.Counter
	mWrites    *metrics.Counter
	mPublishes *metrics.Counter

	mu          sync.Mutex
	unpublished map[int]int // rank → writes not yet published
}

// NewConsistency builds the runtime for one run; a nil spec yields a
// nil Consistency (the knob is off — no stages, no charges, no events).
func NewConsistency(sp *ConsistencySpec) *Consistency {
	if sp == nil {
		return nil
	}
	c := &Consistency{spec: *sp, unpublished: make(map[int]int)}
	if sp.Check {
		c.checker = newChecker(sp.Model)
	}
	return c
}

// Spec returns the spec this run applies.
func (c *Consistency) Spec() ConsistencySpec { return c.spec }

// Checker returns the visibility oracle, or nil when the spec did not
// request checking (or c is nil).
func (c *Consistency) Checker() *ConsistencyChecker {
	if c == nil {
		return nil
	}
	return c.checker
}

// SetCrit attaches the critical-path recorder. Call once, before the
// run starts.
func (c *Consistency) SetCrit(rec *critpath.Recorder) {
	if c == nil {
		return
	}
	c.crit = rec
}

// Instrument registers the model's counters on m under
// "consistency.<model>.*". Call once, before the run starts.
func (c *Consistency) Instrument(m *metrics.Registry) {
	if c == nil || m == nil {
		return
	}
	pre := "consistency." + string(c.spec.Model) + "."
	c.mWaitNs = m.Counter(pre + "visibility_wait_ns")
	c.mWrites = m.Counter(pre + "writes_tracked")
	c.mPublishes = m.Counter(pre + "publishes")
}

// charge sleeps p for d, counts it, and records a VisibilityWait edge.
func (c *Consistency) charge(p *vclock.Proc, d time.Duration, detail string, bytes int64) {
	if p == nil || d <= 0 {
		return
	}
	start := p.Now()
	p.Sleep(d)
	c.mWaitNs.Add(int64(d))
	c.crit.Record(critpath.Edge{
		Track: p.Name(), Cause: critpath.VisibilityWait, Subsystem: "consistency",
		Detail: detail, Start: start, End: p.Now(), Bytes: bytes,
	})
}

// Stage returns the per-rank pipeline stage that observes and charges
// every data request the rank issues. Returns nil on a nil receiver.
func (c *Consistency) Stage(rank int) ioreq.Stage {
	if c == nil {
		return nil
	}
	return &consistencyStage{c: c, rank: rank}
}

// recordWrite applies the model's per-write cost and feeds the checker.
// Called after the request executed successfully, on the executing
// process (the rank itself on the synchronous path, the background
// stream on the asynchronous one — which is exactly why async hides
// visibility cost from the critical path).
func (c *Consistency) recordWrite(rank int, req *ioreq.Request, start time.Duration) {
	p := req.Proc
	nbytes := req.Bytes()
	c.mWrites.Add(1)
	switch c.spec.Model {
	case ModelPOSIX:
		cost := c.spec.Lock + c.spec.Publish
		if c.spec.PublishBW > 0 && nbytes > 0 {
			cost += time.Duration(float64(nbytes) / c.spec.PublishBW * float64(time.Second))
		}
		c.charge(p, cost, "posix:lock+publish", nbytes)
		c.mPublishes.Add(1)
	case ModelSession:
		c.charge(p, c.spec.Lease, "session:lease", nbytes)
		c.addUnpublished(rank)
	case ModelMPIIO:
		c.charge(p, c.spec.Track, "mpiio:track", nbytes)
		c.addUnpublished(rank)
	case ModelCommit:
		c.addUnpublished(rank)
	}
	c.checker.recordOp(evWrite, rank, req, start, procNow(p))
}

// recordRead feeds the checker; reads never pay a visibility charge
// (the cost asymmetry between models lives entirely on the write and
// publish paths).
func (c *Consistency) recordRead(rank int, req *ioreq.Request, start time.Duration) {
	c.checker.recordOp(evRead, rank, req, start, procNow(req.Proc))
}

func (c *Consistency) addUnpublished(rank int) {
	c.mu.Lock()
	c.unpublished[rank]++
	c.mu.Unlock()
}

// takeUnpublished clears and returns the rank's unpublished-write count.
func (c *Consistency) takeUnpublished(rank int) int {
	c.mu.Lock()
	n := c.unpublished[rank]
	delete(c.unpublished, rank)
	c.mu.Unlock()
	return n
}

// RankClose marks the rank's file close. Under session consistency a
// close with unpublished writes pays one publish barrier and makes the
// rank's writes visible; repeated closes are idempotent (only the first
// one after new writes charges).
func (c *Consistency) RankClose(p *vclock.Proc, rank int) {
	if c == nil {
		return
	}
	if c.spec.Model == ModelSession && c.takeUnpublished(rank) > 0 {
		c.charge(p, c.spec.Publish, "session:close-publish", 0)
		c.mPublishes.Add(1)
	}
	c.checker.recordMark(evClose, rank, procNow(p), 0)
}

// RankSync marks the rank's explicit synchronization point (the
// connector drain — MPI-IO's "sync" in sync-barrier-sync). Under mpiio
// a sync with unpublished writes pays one publish barrier; idempotent
// like RankClose.
func (c *Consistency) RankSync(p *vclock.Proc, rank int) {
	if c == nil {
		return
	}
	if c.spec.Model == ModelMPIIO && c.takeUnpublished(rank) > 0 {
		c.charge(p, c.spec.Publish, "mpiio:sync-publish", 0)
		c.mPublishes.Add(1)
	}
	c.checker.recordMark(evSync, rank, procNow(p), 0)
}

// Commit marks a global durable commit (the checkpoint, after its
// drain/barrier/fsync sequence completed) at epoch. Under commit
// consistency the committing rank pays one publish barrier when any
// rank has unpublished writes; every model records the commit instant,
// because it is the durability promise the checker verifies against
// the post-crash image.
func (c *Consistency) Commit(p *vclock.Proc, epoch int) {
	if c == nil {
		return
	}
	if c.spec.Model == ModelCommit {
		c.mu.Lock()
		n := len(c.unpublished)
		c.unpublished = make(map[int]int)
		c.mu.Unlock()
		if n > 0 {
			c.charge(p, c.spec.Publish, "commit:publish", 0)
			c.mPublishes.Add(1)
		}
	}
	c.checker.recordMark(evCommit, 0, procNow(p), epoch)
}

// VisibilityWaitNs returns the total charged visibility wait, for
// assertions and fingerprints. Zero when uninstrumented or nil.
func (c *Consistency) VisibilityWaitNs() int64 {
	if c == nil || c.mWaitNs == nil {
		return 0
	}
	return c.mWaitNs.Value()
}

// consistencyStage adapts one rank's view of a Consistency to
// ioreq.Stage. It sits upstream of the retry stage so a request is
// recorded (and charged) exactly once, after the whole retry loop
// succeeded.
type consistencyStage struct {
	c    *Consistency
	rank int
}

// Name implements ioreq.Stage.
func (s *consistencyStage) Name() string { return "consistency" }

// Process implements ioreq.Stage: execute first, then observe.
func (s *consistencyStage) Process(req *ioreq.Request, next func(*ioreq.Request) error) error {
	start := procNow(req.Proc)
	if err := next(req); err != nil {
		return err
	}
	if req.Op.IsWrite() {
		s.c.recordWrite(s.rank, req, start)
	} else {
		s.c.recordRead(s.rank, req, start)
	}
	return nil
}

// Flush implements ioreq.Stage; the stage buffers nothing.
func (s *consistencyStage) Flush(p *vclock.Proc, next func(*ioreq.Request) error) error {
	return nil
}

// SortModels returns the spectrum strongest-first; used by experiments
// and docs so orderings stay canonical.
func SortModels(ms []Model) {
	rank := map[Model]int{ModelPOSIX: 0, ModelSession: 1, ModelMPIIO: 2, ModelCommit: 3}
	sort.Slice(ms, func(i, j int) bool { return rank[ms[i]] < rank[ms[j]] })
}
