package pfs

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"asyncio/internal/hdf5"
	"asyncio/internal/vclock"
)

func smallGPFS(seed int64) DurabilityConfig {
	cfg := GPFSDurability(seed)
	cfg.BlockSize = 16 // tiny blocks so small tests span multiple units
	return cfg
}

// Writes stay in the volatile cache — invisible to the base — until a
// sync barrier, while reads see them immediately (read-your-writes).
func TestDurableStoreWriteBackVisibility(t *testing.T) {
	base := hdf5.NewMemStore()
	d := NewDurableStore(base, smallGPFS(1))
	data := []byte("hello, crash consistency")
	if _, err := d.WriteAt(data, 10); err != nil {
		t.Fatal(err)
	}
	if got := d.DirtyBytes(); got != int64(len(data)) {
		t.Fatalf("DirtyBytes = %d, want %d", got, len(data))
	}
	got := make([]byte, len(data))
	if _, err := d.ReadAt(got, 10); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read-your-writes: got %q", got)
	}
	if base.Size() != 0 {
		t.Fatalf("base grew to %d bytes before any sync", base.Size())
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := d.DirtyBytes(); got != 0 {
		t.Fatalf("DirtyBytes after Sync = %d, want 0", got)
	}
	bgot := make([]byte, len(data))
	if _, err := base.ReadAt(bgot, 10); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bgot, data) {
		t.Fatalf("base after Sync: got %q", bgot)
	}
}

// Overlapping writes merge last-write-wins, and the gap between sparse
// extents reads back as zeros (EOF gap fill within the logical size).
func TestDurableStoreOverlapAndGaps(t *testing.T) {
	d := NewDurableStore(hdf5.NewMemStore(), smallGPFS(1))
	if _, err := d.WriteAt([]byte("aaaa"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteAt([]byte("bb"), 2); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteAt([]byte("cc"), 8); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 10)
	if _, err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	want := []byte("aabb\x00\x00\x00\x00cc")
	if !bytes.Equal(got, want) {
		t.Fatalf("read = %q, want %q", got, want)
	}
	if n := d.DirtyBytes(); n != 6 {
		t.Fatalf("DirtyBytes = %d, want 6 (merged 4 + separate 2)", n)
	}
}

// SyncOn charges the flushing process latency plus dirty-bytes over
// bandwidth; a clean store charges only the latency floor.
func TestDurableStoreSyncChargesProc(t *testing.T) {
	cfg := smallGPFS(1)
	cfg.FlushLatency = time.Millisecond
	cfg.FlushBandwidth = 1000 // 1000 B/s: 500 bytes = 500 ms
	d := NewDurableStore(hdf5.NewMemStore(), cfg)
	if _, err := d.WriteAt(make([]byte, 500), 0); err != nil {
		t.Fatal(err)
	}
	clk := vclock.New()
	var elapsed time.Duration
	clk.Go("flusher", func(p *vclock.Proc) {
		start := p.Now()
		if err := d.SyncOn(p); err != nil {
			t.Error(err)
		}
		elapsed = p.Now() - start
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	want := time.Millisecond + 500*time.Millisecond
	if elapsed != want {
		t.Fatalf("flush charged %v, want %v", elapsed, want)
	}
}

// A crash tears the dirty cache at block granularity: each block
// survives or dies by its seeded draw, full surviving blocks are
// flushed, partially-covered surviving blocks are torn, and the base
// image shows exactly the surviving bytes.
func TestDurableStoreCrashGPFSTearing(t *testing.T) {
	base := hdf5.NewMemStore()
	cfg := smallGPFS(42)
	d := NewDurableStore(base, cfg)
	// 5 blocks of 16 bytes, written as one 76-byte extent starting at 2:
	// block 0 partial, blocks 1..3 full, block 4 partial.
	data := bytes.Repeat([]byte{0xAB}, 76)
	if _, err := d.WriteAt(data, 2); err != nil {
		t.Fatal(err)
	}
	rep := d.Crash(3 * time.Second)
	if rep == nil {
		t.Fatal("Crash returned nil on first call")
	}
	if rep.DirtyBytes != 76 {
		t.Fatalf("DirtyBytes = %d, want 76", rep.DirtyBytes)
	}
	if rep.Flushed+rep.Torn+rep.Lost != 76 {
		t.Fatalf("flushed %d + torn %d + lost %d != 76", rep.Flushed, rep.Torn, rep.Lost)
	}
	// Replay the decision per unit and check the base byte-for-byte.
	for u := int64(0); u < 5; u++ {
		blockStart := u * 16
		from, to := blockStart, blockStart+16
		if from < 2 {
			from = 2
		}
		if to > 78 {
			to = 78
		}
		got := make([]byte, to-from)
		_, err := base.ReadAt(got, from)
		survived := d.unitSurvives(u)
		if survived {
			if err != nil {
				t.Fatalf("block %d survived but base read failed: %v", u, err)
			}
			if !bytes.Equal(got, data[:to-from]) {
				t.Fatalf("block %d survived but bytes differ", u)
			}
		} else {
			for _, b := range got {
				if b == 0xAB && err == nil {
					t.Fatalf("block %d lost but its bytes reached the base", u)
				}
			}
		}
	}
	// Determinism: an identical store crashes identically.
	base2 := hdf5.NewMemStore()
	d2 := NewDurableStore(base2, cfg)
	if _, err := d2.WriteAt(data, 2); err != nil {
		t.Fatal(err)
	}
	rep2 := d2.Crash(3 * time.Second)
	if rep.Flushed != rep2.Flushed || rep.Torn != rep2.Torn || rep.Lost != rep2.Lost {
		t.Fatalf("crash not deterministic: %+v vs %+v", rep, rep2)
	}
}

// Lustre semantics: all stripe units on one OST share a fate, so with
// one OST the whole cache lives or dies together.
func TestDurableStoreCrashLustreSharedFate(t *testing.T) {
	cfg := LustreDurability(7, 1)
	cfg.StripeSize = 16
	base := hdf5.NewMemStore()
	d := NewDurableStore(base, cfg)
	if _, err := d.WriteAt(bytes.Repeat([]byte{1}, 64), 0); err != nil {
		t.Fatal(err)
	}
	rep := d.Crash(0)
	if rep.Flushed != 0 && rep.Flushed != 64 {
		t.Fatalf("one OST must flush all or nothing, got %d of 64", rep.Flushed)
	}
	if rep.Torn != 0 {
		t.Fatalf("aligned full-stripe writes cannot tear, got %d torn", rep.Torn)
	}
}

// After a crash the store is sealed.
func TestDurableStoreSealedAfterCrash(t *testing.T) {
	d := NewDurableStore(hdf5.NewMemStore(), smallGPFS(1))
	if _, err := d.WriteAt([]byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	if rep := d.Crash(0); rep == nil {
		t.Fatal("first Crash returned nil")
	}
	if rep := d.Crash(0); rep != nil {
		t.Fatal("second Crash returned a report; want nil (idempotent)")
	}
	if _, err := d.WriteAt([]byte{2}, 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("WriteAt after crash = %v, want ErrCrashed", err)
	}
	buf := make([]byte, 1)
	if _, err := d.ReadAt(buf, 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("ReadAt after crash = %v, want ErrCrashed", err)
	}
	if err := d.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Sync after crash = %v, want ErrCrashed", err)
	}
}

// The durable store satisfies the hdf5 container contract end to end: a
// file written through it, synced, and crashed reopens from the base.
func TestDurableStoreBacksContainer(t *testing.T) {
	base := hdf5.NewMemStore()
	d := NewDurableStore(base, smallGPFS(3))
	f, err := hdf5.Create(d)
	if err != nil {
		t.Fatal(err)
	}
	space := hdf5.MustSimple(8)
	ds, err := f.Root().CreateDataset(nil, "x", hdf5.F32, space, nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5A}, 32)
	if err := ds.Write(nil, nil, payload); err != nil {
		t.Fatal(err)
	}
	if err := f.Flush(nil); err != nil { // flushes metadata AND syncs the store
		t.Fatal(err)
	}
	d.Crash(0) // nothing dirty: crash must not damage synced state
	f2, err := hdf5.Open(base)
	if err != nil {
		t.Fatalf("reopening synced image: %v", err)
	}
	ds2, err := f2.Root().OpenDataset(nil, "x")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 32)
	if err := ds2.Read(nil, nil, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("synced dataset bytes differ after crash + reopen")
	}
}
