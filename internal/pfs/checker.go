// ConsistencyChecker is the visibility oracle behind -consistency's
// check=1: it records every write, read, sync, close, and commit on the
// virtual clock and asserts, after the run, that the program only
// depended on visibility the model actually guarantees — and that data
// the model promised durable survived a crash.
//
// Formal rules, per model, for a read R by rank r overlapping a write W
// by rank w ≠ r on the same dataset extent (intervals in virtual time,
// half-open):
//
//   - all models: R concurrent with W (R.Start < W.End and W.Start <
//     R.End) is a data race — no model defines the bytes observed.
//   - posix: W is visible once it completed; W.End ≤ R.Start suffices.
//   - session: visible only if w closed the file after W and before R:
//     ∃ Close(w,t) with W.End ≤ t ≤ R.Start.
//   - mpiio: sync-barrier-sync — the writer synced after W and the
//     reader synced after that, before R: ∃ Sync(w,tw), Sync(r,tr)
//     with W.End ≤ tw ≤ tr ≤ R.Start.
//   - commit: visible only once globally committed: ∃ Commit(t) with
//     W.End ≤ t ≤ R.Start.
//
// Cross-rank writes to one extent that overlap in virtual time violate
// posix (the range locks would have serialized them); the weaker models
// leave concurrent writers undefined until publish, so the checker
// allows them.
//
// Durability: every model records commit instants (the checkpoints'
// fsync barriers). A write that completed at or before the last commit
// is promised durable; VerifyDurable re-reads those extents from a
// post-crash image and compares payload checksums.
package pfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"asyncio/internal/hdf5"
	"asyncio/internal/ioreq"
)

type eventKind uint8

const (
	evWrite eventKind = iota
	evRead
	evSync
	evClose
	evCommit
)

func (k eventKind) String() string {
	switch k {
	case evWrite:
		return "write"
	case evRead:
		return "read"
	case evSync:
		return "sync"
	case evClose:
		return "close"
	case evCommit:
		return "commit"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// elemRun is one contiguous element run of a recorded selection.
type elemRun struct {
	off, n uint64
}

// consEvent is one recorded protocol event.
type consEvent struct {
	kind       eventKind
	rank       int
	path       string // dataset path; "" for marks
	elemSize   int64
	oneDim     bool
	runs       []elemRun
	start, end time.Duration // marks use end only
	sum        uint64        // FNV-1a of the payload, when materialized
	hasSum     bool
	epoch      int // commit only
	seq        uint64
}

// Violation is one assertion failure of the model's guarantees.
type Violation struct {
	Model Model
	// Kind is "data-race", "stale-read", "write-race", or
	// "lost-durable".
	Kind    string
	Dataset string
	// Rank is the observing rank (reader, or a racing writer);
	// PeerRank the rank whose write was involved.
	Rank, PeerRank int
	At             time.Duration
	Detail         string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s %s rank%d/rank%d at %v: %s",
		v.Model, v.Kind, v.Dataset, v.Rank, v.PeerRank, v.At, v.Detail)
}

// ViolationError is the typed error Check and VerifyDurable return: a
// run either passes the oracle clean or fails with one of these — never
// with silent corruption.
type ViolationError struct {
	Model      Model
	Violations []Violation
}

func (e *ViolationError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "consistency: %d %s-model violation(s)", len(e.Violations), e.Model)
	for i, v := range e.Violations {
		if i == 3 {
			fmt.Fprintf(&b, "; … %d more", len(e.Violations)-i)
			break
		}
		b.WriteString("; ")
		b.WriteString(v.String())
	}
	return b.String()
}

// ConsistencyChecker records protocol events for one run. All recording
// methods are safe for concurrent use and tolerate a nil receiver (the
// checker is only allocated under check=1).
type ConsistencyChecker struct {
	model Model
	mu    sync.Mutex
	evs   []consEvent
	seq   uint64
}

func newChecker(m Model) *ConsistencyChecker {
	return &ConsistencyChecker{model: m}
}

// Model returns the model whose guarantees this checker asserts.
func (ck *ConsistencyChecker) Model() Model {
	if ck == nil {
		return ""
	}
	return ck.model
}

// recordOp records a data operation from its executed request.
func (ck *ConsistencyChecker) recordOp(kind eventKind, rank int, req *ioreq.Request, start, end time.Duration) {
	if ck == nil {
		return
	}
	ev := consEvent{kind: kind, rank: rank, start: start, end: end}
	if ds := req.Dataset; ds != nil {
		ev.path = ds.Path()
		ev.elemSize = int64(ds.Dtype().Size)
		ev.oneDim = len(ds.Dims()) == 1
	}
	if sp := req.Space; sp != nil {
		_ = sp.EachRun(func(off, n uint64) error {
			ev.runs = append(ev.runs, elemRun{off: off, n: n})
			return nil
		})
	}
	if kind == evWrite && req.Op == ioreq.OpWrite && len(req.Buf) > 0 {
		ev.sum = fnv1a(req.Buf)
		ev.hasSum = true
	}
	ck.append(ev)
}

// recordMark records a sync/close/commit instant.
func (ck *ConsistencyChecker) recordMark(kind eventKind, rank int, at time.Duration, epoch int) {
	if ck == nil {
		return
	}
	ck.append(consEvent{kind: kind, rank: rank, end: at, epoch: epoch})
}

func (ck *ConsistencyChecker) append(ev consEvent) {
	ck.mu.Lock()
	ev.seq = ck.seq
	ck.seq++
	ck.evs = append(ck.evs, ev)
	ck.mu.Unlock()
}

// sorted returns a canonically ordered copy of the event log: by start,
// end, kind, rank, path, then extent — a pure function of virtual time,
// so it is identical at any shard count even though arrival order into
// the log is not.
func (ck *ConsistencyChecker) sorted() []consEvent {
	ck.mu.Lock()
	evs := append([]consEvent(nil), ck.evs...)
	ck.mu.Unlock()
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.start != b.start {
			return a.start < b.start
		}
		if a.end != b.end {
			return a.end < b.end
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.rank != b.rank {
			return a.rank < b.rank
		}
		if a.path != b.path {
			return a.path < b.path
		}
		if len(a.runs) > 0 && len(b.runs) > 0 && a.runs[0].off != b.runs[0].off {
			return a.runs[0].off < b.runs[0].off
		}
		return a.seq < b.seq
	})
	return evs
}

// Summary returns a deterministic one-line digest of the event log for
// cross-shard fingerprint comparisons.
func (ck *ConsistencyChecker) Summary() string {
	if ck == nil {
		return "consistency=off"
	}
	var w, r, s, c, m int
	var lastCommit time.Duration
	for _, ev := range ck.sorted() {
		switch ev.kind {
		case evWrite:
			w++
		case evRead:
			r++
		case evSync:
			s++
		case evClose:
			c++
		case evCommit:
			m++
			if ev.end > lastCommit {
				lastCommit = ev.end
			}
		}
	}
	return fmt.Sprintf("consistency=%s writes=%d reads=%d syncs=%d closes=%d commits=%d lastCommit=%v",
		ck.model, w, r, s, c, m, lastCommit)
}

// overlap reports whether two run sets on the same dataset share any
// elements.
func runsOverlap(a, b []elemRun) bool {
	for _, x := range a {
		for _, y := range b {
			if x.off < y.off+y.n && y.off < x.off+x.n {
				return true
			}
		}
	}
	return false
}

// Check asserts the model's visibility guarantees over the recorded
// log. It returns nil when the run is clean, or a *ViolationError.
func (ck *ConsistencyChecker) Check() error {
	if ck == nil {
		return nil
	}
	evs := ck.sorted()
	var writes, reads []consEvent
	syncs := map[int][]time.Duration{}  // rank → sync instants, ascending
	closes := map[int][]time.Duration{} // rank → close instants, ascending
	var commits []time.Duration
	for _, ev := range evs {
		switch ev.kind {
		case evWrite:
			writes = append(writes, ev)
		case evRead:
			reads = append(reads, ev)
		case evSync:
			syncs[ev.rank] = append(syncs[ev.rank], ev.end)
		case evClose:
			closes[ev.rank] = append(closes[ev.rank], ev.end)
		case evCommit:
			commits = append(commits, ev.end)
		}
	}
	var vs []Violation
	for _, r := range reads {
		for _, w := range writes {
			if w.rank == r.rank || w.path != r.path || !runsOverlap(w.runs, r.runs) {
				continue
			}
			if r.start < w.end && w.start < r.end {
				vs = append(vs, Violation{
					Model: ck.model, Kind: "data-race", Dataset: r.path,
					Rank: r.rank, PeerRank: w.rank, At: r.start,
					Detail: fmt.Sprintf("read [%v,%v) concurrent with write [%v,%v)", r.start, r.end, w.start, w.end),
				})
				continue
			}
			if w.end > r.start {
				// The write happened entirely after the read; no
				// visibility obligation.
				continue
			}
			if !ck.visibleAt(w, r, syncs, closes, commits) {
				vs = append(vs, Violation{
					Model: ck.model, Kind: "stale-read", Dataset: r.path,
					Rank: r.rank, PeerRank: w.rank, At: r.start,
					Detail: fmt.Sprintf("read at %v observes write [%v,%v) the %s model has not published",
						r.start, w.start, w.end, ck.model),
				})
			}
		}
	}
	if ck.model == ModelPOSIX {
		for i, a := range writes {
			for _, b := range writes[i+1:] {
				if a.rank == b.rank || a.path != b.path || !runsOverlap(a.runs, b.runs) {
					continue
				}
				if a.start < b.end && b.start < a.end {
					vs = append(vs, Violation{
						Model: ck.model, Kind: "write-race", Dataset: a.path,
						Rank: b.rank, PeerRank: a.rank, At: b.start,
						Detail: fmt.Sprintf("writes [%v,%v) and [%v,%v) overlap in time on one extent under posix locking",
							a.start, a.end, b.start, b.end),
					})
				}
			}
		}
	}
	if len(vs) == 0 {
		return nil
	}
	return &ViolationError{Model: ck.model, Violations: vs}
}

// visibleAt reports whether write w is guaranteed visible to read r
// under the model, given the publish events.
func (ck *ConsistencyChecker) visibleAt(w, r consEvent, syncs, closes map[int][]time.Duration, commits []time.Duration) bool {
	switch ck.model {
	case ModelPOSIX:
		return true // w.end ≤ r.start already established
	case ModelSession:
		return firstAtOrAfter(closes[w.rank], w.end, r.start) >= 0
	case ModelMPIIO:
		tw := firstAtOrAfter(syncs[w.rank], w.end, r.start)
		if tw < 0 {
			return false
		}
		return firstAtOrAfter(syncs[r.rank], time.Duration(tw), r.start) >= 0
	case ModelCommit:
		return firstAtOrAfter(commits, w.end, r.start) >= 0
	}
	return false
}

// firstAtOrAfter returns the earliest instant in ts with from ≤ t ≤ to,
// or -1 when none exists. ts is ascending.
func firstAtOrAfter(ts []time.Duration, from, to time.Duration) int64 {
	i := sort.Search(len(ts), func(i int) bool { return ts[i] >= from })
	if i < len(ts) && ts[i] <= to {
		return int64(ts[i])
	}
	return -1
}

// LastCommit returns the latest recorded commit instant and whether one
// exists.
func (ck *ConsistencyChecker) LastCommit() (time.Duration, bool) {
	if ck == nil {
		return 0, false
	}
	ck.mu.Lock()
	defer ck.mu.Unlock()
	var last time.Duration
	ok := false
	for _, ev := range ck.evs {
		if ev.kind == evCommit && (!ok || ev.end > last) {
			last, ok = ev.end, true
		}
	}
	return last, ok
}

// VerifyDurable asserts the model's durability promise against a
// post-crash (and post-recovery) image: every materialized write that
// completed at or before the last commit must read back with its
// recorded checksum. Writes whose extents a later recorded write
// overwrote are skipped (last write wins), as are discard-mode writes
// (no payload to checksum) and non-1-D datasets (the harness workloads
// are 1-D; flattened-run read-back is only defined there). Returns nil,
// a *ViolationError, or an I/O error from the image itself.
func (ck *ConsistencyChecker) VerifyDurable(store Store) error {
	if ck == nil {
		return nil
	}
	lastCommit, ok := ck.LastCommit()
	if !ok {
		return nil // nothing was promised
	}
	evs := ck.sorted()
	var writes []consEvent
	for _, ev := range evs {
		if ev.kind == evWrite {
			writes = append(writes, ev)
		}
	}
	var f *hdf5.File
	var vs []Violation
	for i, w := range writes {
		if !w.hasSum || !w.oneDim || w.end > lastCommit {
			continue
		}
		overwritten := false
		for _, later := range writes[i+1:] {
			if later.path == w.path && later.start >= w.end && runsOverlap(w.runs, later.runs) {
				overwritten = true
				break
			}
		}
		if overwritten {
			continue
		}
		if f == nil {
			var err error
			f, err = hdf5.Open(store)
			if err != nil {
				return fmt.Errorf("consistency: opening post-crash image: %w", err)
			}
		}
		sum, err := readbackSum(f, w)
		if err != nil {
			vs = append(vs, Violation{
				Model: ck.model, Kind: "lost-durable", Dataset: w.path,
				Rank: w.rank, PeerRank: w.rank, At: w.end,
				Detail: fmt.Sprintf("committed write unreadable after crash: %v", err),
			})
			continue
		}
		if sum != w.sum {
			vs = append(vs, Violation{
				Model: ck.model, Kind: "lost-durable", Dataset: w.path,
				Rank: w.rank, PeerRank: w.rank, At: w.end,
				Detail: fmt.Sprintf("committed write (ended %v ≤ last commit %v) reads back corrupted", w.end, lastCommit),
			})
		}
	}
	if len(vs) == 0 {
		return nil
	}
	return &ViolationError{Model: ck.model, Violations: vs}
}

// readbackSum re-reads the write's element runs from the image and
// checksums them in run order (the order the payload was recorded in).
func readbackSum(f *hdf5.File, w consEvent) (uint64, error) {
	ds, err := f.Root().OpenDataset(nil, strings.TrimPrefix(w.path, "/"))
	if err != nil {
		return 0, err
	}
	dims := ds.Dims()
	if len(dims) != 1 {
		return 0, fmt.Errorf("dataset %s is not 1-D", w.path)
	}
	h := fnvOffset
	for _, run := range w.runs {
		sp, err := hdf5.NewSimple(dims[0])
		if err != nil {
			return 0, err
		}
		if err := sp.SelectHyperslab([]uint64{run.off}, nil, []uint64{1}, []uint64{run.n}); err != nil {
			return 0, err
		}
		buf := make([]byte, run.n*uint64(w.elemSize))
		if err := ds.Read(nil, sp, buf); err != nil {
			return 0, err
		}
		h = fnv1aInto(h, buf)
	}
	return h, nil
}

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// fnv1a hashes b with FNV-1a 64.
func fnv1a(b []byte) uint64 { return fnv1aInto(fnvOffset, b) }

func fnv1aInto(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}
