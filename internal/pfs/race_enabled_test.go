//go:build race

package pfs

// raceEnabled reports whether the race detector is compiled in. The
// recorder-concurrency test always runs; the constant only scales the
// iteration count down under the detector's ~10× slowdown.
const raceEnabled = true
