package pfs

import (
	"math"
	"sync"
	"testing"
	"time"

	"asyncio/internal/vclock"
)

const (
	MB = 1e6
	GB = 1e9
)

func basicTarget(clk *vclock.Clock) *Target {
	return NewTarget(clk, TargetConfig{
		Name:        "test",
		BackendPeak: 100 * MB,
		PerFlowBW:   10 * MB,
	})
}

func TestSingleFlowLimitedByPerFlowBW(t *testing.T) {
	clk := vclock.New()
	tg := basicTarget(clk)
	var end time.Duration
	clk.Go("r", func(p *vclock.Proc) {
		tg.WriteData(p, 10*MB)
		end = p.Now()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	// 10 MB at a 10 MB/s per-flow cap ≈ 1s (soft saturation trims <1%).
	if math.Abs(end.Seconds()-1) > 0.02 {
		t.Fatalf("end = %vs, want ~1s", end.Seconds())
	}
}

func TestAggregateScalesUntilBackendPeak(t *testing.T) {
	// 20 flows × 10 MB/s per-flow = 200 MB/s demand versus a 100 MB/s
	// backend: each flow runs at 5 MB/s.
	clk := vclock.New()
	tg := basicTarget(clk)
	var mu sync.Mutex
	var last time.Duration
	for i := 0; i < 20; i++ {
		clk.Go("r", func(p *vclock.Proc) {
			tg.WriteData(p, 10*MB)
			mu.Lock()
			if p.Now() > last {
				last = p.Now()
			}
			mu.Unlock()
		})
	}
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	// 200 MB total demand vs a 100 MB/s backend: ~2s (soft saturation
	// admits slightly less than the hard-min rate).
	if last.Seconds() < 1.95 || last.Seconds() > 2.3 {
		t.Fatalf("saturated completion at %vs, want ~2s", last.Seconds())
	}
}

func TestSmallRequestEfficiencyPenalty(t *testing.T) {
	clk := vclock.New()
	tg := NewTarget(clk, TargetConfig{
		Name:        "penalized",
		BackendPeak: 100 * MB,
		ReqRamp:     1 << 20, // 1 MiB knee
	})
	var small, large time.Duration
	clk.Go("r", func(p *vclock.Proc) {
		start := p.Now()
		tg.WriteData(p, 1<<20) // equal to ramp → efficiency 0.5
		small = p.Now() - start
		start = p.Now()
		tg.WriteData(p, 100<<20) // efficiency ~0.99
		large = p.Now() - start
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	smallBW := float64(1<<20) / small.Seconds()
	largeBW := float64(100<<20) / large.Seconds()
	if smallBW > 0.55*largeBW {
		t.Fatalf("small request bw %.3g not penalized vs %.3g", smallBW, largeBW)
	}
}

func TestOpAndMetaLatency(t *testing.T) {
	clk := vclock.New()
	tg := NewTarget(clk, TargetConfig{
		Name:        "lat",
		BackendPeak: 100 * MB,
		MetaLatency: 2 * time.Millisecond,
		OpLatency:   1 * time.Millisecond,
	})
	var end time.Duration
	clk.Go("r", func(p *vclock.Proc) {
		tg.MetaOp(p)
		tg.ReadData(p, 100*MB) // 1ms latency + 1s transfer
		end = p.Now()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	want := 2*time.Millisecond + 1*time.Millisecond + time.Second
	if d := end - want; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("end = %v, want %v", end, want)
	}
}

func TestNilProcAndZeroBytesAreNoops(t *testing.T) {
	clk := vclock.New()
	tg := basicTarget(clk)
	tg.WriteData(nil, 100*MB)
	tg.ReadData(nil, 100*MB)
	tg.MetaOp(nil)
	clk.Go("r", func(p *vclock.Proc) {
		tg.WriteData(p, 0)
		tg.ReadData(p, -1)
		if p.Now() != 0 {
			t.Errorf("no-op transfers advanced time to %v", p.Now())
		}
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestContentionSlowsSingleFlow(t *testing.T) {
	// Contention models shared fabric plus storage, so even a lone
	// flow's client path degrades — the paper's Fig. 8 scatter exists
	// at every scale.
	clk := vclock.New()
	tg := basicTarget(clk)
	tg.SetContentionFactor(0.5)
	if tg.ContentionFactor() != 0.5 {
		t.Fatalf("factor = %v", tg.ContentionFactor())
	}
	var end time.Duration
	clk.Go("r", func(p *vclock.Proc) {
		tg.WriteData(p, 10*MB)
		end = p.Now()
	})
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	// Per-flow 10→5 MB/s: 10 MB takes ~2s.
	if end.Seconds() < 1.95 || end.Seconds() > 2.1 {
		t.Fatalf("end = %vs, want ~2s", end.Seconds())
	}
}

func TestContentionBindsUnderLoad(t *testing.T) {
	clk := vclock.New()
	tg := basicTarget(clk)
	tg.SetContentionFactor(0.5) // backend 50 MB/s
	var mu sync.Mutex
	var last time.Duration
	for i := 0; i < 10; i++ {
		clk.Go("r", func(p *vclock.Proc) {
			tg.WriteData(p, 10*MB)
			mu.Lock()
			if p.Now() > last {
				last = p.Now()
			}
			mu.Unlock()
		})
	}
	if err := clk.Wait(); err != nil {
		t.Fatal(err)
	}
	// 100 MB total at ~50 MB/s ≈ 2s (without contention ~1s).
	if last.Seconds() < 1.95 || last.Seconds() > 2.6 {
		t.Fatalf("contended completion at %vs, want ~2s", last.Seconds())
	}
}

func TestContentionFactorValidation(t *testing.T) {
	tg := basicTarget(vclock.New())
	for _, f := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetContentionFactor(%v) did not panic", f)
				}
			}()
			tg.SetContentionFactor(f)
		}()
	}
}

func TestContentionForDayDeterministicAndBounded(t *testing.T) {
	seen := map[float64]bool{}
	for day := int64(0); day < 50; day++ {
		f1 := ContentionForDay(42, day)
		f2 := ContentionForDay(42, day)
		if f1 != f2 {
			t.Fatalf("day %d not deterministic: %v vs %v", day, f1, f2)
		}
		if f1 <= 0.3 || f1 > 1 {
			t.Fatalf("day %d factor %v outside (0.3, 1]", day, f1)
		}
		seen[f1] = true
	}
	if len(seen) < 10 {
		t.Fatalf("only %d distinct factors across 50 days", len(seen))
	}
	if ContentionForDay(42, 1) == ContentionForDay(43, 1) {
		t.Fatal("different seeds produced identical factors")
	}
}

func TestGPFSStrongScalingShape(t *testing.T) {
	// The headline strong-scaling effect: fixed total data, more ranks →
	// smaller requests → lower aggregate bandwidth once saturated.
	clk := vclock.New()
	g := GPFS(clk, GPFSConfig{
		BackendPeak: 100 * MB,
		PerFlowBW:   10 * MB,
		ReactRamp:   4 << 20,
	})
	bwAt := func(ranks int) float64 {
		total := int64(64 << 20)
		per := total / int64(ranks)
		return g.EffectiveBandwidth(ranks, per)
	}
	if bwAt(16) <= bwAt(4) {
		t.Fatalf("pre-saturation scaling broken: %v vs %v", bwAt(16), bwAt(4))
	}
	if bwAt(512) >= bwAt(16) {
		t.Fatalf("strong-scaling decay missing: bw(512)=%.3g >= bw(16)=%.3g", bwAt(512), bwAt(16))
	}
}

func TestLustreBackendIsOSTAggregate(t *testing.T) {
	clk := vclock.New()
	l := Lustre(clk, LustreConfig{
		OSTs:         72,
		OSTBandwidth: 1.4 * GB,
		PerFlowBW:    0.1 * GB,
	})
	want := 72 * 1.4 * GB
	if got := l.Config().BackendPeak; math.Abs(got-want) > 1 {
		t.Fatalf("BackendPeak = %v, want %v", got, want)
	}
	// Knee position: n*perFlow = peak → ~1008 ranks; well past it the
	// soft saturation approaches the OST aggregate.
	if bw := l.EffectiveBandwidth(4096, 64<<20); bw < 0.9*want || bw > want {
		t.Fatalf("saturated bw = %.4g, want ≈ %.4g", bw, want)
	}
}

func TestBurstBufferFasterThanLustre(t *testing.T) {
	clk := vclock.New()
	bb := BurstBuffer(clk, 1.7e12, 0.3*GB)
	l := Lustre(clk, LustreConfig{OSTs: 72, OSTBandwidth: 1.4 * GB, PerFlowBW: 0.1 * GB})
	if bb.EffectiveBandwidth(4096, 32<<20) <= l.EffectiveBandwidth(4096, 32<<20) {
		t.Fatal("burst buffer not faster than Lustre at scale")
	}
}
