// Durability semantics for targets: a volatile write-back cache in
// front of the backing store, explicit flush barriers with modeled
// cost, and crash behavior that discards or tears un-flushed extents
// at the granularity the file system actually persists —
//
//   - GPFS writes back page-cache data in file-system blocks; a crash
//     leaves each in-flight block either wholly persisted or wholly
//     lost, and a block only partially covered by dirty data tears
//     (new bytes mixed with old within one block).
//   - Lustre stripes a file round-robin across OSTs and each OST's
//     client cache flushes independently; a crash keeps or loses the
//     dirty stripe units of each OST as a group, producing the
//     characteristic interleaved tearing across the file.
//
// DurableStore implements the same structural Store interface as
// hdf5.Store, so it slots under an hdf5.File unchanged; everything here
// is seeded and driven by virtual time, so crash outcomes replay
// byte-identically.
package pfs

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"asyncio/internal/critpath"
	"asyncio/internal/metrics"
	"asyncio/internal/vclock"
)

// Store is the byte store a DurableStore wraps — structurally identical
// to hdf5.Store so either package's implementations interchange without
// an import edge.
type Store interface {
	io.ReaderAt
	io.WriterAt
	Size() int64
	Truncate(int64) error
	Sync() error
}

// DurabilitySemantics selects the crash-tearing model.
type DurabilitySemantics int

const (
	// DurabilityGPFS tears at file-system block boundaries.
	DurabilityGPFS DurabilitySemantics = iota
	// DurabilityLustre tears at stripe boundaries, grouped per OST.
	DurabilityLustre
)

// String names the semantics.
func (s DurabilitySemantics) String() string {
	switch s {
	case DurabilityGPFS:
		return "gpfs"
	case DurabilityLustre:
		return "lustre"
	default:
		return fmt.Sprintf("semantics(%d)", int(s))
	}
}

// DurabilityConfig parameterizes a DurableStore.
type DurabilityConfig struct {
	Semantics DurabilitySemantics
	// BlockSize is the GPFS write-back granule (Alpine uses 16 MiB).
	BlockSize int64
	// StripeSize and OSTs shape Lustre's round-robin unit→OST mapping.
	StripeSize int64
	OSTs       int
	// SurviveProb is the chance an in-flight unit (block, or one OST's
	// dirty stripes) reached stable storage before the crash.
	SurviveProb float64
	// FlushLatency is the fixed fsync barrier cost; FlushBandwidth
	// (bytes/s) adds a per-dirty-byte cost. Zero values charge nothing.
	FlushLatency   time.Duration
	FlushBandwidth float64
	// Seed drives the per-unit survival draws.
	Seed int64
}

// GPFSDurability returns the block-granular model with Alpine-like
// parameters.
func GPFSDurability(seed int64) DurabilityConfig {
	return DurabilityConfig{
		Semantics:      DurabilityGPFS,
		BlockSize:      16 << 20,
		SurviveProb:    0.5,
		FlushLatency:   500 * time.Microsecond,
		FlushBandwidth: 2e9,
		Seed:           seed,
	}
}

// LustreDurability returns the stripe/OST-granular model with
// Cori-scratch-like parameters.
func LustreDurability(seed int64, osts int) DurabilityConfig {
	if osts <= 0 {
		osts = 1
	}
	return DurabilityConfig{
		Semantics:      DurabilityLustre,
		StripeSize:     1 << 20,
		OSTs:           osts,
		SurviveProb:    0.5,
		FlushLatency:   300 * time.Microsecond,
		FlushBandwidth: 4e9,
		Seed:           seed,
	}
}

// unitSize returns the tearing granule.
func (c DurabilityConfig) unitSize() int64 {
	if c.Semantics == DurabilityLustre {
		if c.StripeSize > 0 {
			return c.StripeSize
		}
		return 1 << 20
	}
	if c.BlockSize > 0 {
		return c.BlockSize
	}
	return 16 << 20
}

// ErrCrashed is returned by store operations after a crash sealed the
// store; recovery reopens the backing image directly.
var ErrCrashed = errors.New("pfs: store crashed")

// dirtyExtent is one volatile byte range, payload included so a flush
// can materialize it into the base store.
type dirtyExtent struct {
	off  int64
	data []byte
}

// DurableStore is a volatile write-back cache over a base Store. Writes
// land in the cache and become durable only at Sync (or SyncOn, which
// also charges the modeled flush cost); Crash discards or tears
// whatever is still volatile.
type DurableStore struct {
	mu      sync.Mutex
	base    Store
	cfg     DurabilityConfig
	dirty   []dirtyExtent // sorted by off, non-overlapping
	nDirty  int64         // total volatile bytes
	size    int64         // logical extent (base may lag until flush)
	crashed bool

	mDirty        *metrics.Gauge
	mFlushes      *metrics.Counter
	mFlushedBytes *metrics.Counter
	crit          *critpath.Recorder
}

// SetCrit attaches the critical-path recorder; charged fsync barriers
// record fsync-journal edges. Call once, before the run.
func (d *DurableStore) SetCrit(rec *critpath.Recorder) {
	if d == nil {
		return
	}
	d.crit = rec
}

// NewDurableStore wraps base with write-back durability semantics.
func NewDurableStore(base Store, cfg DurabilityConfig) *DurableStore {
	return &DurableStore{base: base, cfg: cfg, size: base.Size()}
}

// Instrument registers the dirty-byte gauge and flush counters on m
// under "pfs.<name>.durability.*". Call once, before the run.
func (d *DurableStore) Instrument(m *metrics.Registry, name string) {
	if d == nil || m == nil {
		return
	}
	pre := "pfs." + name + ".durability."
	d.mDirty = m.Gauge(pre + "dirty_bytes")
	d.mFlushes = m.Counter(pre + "flushes")
	d.mFlushedBytes = m.Counter(pre + "flushed_bytes")
}

// DirtyBytes returns the current volatile byte count.
func (d *DurableStore) DirtyBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nDirty
}

// Base returns the wrapped store (the post-crash "disk image").
func (d *DurableStore) Base() Store { return d.base }

// WriteAt implements io.WriterAt: the bytes land in the volatile cache.
func (d *DurableStore) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("pfs: negative write offset %d", off)
	}
	if len(p) == 0 {
		return 0, nil
	}
	d.mu.Lock()
	if d.crashed {
		d.mu.Unlock()
		return 0, ErrCrashed
	}
	d.insertLocked(off, p)
	if end := off + int64(len(p)); end > d.size {
		d.size = end
	}
	n := d.nDirty
	d.mu.Unlock()
	d.mDirty.Set(float64(n))
	return len(p), nil
}

// insertLocked merges [off, off+len(p)) into the sorted extent list,
// overwriting any overlap (last write wins, like a page cache).
func (d *DurableStore) insertLocked(off int64, p []byte) {
	end := off + int64(len(p))
	// Find the first extent that could overlap or touch.
	i := sort.Search(len(d.dirty), func(i int) bool {
		return d.dirty[i].off+int64(len(d.dirty[i].data)) >= off
	})
	newOff, newData := off, append([]byte(nil), p...)
	j := i
	for ; j < len(d.dirty); j++ {
		e := d.dirty[j]
		eEnd := e.off + int64(len(e.data))
		if e.off > end {
			break
		}
		// Merge e into the new extent (new bytes win on overlap).
		d.nDirty -= int64(len(e.data))
		if e.off < newOff {
			head := e.data[:newOff-e.off]
			newData = append(append([]byte(nil), head...), newData...)
			newOff = e.off
		}
		if eEnd > end {
			newData = append(newData, e.data[int64(len(e.data))-(eEnd-end):]...)
			end = eEnd
		}
	}
	merged := dirtyExtent{off: newOff, data: newData}
	d.nDirty += int64(len(newData))
	d.dirty = append(d.dirty[:i], append([]dirtyExtent{merged}, d.dirty[j:]...)...)
}

// ReadAt implements io.ReaderAt with read-your-writes visibility: base
// bytes overlaid by any volatile extents.
func (d *DurableStore) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("pfs: negative read offset %d", off)
	}
	d.mu.Lock()
	if d.crashed {
		d.mu.Unlock()
		return 0, ErrCrashed
	}
	size := d.size
	if off >= size {
		d.mu.Unlock()
		return 0, io.EOF
	}
	want := int64(len(p))
	if off+want > size {
		want = size - off
	}
	// Base first (EOF within the logical extent reads as zeros — the
	// base may not have been extended yet), then overlay.
	n, err := d.base.ReadAt(p[:want], off)
	if err != nil && err != io.EOF {
		d.mu.Unlock()
		return n, err
	}
	for i := int64(n); i < want; i++ {
		p[i] = 0
	}
	end := off + want
	i := sort.Search(len(d.dirty), func(i int) bool {
		return d.dirty[i].off+int64(len(d.dirty[i].data)) > off
	})
	for ; i < len(d.dirty) && d.dirty[i].off < end; i++ {
		e := d.dirty[i]
		from, to := e.off, e.off+int64(len(e.data))
		if from < off {
			from = off
		}
		if to > end {
			to = end
		}
		copy(p[from-off:to-off], e.data[from-e.off:to-e.off])
	}
	d.mu.Unlock()
	if want < int64(len(p)) {
		return int(want), io.EOF
	}
	return int(want), nil
}

// Size returns the logical extent (volatile writes included).
func (d *DurableStore) Size() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.size
}

// Truncate sets the logical extent, dropping volatile bytes beyond it.
func (d *DurableStore) Truncate(n int64) error {
	if n < 0 {
		return fmt.Errorf("pfs: negative truncate %d", n)
	}
	d.mu.Lock()
	if d.crashed {
		d.mu.Unlock()
		return ErrCrashed
	}
	d.size = n
	kept := d.dirty[:0]
	var total int64
	for _, e := range d.dirty {
		if e.off >= n {
			continue
		}
		if end := e.off + int64(len(e.data)); end > n {
			e.data = e.data[:n-e.off]
		}
		kept = append(kept, e)
		total += int64(len(e.data))
	}
	d.dirty = kept
	d.nDirty = total
	d.mu.Unlock()
	d.mDirty.Set(float64(total))
	return d.base.Truncate(n)
}

// Sync commits every volatile extent to the base store — the fsync
// barrier, without time cost (host-side callers). Simulation code uses
// SyncOn to charge the flush.
func (d *DurableStore) Sync() error { return d.syncCharged(nil) }

// SyncOn commits like Sync and charges p the modeled flush cost: the
// fixed barrier latency plus dirty-bytes over the flush bandwidth.
func (d *DurableStore) SyncOn(p *vclock.Proc) error { return d.syncCharged(p) }

func (d *DurableStore) syncCharged(p *vclock.Proc) error {
	d.mu.Lock()
	if d.crashed {
		d.mu.Unlock()
		return ErrCrashed
	}
	dirty := d.dirty
	nd := d.nDirty
	d.dirty = nil
	d.nDirty = 0
	d.mu.Unlock()
	for _, e := range dirty {
		if _, err := d.base.WriteAt(e.data, e.off); err != nil {
			return fmt.Errorf("pfs: flush at %d: %w", e.off, err)
		}
	}
	if err := d.base.Sync(); err != nil {
		return err
	}
	d.mDirty.Set(0)
	d.mFlushes.Add(1)
	d.mFlushedBytes.Add(nd)
	if p != nil && (d.cfg.FlushLatency > 0 || d.cfg.FlushBandwidth > 0) {
		cost := d.cfg.FlushLatency
		if d.cfg.FlushBandwidth > 0 && nd > 0 {
			cost += time.Duration(float64(nd) / d.cfg.FlushBandwidth * float64(time.Second))
		}
		start := p.Now()
		p.Sleep(cost)
		d.crit.Record(critpath.Edge{
			Track: p.Name(), Cause: critpath.FsyncJournal, Subsystem: "pfs",
			Detail: "fsync", Start: start, End: p.Now(), Bytes: nd,
		})
	}
	return nil
}

// CrashExtentState classifies one extent of a crash report.
type CrashExtentState int

const (
	// ExtentFlushed reached stable storage despite the crash (its
	// write-back completed in time).
	ExtentFlushed CrashExtentState = iota
	// ExtentTorn was partially persisted: new bytes mixed with old
	// within a block/stripe unit.
	ExtentTorn
	// ExtentLost never reached stable storage.
	ExtentLost
)

// String names the state.
func (s CrashExtentState) String() string {
	switch s {
	case ExtentFlushed:
		return "flushed"
	case ExtentTorn:
		return "torn"
	case ExtentLost:
		return "lost"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// CrashExtent is one byte range's fate in a crash.
type CrashExtent struct {
	Off, Len int64
	State    CrashExtentState
}

// CrashReport enumerates what a crash did to the volatile cache.
type CrashReport struct {
	At         time.Duration
	Semantics  DurabilitySemantics
	DirtyBytes int64 // volatile at the instant of the crash
	Flushed    int64 // bytes that made it to stable storage anyway
	Torn       int64 // bytes persisted into partially-covered units
	Lost       int64
	Extents    []CrashExtent // unit-granular fates, sorted by offset
}

// Crash seals the store at virtual time at: every volatile extent is
// discarded, torn, or (racing write-back) persisted per the configured
// semantics, with seeded deterministic draws. Subsequent operations
// return ErrCrashed; the surviving image is read via Base. Idempotent —
// the first crash wins and later calls return a nil report.
func (d *DurableStore) Crash(at time.Duration) *CrashReport {
	d.mu.Lock()
	if d.crashed {
		d.mu.Unlock()
		return nil
	}
	d.crashed = true
	dirty := d.dirty
	nd := d.nDirty
	d.dirty = nil
	d.nDirty = 0
	d.mu.Unlock()
	d.mDirty.Set(0)

	rep := &CrashReport{At: at, Semantics: d.cfg.Semantics, DirtyBytes: nd}
	unit := d.cfg.unitSize()
	for _, e := range dirty {
		end := e.off + int64(len(e.data))
		for u := e.off / unit * unit; u < end; u += unit {
			from, to := u, u+unit
			if from < e.off {
				from = e.off
			}
			if to > end {
				to = end
			}
			full := from == u && to == u+unit
			if d.unitSurvives(u / unit) {
				if _, err := d.base.WriteAt(e.data[from-e.off:to-e.off], from); err != nil {
					// The base store failing mid-crash is a host error;
					// count the bytes lost and continue.
					full = false
					rep.addExtent(from, to-from, ExtentLost)
					rep.Lost += to - from
					continue
				}
				if full {
					rep.addExtent(from, to-from, ExtentFlushed)
					rep.Flushed += to - from
				} else {
					rep.addExtent(from, to-from, ExtentTorn)
					rep.Torn += to - from
				}
			} else {
				rep.addExtent(from, to-from, ExtentLost)
				rep.Lost += to - from
			}
		}
	}
	return rep
}

// addExtent appends an extent, merging runs of equal state.
func (r *CrashReport) addExtent(off, n int64, st CrashExtentState) {
	if k := len(r.Extents); k > 0 {
		last := &r.Extents[k-1]
		if last.State == st && last.Off+last.Len == off {
			last.Len += n
			return
		}
	}
	r.Extents = append(r.Extents, CrashExtent{Off: off, Len: n, State: st})
}

// unitSurvives decides, deterministically from the seed, whether the
// unit with the given index reached stable storage before the crash.
// GPFS draws per block; Lustre draws per OST, so every stripe unit on
// one OST shares a fate.
func (d *DurableStore) unitSurvives(unitIdx int64) bool {
	key := unitIdx
	if d.cfg.Semantics == DurabilityLustre {
		osts := int64(d.cfg.OSTs)
		if osts <= 0 {
			osts = 1
		}
		key = unitIdx % osts
	}
	return seededDraw(d.cfg.Seed, key) < d.cfg.SurviveProb
}

// seededDraw maps (seed, key) to a deterministic pseudo-uniform value
// in [0,1): FNV-1a with an xorshift-multiply finalizer, matching the
// injector's draw so schedules replay byte-identically.
func seededDraw(seed, key int64) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(uint64(seed) >> (8 * i)))
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(uint64(key) >> (8 * i)))
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return float64(h>>11) / float64(1<<53)
}
