// Package pfs models parallel file systems as timing drivers for the
// hdf5 library: GPFS (Summit's Alpine — workload-reactive allocation, no
// user-visible striping) and Lustre (Cori's scratch — OSTs with
// user-controlled stripe settings), plus an SSD burst buffer.
//
// A Target is a processor-sharing bandwidth server with three additional
// effects the paper's evaluation hinges on:
//
//   - a per-flow rate cap (the client/injection bandwidth), which makes
//     aggregate bandwidth grow with rank count until the backend
//     saturates (the weak-scaling knee in Fig. 3);
//   - a per-request efficiency that decays for small requests, which
//     makes aggregate synchronous bandwidth *fall* as strong scaling
//     shrinks each rank's share (Figs. 4 and 6);
//   - a run-level contention factor, deterministic per (seed, day),
//     reproducing the cross-day variability of Fig. 8. Contention
//     degrades the whole shared path (fabric and storage) but never the
//     node-local staging asynchronous I/O buffers through, which is
//     exactly why the paper finds async bandwidth stable across days.
package pfs

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"asyncio/internal/critpath"
	"asyncio/internal/flow"
	"asyncio/internal/metrics"
	"asyncio/internal/trace"
	"asyncio/internal/vclock"
)

// TargetConfig describes one storage target.
type TargetConfig struct {
	Name string
	// BackendPeak is the aggregate backend bandwidth in bytes/s.
	BackendPeak float64
	// PerFlowBW caps each flow (one rank's request) in bytes/s.
	PerFlowBW float64
	// ReqRamp sets the small-request efficiency knee: a request of b
	// bytes runs at efficiency b/(b+ReqRamp). Zero disables the penalty.
	ReqRamp int64
	// MetaLatency is charged per metadata operation.
	MetaLatency time.Duration
	// OpLatency is charged per data request before the transfer.
	OpLatency time.Duration
}

// Target is a storage tier. It implements hdf5.Driver (and the
// span-aware hdf5.SpanDriver), so a file created with
// hdf5.WithDriver(target) charges all its I/O here.
type Target struct {
	cfg        TargetConfig
	srv        *flow.Server
	contention atomic.Uint64 // float64 bits; capacity multiplier in (0,1]
	fault      atomic.Uint64 // float64 bits; fault-injection slowdown in (0,1]
	hook       FaultHook     // set once before the run; nil when no faults

	// Dispatch counters: one data op = one charged request against the
	// backend (the unit the small-request penalty applies to).
	writeOps, readOps, metaOps atomic.Int64
	bytesWritten, bytesRead    atomic.Int64

	// Registry instruments, nil until Instrument is called (all methods
	// no-op on nil).
	mInflight, mContention      *metrics.Gauge
	mWriteOps, mReadOps         *metrics.Counter
	mMetaOps                    *metrics.Counter
	mBytesWritten, mBytesRead   *metrics.Counter
	mPenaltyHits, mPenaltyBytes *metrics.Counter

	// crit, when non-nil, records every charged transfer and metadata
	// operation as a causal edge (set once before the run).
	crit *critpath.Recorder
}

// SetCrit attaches the critical-path recorder. Call once, before the
// run starts.
func (t *Target) SetCrit(rec *critpath.Recorder) {
	if t == nil {
		return
	}
	t.crit = rec
}

// Stats is a snapshot of a target's charged traffic. Untimed operations
// (nil proc, zero bytes) are not counted — the counters measure what
// the file system actually served, so experiments can assert e.g. how
// many dispatches an aggregation stage saved.
type Stats struct {
	WriteOps, ReadOps, MetaOps int64
	BytesWritten, BytesRead    int64
}

// Stats returns the target's dispatch counters.
func (t *Target) Stats() Stats {
	return Stats{
		WriteOps:     t.writeOps.Load(),
		ReadOps:      t.readOps.Load(),
		MetaOps:      t.metaOps.Load(),
		BytesWritten: t.bytesWritten.Load(),
		BytesRead:    t.bytesRead.Load(),
	}
}

// FaultHook intercepts charged operations on a target. Implemented by
// internal/faults; pfs only defines the seam so it stays import-free of
// the injector.
type FaultHook interface {
	// BeforeData runs before a charged data request is admitted. A
	// non-nil error fails the operation without charging the backend
	// (the client saw EIO before any bytes moved). The hook may sleep p
	// to model a stall instead.
	BeforeData(p *vclock.Proc, target string, write bool, nbytes int64) error
	// BeforeMeta runs before a metadata operation; stalls are injected
	// by sleeping p.
	BeforeMeta(p *vclock.Proc, target string)
}

// NewTarget builds a target on clk.
func NewTarget(clk *vclock.Clock, cfg TargetConfig) *Target {
	if cfg.BackendPeak <= 0 {
		panic(fmt.Sprintf("pfs: BackendPeak %v must be positive", cfg.BackendPeak))
	}
	t := &Target{cfg: cfg}
	t.contention.Store(math.Float64bits(1))
	t.fault.Store(math.Float64bits(1))
	t.srv = flow.NewServer(clk, t.capacityFor)
	return t
}

// capacityFor is the processor-sharing capacity for n concurrent flows:
// smooth saturation toward the backend peak (measured parallel-file-
// system curves bend gradually rather than hitting a hard knee, which
// is also why the paper's linear-log fits work), degraded by the run's
// contention factor (shared fabric + storage affect the whole path).
func (t *Target) capacityFor(n int) float64 {
	c := softmin(float64(n)*t.cfg.PerFlowBW, t.cfg.BackendPeak)
	if t.cfg.PerFlowBW <= 0 {
		c = t.cfg.BackendPeak
	}
	return c * t.ContentionFactor() * t.FaultFactor()
}

// Instrument registers the target's activity on m under
// "pfs.<name>.*": the in-flight flow count, the effective bandwidth
// and utilization it implies (maintained as the in-flight gauge
// changes), contention, dispatch/byte counters mirroring Stats, and
// the small-request penalty (requests inflated by the efficiency ramp,
// and the extra backend bytes they cost). Call once, before the run
// starts.
func (t *Target) Instrument(m *metrics.Registry) {
	if t == nil || m == nil {
		return
	}
	pre := "pfs." + t.cfg.Name + "."
	m.Gauge(pre + "peak_bw_bytes_per_sec").Set(t.cfg.BackendPeak)
	t.mContention = m.Gauge(pre + "contention_factor")
	t.mContention.Set(t.ContentionFactor())
	eff := m.Gauge(pre + "effective_bw_bytes_per_sec")
	util := m.Gauge(pre + "utilization")
	t.mInflight = m.Gauge(pre + "inflight")
	// The effective-bandwidth and utilization series are derived from
	// the in-flight count inside its update lock, so the derivation is
	// deterministic even when concurrent flows start at one instant.
	t.mInflight.OnChange(func(_ time.Duration, v float64) {
		var bw float64
		if v > 0 {
			bw = t.capacityFor(int(v))
		}
		eff.Set(bw)
		util.Set(bw / t.cfg.BackendPeak)
	})
	t.mWriteOps = m.Counter(pre + "write_ops")
	t.mReadOps = m.Counter(pre + "read_ops")
	t.mMetaOps = m.Counter(pre + "meta_ops")
	t.mBytesWritten = m.Counter(pre + "bytes_written")
	t.mBytesRead = m.Counter(pre + "bytes_read")
	t.mPenaltyHits = m.Counter(pre + "small_request_penalty_hits")
	t.mPenaltyBytes = m.Counter(pre + "small_request_penalty_bytes")
}

// Name returns the target name.
func (t *Target) Name() string { return t.cfg.Name }

// Config returns the target's configuration.
func (t *Target) Config() TargetConfig { return t.cfg }

// SetContentionFactor scales the backend capacity for subsequent
// transfers; use ContentionForDay to derive a realistic factor.
func (t *Target) SetContentionFactor(f float64) {
	if f <= 0 || f > 1 {
		panic(fmt.Sprintf("pfs: contention factor %v outside (0,1]", f))
	}
	t.contention.Store(math.Float64bits(f))
	t.mContention.Set(f)
}

// ContentionFactor returns the current backend capacity multiplier.
func (t *Target) ContentionFactor() float64 {
	return math.Float64frombits(t.contention.Load())
}

// SetFaults installs the fault hook. Call once, before the run starts;
// transfers read the hook without synchronization.
func (t *Target) SetFaults(h FaultHook) { t.hook = h }

// SetFaultFactor scales the backend and per-flow capacity for
// subsequent transfers, modelling a degraded target (slow OST set,
// rebuilding RAID array). Orthogonal to the contention factor; both
// multiply. Running flows pick the change up at the next flow event
// (arrival or departure) — flow.Server recomputes rates only then.
func (t *Target) SetFaultFactor(f float64) {
	if f <= 0 || f > 1 {
		panic(fmt.Sprintf("pfs: fault factor %v outside (0,1]", f))
	}
	t.fault.Store(math.Float64bits(f))
}

// FaultFactor returns the current fault-injection capacity multiplier.
func (t *Target) FaultFactor() float64 {
	return math.Float64frombits(t.fault.Load())
}

// softmin is a smooth minimum (p-norm, p=3): ≈min(a,b) away from the
// crossover, ~0.79·b at a=b.
func softmin(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return math.Min(a, b)
	}
	a3 := a * a * a
	b3 := b * b * b
	return a * b / math.Cbrt(a3+b3)
}

// reqEff is the efficiency of a request of b bytes.
func (t *Target) reqEff(b int64) float64 {
	if t.cfg.ReqRamp <= 0 || b <= 0 {
		return 1
	}
	return float64(b) / float64(b+t.cfg.ReqRamp)
}

// transfer charges one data request of b bytes, reporting whether the
// request was actually served (and should be counted).
func (t *Target) transfer(p *vclock.Proc, b int64) bool {
	if p == nil || b <= 0 {
		return false
	}
	p.Sleep(t.cfg.OpLatency)
	served := int64(float64(b) / t.reqEff(b))
	if served > b {
		t.mPenaltyHits.Add(1)
		t.mPenaltyBytes.Add(served - b)
	}
	t.mInflight.Add(1)
	// Deferred so a crash (vclock.Killed unwinding the proc mid-transfer)
	// cannot leak the in-flight count into the exported series.
	defer t.mInflight.Add(-1)
	t.srv.TransferLimited(p, served, t.cfg.PerFlowBW*t.ContentionFactor()*t.FaultFactor())
	return true
}

// checkFault consults the fault hook for a charged data request.
func (t *Target) checkFault(p *vclock.Proc, write bool, b int64) error {
	if t.hook == nil || p == nil || b <= 0 {
		return nil
	}
	return t.hook.BeforeData(p, t.cfg.Name, write, b)
}

// TryWriteData is the fallible write charge (hdf5.FallibleDriver): the
// fault hook runs first and a hook error fails the operation before any
// bytes are charged. A nil span skips event recording.
func (t *Target) TryWriteData(p *vclock.Proc, nbytes int64, sp *trace.Span) error {
	if err := t.checkFault(p, true, nbytes); err != nil {
		return err
	}
	start := procNow(p)
	if t.transfer(p, nbytes) {
		t.writeOps.Add(1)
		t.bytesWritten.Add(nbytes)
		t.mWriteOps.Add(1)
		t.mBytesWritten.Add(nbytes)
		sp.EventDurOn("pfs:"+t.cfg.Name+":write", nbytes, start, p.Now()-start, p.Name())
		t.crit.Record(critpath.Edge{
			Track: p.Name(), Cause: critpath.PFSTransfer, Subsystem: "pfs",
			Detail: "pfs:" + t.cfg.Name + ":write", Start: start, End: p.Now(), Bytes: nbytes,
		})
	}
	return nil
}

// TryReadData is the fallible read charge (hdf5.FallibleDriver).
func (t *Target) TryReadData(p *vclock.Proc, nbytes int64, sp *trace.Span) error {
	if err := t.checkFault(p, false, nbytes); err != nil {
		return err
	}
	start := procNow(p)
	if t.transfer(p, nbytes) {
		t.readOps.Add(1)
		t.bytesRead.Add(nbytes)
		t.mReadOps.Add(1)
		t.mBytesRead.Add(nbytes)
		sp.EventDurOn("pfs:"+t.cfg.Name+":read", nbytes, start, p.Now()-start, p.Name())
		t.crit.Record(critpath.Edge{
			Track: p.Name(), Cause: critpath.PFSTransfer, Subsystem: "pfs",
			Detail: "pfs:" + t.cfg.Name + ":read", Start: start, End: p.Now(), Bytes: nbytes,
		})
	}
	return nil
}

// WriteData implements hdf5.Driver. Injected faults are swallowed here;
// the hdf5 charge helpers prefer the fallible path, so this only
// surfaces for direct un-hooked callers.
func (t *Target) WriteData(p *vclock.Proc, nbytes int64) {
	_ = t.TryWriteData(p, nbytes, nil)
}

// ReadData implements hdf5.Driver.
func (t *Target) ReadData(p *vclock.Proc, nbytes int64) {
	_ = t.TryReadData(p, nbytes, nil)
}

// WriteDataSpan implements hdf5.SpanDriver: identical charge to
// WriteData, plus a span event covering the transfer in virtual time,
// attributed to the acting process's track.
func (t *Target) WriteDataSpan(p *vclock.Proc, nbytes int64, sp *trace.Span) {
	_ = t.TryWriteData(p, nbytes, sp)
}

// ReadDataSpan implements hdf5.SpanDriver.
func (t *Target) ReadDataSpan(p *vclock.Proc, nbytes int64, sp *trace.Span) {
	_ = t.TryReadData(p, nbytes, sp)
}

// MetaOp implements hdf5.Driver.
func (t *Target) MetaOp(p *vclock.Proc) {
	if p == nil {
		return
	}
	start := p.Now()
	// A fault stall inside the hook is recorded as a FaultStall edge by
	// the injector; its precedence beats the enclosing Metadata bracket.
	if t.hook != nil {
		t.hook.BeforeMeta(p, t.cfg.Name)
	}
	p.Sleep(t.cfg.MetaLatency)
	t.metaOps.Add(1)
	t.mMetaOps.Add(1)
	t.crit.Record(critpath.Edge{
		Track: p.Name(), Cause: critpath.Metadata, Subsystem: "pfs",
		Detail: "meta:" + t.cfg.Name, Start: start, End: p.Now(),
	})
}

// procNow returns p's virtual time, tolerating nil.
func procNow(p *vclock.Proc) time.Duration {
	if p == nil {
		return 0
	}
	return p.Now()
}

// EffectiveBandwidth returns the modelled steady-state aggregate
// bandwidth (bytes/s) for n concurrent flows each issuing requests of
// reqBytes, without contention. Used by analyses and docs; the simulation
// itself derives this emergently.
func (t *Target) EffectiveBandwidth(n int, reqBytes int64) float64 {
	c := t.cfg.BackendPeak
	if t.cfg.PerFlowBW > 0 {
		c = softmin(float64(n)*t.cfg.PerFlowBW, c)
	}
	return c * t.reqEff(reqBytes)
}

// GPFSConfig parameterizes a GPFS-like system (Summit's Alpine).
type GPFSConfig struct {
	BackendPeak float64
	PerFlowBW   float64
	ReactRamp   int64 // GPFS reacts to workload; small requests score poorly
	MetaLatency time.Duration
	OpLatency   time.Duration
}

// GPFS builds a GPFS-like target.
func GPFS(clk *vclock.Clock, cfg GPFSConfig) *Target {
	return NewTarget(clk, TargetConfig{
		Name:        "gpfs",
		BackendPeak: cfg.BackendPeak,
		PerFlowBW:   cfg.PerFlowBW,
		ReqRamp:     cfg.ReactRamp,
		MetaLatency: cfg.MetaLatency,
		OpLatency:   cfg.OpLatency,
	})
}

// LustreConfig parameterizes a Lustre-like system (Cori's scratch).
type LustreConfig struct {
	OSTs         int     // stripe count, e.g. NERSC's stripe_large = 72
	OSTBandwidth float64 // per-OST bytes/s
	PerFlowBW    float64
	StripeRamp   int64 // requests smaller than a stripe waste OST work
	MetaLatency  time.Duration
	OpLatency    time.Duration
}

// Lustre builds a Lustre-like target: the backend peak is the striped
// OST set's combined bandwidth.
func Lustre(clk *vclock.Clock, cfg LustreConfig) *Target {
	if cfg.OSTs <= 0 {
		panic(fmt.Sprintf("pfs: Lustre OSTs %d must be positive", cfg.OSTs))
	}
	return NewTarget(clk, TargetConfig{
		Name:        "lustre",
		BackendPeak: float64(cfg.OSTs) * cfg.OSTBandwidth,
		PerFlowBW:   cfg.PerFlowBW,
		ReqRamp:     cfg.StripeRamp,
		MetaLatency: cfg.MetaLatency,
		OpLatency:   cfg.OpLatency,
	})
}

// BurstBuffer builds an SSD burst-buffer target (e.g. Cori's 1.7 TB/s
// DataWarp tier): high backend bandwidth, mild small-request penalty.
func BurstBuffer(clk *vclock.Clock, peak, perFlow float64) *Target {
	return NewTarget(clk, TargetConfig{
		Name:        "burst-buffer",
		BackendPeak: peak,
		PerFlowBW:   perFlow,
		ReqRamp:     256 << 10,
		MetaLatency: 50 * time.Microsecond,
		OpLatency:   20 * time.Microsecond,
	})
}

// ContentionForDay returns a deterministic backend capacity factor for a
// given (seed, day): most days see mild contention, some see heavy
// (skewed toward 1 with a tail toward ~0.35). Both I/O modes of a run
// observe the same day's factor, as they would on a real machine.
func ContentionForDay(seed, day int64) float64 {
	rng := rand.New(rand.NewSource(seed*1_000_003 + day))
	u := rng.Float64()
	return 1 - 0.65*u*u
}
