package pfs

import (
	"errors"
	"testing"
	"time"

	"asyncio/internal/hdf5"
)

// ev builds one synthetic data event on dataset "/d" covering elements
// [off, off+n).
func ev(kind eventKind, rank int, off, n uint64, start, end time.Duration) consEvent {
	return consEvent{
		kind: kind, rank: rank, path: "/d", elemSize: 4, oneDim: true,
		runs: []elemRun{{off: off, n: n}}, start: start, end: end,
	}
}

func checkerWith(t *testing.T, model Model, evs ...consEvent) *ConsistencyChecker {
	t.Helper()
	ck := newChecker(model)
	for _, e := range evs {
		ck.append(e)
	}
	return ck
}

// wantViolation asserts Check fails with exactly the given kind, via
// the typed error satellite 1 depends on.
func wantViolation(t *testing.T, ck *ConsistencyChecker, kind string) {
	t.Helper()
	err := ck.Check()
	if err == nil {
		t.Fatalf("%s: expected a %s violation, got clean", ck.model, kind)
	}
	var verr *ViolationError
	if !errors.As(err, &verr) {
		t.Fatalf("%s: error is %T, want *ViolationError", ck.model, err)
	}
	if verr.Model != ck.model {
		t.Errorf("violation model = %s, want %s", verr.Model, ck.model)
	}
	for _, v := range verr.Violations {
		if v.Kind != kind {
			t.Errorf("violation kind = %s, want %s (%s)", v.Kind, kind, v)
		}
	}
}

func wantClean(t *testing.T, ck *ConsistencyChecker) {
	t.Helper()
	if err := ck.Check(); err != nil {
		t.Fatalf("%s: expected clean, got %v", ck.model, err)
	}
}

const ms = time.Millisecond

func TestCheckerDataRaceAllModels(t *testing.T) {
	// A read overlapping an in-flight cross-rank write is undefined
	// under every model.
	for _, m := range []Model{ModelPOSIX, ModelSession, ModelMPIIO, ModelCommit} {
		ck := checkerWith(t, m,
			ev(evWrite, 0, 0, 10, 1*ms, 5*ms),
			ev(evRead, 1, 5, 10, 4*ms, 6*ms),
		)
		wantViolation(t, ck, "data-race")
	}
}

func TestCheckerPOSIXReadAfterWriteClean(t *testing.T) {
	wantClean(t, checkerWith(t, ModelPOSIX,
		ev(evWrite, 0, 0, 10, 1*ms, 2*ms),
		ev(evRead, 1, 0, 10, 3*ms, 4*ms),
	))
}

func TestCheckerPOSIXWriteRace(t *testing.T) {
	ck := checkerWith(t, ModelPOSIX,
		ev(evWrite, 0, 0, 10, 1*ms, 5*ms),
		ev(evWrite, 1, 5, 10, 2*ms, 6*ms),
	)
	wantViolation(t, ck, "write-race")

	// Disjoint extents may overlap in time.
	wantClean(t, checkerWith(t, ModelPOSIX,
		ev(evWrite, 0, 0, 10, 1*ms, 5*ms),
		ev(evWrite, 1, 10, 10, 2*ms, 6*ms),
	))
	// The weaker models leave concurrent writers undefined until
	// publish; no violation.
	wantClean(t, checkerWith(t, ModelCommit,
		ev(evWrite, 0, 0, 10, 1*ms, 5*ms),
		ev(evWrite, 1, 5, 10, 2*ms, 6*ms),
	))
}

func TestCheckerSessionVisibility(t *testing.T) {
	w := ev(evWrite, 0, 0, 10, 1*ms, 2*ms)
	r := ev(evRead, 1, 0, 10, 5*ms, 6*ms)

	// No close: the read depends on unpublished data.
	wantViolation(t, checkerWith(t, ModelSession, w, r), "stale-read")
	// Close between write end and read start: published.
	wantClean(t, checkerWith(t, ModelSession, w, r,
		consEvent{kind: evClose, rank: 0, end: 3 * ms}))
	// A close before the write finished does not publish it.
	wantViolation(t, checkerWith(t, ModelSession, w, r,
		consEvent{kind: evClose, rank: 0, end: 1 * ms}), "stale-read")
	// The reader's own close is irrelevant.
	wantViolation(t, checkerWith(t, ModelSession, w, r,
		consEvent{kind: evClose, rank: 1, end: 3 * ms}), "stale-read")
	// Same-rank reads need no publish at all.
	wantClean(t, checkerWith(t, ModelSession, w,
		ev(evRead, 0, 0, 10, 5*ms, 6*ms)))
}

func TestCheckerMPIIOSyncBarrierSync(t *testing.T) {
	w := ev(evWrite, 0, 0, 10, 1*ms, 2*ms)
	r := ev(evRead, 1, 0, 10, 8*ms, 9*ms)

	// No syncs at all.
	wantViolation(t, checkerWith(t, ModelMPIIO, w, r), "stale-read")
	// Writer synced but reader never did: not guaranteed.
	wantViolation(t, checkerWith(t, ModelMPIIO, w, r,
		consEvent{kind: evSync, rank: 0, end: 3 * ms}), "stale-read")
	// Reader synced before the writer: still not guaranteed.
	wantViolation(t, checkerWith(t, ModelMPIIO, w, r,
		consEvent{kind: evSync, rank: 0, end: 5 * ms},
		consEvent{kind: evSync, rank: 1, end: 4 * ms}), "stale-read")
	// Writer sync, then reader sync, then the read: the full
	// sync-barrier-sync chain.
	wantClean(t, checkerWith(t, ModelMPIIO, w, r,
		consEvent{kind: evSync, rank: 0, end: 3 * ms},
		consEvent{kind: evSync, rank: 1, end: 4 * ms}))
}

func TestCheckerCommitVisibility(t *testing.T) {
	w := ev(evWrite, 0, 0, 10, 1*ms, 2*ms)
	r := ev(evRead, 1, 0, 10, 5*ms, 6*ms)

	wantViolation(t, checkerWith(t, ModelCommit, w, r), "stale-read")
	wantClean(t, checkerWith(t, ModelCommit, w, r,
		consEvent{kind: evCommit, end: 3 * ms}))
	// A commit before the write completed publishes nothing.
	wantViolation(t, checkerWith(t, ModelCommit, w, r,
		consEvent{kind: evCommit, end: 1 * ms}), "stale-read")
}

func TestCheckerSummaryDeterministic(t *testing.T) {
	a := checkerWith(t, ModelMPIIO,
		ev(evWrite, 0, 0, 10, 1*ms, 2*ms),
		ev(evRead, 1, 0, 10, 5*ms, 6*ms),
		consEvent{kind: evSync, rank: 0, end: 3 * ms},
		consEvent{kind: evCommit, end: 7 * ms, epoch: 0},
	)
	// Same events, reversed arrival order (as a different shard
	// interleaving would produce).
	b := checkerWith(t, ModelMPIIO,
		consEvent{kind: evCommit, end: 7 * ms, epoch: 0},
		consEvent{kind: evSync, rank: 0, end: 3 * ms},
		ev(evRead, 1, 0, 10, 5*ms, 6*ms),
		ev(evWrite, 0, 0, 10, 1*ms, 2*ms),
	)
	if a.Summary() != b.Summary() {
		t.Errorf("summaries differ across arrival orders:\n%s\n%s", a.Summary(), b.Summary())
	}
}

// durableFixture creates a one-dataset file with n float32 elements
// written as [0,1,2,...] and returns the store plus the payload bytes.
func durableFixture(t *testing.T, n uint64) (*hdf5.MemStore, []byte) {
	t.Helper()
	store := hdf5.NewMemStore()
	f, err := hdf5.Create(store)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := f.Root().CreateDataset(nil, "d", hdf5.F32, hdf5.MustSimple(n), nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4*n)
	for i := range buf {
		buf[i] = byte(i)
	}
	if err := ds.Write(nil, nil, buf); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(nil); err != nil {
		t.Fatal(err)
	}
	return store, buf
}

func TestCheckerVerifyDurable(t *testing.T) {
	store, buf := durableFixture(t, 16)

	write := consEvent{
		kind: evWrite, rank: 0, path: "/d", elemSize: 4, oneDim: true,
		runs: []elemRun{{off: 0, n: 16}}, start: 1 * ms, end: 2 * ms,
		sum: fnv1a(buf), hasSum: true,
	}
	commit := consEvent{kind: evCommit, end: 3 * ms}

	// Committed and intact: clean.
	ck := checkerWith(t, ModelCommit, write, commit)
	if err := ck.VerifyDurable(store); err != nil {
		t.Fatalf("intact image: %v", err)
	}

	// No commit: nothing promised, even for corrupt-looking sums.
	bad := write
	bad.sum++
	if err := checkerWith(t, ModelCommit, bad).VerifyDurable(store); err != nil {
		t.Fatalf("no commit: %v", err)
	}

	// Committed but the image holds different bytes: lost-durable.
	err := checkerWith(t, ModelCommit, bad, commit).VerifyDurable(store)
	var verr *ViolationError
	if !errors.As(err, &verr) {
		t.Fatalf("corrupt committed write: got %v, want *ViolationError", err)
	}
	if verr.Violations[0].Kind != "lost-durable" {
		t.Errorf("kind = %s, want lost-durable", verr.Violations[0].Kind)
	}

	// A write completed after the commit is not promised.
	late := bad
	late.start, late.end = 4*ms, 5*ms
	if err := checkerWith(t, ModelCommit, write, commit, late).VerifyDurable(store); err != nil {
		t.Fatalf("post-commit write must not be promised: %v", err)
	}

	// An overwritten committed write is exempt (last write wins).
	over := write
	over.start, over.end = 2*ms, 3*ms
	over.sum = fnv1a(buf) // the final image holds the second write
	stale := write
	stale.sum++ // first write's payload is gone, and that is fine
	if err := checkerWith(t, ModelCommit, stale, over, consEvent{kind: evCommit, end: 4 * ms}).VerifyDurable(store); err != nil {
		t.Fatalf("overwritten write must be exempt: %v", err)
	}

	// A committed write pointing at a dataset the image lost entirely.
	gone := write
	gone.path = "/missing"
	err = checkerWith(t, ModelCommit, gone, commit).VerifyDurable(store)
	if !errors.As(err, &verr) {
		t.Fatalf("missing dataset: got %v, want *ViolationError", err)
	}
}
