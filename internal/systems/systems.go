// Package systems assembles the two evaluation machines from the paper
// (§IV-A) out of the memsys and pfs models:
//
//   - Summit (OLCF): 4,608 nodes, 2×22-core POWER9 + 6 V100 per node,
//     NVLink 2.0, 1.6 TB node-local NVMe, IBM Spectrum Scale (GPFS)
//     storage with 2.5 TB/s peak. Experiments run 6 ranks/node.
//   - Cori-Haswell (NERSC): Cray XC40, 32 ranks/node, Lustre scratch
//     with 700 GB/s peak (72 OSTs at NERSC's stripe_large best
//     practice) and an SSD burst buffer at 1.7 TB/s.
//
// Absolute bandwidth constants are calibrated so the *shapes* of the
// paper's figures reproduce: the synchronous VPIC-IO knee at 768 ranks
// (128 nodes) on Summit and 1024 ranks (32 nodes) on Cori, strong-
// scaling decay of synchronous aggregate bandwidth, and linear scaling
// of asynchronous (staging-copy) bandwidth.
package systems

import (
	"fmt"
	"time"

	"asyncio/internal/critpath"
	"asyncio/internal/faults"
	"asyncio/internal/memsys"
	"asyncio/internal/metrics"
	"asyncio/internal/pfs"
	"asyncio/internal/shard"
	"asyncio/internal/vclock"
)

// Handy byte-rate units.
const (
	KB = 1e3
	MB = 1e6
	GB = 1e9
	TB = 1e12
)

// System is one assembled machine.
type System struct {
	Name         string
	Clk          *vclock.Clock
	Machine      *memsys.Machine
	PFS          *pfs.Target
	BurstBuffer  *pfs.Target // nil when the machine has none
	RanksPerNode int
	MaxNodes     int // full-machine node count, for documentation
	// Metrics is the run's observability registry on the system clock.
	// Storage targets are pre-instrumented; core.Run wires the MPI
	// layer and workloads wire connectors/engines through it. Call
	// Metrics.EnableSeries() before the run to record time series.
	Metrics *metrics.Registry
	// Faults is the run's fault injector, attached to the storage
	// targets at construction; nil for healthy runs. Workloads wire it
	// into their connectors (see workloads/harness) and core inherits
	// its degradation policy.
	Faults *faults.Injector
	// Crit is the causal critical-path recorder when the system was built
	// with WithCritPath; nil disables profiling (every call site records
	// through it unconditionally — the recorder is nil-safe).
	Crit *critpath.Recorder
	// Consistency is the PFS consistency model when the system was built
	// with WithConsistency; nil runs the historical implicit model (no
	// visibility charges, no checker). Workloads thread its stage into
	// their request pipelines and call its publish points; every call
	// site is nil-safe.
	Consistency *pfs.Consistency
	// Coord is the shard coordinator when the system was built with
	// WithSharding; nil for a serial run. Clk is then shard 0's clock:
	// shared resources (PFS flow servers, fault windows, the metrics
	// registry, crash timers) live on shard 0, ranks and their
	// background streams on their home shard per Plan.
	Coord *vclock.Coordinator
	// Plan is the rank/target partition when sharded (zero value
	// otherwise).
	Plan shard.Plan
}

// Option tweaks a System during construction.
type Option func(*config)

type config struct {
	contentionSeed int64
	day            int64
	contention     bool
	faults         *faults.Injector
	coord          *vclock.Coordinator
	policy         string
	crit           *critpath.Recorder
	consistency    *pfs.Consistency
}

// WithContention enables day-to-day backend contention, deterministic in
// seed and day. Without it the backend runs at full capacity (the
// "ideal observed synchronous I/O" the paper's model targets).
func WithContention(seed, day int64) Option {
	return func(c *config) {
		c.contention = true
		c.contentionSeed = seed
		c.day = day
	}
}

// WithFaults attaches a fault injector to the system: its schedule is
// installed on every storage target and its slowdown windows are
// scheduled on the clock. One injector serves one system/run.
func WithFaults(in *faults.Injector) Option {
	return func(c *config) { c.faults = in }
}

// WithCritPath attaches a causal critical-path recorder: the clock (or
// every shard of the coordinator) reports blocking waits into its
// wait-for graph, the storage targets and fault injector record typed
// causal edges, and core.Run seals the profile into the Report. One
// recorder serves one system/run.
func WithCritPath(rec *critpath.Recorder) Option {
	return func(c *config) { c.crit = rec }
}

// WithConsistency attaches a PFS consistency model to the system: the
// workload pipelines charge its per-write visibility cost, its publish
// points fire at close/sync/commit, and (when the spec enables it) its
// checker records every operation for the visibility oracle. One
// Consistency serves one system/run.
func WithConsistency(cs *pfs.Consistency) Option {
	return func(c *config) { c.consistency = cs }
}

// WithSharding runs the system on a sharded event engine: the clock
// passed to the constructor must be co.Clock(0), ranks are partitioned
// across co's shards with the given rank-assignment policy (see
// internal/shard; "" means block), and the coordinator's lookahead is
// set to the system's safe value (see SafeLookahead).
func WithSharding(co *vclock.Coordinator, policy string) Option {
	return func(c *config) {
		c.coord = co
		c.policy = policy
	}
}

// Summit builds a Summit allocation of the given node count.
func Summit(clk *vclock.Clock, nodes int, opts ...Option) *System {
	const ranksPerNode = 6
	if nodes <= 0 || nodes > 4608 {
		panic(fmt.Sprintf("systems: Summit allocation %d nodes outside 1..4608", nodes))
	}
	cfg := apply(opts)
	machine := memsys.NewMachine(clk, nodes, ranksPerNode, memsys.NodeConfig{
		MemcpyPeak:        24 * GB,  // per-node DRAM copy bandwidth shared by 6 ranks
		MemcpyRamp:        64 << 10, // constant above ~32 MB, mildly penalized below
		GPULinkPeak:       50 * GB,  // NVLink 2.0
		GPUPinnedSetup:    10 * time.Microsecond,
		GPUUnpinnedSetup:  120 * time.Microsecond,
		GPUUnpinnedFactor: 0.55,
		SSDWritePeak:      2.1 * GB, // node-local 1.6 TB NVMe
		SSDReadPeak:       5.5 * GB,
	})
	gpfs := pfs.GPFS(clk, pfs.GPFSConfig{
		// 0.4 GB/s per rank × 768 ranks ≈ 307 GB/s achievable backend:
		// the synchronous weak-scaling knee lands at 128 nodes, as
		// measured (§V-A1). The 2.5 TB/s figure is the hardware peak
		// across all users, never seen by one job.
		BackendPeak: 307 * GB,
		PerFlowBW:   0.4 * GB,
		ReactRamp:   32 << 20, // GPFS workload-reactive small-request penalty
		MetaLatency: 500 * time.Microsecond,
		OpLatency:   200 * time.Microsecond,
	})
	s := &System{
		Name:         "summit",
		Clk:          clk,
		Machine:      machine,
		PFS:          gpfs,
		RanksPerNode: ranksPerNode,
		MaxNodes:     4608,
	}
	finish(s, cfg)
	return s
}

// CoriHaswell builds a Cori-Haswell allocation of the given node count.
func CoriHaswell(clk *vclock.Clock, nodes int, opts ...Option) *System {
	const ranksPerNode = 32
	if nodes <= 0 || nodes > 2388 {
		panic(fmt.Sprintf("systems: Cori allocation %d nodes outside 1..2388", nodes))
	}
	cfg := apply(opts)
	machine := memsys.NewMachine(clk, nodes, ranksPerNode, memsys.NodeConfig{
		MemcpyPeak: 10 * GB, // per-node DRAM copy bandwidth shared by 32 ranks
		MemcpyRamp: 64 << 10,
		// No GPUs, no node-local SSD on Haswell nodes.
	})
	lustre := pfs.Lustre(clk, pfs.LustreConfig{
		// 72 OSTs (stripe_large) at ~1.4 GB/s each ≈ 100 GB/s for one
		// job; per-rank client bandwidth 0.1 GB/s puts the weak-scaling
		// knee at ~1024 ranks (32 nodes), as measured.
		OSTs:         72,
		OSTBandwidth: 1.4 * GB,
		PerFlowBW:    0.1 * GB,
		StripeRamp:   1 << 20,
		MetaLatency:  300 * time.Microsecond,
		OpLatency:    100 * time.Microsecond,
	})
	s := &System{
		Name:         "cori-haswell",
		Clk:          clk,
		Machine:      machine,
		PFS:          lustre,
		BurstBuffer:  pfs.BurstBuffer(clk, 1.7*TB, 0.3*GB),
		RanksPerNode: ranksPerNode,
		MaxNodes:     2388,
	}
	finish(s, cfg)
	return s
}

func apply(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return c
}

func finish(s *System, cfg config) {
	if co := cfg.coord; co != nil {
		if co.Clock(0) != s.Clk {
			panic("systems: WithSharding requires the system clock to be shard 0 of the coordinator")
		}
		s.Coord = co
		plan, err := shard.NewPlan(
			shard.Spec{N: co.NumShards(), Policy: cfg.policy},
			s.Size(), s.targetCount(), co.NumShards())
		if err != nil {
			panic("systems: " + err.Error())
		}
		s.Plan = plan
		co.SetLookahead(s.SafeLookahead())
	}
	s.Metrics = metrics.NewRegistry(s.Clk)
	s.PFS.Instrument(s.Metrics)
	s.BurstBuffer.Instrument(s.Metrics)
	if cfg.crit != nil {
		s.Crit = cfg.crit
		if s.Coord != nil {
			s.Coord.SetWaitObserver(s.Crit)
		} else {
			s.Clk.SetWaitObserver(s.Crit)
		}
		s.PFS.SetCrit(s.Crit)
		s.BurstBuffer.SetCrit(s.Crit)
		// Must precede Attach-time RetryStage creation in the workloads:
		// the injector captures the recorder into its retry policy.
		if cfg.faults != nil {
			cfg.faults.SetCrit(s.Crit)
		}
	}
	if cfg.consistency != nil {
		s.Consistency = cfg.consistency
		s.Consistency.SetCrit(s.Crit)
		s.Consistency.Instrument(s.Metrics)
	}
	if cfg.contention {
		s.PFS.SetContentionFactor(pfs.ContentionForDay(cfg.contentionSeed, cfg.day))
	}
	if cfg.faults != nil {
		s.Faults = cfg.faults
		targets := []*pfs.Target{s.PFS}
		if s.BurstBuffer != nil {
			targets = append(targets, s.BurstBuffer)
		}
		cfg.faults.Attach(s.Clk, s.Metrics, targets...)
	}
}

// Size returns the total rank count of the allocation.
func (s *System) Size() int { return s.Machine.Size() }

// targetCount returns the number of PFS targets for the shard plan.
func (s *System) targetCount() int {
	n := 1 // scratch PFS
	if s.BurstBuffer != nil {
		n++
	}
	return n
}

// ClockFor returns the clock rank's process must run on: its home
// shard's clock when sharded, the system clock otherwise.
func (s *System) ClockFor(rank int) *vclock.Clock {
	if s.Coord == nil || rank < 0 || rank >= len(s.Plan.RankShard) {
		return s.Clk
	}
	return s.Coord.Clock(s.Plan.RankShard[rank])
}

// RankClocks returns the per-rank clock slice for an mpi.RunOn world of
// the given size (a prefix of the allocation's ranks). Serial systems
// return the single system clock.
func (s *System) RankClocks(ranks int) []*vclock.Clock {
	if s.Coord == nil {
		return []*vclock.Clock{s.Clk}
	}
	clks := make([]*vclock.Clock, ranks)
	for r := range clks {
		clks[r] = s.ClockFor(r)
	}
	return clks
}

// Shards returns the effective shard count of the run's engine (1 for a
// serial system).
func (s *System) Shards() int {
	if s.Coord == nil {
		return 1
	}
	return s.Coord.NumShards()
}

// SafeLookahead computes the conservative lookahead for this system's
// topology: the minimum virtual latency of any cross-shard edge. Every
// shard's ranks reach the storage targets — flow servers living on
// shard 0 whose admission (Server.Transfer arrival batching) happens at
// the caller's current instant — and share the metrics registry, whose
// observations are likewise timestamped at the caller's instant. Both
// are zero-latency cross-shard edges, so the safe horizon is 0: the
// coordinator runs lockstep-instant windows, which is exactly what
// keeps sharded runs byte-identical to serial ones. A topology that
// gave each shard private targets and charged a nonzero network latency
// on remote access could return that latency here and widen the
// windows.
func (s *System) SafeLookahead() time.Duration { return 0 }

// Nodes returns the allocated node count.
func (s *System) Nodes() int { return s.Machine.NumNodes() }

// NodeOf returns the memory system of the node hosting rank.
func (s *System) NodeOf(rank int) *memsys.Node { return s.Machine.NodeOf(rank) }

// MemcpyModel returns a transactional-overhead model for rank: a
// DRAM-to-DRAM staging copy on the rank's node (CPU applications).
func (s *System) MemcpyModel(rank int) func(p *vclock.Proc, nbytes int64) {
	node := s.NodeOf(rank)
	return func(p *vclock.Proc, nbytes int64) {
		if p != nil {
			node.Memcpy(p, nbytes)
		}
	}
}

// GPUCopyModel returns a transactional-overhead model for rank on a GPU
// application: a GPU→CPU transfer precedes the staging copy.
func (s *System) GPUCopyModel(rank int, pinned bool) func(p *vclock.Proc, nbytes int64) {
	node := s.NodeOf(rank)
	return func(p *vclock.Proc, nbytes int64) {
		if p != nil {
			node.GPUTransfer(p, nbytes, pinned)
			node.Memcpy(p, nbytes)
		}
	}
}

// SSDStageModel returns a transactional-overhead model that stages to
// the node-local SSD instead of DRAM (Summit's alternative buffering
// location).
func (s *System) SSDStageModel(rank int) func(p *vclock.Proc, nbytes int64) {
	node := s.NodeOf(rank)
	return func(p *vclock.Proc, nbytes int64) {
		if p != nil {
			node.SSDWrite(p, nbytes)
		}
	}
}
